// maclearning runs the §6.6 comparison workload: the MAC-learning OpenFlow
// controller explored by both the CHEF-derived engine (interpreting the
// interpreter) and the dedicated NICE-like engine (interpreting the program
// directly), and reports the per-path cost ratio — a single point of the
// paper's Figure 12.
package main

import (
	"fmt"

	"chef/internal/chef"
	"chef/internal/dedicated"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/symexpr"
)

func main() {
	const frames, macLen = 2, 2

	// Dedicated engine.
	src := packages.MacLearningFlatSource(frames)
	prog := minipy.MustCompile(src)
	ded := dedicated.New(prog, dedicated.Options{})
	var args []dedicated.Value
	for i := 0; i < frames; i++ {
		args = append(args, symStr(fmt.Sprintf("s%d", i), macLen), symStr(fmt.Sprintf("d%d", i), macLen))
	}
	if err := ded.Explore("drive_frames", args); err != nil {
		panic(err)
	}
	dedPaths := len(ded.Tests())
	dedTime := ded.VirtualTime()
	fmt.Printf("dedicated engine: %d paths in %d virtual time (%d per path)\n",
		dedPaths, dedTime, dedTime/int64(max(1, dedPaths)))

	// CHEF-derived engine on the same workload.
	pt := packages.MacLearningFlatTest(frames, macLen, minipy.Optimized)
	session := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 1})
	tests := session.Run(6_000_000)
	chefTime := session.Engine().Clock()
	fmt.Printf("CHEF engine:      %d paths in %d virtual time (%d per path)\n",
		len(tests), chefTime, chefTime/int64(max(1, len(tests))))

	over := float64(chefTime) / float64(max(1, len(tests))) /
		(float64(dedTime) / float64(max(1, dedPaths)))
	fmt.Printf("\nCHEF per-path overhead: %.1fx — the price of executing the interpreter\n", over)
	fmt.Println("instead of a hand-written engine, in exchange for full language fidelity.")
}

func symStr(name string, n int) dedicated.Value {
	b := make([]*symexpr.Expr, n)
	for i := range b {
		b[i] = symexpr.NewVar(symexpr.Var{Buf: name, Idx: i, W: symexpr.W8})
	}
	return dedicated.StrV{B: b}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
