// Quickstart: turn the MiniPy interpreter into a symbolic execution engine
// and test the paper's running example (Fig. 2), an email validator. CHEF
// explores the validator with a 6-byte symbolic email and produces one test
// case per distinct high-level path — including an input that actually
// reaches the "valid" outcome, which requires the solver to place an '@'
// at position 3 or later.
package main

import (
	"fmt"

	"chef/internal/chef"
	"chef/internal/minipy"
	"chef/internal/symtest"
)

const validator = `
def validateEmail(email):
    at_sign_pos = email.find("@")
    if at_sign_pos < 3:
        raise InvalidEmailError("at-sign too early or missing")
    return "valid"
`

func main() {
	test := &symtest.PyTest{
		Source: validator,
		Entry:  "validateEmail",
		Inputs: []symtest.Input{symtest.Str("email", 6, "")},
		Config: minipy.Optimized,
	}

	session := chef.NewSession(test.Program(), chef.Options{
		Strategy: chef.StrategyCUPAPath,
		Seed:     1,
	})
	tests := session.Run(3_000_000)

	stats := session.Engine().Stats()
	fmt.Printf("explored %d low-level paths, distilled %d high-level test cases:\n\n",
		stats.LLPaths, len(tests))
	for _, tc := range tests {
		email := minipy.ConcreteStringFromInput(tc.Input, "email", 6)
		// Confirm by replaying on the vanilla interpreter.
		rep := test.Replay(tc.Input, 1<<20)
		fmt.Printf("  email=%-10q  ->  %s (replay: %s)\n", email, tc.Result, rep.Result)
	}
	fmt.Printf("\nhigh-level CFG discovered: %s\n", session.CFG())
}
