// argparse mirrors the paper's Fig. 7: a symbolic test that exercises the
// argparse package with two 3-character symbolic argument declarations and
// two 3-character symbolic arguments — 12 symbolic bytes total — and prints
// the distinct behaviors CHEF discovers, including the exception types of
// Table 3.
package main

import (
	"fmt"
	"sort"

	"chef/internal/chef"
	"chef/internal/minipy"
	"chef/internal/packages"
)

func main() {
	pkg, _ := packages.ByName("argparse")
	test := pkg.PyTest(minipy.Optimized)

	session := chef.NewSession(test.Program(), chef.Options{
		Strategy: chef.StrategyCUPACoverage,
		Seed:     11,
	})
	tests := session.Run(4_000_000)

	outcomes := map[string]int{}
	for _, tc := range tests {
		outcomes[tc.Result]++
	}
	fmt.Printf("argparse: %d high-level test cases, %d distinct outcomes\n\n",
		len(tests), len(outcomes))
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		doc := ""
		const p = "exception:"
		if len(k) > len(p) && k[:len(p)] == p {
			if pkg.IsDocumented(k[len(p):]) {
				doc = " (documented)"
			} else {
				doc = " (UNDOCUMENTED)"
			}
		}
		fmt.Printf("  %4d x %s%s\n", outcomes[k], k, doc)
	}
	cov := map[int]bool{}
	for _, tc := range tests {
		rep := test.Replay(tc.Input, 1<<20)
		for l := range rep.Lines {
			cov[l] = true
		}
	}
	fmt.Printf("\nline coverage: %d/%d coverable lines\n", len(cov), pkg.CoverableLOC())
}
