// jsonfuzz reproduces the paper's §6.2 bug-detection result: symbolically
// executing the Lua sb-JSON package discovers that a malformed /* or //
// comment sends the parser into an infinite loop — a denial-of-service
// vector, found fully automatically via the per-path timeout specification.
package main

import (
	"fmt"

	"chef/internal/chef"
	"chef/internal/lowlevel"
	"chef/internal/minilua"
	"chef/internal/packages"
)

func main() {
	pkg, _ := packages.ByName("JSON")
	test := pkg.LuaTest(minilua.Optimized)

	session := chef.NewSession(test.Program(), chef.Options{
		Strategy:  chef.StrategyCUPAPath,
		Seed:      7,
		StepLimit: 40_000, // the paper's 60-second per-path timeout, in virtual steps
	})
	tests := session.Run(2_000_000)

	fmt.Printf("generated %d test cases for sb-JSON\n", len(tests))
	hangs := 0
	for _, tc := range tests {
		if tc.Status != lowlevel.RunHang {
			continue
		}
		hangs++
		input := minilua.SymbolicString(
			lowlevel.NewConcreteMachine(tc.Input.Clone(), 1000), "s", 5, "")
		fmt.Printf("  HANG on input %q — parser spins past end-of-string\n", input.Concrete())
	}
	if hangs == 0 {
		fmt.Println("no hang found at this budget; try a larger -budget")
		return
	}
	fmt.Printf("\n%d hang-inducing inputs found.\n", hangs)
	fmt.Println("Root cause: sb-JSON accepts /* and // comments (not in the JSON standard);")
	fmt.Println("an unterminated comment makes the scanner wait forever for another token.")
}
