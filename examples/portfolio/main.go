// portfolio demonstrates the extension §6.5 of the paper proposes: for large
// packages whose behaviors respond differently to the interpreter
// optimizations (xlrd in the paper's Fig. 11), run a *portfolio* of
// interpreter builds and merge the high-level paths each build discovers.
package main

import (
	"fmt"

	"chef/internal/chef"
	"chef/internal/minipy"
	"chef/internal/packages"
)

func main() {
	pkg, _ := packages.ByName("xlrd")
	names := minipy.OptLevelNames()

	var members []chef.PortfolioMember
	for i, lvl := range minipy.OptLevels() {
		members = append(members, chef.PortfolioMember{
			Name: names[i],
			Prog: pkg.PyTest(lvl).Program(),
		})
	}
	const totalBudget = 2_000_000
	opts := chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 7, StepLimit: 40_000}
	res := chef.RunPortfolio(members, opts, totalBudget)

	fmt.Printf("portfolio over %d interpreter builds of %s (budget %d, split equally):\n\n",
		len(members), pkg.Name, totalBudget)
	for i, m := range members {
		fmt.Printf("  %-30s %5d high-level paths, %4d new to the portfolio\n",
			m.Name, res.PerBuild[i], res.NewPerBuild[i])
	}
	fmt.Printf("\nmerged distinct high-level paths: %d\n\n", len(res.Tests))

	// Compare with spending the whole budget on the single best build.
	single := chef.NewSession(pkg.PyTest(minipy.Optimized).Program(), opts)
	fmt.Printf("single fully-optimized build at the same total budget: %d paths\n",
		len(single.Run(totalBudget)))
	fmt.Println("\nEach build steers the search into different target behaviors (the")
	fmt.Println("paper's Fig. 11 anomaly); the portfolio trades raw path count for")
	fmt.Println("behavioral diversity across builds.")
}
