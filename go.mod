module chef

go 1.22
