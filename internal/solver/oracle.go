package solver

import (
	"sort"

	"chef/internal/symexpr"
)

// Brute-force reference solver ("oracle") for the differential test suite.
//
// The production pipeline — constant filtering, slicing, canonicalization,
// three cache layers, bit-blasting, CDCL — has many places to be subtly
// wrong. The oracle has none: it enumerates every assignment of the query's
// variables and evaluates the constraints under the shared interpreter
// semantics (symexpr.EvalBool). Its verdict is trivially correct by
// construction, which makes it the ground truth the randomized differential
// tests and the fuzz target compare the real solver against.
//
// It lives in the package proper (not a _test file) so both the tests and
// the fuzz harness can use it, and so a developer can reach for it when
// minimizing a solver bug by hand.

// MaxOracleBits bounds the enumerated variable space: OracleCheck refuses
// queries whose variables exceed this many total bits (2^16 evaluations is
// the most a single differential trial should cost).
const MaxOracleBits = 16

// OracleCheck decides the conjunction pc by exhaustive enumeration. The
// returned model (Sat only) assigns every variable occurring in pc. feasible
// is false when the variable space exceeds MaxOracleBits, in which case the
// verdict is Unknown and callers should skip the comparison.
//
// Enumeration visits assignments in a fixed order (variables sorted by
// (Buf, Idx, W), values counting up), so the returned model is deterministic
// — but it is generally a *different* model than the SAT solver's; callers
// compare verdicts and validate models, never compare models to each other.
func OracleCheck(pc []*symexpr.Expr) (res Result, model symexpr.Assignment, feasible bool) {
	seen := map[symexpr.Var]bool{}
	var vars []symexpr.Var
	for _, c := range pc {
		for _, v := range symexpr.Vars(c) {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if a.Buf != b.Buf {
			return a.Buf < b.Buf
		}
		if a.Idx != b.Idx {
			return a.Idx < b.Idx
		}
		return a.W < b.W
	})
	totalBits := 0
	for _, v := range vars {
		totalBits += int(v.W)
	}
	if totalBits > MaxOracleBits {
		return Unknown, nil, false
	}
	m := symexpr.Assignment{}
	for n := uint64(0); n < 1<<uint(totalBits); n++ {
		bits := n
		for _, v := range vars {
			m[v] = bits & v.W.Mask()
			bits >>= uint(v.W)
		}
		ok := true
		for _, c := range pc {
			if !symexpr.EvalBool(c, m) {
				ok = false
				break
			}
		}
		if ok {
			out := symexpr.Assignment{}
			for _, v := range vars {
				out[v] = m[v]
			}
			return Sat, out, true
		}
	}
	return Unsat, nil, true
}
