package solver

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	sx "chef/internal/symexpr"
)

// appendDistinct queues n entries with distinct canonical queries, in order.
func appendDistinct(t *testing.T, p *PersistentStore, n int) {
	t.Helper()
	for k := 0; k < n; k++ {
		canon, key := persistQuery(uint64(k))
		model := sx.Assignment{{Buf: "a", W: sx.W8}: uint64(k+1) & 0xff}
		p.Append(key, canon, Sat, model, int64(10+k))
	}
}

// Regression for the dropped-buffer bug: a failed write used to discard the
// pending frames silently. A single injected write error must be retried
// transparently — nothing lost, Close clean, every entry durable.
func TestPersistWriteErrorRetriesAndRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	w := mustOpen(t, path)
	w.SetFaults(mustFaultPlan(t, "persist.write:err@n=1").Injector("p"))
	appendDistinct(t, w, 10)
	if err := w.Close(); err != nil {
		t.Fatalf("close after a recoverable write fault: %v", err)
	}
	if w.WriteErrors() != 1 || w.Retries() < 1 {
		t.Fatalf("write errors = %d, retries = %d; want 1 error and >= 1 retry",
			w.WriteErrors(), w.Retries())
	}
	if w.Lost() != 0 || w.Appended() != 10 {
		t.Fatalf("lost = %d, appended = %d; want nothing lost", w.Lost(), w.Appended())
	}

	r := mustOpen(t, path)
	defer r.Close()
	if r.Corruption() != nil {
		t.Fatalf("retried file reports corruption: %v", r.Corruption())
	}
	if r.Loaded() != 10 {
		t.Fatalf("loaded = %d, want 10", r.Loaded())
	}
	for k := uint64(0); k < 10; k++ {
		canon, key := persistQuery(k)
		if res, _, _, ok := r.Lookup(key, canon); !ok || res != Sat {
			t.Fatalf("k=%d: ok=%v res=%v after retried write", k, ok, res)
		}
	}
}

// A short write (half the buffer lands, then an error) must retain the
// unwritten tail and resume the byte stream exactly: the reloaded file is
// uncorrupted and complete.
func TestPersistShortWriteRetainsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	w := mustOpen(t, path)
	w.SetFaults(mustFaultPlan(t, "persist.write:short@n=1").Injector("p"))
	appendDistinct(t, w, 10)
	if err := w.Close(); err != nil {
		t.Fatalf("close after a recoverable short write: %v", err)
	}
	if w.WriteErrors() != 1 || w.Lost() != 0 || w.Appended() != 10 {
		t.Fatalf("write errors = %d, lost = %d, appended = %d; want 1/0/10",
			w.WriteErrors(), w.Lost(), w.Appended())
	}

	r := mustOpen(t, path)
	defer r.Close()
	if r.Corruption() != nil {
		t.Fatalf("short-write file reports corruption: %v", r.Corruption())
	}
	if r.Loaded() != 10 {
		t.Fatalf("loaded = %d, want 10 (tail dropped on short write?)", r.Loaded())
	}
}

// Under a persistent write failure the store must give up loudly after the
// retry budget: Close returns the disable error, every accepted entry is
// accounted lost (Appended drops to zero), and — since err-mode writes land
// zero bytes — the file on disk stays a clean, empty cache.
func TestPersistGiveUpAfterRetryBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	w := mustOpen(t, path)
	w.SetFaults(mustFaultPlan(t, "persist.write:err").Injector("p"))
	appendDistinct(t, w, 10)
	err := w.Close()
	if err == nil || !strings.Contains(err.Error(), "appends disabled") {
		t.Fatalf("close = %v, want the appends-disabled error", err)
	}
	if w.Lost() == 0 {
		t.Fatal("give-up accounted nothing as lost")
	}
	if w.Appended() != 0 {
		t.Fatalf("appended = %d after give-up, want 0 (lost entries must be subtracted)", w.Appended())
	}
	if w.WriteErrors() < maxFlushRetries {
		t.Fatalf("write errors = %d, want >= %d consecutive failures before giving up",
			w.WriteErrors(), maxFlushRetries)
	}

	r := mustOpen(t, path)
	defer r.Close()
	if r.Corruption() != nil || r.Loaded() != 0 {
		t.Fatalf("corruption=%v loaded=%d; want a clean empty cache", r.Corruption(), r.Loaded())
	}
}

// Give-up under sustained short writes: bytes do land on disk, so the file
// must still load as a valid prefix of the append order, and the durable
// count must equal Appended (accepted minus lost) exactly.
func TestPersistShortGiveUpLeavesLoadablePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	w := mustOpen(t, path)
	w.SetFaults(mustFaultPlan(t, "persist.write:short").Injector("p"))
	appendDistinct(t, w, 12)
	if err := w.Close(); err == nil {
		t.Fatal("close succeeded under sustained short writes")
	}
	if w.Lost() == 0 {
		t.Fatal("give-up accounted nothing as lost")
	}

	r := mustOpen(t, path)
	defer r.Close()
	if int64(r.Loaded()) != w.Appended() {
		t.Fatalf("loaded %d entries, want %d (durable == appended - lost)", r.Loaded(), w.Appended())
	}
	// Durable frames are a prefix of the append order: frame k is loadable
	// iff k < Loaded().
	for k := 0; k < 12; k++ {
		canon, key := persistQuery(uint64(k))
		_, _, _, ok := r.Lookup(key, canon)
		if want := k < r.Loaded(); ok != want {
			t.Fatalf("k=%d: loadable=%v, want %v (durable frames not a prefix)", k, ok, want)
		}
	}
}

// Property check across seeds: whatever mix of failed, short and clean
// writes a probabilistic plan produces, the reloaded entry count must equal
// the writer's final Appended — the accounting invariant the counters
// promise (durable == accepted - lost).
func TestPersistRandomWriteFaultsInvariant(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		short := ""
		if seed%2 == 0 {
			short = "short@"
		}
		spec := fmt.Sprintf("seed=%d;persist.write:%sp=0.5", seed, short)
		path := filepath.Join(t.TempDir(), fmt.Sprintf("cxc%d.bin", seed))
		w := mustOpen(t, path)
		w.SetFaults(mustFaultPlan(t, spec).Injector("p"))
		appendDistinct(t, w, 30)
		cerr := w.Close() // may or may not give up; the invariant holds either way

		r := mustOpen(t, path)
		if int64(r.Loaded()) != w.Appended() {
			t.Fatalf("seed=%d (%s): loaded %d, appended %d, lost %d (close err: %v)",
				seed, spec, r.Loaded(), w.Appended(), w.Lost(), cerr)
		}
		if cerr == nil && w.Lost() != 0 {
			t.Fatalf("seed=%d: clean close but lost = %d", seed, w.Lost())
		}
		if cerr != nil && w.Lost() == 0 {
			t.Fatalf("seed=%d: failed close but lost = 0", seed)
		}
		r.Close()
	}
}
