package solver

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	sx "chef/internal/symexpr"
)

// removeIfExists deletes path, tolerating its absence.
func removeIfExists(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Differential solver-oracle suite: the production solver — with every cache
// mode, slicing setting and cache-sharing arrangement — must agree with the
// brute-force oracle on satisfiability, and every Sat model it returns must
// actually satisfy the query under the interpreter semantics.
//
// The query generator draws from a small variable pool (one byte plus two
// booleans, 10 total bits) so the oracle enumerates at most 1024 assignments
// per query; the constraint shapes cover every operator family the engine
// emits (arithmetic, bitwise, shifts, signed/unsigned comparisons, ite,
// boolean structure).

var oraclePool = []sx.Var{
	{Buf: "a", W: sx.W8},
	{Buf: "p", W: sx.W1},
	{Buf: "q", W: sx.W1},
}

// oracleTerm builds a random W8 term over the pool.
func oracleTerm(r *rand.Rand, depth int) *sx.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return sx.NewVar(oraclePool[0])
		}
		return sx.Const(uint64(r.Intn(256)), sx.W8)
	}
	x := oracleTerm(r, depth-1)
	switch r.Intn(10) {
	case 0:
		return sx.Neg(x)
	case 1:
		return sx.Not(x)
	case 2:
		return sx.Ite(oracleBool(r, 0), x, oracleTerm(r, depth-1))
	case 3:
		return sx.ZExt(sx.NewVar(oraclePool[1+r.Intn(2)]), sx.W8)
	default:
		y := oracleTerm(r, depth-1)
		ops := []func(a, b *sx.Expr) *sx.Expr{
			sx.Add, sx.Sub, sx.Mul, sx.And, sx.Or, sx.Xor, sx.UDiv, sx.URem, sx.Shl, sx.LShr,
		}
		return ops[r.Intn(len(ops))](x, y)
	}
}

// oracleBool builds a random W1 constraint over the pool.
func oracleBool(r *rand.Rand, depth int) *sx.Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return sx.NewVar(oraclePool[1])
		case 1:
			return sx.NewVar(oraclePool[2])
		default:
			cmps := []func(a, b *sx.Expr) *sx.Expr{sx.Eq, sx.Ne, sx.Ult, sx.Ule, sx.Slt, sx.Sle}
			return cmps[r.Intn(len(cmps))](oracleTerm(r, 1), oracleTerm(r, 1))
		}
	}
	switch r.Intn(4) {
	case 0:
		return sx.Not(oracleBool(r, depth-1))
	case 1:
		return sx.BoolAnd(oracleBool(r, depth-1), oracleBool(r, depth-1))
	case 2:
		return sx.BoolOr(oracleBool(r, depth-1), oracleBool(r, depth-1))
	default:
		cmps := []func(a, b *sx.Expr) *sx.Expr{sx.Eq, sx.Ne, sx.Ult, sx.Ule, sx.Slt, sx.Sle}
		return cmps[r.Intn(len(cmps))](oracleTerm(r, 2), oracleTerm(r, 2))
	}
}

// oracleQuery is one generated trial: a conjunction plus an optional base
// assignment (exercising the slicing path).
type oracleQuery struct {
	pc     []*sx.Expr
	base   sx.Assignment
	want   Result
	checks int // constraints, for reporting
}

func genOracleQueries(t testing.TB, n int, seed int64) []oracleQuery {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	out := make([]oracleQuery, 0, n)
	for len(out) < n {
		k := 1 + r.Intn(4)
		pc := make([]*sx.Expr, 0, k)
		for i := 0; i < k; i++ {
			pc = append(pc, oracleBool(r, 2))
		}
		var base sx.Assignment
		if r.Intn(2) == 0 {
			base = sx.Assignment{}
			for _, v := range oraclePool {
				base[v] = r.Uint64() & v.W.Mask()
			}
		}
		want, _, feasible := OracleCheck(pc)
		if !feasible {
			t.Fatalf("query over fixed pool infeasible for oracle: %v", pc)
		}
		out = append(out, oracleQuery{pc: pc, base: base, want: want, checks: k})
	}
	return out
}

// checkAgainstOracle runs one query through s and compares with the oracle
// verdict, validating the model on Sat.
func checkAgainstOracle(t *testing.T, cfg string, i int, q oracleQuery, s *Solver) (Result, sx.Assignment) {
	t.Helper()
	res, model := s.Check(q.pc, q.base)
	if res != q.want {
		t.Fatalf("[%s] query %d: solver=%v oracle=%v pc=%v base=%v", cfg, i, res, q.want, q.pc, q.base)
	}
	if res == Sat {
		for _, c := range q.pc {
			if !sx.EvalBool(c, model) {
				t.Fatalf("[%s] query %d: returned model %v violates %v", cfg, i, model, c)
			}
		}
	}
	return res, model
}

// TestSolverMatchesOracle cross-checks every backend x cache mode x slicing
// setting, with both fresh private caches and a cache shared between two
// solvers, on the same generated query set. Together with the warm/cold
// persistent pass below, the suite compares well over 10k (query,
// configuration) pairs.
func TestSolverMatchesOracle(t *testing.T) {
	n := 400
	if !testing.Short() {
		n = 1500
	}
	queries := genOracleQueries(t, n, 424242)

	modes := []CacheMode{CacheExact, CacheSubsume}
	for _, sm := range []SolverMode{ModeOneshot, ModeIncremental, ModeBDD} {
		qs := queries
		if sm == ModeIncremental {
			// The random stream shares no prefixes, so every query pops the
			// whole trail and re-propagates the accumulated context — the
			// backend's worst case, with per-query cost growing in stream
			// position. A third of the stream keeps the verdict cross-check
			// broad without dominating suite wall time; prefix-shaped
			// streams (the representative workload) are exercised at full
			// depth by TestIncrementalPrefixPopRepush.
			qs = queries[:len(queries)/3]
		}
		for _, mode := range modes {
			// Slicing is a no-op under the incremental backend (it always
			// solves in path order), so the noslice cell only exists for
			// oneshot — under incremental it would duplicate the default.
			noSlices := []bool{false, true}
			if sm == ModeIncremental {
				noSlices = []bool{false}
			}
			for _, noSlice := range noSlices {
				cfg := "backend=" + sm.String() + "/mode=" + mode.String()
				if noSlice {
					cfg += "/noslice"
				}
				s := New(Options{Mode: mode, DisableSlicing: noSlice, SolverMode: sm})
				for i, q := range qs {
					checkAgainstOracle(t, cfg, i, q, s)
				}
			}
			// Shared cache between two solvers, queries interleaved: the second
			// solver sees entries it never stored.
			cfg := "backend=" + sm.String() + "/mode=" + mode.String() + "/shared"
			shared := NewQueryCache(0)
			ss := []*Solver{
				New(Options{Mode: mode, Cache: shared, SolverMode: sm}),
				New(Options{Mode: mode, Cache: shared, SolverMode: sm}),
			}
			for i, q := range qs {
				checkAgainstOracle(t, cfg, i, q, ss[i%2])
			}
			// No cache at all, as the control. For the incremental backend
			// this is the hardest configuration: every query reaches the
			// live context, so every verdict exercises trail pop/re-push.
			s := New(Options{Mode: mode, DisableCache: true, SolverMode: sm})
			for i, q := range qs {
				checkAgainstOracle(t, "backend="+sm.String()+"/mode="+mode.String()+"/nocache", i, q, s)
			}
		}
	}
}

// TestSolverMatchesOraclePersistent runs the query set cold with a fresh
// persistent store, then warm from the written file, checking both passes
// against the oracle and checking the warm pass returns bit-identical
// results — verdict, model and accumulated propagation count — to the cold
// one.
func TestSolverMatchesOraclePersistent(t *testing.T) {
	n := 300
	if !testing.Short() {
		n = 1000
	}
	queries := genOracleQueries(t, n, 99991)
	path := filepath.Join(t.TempDir(), "cxc.bin")

	type outcome struct {
		res   Result
		model sx.Assignment
	}
	runPass := func(label string, mode CacheMode, sm SolverMode, qs []oracleQuery) ([]outcome, Stats) {
		store, err := OpenPersistentStore(path)
		if err != nil {
			t.Fatalf("%s: open: %v", label, err)
		}
		defer func() {
			if err := store.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
		}()
		if cerr := store.Corruption(); cerr != nil {
			t.Fatalf("%s: unexpected corruption: %v", label, cerr)
		}
		s := New(Options{Mode: mode, Persist: store, SolverMode: sm})
		outs := make([]outcome, 0, len(qs))
		for i, q := range qs {
			res, model := checkAgainstOracle(t, label, i, q, s)
			outs = append(outs, outcome{res, model})
		}
		return outs, s.Stats()
	}

	for _, sm := range []SolverMode{ModeOneshot, ModeIncremental, ModeBDD} {
		qs := queries
		if sm == ModeIncremental {
			// Same wall-time consideration as TestSolverMatchesOracle: the
			// prefix-free random stream is the incremental backend's worst
			// case, and the cold/warm replay contract is independent of
			// stream length.
			qs = queries[:len(queries)/3]
		}
		for _, mode := range []CacheMode{CacheExact, CacheSubsume} {
			cfg := sm.String() + "/" + mode.String()
			if err := removeIfExists(path); err != nil {
				t.Fatal(err)
			}
			// A fully-warm store replays every cold verdict, model and cost
			// byte-for-byte regardless of backend: the cold pass recorded the
			// whole stream, so the warm pass never reaches the live context.
			cold, coldStats := runPass("cold/"+cfg, mode, sm, qs)
			warm, warmStats := runPass("warm/"+cfg, mode, sm, qs)
			if warmStats.CacheHitsPersist == 0 {
				t.Fatalf("cfg=%s: warm pass recorded no persistent hits", cfg)
			}
			if coldStats.Propagations != warmStats.Propagations {
				t.Fatalf("cfg=%s: virtual cost diverged: cold %d, warm %d propagations",
					cfg, coldStats.Propagations, warmStats.Propagations)
			}
			if coldStats.SatQueries != warmStats.SatQueries || coldStats.UnsatQueries != warmStats.UnsatQueries {
				t.Fatalf("cfg=%s: solve counters diverged: cold %+v warm %+v", cfg, coldStats, warmStats)
			}
			for i := range cold {
				if cold[i].res != warm[i].res {
					t.Fatalf("cfg=%s query %d: cold %v, warm %v", cfg, i, cold[i].res, warm[i].res)
				}
				if !sameModel(cold[i].model, warm[i].model) {
					t.Fatalf("cfg=%s query %d: cold model %v, warm model %v",
						cfg, i, cold[i].model, warm[i].model)
				}
			}
		}
	}
}

func sameModel(a, b sx.Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		bv, ok := b[k]
		if !ok || bv != v {
			return false
		}
	}
	return true
}

// TestSubsumptionHitsOccur pins that the subsume layer actually fires on the
// natural query pattern of symbolic execution: path conditions growing one
// conjunct at a time.
func TestSubsumptionHitsOccur(t *testing.T) {
	s := New(Options{Mode: CacheSubsume})
	a := sx.NewVar(sx.Var{Buf: "a", W: sx.W8})
	grow := []*sx.Expr{
		sx.Ult(a, sx.Const(200, sx.W8)),
		sx.Ult(sx.Const(10, sx.W8), a),
		sx.Ne(a, sx.Const(50, sx.W8)),
	}
	for i := 1; i <= len(grow); i++ {
		if res, m := s.Check(grow[:i], nil); res != Sat {
			t.Fatalf("prefix %d: %v, want Sat", i, res)
		} else {
			for _, c := range grow[:i] {
				if !sx.EvalBool(c, m) {
					t.Fatalf("prefix %d: model %v violates %v", i, m, c)
				}
			}
		}
	}
	st := s.Stats()
	if st.CacheHitsSubsumeSat == 0 {
		t.Fatalf("growing path condition produced no subsume-sat hits: %+v", st)
	}

	// Unsat subsumption: once a core is known unsat, any superset is decided
	// without touching the SAT solver.
	s2 := New(Options{Mode: CacheSubsume})
	contradiction := []*sx.Expr{
		sx.Ult(a, sx.Const(10, sx.W8)),
		sx.Ult(sx.Const(20, sx.W8), a),
	}
	if res, _ := s2.Check(contradiction, nil); res != Unsat {
		t.Fatalf("contradiction: %v, want Unsat", res)
	}
	wider := append(append([]*sx.Expr(nil), contradiction...), sx.Ne(a, sx.Const(3, sx.W8)))
	if res, _ := s2.Check(wider, nil); res != Unsat {
		t.Fatalf("superset of contradiction: %v, want Unsat", res)
	}
	if st := s2.Stats(); st.CacheHitsSubsumeUnsat == 0 {
		t.Fatalf("superset of known-unsat core produced no subsume-unsat hit: %+v", st)
	}
}
