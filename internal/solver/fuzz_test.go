package solver

import (
	"testing"

	sx "chef/internal/symexpr"
)

// byteDriver turns a fuzzer-controlled byte stream into structured decisions;
// exhausted input yields zeros, so every byte string maps to a well-formed
// query (no rejected inputs, maximal fuzzing throughput).
type byteDriver struct {
	data []byte
	pos  int
}

func (d *byteDriver) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// fuzzTerm builds a W8 term over the fixed oracle pool, driven by input
// bytes.
func fuzzTerm(d *byteDriver, depth int) *sx.Expr {
	b := d.next()
	if depth == 0 || b%3 == 0 {
		if b%2 == 0 {
			return sx.NewVar(oraclePool[0])
		}
		return sx.Const(uint64(d.next()), sx.W8)
	}
	x := fuzzTerm(d, depth-1)
	switch b % 13 {
	case 1:
		return sx.Neg(x)
	case 2:
		return sx.Not(x)
	case 3:
		return sx.ZExt(sx.NewVar(oraclePool[1+int(d.next())%2]), sx.W8)
	case 4:
		return sx.Ite(fuzzBool(d, 0), x, fuzzTerm(d, depth-1))
	default:
		y := fuzzTerm(d, depth-1)
		ops := []func(a, b *sx.Expr) *sx.Expr{
			sx.Add, sx.Sub, sx.Mul, sx.And, sx.Or, sx.Xor, sx.UDiv, sx.URem, sx.Shl, sx.LShr,
		}
		return ops[int(b)%len(ops)](x, y)
	}
}

// fuzzBool builds a W1 constraint over the pool, driven by input bytes.
func fuzzBool(d *byteDriver, depth int) *sx.Expr {
	b := d.next()
	cmps := []func(a, b *sx.Expr) *sx.Expr{sx.Eq, sx.Ne, sx.Ult, sx.Ule, sx.Slt, sx.Sle}
	if depth == 0 || b%4 == 0 {
		switch b % 3 {
		case 0:
			return sx.NewVar(oraclePool[1])
		case 1:
			return sx.NewVar(oraclePool[2])
		default:
			return cmps[int(d.next())%len(cmps)](fuzzTerm(d, 1), fuzzTerm(d, 1))
		}
	}
	switch b % 4 {
	case 1:
		return sx.Not(fuzzBool(d, depth-1))
	case 2:
		return sx.BoolAnd(fuzzBool(d, depth-1), fuzzBool(d, depth-1))
	case 3:
		return sx.BoolOr(fuzzBool(d, depth-1), fuzzBool(d, depth-1))
	default:
		return cmps[int(d.next())%len(cmps)](fuzzTerm(d, 2), fuzzTerm(d, 2))
	}
}

// FuzzSolverCheck feeds byte-derived path conditions through the solver in
// every cache mode on all three backends (oneshot, incremental, bdd) and
// cross-checks: all configurations must return the same verdict as the
// cache-disabled control and the brute-force oracle, every Sat model must
// satisfy the query, and a repeated check (served from the cache, or for the
// incremental nocache control re-solved on the retained assumption prefix)
// must reproduce the verdict. The variable pool is fixed at 10 total bits, so
// the oracle is always feasible.
func FuzzSolverCheck(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x55, 0xaa, 0x13, 0x37, 0x01})
	f.Add([]byte("subsume-me-gently"))
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0, 0, 255, 255, 255, 255, 17, 34, 51, 68})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &byteDriver{data: data}
		k := 1 + int(d.next())%4
		pc := make([]*sx.Expr, 0, k)
		for i := 0; i < k; i++ {
			pc = append(pc, fuzzBool(d, 2))
		}
		var base sx.Assignment
		if d.next()%2 == 1 {
			base = sx.Assignment{}
			for _, v := range oraclePool {
				base[v] = uint64(d.next()) & v.W.Mask()
			}
		}

		want, _, feasible := OracleCheck(pc)
		if !feasible {
			t.Fatalf("pool exceeded oracle bound: %v", pc)
		}

		solvers := map[string]*Solver{
			"nocache":     New(Options{DisableCache: true}),
			"exact":       New(Options{Mode: CacheExact}),
			"subsume":     New(Options{Mode: CacheSubsume}),
			"inc/nocache": New(Options{DisableCache: true, SolverMode: ModeIncremental}),
			"inc/exact":   New(Options{Mode: CacheExact, SolverMode: ModeIncremental}),
			"inc/subsume": New(Options{Mode: CacheSubsume, SolverMode: ModeIncremental}),
			"bdd/nocache": New(Options{DisableCache: true, SolverMode: ModeBDD}),
			"bdd/exact":   New(Options{Mode: CacheExact, SolverMode: ModeBDD}),
			"bdd/subsume": New(Options{Mode: CacheSubsume, SolverMode: ModeBDD}),
		}
		for name, s := range solvers {
			for round := 0; round < 2; round++ { // round 2 exercises cache hits
				res, model := s.CheckQuery(Query{PC: pc, Base: base})
				if res != want {
					t.Fatalf("[%s round %d] solver=%v oracle=%v pc=%v base=%v",
						name, round, res, want, pc, base)
				}
				if res == Sat {
					for _, c := range pc {
						if !sx.EvalBool(c, model) {
							t.Fatalf("[%s round %d] model %v violates %v", name, round, model, c)
						}
					}
				}
			}
		}
	})
}
