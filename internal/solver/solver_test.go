package solver

import (
	"math/rand"
	"testing"

	sx "chef/internal/symexpr"
)

func v8(name string, idx int) *sx.Expr { return sx.NewVar(sx.Var{Buf: name, Idx: idx, W: sx.W8}) }
func v32(name string) *sx.Expr         { return sx.NewVar(sx.Var{Buf: name, W: sx.W32}) }
func c8(v uint64) *sx.Expr             { return sx.Const(v, sx.W8) }
func c32(v uint64) *sx.Expr            { return sx.Const(v, sx.W32) }
func pc(es ...*sx.Expr) []*sx.Expr     { return es }
func checkModel(t *testing.T, constraints []*sx.Expr, m sx.Assignment) {
	t.Helper()
	for _, c := range constraints {
		if !sx.EvalBool(c, m) {
			t.Fatalf("model %v does not satisfy %v", m, c)
		}
	}
}

func TestSatSimpleEquality(t *testing.T) {
	s := New(Options{})
	x := v8("x", 0)
	res, m := s.Check(pc(sx.Eq(x, c8(42))), nil)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	if m[sx.Var{Buf: "x", W: sx.W8}] != 42 {
		t.Fatalf("model = %v, want x=42", m)
	}
}

func TestUnsatContradiction(t *testing.T) {
	s := New(Options{})
	x := v8("x", 0)
	res, _ := s.Check(pc(sx.Eq(x, c8(1)), sx.Eq(x, c8(2))), nil)
	if res != Unsat {
		t.Fatalf("got %v, want unsat", res)
	}
}

func TestArithmeticConstraint(t *testing.T) {
	s := New(Options{})
	x := v32("x")
	// 3*x == 45 && x < 100
	cs := pc(sx.Eq(sx.Mul(c32(3), x), c32(45)), sx.Ult(x, c32(100)))
	res, m := s.Check(cs, nil)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	checkModel(t, cs, m)
	if m[sx.Var{Buf: "x", W: sx.W32}] != 15 {
		t.Fatalf("model = %v, want x=15", m)
	}
}

func TestSignedComparison(t *testing.T) {
	s := New(Options{})
	x := v32("x")
	// x < 0 signed && x > -10 signed
	minus10 := c32(uint64(uint32(0xfffffff6)))
	cs := pc(sx.Slt(x, c32(0)), sx.Slt(minus10, x))
	res, m := s.Check(cs, nil)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	checkModel(t, cs, m)
	got := sx.SignExtendConst(m[sx.Var{Buf: "x", W: sx.W32}], sx.W32)
	if got >= 0 || got <= -10 {
		t.Fatalf("x = %d, want in (-10, 0)", got)
	}
}

func TestDivRemConstraints(t *testing.T) {
	s := New(Options{})
	x := v8("x", 0)
	// x / 7 == 3 && x % 7 == 2  => x == 23
	cs := pc(sx.Eq(sx.UDiv(x, c8(7)), c8(3)), sx.Eq(sx.URem(x, c8(7)), c8(2)))
	res, m := s.Check(cs, nil)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	if m[sx.Var{Buf: "x", W: sx.W8}] != 23 {
		t.Fatalf("model = %v, want x=23", m)
	}
}

func TestShiftConstraints(t *testing.T) {
	s := New(Options{})
	x := v8("x", 0)
	cs := pc(sx.Eq(sx.Shl(x, c8(2)), c8(0x54)), sx.Ult(x, c8(0x40)))
	res, m := s.Check(cs, nil)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	checkModel(t, cs, m)
}

func TestStringLikeByteConstraints(t *testing.T) {
	// The shape produced by symbolic string comparisons: conjunction of
	// per-byte equalities and inequalities.
	s := New(Options{})
	var cs []*sx.Expr
	want := []byte("hello")
	for i, b := range want {
		cs = append(cs, sx.Eq(v8("s", i), c8(uint64(b))))
	}
	cs = append(cs, sx.Not(sx.Eq(v8("s", 5), c8(0))))
	res, m := s.Check(cs, nil)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	for i, b := range want {
		if m[sx.Var{Buf: "s", Idx: i, W: sx.W8}] != uint64(b) {
			t.Fatalf("byte %d = %d, want %d", i, m[sx.Var{Buf: "s", Idx: i, W: sx.W8}], b)
		}
	}
	if m[sx.Var{Buf: "s", Idx: 5, W: sx.W8}] == 0 {
		t.Fatal("byte 5 must be nonzero")
	}
}

func TestHashInversionShape(t *testing.T) {
	// h = ((b0*31)+b1)*31+b2 ; ask the solver to invert it, as a symbolic
	// hash-table insertion would (the paper's motivation for hash
	// neutralization). Small width keeps it tractable.
	s := New(Options{})
	h := sx.ZExt(v8("k", 0), sx.W32)
	h = sx.Add(sx.Mul(h, c32(31)), sx.ZExt(v8("k", 1), sx.W32))
	h = sx.Add(sx.Mul(h, c32(31)), sx.ZExt(v8("k", 2), sx.W32))
	target := uint64(uint32('a')*31*31 + uint32('b')*31 + uint32('c'))
	cs := pc(sx.Eq(h, c32(target)))
	res, m := s.Check(cs, nil)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	checkModel(t, cs, m)
}

func TestSlicingReusesBaseValues(t *testing.T) {
	s := New(Options{})
	base := sx.Assignment{
		sx.Var{Buf: "a", W: sx.W8}: 10,
		sx.Var{Buf: "b", W: sx.W8}: 20,
	}
	// Group 1 (a) is satisfied by base; group 2 (b) is not.
	cs := pc(
		sx.Eq(v8("a", 0), c8(10)),
		sx.Eq(v8("b", 0), c8(99)),
	)
	res, m := s.Check(cs, base)
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	if m[sx.Var{Buf: "a", W: sx.W8}] != 10 {
		t.Fatalf("a should be kept from base, got %v", m)
	}
	if m[sx.Var{Buf: "b", W: sx.W8}] != 99 {
		t.Fatalf("b should be solved to 99, got %v", m)
	}
}

func TestCacheHits(t *testing.T) {
	s := New(Options{})
	x := v8("x", 0)
	cs := pc(sx.Eq(x, c8(7)))
	s.Check(cs, nil)
	before := s.Stats().CacheHits
	s.Check(cs, nil)
	if s.Stats().CacheHits != before+1 {
		t.Fatalf("expected a cache hit, stats: %+v", s.Stats())
	}
}

func TestCacheDisabled(t *testing.T) {
	s := New(Options{DisableCache: true})
	x := v8("x", 0)
	cs := pc(sx.Eq(x, c8(7)))
	s.Check(cs, nil)
	s.Check(cs, nil)
	if s.Stats().CacheHits != 0 {
		t.Fatalf("cache disabled but got hits: %+v", s.Stats())
	}
}

func TestMaximize(t *testing.T) {
	s := New(Options{})
	x := v8("x", 0)
	// x < 100 => max is 99
	got, ok := s.Maximize(x, Query{PC: pc(sx.Ult(x, c8(100))), Base: sx.Assignment{}})
	if !ok || got != 99 {
		t.Fatalf("Maximize = %d, %v; want 99, true", got, ok)
	}
	// Unconstrained: max is 255.
	got, ok = s.Maximize(x, Query{Base: sx.Assignment{}})
	if !ok || got != 255 {
		t.Fatalf("Maximize unconstrained = %d, %v; want 255, true", got, ok)
	}
	// Constant expression.
	got, ok = s.Maximize(c8(13), Query{})
	if !ok || got != 13 {
		t.Fatalf("Maximize const = %d, %v; want 13, true", got, ok)
	}
	// Unsat path condition.
	_, ok = s.Maximize(x, Query{PC: pc(sx.Ult(x, c8(0))), Base: sx.Assignment{}})
	if ok {
		t.Fatal("Maximize should fail on unsat pc")
	}
}

func TestBudgetExhaustionReturnsUnknown(t *testing.T) {
	s := New(Options{PropBudget: 1, DisableCache: true, DisableSlicing: true})
	// A multiplication of two symbolic 32-bit values needs real work.
	x, y := v32("x"), v32("y")
	cs := pc(sx.Eq(sx.Mul(x, y), c32(0x12345678)), sx.Not(sx.Eq(x, c32(1))), sx.Not(sx.Eq(y, c32(1))))
	res, _ := s.Check(cs, nil)
	if res == Sat {
		// With budget 1 the solver must not be able to finish real work;
		// trivial simplification could still decide it, so only Sat-with-
		// wrong-model would be an error. Verify by evaluation if Sat.
		t.Log("solver finished despite tiny budget; acceptable if model valid")
	}
	if res != Unknown && res != Sat && res != Unsat {
		t.Fatalf("invalid result %v", res)
	}
}

// Property: for random constraint systems built from byte comparisons, a Sat
// answer always carries a satisfying model, and concrete evaluation agrees.
func TestRandomByteSystemsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := New(Options{})
	for trial := 0; trial < 60; trial++ {
		nv := 2 + r.Intn(3)
		var cs []*sx.Expr
		// Build a random satisfiable system from a hidden solution.
		hidden := make([]uint64, nv)
		for i := range hidden {
			hidden[i] = uint64(r.Intn(256))
		}
		for k := 0; k < 4; k++ {
			i, j := r.Intn(nv), r.Intn(nv)
			a, b := v8("z", i), v8("z", j)
			switch r.Intn(4) {
			case 0:
				cs = append(cs, sx.Eq(sx.Add(a, b), c8((hidden[i]+hidden[j])&0xff)))
			case 1:
				cs = append(cs, sx.Eq(sx.Xor(a, b), c8(hidden[i]^hidden[j])))
			case 2:
				if hidden[i] < hidden[j] {
					cs = append(cs, sx.Ult(a, b))
				} else {
					cs = append(cs, sx.Ule(b, a))
				}
			case 3:
				cs = append(cs, sx.Eq(a, c8(hidden[i])))
			}
		}
		res, m := s.Check(cs, nil)
		if res != Sat {
			t.Fatalf("trial %d: constructed-satisfiable system reported %v: %v", trial, res, cs)
		}
		checkModel(t, cs, m)
	}
}

// Property: systems made contradictory by construction must be Unsat.
func TestRandomUnsatSystemsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	s := New(Options{})
	for trial := 0; trial < 40; trial++ {
		x := v8("u", trial)
		k := uint64(r.Intn(255))
		cs := pc(
			sx.Ult(x, c8(k+1)), // x <= k
			sx.Ult(c8(k), x),   // x > k
		)
		res, _ := s.Check(cs, nil)
		if res != Unsat {
			t.Fatalf("trial %d: contradictory system reported %v", trial, res)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(Options{})
	x := v8("x", 0)
	s.Check(pc(sx.Eq(x, c8(1))), nil)
	s.Check(pc(sx.Eq(x, c8(1)), sx.Eq(x, c8(2))), nil)
	st := s.Stats()
	if st.Queries != 2 || st.SatQueries != 1 || st.UnsatQueries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEmptyAndTrivialQueries(t *testing.T) {
	s := New(Options{})
	if res, _ := s.Check(nil, nil); res != Sat {
		t.Fatal("empty pc must be sat")
	}
	if res, _ := s.Check(pc(sx.True), nil); res != Sat {
		t.Fatal("trivially true pc must be sat")
	}
	if res, _ := s.Check(pc(sx.False), nil); res != Unsat {
		t.Fatal("trivially false pc must be unsat")
	}
}

func TestCacheModelNotPolluted(t *testing.T) {
	// Regression: a cache hit must not leak base-specific kept values into
	// the cached model; a later query with a different base would otherwise
	// receive stale values and produce inputs violating its path condition.
	s := New(Options{})
	target := sx.Ult(c8(100), v8("c", 0)) // c > 100, the group to solve
	baseA := sx.Assignment{
		sx.Var{Buf: "a", W: sx.W8}: 0,
		sx.Var{Buf: "c", W: sx.W8}: 0,
	}
	csA := pc(sx.Ule(v8("a", 0), c8(100)), target) // a <= 100 satisfied by baseA
	res, mA := s.Check(csA, baseA)
	if res != Sat {
		t.Fatalf("query A: %v", res)
	}
	checkModel(t, csA, mA)
	// Same sliced subquery (target), but now "a" must be > 100.
	baseB := sx.Assignment{
		sx.Var{Buf: "a", W: sx.W8}: 200,
		sx.Var{Buf: "c", W: sx.W8}: 0,
	}
	csB := pc(sx.Ult(c8(100), v8("a", 0)), target)
	res, mB := s.Check(csB, baseB)
	if res != Sat {
		t.Fatalf("query B: %v", res)
	}
	checkModel(t, csB, mB)
	if mB[sx.Var{Buf: "a", W: sx.W8}] != 200 {
		t.Fatalf("kept value for a = %d, want 200 (cache pollution)", mB[sx.Var{Buf: "a", W: sx.W8}])
	}
}
