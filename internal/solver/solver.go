package solver

import (
	"sort"
	"time"

	"chef/internal/faults"
	"chef/internal/obs"
	"chef/internal/symexpr"
)

// Result is the outcome of a satisfiability query.
type Result int8

// Query outcomes. Unknown is returned when the propagation budget is
// exhausted; the engine treats it as unsatisfiable, trading completeness for
// progress exactly as the paper concedes for hard constraints.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// CacheMode selects which lookup layers of the counterexample cache a solver
// consults. Indexing for subsumption happens on every Store regardless of
// mode, so a shared QueryCache can serve solvers in either mode.
type CacheMode uint8

// Cache modes. CacheExact answers only pointer-identical canonical queries;
// CacheSubsume additionally derives answers from cached subset/superset
// queries (see subsume.go).
const (
	CacheExact CacheMode = iota
	CacheSubsume
)

func (m CacheMode) String() string {
	if m == CacheSubsume {
		return "subsume"
	}
	return "exact"
}

// ParseCacheMode maps the -cachemode flag spellings to a CacheMode.
func ParseCacheMode(s string) (CacheMode, bool) {
	switch s {
	case "exact", "":
		return CacheExact, true
	case "subsume":
		return CacheSubsume, true
	}
	return CacheExact, false
}

// SolverMode selects the decision procedure behind the cache/persist front
// end: the historical oneshot backend (fresh CNF per query), the
// assumption-scoped incremental backend (one live Context per solver, see
// incremental.go), or the BDD fast path for boolean-dominated path
// conditions with a CDCL fallback (see bdd.go).
type SolverMode uint8

// Solver modes. ModeOneshot is the default and preserves the historical
// byte-exact behavior; ModeIncremental retains blasted CNF, trail prefixes
// and learned clauses across the queries of one solver; ModeBDD conjoins
// boolean skeletons into a reduced-ordered-BDD and bit-blasts only the
// queries the diagram cannot decide.
const (
	ModeOneshot SolverMode = iota
	ModeIncremental
	ModeBDD
)

func (m SolverMode) String() string {
	switch m {
	case ModeIncremental:
		return "incremental"
	case ModeBDD:
		return "bdd"
	}
	return "oneshot"
}

// ParseSolverMode maps the -solvermode flag spellings to a SolverMode.
func ParseSolverMode(s string) (SolverMode, bool) {
	switch s {
	case "oneshot", "":
		return ModeOneshot, true
	case "incremental":
		return ModeIncremental, true
	case "bdd":
		return ModeBDD, true
	}
	return ModeOneshot, false
}

// Cost is the virtual work a backend performed for one Solve call, in the
// units Stats accumulates (and the engine converts to virtual time).
type Cost struct {
	Propagations int64
	Conflicts    int64
	ClausesAdded int64
}

// Backend is the decision procedure behind the solver front end. The
// constant filter, slicing, canonicalization and every cache layer (exact,
// subsume, persistent) compose in front of it unchanged; a Backend only sees
// the queries that miss all of them. The oneshot backend receives canonical
// constraint order; the incremental and bdd backends receive path order
// (root first), which is what their prefix reuse keys off. A Backend is
// owned by one Solver and shares its single-goroutine discipline.
type Backend interface {
	// Mode reports which SolverMode the backend implements.
	Mode() SolverMode
	// Solve decides the conjunction of pc under the given propagation
	// budget. On Sat the model must cover every variable of pc.
	Solve(pc []*symexpr.Expr, budget int64) (Result, symexpr.Assignment, Cost)
}

// Options configure the solver front end. The zero value enables every
// optimization with an effectively unlimited budget.
type Options struct {
	// DisableSlicing turns off independent-constraint slicing.
	DisableSlicing bool
	// DisableCache turns off the query cache.
	DisableCache bool
	// Mode selects the cache lookup layers (exact only, or exact+subsume).
	Mode CacheMode
	// SolverMode selects the decision procedure behind the cache layers:
	// ModeOneshot (default; fresh CNF per query), ModeIncremental
	// (assumption-scoped Context with trail and learned-clause retention),
	// or ModeBDD (boolean-skeleton diagram with CDCL fallback; verdicts and
	// models stay a pure function of each query, costs are stream-scoped).
	// Incremental mode skips slicing — slicing rewrites the constraint
	// sequence per query, destroying the path-prefix structure the Context
	// reuses — and its models and propagation costs are a deterministic
	// function of the solver's whole query stream rather than of each query
	// alone (see Context).
	SolverMode SolverMode
	// PropBudget caps SAT propagations per query; 0 means the default cap.
	PropBudget int64
	// Cache, when non-nil, is used as the counterexample cache instead of a
	// fresh private one, enabling cross-session (and cross-goroutine) hit
	// reuse. See the QueryCache determinism note before sharing one between
	// concurrent sessions.
	Cache *QueryCache
	// Persist, when non-nil, is the disk-backed layer of solved queries (see
	// persist.go): a *PersistentStore for single-run CLI use, or a
	// *PersistView for multi-job servers that share one warm store. It is
	// consulted after the in-memory layers miss, and every freshly *solved*
	// (never derived) result is appended to it. A persistent hit replays the
	// recorded propagation cost into the solver's stats, so a warm rerun
	// spends the same virtual time a cold run would — the store accelerates
	// wall clock without perturbing deterministic output.
	//
	// Callers must not assign a typed-nil pointer here (wrap the assignment
	// in a nil check); the solver treats any non-nil interface as enabled.
	Persist PersistLayer
	// Metrics, when non-nil, receives per-query counters and latency
	// histograms (virtual propagations and wall-clock ns). Wall clock is read
	// only when observability is enabled and never enters solver results, so
	// instrumented runs stay deterministic.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one structured event per Check call.
	Tracer obs.Tracer
	// Spans, when non-nil, receives hierarchical profiler spans: one
	// solver.check span per query, with blast/cache/persist sub-spans. Like a
	// Solver, a SpanProfiler serves a single goroutine. Purely observational.
	Spans *obs.SpanProfiler
	// Faults, when non-nil, injects deterministic solver faults (see
	// internal/faults): a fired solver.unknown rule forces the verdict of an
	// actually-solved query to Unknown, as if the propagation budget had
	// been exhausted. Cache and persistent hits are unaffected — a budget
	// miss can only happen on a real solve — and forced Unknowns are never
	// cached or persisted, exactly like real ones.
	Faults *faults.Injector
}

const defaultPropBudget = 4_000_000

// PersistLayer is the surface of the persistent counterexample cache as the
// solver consumes it. Both *PersistentStore (whole-store reads: single CLI
// runs) and *PersistView (fixed point-in-time reads: one job of a multi-job
// server) implement it. Lookup's cost result is the propagation count of the
// original solve, replayed into the stats on a hit.
type PersistLayer interface {
	Lookup(key uint64, canon []*symexpr.Expr) (Result, symexpr.Assignment, int64, bool)
	Append(key uint64, canon []*symexpr.Expr, r Result, m symexpr.Assignment, cost int64)
}

// Stats accumulates solver work, expressed in units the engine converts to
// virtual time. Solver.Stats returns it by value — a point-in-time snapshot
// that does not track later queries; aggregators combine snapshots with Add
// rather than summing individual fields by hand.
type Stats struct {
	Queries      int64
	SatQueries   int64
	UnsatQueries int64
	Unknowns     int64
	CacheHits    int64
	CacheMisses  int64
	Propagations int64
	Conflicts    int64
	ClausesAdded int64

	// Per-class decomposition of CacheHits.
	CacheHitsExact        int64
	CacheHitsSubsumeSat   int64
	CacheHitsSubsumeUnsat int64
	CacheHitsPersist      int64

	// Incremental-backend counters (zero in oneshot mode).
	IncContexts    int64 // contexts built (first query + rebuilds)
	IncAssumptions int64 // assumption literals allocated
	IncLearnedKept int64 // learned clauses carried into a query, summed over queries
	IncRebuilds    int64 // contexts discarded at the growth caps

	// BDD-backend counters (zero outside bdd mode).
	BDDNodes     int64 // unique diagram nodes created
	BDDApplyHits int64 // ite memo-cache hits
	BDDFallbacks int64 // queries decided by the CDCL fallback
	BDDRebuilds  int64 // diagrams discarded (node cap or step overrun)
	BDDReorders  int64 // diagram rebuilds forced by variable-order insertions
}

// Add folds another snapshot into s, field by field. It is the merge helper
// used by the portfolio/harness aggregators.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.SatQueries += o.SatQueries
	s.UnsatQueries += o.UnsatQueries
	s.Unknowns += o.Unknowns
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.ClausesAdded += o.ClausesAdded
	s.CacheHitsExact += o.CacheHitsExact
	s.CacheHitsSubsumeSat += o.CacheHitsSubsumeSat
	s.CacheHitsSubsumeUnsat += o.CacheHitsSubsumeUnsat
	s.CacheHitsPersist += o.CacheHitsPersist
	s.IncContexts += o.IncContexts
	s.IncAssumptions += o.IncAssumptions
	s.IncLearnedKept += o.IncLearnedKept
	s.IncRebuilds += o.IncRebuilds
	s.BDDNodes += o.BDDNodes
	s.BDDApplyHits += o.BDDApplyHits
	s.BDDFallbacks += o.BDDFallbacks
	s.BDDRebuilds += o.BDDRebuilds
	s.BDDReorders += o.BDDReorders
}

// Solver decides conjunctions of width-1 bit-vector expressions.
// A Solver is not safe for concurrent use; concurrency happens one solver per
// session, optionally sharing a thread-safe QueryCache (Options.Cache).
type Solver struct {
	opts    Options
	stats   Stats
	cache   *QueryCache // nil iff DisableCache and no shared cache given
	backend Backend

	// Observability (all nil when disabled).
	tracer          obs.Tracer
	spans           *obs.SpanProfiler
	now             func() int64 // virtual clock source for trace events
	mQueries        *obs.Counter
	mSat            *obs.Counter
	mUnsat          *obs.Counter
	mUnknown        *obs.Counter
	mHits           *obs.Counter
	mMisses         *obs.Counter
	mHitsExact      *obs.Counter
	mHitsSubS       *obs.Counter
	mHitsSubU       *obs.Counter
	mHitsPers       *obs.Counter
	mIncContexts    *obs.Counter
	mIncAssumptions *obs.Counter
	mIncLearnedKept *obs.Counter
	mIncRebuilds    *obs.Counter
	mBDDNodes       *obs.Counter
	mBDDApplyHits   *obs.Counter
	mBDDFallbacks   *obs.Counter
	mBDDRebuilds    *obs.Counter
	mBDDReorders    *obs.Counter
	hVirt           *obs.Histogram
	hWall           *obs.Histogram
	observing       bool
}

type cachedQuery struct {
	key    []*symexpr.Expr
	result Result
	model  symexpr.Assignment
}

// New returns a solver with the given options.
func New(opts Options) *Solver {
	if opts.PropBudget == 0 {
		opts.PropBudget = defaultPropBudget
	}
	s := &Solver{opts: opts}
	switch {
	case opts.Cache != nil:
		s.cache = opts.Cache
	case !opts.DisableCache:
		s.cache = NewQueryCache(0)
	}
	if reg := opts.Metrics; reg != nil {
		s.mQueries = reg.Counter(obs.MSolverQueries)
		s.mSat = reg.Counter(obs.MSolverSat)
		s.mUnsat = reg.Counter(obs.MSolverUnsat)
		s.mUnknown = reg.Counter(obs.MSolverUnknown)
		s.mHits = reg.Counter(obs.MSolverCacheHits)
		s.mMisses = reg.Counter(obs.MSolverCacheMisses)
		s.mHitsExact = reg.Counter(obs.MSolverCacheHitsExact)
		s.mHitsSubS = reg.Counter(obs.MSolverCacheHitsSubsumeSat)
		s.mHitsSubU = reg.Counter(obs.MSolverCacheHitsSubsumeUnsat)
		s.mHitsPers = reg.Counter(obs.MSolverCacheHitsPersist)
		if opts.SolverMode == ModeIncremental {
			s.mIncContexts = reg.Counter(obs.MSolverIncContexts)
			s.mIncAssumptions = reg.Counter(obs.MSolverIncAssumptions)
			s.mIncLearnedKept = reg.Counter(obs.MSolverIncLearnedKept)
			s.mIncRebuilds = reg.Counter(obs.MSolverIncRebuilds)
		}
		if opts.SolverMode == ModeBDD {
			s.mBDDNodes = reg.Counter(obs.MSolverBDDNodes)
			s.mBDDApplyHits = reg.Counter(obs.MSolverBDDApplyHits)
			s.mBDDFallbacks = reg.Counter(obs.MSolverBDDFallbacks)
			s.mBDDRebuilds = reg.Counter(obs.MSolverBDDRebuilds)
			s.mBDDReorders = reg.Counter(obs.MSolverBDDReorders)
		}
		s.hVirt = reg.Histogram(obs.MSolverQueryVirt)
		s.hWall = reg.Histogram(obs.MSolverQueryWall)
	}
	switch opts.SolverMode {
	case ModeIncremental:
		s.backend = &incrementalBackend{s: s}
	case ModeBDD:
		s.backend = newBDDBackend(s)
	default:
		s.backend = oneshotBackend{}
	}
	s.tracer = opts.Tracer
	s.spans = opts.Spans
	s.observing = opts.Metrics != nil || opts.Tracer != nil || opts.Spans != nil
	return s
}

// Instruments bundles the run-time attachments a Solver (or PersistentStore)
// owner may install after construction. It replaces the old SetNow /
// SetPropBudget / SetSpans setter sprawl with one call; zero-valued fields
// leave the corresponding attachment unchanged, so owners can attach just
// the pieces they have.
type Instruments struct {
	// Now, when non-nil, is the virtual-clock source used to timestamp trace
	// events (the engine points it at its own clock). Purely observational.
	Now func() int64
	// Spans, when non-nil, replaces the hierarchical span profiler.
	Spans *obs.SpanProfiler
	// PropBudget, when > 0, replaces the per-query propagation budget; when
	// < 0 it restores the default. It models budget recovery in the
	// degradation tests: a query that came back Unknown under a starved
	// budget succeeds when retried after the budget recovers (Unknown
	// results are never cached, so the retry reaches the SAT core).
	PropBudget int64
}

// Attach installs run-time instruments on the solver. Fields left at their
// zero value keep the current attachment.
func (s *Solver) Attach(in Instruments) {
	if in.Now != nil {
		s.now = in.Now
	}
	if in.Spans != nil {
		s.spans = in.Spans
		s.observing = true
	}
	if in.PropBudget > 0 {
		s.opts.PropBudget = in.PropBudget
	} else if in.PropBudget < 0 {
		s.opts.PropBudget = defaultPropBudget
	}
}

// Backend returns the solver's decision procedure (for mode inspection).
func (s *Solver) Backend() Backend { return s.backend }

// Stats returns a value snapshot of the accumulated counters, taken at call
// time. The copy does not track later queries (staleness-by-copy is the
// intended semantics); re-snapshot for fresh numbers and combine snapshots
// with Stats.Add.
func (s *Solver) Stats() Stats { return s.stats }

// Cache returns the solver's counterexample cache (nil when caching is
// disabled). It may be a cache shared with other solvers.
func (s *Solver) Cache() *QueryCache { return s.cache }

// Query is one satisfiability question over a path condition.
type Query struct {
	// PC is the conjunction to decide, in path order: root-most constraint
	// first, exactly as the engine's pcNode chain unrolls. The incremental
	// backend keys its prefix reuse off this order; the front end
	// canonicalizes a copy for the cache layers, so callers need not sort.
	PC []*symexpr.Expr
	// Base, when non-nil, supplies concrete values for input variables from
	// the parent path; slicing uses it to keep already-satisfied independent
	// constraint groups at their known values, so only the group touched by
	// the freshly negated constraint is re-solved (either backend).
	Base symexpr.Assignment
	// PathSig, when non-zero, identifies the exploration path the query
	// belongs to (the engine's trail signature). Purely observational: it
	// labels the query's trace event.
	PathSig uint64
}

// Check decides whether the conjunction pc is satisfiable.
//
// Deprecated: Check is the positional pre-Query entry point, kept as a thin
// wrapper for one release. Use CheckQuery.
func (s *Solver) Check(pc []*symexpr.Expr, base symexpr.Assignment) (Result, symexpr.Assignment) {
	return s.CheckQuery(Query{PC: pc, Base: base})
}

// CheckQuery decides whether the conjunction q.PC is satisfiable. On Sat the
// returned assignment covers every variable in q.PC (in oneshot mode, values
// from q.Base are reused where valid).
//
// When observability is enabled (Options.Metrics/Tracer), CheckQuery
// additionally records per-query latency in virtual units (SAT propagations)
// and wall-clock ns, and emits a solver-query trace event. The wall clock is
// read only on this instrumented path and influences nothing the solver
// returns.
func (s *Solver) CheckQuery(q Query) (Result, symexpr.Assignment) {
	if !s.observing {
		return s.check(q)
	}
	propsBefore := s.stats.Propagations
	before := s.stats
	sp := s.spans.Start(obs.SpanSolverCheck)
	start := time.Now()
	res, model := s.check(q)
	virt := s.stats.Propagations - propsBefore
	sp.End(virt)
	wall := time.Since(start).Nanoseconds()
	cacheHit := s.stats.CacheHits > before.CacheHits
	if s.mQueries != nil {
		s.mQueries.Inc()
		switch res {
		case Sat:
			s.mSat.Inc()
		case Unsat:
			s.mUnsat.Inc()
		default:
			s.mUnknown.Inc()
		}
		if cacheHit {
			s.mHits.Inc()
			switch {
			case s.stats.CacheHitsExact > before.CacheHitsExact:
				s.mHitsExact.Inc()
			case s.stats.CacheHitsSubsumeSat > before.CacheHitsSubsumeSat:
				s.mHitsSubS.Inc()
			case s.stats.CacheHitsSubsumeUnsat > before.CacheHitsSubsumeUnsat:
				s.mHitsSubU.Inc()
			case s.stats.CacheHitsPersist > before.CacheHitsPersist:
				s.mHitsPers.Inc()
			}
		} else if s.stats.CacheMisses > before.CacheMisses {
			s.mMisses.Inc()
		}
		s.hVirt.Observe(virt)
		s.hWall.Observe(wall)
	}
	if s.tracer != nil {
		var t int64
		if s.now != nil {
			t = s.now()
		}
		s.tracer.Emit(&obs.Event{
			T:           t,
			Kind:        obs.KindSolverQuery,
			Result:      res.String(),
			VirtCost:    virt,
			WallCost:    wall,
			CacheHit:    cacheHit,
			Constraints: len(q.PC),
			PathSig:     q.PathSig,
		})
	}
	return res, model
}

// check is the uninstrumented core of CheckQuery.
func (s *Solver) check(q Query) (Result, symexpr.Assignment) {
	s.stats.Queries++
	incremental := s.opts.SolverMode == ModeIncremental
	// Both stateful backends (incremental, bdd) key their prefix reuse off
	// the path order, so both receive the uncanonicalized sequence.
	pathOrder := incremental || s.opts.SolverMode == ModeBDD
	// Constant-filter: drop constraints that are literally true; a literally
	// false constraint decides the query immediately.
	work := make([]*symexpr.Expr, 0, len(q.PC))
	for _, c := range q.PC {
		if c.IsConst() {
			if c.ConstVal() == 0 {
				s.stats.UnsatQueries++
				return Unsat, nil
			}
			continue
		}
		work = append(work, c)
	}
	if len(work) == 0 {
		s.stats.SatQueries++
		return Sat, symexpr.Assignment{}
	}

	toSolve := work
	kept := symexpr.Assignment{}
	if !s.opts.DisableSlicing && q.Base != nil {
		// Slicing composes with either backend: it is a pure function of
		// (pc, base), so the backend sees a deterministic sub-conjunction
		// stream. For the incremental backend the sliced queries still share
		// prefixes — a branch flip at depth d keeps the touched group of
		// nearby flips — and the constraints it drops stay warm in the
		// context's gated circuitry for the next query that touches them.
		toSolve, kept = slice(work, q.Base)
		if len(toSolve) == 0 {
			s.stats.SatQueries++
			return Sat, kept
		}
	}

	// Canonicalize: sort by the process-independent structural order and
	// dedup. The oneshot backend sees the canonical sequence, so its result
	// *and model* are a pure function of the constraint set — the property
	// every cache layer (exact, subsume, persistent) relies on. The
	// incremental backend instead keeps path order (its prefix reuse depends
	// on it) and canonicalizes a copy for the cache keys only; its models
	// are a function of the solver's whole query stream, which per-cell
	// solver ownership keeps deterministic.
	backendInput := toSolve
	var canon []*symexpr.Expr
	if pathOrder {
		canon = canonicalize(append([]*symexpr.Expr(nil), toSolve...))
	} else {
		canon = canonicalize(toSolve)
		backendInput = canon
	}
	key := canonKey(canon)

	if s.cache != nil {
		// Cache lookups are free on the virtual clock (the cache exists to
		// elide wall time); the span still attributes their wall cost.
		csp := s.spans.Start(obs.SpanCacheLookup)
		if r, m, ok := s.cache.Lookup(key, canon); ok {
			csp.End(0)
			s.stats.CacheHits++
			s.stats.CacheHitsExact++
			if r == Sat {
				// Clone: merge must never mutate the cached model.
				return Sat, merge(m.Clone(), kept)
			}
			return r, nil
		}
		if s.opts.Mode == CacheSubsume {
			if r, m, class := s.cache.LookupSubsume(canon); class != HitNone {
				csp.End(0)
				s.stats.CacheHits++
				if class == HitSubsumeSat {
					s.stats.CacheHitsSubsumeSat++
				} else {
					s.stats.CacheHitsSubsumeUnsat++
				}
				// Promote the derived result to the exact layer so later
				// identical queries take the cheap path. Derived results are
				// never persisted (see below), only re-memoized in memory.
				s.cache.Store(key, canon, r, m)
				if r == Sat {
					return Sat, merge(m, kept) // m is freshly allocated
				}
				return r, nil
			}
		}
		s.cache.Miss()
		csp.End(0)
	}

	if s.opts.Persist != nil {
		psp := s.spans.Start(obs.SpanPersistLookup)
		if r, m, cost, ok := s.opts.Persist.Lookup(key, canon); ok {
			// Replay the recorded solve cost so the virtual clock advances
			// exactly as on a cold run, and count the query as solved so warm
			// and cold runs agree on every stat except the hit counters. The
			// wall-clock solve is the only thing a persistent hit elides.
			s.stats.CacheHits++
			s.stats.CacheHitsPersist++
			s.stats.Propagations += cost
			psp.End(cost) // the replayed cost is the hit's virtual duration
			if s.cache != nil {
				s.cache.Store(key, canon, r, m)
			}
			if r == Sat {
				s.stats.SatQueries++
				return Sat, merge(m.Clone(), kept)
			}
			s.stats.UnsatQueries++
			return Unsat, nil
		}
		psp.End(0)
	}
	if s.cache != nil || s.opts.Persist != nil {
		s.stats.CacheMisses++
	}

	spanLayer := obs.SpanSolverBlast
	switch s.opts.SolverMode {
	case ModeIncremental:
		spanLayer = obs.SpanSolverInc
	case ModeBDD:
		spanLayer = obs.SpanSolverBDD
	}
	bsp := s.spans.Start(spanLayer)
	var res Result
	var model symexpr.Assignment
	var cost Cost
	if s.opts.Faults.Fire(faults.SolverUnknown) {
		res = Unknown
	} else {
		res, model, cost = s.backend.Solve(backendInput, s.opts.PropBudget)
		s.stats.Propagations += cost.Propagations
		s.stats.Conflicts += cost.Conflicts
		s.stats.ClausesAdded += cost.ClausesAdded
	}
	bsp.End(cost.Propagations)
	if res != Unknown {
		if s.cache != nil {
			s.cache.Store(key, canon, res, model)
		}
		if s.opts.Persist != nil {
			// Only actually-solved results enter the persistent store: a
			// subsume-derived entry could answer differently from the solve a
			// cold run performs (different model for the same key), breaking
			// warm/cold equivalence.
			s.opts.Persist.Append(key, canon, res, model, cost.Propagations)
		}
	}
	switch res {
	case Sat:
		s.stats.SatQueries++
		return Sat, merge(model, kept)
	case Unsat:
		s.stats.UnsatQueries++
		return Unsat, nil
	default:
		s.stats.Unknowns++
		return Unknown, nil
	}
}

// canonicalize sorts the constraint slice by symexpr.Compare — a structural,
// process-independent total order — and drops duplicates (pointer-equal after
// interning). The slice is modified in place; check always passes a freshly
// allocated slice.
func canonicalize(cs []*symexpr.Expr) []*symexpr.Expr {
	sort.Slice(cs, func(i, j int) bool { return symexpr.Compare(cs[i], cs[j]) < 0 })
	out := cs[:0]
	var prev *symexpr.Expr
	for _, c := range cs {
		if c == prev {
			continue
		}
		prev = c
		out = append(out, c)
	}
	return out
}

// canonKey hashes the canonical constraint sequence. Order-sensitive is fine
// (the sequence is canonical), and the structural per-node hashes make the
// key process-independent, so it doubles as the persistent store's index key.
func canonKey(canon []*symexpr.Expr) uint64 {
	var h uint64 = 0x1234_5678_9abc_def0
	for _, c := range canon {
		h ^= c.Hash()
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	return h
}

func merge(into, from symexpr.Assignment) symexpr.Assignment {
	if into == nil {
		into = symexpr.Assignment{}
	}
	for k, v := range from {
		if _, ok := into[k]; !ok {
			into[k] = v
		}
	}
	return into
}

// oneshotBackend is the historical decision procedure: a fresh satSolver and
// blaster per query, discarded afterwards. Its result and model are a pure
// function of the (canonical) constraint sequence.
type oneshotBackend struct{}

func (oneshotBackend) Mode() SolverMode { return ModeOneshot }

func (oneshotBackend) Solve(constraints []*symexpr.Expr, budget int64) (Result, symexpr.Assignment, Cost) {
	sat := newSatSolver()
	sat.budget = budget
	bl := newBlaster(sat)
	ok := true
	for _, c := range constraints {
		if !bl.assertTrue(c) {
			ok = false
			break
		}
	}
	cost := func() Cost {
		return Cost{Propagations: sat.propsN, Conflicts: sat.conflicts, ClausesAdded: int64(len(sat.clauses))}
	}
	if !ok {
		return Unsat, nil, cost()
	}
	switch sat.solve() {
	case resUnsat:
		return Unsat, nil, cost()
	case resUnknown:
		return Unknown, nil, cost()
	}
	m := sat.model()
	out := symexpr.Assignment{}
	for v, bits := range bl.vars {
		var val uint64
		for i, l := range bits {
			if m[l.varIdx()] != l.negated() {
				val |= 1 << uint(i)
			}
		}
		out[v] = val
	}
	return Sat, out, cost()
}

// slice partitions constraints into groups connected by shared variables and
// returns (groups that base does not satisfy, values from base for the
// variables of satisfied groups).
func slice(pc []*symexpr.Expr, base symexpr.Assignment) ([]*symexpr.Expr, symexpr.Assignment) {
	// Union-find over constraint indices keyed through variables.
	parent := make([]int, len(pc))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	varOwner := map[symexpr.Var]int{}
	varsOf := make([][]symexpr.Var, len(pc))
	for i, c := range pc {
		varsOf[i] = symexpr.Vars(c)
		for _, v := range varsOf[i] {
			if o, ok := varOwner[v]; ok {
				union(i, o)
			} else {
				varOwner[v] = i
			}
		}
	}
	groups := map[int][]int{}
	for i := range pc {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var keepIdx []int
	kept := symexpr.Assignment{}
	// Deterministic group order.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		idxs := groups[r]
		satByBase := true
		for _, i := range idxs {
			if !symexpr.EvalBool(pc[i], base) {
				satByBase = false
				break
			}
		}
		if satByBase {
			for _, i := range idxs {
				for _, v := range varsOf[i] {
					kept[v] = base[v] & v.W.Mask()
				}
			}
		} else {
			keepIdx = append(keepIdx, idxs...)
		}
	}
	// Surviving constraints keep their original path order: the oneshot
	// backend canonicalizes anyway, and the incremental backend's prefix
	// reuse depends on consecutive queries sharing a pointer prefix, which
	// path order preserves and group order would shuffle.
	sort.Ints(keepIdx)
	unsatisfied := make([]*symexpr.Expr, 0, len(keepIdx))
	for _, i := range keepIdx {
		unsatisfied = append(unsatisfied, pc[i])
	}
	return unsatisfied, kept
}

// Maximize returns the largest value e can take subject to q.PC, found by
// binary search over satisfiability queries. It implements the upper_bound
// API call from Table 1 of the paper. The boolean result is false when even
// the base query is unsatisfiable or the budget ran out. Each probe appends
// its bound constraint after the unchanged path condition, so in incremental
// mode the whole search reuses the path prefix and only the bound is pushed
// and popped per probe.
func (s *Solver) Maximize(e *symexpr.Expr, q Query) (uint64, bool) {
	if e.IsConst() {
		return e.ConstVal(), true
	}
	w := e.Width()
	res, model := s.CheckQuery(q)
	if res != Sat {
		return 0, false
	}
	best := symexpr.Eval(e, merge(model.Clone(), q.Base))
	lo, hi := best, w.Mask()
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		probe := append(append([]*symexpr.Expr(nil), q.PC...),
			symexpr.Ule(symexpr.Const(mid, w), e))
		res, model = s.CheckQuery(Query{PC: probe, PathSig: q.PathSig})
		if res == Sat {
			got := symexpr.Eval(e, model)
			if got < mid {
				got = mid
			}
			best = got
			lo = got
		} else {
			hi = mid - 1
		}
	}
	return best, true
}
