package solver

import (
	"os"
	"path/filepath"
	"testing"

	sx "chef/internal/symexpr"
)

// persistQuery builds a canonical single-constraint query for persistence
// tests: a != k over a byte variable.
func persistQuery(k uint64) ([]*sx.Expr, uint64) {
	a := sx.NewVar(sx.Var{Buf: "a", W: sx.W8})
	canon := canonicalize([]*sx.Expr{sx.Ne(a, sx.Const(k, sx.W8))})
	return canon, canonKey(canon)
}

func mustOpen(t *testing.T, path string) *PersistentStore {
	t.Helper()
	p, err := OpenPersistentStore(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return p
}

// TestPersistRoundTrip: entries written by one store instance are visible,
// bit-exact, to a fresh instance reading the same file.
func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	w := mustOpen(t, path)
	var keys []uint64
	for k := uint64(0); k < 20; k++ {
		canon, key := persistQuery(k)
		model := sx.Assignment{{Buf: "a", W: sx.W8}: (k + 1) & 0xff}
		w.Append(key, canon, Sat, model, int64(100+k))
		keys = append(keys, key)
	}
	unsatCanon := canonicalize([]*sx.Expr{
		sx.Ult(sx.NewVar(sx.Var{Buf: "a", W: sx.W8}), sx.Const(3, sx.W8)),
		sx.Ult(sx.Const(9, sx.W8), sx.NewVar(sx.Var{Buf: "a", W: sx.W8})),
	})
	unsatKey := canonKey(unsatCanon)
	w.Append(unsatKey, unsatCanon, Unsat, nil, 777)
	if got := w.Appended(); got != 21 {
		t.Fatalf("appended = %d, want 21", got)
	}
	// Appends must not be visible to the writing process's own lookups.
	if _, _, _, ok := w.Lookup(keys[0], mustCanon(0)); ok {
		t.Fatal("in-run append visible to in-run lookup")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r := mustOpen(t, path)
	defer r.Close()
	if r.Corruption() != nil {
		t.Fatalf("clean file reported corruption: %v", r.Corruption())
	}
	if r.Loaded() != 21 {
		t.Fatalf("loaded = %d, want 21", r.Loaded())
	}
	for k := uint64(0); k < 20; k++ {
		canon, key := persistQuery(k)
		res, m, cost, ok := r.Lookup(key, canon)
		if !ok || res != Sat || cost != int64(100+k) {
			t.Fatalf("k=%d: ok=%v res=%v cost=%d", k, ok, res, cost)
		}
		if got := m[sx.Var{Buf: "a", W: sx.W8}]; got != (k+1)&0xff {
			t.Fatalf("k=%d: model value %d, want %d", k, got, (k+1)&0xff)
		}
	}
	res, m, cost, ok := r.Lookup(unsatKey, unsatCanon)
	if !ok || res != Unsat || m != nil || cost != 777 {
		t.Fatalf("unsat entry: ok=%v res=%v m=%v cost=%d", ok, res, m, cost)
	}
}

func mustCanon(k uint64) []*sx.Expr {
	canon, _ := persistQuery(k)
	return canon
}

// TestPersistCorruption: every corruption of a valid file must load the
// valid prefix, report the problem, disable appends and never crash.
func TestPersistCorruption(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.bin")
	w := mustOpen(t, clean)
	for k := uint64(0); k < 5; k++ {
		canon, key := persistQuery(k)
		w.Append(key, canon, Sat, sx.Assignment{{Buf: "a", W: sx.W8}: 0}, 1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte, wantLoadedMax int) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		p := mustOpen(t, path)
		defer p.Close()
		if p.Corruption() == nil {
			t.Fatalf("%s: corruption not detected", name)
		}
		if p.Loaded() > wantLoadedMax {
			t.Fatalf("%s: loaded %d entries, want <= %d", name, p.Loaded(), wantLoadedMax)
		}
		// Appends must be rejected so the file is not extended past garbage.
		canon, key := persistQuery(99)
		p.Append(key, canon, Unsat, nil, 1)
		if p.Appended() != 0 {
			t.Fatalf("%s: append accepted on corrupt store", name)
		}
	}

	check("badmagic.bin", func(b []byte) []byte { b[0] ^= 0xff; return b }, 0)
	check("truncated.bin", func(b []byte) []byte { return b[:len(b)-3] }, 4)
	check("bitflip.bin", func(b []byte) []byte { b[len(b)-6] ^= 0x40; return b }, 4)
	check("garbage-tail.bin", func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef) }, 5)
	check("short.bin", func(b []byte) []byte { return b[:3] }, 0)

	// A corrupt-length frame must not trigger a huge allocation.
	huge := append([]byte(persistMagic), 0xff, 0xff, 0xff, 0x7f)
	path := filepath.Join(dir, "hugelen.bin")
	if err := os.WriteFile(path, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	p := mustOpen(t, path)
	defer p.Close()
	if p.Corruption() == nil || p.Loaded() != 0 {
		t.Fatalf("hugelen: corruption=%v loaded=%d", p.Corruption(), p.Loaded())
	}

	// Empty and fresh files are not corrupt.
	fresh := mustOpen(t, filepath.Join(dir, "fresh.bin"))
	if fresh.Corruption() != nil || fresh.Loaded() != 0 {
		t.Fatalf("fresh: corruption=%v loaded=%d", fresh.Corruption(), fresh.Loaded())
	}
	fresh.Close()
	// Reopening the (magic-only) fresh file is clean too.
	again := mustOpen(t, filepath.Join(dir, "fresh.bin"))
	if again.Corruption() != nil {
		t.Fatalf("magic-only reopen: %v", again.Corruption())
	}
	again.Close()
}

// TestPersistSolverDisagreementNeverCrashes: a solver pointed at a corrupt
// store must behave exactly like a cold one.
func TestPersistCorruptStoreColdEquivalence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.bin")
	if err := os.WriteFile(path, []byte("not a cache file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := mustOpen(t, path)
	defer store.Close()
	if store.Corruption() == nil {
		t.Fatal("garbage accepted")
	}
	warm := New(Options{Persist: store})
	cold := New(Options{})
	queries := genOracleQueries(t, 50, 7)
	for i, q := range queries {
		r1, m1 := warm.Check(q.pc, q.base)
		r2, m2 := cold.Check(q.pc, q.base)
		if r1 != r2 || !sameModel(m1, m2) {
			t.Fatalf("query %d: corrupt-store solver diverged from cold solver", i)
		}
	}
	if st := warm.Stats(); st.CacheHitsPersist != 0 {
		t.Fatalf("corrupt store produced persistent hits: %+v", st)
	}
}

// TestPersistDedup: re-appending a key already on disk or already appended
// this run is a no-op.
func TestPersistDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	w := mustOpen(t, path)
	canon, key := persistQuery(1)
	w.Append(key, canon, Unsat, nil, 5)
	w.Append(key, canon, Unsat, nil, 5) // same run duplicate
	if w.Appended() != 1 {
		t.Fatalf("appended = %d, want 1", w.Appended())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, path)
	r.Append(key, canon, Unsat, nil, 5) // already on disk
	if r.Appended() != 0 {
		t.Fatalf("appended = %d, want 0 (entry already on disk)", r.Appended())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, path)
	defer r2.Close()
	if r2.Loaded() != 1 {
		t.Fatalf("loaded = %d, want 1", r2.Loaded())
	}
}
