package solver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chef/internal/faults"
	"chef/internal/obs"
	"chef/internal/symexpr"
)

// Persistent counterexample cache: an append-only binary log of solved
// canonical queries, reloaded at startup so a later process starts warm.
//
// The store is deliberately asymmetric:
//
//   - The *read side* of the store itself is immutable after load. Direct
//     lookups only ever see what the previous process left on disk, never
//     entries appended during this run (the in-memory QueryCache already
//     serves those). This is what makes a warm rerun reproduce a cold run
//     byte-for-byte: the set of answerable persistent lookups is fixed before
//     the run starts, so it cannot depend on scheduling.
//   - The *write side* records only queries this run actually solved — never
//     results derived by subsumption, which could disagree (different model,
//     same key) with what a cold solve produces.
//
// Long-running multi-job processes (chef-serve) use View instead of the store
// directly: a View snapshots the load-time entries plus everything published
// by earlier Appends at view-creation time, so each job's answerable set is
// fixed when the job starts — per-job determinism — while jobs submitted
// later still observe warm state from jobs that already ran, without waiting
// for a process restart.
//
// Each entry stores the canonical constraint sequence, the result, the model
// (Sat only) and the SAT propagation count the solve cost. A hit replays that
// cost into the solver's stats, so the virtual clock — and therefore every
// scheduling decision downstream — advances exactly as on a cold run. The
// store buys wall-clock time only.
//
// On-disk format (all integers little-endian or uvarint):
//
//	magic "CHEFCXC1"
//	repeat: [u32 payload len][payload][u32 crc32(payload)]
//	payload: result byte (1=sat 2=unsat)
//	         cost uvarint
//	         #constraints uvarint, each a symexpr encoding (width 1)
//	         #model vars uvarint, each a var encoding followed by val uvarint
//
// Corruption tolerance: loading stops at the first bad frame (bad magic,
// truncated frame, CRC mismatch, malformed payload). The valid prefix stays
// usable for lookups; appending is disabled so the file is never extended
// past garbage (records after a bad frame would be unreachable anyway). A
// corrupt or empty cache file therefore degrades to a cold cache, never an
// error the engine sees.

// persistMagic identifies format version 1.
const persistMagic = "CHEFCXC1"

// maxPersistRecord caps one record's payload so a corrupted length field
// cannot trigger a huge allocation.
const maxPersistRecord = 1 << 24

// maxPersistConstraints caps the constraint count of one decoded entry.
const maxPersistConstraints = 1 << 16

// persistFlushInterval is the background flusher's period.
const persistFlushInterval = 200 * time.Millisecond

// maxFlushRetries is the write-retry budget: after this many consecutive
// failed write attempts the store loudly disables appends (writeErr set,
// pending entries counted as lost) instead of retrying forever.
const maxFlushRetries = 5

type persistEntry struct {
	canon  []*symexpr.Expr
	result Result
	model  symexpr.Assignment
	cost   int64
}

// PersistentStore is the disk-backed layer of the counterexample cache. It is
// safe for concurrent use by many solvers (the parallel harness shares one
// store across sessions).
type PersistentStore struct {
	path string

	// entries is immutable after OpenPersistentStore returns; lookups read it
	// without locking. Models are owned by the store — callers clone.
	entries map[uint64][]persistEntry
	loaded  int
	corrupt error // non-nil: loading stopped early; appends disabled

	// overlay holds entries appended (and therefore published) during this
	// process, keyed like entries. It is never consulted by the store's own
	// Lookup — only by Views snapshotted after the publish — so single-run
	// CLI behavior is unchanged. Bucket slices are copy-on-publish: once a
	// slice is stored it is never mutated, so View can alias them.
	ovMu    sync.RWMutex
	overlay map[uint64][]persistEntry

	mu      sync.Mutex
	f       *os.File
	pending []byte
	// pendingEnds holds the cumulative end offset of every complete frame in
	// pending. After a partial write of n bytes, frames with end <= n are
	// durable; the rest rebase by -n and stay queued, so a retry writes the
	// exact remainder bytes and the on-disk frame stream stays well-formed.
	pendingEnds []int64
	appended    map[uint64]bool // keys queued for append this run
	writeErr    error
	closed      bool
	flushFails  int // consecutive failed write attempts
	faults      *faults.Injector

	appendedN  atomic.Int64
	retriesN   atomic.Int64
	writeErrsN atomic.Int64
	lostN      atomic.Int64

	// spans, when set, profiles physical flushes (layer persist.flush). The
	// profiler is used only by the single flusher goroutine; the atomic makes
	// Attach safe after the flush loop has started.
	spans atomic.Pointer[obs.SpanProfiler]

	flushCh chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

// OpenPersistentStore opens (creating if absent) the cache file at path and
// loads every valid record. The returned error covers I/O failures only;
// content corruption is reported by Corruption and degrades to a partial or
// empty — but always usable — store.
func OpenPersistentStore(path string) (*PersistentStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	p := &PersistentStore{
		path:     path,
		entries:  map[uint64][]persistEntry{},
		overlay:  map[uint64][]persistEntry{},
		f:        f,
		appended: map[uint64]bool{},
		flushCh:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	switch {
	case len(data) == 0:
		// Fresh file: stamp the header now so a run that stores nothing still
		// leaves a well-formed file behind.
		if _, err := f.Write([]byte(persistMagic)); err != nil {
			f.Close()
			return nil, err
		}
	case len(data) < len(persistMagic) || string(data[:len(persistMagic)]) != persistMagic:
		p.corrupt = fmt.Errorf("solver: cache file %s: bad magic", path)
	default:
		p.load(data[len(persistMagic):])
	}
	if p.corrupt != nil {
		// Never extend a corrupt file; keep it open read-only in spirit.
		f.Close()
		p.f = nil
	}
	p.wg.Add(1)
	go p.flushLoop()
	return p, nil
}

// load parses records until the data ends or a frame fails validation.
func (p *PersistentStore) load(data []byte) {
	pos := 0
	for pos < len(data) {
		if len(data)-pos < 4 {
			p.corrupt = fmt.Errorf("solver: cache file %s: truncated frame header", p.path)
			return
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if n <= 0 || n > maxPersistRecord {
			p.corrupt = fmt.Errorf("solver: cache file %s: bad record length %d", p.path, n)
			return
		}
		if len(data)-pos < 4+n+4 {
			p.corrupt = fmt.Errorf("solver: cache file %s: truncated record", p.path)
			return
		}
		payload := data[pos+4 : pos+4+n]
		crc := binary.LittleEndian.Uint32(data[pos+4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			p.corrupt = fmt.Errorf("solver: cache file %s: checksum mismatch", p.path)
			return
		}
		e, err := decodePersistEntry(payload)
		if err != nil {
			p.corrupt = fmt.Errorf("solver: cache file %s: %v", p.path, err)
			return
		}
		key := canonKey(e.canon)
		dup := false
		for _, have := range p.entries[key] {
			if sameCanon(have.canon, e.canon) {
				dup = true // first entry wins, matching the in-memory cache
				break
			}
		}
		if !dup {
			p.entries[key] = append(p.entries[key], e)
			p.loaded++
		}
		pos += 4 + n + 4
	}
}

// Loaded returns the number of entries loaded at startup.
func (p *PersistentStore) Loaded() int { return p.loaded }

// Appended returns the number of entries appended during this run that are
// still on track to be durable: queued entries count, but entries dropped
// because the write-retry budget was exhausted are subtracted (see Lost).
func (p *PersistentStore) Appended() int64 { return p.appendedN.Load() }

// Retries returns the number of flush retry attempts made after failed
// writes.
func (p *PersistentStore) Retries() int64 { return p.retriesN.Load() }

// WriteErrors returns the number of failed physical write attempts.
func (p *PersistentStore) WriteErrors() int64 { return p.writeErrsN.Load() }

// Lost returns the number of entries dropped because the write-retry budget
// was exhausted. Lost entries are subtracted from Appended.
func (p *PersistentStore) Lost() int64 { return p.lostN.Load() }

// PersistStats is a point-in-time snapshot of the store's traffic counters,
// as one value (the shape obscli.Flags.SetPersistStats consumes).
type PersistStats struct {
	Loaded      int64 // entries loaded at startup
	Appended    int64 // entries appended and still on track to be durable
	Retries     int64 // flush retry attempts after failed writes
	WriteErrors int64 // failed physical write attempts
	Lost        int64 // entries dropped after the retry budget
}

// Stats returns a snapshot of the store's traffic counters.
func (p *PersistentStore) Stats() PersistStats {
	return PersistStats{
		Loaded:      int64(p.loaded),
		Appended:    p.appendedN.Load(),
		Retries:     p.retriesN.Load(),
		WriteErrors: p.writeErrsN.Load(),
		Lost:        p.lostN.Load(),
	}
}

// SetFaults installs a fault injector consulted on every physical write
// (persist.write rules; see internal/faults). The injector is safe for
// concurrent use by the background flusher. Install it before the first
// Append for a deterministic fault schedule.
func (p *PersistentStore) SetFaults(in *faults.Injector) {
	p.mu.Lock()
	p.faults = in
	p.mu.Unlock()
}

// Attach installs run-time instruments on the store. Only Instruments.Spans
// is meaningful here: a span profiler for the background flusher — every
// physical flush attempt closes one persist.flush span (wall time only; the
// flusher never touches the virtual clock). The profiler becomes the flusher
// goroutine's private instance — do not share it with an engine. Fields left
// at their zero value keep the current attachment.
func (p *PersistentStore) Attach(in Instruments) {
	if in.Spans != nil {
		p.spans.Store(in.Spans)
	}
}

// Corruption returns the load error that stopped record parsing, or nil if
// the whole file parsed. A corrupt store still serves the valid prefix.
func (p *PersistentStore) Corruption() error { return p.corrupt }

// Lookup returns the stored result for the canonical query, confirming the
// candidate entries pointer-wise (decoded expressions are re-interned, so
// equality is pointer identity). The returned model is owned by the store;
// callers clone before mutating. cost is the recorded propagation count of
// the original solve. Only load-time entries are consulted — appends made
// during this process are visible through Views created after them, never
// here. Nil-receiver safe (a nil store never answers).
func (p *PersistentStore) Lookup(key uint64, canon []*symexpr.Expr) (Result, symexpr.Assignment, int64, bool) {
	if p == nil {
		return Unknown, nil, 0, false
	}
	for _, e := range p.entries[key] {
		if sameCanon(e.canon, canon) {
			return e.result, e.model, e.cost, true
		}
	}
	return Unknown, nil, 0, false
}

// View snapshots the store's answerable set at call time: the load-time
// entries plus every entry published by Appends that completed before the
// snapshot. A View is immutable — concurrent Appends publish only into later
// Views — so a job solving against one View is as deterministic as a CLI run
// against a freshly loaded store with the same content. View is cheap (one
// shallow map copy) and safe to call concurrently with Appends. A nil store
// yields a nil View, which never answers and forwards nothing.
func (p *PersistentStore) View() *PersistView {
	if p == nil {
		return nil
	}
	p.ovMu.RLock()
	ov := make(map[uint64][]persistEntry, len(p.overlay))
	for k, v := range p.overlay {
		ov[k] = v // bucket slices are copy-on-publish, safe to alias
	}
	p.ovMu.RUnlock()
	return &PersistView{store: p, overlay: ov}
}

// PersistView is a point-in-time view of a PersistentStore: lookups answer
// from the store's load-time entries plus the overlay snapshot taken at View
// time; appends forward to the store (queued for disk and published to later
// views). It implements PersistLayer, so a solver can hold either a store or
// a view. All methods are nil-receiver safe.
type PersistView struct {
	store   *PersistentStore
	overlay map[uint64][]persistEntry
}

// Lookup implements PersistLayer over the view's fixed answerable set.
func (v *PersistView) Lookup(key uint64, canon []*symexpr.Expr) (Result, symexpr.Assignment, int64, bool) {
	if v == nil {
		return Unknown, nil, 0, false
	}
	if r, m, cost, ok := v.store.Lookup(key, canon); ok {
		return r, m, cost, true
	}
	for _, e := range v.overlay[key] {
		if sameCanon(e.canon, canon) {
			return e.result, e.model, e.cost, true
		}
	}
	return Unknown, nil, 0, false
}

// Append implements PersistLayer by forwarding to the backing store.
func (v *PersistView) Append(key uint64, canon []*symexpr.Expr, r Result, m symexpr.Assignment, cost int64) {
	if v == nil {
		return
	}
	v.store.Append(key, canon, r, m, cost)
}

// Append queues a solved query for the background flusher and publishes it
// for Views created afterwards. Results derived from other cache layers must
// not be appended (the solver only appends after an actual solveCNF call).
// Appends never become visible to the store's own Lookup or to Views taken
// before the append — within one run the in-memory QueryCache serves them —
// so single-store runs behave exactly as before. Nil-receiver safe.
func (p *PersistentStore) Append(key uint64, canon []*symexpr.Expr, r Result, m symexpr.Assignment, cost int64) {
	if p == nil || r == Unknown || len(canon) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil || p.closed || p.writeErr != nil || p.appended[key] {
		return
	}
	if onDisk, ok := p.entries[key]; ok {
		already := false
		for _, e := range onDisk {
			if sameCanon(e.canon, canon) {
				already = true
				break
			}
		}
		if already {
			return
		}
	}
	p.appended[key] = true
	payload := encodePersistEntry(canon, r, m, cost)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payload)))
	p.pending = append(p.pending, u32[:]...)
	p.pending = append(p.pending, payload...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	p.pending = append(p.pending, u32[:]...)
	p.pendingEnds = append(p.pendingEnds, int64(len(p.pending)))
	p.appendedN.Add(1)
	// Publish for later Views. Clones keep the published entry independent of
	// the caller, which mutates the model right after Append (merge into the
	// returned assignment). Copy-on-publish: the stored bucket slice is never
	// mutated again, so View may alias it lock-free.
	e := persistEntry{
		canon:  append([]*symexpr.Expr(nil), canon...),
		result: r,
		cost:   cost,
	}
	if r == Sat && m != nil {
		e.model = m.Clone()
	}
	p.ovMu.Lock()
	bucket := p.overlay[key]
	nb := make([]persistEntry, len(bucket)+1)
	copy(nb, bucket)
	nb[len(bucket)] = e
	p.overlay[key] = nb
	p.ovMu.Unlock()
	select {
	case p.flushCh <- struct{}{}:
	default:
	}
}

func (p *PersistentStore) flushLoop() {
	defer p.wg.Done()
	t := time.NewTicker(persistFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-p.flushCh:
		case <-t.C:
		}
		p.flushWithBackoff(p.done)
	}
}

// flushWithBackoff drives flush until the pending buffer drains, the retry
// budget disables appends, or stop closes. Failed writes back off with a
// capped exponential delay before retrying; a nil stop (the Close path)
// retries unconditionally — termination is still bounded by maxFlushRetries.
func (p *PersistentStore) flushWithBackoff(stop <-chan struct{}) {
	for attempt := 0; ; attempt++ {
		err, retryable := p.flush()
		if err == nil || !retryable {
			return
		}
		d := time.Millisecond << uint(min(attempt, 6))
		if stop == nil {
			time.Sleep(d)
			continue
		}
		select {
		case <-stop:
			return
		case <-time.After(d):
		}
	}
}

// flush attempts one physical write of the pending buffer. Frames are
// appended whole, so a crash mid-run leaves at worst a truncated final
// frame, which the next load treats as the end of the file. On a failed or
// short write the unwritten remainder is retained (prepended to whatever
// queued meanwhile) so a retry resumes the byte stream exactly; entries are
// only dropped — loudly, via writeErr and the lost counters — after
// maxFlushRetries consecutive failed attempts. The bool result reports
// whether the caller should retry.
func (p *PersistentStore) flush() (error, bool) {
	p.mu.Lock()
	if p.writeErr != nil || p.f == nil || len(p.pending) == 0 {
		err := p.writeErr
		p.mu.Unlock()
		return err, false
	}
	if p.flushFails > 0 {
		p.retriesN.Add(1)
	}
	buf := p.pending
	ends := p.pendingEnds
	p.pending, p.pendingEnds = nil, nil
	f := p.f
	in := p.faults
	p.mu.Unlock()

	// One persist.flush span per physical write attempt: wall time only, the
	// flusher never touches the virtual clock.
	sp := p.spans.Load().Start(obs.SpanPersistFlush)
	n, err := writeFaulty(f, buf, in)
	sp.End(0)
	if err == nil {
		p.mu.Lock()
		p.flushFails = 0
		p.mu.Unlock()
		return nil, false
	}
	p.writeErrsN.Add(1)
	if n < 0 {
		n = 0
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushFails++
	// Durable prefix: frames whose end landed within the n written bytes.
	// The remainder rebases by -n and goes back to the head of the queue,
	// ahead of frames appended while the write was in flight.
	rem := buf[n:]
	merged := make([]byte, 0, len(rem)+len(p.pending))
	merged = append(merged, rem...)
	merged = append(merged, p.pending...)
	rebased := make([]int64, 0, len(ends)+len(p.pendingEnds))
	for _, e := range ends {
		if e > int64(n) {
			rebased = append(rebased, e-int64(n))
		}
	}
	for _, e := range p.pendingEnds {
		rebased = append(rebased, e+int64(len(rem)))
	}
	p.pending, p.pendingEnds = merged, rebased
	if p.flushFails >= maxFlushRetries {
		lost := int64(len(p.pendingEnds))
		p.lostN.Add(lost)
		p.appendedN.Add(-lost)
		p.pending, p.pendingEnds = nil, nil
		p.writeErr = fmt.Errorf("solver: cache file %s: appends disabled after %d failed write attempts (%d entries lost): %v",
			p.path, p.flushFails, lost, err)
		return p.writeErr, false
	}
	return err, true
}

// writeFaulty is the physical write, routed through the fault injector when
// one is installed. Short mode writes half the buffer for real before
// failing, so the partial-write retention path is exercised end to end.
func writeFaulty(f *os.File, buf []byte, in *faults.Injector) (int, error) {
	switch in.FireWrite() {
	case faults.WriteErr:
		return 0, errInjectedWrite
	case faults.WriteShort:
		n, err := f.Write(buf[:len(buf)/2])
		if err == nil {
			err = errInjectedShortWrite
		}
		return n, err
	}
	return f.Write(buf)
}

var (
	errInjectedWrite      = errors.New("injected persist write fault")
	errInjectedShortWrite = errors.New("injected short persist write")
)

// Close stops the flusher, writes any pending entries (retrying failed
// writes up to the retry budget) and closes the file. A non-nil error means
// entries were lost or the file did not close cleanly — CLI callers exit
// nonzero on it. It is idempotent.
func (p *PersistentStore) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
	p.flushWithBackoff(nil)
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.writeErr
	if p.f != nil {
		if cerr := p.f.Close(); err == nil {
			err = cerr
		}
		p.f = nil
	}
	return err
}

// encodePersistEntry serializes one record payload. Model variables are
// written in a deterministic order so identical runs produce identical files.
func encodePersistEntry(canon []*symexpr.Expr, r Result, m symexpr.Assignment, cost int64) []byte {
	out := []byte{byte(r)}
	out = binary.AppendUvarint(out, uint64(cost))
	out = binary.AppendUvarint(out, uint64(len(canon)))
	for _, c := range canon {
		out = symexpr.AppendExpr(out, c)
	}
	if r != Sat || m == nil {
		return binary.AppendUvarint(out, 0)
	}
	vars := make([]symexpr.Var, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if a.Buf != b.Buf {
			return a.Buf < b.Buf
		}
		if a.Idx != b.Idx {
			return a.Idx < b.Idx
		}
		return a.W < b.W
	})
	out = binary.AppendUvarint(out, uint64(len(vars)))
	for _, v := range vars {
		out = symexpr.AppendExpr(out, symexpr.NewVar(v))
		out = binary.AppendUvarint(out, m[v]&v.W.Mask())
	}
	return out
}

// decodePersistEntry parses and validates one record payload. Every
// structural property the writer guarantees is checked, so hostile bytes
// yield an error, never a malformed entry.
func decodePersistEntry(payload []byte) (persistEntry, error) {
	var e persistEntry
	if len(payload) == 0 {
		return e, fmt.Errorf("empty record")
	}
	switch Result(payload[0]) {
	case Sat, Unsat:
		e.result = Result(payload[0])
	default:
		return e, fmt.Errorf("bad result tag %d", payload[0])
	}
	pos := 1
	cost, n := binary.Uvarint(payload[pos:])
	if n <= 0 || cost > 1<<62 {
		return e, fmt.Errorf("bad cost field")
	}
	e.cost = int64(cost)
	pos += n
	ncons, n := binary.Uvarint(payload[pos:])
	if n <= 0 || ncons == 0 || ncons > maxPersistConstraints {
		return e, fmt.Errorf("bad constraint count")
	}
	pos += n
	e.canon = make([]*symexpr.Expr, 0, ncons)
	for i := uint64(0); i < ncons; i++ {
		c, used, err := symexpr.DecodeExpr(payload[pos:])
		if err != nil {
			return e, err
		}
		if c.Width() != symexpr.W1 {
			return e, fmt.Errorf("constraint of width %d", c.Width())
		}
		e.canon = append(e.canon, c)
		pos += used
	}
	nm, n := binary.Uvarint(payload[pos:])
	if n <= 0 || nm > maxPersistConstraints {
		return e, fmt.Errorf("bad model count")
	}
	pos += n
	if e.result == Unsat && nm != 0 {
		return e, fmt.Errorf("model on unsat record")
	}
	if e.result == Sat {
		e.model = symexpr.Assignment{}
	}
	for i := uint64(0); i < nm; i++ {
		ve, used, err := symexpr.DecodeExpr(payload[pos:])
		if err != nil {
			return e, err
		}
		if !ve.IsVar() {
			return e, fmt.Errorf("model key is not a variable")
		}
		pos += used
		val, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return e, fmt.Errorf("bad model value")
		}
		pos += n
		v := ve.VarRef()
		if val&^v.W.Mask() != 0 {
			return e, fmt.Errorf("model value %d exceeds width %d", val, v.W)
		}
		if _, dup := e.model[v]; dup {
			return e, fmt.Errorf("duplicate model variable")
		}
		e.model[v] = val
	}
	if pos != len(payload) {
		return e, fmt.Errorf("trailing bytes in record")
	}
	return e, nil
}
