package solver

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chef/internal/symexpr"
)

// Persistent counterexample cache: an append-only binary log of solved
// canonical queries, reloaded at startup so a later process starts warm.
//
// The store is deliberately asymmetric:
//
//   - The *read side* is immutable after load. Lookups only ever see what the
//     previous run left on disk, never entries appended during this run (the
//     in-memory QueryCache already serves those). This is what makes a warm
//     rerun reproduce a cold run byte-for-byte: the set of answerable
//     persistent lookups is fixed before the run starts, so it cannot depend
//     on scheduling.
//   - The *write side* records only queries this run actually solved — never
//     results derived by subsumption, which could disagree (different model,
//     same key) with what a cold solve produces.
//
// Each entry stores the canonical constraint sequence, the result, the model
// (Sat only) and the SAT propagation count the solve cost. A hit replays that
// cost into the solver's stats, so the virtual clock — and therefore every
// scheduling decision downstream — advances exactly as on a cold run. The
// store buys wall-clock time only.
//
// On-disk format (all integers little-endian or uvarint):
//
//	magic "CHEFCXC1"
//	repeat: [u32 payload len][payload][u32 crc32(payload)]
//	payload: result byte (1=sat 2=unsat)
//	         cost uvarint
//	         #constraints uvarint, each a symexpr encoding (width 1)
//	         #model vars uvarint, each a var encoding followed by val uvarint
//
// Corruption tolerance: loading stops at the first bad frame (bad magic,
// truncated frame, CRC mismatch, malformed payload). The valid prefix stays
// usable for lookups; appending is disabled so the file is never extended
// past garbage (records after a bad frame would be unreachable anyway). A
// corrupt or empty cache file therefore degrades to a cold cache, never an
// error the engine sees.

// persistMagic identifies format version 1.
const persistMagic = "CHEFCXC1"

// maxPersistRecord caps one record's payload so a corrupted length field
// cannot trigger a huge allocation.
const maxPersistRecord = 1 << 24

// maxPersistConstraints caps the constraint count of one decoded entry.
const maxPersistConstraints = 1 << 16

// persistFlushInterval is the background flusher's period.
const persistFlushInterval = 200 * time.Millisecond

type persistEntry struct {
	canon  []*symexpr.Expr
	result Result
	model  symexpr.Assignment
	cost   int64
}

// PersistentStore is the disk-backed layer of the counterexample cache. It is
// safe for concurrent use by many solvers (the parallel harness shares one
// store across sessions).
type PersistentStore struct {
	path string

	// entries is immutable after OpenPersistentStore returns; lookups read it
	// without locking. Models are owned by the store — callers clone.
	entries map[uint64][]persistEntry
	loaded  int
	corrupt error // non-nil: loading stopped early; appends disabled

	mu       sync.Mutex
	f        *os.File
	pending  []byte
	appended map[uint64]bool // keys queued for append this run
	writeErr error
	closed   bool

	appendedN atomic.Int64

	flushCh chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

// OpenPersistentStore opens (creating if absent) the cache file at path and
// loads every valid record. The returned error covers I/O failures only;
// content corruption is reported by Corruption and degrades to a partial or
// empty — but always usable — store.
func OpenPersistentStore(path string) (*PersistentStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	p := &PersistentStore{
		path:     path,
		entries:  map[uint64][]persistEntry{},
		f:        f,
		appended: map[uint64]bool{},
		flushCh:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	switch {
	case len(data) == 0:
		// Fresh file: stamp the header now so a run that stores nothing still
		// leaves a well-formed file behind.
		if _, err := f.Write([]byte(persistMagic)); err != nil {
			f.Close()
			return nil, err
		}
	case len(data) < len(persistMagic) || string(data[:len(persistMagic)]) != persistMagic:
		p.corrupt = fmt.Errorf("solver: cache file %s: bad magic", path)
	default:
		p.load(data[len(persistMagic):])
	}
	if p.corrupt != nil {
		// Never extend a corrupt file; keep it open read-only in spirit.
		f.Close()
		p.f = nil
	}
	p.wg.Add(1)
	go p.flushLoop()
	return p, nil
}

// load parses records until the data ends or a frame fails validation.
func (p *PersistentStore) load(data []byte) {
	pos := 0
	for pos < len(data) {
		if len(data)-pos < 4 {
			p.corrupt = fmt.Errorf("solver: cache file %s: truncated frame header", p.path)
			return
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if n <= 0 || n > maxPersistRecord {
			p.corrupt = fmt.Errorf("solver: cache file %s: bad record length %d", p.path, n)
			return
		}
		if len(data)-pos < 4+n+4 {
			p.corrupt = fmt.Errorf("solver: cache file %s: truncated record", p.path)
			return
		}
		payload := data[pos+4 : pos+4+n]
		crc := binary.LittleEndian.Uint32(data[pos+4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			p.corrupt = fmt.Errorf("solver: cache file %s: checksum mismatch", p.path)
			return
		}
		e, err := decodePersistEntry(payload)
		if err != nil {
			p.corrupt = fmt.Errorf("solver: cache file %s: %v", p.path, err)
			return
		}
		key := canonKey(e.canon)
		dup := false
		for _, have := range p.entries[key] {
			if sameCanon(have.canon, e.canon) {
				dup = true // first entry wins, matching the in-memory cache
				break
			}
		}
		if !dup {
			p.entries[key] = append(p.entries[key], e)
			p.loaded++
		}
		pos += 4 + n + 4
	}
}

// Loaded returns the number of entries loaded at startup.
func (p *PersistentStore) Loaded() int { return p.loaded }

// Appended returns the number of entries appended (queued or written) during
// this run.
func (p *PersistentStore) Appended() int64 { return p.appendedN.Load() }

// Corruption returns the load error that stopped record parsing, or nil if
// the whole file parsed. A corrupt store still serves the valid prefix.
func (p *PersistentStore) Corruption() error { return p.corrupt }

// Lookup returns the stored result for the canonical query, confirming the
// candidate entries pointer-wise (decoded expressions are re-interned, so
// equality is pointer identity). The returned model is owned by the store;
// callers clone before mutating. cost is the recorded propagation count of
// the original solve.
func (p *PersistentStore) Lookup(key uint64, canon []*symexpr.Expr) (Result, symexpr.Assignment, int64, bool) {
	for _, e := range p.entries[key] {
		if sameCanon(e.canon, canon) {
			return e.result, e.model, e.cost, true
		}
	}
	return Unknown, nil, 0, false
}

// Append queues a solved query for the background flusher. Results derived
// from other cache layers must not be appended (the solver only appends after
// an actual solveCNF call). Appends never become visible to this process's
// lookups; they exist for the next run.
func (p *PersistentStore) Append(key uint64, canon []*symexpr.Expr, r Result, m symexpr.Assignment, cost int64) {
	if r == Unknown || len(canon) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil || p.closed || p.writeErr != nil || p.appended[key] {
		return
	}
	if onDisk, ok := p.entries[key]; ok {
		already := false
		for _, e := range onDisk {
			if sameCanon(e.canon, canon) {
				already = true
				break
			}
		}
		if already {
			return
		}
	}
	p.appended[key] = true
	payload := encodePersistEntry(canon, r, m, cost)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payload)))
	p.pending = append(p.pending, u32[:]...)
	p.pending = append(p.pending, payload...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	p.pending = append(p.pending, u32[:]...)
	p.appendedN.Add(1)
	select {
	case p.flushCh <- struct{}{}:
	default:
	}
}

func (p *PersistentStore) flushLoop() {
	defer p.wg.Done()
	t := time.NewTicker(persistFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-p.flushCh:
		case <-t.C:
		}
		p.flush()
	}
}

// flush writes the pending buffer. Frames are written whole (the buffer only
// ever contains complete frames), so a crash mid-run leaves at worst a
// truncated final frame, which the next load treats as the end of the file.
func (p *PersistentStore) flush() {
	p.mu.Lock()
	buf := p.pending
	p.pending = nil
	f := p.f
	p.mu.Unlock()
	if len(buf) == 0 || f == nil {
		return
	}
	if _, err := f.Write(buf); err != nil {
		p.mu.Lock()
		p.writeErr = err
		p.mu.Unlock()
	}
}

// Close stops the flusher, writes any pending entries and closes the file.
// It is idempotent.
func (p *PersistentStore) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
	p.flush()
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.writeErr
	if p.f != nil {
		if cerr := p.f.Close(); err == nil {
			err = cerr
		}
		p.f = nil
	}
	return err
}

// encodePersistEntry serializes one record payload. Model variables are
// written in a deterministic order so identical runs produce identical files.
func encodePersistEntry(canon []*symexpr.Expr, r Result, m symexpr.Assignment, cost int64) []byte {
	out := []byte{byte(r)}
	out = binary.AppendUvarint(out, uint64(cost))
	out = binary.AppendUvarint(out, uint64(len(canon)))
	for _, c := range canon {
		out = symexpr.AppendExpr(out, c)
	}
	if r != Sat || m == nil {
		return binary.AppendUvarint(out, 0)
	}
	vars := make([]symexpr.Var, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if a.Buf != b.Buf {
			return a.Buf < b.Buf
		}
		if a.Idx != b.Idx {
			return a.Idx < b.Idx
		}
		return a.W < b.W
	})
	out = binary.AppendUvarint(out, uint64(len(vars)))
	for _, v := range vars {
		out = symexpr.AppendExpr(out, symexpr.NewVar(v))
		out = binary.AppendUvarint(out, m[v]&v.W.Mask())
	}
	return out
}

// decodePersistEntry parses and validates one record payload. Every
// structural property the writer guarantees is checked, so hostile bytes
// yield an error, never a malformed entry.
func decodePersistEntry(payload []byte) (persistEntry, error) {
	var e persistEntry
	if len(payload) == 0 {
		return e, fmt.Errorf("empty record")
	}
	switch Result(payload[0]) {
	case Sat, Unsat:
		e.result = Result(payload[0])
	default:
		return e, fmt.Errorf("bad result tag %d", payload[0])
	}
	pos := 1
	cost, n := binary.Uvarint(payload[pos:])
	if n <= 0 || cost > 1<<62 {
		return e, fmt.Errorf("bad cost field")
	}
	e.cost = int64(cost)
	pos += n
	ncons, n := binary.Uvarint(payload[pos:])
	if n <= 0 || ncons == 0 || ncons > maxPersistConstraints {
		return e, fmt.Errorf("bad constraint count")
	}
	pos += n
	e.canon = make([]*symexpr.Expr, 0, ncons)
	for i := uint64(0); i < ncons; i++ {
		c, used, err := symexpr.DecodeExpr(payload[pos:])
		if err != nil {
			return e, err
		}
		if c.Width() != symexpr.W1 {
			return e, fmt.Errorf("constraint of width %d", c.Width())
		}
		e.canon = append(e.canon, c)
		pos += used
	}
	nm, n := binary.Uvarint(payload[pos:])
	if n <= 0 || nm > maxPersistConstraints {
		return e, fmt.Errorf("bad model count")
	}
	pos += n
	if e.result == Unsat && nm != 0 {
		return e, fmt.Errorf("model on unsat record")
	}
	if e.result == Sat {
		e.model = symexpr.Assignment{}
	}
	for i := uint64(0); i < nm; i++ {
		ve, used, err := symexpr.DecodeExpr(payload[pos:])
		if err != nil {
			return e, err
		}
		if !ve.IsVar() {
			return e, fmt.Errorf("model key is not a variable")
		}
		pos += used
		val, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return e, fmt.Errorf("bad model value")
		}
		pos += n
		v := ve.VarRef()
		if val&^v.W.Mask() != 0 {
			return e, fmt.Errorf("model value %d exceeds width %d", val, v.W)
		}
		if _, dup := e.model[v]; dup {
			return e, fmt.Errorf("duplicate model variable")
		}
		e.model[v] = val
	}
	if pos != len(payload) {
		return e, fmt.Errorf("trailing bytes in record")
	}
	return e, nil
}
