package solver

import (
	"sync"

	"chef/internal/symexpr"
)

// Subsumption layer of the counterexample cache.
//
// The exact-match layer only answers queries it has literally seen. The
// subsumption layer exploits two logical facts about conjunctive queries,
// following the KLEE counterexample-cache design the survey literature
// describes:
//
//  1. If a cached constraint set E is unsatisfiable and E ⊆ Q, then Q is
//     unsatisfiable (adding conjuncts can only remove solutions).
//  2. If a cached assignment M satisfies E and E ⊆ Q, then M *might*
//     satisfy Q: re-evaluating the remaining constraints of Q under M is a
//     cheap concrete check, and succeeds often because path conditions grow
//     one conjunct at a time. Dually, if E ⊇ Q and M satisfies E, then M
//     satisfies Q by construction — no re-check needed.
//
// Both facts are timeless: an entry never becomes wrong, so this store needs
// no coherence with the exact layer's FIFO eviction. It is bounded by a
// wholesale epoch flush (when full, it is cleared and restarted), which
// keeps behavior deterministic for a deterministic insertion sequence —
// unlike LRU, whose contents would depend on lookup order.
//
// Candidate discovery uses an inverted index from constraint (interning ID
// of the hash-consed *Expr) to the entries containing it. Lookups walk
// candidates in insertion order and take the first hit, so results are
// deterministic given deterministic cache state; the walk is capped so a
// degenerate store cannot turn a cache miss into a linear scan.

// subsumeScanCap bounds how many candidate entries one lookup may verify
// per direction. The cap is part of observable behavior (a capped-out
// lookup is a miss), so it is a fixed constant, not a tuning knob.
const subsumeScanCap = 64

type subEntry struct {
	constraints []*symexpr.Expr // canonical order
	ids         map[uint64]bool // interning IDs of constraints
	result      Result
	model       symexpr.Assignment // nil for Unsat
}

type subsumeStore struct {
	mu      sync.Mutex
	entries []subEntry
	byID    map[uint64][]int // constraint ID -> entry indexes, insertion order
	cap     int
}

func (s *subsumeStore) init(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	s.cap = capacity
	s.byID = map[uint64][]int{}
}

// add indexes a canonicalized query result. Unknown results are never
// stored. The caller passes already-cloned slices/models (Store does).
func (s *subsumeStore) add(canon []*symexpr.Expr, r Result, m symexpr.Assignment) {
	if r == Unknown || len(canon) == 0 {
		return
	}
	ids := make(map[uint64]bool, len(canon))
	for _, c := range canon {
		ids[c.ID()] = true
	}
	s.mu.Lock()
	if len(s.entries) >= s.cap {
		// Epoch flush: deterministic, O(1) amortized, and sound (dropping
		// entries only loses hit opportunities).
		s.entries = nil
		s.byID = map[uint64][]int{}
	}
	idx := len(s.entries)
	s.entries = append(s.entries, subEntry{canon, ids, r, m})
	for _, c := range canon {
		s.byID[c.ID()] = append(s.byID[c.ID()], idx)
	}
	s.mu.Unlock()
}

// lookup tries to answer the canonicalized query by subsumption. The
// returned model (Sat hits) is freshly allocated and covers exactly the
// variables of the query, extended with the zero default for variables the
// donor entry leaves unconstrained — EvalBool treats missing variables as
// zero, so the returned assignment must pin them explicitly or the caller's
// base-merge could silently substitute different values.
func (s *subsumeStore) lookup(canon []*symexpr.Expr) (Result, symexpr.Assignment, HitClass) {
	if len(canon) == 0 {
		return Unknown, nil, HitNone
	}
	qids := make(map[uint64]bool, len(canon))
	for _, c := range canon {
		qids[c.ID()] = true
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// Pass 1 — subset entries (E ⊆ Q): candidates are entries containing any
	// constraint of Q; verified by checking every constraint of E is in Q.
	// Walk in (constraint canonical order, entry insertion order) so the
	// first hit is deterministic.
	seen := map[int]bool{}
	scanned := 0
	for _, c := range canon {
		for _, idx := range s.byID[c.ID()] {
			if seen[idx] {
				continue
			}
			seen[idx] = true
			if scanned++; scanned > subsumeScanCap {
				break
			}
			e := &s.entries[idx]
			if len(e.constraints) > len(canon) || !subset(e.ids, qids) {
				continue
			}
			if e.result == Unsat {
				// E ⊆ Q and E unsat ⇒ Q unsat.
				return Unsat, nil, HitSubsumeUnsat
			}
			// E ⊆ Q and model satisfies E: re-check the whole of Q under the
			// model extended with zeros for Q's extra variables.
			if m, ok := recheck(canon, e.model); ok {
				return Sat, m, HitSubsumeSat
			}
		}
		if scanned > subsumeScanCap {
			break
		}
	}

	// Pass 2 — superset entries (E ⊇ Q): candidates must contain Q's first
	// canonical constraint; verified by Q ⊆ E. The donor's model satisfies
	// every constraint of E, hence all of Q.
	scanned = 0
	for _, idx := range s.byID[canon[0].ID()] {
		if scanned++; scanned > subsumeScanCap {
			break
		}
		e := &s.entries[idx]
		if e.result != Sat || len(e.constraints) < len(canon) || !subset(qids, e.ids) {
			continue
		}
		return Sat, restrict(canon, e.model), HitSubsumeSat
	}
	return Unknown, nil, HitNone
}

// subset reports a ⊆ b for ID sets.
func subset(a, b map[uint64]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// recheck evaluates every constraint of canon under the donor model extended
// with zeros for unassigned variables, returning the extended model on
// success. The extension is restricted to the query's own variables so the
// returned assignment matches what a direct solve would cover.
func recheck(canon []*symexpr.Expr, donor symexpr.Assignment) (symexpr.Assignment, bool) {
	m := symexpr.Assignment{}
	for _, c := range canon {
		for _, v := range symexpr.Vars(c) {
			if _, ok := m[v]; !ok {
				m[v] = donor[v] & v.W.Mask() // zero when donor leaves it free
			}
		}
	}
	for _, c := range canon {
		if !symexpr.EvalBool(c, m) {
			return nil, false
		}
	}
	return m, true
}

// restrict projects the donor model onto the variables of the query. The
// donor assigns every variable of a superset constraint set, so the
// projection stays a model of the query.
func restrict(canon []*symexpr.Expr, donor symexpr.Assignment) symexpr.Assignment {
	m := symexpr.Assignment{}
	for _, c := range canon {
		for _, v := range symexpr.Vars(c) {
			if _, ok := m[v]; !ok {
				m[v] = donor[v] & v.W.Mask()
			}
		}
	}
	return m
}
