package solver

import (
	"sync"
	"sync/atomic"

	"chef/internal/symexpr"
)

// HitClass labels how a cache lookup was answered, for the per-class obs
// counters and the harness stats.
type HitClass uint8

// Hit classes. Exact is a pointer-identical canonical-query match;
// SubsumeSat reused a satisfying assignment of a subset query that also
// satisfies the new query (or of a superset query, which satisfies it by
// construction); SubsumeUnsat derived unsat from a cached unsat subset
// (supersets of unsat constraint sets are unsat); Persist replayed a result
// from the disk-backed store.
const (
	HitNone HitClass = iota
	HitExact
	HitSubsumeSat
	HitSubsumeUnsat
	HitPersist
)

func (h HitClass) String() string {
	switch h {
	case HitExact:
		return "exact"
	case HitSubsumeSat:
		return "subsume-sat"
	case HitSubsumeUnsat:
		return "subsume-unsat"
	case HitPersist:
		return "persist"
	default:
		return "none"
	}
}

// QueryCache is the solver's counterexample cache, promoted to an explicit
// type so it can be shared across solvers (and therefore across sessions
// running on different goroutines). It memoizes the outcome of CNF-level
// queries — the canonicalized constraint set that survives constant
// filtering, independent-constraint slicing and Compare-ordering — keyed by
// an order-sensitive hash over the canonical sequence. Hash-consing makes
// entry confirmation a pointer-slice comparison.
//
// On top of the exact-match layer, the cache maintains a subsumption store
// (see subsume.go) answering misses KLEE-style: a cached unsat subset proves
// the new query unsat, and a cached satisfying assignment of a subset (or
// superset) query is re-validated against the new constraints. Subsumption
// lookups are opt-in per solver (Options.Mode == CacheSubsume); indexing for
// them happens on every store, so a shared cache serves solvers in either
// mode.
//
// The cache is sharded: each shard holds its own mutex, map and FIFO eviction
// queue, so concurrent sessions mostly touch distinct shards. All counters
// are atomics, safe to read while the cache is in use.
//
// Determinism note: queries are solved in canonical constraint order, so the
// result *and model* of a solved query are a pure function of the constraint
// set. A Solver that owns a private QueryCache is therefore fully
// deterministic, and exact-mode hits on a cache *shared* between concurrent
// sessions return the same bits a private solve would have produced — only
// the virtual-time cost of a query (solved versus hit for free) still
// depends on which session got there first, so shared caches remain an
// opt-in throughput knob (-sharedcache). Subsumption-mode hits additionally
// depend on which entries exist at lookup time, which is schedule-dependent
// on a shared cache; with private caches (the default) subsumption is fully
// deterministic.
type QueryCache struct {
	shards [cacheShardCount]cacheShard
	sub    subsumeStore

	// perShardCap bounds the number of entries per shard; inserting beyond
	// it evicts the shard's oldest entry (FIFO).
	perShardCap int

	queries   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64

	hitExact      atomic.Int64
	hitSubsumeSat atomic.Int64
	hitSubsumeUns atomic.Int64
}

const (
	cacheShardCount = 16

	// DefaultCacheCapacity is the default total entry bound of a QueryCache.
	DefaultCacheCapacity = 1 << 16
)

type cacheShard struct {
	mu sync.Mutex
	m  map[uint64][]cachedQuery
	// order records insertion order of bucket keys, one element per stored
	// entry, for exact FIFO eviction.
	order []uint64
}

// CacheStats is a snapshot of the cache counters. By construction
// Hits + Misses == Queries at any quiescent point. The per-class fields
// decompose Hits (persist-layer hits are counted by the Solver, not here,
// because the persistent store is not part of the in-memory cache).
type CacheStats struct {
	Queries   int64
	Hits      int64
	Misses    int64
	Stores    int64
	Evictions int64
	Entries   int64

	HitsExact        int64
	HitsSubsumeSat   int64
	HitsSubsumeUnsat int64
}

// Add folds another snapshot into s, field by field — the merge helper for
// aggregating per-cell snapshots (sharded sessions own one cache per range).
func (s *CacheStats) Add(o CacheStats) {
	s.Queries += o.Queries
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Stores += o.Stores
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.HitsExact += o.HitsExact
	s.HitsSubsumeSat += o.HitsSubsumeSat
	s.HitsSubsumeUnsat += o.HitsSubsumeUnsat
}

// NewQueryCache builds a cache bounded to roughly capacity entries
// (0 means DefaultCacheCapacity).
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	per := capacity / cacheShardCount
	if per < 1 {
		per = 1
	}
	c := &QueryCache{perShardCap: per}
	for i := range c.shards {
		c.shards[i].m = map[uint64][]cachedQuery{}
	}
	c.sub.init(capacity)
	return c
}

func (c *QueryCache) shard(key uint64) *cacheShard {
	// The key is already a mixed hash; fold the high bits so shard selection
	// does not correlate with bucket selection.
	return &c.shards[(key^key>>32)%cacheShardCount]
}

// sameCanon reports equality of two canonicalized constraint slices. Both
// sides are sorted by symexpr.Compare and interned, so equality is an
// element-wise pointer comparison.
func sameCanon(a, b []*symexpr.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Lookup returns the memoized result for the canonicalized query, if
// present. The returned model is owned by the cache and must not be mutated;
// callers clone before merging (as Solver.Check does).
func (c *QueryCache) Lookup(key uint64, canon []*symexpr.Expr) (Result, symexpr.Assignment, bool) {
	c.queries.Add(1)
	sh := c.shard(key)
	sh.mu.Lock()
	for _, q := range sh.m[key] {
		if sameCanon(q.key, canon) {
			r, m := q.result, q.model
			sh.mu.Unlock()
			c.hits.Add(1)
			c.hitExact.Add(1)
			return r, m, true
		}
	}
	sh.mu.Unlock()
	return Unknown, nil, false
}

// LookupSubsume tries to answer a query that missed the exact layer by
// subsumption (see subsume.go). On a hit it returns the derived result, a
// model valid for the query (Sat only) and the hit class. The caller is
// expected to Store the derived result under the query's own key so later
// identical queries take the exact path.
func (c *QueryCache) LookupSubsume(canon []*symexpr.Expr) (Result, symexpr.Assignment, HitClass) {
	r, m, class := c.sub.lookup(canon)
	if class != HitNone {
		c.hits.Add(1)
		if class == HitSubsumeSat {
			c.hitSubsumeSat.Add(1)
		} else {
			c.hitSubsumeUns.Add(1)
		}
	}
	return r, m, class
}

// Miss records that a lookup sequence found no answer at any layer of this
// cache. (Exact and subsume lookups are separate calls; the solver reports
// the final verdict so Hits + Misses == Queries holds.)
func (c *QueryCache) Miss() { c.misses.Add(1) }

// Store memoizes a query result under its canonical key and indexes it for
// subsumption. The constraint slice and model are cloned so later mutation
// by the caller cannot corrupt the cache.
func (c *QueryCache) Store(key uint64, canon []*symexpr.Expr, r Result, m symexpr.Assignment) {
	cs := append([]*symexpr.Expr(nil), canon...)
	var mc symexpr.Assignment
	if m != nil {
		mc = m.Clone()
	}
	sh := c.shard(key)
	sh.mu.Lock()
	// Double-insert check: another session may have stored the same query
	// between our miss and this store. Keeping the first entry makes the
	// cache contents insertion-order independent at the entry level.
	for _, q := range sh.m[key] {
		if sameCanon(q.key, canon) {
			sh.mu.Unlock()
			return
		}
	}
	sh.m[key] = append(sh.m[key], cachedQuery{cs, r, mc})
	sh.order = append(sh.order, key)
	evicted := false
	if len(sh.order) > c.perShardCap {
		old := sh.order[0]
		sh.order = sh.order[1:]
		if bucket := sh.m[old]; len(bucket) > 0 {
			if len(bucket) == 1 {
				delete(sh.m, old)
			} else {
				sh.m[old] = bucket[1:]
			}
			evicted = true
		}
	}
	sh.mu.Unlock()
	c.stores.Add(1)
	if evicted {
		c.evictions.Add(1)
	}
	// Index for subsumption. The subsume store is bounded independently of
	// the exact shards: a subsumption entry records a timelessly valid fact
	// ("this set is unsat" / "this assignment satisfies this set"), so the
	// two layers never need coherent eviction.
	c.sub.add(cs, r, mc)
}

// Len returns the current number of cached entries (exact layer).
func (c *QueryCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.order)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *QueryCache) Stats() CacheStats {
	return CacheStats{
		Queries:          c.queries.Load(),
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Stores:           c.stores.Load(),
		Evictions:        c.evictions.Load(),
		Entries:          int64(c.Len()),
		HitsExact:        c.hitExact.Load(),
		HitsSubsumeSat:   c.hitSubsumeSat.Load(),
		HitsSubsumeUnsat: c.hitSubsumeUns.Load(),
	}
}
