package solver

import (
	"sync"
	"sync/atomic"

	"chef/internal/symexpr"
)

// QueryCache is the solver's counterexample cache, promoted to an explicit
// type so it can be shared across solvers (and therefore across sessions
// running on different goroutines). It memoizes the outcome of CNF-level
// queries — the constraint set that survives constant filtering and
// independent-constraint slicing — keyed by an order-insensitive hash with
// exact structural confirmation on each bucket entry.
//
// The cache is sharded: each shard holds its own mutex, map and FIFO eviction
// queue, so concurrent sessions mostly touch distinct shards. All counters
// are atomics, safe to read while the cache is in use.
//
// Determinism note: a Solver that owns a private QueryCache is fully
// deterministic. A cache *shared* between concurrently running sessions is
// still safe and sound (entries record logically valid results), but the
// model returned for a Sat hit may be one discovered by a different session,
// so bit-exact reproducibility across schedules is no longer guaranteed.
// The experiment harness therefore defaults to private caches and offers
// sharing as an opt-in throughput knob (-sharedcache).
type QueryCache struct {
	shards [cacheShardCount]cacheShard

	// perShardCap bounds the number of entries per shard; inserting beyond
	// it evicts the shard's oldest entry (FIFO).
	perShardCap int

	queries   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64
}

const (
	cacheShardCount = 16

	// DefaultCacheCapacity is the default total entry bound of a QueryCache.
	DefaultCacheCapacity = 1 << 16
)

type cacheShard struct {
	mu sync.Mutex
	m  map[uint64][]cachedQuery
	// order records insertion order of bucket keys, one element per stored
	// entry, for exact FIFO eviction.
	order []uint64
}

// CacheStats is a snapshot of the cache counters. By construction
// Hits + Misses == Queries at any quiescent point.
type CacheStats struct {
	Queries   int64
	Hits      int64
	Misses    int64
	Stores    int64
	Evictions int64
	Entries   int64
}

// NewQueryCache builds a cache bounded to roughly capacity entries
// (0 means DefaultCacheCapacity).
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	per := capacity / cacheShardCount
	if per < 1 {
		per = 1
	}
	c := &QueryCache{perShardCap: per}
	for i := range c.shards {
		c.shards[i].m = map[uint64][]cachedQuery{}
	}
	return c
}

func (c *QueryCache) shard(key uint64) *cacheShard {
	// The key is already a mixed hash; fold the high bits so shard selection
	// does not correlate with bucket selection.
	return &c.shards[(key^key>>32)%cacheShardCount]
}

// Lookup returns the memoized result for the query, if present. The returned
// model is owned by the cache and must not be mutated; callers clone before
// merging (as Solver.Check does).
func (c *QueryCache) Lookup(key uint64, constraints []*symexpr.Expr) (Result, symexpr.Assignment, bool) {
	c.queries.Add(1)
	sh := c.shard(key)
	sh.mu.Lock()
	for _, q := range sh.m[key] {
		if sameQuery(q.key, constraints) {
			r, m := q.result, q.model
			sh.mu.Unlock()
			c.hits.Add(1)
			return r, m, true
		}
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return Unknown, nil, false
}

// Store memoizes a query result. The constraint slice and model are cloned so
// later mutation by the caller cannot corrupt the cache.
func (c *QueryCache) Store(key uint64, constraints []*symexpr.Expr, r Result, m symexpr.Assignment) {
	cs := append([]*symexpr.Expr(nil), constraints...)
	var mc symexpr.Assignment
	if m != nil {
		mc = m.Clone()
	}
	sh := c.shard(key)
	sh.mu.Lock()
	// Double-insert check: another session may have stored the same query
	// between our miss and this store. Keeping the first entry makes the
	// cache contents insertion-order independent at the entry level.
	for _, q := range sh.m[key] {
		if sameQuery(q.key, constraints) {
			sh.mu.Unlock()
			return
		}
	}
	sh.m[key] = append(sh.m[key], cachedQuery{cs, r, mc})
	sh.order = append(sh.order, key)
	evicted := false
	if len(sh.order) > c.perShardCap {
		old := sh.order[0]
		sh.order = sh.order[1:]
		if bucket := sh.m[old]; len(bucket) > 0 {
			if len(bucket) == 1 {
				delete(sh.m, old)
			} else {
				sh.m[old] = bucket[1:]
			}
			evicted = true
		}
	}
	sh.mu.Unlock()
	c.stores.Add(1)
	if evicted {
		c.evictions.Add(1)
	}
}

// Len returns the current number of cached entries.
func (c *QueryCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.order)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *QueryCache) Stats() CacheStats {
	return CacheStats{
		Queries:   c.queries.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
	}
}
