package solver

import (
	"math/rand"
	"reflect"
	"testing"

	sx "chef/internal/symexpr"
)

// Incremental-backend property suite. The engine's query stream walks a
// prefix-shared path-condition tree: each query shares a (possibly empty)
// prefix with the previous one, and the Context pops the diverging suffix of
// assumption levels and re-pushes the new one. These tests pin the core
// contract of that machinery: popping and re-pushing assumptions over a
// shared prefix never changes a verdict, and the whole stream is a
// deterministic function of the query sequence.

// prefixStream generates a query stream with the prefix-tree shape of real
// exploration: a stack of constraints mutated by random push/pop steps, a
// query issued against every intermediate prefix (including re-queries of
// previously-seen prefixes after deeper excursions).
func prefixStream(r *rand.Rand, steps, maxDepth int) [][]*sx.Expr {
	var stack []*sx.Expr
	out := make([][]*sx.Expr, 0, steps)
	snapshot := func() []*sx.Expr { return append([]*sx.Expr(nil), stack...) }
	for i := 0; i < steps; i++ {
		switch op := r.Intn(8); {
		case op < 4 && len(stack) < maxDepth: // push one and query
			stack = append(stack, oracleBool(r, 2))
			out = append(out, snapshot())
		case op < 6 && len(stack) > 0: // pop a random suffix, then re-query the prefix
			stack = stack[:r.Intn(len(stack))]
			if len(stack) > 0 {
				out = append(out, snapshot())
			}
		default: // re-query the current prefix unchanged (full-lcp path)
			if len(stack) > 0 {
				out = append(out, snapshot())
			}
		}
	}
	return out
}

// TestIncrementalPrefixPopRepush drives prefix-tree query streams through a
// single cache-disabled incremental solver — so every query reaches the live
// Context and exercises trail pop/re-push — and cross-checks every verdict
// against the brute-force oracle, validating every Sat model.
func TestIncrementalPrefixPopRepush(t *testing.T) {
	streams := 6
	steps := 120
	if testing.Short() {
		streams, steps = 3, 60
	}
	for seed := int64(0); seed < int64(streams); seed++ {
		r := rand.New(rand.NewSource(7000 + seed))
		queries := prefixStream(r, steps, 8)
		s := New(Options{DisableCache: true, SolverMode: ModeIncremental})
		for i, pc := range queries {
			want, _, feasible := OracleCheck(pc)
			if !feasible {
				t.Fatalf("seed %d query %d: oracle infeasible for pool", seed, i)
			}
			res, model := s.CheckQuery(Query{PC: pc})
			if res != want {
				t.Fatalf("seed %d query %d (depth %d): incremental=%v oracle=%v pc=%v",
					seed, i, len(pc), res, want, pc)
			}
			if res == Sat {
				for _, c := range pc {
					if !sx.EvalBool(c, model) {
						t.Fatalf("seed %d query %d: model %v violates %v", seed, i, model, c)
					}
				}
			}
		}
		if st := s.Stats(); st.IncContexts == 0 {
			t.Fatalf("seed %d: stream solved without ever building a context: %+v", seed, st)
		}
	}
}

// TestIncrementalStreamDeterministic replays the same query stream through
// two fresh incremental solvers and requires bit-identical verdicts, models
// and stats — the per-stream determinism contract that lets per-cell solver
// ownership stay byte-reproducible across runs and worker counts.
func TestIncrementalStreamDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	queries := prefixStream(r, 150, 8)

	type outcome struct {
		res   Result
		model sx.Assignment
	}
	run := func() ([]outcome, Stats) {
		s := New(Options{DisableCache: true, SolverMode: ModeIncremental})
		outs := make([]outcome, 0, len(queries))
		for _, pc := range queries {
			res, model := s.CheckQuery(Query{PC: pc})
			outs = append(outs, outcome{res, model})
		}
		return outs, s.Stats()
	}
	a, aStats := run()
	b, bStats := run()
	for i := range a {
		if a[i].res != b[i].res || !sameModel(a[i].model, b[i].model) {
			t.Fatalf("query %d diverged across identical runs: (%v, %v) vs (%v, %v)",
				i, a[i].res, a[i].model, b[i].res, b[i].model)
		}
	}
	if !reflect.DeepEqual(aStats, bStats) {
		t.Fatalf("stats diverged across identical runs:\n  %+v\n  %+v", aStats, bStats)
	}
}

// TestIncrementalUnknownRecovers pins the Context's Unknown normalization: a
// budget-exhausted query cancels the trail entirely, and the next query under
// a restored budget re-establishes the prefix from scratch and answers
// correctly.
func TestIncrementalUnknownRecovers(t *testing.T) {
	a := sx.NewVar(sx.Var{Buf: "a", W: sx.W8})
	// Multiplication blasts to enough clauses that one propagation cannot
	// finish the solve.
	pc := []*sx.Expr{sx.Eq(sx.Mul(a, a), sx.Const(49, sx.W8))}

	s := New(Options{DisableCache: true, SolverMode: ModeIncremental, PropBudget: 1})
	if res, _ := s.CheckQuery(Query{PC: pc}); res != Unknown {
		t.Fatalf("budget 1: got %v, want Unknown", res)
	}
	s.Attach(Instruments{PropBudget: -1}) // restore the default budget
	res, model := s.CheckQuery(Query{PC: pc})
	if res != Sat {
		t.Fatalf("restored budget: got %v, want Sat", res)
	}
	if !sx.EvalBool(pc[0], model) {
		t.Fatalf("restored budget: model %v violates %v", model, pc[0])
	}
	// The same solver keeps answering correctly on a diverging prefix.
	pc2 := []*sx.Expr{pc[0], sx.Ult(a, sx.Const(5, sx.W8))}
	want, _, _ := OracleCheck(pc2)
	if res, _ := s.CheckQuery(Query{PC: pc2}); res != want {
		t.Fatalf("follow-up query: got %v, oracle says %v", res, want)
	}
}

// TestIncrementalStatsPopulated checks the solver.inc.* stats actually move:
// a prefix-shared stream must allocate assumptions, reuse at least one
// context, and (after conflicts) carry learned clauses between queries.
func TestIncrementalStatsPopulated(t *testing.T) {
	a := sx.NewVar(sx.Var{Buf: "a", W: sx.W8})
	grow := []*sx.Expr{
		sx.Ult(a, sx.Const(200, sx.W8)),
		sx.Ult(sx.Const(10, sx.W8), a),
		sx.Ne(a, sx.Const(50, sx.W8)),
		sx.Eq(sx.And(a, sx.Const(3, sx.W8)), sx.Const(1, sx.W8)),
	}
	s := New(Options{DisableCache: true, SolverMode: ModeIncremental})
	for i := 1; i <= len(grow); i++ {
		if res, _ := s.CheckQuery(Query{PC: grow[:i]}); res != Sat {
			t.Fatalf("prefix %d: %v, want Sat", i, res)
		}
	}
	st := s.Stats()
	if st.IncContexts != 1 {
		t.Fatalf("growing prefix stream built %d contexts, want 1: %+v", st.IncContexts, st)
	}
	if st.IncAssumptions != int64(len(grow)) {
		t.Fatalf("allocated %d assumption literals, want %d (one per distinct constraint): %+v",
			st.IncAssumptions, len(grow), st)
	}
	if st.IncRebuilds != 0 {
		t.Fatalf("unexpected context rebuilds: %+v", st)
	}
}

// TestIncrementalGrowthCapRebuild shrinks the context growth caps until a
// realistic stream must rebuild mid-flight, then pins the rebuild contract:
// every verdict still matches the brute-force oracle, the rebuild counters
// stay consistent (contexts = rebuilds + 1), and two identically-capped runs
// are bit-identical — a rebuild resets the clause database but never the
// deterministic function from query stream to results. This is the
// regression net for the rebuild path re-establishing per-constraint
// assumption/activation state (including phase pins) from scratch.
func TestIncrementalGrowthCapRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	queries := prefixStream(r, 120, 8)

	type outcome struct {
		res   Result
		model sx.Assignment
	}
	run := func() ([]outcome, Stats) {
		s := New(Options{DisableCache: true, SolverMode: ModeIncremental})
		ib := s.backend.(*incrementalBackend)
		// Tiny caps: a single W8 comparison blasts tens of variables, so
		// almost every deepening forces overLimit and a fresh context.
		ib.maxLearned = 4
		ib.maxVars = 64
		outs := make([]outcome, 0, len(queries))
		for i, pc := range queries {
			want, _, feasible := OracleCheck(pc)
			if !feasible {
				t.Fatalf("query %d: oracle infeasible for pool", i)
			}
			res, model := s.CheckQuery(Query{PC: pc})
			if res != want {
				t.Fatalf("query %d (depth %d): capped incremental=%v oracle=%v pc=%v",
					i, len(pc), res, want, pc)
			}
			if res == Sat {
				for _, c := range pc {
					if !sx.EvalBool(c, model) {
						t.Fatalf("query %d: model %v violates %v", i, model, c)
					}
				}
			}
			outs = append(outs, outcome{res, model})
		}
		return outs, s.Stats()
	}

	a, aStats := run()
	if aStats.IncRebuilds == 0 {
		t.Fatalf("tiny caps never forced a rebuild: %+v", aStats)
	}
	if aStats.IncContexts != aStats.IncRebuilds+1 {
		t.Fatalf("contexts=%d, want rebuilds+1=%d: %+v",
			aStats.IncContexts, aStats.IncRebuilds+1, aStats)
	}
	b, bStats := run()
	for i := range a {
		if a[i].res != b[i].res || !sameModel(a[i].model, b[i].model) {
			t.Fatalf("query %d diverged across identical capped runs: (%v, %v) vs (%v, %v)",
				i, a[i].res, a[i].model, b[i].res, b[i].model)
		}
	}
	if !reflect.DeepEqual(aStats, bStats) {
		t.Fatalf("stats diverged across identical capped runs:\n  %+v\n  %+v", aStats, bStats)
	}
}
