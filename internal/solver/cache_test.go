package solver

import (
	"fmt"
	"sync"
	"testing"

	"chef/internal/symexpr"
)

// stressQuery builds the i-th synthetic query: a single constraint
// x_i == i over a fresh 32-bit variable, structurally distinct per i.
func stressQuery(i int) []*symexpr.Expr {
	v := symexpr.NewVar(symexpr.Var{Buf: fmt.Sprintf("v%d", i%97), Idx: i % 13, W: symexpr.W32})
	return []*symexpr.Expr{symexpr.Eq(v, symexpr.Const(uint64(i), symexpr.W32))}
}

func stressModel(i int) symexpr.Assignment {
	return symexpr.Assignment{
		{Buf: fmt.Sprintf("v%d", i%97), Idx: i % 13, W: symexpr.W32}: uint64(i),
	}
}

// TestQueryCacheConcurrentStress hammers one shared cache from many
// goroutines with overlapping Lookup/Store traffic. Run under -race this
// validates the sharded locking; afterwards the counters must balance
// exactly: every Lookup is either a hit or a miss, and entries never exceed
// the configured capacity.
func TestQueryCacheConcurrentStress(t *testing.T) {
	const (
		workers = 16
		rounds  = 400
		space   = 150 // distinct queries, overlapping across workers
	)
	c := NewQueryCache(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % space
				q := stressQuery(i)
				key := canonKey(q)
				if res, m, ok := c.Lookup(key, q); ok {
					if res != Sat {
						t.Errorf("query %d: cached result %v, want Sat", i, res)
						return
					}
					want := stressModel(i)
					if len(m) != len(want) {
						t.Errorf("query %d: cached model %v, want %v", i, m, want)
						return
					}
					for k, v := range want {
						if m[k] != v {
							t.Errorf("query %d: cached model %v, want %v", i, m, want)
							return
						}
					}
				} else {
					c.Miss()
					c.Store(key, q, Sat, stressModel(i))
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.Stats()
	if s.Queries != int64(workers*rounds) {
		t.Fatalf("queries = %d, want %d", s.Queries, workers*rounds)
	}
	if s.Hits+s.Misses != s.Queries {
		t.Fatalf("hits (%d) + misses (%d) != queries (%d)", s.Hits, s.Misses, s.Queries)
	}
	if s.Hits == 0 {
		t.Fatal("no hits despite overlapping query space")
	}
	// Distinct queries bound entries; double-insert suppression keeps one
	// entry per distinct query even when two goroutines race the same miss.
	if s.Entries > int64(space) {
		t.Fatalf("entries = %d, want <= %d distinct queries", s.Entries, space)
	}
	if s.Entries != s.Stores-s.Evictions {
		t.Fatalf("entries (%d) != stores (%d) - evictions (%d)", s.Entries, s.Stores, s.Evictions)
	}
}

// TestQueryCacheEviction fills a tiny cache beyond capacity and checks FIFO
// eviction keeps the entry count bounded while the counters stay consistent.
func TestQueryCacheEviction(t *testing.T) {
	const capacity = cacheShardCount // 1 entry per shard
	c := NewQueryCache(capacity)
	const n = 10 * capacity
	for i := 0; i < n; i++ {
		q := stressQuery(i)
		c.Store(canonKey(q), q, Unsat, nil)
	}
	s := c.Stats()
	if s.Entries > int64(capacity) {
		t.Fatalf("entries = %d, want <= %d", s.Entries, capacity)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite exceeding capacity")
	}
	if s.Entries != s.Stores-s.Evictions {
		t.Fatalf("entries (%d) != stores (%d) - evictions (%d)", s.Entries, s.Stores, s.Evictions)
	}
	// The most recently stored queries must still be resident (FIFO evicts
	// oldest first); with 1 slot per shard the latest store of each shard
	// wins, so at least one of the last cacheShardCount queries must hit.
	hit := false
	for i := n - capacity; i < n; i++ {
		q := stressQuery(i)
		if _, _, ok := c.Lookup(canonKey(q), q); ok {
			hit = true
			break
		}
	}
	if !hit {
		t.Fatal("none of the most recent queries survived eviction")
	}
}

// TestQueryCacheCollision pins the exact-confirmation path: two different
// queries forced under the same key must not be confused.
func TestQueryCacheCollision(t *testing.T) {
	c := NewQueryCache(0)
	q1 := stressQuery(1)
	q2 := stressQuery(2)
	const key = 42 // same (wrong) key for both: a forced collision
	c.Store(key, q1, Sat, stressModel(1))
	c.Store(key, q2, Unsat, nil)
	if r, _, ok := c.Lookup(key, q1); !ok || r != Sat {
		t.Fatalf("q1 under colliding key: ok=%v r=%v, want Sat hit", ok, r)
	}
	if r, _, ok := c.Lookup(key, q2); !ok || r != Unsat {
		t.Fatalf("q2 under colliding key: ok=%v r=%v, want Unsat hit", ok, r)
	}
	if _, _, ok := c.Lookup(key, stressQuery(3)); ok {
		t.Fatal("unrelated query hit under colliding key")
	}
}

// TestSolverCacheAccounting checks the solver-level invariant surfaced in
// Stats: every cacheable query is either a hit or a miss.
func TestSolverCacheAccounting(t *testing.T) {
	s := New(Options{})
	v := symexpr.NewVar(symexpr.Var{Buf: "x", W: symexpr.W32})
	for i := 0; i < 8; i++ {
		pc := []*symexpr.Expr{symexpr.Ult(v, symexpr.Const(uint64(10+i%2), symexpr.W32))}
		if res, _ := s.Check(pc, nil); res != Sat {
			t.Fatalf("query %d: %v, want Sat", i, res)
		}
	}
	st := s.Stats()
	if st.CacheHits+st.CacheMisses == 0 {
		t.Fatal("no cache traffic recorded")
	}
	if st.CacheHits+st.CacheMisses > st.Queries {
		t.Fatalf("hits (%d) + misses (%d) > queries (%d)", st.CacheHits, st.CacheMisses, st.Queries)
	}
	cs := s.Cache().Stats()
	if cs.Hits != st.CacheHits || cs.Misses != st.CacheMisses {
		t.Fatalf("solver stats (hits %d, misses %d) disagree with cache stats (%d, %d)",
			st.CacheHits, st.CacheMisses, cs.Hits, cs.Misses)
	}
	if cs.Hits == 0 {
		t.Fatal("repeated identical queries produced no hits")
	}
}
