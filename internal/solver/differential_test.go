package solver

import (
	"math/rand"
	"testing"

	sx "chef/internal/symexpr"
)

// randExpr builds a random expression over the given byte variables.
func randExpr(r *rand.Rand, depth int) *sx.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return sx.NewVar(sx.Var{Buf: "v", Idx: r.Intn(3), W: sx.W8})
		case 1:
			return sx.Const(uint64(r.Intn(256)), sx.W8)
		default:
			return sx.NewVar(sx.Var{Buf: "w", Idx: r.Intn(2), W: sx.W8})
		}
	}
	x := randExpr(r, depth-1)
	switch r.Intn(12) {
	case 0:
		return sx.Not(x)
	case 1:
		return sx.Neg(x)
	default:
		y := randExpr(r, depth-1)
		ops := []func(a, b *sx.Expr) *sx.Expr{
			sx.Add, sx.Sub, sx.Mul, sx.And, sx.Or, sx.Xor, sx.UDiv, sx.URem, sx.Shl, sx.LShr,
		}
		return ops[r.Intn(len(ops))](x, y)
	}
}

// TestBlastAgreesWithEval is the solver's strongest correctness property:
// for a random expression e and random environment env, the constraint
// e == Eval(e, env) must be satisfiable, and the returned model must itself
// satisfy it under the evaluator. This exercises every gate encoder (adder,
// multiplier, divider, shifter, comparators) against the interpreter-side
// semantics in symexpr.
func TestBlastAgreesWithEval(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	s := New(Options{DisableCache: true})
	for trial := 0; trial < 120; trial++ {
		e := randExpr(r, 4)
		env := sx.Assignment{}
		for _, v := range sx.Vars(e) {
			env[v] = uint64(r.Intn(256))
		}
		want := sx.Eval(e, env)
		// Constrain every variable to its env value, plus the derived value.
		var cs []*sx.Expr
		for v, val := range env {
			cs = append(cs, sx.Eq(sx.NewVar(v), sx.Const(val, v.W)))
		}
		cs = append(cs, sx.Eq(e, sx.Const(want, e.Width())))
		res, model := s.Check(cs, nil)
		if res != Sat {
			t.Fatalf("trial %d: e=%v env=%v want=%d: solver says %v (blast/eval disagreement)",
				trial, e, env, want, res)
		}
		for _, c := range cs {
			if !sx.EvalBool(c, model) {
				t.Fatalf("trial %d: model %v violates %v", trial, model, c)
			}
		}
		// And the contradiction must be unsat.
		cs[len(cs)-1] = sx.Ne(e, sx.Const(want, e.Width()))
		res, _ = s.Check(cs, nil)
		if res != Unsat {
			t.Fatalf("trial %d: e=%v env=%v: negated value says %v, want unsat", trial, e, env, res)
		}
	}
}

// TestBlastWiderWidths repeats the agreement check at widths 16/32/64 with
// conversions in the mix.
func TestBlastWiderWidths(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	s := New(Options{DisableCache: true})
	widths := []sx.Width{sx.W16, sx.W32, sx.W64}
	for trial := 0; trial < 40; trial++ {
		w := widths[r.Intn(len(widths))]
		a := sx.ZExt(sx.NewVar(sx.Var{Buf: "a", W: sx.W8}), w)
		bVar := sx.Var{Buf: "b", W: w}
		b := sx.NewVar(bVar)
		var e *sx.Expr
		switch r.Intn(5) {
		case 0:
			e = sx.Add(sx.Mul(a, sx.Const(31, w)), b)
		case 1:
			e = sx.Sub(sx.Xor(a, b), sx.Const(uint64(r.Intn(1000)), w))
		case 2:
			e = sx.LShr(b, sx.Const(uint64(r.Intn(int(w))), w))
		case 3:
			e = sx.Trunc(sx.Mul(sx.ZExt(a, sx.W64), sx.ZExt(b, sx.W64)), w)
		default:
			e = sx.URem(b, sx.Add(a, sx.Const(1, w)))
		}
		env := sx.Assignment{
			{Buf: "a", W: sx.W8}: uint64(r.Intn(256)),
			bVar:                 r.Uint64() & w.Mask(),
		}
		want := sx.Eval(e, env)
		cs := []*sx.Expr{
			sx.Eq(sx.NewVar(sx.Var{Buf: "a", W: sx.W8}), sx.Const(env[sx.Var{Buf: "a", W: sx.W8}], sx.W8)),
			sx.Eq(b, sx.Const(env[bVar], w)),
			sx.Eq(e, sx.Const(want, w)),
		}
		res, model := s.Check(cs, nil)
		if res != Sat {
			t.Fatalf("trial %d (w=%d): %v under %v should be sat (want %d)", trial, w, e, env, want)
		}
		for _, c := range cs {
			if !sx.EvalBool(c, model) {
				t.Fatalf("trial %d: model violates %v", trial, c)
			}
		}
	}
}

// TestMaximizeProperty: Maximize's result must be attainable and maximal.
func TestMaximizeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	s := New(Options{})
	for trial := 0; trial < 30; trial++ {
		x := sx.NewVar(sx.Var{Buf: "x", W: sx.W8})
		bound := uint64(1 + r.Intn(255))
		pc := []*sx.Expr{sx.Ult(x, sx.Const(bound, sx.W8))}
		got, ok := s.Maximize(x, Query{PC: pc, Base: sx.Assignment{}})
		if !ok {
			t.Fatalf("trial %d: maximize failed for bound %d", trial, bound)
		}
		if got != bound-1 {
			t.Fatalf("trial %d: max under x<%d = %d, want %d", trial, bound, got, bound-1)
		}
	}
}

// TestSlicingEquivalence: with and without slicing, satisfiability verdicts
// must agree (models may differ).
func TestSlicingEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	for trial := 0; trial < 30; trial++ {
		full := New(Options{DisableCache: true})
		noslice := New(Options{DisableCache: true, DisableSlicing: true})
		// Two independent groups, one satisfied by base, one random.
		base := sx.Assignment{
			{Buf: "p", W: sx.W8}: 5,
			{Buf: "q", W: sx.W8}: uint64(r.Intn(256)),
		}
		k := uint64(r.Intn(256))
		cs := []*sx.Expr{
			sx.Eq(sx.NewVar(sx.Var{Buf: "p", W: sx.W8}), sx.Const(5, sx.W8)),
			sx.Ult(sx.NewVar(sx.Var{Buf: "q", W: sx.W8}), sx.Const(k, sx.W8)),
		}
		r1, m1 := full.Check(cs, base)
		r2, m2 := noslice.Check(cs, base)
		if r1 != r2 {
			t.Fatalf("trial %d: slicing changes verdict: %v vs %v (k=%d)", trial, r1, r2, k)
		}
		if r1 == Sat {
			for _, c := range cs {
				if !sx.EvalBool(c, m1) || !sx.EvalBool(c, m2) {
					t.Fatalf("trial %d: some model invalid", trial)
				}
			}
		}
	}
}
