package solver

import (
	"chef/internal/symexpr"
)

// Context is an assumption-scoped incremental solving context: one live
// satSolver plus blaster that persists across the queries of an exploration
// cell. Every path-condition constraint is blasted once, gated behind a fresh
// assumption literal a through the permanent clause (¬a ∨ bit), and a query
// for a path condition asserts exactly its constraints' assumption literals
// (MiniSat-style solveUnderAssumptions). Because the engine's queries walk a
// prefix-shared pcNode tree, consecutive queries overlap on a long pointer
// prefix: the context keeps the trail of the shared prefix and pops only the
// diverging suffix instead of rebuilding CNF from scratch, and learned
// clauses — implied by the clause database alone, never by a popped
// assumption — stay valid forever.
//
// A Context inherits the Solver's single-goroutine discipline. Its verdicts
// match the oneshot backend's (both decide the same conjunction), but its
// models and propagation counts are a function of the whole query stream, not
// of the single query — per-stream deterministic, which is what the
// per-cell solver ownership of sessions and shard cells guarantees.
type Context struct {
	sat *satSolver
	bl  *blaster

	// assump maps a constraint (hash-consed, so pointer-stable) to its
	// assumption literal. Entries are permanent for the context's lifetime.
	assump map[*symexpr.Expr]Lit

	// stampSeq versions the cone stamps markActive writes into the solver
	// and into nodeStamp, so a new query invalidates old stamps in O(1).
	stampSeq  int64
	nodeStamp map[*symexpr.Expr]int64 // expr node -> stampSeq it was last walked in

	// order lists the constraints whose assumption levels are currently
	// established on the trail: constraint order[i] is decision level i+1.
	order []*symexpr.Expr

	// poisoned marks a context whose clause database reported hard
	// unsatisfiability (cannot happen for Tseitin-consistent input; kept as
	// a defensive rebuild trigger).
	poisoned bool

	// Growth caps, defaulted from the package constants; regression tests
	// shrink them to force mid-stream rebuilds on small workloads.
	maxLearned int
	maxVars    int32
}

// Context growth caps: past either, the backend discards the context and
// starts fresh (counted as solver.inc.rebuilds). They bound the learned
// clause database and the watch structures so propagation stays fast on
// long-running cells; a rebuild costs one full re-blast of the next query's
// path, exactly like that cell's first query. The variable cap matters most:
// a query that pops to a short shared prefix re-propagates the freed part of
// the accumulated clause database, so per-query cost grows with context size
// on streams with little prefix sharing — recycling at 64k variables keeps
// that bounded while comfortably fitting any single path's cone.
const (
	maxIncLearned = 50_000
	maxIncVars    = 1 << 16
)

func newContext() *Context {
	sat := newSatSolver()
	sat.coneRestrict = true
	c := &Context{
		sat:        sat,
		bl:         newBlaster(sat),
		assump:     map[*symexpr.Expr]Lit{},
		nodeStamp:  map[*symexpr.Expr]int64{},
		maxLearned: maxIncLearned,
		maxVars:    maxIncVars,
	}
	// Activation scoping lets the expression memo stay shared across
	// constraints while keeping dormant circuitry propagation-inert; see
	// blaster.owner.
	c.bl.owner = map[*symexpr.Expr]Lit{}
	c.bl.ranges = map[*symexpr.Expr][2]int32{}
	return c
}

// overLimit reports whether the context hit a growth cap.
func (c *Context) overLimit() bool {
	return len(c.sat.learned) > c.maxLearned || c.sat.numVars > c.maxVars
}

// lcp returns the length of the longest common prefix of the established
// constraint order and pc, by pointer identity.
func (c *Context) lcp(pc []*symexpr.Expr) int {
	n := 0
	for n < len(c.order) && n < len(pc) && c.order[n] == pc[n] {
		n++
	}
	return n
}

// push ensures every constraint of pc has an assumption literal, blasting
// constraints this context has not seen before. Blasting may retreat the
// trail to level 0 (see addClause); push reconciles c.order afterwards. It
// returns the assumption sequence, or false when the clause database became
// unsatisfiable (poisons the context).
func (c *Context) push(pc []*symexpr.Expr) ([]Lit, bool) {
	assumps := make([]Lit, len(pc))
	for i, e := range pc {
		a, ok := c.assump[e]
		if !ok {
			// Two fresh variables per constraint: the assumption literal a
			// the queries assert, and the activation literal g its circuit
			// clauses are gated with (they are distinct so a borrowing
			// constraint can activate this circuit via g without asserting
			// this constraint's truth via a). The blast runs under g's
			// scope: fresh subcircuits get clauses carrying ¬g, borrowed
			// ones a single (¬g ∨ g_owner) implication. Asserting a then
			// propagates (¬a ∨ g) and transitively activates exactly the
			// circuitry this constraint needs; everything else stays
			// satisfied-wholesale and propagation-inert.
			a = mkLit(c.sat.newVar(), false)
			g := mkLit(c.sat.newVar(), false)
			// Pin both branching phases to false: a popped assumption (and
			// the activation of a dormant circuit) must stay off in later
			// queries, not be re-asserted by a phase-saved decision (see
			// freezePhase).
			c.sat.freezePhase(a.varIdx())
			c.sat.freezePhase(g.varIdx())
			c.bl.gate = g.not()
			c.bl.depSeen = map[Lit]bool{}
			bits := c.bl.blast(e)
			c.bl.gate = 0
			ok := c.sat.addClause([]Lit{a.not(), g})
			if !c.sat.addClause([]Lit{a.not(), bits[0]}) || !ok {
				c.poisoned = true
				return nil, false
			}
			c.assump[e] = a
		}
		assumps[i] = a
	}
	if keep := int(c.sat.decisionLevel()); keep < len(c.order) {
		c.order = c.order[:keep]
	}
	return assumps, true
}

// markActive stamps the active search cone of the query pc: the SAT
// variables of every expression node reachable from pc's constraints (the
// blaster's per-node ranges cover activation variables and gate outputs;
// input-variable bits are stamped from the shared vars map). With the stamp
// in place the satSolver's pickBranchVar decides only cone variables, and
// "no decidable variable left" is a sound Sat verdict for the whole
// database: a conflict-free assignment that is total on the cone always
// extends over the dormant circuitry. Dormant activation variables extend to
// false, satisfying their scope's clauses wholesale; dormant Tseitin gates
// evaluate topologically from their (cone- or dormant-assigned) inputs,
// satisfying their defining clauses by construction; and learned clauses are
// implied by the problem clauses alone, so any extension that satisfies the
// problem clauses satisfies them too. Walking the expression DAG makes the
// cone transitive — every subcircuit an active constraint reuses, however
// old, is stamped — which is what the extension argument needs.
func (c *Context) markActive(pc []*symexpr.Expr) {
	c.stampSeq++
	c.sat.coneSeq = c.stampSeq
	for _, e := range pc {
		c.stampExpr(e)
	}
}

// stampExpr walks one expression DAG, stamping each node's variable range.
// nodeStamp dedups across the query's constraints (shared subterms are
// pointer-identical), so the walk is linear in the cone's DAG size.
func (c *Context) stampExpr(e *symexpr.Expr) {
	if c.nodeStamp[e] == c.stampSeq {
		return
	}
	c.nodeStamp[e] = c.stampSeq
	if e.IsConst() {
		return
	}
	if e.IsVar() {
		for _, l := range c.bl.vars[e.VarRef()] {
			c.sat.coneStamp[l.varIdx()] = c.stampSeq
		}
		return
	}
	if r, ok := c.bl.ranges[e]; ok {
		for v := r[0]; v < r[1]; v++ {
			c.sat.coneStamp[v] = c.stampSeq
		}
	}
	for i := 0; i < e.NumChildren(); i++ {
		c.stampExpr(e.Child(i))
	}
}

// Solve decides the conjunction of pc, given in path order (root first).
// On Sat the model covers every variable of pc.
func (c *Context) Solve(pc []*symexpr.Expr, budget int64) (Result, symexpr.Assignment) {
	c.sat.budget = budget
	// Pop the diverging suffix of the previous query, keeping the shared
	// prefix's assumption levels (and everything they implied) on the trail.
	n := c.lcp(pc)
	c.sat.cancelUntil(int32(n))
	c.order = c.order[:n]

	assumps, ok := c.push(pc)
	if !ok {
		return Unsat, nil
	}
	c.markActive(pc)
	res, estab := c.sat.solveUnderAssumptions(assumps)
	switch res {
	case resSat:
		model := c.extractModel(pc)
		// Drop the search levels, keep all assumption levels for the next
		// query's prefix reuse.
		c.sat.cancelUntil(int32(len(assumps)))
		c.order = append(c.order[:0], pc...)
		return Sat, model
	case resUnsat:
		if estab < 0 {
			// The clause database itself is unsatisfiable — defensively
			// poison; Tseitin-consistent input cannot reach this.
			c.poisoned = true
			c.order = c.order[:0]
			return Unsat, nil
		}
		c.order = append(c.order[:0], pc[:estab]...)
		return Unsat, nil
	default:
		// Budget exhausted mid-search: the trail is at an arbitrary depth,
		// reset the context's assumption bookkeeping entirely.
		c.sat.cancelUntil(0)
		c.order = c.order[:0]
		return Unknown, nil
	}
}

// extractModel reads the values of pc's variables off the current (total)
// assignment. It must run before the post-solve cancelUntil.
func (c *Context) extractModel(pc []*symexpr.Expr) symexpr.Assignment {
	out := symexpr.Assignment{}
	for _, e := range pc {
		for _, v := range symexpr.Vars(e) {
			if _, ok := out[v]; ok {
				continue
			}
			bits := c.bl.vars[v]
			var val uint64
			for i, l := range bits {
				if (c.sat.assign[l.varIdx()] == assignT) != l.negated() {
					val |= 1 << uint(i)
				}
			}
			out[v] = val
		}
	}
	return out
}

// incrementalBackend adapts a Context (rebuilding it at the growth caps) to
// the Backend interface.
type incrementalBackend struct {
	s   *Solver
	ctx *Context

	// Test hooks: when > 0, every context built by ensure gets these growth
	// caps instead of the package defaults, so regression tests can force a
	// mid-stream rebuild on a small workload.
	maxLearned int
	maxVars    int32
}

func (b *incrementalBackend) Mode() SolverMode { return ModeIncremental }

// ensure makes b.ctx live, rebuilding past the growth caps or after a
// poisoning. It reports whether the context was built by this call.
func (b *incrementalBackend) ensure() bool {
	if b.ctx != nil && !b.ctx.poisoned && !b.ctx.overLimit() {
		return false
	}
	if b.ctx != nil {
		b.s.stats.IncRebuilds++
		if b.s.mIncRebuilds != nil {
			b.s.mIncRebuilds.Inc()
		}
	}
	b.ctx = newContext()
	if b.maxLearned > 0 {
		b.ctx.maxLearned = b.maxLearned
	}
	if b.maxVars > 0 {
		b.ctx.maxVars = b.maxVars
	}
	b.s.stats.IncContexts++
	if b.s.mIncContexts != nil {
		b.s.mIncContexts.Inc()
	}
	return true
}

// solveOnce runs one Context.Solve, accumulating its cost deltas and
// bookkeeping counters into cost and the solver stats.
func (b *incrementalBackend) solveOnce(pc []*symexpr.Expr, budget int64, cost *Cost) (Result, symexpr.Assignment) {
	c := b.ctx
	kept := int64(len(c.sat.learned))
	cons0 := len(c.assump)
	props0, confl0, clauses0 := c.sat.propsN, c.sat.conflicts, int64(len(c.sat.clauses))
	res, model := c.Solve(pc, budget)
	cost.Propagations += c.sat.propsN - props0
	cost.Conflicts += c.sat.conflicts - confl0
	cost.ClausesAdded += int64(len(c.sat.clauses)) - clauses0
	fresh := int64(len(c.assump) - cons0)
	b.s.stats.IncAssumptions += fresh
	b.s.stats.IncLearnedKept += kept
	if b.s.mIncAssumptions != nil {
		b.s.mIncAssumptions.Add(fresh)
		b.s.mIncLearnedKept.Add(kept)
	}
	return res, model
}

func (b *incrementalBackend) Solve(pc []*symexpr.Expr, budget int64) (Result, symexpr.Assignment, Cost) {
	built := b.ensure()
	var cost Cost
	res, model := b.solveOnce(pc, budget, &cost)
	if res == Unknown && b.ctx.sat.overrun && !built {
		// The budget ran out on a context carrying state from earlier
		// queries: every conflict there re-propagates the whole accumulated
		// clause database, so a conflict-heavy query can exhaust on a
		// long-lived context a budget it would comfortably fit on a fresh
		// one. Re-price it once on a fresh context, where it costs exactly
		// what the cell's first-ever query would; the verdict set stays a
		// deterministic function of the query stream, and both attempts'
		// propagations are charged to the query.
		b.ctx.poisoned = true
		b.ensure()
		res, model = b.solveOnce(pc, budget, &cost)
	}
	return res, model, cost
}
