package solver

import (
	"math/rand"
	"testing"

	sx "chef/internal/symexpr"
)

func bddVarExpr(name string) *sx.Expr { return sx.NewVar(sx.Var{Buf: name, W: sx.W1}) }

func newBDDSolver(t *testing.T) (*Solver, *bddBackend) {
	t.Helper()
	s := New(Options{SolverMode: ModeBDD, DisableCache: true})
	b, ok := s.backend.(*bddBackend)
	if !ok {
		t.Fatalf("backend is %T, want *bddBackend", s.backend)
	}
	return s, b
}

// The manager's hash consing must make structurally equal functions
// reference-equal: that is what turns unsat detection into a pointer
// comparison with the False terminal.
func TestBDDManagerCanonicity(t *testing.T) {
	p, q := bddVarExpr("p"), bddVarExpr("q")
	m := newBDDManager()
	m.stepCap = 1 << 20
	m.level[p] = 0
	m.level[q] = 1
	m.vars = []*sx.Expr{p, q}

	bp := m.build(p)
	bq := m.build(q)
	if m.and(bp, m.not(bp)) != bddFalseRef {
		t.Fatal("p AND NOT p != False terminal")
	}
	if m.ite(bp, bddTrueRef, m.not(bp)) != bddTrueRef {
		t.Fatal("p OR NOT p != True terminal")
	}
	if m.and(bp, bq) != m.and(bq, bp) {
		t.Fatal("conjunction is not canonical across operand order")
	}
	if m.and(bp, bp) != bp {
		t.Fatal("conjunction is not idempotent")
	}
}

// Pure-boolean queries are decided entirely on the diagram: verdicts and
// models with no CDCL involvement (zero fallbacks), including the
// equality-with-constant lift.
func TestBDDDecidesPureBooleanQueries(t *testing.T) {
	p, q := bddVarExpr("p"), bddVarExpr("q")
	a := sx.NewVar(sx.Var{Buf: "a", W: sx.W8})
	eq5 := sx.Eq(a, sx.Const(5, sx.W8))

	cases := []struct {
		name string
		pc   []*sx.Expr
		want Result
	}{
		{"two-free-bools", []*sx.Expr{p, sx.Not(q)}, Sat},
		{"contradiction", []*sx.Expr{p, sx.Not(p)}, Unsat},
		{"eq-const", []*sx.Expr{eq5}, Sat},
		{"eq-const-negated", []*sx.Expr{eq5, sx.Not(eq5)}, Unsat},
		{"mixed-skeleton", []*sx.Expr{sx.BoolOr(p, eq5), sx.Not(p)}, Sat},
	}
	for _, tc := range cases {
		s, _ := newBDDSolver(t)
		res, model := s.Check(tc.pc, nil)
		if res != tc.want {
			t.Fatalf("%s: verdict %v, want %v", tc.name, res, tc.want)
		}
		if res == Sat {
			for _, c := range tc.pc {
				if !sx.EvalBool(c, model) {
					t.Fatalf("%s: model %v violates %v", tc.name, model, c)
				}
			}
		}
		if st := s.Stats(); st.BDDFallbacks != 0 {
			t.Fatalf("%s: pure-boolean query used %d CDCL fallbacks", tc.name, st.BDDFallbacks)
		}
	}
}

// Two distinct equality atoms on the same variable are propositionally
// independent but theory-entangled: the skeleton is satisfiable, the theory
// is not. The lift must refuse and hand the query to CDCL, which returns the
// sound Unsat.
func TestBDDEntangledAtomsFallBack(t *testing.T) {
	a := sx.NewVar(sx.Var{Buf: "a", W: sx.W8})
	s, _ := newBDDSolver(t)
	pc := []*sx.Expr{sx.Eq(a, sx.Const(5, sx.W8)), sx.Eq(a, sx.Const(7, sx.W8))}
	if res, _ := s.Check(pc, nil); res != Unsat {
		t.Fatalf("entangled eq-const pair: %v, want Unsat", res)
	}
	if st := s.Stats(); st.BDDFallbacks == 0 {
		t.Fatal("entangled query did not reach the CDCL fallback")
	}
	// The propositionally-false case must NOT fall back even with opaque
	// atoms: skeleton-unsat is sound regardless of atom theory.
	s2, _ := newBDDSolver(t)
	x := sx.NewVar(sx.Var{Buf: "x", W: sx.W8})
	opaque := sx.Ult(sx.Add(a, x), sx.Const(9, sx.W8)) // multi-var atom: opaque
	if res, _ := s2.Check([]*sx.Expr{opaque, sx.Not(opaque)}, nil); res != Unsat {
		t.Fatal("skeleton contradiction over opaque atom not Unsat")
	}
	if st := s2.Stats(); st.BDDFallbacks != 0 {
		t.Fatal("skeleton-unsat query fell back to CDCL")
	}
}

// A bdd model is a pure function of the query: two solvers that reach the
// same query through different streams (different diagrams, different
// variable orders seen en route) return the identical assignment.
func TestBDDModelPureFunctionOfQuery(t *testing.T) {
	p, q, r := bddVarExpr("p"), bddVarExpr("q"), bddVarExpr("r")
	target := []*sx.Expr{sx.BoolOr(p, q), sx.Not(r)}

	s1, _ := newBDDSolver(t)
	res1, m1 := s1.Check(target, nil)

	s2, _ := newBDDSolver(t)
	// Warm s2's diagram with unrelated traffic first.
	s2.Check([]*sx.Expr{r, q}, nil)
	s2.Check([]*sx.Expr{sx.BoolAnd(p, r)}, nil)
	res2, m2 := s2.Check(target, nil)

	if res1 != res2 || !sameModel(m1, m2) {
		t.Fatalf("model depends on stream: %v/%v vs %v/%v", res1, m1, res2, m2)
	}
}

// Atoms arriving in anti-Compare order force mid-order insertions; the
// diagram must rebuild (counted as reorders) and stay correct.
func TestBDDReorderRebuild(t *testing.T) {
	s, _ := newBDDSolver(t)
	vars := make([]*sx.Expr, 8)
	for i := range vars {
		vars[i] = bddVarExpr(string(rune('a' + i)))
	}
	var pc []*sx.Expr
	for i := range vars {
		pc = append(pc, vars[i])
		if res, model := s.Check(pc, nil); res != Sat {
			t.Fatalf("step %d: %v, want Sat", i, res)
		} else {
			for _, c := range pc {
				if !sx.EvalBool(c, model) {
					t.Fatalf("step %d: model violates %v", i, c)
				}
			}
		}
	}
	if st := s.Stats(); st.BDDReorders == 0 {
		t.Fatalf("8 atoms in arrival order produced no reorder rebuilds: %+v", st)
	}
}

// A tiny node cap forces diagram recycles mid-stream; a tiny step cap forces
// the overrun fallback. Verdicts must match an uncapped bdd solver and the
// oneshot control on the same stream, and the stream must stay
// deterministic: two identically-capped solvers agree on every verdict,
// model and cost.
func TestBDDGrowthCapsKeepVerdictsAndDeterminism(t *testing.T) {
	queries := genOracleQueries(t, 120, 777)

	type run struct {
		res   []Result
		model []sx.Assignment
		props int64
	}
	pass := func(maxNodes int, stepCap int64) run {
		s, b := newBDDSolver(t)
		b.maxNodes = maxNodes
		b.stepCap = stepCap
		var out run
		for i, q := range queries {
			res, model := checkAgainstOracle(t, "capped-bdd", i, q, s)
			out.res = append(out.res, res)
			out.model = append(out.model, model)
		}
		st := s.Stats()
		out.props = st.Propagations
		if maxNodes > 0 && maxNodes < 100 && st.BDDRebuilds == 0 {
			t.Fatalf("node cap %d forced no recycles: %+v", maxNodes, st)
		}
		if stepCap > 0 && stepCap < 10 && st.BDDFallbacks == 0 {
			t.Fatalf("step cap %d forced no overrun fallbacks: %+v", stepCap, st)
		}
		return out
	}

	tiny1 := pass(40, 0)
	tiny2 := pass(40, 0)
	if tiny1.props != tiny2.props {
		t.Fatalf("capped streams diverged in cost: %d vs %d", tiny1.props, tiny2.props)
	}
	for i := range tiny1.res {
		if tiny1.res[i] != tiny2.res[i] || !sameModel(tiny1.model[i], tiny2.model[i]) {
			t.Fatalf("capped streams diverged at query %d", i)
		}
	}
	pass(0, 5) // step-cap overrun path, verdicts still oracle-checked
}

// On a stream with no bdd-decidable query, the backend must be a transparent
// wrapper: every verdict and model identical to what the oneshot backend
// returns for the same (canonicalized) query. This is the fallback-
// transparency contract DESIGN.md documents.
func TestBDDFallbackMatchesOneshot(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	a := sx.NewVar(sx.Var{Buf: "a", W: sx.W8})
	x := sx.NewVar(sx.Var{Buf: "x", W: sx.W8})
	s, _ := newBDDSolver(t)
	for i := 0; i < 150; i++ {
		k := 1 + r.Intn(3)
		pc := make([]*sx.Expr, 0, k)
		for j := 0; j < k; j++ {
			// Every atom spans both variables, so nothing is liftable and
			// nothing is ever propositionally contradictory across distinct
			// atoms unless syntactically negated — skip those by
			// construction (no Not wrapper).
			pc = append(pc, sx.Ult(sx.Add(a, sx.Const(uint64(r.Intn(256)), sx.W8)), sx.Add(x, sx.Const(uint64(1+r.Intn(255)), sx.W8))))
		}
		gotRes, gotModel, _ := s.backend.Solve(pc, defaultPropBudget)
		canon := canonicalize(append([]*sx.Expr(nil), pc...))
		wantRes, wantModel, _ := oneshotBackend{}.Solve(canon, defaultPropBudget)
		if gotRes != wantRes {
			t.Fatalf("query %d: bdd fallback %v, oneshot %v", i, gotRes, wantRes)
		}
		if gotRes == Sat && !sameModel(gotModel, wantModel) {
			t.Fatalf("query %d: fallback model %v != oneshot model %v", i, gotModel, wantModel)
		}
	}
	if st := s.Stats(); st.BDDFallbacks == 0 {
		t.Fatal("arithmetic stream produced no fallbacks")
	}
}
