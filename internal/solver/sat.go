// Package solver decides satisfiability of path conditions over the
// bit-vector expressions of package symexpr. It plays STP's role from the
// paper: constraints are bit-blasted to CNF and decided by a CDCL SAT solver.
//
// The solver additionally implements the classic symbolic-execution
// optimizations the paper's platform relies on: independent-constraint
// slicing, a counterexample (model) cache, and a binary-search Maximize used
// to implement the upper_bound API call of Table 1.
package solver

// Lit is a CNF literal: variable index shifted left once, LSB = negated.
// Variable indices start at 1; literal 0 is invalid.
type Lit int32

func mkLit(v int32, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l Lit) varIdx() int32 { return int32(l >> 1) }
func (l Lit) negated() bool { return l&1 != 0 }
func (l Lit) not() Lit      { return l ^ 1 }

const (
	unassigned int8 = 0
	assignT    int8 = 1
	assignF    int8 = -1
)

type clause struct {
	lits    []Lit
	learned bool
}

// satSolver is a CDCL SAT solver with two-watched-literal propagation,
// first-UIP clause learning, activity-based branching and Luby restarts.
type satSolver struct {
	numVars  int32
	clauses  []*clause
	learned  []*clause
	watches  map[Lit][]*clause
	assign   []int8    // 1-indexed by variable
	level    []int32   // decision level per variable
	reason   []*clause // antecedent clause per variable
	trail    []Lit
	trailLim []int32 // trail index per decision level
	qhead    int
	activity []float64
	varInc   float64
	polarity []bool // phase saving
	phaseFix []bool // phase saving disabled: var always decides false
	// Cone-restricted search (incremental contexts): when coneRestrict is
	// set, pickBranchVar decides only variables whose coneStamp equals
	// coneSeq — the active query's transitive circuit cone, stamped by the
	// Context before each solve. Dormant circuitry (popped constraints'
	// gates and internals) is never decided, so the per-query search cost
	// tracks the active path's cone instead of the whole accumulated
	// context. Soundness: see Context.markActive.
	coneRestrict bool
	coneSeq      int64
	coneStamp    []int64
	conflicts    int64
	decisions    int64
	propsN       int64
	budget       int64 // max propagations; <=0 means unlimited
	overrun      bool
}

func newSatSolver() *satSolver {
	return &satSolver{watches: map[Lit][]*clause{}, varInc: 1}
}

// newVar allocates a fresh SAT variable and returns its index.
func (s *satSolver) newVar() int32 {
	s.numVars++
	s.assign = append(s.assign, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.phaseFix = append(s.phaseFix, false)
	s.coneStamp = append(s.coneStamp, 0)
	if s.numVars == 1 {
		// index 0 placeholder so variables can be 1-indexed
		s.assign = append(s.assign, unassigned)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.polarity = append(s.polarity, false)
		s.phaseFix = append(s.phaseFix, false)
		s.coneStamp = append(s.coneStamp, 0)
	}
	return s.numVars
}

// freezePhase pins v's branching phase to false, exempting it from phase
// saving. The incremental context applies it to assumption variables: a
// popped assumption must not be re-activated by a phase-saved decision in a
// later query, or every stale constraint gate in the context would be
// re-asserted speculatively and refuted by conflict, one by one — correct,
// but quadratically expensive across a long query stream. With the phase
// pinned false, a free assumption variable decides off and the gated
// constraint stays dormant.
func (s *satSolver) freezePhase(v int32) {
	s.phaseFix[v] = true
	s.polarity[v] = false
}

func (s *satSolver) value(l Lit) int8 {
	v := s.assign[l.varIdx()]
	if v == unassigned {
		return unassigned
	}
	if l.negated() {
		return -v
	}
	return v
}

// addClause installs a problem clause. It returns false when the formula is
// trivially unsatisfiable (empty clause or conflicting units).
//
// Literals already assigned at level 0 are simplified away: a true literal
// satisfies the clause permanently, a false literal can never help. Without
// this, the two-watched-literal scheme could watch a permanently false
// literal (e.g. the negation of the constant-true literal every constant bit
// encodes to), and the clause would silently never propagate — an
// under-constrained circuit.
//
// Above level 0 (incremental contexts blasting a fresh constraint while a
// prefix of assumption levels is still on the trail) only level-0 facts may
// be simplified away — anything assigned higher is removable and must stay in
// the clause. To keep the two-watched invariant honest the watched positions
// must hold non-false literals; when fewer than two exist under the current
// partial assignment (the clause is unit or conflicting right now), the trail
// is flushed to level 0 first, where every surviving literal is unassigned.
// The caller (the incremental context) detects the flush through the dropped
// decision level and re-establishes its assumptions.
func (s *satSolver) addClause(lits []Lit) bool {
	// Deduplicate, drop tautologies, and simplify against level-0 facts.
	seen := map[Lit]bool{}
	out := lits[:0]
	for _, l := range lits {
		if seen[l.not()] {
			return true // tautology: always satisfied
		}
		if s.level[l.varIdx()] == 0 {
			switch s.value(l) {
			case assignT:
				return true // already satisfied forever
			case assignF:
				continue // can never contribute
			}
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	lits = out
	switch len(lits) {
	case 0:
		return false
	case 1:
		// A unit is a permanent fact: it must sit below every removable
		// decision, so flush any assumption levels before asserting it.
		s.cancelUntil(0)
		if s.value(lits[0]) == assignT {
			return true
		}
		if s.value(lits[0]) == assignF {
			return false
		}
		s.enqueue(lits[0], nil)
		return s.propagate() == nil
	}
	for s.decisionLevel() > 0 && !s.reorderWatches(lits) {
		// Fewer than two non-false literals: currently unit or conflicting.
		// Retreat just past the deepest level that falsifies one of the
		// literals — its assignments unassign, making that literal watchable
		// again — and retry. Each round strictly lowers the decision level,
		// so the loop terminates (at level 0 every false literal has been
		// simplified away and reorderWatches must succeed). Retreating only
		// as far as needed is what keeps mid-trail blasting cheap for
		// incremental contexts: the shared prefix below the falsifying level
		// survives, where a flush to level 0 would forfeit all of it.
		deepest := int32(1)
		for _, l := range lits {
			if s.value(l) == assignF && s.level[l.varIdx()] > deepest {
				deepest = s.level[l.varIdx()]
			}
		}
		s.cancelUntil(deepest - 1)
	}
	c := &clause{lits: append([]Lit(nil), lits...)}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

// reorderWatches moves two literals that are not currently false into the
// watched positions lits[0] and lits[1], reporting whether it succeeded. A
// freshly inserted clause watching only non-false literals cannot be missing
// a propagation, so the two-watched invariant holds from insertion onward.
func (s *satSolver) reorderWatches(lits []Lit) bool {
	w := 0
	for i := 0; i < len(lits) && w < 2; i++ {
		if s.value(lits[i]) != assignF {
			lits[w], lits[i] = lits[i], lits[w]
			w++
		}
	}
	return w == 2
}

func (s *satSolver) watch(c *clause) {
	s.watches[c.lits[0].not()] = append(s.watches[c.lits[0].not()], c)
	s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
}

func (s *satSolver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *satSolver) enqueue(l Lit, from *clause) {
	v := l.varIdx()
	if l.negated() {
		s.assign[v] = assignF
	} else {
		s.assign[v] = assignT
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause or
// nil.
func (s *satSolver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.propsN++
		ws := s.watches[l]
		kept := ws[:0]
		var confl *clause
		for i, c := range ws {
			if confl != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			// Ensure the false literal is lits[1].
			if c.lits[0].not() == l {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == assignT {
				kept = append(kept, c)
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != assignF {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, c)
			if s.value(c.lits[0]) == assignF {
				confl = c
				continue
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[l] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *satSolver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learned clause
// (asserting literal first) and the backtrack level.
func (s *satSolver) analyze(confl *clause) ([]Lit, int32) {
	learnt := []Lit{0} // slot 0 for the asserting literal
	seen := make(map[int32]bool)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	reasonC := confl
	for {
		for i, q := range reasonC.lits {
			if reasonC == confl || i > 0 { // skip the asserting literal of reasons
				v := q.varIdx()
				if !seen[v] && s.level[v] > 0 {
					seen[v] = true
					s.bumpVar(v)
					if s.level[v] >= s.decisionLevel() {
						counter++
					} else {
						learnt = append(learnt, q)
					}
				}
			}
		}
		// Find the next literal to expand on the trail.
		for !seen[s.trail[idx].varIdx()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.varIdx()] = false
		counter--
		if counter == 0 {
			break
		}
		reasonC = s.reason[p.varIdx()]
	}
	learnt[0] = p.not()
	// Compute backtrack level: max level among tail literals.
	bt := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].varIdx()] > s.level[learnt[maxI].varIdx()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].varIdx()]
	}
	return learnt, bt
}

func (s *satSolver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= int(s.trailLim[lvl]); i-- {
		v := s.trail[i].varIdx()
		if !s.phaseFix[v] {
			s.polarity[v] = s.assign[v] == assignT
		}
		s.assign[v] = unassigned
		s.reason[v] = nil
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *satSolver) pickBranchVar() int32 {
	best := int32(0)
	bestAct := -1.0
	for v := int32(1); v <= s.numVars; v++ {
		if s.assign[v] != unassigned {
			continue
		}
		if s.coneRestrict && s.coneStamp[v] != s.coneSeq {
			continue
		}
		if s.activity[v] > bestAct {
			bestAct = s.activity[v]
			best = v
		}
	}
	return best
}

func luby(i int64) int64 {
	// Luby sequence: 1 1 2 1 1 2 4 ...
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i >= int64(1)<<(k-1) && i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

type satResult int8

const (
	resUnknown satResult = iota
	resSat
	resUnsat
)

// solve runs the CDCL loop. assumptions are asserted at level 0.
func (s *satSolver) solve() satResult {
	if s.propagate() != nil {
		return resUnsat
	}
	restart := int64(1)
	conflBudget := luby(restart) * 128
	conflCount := int64(0)
	for {
		if s.budget > 0 && s.propsN > s.budget {
			s.overrun = true
			return resUnknown
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflCount++
			if s.decisionLevel() == 0 {
				return resUnsat
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learned: true}
				s.learned = append(s.learned, c)
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.varInc *= 1.05
			continue
		}
		if conflCount >= conflBudget {
			// Restart.
			conflCount = 0
			restart++
			conflBudget = luby(restart) * 128
			s.cancelUntil(0)
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return resSat
		}
		s.decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(mkLit(v, !s.polarity[v]), nil)
	}
}

// solveUnderAssumptions runs the CDCL loop with assumps asserted as the
// first len(assumps) decision levels, MiniSat-style: assumption i is the
// decision of level i+1 (an empty level when it is already implied), so the
// trail below level k is exactly what the clause database plus assumptions
// 0..k-1 imply. Decision levels matching a prefix of assumps that are already
// on the trail from an earlier call are reused as-is — that is the
// incremental context's trail retention.
//
// Returns the verdict plus the number of assumption levels left established
// on the trail: len(assumps) on resSat (search levels are the caller's to
// pop), the index of the failed assumption on resUnsat (-1 when the clause
// database itself is unsatisfiable), and 0 on resUnknown (the caller resets).
//
// Unlike solve, the propagation budget is charged per call (the solver
// object persists across queries, so the absolute counter cannot be
// compared against a per-query cap).
func (s *satSolver) solveUnderAssumptions(assumps []Lit) (satResult, int) {
	s.overrun = false
	start := s.propsN
	restart := int64(1)
	conflBudget := luby(restart) * 128
	conflCount := int64(0)
	for {
		if s.budget > 0 && s.propsN-start > s.budget {
			s.overrun = true
			return resUnknown, 0
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflCount++
			if s.decisionLevel() == 0 {
				return resUnsat, -1
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learned: true}
				s.learned = append(s.learned, c)
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.varInc *= 1.05
			continue
		}
		dl := int(s.decisionLevel())
		if dl < len(assumps) {
			// Re-assert the next assumption as a decision.
			p := assumps[dl]
			switch s.value(p) {
			case assignT:
				// Already implied: push an empty level so level i+1 keeps
				// corresponding to assumption i.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case assignF:
				// Falsified by the database plus assumptions 0..dl-1: the
				// query is unsatisfiable under its assumptions, and the
				// first dl levels remain valid for the next query.
				return resUnsat, dl
			default:
				s.decisions++
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.enqueue(p, nil)
			}
			continue
		}
		if conflCount >= conflBudget {
			// Restart: drop search decisions, keep the assumption levels.
			conflCount = 0
			restart++
			conflBudget = luby(restart) * 128
			s.cancelUntil(int32(len(assumps)))
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			// No decidable variable left. Under cone restriction this means
			// the active cone is fully assigned without conflict, which
			// guarantees a model of the whole database exists (dormant
			// Tseitin circuitry always extends; see Context.markActive) —
			// exactly what resSat promises.
			return resSat, len(assumps)
		}
		s.decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(mkLit(v, !s.polarity[v]), nil)
	}
}

// model returns the satisfying assignment after a resSat solve.
func (s *satSolver) model() []bool {
	m := make([]bool, s.numVars+1)
	for v := int32(1); v <= s.numVars; v++ {
		m[v] = s.assign[v] == assignT
	}
	return m
}
