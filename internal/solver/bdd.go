package solver

import (
	"math"
	"sort"

	"chef/internal/symexpr"
)

// The BDD fast path (-solvermode=bdd): a reduced-ordered binary decision
// diagram over the *boolean skeleton* of the path condition, with the
// bit-blasting CDCL core as a transparent fallback for arithmetic-bearing
// queries.
//
// Each width-1 constraint decomposes into propositional connectives over
// atoms (see symexpr.IsBoolConnective): boolean input variables and opaque
// theory predicates like comparisons over wider bit-vectors. Every distinct
// atom becomes one diagram variable, so conjoining the skeletons of a path
// condition yields a canonical diagram of its propositional abstraction.
// That abstraction is sound in one direction — a skeleton that reduces to
// the False terminal is unsatisfiable under any interpretation of its atoms
// — which is exactly the fail-fast the branch-heavy, arithmetic-light
// constraint streams of MiniLua/MiniPy truthiness code want: most negated
// re-tests of an already-constrained flag die in a handful of memoized
// diagram steps instead of a fresh CNF blast.
//
// The Sat direction needs the atoms themselves to be invertible. A query is
// *liftable* when every atom is either a boolean input variable or an
// equality between one input variable and a constant, and no input variable
// is shared by two distinct atoms: then any propositional model of the
// skeleton lifts to a theory model by direct substitution (a variable not
// mentioned by an atom cannot contradict it). Everything else — a
// satisfiable skeleton over opaque or entangled atoms — falls back to the
// CDCL path, which blasts the query in canonical constraint order so the
// fallback's result and model are byte-for-byte what the oneshot backend
// would have produced for the same query.
//
// Determinism: the variable order is the interner's process-independent
// symexpr.Compare total order over atoms, and a reduced ordered BDD is
// canonical given that order, so verdicts and lifted models are a pure
// function of the query — stronger than the incremental backend, whose
// models depend on the whole stream. Costs (diagram steps) do depend on the
// stream through the memo tables and prefix reuse, so bdd cells form their
// own determinism groups exactly like incremental ones (see benchfmt).

// bddRef is an index into a bddManager's node table. The terminals are
// pinned at indices 0 (False) and 1 (True).
type bddRef int32

const (
	bddFalseRef bddRef = 0
	bddTrueRef  bddRef = 1
)

// bddNode is one decision node: if var(level) then hi else lo. Terminals
// carry level math.MaxInt32 so the top-variable computation in ite never
// picks them.
type bddNode struct {
	level  int32
	lo, hi bddRef
}

type bddIteKey struct{ f, g, h bddRef }

// Growth bounds. The node cap recycles the per-cell diagram between queries
// (mirroring the incremental backend's clause/variable caps); the step cap
// bounds a single query's diagram work — a blowup aborts the diagram and
// falls back to CDCL rather than hanging. Both are deterministic functions
// of the query stream.
const (
	maxBDDNodes    = 1 << 20
	bddStepCapPerQ = 1 << 21
)

// bddManager owns the hash-consed node table, the ite memo cache and the
// variable order of one diagram epoch. All bookkeeping counters accumulate
// across the manager's lifetime; callers read deltas.
type bddManager struct {
	nodes  []bddNode
	unique map[bddNode]bddRef
	memo   map[bddIteKey]bddRef
	// vars is the diagram's variable order: every atom ever conjoined, kept
	// sorted by symexpr.Compare; level[a] is a's index in vars.
	vars  []*symexpr.Expr
	level map[*symexpr.Expr]int32
	// fcache memoizes skeleton translation per diagram epoch (cleared on
	// reorder rebuilds, when old refs go stale).
	fcache map[*symexpr.Expr]bddRef

	steps   int64 // ite calls, the diagram's cost unit
	hits    int64 // ite memo-cache hits
	created int64 // unique decision nodes created
	stepCap int64 // abort threshold for steps (checked per query by caller)
	overrun bool  // steps crossed stepCap; results are junk until reset
}

func newBDDManager() *bddManager {
	m := &bddManager{
		unique: map[bddNode]bddRef{},
		memo:   map[bddIteKey]bddRef{},
		level:  map[*symexpr.Expr]int32{},
		fcache: map[*symexpr.Expr]bddRef{},
	}
	m.nodes = append(m.nodes,
		bddNode{level: math.MaxInt32}, // False
		bddNode{level: math.MaxInt32}, // True
	)
	return m
}

// mk returns the canonical node (level, lo, hi), reusing an existing one.
func (m *bddManager) mk(level int32, lo, hi bddRef) bddRef {
	if lo == hi {
		return lo
	}
	n := bddNode{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[n]; ok {
		return r
	}
	r := bddRef(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.unique[n] = r
	m.created++
	return r
}

// cofactor returns f's (lo, hi) cofactors with respect to the variable at
// top; f is unchanged if its own level is deeper.
func (m *bddManager) cofactor(f bddRef, top int32) (bddRef, bddRef) {
	n := m.nodes[f]
	if n.level != top {
		return f, f
	}
	return n.lo, n.hi
}

// ite computes if-then-else(f, g, h), the universal connective every boolean
// operation reduces to. Each call costs one step; crossing the step cap
// flips overrun, after which results are garbage and never memoized — the
// caller must discard the diagram.
func (m *bddManager) ite(f, g, h bddRef) bddRef {
	m.steps++
	if m.steps > m.stepCap {
		m.overrun = true
	}
	if m.overrun {
		return bddFalseRef
	}
	switch {
	case f == bddTrueRef:
		return g
	case f == bddFalseRef:
		return h
	case g == h:
		return g
	case g == bddTrueRef && h == bddFalseRef:
		return f
	}
	key := bddIteKey{f, g, h}
	if r, ok := m.memo[key]; ok {
		m.hits++
		return r
	}
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)
	lo := m.ite(f0, g0, h0)
	hi := m.ite(f1, g1, h1)
	if m.overrun {
		return bddFalseRef
	}
	r := m.mk(top, lo, hi)
	m.memo[key] = r
	return r
}

func (m *bddManager) and(f, g bddRef) bddRef { return m.ite(f, g, bddFalseRef) }
func (m *bddManager) not(f bddRef) bddRef    { return m.ite(f, bddFalseRef, bddTrueRef) }

// build translates the boolean skeleton of the width-1 expression e into a
// diagram, treating non-connective subexpressions as opaque variables. Every
// atom of e must already have a level (see bddContext.admit).
func (m *bddManager) build(e *symexpr.Expr) bddRef {
	if e.IsConst() {
		if e.ConstVal() == 0 {
			return bddFalseRef
		}
		return bddTrueRef
	}
	if r, ok := m.fcache[e]; ok {
		return r
	}
	var r bddRef
	if !symexpr.IsBoolConnective(e) {
		r = m.mk(m.level[e], bddFalseRef, bddTrueRef)
	} else {
		switch e.Op() {
		case symexpr.OpNot:
			r = m.not(m.build(e.Child(0)))
		case symexpr.OpAnd:
			r = m.ite(m.build(e.Child(0)), m.build(e.Child(1)), bddFalseRef)
		case symexpr.OpOr:
			r = m.ite(m.build(e.Child(0)), bddTrueRef, m.build(e.Child(1)))
		case symexpr.OpXor:
			g := m.build(e.Child(1))
			r = m.ite(m.build(e.Child(0)), m.not(g), g)
		case symexpr.OpEq: // width-1 iff
			g := m.build(e.Child(1))
			r = m.ite(m.build(e.Child(0)), g, m.not(g))
		case symexpr.OpIte:
			r = m.ite(m.build(e.Child(0)), m.build(e.Child(1)), m.build(e.Child(2)))
		}
	}
	if m.overrun {
		return bddFalseRef
	}
	m.fcache[e] = r
	return r
}

// Atom classification for the Sat lift.
const (
	bddAtomOpaque uint8 = iota
	bddAtomBoolVar
	bddAtomEqConst
)

type bddAtomClass struct {
	kind uint8
	v    symexpr.Var // for bddAtomBoolVar / bddAtomEqConst
	k    uint64      // for bddAtomEqConst: the compared constant
}

func classifyBDDAtom(e *symexpr.Expr) bddAtomClass {
	if e.IsVar() {
		return bddAtomClass{kind: bddAtomBoolVar, v: e.VarRef()}
	}
	if e.Op() == symexpr.OpEq {
		a, b := e.Child(0), e.Child(1)
		if a.IsVar() && b.IsConst() {
			return bddAtomClass{kind: bddAtomEqConst, v: a.VarRef(), k: b.ConstVal()}
		}
		if b.IsVar() && a.IsConst() {
			return bddAtomClass{kind: bddAtomEqConst, v: b.VarRef(), k: a.ConstVal()}
		}
	}
	return bddAtomClass{kind: bddAtomOpaque}
}

// lift turns a truth assignment of this atom into values for its variable.
// Only meaningful for non-opaque atoms.
func (a bddAtomClass) lift(truth bool, into symexpr.Assignment) {
	switch a.kind {
	case bddAtomBoolVar:
		if truth {
			into[a.v] = 1
		} else {
			into[a.v] = 0
		}
	case bddAtomEqConst:
		if truth {
			into[a.v] = a.k & a.v.W.Mask()
		} else {
			into[a.v] = (a.k + 1) & a.v.W.Mask()
		}
	}
}

// bddContext is the per-solver diagram state, the analogue of the
// incremental backend's Context: the established constraint order (path
// order, root first) and the running conjunction root after each prefix.
type bddContext struct {
	m     *bddManager
	order []*symexpr.Expr
	roots []bddRef
}

func newBDDContext() *bddContext {
	return &bddContext{m: newBDDManager()}
}

// lcp returns the longest common prefix of the established order and pc, by
// pointer identity.
func (c *bddContext) lcp(pc []*symexpr.Expr) int {
	n := 0
	for n < len(c.order) && n < len(pc) && c.order[n] == pc[n] {
		n++
	}
	return n
}

// admit merges the atoms of the given constraints into the variable order.
// Atoms that sort after every existing variable extend the order in place;
// an insertion anywhere else invalidates every node's level, so the whole
// diagram is rebuilt under the new order (reported so the backend can count
// it). The order itself — sorted by symexpr.Compare — never depends on
// arrival order, which is what keeps diagrams (and therefore models)
// canonical per query.
func (c *bddContext) admit(atoms []*symexpr.Expr) (rebuilt bool) {
	m := c.m
	var fresh []*symexpr.Expr
	for _, a := range atoms {
		if _, ok := m.level[a]; !ok {
			fresh = append(fresh, a)
			m.level[a] = -1 // reserve; fixed below
		}
	}
	if len(fresh) == 0 {
		return false
	}
	sort.Slice(fresh, func(i, j int) bool { return symexpr.Compare(fresh[i], fresh[j]) < 0 })
	appendOnly := len(m.vars) == 0 ||
		symexpr.Compare(fresh[0], m.vars[len(m.vars)-1]) > 0
	m.vars = append(m.vars, fresh...)
	if !appendOnly {
		sort.Slice(m.vars, func(i, j int) bool { return symexpr.Compare(m.vars[i], m.vars[j]) < 0 })
	}
	for i, a := range m.vars {
		m.level[a] = int32(i)
	}
	if appendOnly {
		return false
	}
	// Reorder: existing nodes carry stale levels. Reset the tables and
	// re-conjoin the established order under the new level map.
	m.nodes = m.nodes[:2]
	m.unique = map[bddNode]bddRef{}
	m.memo = map[bddIteKey]bddRef{}
	m.fcache = map[*symexpr.Expr]bddRef{}
	c.roots = c.roots[:0]
	root := bddTrueRef
	for _, e := range c.order {
		root = m.and(root, m.build(e))
		c.roots = append(c.roots, root)
	}
	return true
}

// extend conjoins pc's suffix past the longest established prefix, reusing
// the prefix roots, and returns the conjunction root for the whole query.
func (c *bddContext) extend(pc []*symexpr.Expr) bddRef {
	n := c.lcp(pc)
	c.order = append(c.order[:n], pc[n:]...)
	c.roots = c.roots[:n]
	root := bddTrueRef
	if n > 0 {
		root = c.roots[n-1]
	}
	for _, e := range pc[n:] {
		root = c.m.and(root, c.m.build(e))
		c.roots = append(c.roots, root)
	}
	return root
}

// model extracts one satisfying assignment from a non-False root: walk to
// the True terminal preferring the low branch, recording each decision
// variable's truth, then default every unvisited atom of the query to false.
// The walk is canonical (a pure function of the diagram, which is canonical
// per query), so models never depend on the stream.
func (c *bddContext) model(root bddRef, atoms []*symexpr.Expr,
	class map[*symexpr.Expr]bddAtomClass) symexpr.Assignment {
	truth := map[int32]bool{}
	for r := root; r != bddTrueRef; {
		n := c.m.nodes[r]
		if n.lo != bddFalseRef {
			truth[n.level] = false
			r = n.lo
		} else {
			truth[n.level] = true
			r = n.hi
		}
	}
	out := symexpr.Assignment{}
	for _, a := range atoms {
		t := truth[c.m.level[a]] // default false when not on the walk
		class[a].lift(t, out)
	}
	return out
}

// bddBackend implements Backend. It owns one live bddContext (recycled at
// the node cap) plus stream-independent classification caches keyed by
// hash-consed constraint pointers.
type bddBackend struct {
	s   *Solver
	ctx *bddContext

	// conAtoms caches each constraint's deduplicated atom list (first-seen
	// syntactic order); conLift caches whether all its atoms are liftable.
	conAtoms map[*symexpr.Expr][]*symexpr.Expr
	conLift  map[*symexpr.Expr]bool
	class    map[*symexpr.Expr]bddAtomClass

	// Test hooks; zero means the package defaults.
	maxNodes int
	stepCap  int64
}

func newBDDBackend(s *Solver) *bddBackend {
	return &bddBackend{
		s:        s,
		conAtoms: map[*symexpr.Expr][]*symexpr.Expr{},
		conLift:  map[*symexpr.Expr]bool{},
		class:    map[*symexpr.Expr]bddAtomClass{},
	}
}

func (b *bddBackend) Mode() SolverMode { return ModeBDD }

func (b *bddBackend) nodeCap() int {
	if b.maxNodes > 0 {
		return b.maxNodes
	}
	return maxBDDNodes
}

func (b *bddBackend) queryStepCap() int64 {
	if b.stepCap > 0 {
		return b.stepCap
	}
	return bddStepCapPerQ
}

// atomsOf returns the constraint's deduplicated atoms, classifying new ones.
func (b *bddBackend) atomsOf(e *symexpr.Expr) ([]*symexpr.Expr, bool) {
	if atoms, ok := b.conAtoms[e]; ok {
		return atoms, b.conLift[e]
	}
	seen := map[*symexpr.Expr]bool{}
	var atoms []*symexpr.Expr
	lift := true
	symexpr.WalkBoolAtoms(e, func(a *symexpr.Expr) {
		if seen[a] {
			return
		}
		seen[a] = true
		atoms = append(atoms, a)
		cl, ok := b.class[a]
		if !ok {
			cl = classifyBDDAtom(a)
			b.class[a] = cl
		}
		if cl.kind == bddAtomOpaque {
			lift = false
		}
	})
	b.conAtoms[e] = atoms
	b.conLift[e] = lift
	return atoms, lift
}

// ensure makes b.ctx live, recycling it past the node cap. It mirrors the
// incremental backend's ensure; recycles count as rebuilds.
func (b *bddBackend) ensure() {
	if b.ctx != nil && len(b.ctx.m.nodes) <= b.nodeCap() {
		return
	}
	if b.ctx != nil {
		b.s.stats.BDDRebuilds++
		if b.s.mBDDRebuilds != nil {
			b.s.mBDDRebuilds.Inc()
		}
	}
	b.ctx = newBDDContext()
}

// discard drops the live diagram (after a step-cap overrun, whose node table
// may hold junk) so the next query starts fresh.
func (b *bddBackend) discard() {
	b.s.stats.BDDRebuilds++
	if b.s.mBDDRebuilds != nil {
		b.s.mBDDRebuilds.Inc()
	}
	b.ctx = nil
}

// fallback blasts the query on the CDCL path. The constraints are sorted
// into canonical order first, so the fallback's verdict, model and CDCL cost
// are exactly the oneshot backend's for the same query — bdd mode degrades
// to byte-equivalent oneshot behavior on streams its diagram cannot decide.
func (b *bddBackend) fallback(pc []*symexpr.Expr, budget int64) (Result, symexpr.Assignment, Cost) {
	b.s.stats.BDDFallbacks++
	if b.s.mBDDFallbacks != nil {
		b.s.mBDDFallbacks.Inc()
	}
	canon := canonicalize(append([]*symexpr.Expr(nil), pc...))
	return oneshotBackend{}.Solve(canon, budget)
}

// Solve decides pc (path order, root first — the prefix reuse keys off it).
func (b *bddBackend) Solve(pc []*symexpr.Expr, budget int64) (Result, symexpr.Assignment, Cost) {
	b.ensure()
	m := b.ctx.m
	steps0, hits0, created0 := m.steps, m.hits, m.created
	// A query's diagram work is bounded by the step cap and by the caller's
	// propagation budget: bdd mode must exhaust a starved budget with an
	// Unknown exactly like the CDCL backends do (the overrun path below
	// falls back to CDCL, which then overruns too).
	qcap := b.queryStepCap()
	if budget < qcap {
		qcap = budget
	}
	m.stepCap = m.steps + qcap

	// Classify the query: collect every constraint's atoms (admitting them
	// to the variable order) and whether the whole query lifts.
	liftable := true
	varOwner := map[symexpr.Var]*symexpr.Expr{}
	var atoms []*symexpr.Expr
	seen := map[*symexpr.Expr]bool{}
	for _, e := range pc {
		ca, lift := b.atomsOf(e)
		if !lift {
			liftable = false
		}
		for _, a := range ca {
			if seen[a] {
				continue
			}
			seen[a] = true
			atoms = append(atoms, a)
		}
	}
	if liftable {
		// Distinct atoms sharing a variable (x==1 vs x==2) can be
		// propositionally independent but theory-entangled; the lift is
		// only sound when every variable belongs to exactly one atom.
		for _, a := range atoms {
			cl := b.class[a]
			if owner, ok := varOwner[cl.v]; ok && owner != a {
				liftable = false
				break
			}
			varOwner[cl.v] = a
		}
	}

	if rebuilt := b.ctx.admit(atoms); rebuilt {
		b.s.stats.BDDReorders++
		if b.s.mBDDReorders != nil {
			b.s.mBDDReorders.Inc()
		}
	}
	root := b.ctx.extend(pc)

	cost := Cost{Propagations: m.steps - steps0}
	b.s.stats.BDDApplyHits += m.hits - hits0
	b.s.stats.BDDNodes += m.created - created0
	if b.s.mBDDApplyHits != nil {
		b.s.mBDDApplyHits.Add(m.hits - hits0)
		b.s.mBDDNodes.Add(m.created - created0)
	}
	if m.overrun {
		// Diagram blowup: drop it and let CDCL decide this query. The
		// steps spent are part of the query's deterministic cost.
		b.discard()
		r, model, fcost := b.fallback(pc, budget)
		fcost.Propagations += cost.Propagations
		return r, model, fcost
	}
	if root == bddFalseRef {
		// Propositionally unsatisfiable, hence unsatisfiable: the fail-fast
		// that pays for the diagram. Sound for opaque atoms too.
		return Unsat, nil, cost
	}
	if liftable {
		model := b.ctx.model(root, atoms, b.class)
		return Sat, model, cost
	}
	// Satisfiable skeleton but atoms the lift cannot invert: the diagram
	// stays (its prefix keeps serving later queries) and CDCL decides.
	r, model, fcost := b.fallback(pc, budget)
	fcost.Propagations += cost.Propagations
	return r, model, fcost
}
