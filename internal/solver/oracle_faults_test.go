package solver

import (
	"path/filepath"
	"testing"

	"chef/internal/faults"
	sx "chef/internal/symexpr"
)

func mustFaultPlan(t testing.TB, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Differential oracle under injected Unknowns: with solver.unknown:p=0.3
// active, a verdict may weaken to Unknown but must never flip between Sat
// and Unsat, and every Sat model must still satisfy the query. Because
// forced Unknowns are never cached, retrying resolves each query to the
// exact oracle verdict eventually.
func TestSolverMatchesOracleUnderInjectedUnknowns(t *testing.T) {
	n := 250
	if !testing.Short() {
		n = 800
	}
	queries := genOracleQueries(t, n, 31337)

	for _, mode := range []CacheMode{CacheExact, CacheSubsume} {
		plan := mustFaultPlan(t, "seed=11;solver.unknown:p=0.3")
		s := New(Options{Mode: mode, Faults: plan.Injector("oracle/" + mode.String())})
		unknowns := 0
		for i, q := range queries {
			res, model := s.Check(q.pc, q.base)
			if res == Unknown {
				unknowns++
				continue
			}
			if res != q.want {
				t.Fatalf("[%s] query %d: verdict flipped under injection: solver=%v oracle=%v pc=%v",
					mode, i, res, q.want, q.pc)
			}
			if res == Sat {
				for _, c := range q.pc {
					if !sx.EvalBool(c, model) {
						t.Fatalf("[%s] query %d: model %v violates %v under injection", mode, i, model, c)
					}
				}
			}
		}
		if unknowns == 0 {
			t.Fatalf("mode=%s: p=0.3 injected no Unknowns over %d queries", mode, n)
		}
		t.Logf("mode=%s: %d/%d verdicts weakened to Unknown", mode, unknowns, len(queries))

		// Retry loop: queries solved above hit the cache (injection only
		// intercepts real solves), and forced Unknowns re-solve because they
		// were never cached, so every query converges to the oracle verdict.
		for i, q := range queries {
			res, model := s.Check(q.pc, q.base)
			for try := 0; res == Unknown && try < 200; try++ {
				res, model = s.Check(q.pc, q.base)
			}
			if res != q.want {
				t.Fatalf("[%s] query %d: did not converge to oracle verdict: got %v, want %v",
					mode, i, res, q.want)
			}
			if res == Sat {
				for _, c := range q.pc {
					if !sx.EvalBool(c, model) {
						t.Fatalf("[%s] query %d: converged model %v violates %v", mode, i, model, c)
					}
				}
			}
		}
	}
}

// Forced Unknowns must never reach the persistent store: a cold faulted pass
// persists only genuinely solved queries, and a warm pass under the same
// fault plan answers those from disk (persistent hits bypass the injector
// entirely — a budget miss can only happen on a real solve).
func TestSolverOraclePersistentUnderInjectedUnknowns(t *testing.T) {
	queries := genOracleQueries(t, 300, 7771)
	path := filepath.Join(t.TempDir(), "cxc.bin")
	plan := mustFaultPlan(t, "seed=13;solver.unknown:p=0.4")

	cold := mustOpen(t, path)
	s := New(Options{Mode: CacheExact, Persist: cold, Faults: plan.Injector("cold")})
	solved := 0
	for i, q := range queries {
		res, model := s.Check(q.pc, q.base)
		if res == Unknown {
			continue
		}
		solved++
		if res != q.want {
			t.Fatalf("cold query %d: verdict flipped: solver=%v oracle=%v", i, res, q.want)
		}
		if res == Sat {
			for _, c := range q.pc {
				if !sx.EvalBool(c, model) {
					t.Fatalf("cold query %d: model %v violates %v", i, model, c)
				}
			}
		}
	}
	if solved == 0 {
		t.Fatal("cold faulted pass solved nothing")
	}
	if err := cold.Close(); err != nil {
		t.Fatalf("cold close: %v", err)
	}

	warm := mustOpen(t, path)
	defer warm.Close()
	if warm.Corruption() != nil {
		t.Fatalf("faulted pass corrupted the cache file: %v", warm.Corruption())
	}
	s2 := New(Options{Mode: CacheExact, Persist: warm, Faults: plan.Injector("warm")})
	for i, q := range queries {
		res, model := s2.Check(q.pc, q.base)
		if res != Unknown && res != q.want {
			t.Fatalf("warm query %d: verdict flipped: solver=%v oracle=%v", i, res, q.want)
		}
		if res == Sat {
			for _, c := range q.pc {
				if !sx.EvalBool(c, model) {
					t.Fatalf("warm query %d: model %v violates %v", i, model, c)
				}
			}
		}
	}
	if s2.Stats().CacheHitsPersist == 0 {
		t.Fatal("warm faulted pass recorded no persistent hits")
	}
}
