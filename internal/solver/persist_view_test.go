package solver

import (
	"path/filepath"
	"sync"
	"testing"

	sx "chef/internal/symexpr"
)

// A view snapshots the answerable set at creation: entries appended after
// View() are invisible to it, while a later view sees them. Direct store
// lookups keep the old contract (appends never visible in-process).
func TestPersistViewSnapshotSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	p := mustOpen(t, path)
	defer p.Close()

	v1 := p.View()
	canon, key := persistQuery(5)
	model := sx.Assignment{{Buf: "a", W: sx.W8}: 6}
	p.Append(key, canon, Sat, model, 123)

	if _, _, _, ok := v1.Lookup(key, canon); ok {
		t.Fatal("append after View() visible to the earlier view")
	}
	if _, _, _, ok := p.Lookup(key, canon); ok {
		t.Fatal("in-process append visible to direct store lookup")
	}
	v2 := p.View()
	r, m, cost, ok := v2.Lookup(key, canon)
	if !ok || r != Sat || cost != 123 {
		t.Fatalf("later view lookup = (%v, cost %d, ok %v), want (Sat, 123, true)", r, cost, ok)
	}
	if m[sx.Var{Buf: "a", W: sx.W8}] != 6 {
		t.Fatalf("model = %v, want a=6", m)
	}
}

// Appending through a view publishes for later views, exactly like
// appending through the store.
func TestPersistViewAppendPublishes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	p := mustOpen(t, path)
	defer p.Close()

	v1 := p.View()
	canon, key := persistQuery(9)
	v1.Append(key, canon, Unsat, nil, 55)
	if _, _, _, ok := v1.Lookup(key, canon); ok {
		t.Fatal("view sees its own append (snapshot should be fixed)")
	}
	v2 := p.View()
	if r, _, cost, ok := v2.Lookup(key, canon); !ok || r != Unsat || cost != 55 {
		t.Fatalf("later view lookup = (%v, cost %d, ok %v), want (Unsat, 55, true)", r, cost, ok)
	}
}

// A published model must be insulated from later caller mutation: the solver
// merges extra bindings into the model it just appended.
func TestPersistViewModelInsulatedFromCallerMutation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	p := mustOpen(t, path)
	defer p.Close()

	canon, key := persistQuery(2)
	model := sx.Assignment{{Buf: "a", W: sx.W8}: 3}
	p.Append(key, canon, Sat, model, 10)
	model[sx.Var{Buf: "a", W: sx.W8}] = 99 // what solver.merge does post-append
	_, m, _, ok := p.View().Lookup(key, canon)
	if !ok {
		t.Fatal("published entry not found")
	}
	if got := m[sx.Var{Buf: "a", W: sx.W8}]; got != 3 {
		t.Fatalf("published model mutated through caller alias: a=%d, want 3", got)
	}
}

// Nil stores and views are inert (the server passes them through options
// unconditionally).
func TestPersistViewNilSafety(t *testing.T) {
	var p *PersistentStore
	if v := p.View(); v != nil {
		t.Fatal("nil store View() != nil")
	}
	var v *PersistView
	canon, key := persistQuery(1)
	if _, _, _, ok := v.Lookup(key, canon); ok {
		t.Fatal("nil view lookup reported a hit")
	}
	v.Append(key, canon, Sat, nil, 1) // must not panic
	if _, _, _, ok := p.Lookup(key, canon); ok {
		t.Fatal("nil store lookup reported a hit")
	}
	p.Append(key, canon, Sat, nil, 1) // must not panic
}

// Concurrent appends and view creations race-cleanly (run under -race), and
// the store file stays loadable with every entry afterwards.
func TestPersistViewConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	p := mustOpen(t, path)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := uint64(w*perWorker + i)
				canon, key := persistQuery(k)
				v := p.View()
				v.Append(key, canon, Sat, sx.Assignment{{Buf: "a", W: sx.W8}: (k + 1) & 0xff}, int64(k))
				p.View().Lookup(key, canon)
			}
		}(w)
	}
	wg.Wait()
	// Every published entry is visible to a fresh view.
	v := p.View()
	for k := uint64(0); k < workers*perWorker; k++ {
		canon, key := persistQuery(k)
		if _, _, _, ok := v.Lookup(key, canon); !ok {
			t.Fatalf("entry %d missing from post-quiesce view", k)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r := mustOpen(t, path)
	defer r.Close()
	if r.Corruption() != nil {
		t.Fatalf("store corrupt after concurrent appends: %v", r.Corruption())
	}
	if got := r.Loaded(); got != workers*perWorker {
		t.Fatalf("reloaded %d entries, want %d", got, workers*perWorker)
	}
}
