package solver

import (
	"chef/internal/symexpr"
)

// blaster translates bit-vector expressions into CNF over a satSolver using
// Tseitin encoding. Expression nodes are cached by identity — hash-consing
// makes structurally equal nodes pointer-identical — so shared subterms are
// encoded once with a single map probe, no bucket scans or equality walks.
type blaster struct {
	sat   *satSolver
	cache map[*symexpr.Expr][]Lit
	vars  map[symexpr.Var][]Lit // SAT literals per input-variable bit
	// litTrue is a literal constrained to be true, used to encode constants.
	litTrue Lit
	// gate, when non-zero, is appended to every circuit clause emitted by the
	// gate encoders. The incremental context arms it (see act): every clause
	// belongs to the activation scope that was current when it was emitted,
	// so a scope whose activation literal is off is satisfied wholesale and
	// can never propagate — dormant circuitry costs nothing in later queries.
	gate Lit
	// owner, when non-nil, turns on activation scoping: every clause a
	// constraint's blast emits is gated with the negation of that
	// constraint's activation literal (carried in gate), each operator node
	// records the activation literal of the scope that encoded it, and a
	// memo hit from a different scope emits one (¬g_current ∨ g_owner)
	// implication instead of re-encoding. This is what lets the expression
	// memo stay shared across constraints in an incremental context:
	// asserting a constraint's assumption propagates its activation literal
	// and, transitively, the activation of every scope it borrows circuitry
	// from, while scopes no active constraint needs are satisfied wholesale
	// by their activation staying off and can never propagate.
	owner map[*symexpr.Expr]Lit
	// depSeen dedups the cross-scope implications of the constraint
	// currently being blasted (one per borrowed scope suffices, however many
	// nodes are borrowed). The incremental context resets it per constraint.
	depSeen map[Lit]bool
	// ranges records, per operator node blasted under activation scoping,
	// the SAT-variable range [v0, v1) its blast allocated (gate outputs and
	// non-shared descendants). The incremental context stamps these ranges
	// to restrict search decisions to the query's cone; see
	// Context.markActive.
	ranges map[*symexpr.Expr][2]int32
}

// add installs one circuit clause, gated when a gating literal is set.
func (b *blaster) add(lits []Lit) bool {
	if b.gate != 0 {
		lits = append(lits, b.gate)
	}
	return b.sat.addClause(lits)
}

func newBlaster(sat *satSolver) *blaster {
	b := &blaster{sat: sat, cache: map[*symexpr.Expr][]Lit{}, vars: map[symexpr.Var][]Lit{}}
	v := sat.newVar()
	b.litTrue = mkLit(v, false)
	sat.addClause([]Lit{b.litTrue})
	return b
}

func (b *blaster) constLit(v bool) Lit {
	if v {
		return b.litTrue
	}
	return b.litTrue.not()
}

func (b *blaster) fresh() Lit { return mkLit(b.sat.newVar(), false) }

// varBits returns (allocating on demand) the SAT literals of an input
// variable's bits, LSB first.
func (b *blaster) varBits(v symexpr.Var) []Lit {
	if bits, ok := b.vars[v]; ok {
		return bits
	}
	bits := make([]Lit, v.W)
	for i := range bits {
		bits[i] = b.fresh()
	}
	b.vars[v] = bits
	return bits
}

// gate encodings -------------------------------------------------------

// andGate returns o <-> x & y.
func (b *blaster) andGate(x, y Lit) Lit {
	if x == b.litTrue {
		return y
	}
	if y == b.litTrue {
		return x
	}
	if x == b.litTrue.not() || y == b.litTrue.not() {
		return b.litTrue.not()
	}
	if x == y {
		return x
	}
	if x == y.not() {
		return b.litTrue.not()
	}
	o := b.fresh()
	b.add([]Lit{o.not(), x})
	b.add([]Lit{o.not(), y})
	b.add([]Lit{o, x.not(), y.not()})
	return o
}

func (b *blaster) orGate(x, y Lit) Lit {
	return b.andGate(x.not(), y.not()).not()
}

// xorGate returns o <-> x ^ y.
func (b *blaster) xorGate(x, y Lit) Lit {
	if x == b.litTrue {
		return y.not()
	}
	if y == b.litTrue {
		return x.not()
	}
	if x == b.litTrue.not() {
		return y
	}
	if y == b.litTrue.not() {
		return x
	}
	if x == y {
		return b.litTrue.not()
	}
	if x == y.not() {
		return b.litTrue
	}
	o := b.fresh()
	b.add([]Lit{o.not(), x, y})
	b.add([]Lit{o.not(), x.not(), y.not()})
	b.add([]Lit{o, x.not(), y})
	b.add([]Lit{o, x, y.not()})
	return o
}

// iteGate returns o <-> (c ? t : f).
func (b *blaster) iteGate(c, t, f Lit) Lit {
	if c == b.litTrue {
		return t
	}
	if c == b.litTrue.not() {
		return f
	}
	if t == f {
		return t
	}
	o := b.fresh()
	b.add([]Lit{c.not(), t.not(), o})
	b.add([]Lit{c.not(), t, o.not()})
	b.add([]Lit{c, f.not(), o})
	b.add([]Lit{c, f, o.not()})
	return o
}

// fullAdder returns (sum, carry) for x + y + cin.
func (b *blaster) fullAdder(x, y, cin Lit) (Lit, Lit) {
	sum := b.xorGate(b.xorGate(x, y), cin)
	carry := b.orGate(b.andGate(x, y), b.andGate(cin, b.xorGate(x, y)))
	return sum, carry
}

func (b *blaster) adder(x, y []Lit, cin Lit) []Lit {
	n := len(x)
	out := make([]Lit, n)
	c := cin
	for i := 0; i < n; i++ {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negate(x []Lit) []Lit {
	inv := make([]Lit, len(x))
	for i, l := range x {
		inv[i] = l.not()
	}
	one := make([]Lit, len(x))
	for i := range one {
		one[i] = b.constLit(i == 0)
	}
	return b.adder(inv, one, b.constLit(false))
}

// blast returns the bit literals (LSB first) of an expression.
func (b *blaster) blast(e *symexpr.Expr) []Lit {
	if bits, ok := b.cache[e]; ok {
		if b.gate != 0 {
			// Reuse across scopes: one implication activates the owner's
			// whole circuit instead of re-encoding the borrowed nodes.
			if g := b.owner[e]; g != 0 && g != b.gate.not() && !b.depSeen[g] {
				b.depSeen[g] = true
				b.add([]Lit{g})
			}
		}
		return bits
	}
	var bits []Lit
	if b.owner != nil && b.gate != 0 && !e.IsConst() && !e.IsVar() {
		v0 := b.sat.numVars + 1
		bits = b.blastUncached(e)
		b.ranges[e] = [2]int32{v0, b.sat.numVars + 1}
		b.owner[e] = b.gate.not()
	} else {
		bits = b.blastUncached(e)
	}
	b.cache[e] = bits
	return bits
}

func (b *blaster) blastUncached(e *symexpr.Expr) []Lit {
	w := int(e.Width())
	if e.IsConst() {
		v := e.ConstVal()
		bits := make([]Lit, w)
		for i := 0; i < w; i++ {
			bits[i] = b.constLit(v>>uint(i)&1 == 1)
		}
		return bits
	}
	if e.IsVar() {
		return b.varBits(e.VarRef())
	}
	switch e.Op() {
	case symexpr.OpNot:
		x := b.blast(e.Child(0))
		out := make([]Lit, w)
		for i := range out {
			out[i] = x[i].not()
		}
		return out
	case symexpr.OpNeg:
		return b.negate(b.blast(e.Child(0)))
	case symexpr.OpZExt:
		x := b.blast(e.Child(0))
		out := make([]Lit, w)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = b.constLit(false)
			}
		}
		return out
	case symexpr.OpSExt:
		x := b.blast(e.Child(0))
		out := make([]Lit, w)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = x[len(x)-1]
			}
		}
		return out
	case symexpr.OpTrunc:
		x := b.blast(e.Child(0))
		return append([]Lit(nil), x[:w]...)
	case symexpr.OpIte:
		c := b.blast(e.Child(0))[0]
		t := b.blast(e.Child(1))
		f := b.blast(e.Child(2))
		out := make([]Lit, w)
		for i := range out {
			out[i] = b.iteGate(c, t[i], f[i])
		}
		return out
	}
	x := b.blast(e.Child(0))
	y := b.blast(e.Child(1))
	switch e.Op() {
	case symexpr.OpAnd:
		out := make([]Lit, w)
		for i := range out {
			out[i] = b.andGate(x[i], y[i])
		}
		return out
	case symexpr.OpOr:
		out := make([]Lit, w)
		for i := range out {
			out[i] = b.orGate(x[i], y[i])
		}
		return out
	case symexpr.OpXor:
		out := make([]Lit, w)
		for i := range out {
			out[i] = b.xorGate(x[i], y[i])
		}
		return out
	case symexpr.OpAdd:
		return b.adder(x, y, b.constLit(false))
	case symexpr.OpSub:
		inv := make([]Lit, len(y))
		for i, l := range y {
			inv[i] = l.not()
		}
		return b.adder(x, inv, b.constLit(true))
	case symexpr.OpMul:
		return b.multiplier(x, y)
	case symexpr.OpUDiv:
		q, _ := b.divider(x, y)
		return q
	case symexpr.OpURem:
		_, r := b.divider(x, y)
		return r
	case symexpr.OpShl:
		return b.shifter(x, y, false)
	case symexpr.OpLShr:
		return b.shifter(x, y, true)
	case symexpr.OpEq:
		acc := b.constLit(true)
		for i := range x {
			acc = b.andGate(acc, b.xorGate(x[i], y[i]).not())
		}
		return []Lit{acc}
	case symexpr.OpUlt:
		return []Lit{b.ultGate(x, y)}
	case symexpr.OpUle:
		return []Lit{b.ultGate(y, x).not()}
	case symexpr.OpSlt:
		return []Lit{b.sltGate(x, y)}
	case symexpr.OpSle:
		return []Lit{b.sltGate(y, x).not()}
	}
	panic("solver: blast: unhandled op " + e.Op().String())
}

// ultGate returns a literal for unsigned x < y, LSB-first operands.
func (b *blaster) ultGate(x, y []Lit) Lit {
	lt := b.constLit(false)
	for i := 0; i < len(x); i++ {
		eqi := b.xorGate(x[i], y[i]).not()
		lti := b.andGate(x[i].not(), y[i])
		lt = b.orGate(lti, b.andGate(eqi, lt))
	}
	return lt
}

func (b *blaster) sltGate(x, y []Lit) Lit {
	n := len(x)
	sx, sy := x[n-1], y[n-1]
	// Compare magnitudes with flipped sign bits: slt(x,y) = ult(x^MSB, y^MSB)
	x2 := append(append([]Lit(nil), x[:n-1]...), sx.not())
	y2 := append(append([]Lit(nil), y[:n-1]...), sy.not())
	return b.ultGate(x2, y2)
}

// multiplier builds a shift-and-add multiplier. When one operand is constant
// the blast of that operand consists of constant literals, and the adder rows
// for zero bits collapse through gate-level simplification.
func (b *blaster) multiplier(x, y []Lit) []Lit {
	n := len(x)
	acc := make([]Lit, n)
	for i := range acc {
		acc[i] = b.constLit(false)
	}
	for i := 0; i < n; i++ {
		if y[i] == b.constLit(false) {
			continue
		}
		// row = (x << i) AND y[i]
		row := make([]Lit, n)
		for j := 0; j < n; j++ {
			if j < i {
				row[j] = b.constLit(false)
			} else {
				row[j] = b.andGate(x[j-i], y[i])
			}
		}
		acc = b.adder(acc, row, b.constLit(false))
	}
	return acc
}

// divider builds a restoring divider returning (quotient, remainder) with the
// SMT-LIB convention that division by zero yields all-ones / the dividend.
func (b *blaster) divider(x, y []Lit) ([]Lit, []Lit) {
	n := len(x)
	q := make([]Lit, n)
	r := make([]Lit, n)
	for i := range r {
		r[i] = b.constLit(false)
	}
	for i := n - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		nr := make([]Lit, n)
		nr[0] = x[i]
		copy(nr[1:], r[:n-1])
		r = nr
		// if r >= y: r -= y; q[i] = 1
		ge := b.ultGate(r, y).not()
		inv := make([]Lit, n)
		for j, l := range y {
			inv[j] = l.not()
		}
		sub := b.adder(r, inv, b.constLit(true))
		for j := 0; j < n; j++ {
			r[j] = b.iteGate(ge, sub[j], r[j])
		}
		q[i] = ge
	}
	// Division by zero: q = all ones, r = x.
	yZero := b.constLit(true)
	for _, l := range y {
		yZero = b.andGate(yZero, l.not())
	}
	for i := 0; i < n; i++ {
		q[i] = b.iteGate(yZero, b.constLit(true), q[i])
		r[i] = b.iteGate(yZero, x[i], r[i])
	}
	return q, r
}

// shifter builds a logarithmic barrel shifter.
func (b *blaster) shifter(x, amt []Lit, right bool) []Lit {
	n := len(x)
	cur := append([]Lit(nil), x...)
	// Stages for each bit of the shift amount that can matter.
	for s := 0; s < len(amt) && (1<<uint(s)) < 2*n; s++ {
		sh := 1 << uint(s)
		next := make([]Lit, n)
		for i := 0; i < n; i++ {
			var from Lit
			if right {
				if i+sh < n {
					from = cur[i+sh]
				} else {
					from = b.constLit(false)
				}
			} else {
				if i-sh >= 0 {
					from = cur[i-sh]
				} else {
					from = b.constLit(false)
				}
			}
			next[i] = b.iteGate(amt[s], from, cur[i])
		}
		cur = next
	}
	// Shift amounts >= width yield zero: OR of high amount bits forces zero.
	var tooBig Lit = b.constLit(false)
	for s := 0; s < len(amt); s++ {
		if 1<<uint(s) >= 2*n {
			tooBig = b.orGate(tooBig, amt[s])
		}
	}
	if tooBig != b.constLit(false) {
		for i := range cur {
			cur[i] = b.iteGate(tooBig, b.constLit(false), cur[i])
		}
	}
	return cur
}

// assertTrue forces a width-1 expression to hold.
func (b *blaster) assertTrue(e *symexpr.Expr) bool {
	bits := b.blast(e)
	return b.sat.addClause([]Lit{bits[0]})
}
