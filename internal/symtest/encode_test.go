package symtest

import (
	"testing"

	"chef/internal/symexpr"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	in := symexpr.Assignment{
		{Buf: "email", Idx: 0, W: symexpr.W8}:     uint64('a'),
		{Buf: "email", Idx: 5, W: symexpr.W8}:     uint64('@'),
		{Buf: "count", Idx: 0, W: symexpr.W32}:    0xFFFF_FFFF,
		{Buf: "odd[name]", Idx: 2, W: symexpr.W8}: 7,
	}
	enc := EncodeInput(in)
	dec, err := DecodeInput(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(in) {
		t.Fatalf("roundtrip lost entries: %d vs %d", len(dec), len(in))
	}
	for k, v := range in {
		if dec[k] != v {
			t.Errorf("key %v: got %d, want %d", k, dec[k], v)
		}
	}
}

func TestDecodeInputErrors(t *testing.T) {
	for _, bad := range []map[string]uint64{
		{"noindex:8": 1},
		{"name[zz]:8": 1},
		{"name[0]": 1},
	} {
		if _, err := DecodeInput(bad); err == nil {
			t.Errorf("expected error for %v", bad)
		}
	}
}

func TestMarshalUnmarshalTests(t *testing.T) {
	tests := []SerializedTest{
		{Package: "p", Result: "ok", Status: "completed", Input: map[string]uint64{"a[0]:8": 65}},
		{Package: "p", Result: "exception:ValueError", Status: "completed", Input: map[string]uint64{"a[0]:8": 0}},
	}
	SortTests(tests)
	data, err := MarshalTests(tests)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTests(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Result != tests[0].Result || back[1].Input["a[0]:8"] != tests[1].Input["a[0]:8"] {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if _, err := UnmarshalTests([]byte("{bad json")); err == nil {
		t.Error("expected unmarshal error")
	}
}
