package symtest

import (
	"sync"

	"chef/internal/minilua"
	"chef/internal/minipy"
)

// Interned compile caches. A session compiles its target before exploring;
// under the parallel harness many sessions (one per configuration and
// repetition) target the same source, so compilation is interned process-wide
// by source text. Compiled Programs are immutable after compilation — the VM
// only reads Instrs and Consts, and class construction copies spec constants
// into fresh per-VM maps — which makes a shared *Program safe for any number
// of concurrent sessions (validated by the -race determinism suite).
//
// sync.Map gives lock-free hits on the hot path; a concurrent first-miss may
// compile twice, but LoadOrStore keeps a single canonical Program, so every
// session in the process observes identical bytecode (and therefore
// identical HLPCs) regardless of scheduling.
var (
	pyPrograms  sync.Map // source string -> *minipy.Program
	luaPrograms sync.Map // source string -> *minilua.Program
)

// InternedPyProgram compiles src once per process and returns the shared
// immutable Program.
func InternedPyProgram(src string) (*minipy.Program, error) {
	if p, ok := pyPrograms.Load(src); ok {
		return p.(*minipy.Program), nil
	}
	p, err := minipy.Compile(src)
	if err != nil {
		return nil, err
	}
	actual, _ := pyPrograms.LoadOrStore(src, p)
	return actual.(*minipy.Program), nil
}

// InternedLuaProgram compiles src once per process and returns the shared
// immutable Program.
func InternedLuaProgram(src string) (*minilua.Program, error) {
	if p, ok := luaPrograms.Load(src); ok {
		return p.(*minilua.Program), nil
	}
	p, err := minilua.Compile(src)
	if err != nil {
		return nil, err
	}
	actual, _ := luaPrograms.LoadOrStore(src, p)
	return actual.(*minilua.Program), nil
}
