package symtest

import (
	"chef/internal/chef"
	"chef/internal/lowlevel"
	"chef/internal/minilua"
	"chef/internal/symexpr"
)

// LuaTest is a symbolic test for a MiniLua target: run the chunk, then call
// Entry with the declared symbolic inputs.
type LuaTest struct {
	Source string
	Entry  string
	Inputs []Input
	Config minilua.Config

	prog *minilua.Program
}

// Compile parses and compiles the target source once per process: compiled
// programs are interned by source text and shared read-only across sessions
// (see intern.go).
func (t *LuaTest) Compile() error {
	if t.prog != nil {
		return nil
	}
	p, err := InternedLuaProgram(t.Source)
	if err != nil {
		return err
	}
	t.prog = p
	return nil
}

// Prog exposes the compiled program.
func (t *LuaTest) Prog() *minilua.Program {
	if err := t.Compile(); err != nil {
		panic(err)
	}
	return t.prog
}

// Program packages the test for a CHEF session.
func (t *LuaTest) Program() chef.TestProgram {
	if err := t.Compile(); err != nil {
		panic(err)
	}
	return func(ctx *chef.Ctx) {
		vm, out := minilua.RunModule(t.prog, ctx.M, ctx, t.Config)
		if out.Error != "" {
			ctx.SetResult("moduleerror:" + out.Error)
			return
		}
		args := t.buildArgs(ctx.M)
		_, err := vm.CallFunction(t.Entry, args)
		if err != nil {
			ctx.SetResult("error:" + err.Msg)
			return
		}
		ctx.SetResult("ok")
	}
}

func (t *LuaTest) buildArgs(m *lowlevel.Machine) []minilua.Value {
	args := make([]minilua.Value, len(t.Inputs))
	for i, in := range t.Inputs {
		switch in.Kind {
		case StringInput:
			args[i] = minilua.SymbolicString(m, in.Name, in.Len, in.Default)
		case IntInput:
			args[i] = minilua.SymbolicInt(m, in.Name, in.DefInt)
		}
	}
	return args
}

// Replay re-executes a test case concretely with coverage.
func (t *LuaTest) Replay(input symexpr.Assignment, stepLimit int64) ReplayResult {
	if err := t.Compile(); err != nil {
		panic(err)
	}
	m := lowlevel.NewConcreteMachine(input.Clone(), stepLimit)
	cov := minilua.NewCoverageHost(t.prog)
	host := &countingHost{inner: cov}
	res := ReplayResult{Lines: cov.Lines}
	res.Status = m.RunConcrete(func(m *lowlevel.Machine) {
		vm, out := minilua.RunModule(t.prog, m, host, minilua.Vanilla)
		if out.Error != "" {
			res.Result = "moduleerror:" + out.Error
			return
		}
		_, err := vm.CallFunction(t.Entry, t.buildArgs(m))
		if err != nil {
			res.Result = "error:" + err.Msg
			return
		}
		res.Result = "ok"
	})
	if res.Status == lowlevel.RunHang && res.Result == "" {
		res.Result = "hang"
	}
	res.HLLen = host.n
	res.LLBranches = m.Branches()
	res.Steps = m.Steps()
	return res
}
