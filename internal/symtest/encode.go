package symtest

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"chef/internal/symexpr"
)

// SerializedTest is the on-disk form of a generated test case, written by
// cmd/chef and consumed by cmd/chef-replay.
type SerializedTest struct {
	Package string            `json:"package"`
	Result  string            `json:"result"`
	Status  string            `json:"status"`
	Input   map[string]uint64 `json:"input"`
}

// EncodeInput flattens an assignment into a JSON-friendly map keyed by
// "buf[idx]:width".
func EncodeInput(in symexpr.Assignment) map[string]uint64 {
	out := make(map[string]uint64, len(in))
	for v, val := range in {
		out[fmt.Sprintf("%s[%d]:%d", v.Buf, v.Idx, v.W)] = val
	}
	return out
}

// DecodeInput parses the EncodeInput representation.
func DecodeInput(m map[string]uint64) (symexpr.Assignment, error) {
	out := symexpr.Assignment{}
	for k, val := range m {
		lb := strings.LastIndexByte(k, '[')
		colon := strings.LastIndexByte(k, ':')
		if lb < 0 || colon < lb {
			return nil, fmt.Errorf("symtest: bad input key %q", k)
		}
		var idx int
		var w int
		if _, err := fmt.Sscanf(k[lb:colon], "[%d]", &idx); err != nil {
			return nil, fmt.Errorf("symtest: bad index in key %q", k)
		}
		if _, err := fmt.Sscanf(k[colon:], ":%d", &w); err != nil {
			return nil, fmt.Errorf("symtest: bad width in key %q", k)
		}
		out[symexpr.Var{Buf: k[:lb], Idx: idx, W: symexpr.Width(w)}] = val
	}
	return out, nil
}

// MarshalTests renders test cases as newline-delimited JSON.
func MarshalTests(tests []SerializedTest) ([]byte, error) {
	var sb strings.Builder
	for _, tc := range tests {
		// Sort keys for stable output: marshal a sorted copy via a map is
		// already sorted by encoding/json.
		b, err := json.Marshal(tc)
		if err != nil {
			return nil, err
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), nil
}

// UnmarshalTests parses newline-delimited JSON test cases.
func UnmarshalTests(data []byte) ([]SerializedTest, error) {
	var out []SerializedTest
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var tc SerializedTest
		if err := json.Unmarshal([]byte(line), &tc); err != nil {
			return nil, err
		}
		out = append(out, tc)
	}
	return out, nil
}

// SortTests orders tests deterministically by result then input rendering.
func SortTests(tests []SerializedTest) {
	sort.Slice(tests, func(i, j int) bool {
		if tests[i].Result != tests[j].Result {
			return tests[i].Result < tests[j].Result
		}
		return fmt.Sprint(tests[i].Input) < fmt.Sprint(tests[j].Input)
	})
}
