// Package symtest is the symbolic test library of §4.3/§5.1: it packages a
// target program written in an interpreted language, an entry point, and a
// set of symbolic inputs into a chef.TestProgram, and provides the replay
// runner that re-executes generated test cases on the vanilla interpreter to
// confirm results and measure line coverage.
package symtest

import (
	"fmt"

	"chef/internal/chef"
	"chef/internal/lowlevel"
	"chef/internal/minipy"
	"chef/internal/symexpr"
)

// InputKind distinguishes symbolic input types. As in the paper's prototype,
// symbolic program inputs are strings and integers.
type InputKind uint8

// Input kinds.
const (
	StringInput InputKind = iota
	IntInput
)

// Input declares one symbolic input to the test.
type Input struct {
	Name    string
	Kind    InputKind
	Len     int    // string length (fixed buffer, like getString's '\x00'*3)
	Default string // default bytes for the first run
	DefInt  int32
	// HasRange constrains an integer input to [Min, Max] through the
	// assume() API call, as the paper's symbolic tests do for input
	// preconditions.
	HasRange bool
	Min, Max int32
}

// Str declares a symbolic string input of the given length.
func Str(name string, n int, def string) Input {
	return Input{Name: name, Kind: StringInput, Len: n, Default: def}
}

// Int declares a symbolic integer input.
func Int(name string, def int32) Input {
	return Input{Name: name, Kind: IntInput, DefInt: def}
}

// IntRange declares a symbolic integer input constrained to [min, max] via
// the assume() guest API call.
func IntRange(name string, def, min, max int32) Input {
	return Input{Name: name, Kind: IntInput, DefInt: def, HasRange: true, Min: min, Max: max}
}

// PyTest is a symbolic test for a MiniPy target: run the module, then call
// Entry with the declared symbolic inputs.
type PyTest struct {
	Source string
	Entry  string
	Inputs []Input
	Config minipy.Config

	prog *minipy.Program
}

// Compile parses and compiles the target source once per process: compiled
// programs are interned by source text and shared read-only across sessions
// (see intern.go).
func (t *PyTest) Compile() error {
	if t.prog != nil {
		return nil
	}
	p, err := InternedPyProgram(t.Source)
	if err != nil {
		return err
	}
	t.prog = p
	return nil
}

// Prog exposes the compiled program (for coverage denominators).
func (t *PyTest) Prog() *minipy.Program {
	if err := t.Compile(); err != nil {
		panic(err)
	}
	return t.prog
}

// Program packages the test for a CHEF session.
func (t *PyTest) Program() chef.TestProgram {
	if err := t.Compile(); err != nil {
		panic(err)
	}
	return func(ctx *chef.Ctx) {
		vm, out := minipy.RunModule(t.prog, ctx.M, ctx, t.Config)
		if out.Exception != "" {
			ctx.SetResult("moduleerror:" + out.Exception)
			return
		}
		args := make([]minipy.Value, len(t.Inputs))
		for i, in := range t.Inputs {
			switch in.Kind {
			case StringInput:
				args[i] = minipy.SymbolicString(ctx.M, in.Name, in.Len, in.Default)
			case IntInput:
				iv := minipy.SymbolicInt(ctx.M, in.Name, in.DefInt)
				if in.HasRange {
					assumeRange(ctx, iv.V, in.Min, in.Max)
				}
				args[i] = iv
			}
		}
		res := runEntry(vm, t.Entry, args)
		ctx.SetResult(res)
	}
}

// assumeRange constrains a symbolic width-64 value to [min, max] via the
// assume API call (Table 1 of the paper).
func assumeRange(ctx *chef.Ctx, v lowlevel.SVal, min, max int32) {
	lo := lowlevel.ConcreteVal(uint64(int64(min)), symexpr.W64)
	hi := lowlevel.ConcreteVal(uint64(int64(max)), symexpr.W64)
	ctx.Assume(0x9001, lowlevel.BoolAndV(lowlevel.SleV(lo, v), lowlevel.SleV(v, hi)))
}

func runEntry(vm *minipy.VM, entry string, args []minipy.Value) string {
	_, exc := vm.CallFunction(entry, args)
	if exc != nil {
		return "exception:" + exc.Type
	}
	return "ok"
}

// ReplayResult is the outcome of replaying one test case concretely.
type ReplayResult struct {
	Result string
	Status lowlevel.RunStatus
	Lines  map[int]bool // covered source lines
	// HLLen is the length of the high-level instruction trace (LogPC calls)
	// of the replay, LLBranches the number of low-level branch sites visited
	// and Steps the virtual-time cost — the per-test execution profile that
	// chef-replay -summary reports.
	HLLen      int
	LLBranches int64
	Steps      int64
}

// hlHost is the structural shape shared by minipy.Host and minilua.Host, so
// one counting wrapper serves both interpreters.
type hlHost interface {
	LogPC(hlpc uint64, opcode uint32)
}

// countingHost forwards the high-level trace to the coverage recorder while
// counting its length.
type countingHost struct {
	inner hlHost
	n     int
}

// LogPC implements minipy.Host and minilua.Host.
func (h *countingHost) LogPC(hlpc uint64, opcode uint32) {
	h.n++
	h.inner.LogPC(hlpc, opcode)
}

// Replay re-executes a generated test case on the vanilla interpreter (no
// symbolic machinery), confirming the outcome and measuring line coverage.
func (t *PyTest) Replay(input symexpr.Assignment, stepLimit int64) ReplayResult {
	if err := t.Compile(); err != nil {
		panic(err)
	}
	m := lowlevel.NewConcreteMachine(input.Clone(), stepLimit)
	cov := minipy.NewCoverageHost(t.prog)
	host := &countingHost{inner: cov}
	res := ReplayResult{Lines: cov.Lines}
	res.Status = m.RunConcrete(func(m *lowlevel.Machine) {
		vm, out := minipy.RunModule(t.prog, m, host, minipy.Vanilla)
		if out.Exception != "" {
			res.Result = "moduleerror:" + out.Exception
			return
		}
		args := make([]minipy.Value, len(t.Inputs))
		for i, in := range t.Inputs {
			switch in.Kind {
			case StringInput:
				args[i] = minipy.SymbolicString(m, in.Name, in.Len, in.Default)
			case IntInput:
				args[i] = minipy.SymbolicInt(m, in.Name, in.DefInt)
			}
		}
		res.Result = runEntry(vm, t.Entry, args)
	})
	if res.Status == lowlevel.RunHang && res.Result == "" {
		res.Result = "hang"
	}
	res.HLLen = host.n
	res.LLBranches = m.Branches()
	res.Steps = m.Steps()
	return res
}

// InputString renders a test-case input buffer for diagnostics.
func InputString(in symexpr.Assignment, inputs []Input) string {
	s := ""
	for i, decl := range inputs {
		if i > 0 {
			s += " "
		}
		switch decl.Kind {
		case StringInput:
			s += fmt.Sprintf("%s=%q", decl.Name, minipy.ConcreteStringFromInput(in, decl.Name, decl.Len))
		case IntInput:
			s += fmt.Sprintf("%s=%d", decl.Name, int32(in[symexpr.Var{Buf: decl.Name, W: symexpr.W32}]))
		}
	}
	return s
}
