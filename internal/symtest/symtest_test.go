package symtest

import (
	"testing"

	"chef/internal/chef"
	"chef/internal/lowlevel"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/symexpr"
)

// The paper's running example (Fig. 2), in MiniPy, explored end-to-end
// through the full stack: MiniPy interpreter → CHEF → low-level engine →
// solver.
const emailSrc = `
def validateEmail(email):
    at_sign_pos = email.find("@")
    if at_sign_pos < 3:
        raise InvalidEmailError("at sign too early")
    return "valid"
`

func emailTest(cfg minipy.Config) *PyTest {
	return &PyTest{
		Source: emailSrc,
		Entry:  "validateEmail",
		Inputs: []Input{Str("email", 6, "")},
		Config: cfg,
	}
}

func TestEmailValidatorSymbolic(t *testing.T) {
	pt := emailTest(minipy.Optimized)
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 1})
	tests := s.Run(3_000_000)
	if len(tests) < 2 {
		t.Fatalf("generated %d tests, want >= 2", len(tests))
	}
	results := map[string]bool{}
	for _, tc := range tests {
		results[tc.Result] = true
	}
	if !results["ok"] || !results["exception:InvalidEmailError"] {
		t.Fatalf("results %v: want both outcomes", results)
	}
	// Soundness: every generated test must replay to its recorded result.
	for _, tc := range tests {
		rep := pt.Replay(tc.Input, 1<<20)
		if rep.Result != tc.Result {
			t.Errorf("replay %s => %q, want %q", InputString(tc.Input, pt.Inputs), rep.Result, tc.Result)
		}
	}
}

func TestEmailValidatorFindsValidInput(t *testing.T) {
	// The solver must synthesize an email with '@' at position >= 3.
	pt := emailTest(minipy.Optimized)
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 2})
	tests := s.Run(3_000_000)
	foundValid := false
	for _, tc := range tests {
		if tc.Result == "ok" {
			email := minipy.ConcreteStringFromInput(tc.Input, "email", 6)
			at := -1
			for i := 0; i < len(email); i++ {
				if email[i] == '@' {
					at = i
					break
				}
			}
			if at < 3 {
				t.Errorf("test marked ok but email %q has @ at %d", email, at)
			}
			foundValid = true
		}
	}
	if !foundValid {
		t.Fatal("no valid-email test case generated")
	}
}

func TestVanillaGeneratesFewerHLTestsPerLLPath(t *testing.T) {
	// The vanilla interpreter forks massively more low-level states for the
	// same high-level behavior; with a fixed budget its HL/LL efficiency is
	// lower than the optimized build's (Fig. 10's phenomenon).
	eff := func(cfg minipy.Config) (float64, int) {
		pt := emailTest(cfg)
		s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 3})
		tests := s.Run(2_000_000)
		ll := s.Engine().Stats().LLPaths
		if ll == 0 {
			return 0, len(tests)
		}
		return float64(s.HLPathCount()) / float64(ll), len(tests)
	}
	vanillaEff, _ := eff(minipy.Vanilla)
	optEff, _ := eff(minipy.Optimized)
	if optEff < vanillaEff {
		t.Errorf("optimized efficiency %.3f < vanilla %.3f; optimizations should help", optEff, vanillaEff)
	}
}

func TestIntInputSymbolic(t *testing.T) {
	pt := &PyTest{
		Source: `
def classify(n):
    if n < 0:
        return "neg"
    if n == 0:
        return "zero"
    if n > 1000:
        return "big"
    return "small"
`,
		Entry:  "classify",
		Inputs: []Input{Int("n", 0)},
		Config: minipy.Optimized,
	}
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 4})
	tests := s.Run(3_000_000)
	if len(tests) < 4 {
		t.Fatalf("generated %d tests, want >= 4 (one per class)", len(tests))
	}
}

func TestDictWorkloadSymbolic(t *testing.T) {
	// Symbolic dict keys: the MAC-learning shape. Must explore both the
	// hit and miss paths of the lookup.
	pt := &PyTest{
		Source: `
def learn(key):
    table = {}
    table["ab"] = 1
    if key in table:
        return "hit"
    return "miss"
`,
		Entry:  "learn",
		Inputs: []Input{Str("key", 2, "")},
		Config: minipy.Optimized,
	}
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 5})
	tests := s.Run(4_000_000)
	results := map[string]bool{}
	for _, tc := range tests {
		rep := pt.Replay(tc.Input, 1<<20)
		results[rep.Result] = true
	}
	if !results["ok"] {
		t.Fatalf("results %v", results)
	}
	// Check that some input found the key "ab" — requires solving the
	// byte-equality constraints through the dict machinery.
	hit := false
	for _, tc := range tests {
		if minipy.ConcreteStringFromInput(tc.Input, "key", 2) == "ab" {
			hit = true
		}
	}
	if !hit {
		t.Error("never synthesized the dict hit key")
	}
}

func TestReplayCoverageGrowsWithTests(t *testing.T) {
	pt := emailTest(minipy.Optimized)
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPACoverage, Seed: 6})
	tests := s.Run(3_000_000)
	covered := map[int]bool{}
	for _, tc := range tests {
		rep := pt.Replay(tc.Input, 1<<20)
		for l := range rep.Lines {
			covered[l] = true
		}
	}
	coverable := pt.Prog().CoverableLines()
	if len(covered) == 0 || len(covered) > len(coverable) {
		t.Fatalf("covered %d of %d lines", len(covered), len(coverable))
	}
	// The full suite must cover both the raise line and the return line.
	if !covered[4] || !covered[5] {
		t.Errorf("coverage %v should include lines 4 and 5", covered)
	}
}

func TestHangDetectionThroughFullStack(t *testing.T) {
	// The sb-JSON bug shape: an input-dependent infinite loop. The engine
	// must generate a test case with hang status.
	pt := &PyTest{
		Source: `
def parse(s):
    i = 0
    while i < len(s):
        if s[i] == "/":
            while True:
                pass
        i = i + 1
    return "done"
`,
		Entry:  "parse",
		Inputs: []Input{Str("s", 2, "")},
		Config: minipy.Optimized,
	}
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 7, StepLimit: 20000})
	tests := s.Run(2_000_000)
	hang := false
	for _, tc := range tests {
		if tc.Status == lowlevel.RunHang {
			hang = true
		}
	}
	if !hang {
		t.Fatalf("no hang test case among %d tests", len(tests))
	}
}

func symexprVar32(name string) symexpr.Var {
	return symexpr.Var{Buf: name, W: symexpr.W32}
}

func TestIntRangeAssumption(t *testing.T) {
	// The assume() precondition must confine exploration: no generated test
	// may carry an out-of-range input, and the in-range behaviors must all
	// be found.
	pt := &PyTest{
		Source: `
def bucket(n):
    if n < 3:
        return "low"
    if n < 7:
        return "mid"
    return "high"
`,
		Entry:  "bucket",
		Inputs: []Input{IntRange("n", 5, 0, 9)},
		Config: minipy.Optimized,
	}
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 12})
	tests := s.Run(2_000_000)
	if len(tests) < 3 {
		t.Fatalf("tests = %d, want >= 3 buckets", len(tests))
	}
	for _, tc := range tests {
		v := int32(tc.Input[symexprVar32("n")])
		if v < 0 || v > 9 {
			t.Errorf("out-of-range input %d escaped the assumption", v)
		}
	}
}

func TestLuaTestSymbolicEndToEnd(t *testing.T) {
	lt := &LuaTest{
		Source: `
function classify(s)
    if s:sub(1, 1) == "%" then
        return "tag"
    end
    if #s == 0 then
        return "empty"
    end
    return "text"
end
`,
		Entry:  "classify",
		Inputs: []Input{Str("s", 3, "")},
		Config: minilua.Optimized,
	}
	s := chef.NewSession(lt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 9})
	tests := s.Run(1_500_000)
	if len(tests) < 2 {
		t.Fatalf("tests = %d, want >= 2", len(tests))
	}
	// Soundness through the Lua replay path.
	for _, tc := range tests {
		if tc.Status == lowlevel.RunHang {
			continue
		}
		rep := lt.Replay(tc.Input, 1<<20)
		if rep.Result != tc.Result {
			t.Errorf("replay %q, want %q", rep.Result, tc.Result)
		}
		if len(rep.Lines) == 0 {
			t.Error("replay recorded no coverage")
		}
	}
	// One test must have synthesized a leading '%'.
	tag := false
	for _, tc := range tests {
		in := tc.Input[symexpr.Var{Buf: "s", Idx: 0, W: symexpr.W8}]
		if byte(in) == '%' {
			tag = true
		}
	}
	if !tag {
		t.Error("never synthesized the tag prefix")
	}
}

func TestLuaTestModuleError(t *testing.T) {
	lt := &LuaTest{
		Source: `error("boom at load")`,
		Entry:  "f",
		Config: minilua.Optimized,
	}
	s := chef.NewSession(lt.Program(), chef.Options{Strategy: chef.StrategyRandom, Seed: 10})
	tests := s.Run(100_000)
	if len(tests) != 1 || tests[0].Result[:11] != "moduleerror" {
		t.Fatalf("tests: %+v", tests)
	}
	rep := lt.Replay(nil, 1<<20)
	if rep.Result[:11] != "moduleerror" {
		t.Fatalf("replay: %+v", rep)
	}
}

func TestInputStringRendering(t *testing.T) {
	in := symexpr.Assignment{
		{Buf: "a", Idx: 0, W: symexpr.W8}: 'x',
		{Buf: "a", Idx: 1, W: symexpr.W8}: 'y',
		{Buf: "n", W: symexpr.W32}:        0xFFFFFFFE, // -2
	}
	got := InputString(in, []Input{Str("a", 2, ""), Int("n", 0)})
	if got != `a="xy" n=-2` {
		t.Fatalf("InputString = %q", got)
	}
}

func TestPyTestModuleError(t *testing.T) {
	pt := &PyTest{
		Source: `raise RuntimeError("at import")`,
		Entry:  "f",
		Config: minipy.Optimized,
	}
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyRandom, Seed: 11})
	tests := s.Run(100_000)
	if len(tests) != 1 || tests[0].Result != "moduleerror:RuntimeError" {
		t.Fatalf("tests: %+v", tests)
	}
}

func TestLuaIntInputSymbolic(t *testing.T) {
	lt := &LuaTest{
		Source: `
function sign(n)
    if n < 0 then
        return "neg"
    end
    if n == 0 then
        return "zero"
    end
    return "pos"
end
`,
		Entry:  "sign",
		Inputs: []Input{Int("n", 1)},
		Config: minilua.Optimized,
	}
	s := chef.NewSession(lt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 13})
	tests := s.Run(1_000_000)
	if len(tests) < 3 {
		t.Fatalf("tests = %d, want 3 signs", len(tests))
	}
	for _, tc := range tests {
		if tc.Status == lowlevel.RunHang {
			continue
		}
		if rep := lt.Replay(tc.Input, 1<<20); rep.Result != tc.Result {
			t.Errorf("replay %q, want %q", rep.Result, tc.Result)
		}
	}
}
