package symtest

import (
	"testing"

	"chef/internal/chef"
	"chef/internal/lowlevel"
	"chef/internal/minipy"
	"chef/internal/symexpr"
)

// TestSymbolicMatchesBruteForce is the stack's completeness check: for small
// programs over a single symbolic byte, exhaustively enumerating all 256
// concrete inputs must yield exactly the set of outcomes the symbolic
// session discovers (the paper's "theoretically complete" claim, §3.1, at a
// scale where completion is reachable).
func TestSymbolicMatchesBruteForce(t *testing.T) {
	programs := []struct {
		name string
		src  string
	}{
		{"ranges", `
def f(s):
    c = ord(s)
    if c < 32:
        return "ctl"
    if c == 64:
        return "at"
    if c > 127:
        return "high"
    return "print"
`},
		{"classes", `
def f(s):
    if s.isdigit():
        return "digit"
    if s.isalpha():
        if s == s.lower():
            return "lower"
        return "upper"
    return "other"
`},
		{"parse", `
def f(s):
    try:
        n = int(s)
        if n > 5:
            return "big"
        return "small"
    except ValueError:
        return "nan"
`},
	}
	for _, p := range programs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			pt := &PyTest{
				Source: p.src,
				Entry:  "f",
				Inputs: []Input{Str("s", 1, "")},
				Config: minipy.Optimized,
			}
			// Brute force ground truth.
			want := map[string]bool{}
			for b := 0; b < 256; b++ {
				in := symexpr.Assignment{{Buf: "s", Idx: 0, W: symexpr.W8}: uint64(b)}
				rep := pt.Replay(in, 1<<20)
				want[replayOutcome(t, pt, in, rep)] = true
			}
			// Symbolic exploration to exhaustion.
			s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 1})
			tests := s.Run(30_000_000)
			got := map[string]bool{}
			for _, tc := range tests {
				got[tc.Result+":"+outcomeOf(pt, tc.Input)] = true
			}
			// Compare outcome sets (keyed the same way).
			if len(got) < len(want) {
				t.Fatalf("symbolic found %d outcome+return combos %v, brute force %d %v",
					len(got), got, len(want), want)
			}
			for k := range want {
				if !got[k] {
					t.Errorf("symbolic exploration missed behavior %q", k)
				}
			}
		})
	}
}

// outcomeOf returns result + the function's return value rendered, so two
// paths with the same exception type but different returns are distinct.
func outcomeOf(pt *PyTest, in symexpr.Assignment) string {
	rep := pt.Replay(in, 1<<20)
	return rep.Result + "/" + renderRet(pt, in)
}

func replayOutcome(t *testing.T, pt *PyTest, in symexpr.Assignment, rep ReplayResult) string {
	t.Helper()
	return rep.Result + ":" + rep.Result + "/" + renderRet(pt, in)
}

// renderRet re-runs the entry and stringifies its return value.
func renderRet(pt *PyTest, in symexpr.Assignment) string {
	prog := pt.Prog()
	m := lowlevel.NewConcreteMachine(in.Clone(), 1<<20)
	var out string
	m.RunConcrete(func(mm *lowlevel.Machine) {
		vm, o := minipy.RunModule(prog, mm, nil, minipy.Vanilla)
		if o.Exception != "" {
			out = "moduleerror"
			return
		}
		args := []minipy.Value{minipy.SymbolicString(mm, "s", 1, "")}
		v, exc := vm.CallFunction(pt.Entry, args)
		if exc != nil {
			out = "exc:" + exc.Type
			return
		}
		out = minipy.Repr(v)
	})
	return out
}
