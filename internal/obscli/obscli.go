// Package obscli wires the observability layer (internal/obs) into the
// command-line tools. It owns the shared -trace / -metrics / -metrics-json /
// -httpobs flags of cmd/chef and cmd/chef-experiments so both binaries expose
// identical knobs, and it keeps the net/http/pprof side-effect import out of
// the engine packages: only binaries that link this package register pprof
// handlers on the default mux.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -httpobs
	"os"

	"chef/internal/obs"
	"chef/internal/packages"
	"chef/internal/solver"
)

// Flags is the standard observability flag set. Register it on a FlagSet,
// parse, then call Start before the run and Finish after it.
type Flags struct {
	// Trace is the JSONL event output path ("" disables tracing).
	Trace string
	// Metrics requests a human-readable metrics dump on Finish.
	Metrics bool
	// MetricsJSON is a path to write the metrics snapshot as JSON ("" off).
	MetricsJSON string
	// HTTPAddr serves expvar + pprof when non-empty (e.g. ":6060").
	HTTPAddr string
	// Spans enables the hierarchical span profiler (per-layer self/total
	// time aggregates in the metrics dump, span events in the trace).
	Spans bool

	reg    *obs.Registry
	tracer *obs.JSONL
}

// Register installs the observability flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write structured exploration events as JSONL to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metrics dump (counters, gauges, solver latency histograms, cache hit rates) at exit")
	fs.StringVar(&f.MetricsJSON, "metrics-json", "", "write the metrics snapshot as JSON to this file")
	fs.StringVar(&f.HTTPAddr, "httpobs", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address, e.g. :6060")
	fs.BoolVar(&f.Spans, "spans", false, "profile per-layer self/total time (span.* metrics, span trace events; render with chef-trace -profile)")
}

// MetricsEnabled reports whether any metrics sink was requested.
func (f *Flags) MetricsEnabled() bool {
	// -spans implies a registry: the span aggregates need somewhere to live
	// even when only the trace sink is open.
	return f.Metrics || f.MetricsJSON != "" || f.HTTPAddr != "" || f.Spans
}

// Start opens the requested sinks: it creates the registry when any metrics
// sink is enabled, opens the trace file, and starts the expvar/pprof endpoint
// (publishing the registry under publishName). Returns an error if the trace
// file cannot be created.
func (f *Flags) Start(publishName string) error {
	if f.MetricsEnabled() {
		if f.reg == nil {
			f.reg = obs.NewRegistry()
		}
		f.reg.SetVecLabeler(obs.MForksByLLPC, packages.LLPCLabel)
		if f.HTTPAddr != "" {
			f.reg.Publish(publishName)
			go func() {
				if err := http.ListenAndServe(f.HTTPAddr, nil); err != nil {
					fmt.Fprintf(os.Stderr, "%s: -httpobs: %v\n", publishName, err)
				}
			}()
		}
	}
	if f.Trace != "" {
		out, err := os.Create(f.Trace)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		f.tracer = obs.NewJSONL(out)
	}
	return nil
}

// Registry returns the metrics registry, nil when no metrics sink is enabled.
// The nil default is what the engine packages expect for disabled metrics.
func (f *Flags) Registry() *obs.Registry { return f.reg }

// StartAlways is Start for long-running servers: the registry is created
// unconditionally (a server's /metrics endpoint must work without any
// metrics flag), then the requested sinks are opened as usual.
func (f *Flags) StartAlways(publishName string) error {
	if f.reg == nil {
		f.reg = obs.NewRegistry()
	}
	return f.Start(publishName)
}

// Tracer returns the trace sink as the interface the engine consumes, nil
// when tracing is disabled (a typed-nil *JSONL must not leak into the
// interface, or every nil-check in the hot path would pass).
func (f *Flags) Tracer() obs.Tracer {
	if f.tracer == nil {
		return nil
	}
	return f.tracer
}

// SpanProfiler builds the span profiler requested by -spans, nil when the
// flag is off. Call after Start (the registry and tracer must exist). The
// profiler is single-goroutine; multi-session drivers should instead check
// SpansEnabled and build one profiler per session.
func (f *Flags) SpanProfiler() *obs.SpanProfiler {
	if !f.Spans {
		return nil
	}
	return obs.NewSpanProfiler(f.reg, f.Tracer())
}

// SpansEnabled reports whether -spans was given.
func (f *Flags) SpansEnabled() bool { return f.Spans }

// SetCacheGauges copies end-of-run query-cache occupancy into the dump-time
// gauges (entries, evictions). Call just before Finish when a cache handle is
// reachable; a no-op when metrics are disabled.
func (f *Flags) SetCacheGauges(entries, evictions int64) {
	if f.reg == nil {
		return
	}
	f.reg.Gauge(obs.MSolverCacheEntries).Set(entries)
	f.reg.Gauge(obs.MSolverCacheEvicted).Set(evictions)
}

// SetPersistStats copies an end-of-run persistent-store traffic snapshot
// (solver.PersistentStore.Stats: entries loaded at startup, entries appended
// during the run, write retries/errors and entries lost to the retry budget)
// into the dump-time metrics. A no-op when metrics are disabled.
func (f *Flags) SetPersistStats(s solver.PersistStats) {
	if f.reg == nil {
		return
	}
	f.reg.Gauge(obs.MSolverPersistLoaded).Set(s.Loaded)
	f.reg.Counter(obs.MSolverPersistAppended).Add(s.Appended)
	f.reg.Counter(obs.MSolverPersistRetries).Add(s.Retries)
	f.reg.Counter(obs.MSolverPersistWriteErrors).Add(s.WriteErrors)
	f.reg.Counter(obs.MSolverPersistLost).Add(s.Lost)
}

// Finish flushes and closes the trace file, prints the text metrics dump to w
// when -metrics was given, and writes the JSON snapshot when -metrics-json
// was given. Safe to call when no sink is enabled.
func (f *Flags) Finish(w io.Writer) error {
	if f.tracer != nil {
		if err := f.tracer.Close(); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		f.tracer = nil
	}
	if f.reg == nil {
		return nil
	}
	if f.Metrics {
		fmt.Fprintln(w, "---- metrics ----")
		f.reg.WriteText(w)
	}
	if f.MetricsJSON != "" {
		data, err := f.reg.MarshalJSON()
		if err != nil {
			return fmt.Errorf("-metrics-json: %w", err)
		}
		if err := os.WriteFile(f.MetricsJSON, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("-metrics-json: %w", err)
		}
	}
	return nil
}
