package minipy

import (
	"chef/internal/lowlevel"
)

// Host receives the high-level trace of the interpreter — CHEF's log_pc.
// chef.Ctx satisfies it in symbolic sessions; replay uses a coverage
// recorder.
type Host interface {
	LogPC(hlpc uint64, opcode uint32)
}

// nopHost discards the trace (pure concrete runs without coverage).
type nopHost struct{}

func (nopHost) LogPC(uint64, uint32) {}

// VM interprets a compiled MiniPy program over a low-level machine. It is
// the instrumented interpreter of §5.1: the dispatch loop reports HLPCs via
// the host, and every input-dependent internal branch goes through the
// machine's Branch API at a fixed interpreter LLPC.
type VM struct {
	prog    *Program
	m       *lowlevel.Machine
	host    Host
	cfg     Config
	globals map[string]Value
	printed []string
	depth   int
}

// NewVM builds a VM for prog running on machine m with the given
// optimization configuration. host may be nil.
func NewVM(prog *Program, m *lowlevel.Machine, host Host, cfg Config) *VM {
	if host == nil {
		host = nopHost{}
	}
	return &VM{prog: prog, m: m, host: host, cfg: cfg, globals: map[string]Value{}}
}

// Machine exposes the underlying low-level machine.
func (vm *VM) Machine() *lowlevel.Machine { return vm.m }

// Globals exposes the module namespace (to inject symbolic inputs).
func (vm *VM) Globals() map[string]Value { return vm.globals }

// Printed returns the output captured from print calls.
func (vm *VM) Printed() []string { return vm.printed }

// Run executes the module body. The returned Exc is the uncaught exception,
// if any.
func (vm *VM) Run() (Value, *Exc) {
	return vm.runCode(vm.prog.Main, map[string]Value{})
}

// CallFunction invokes a module-level function by name with the given
// arguments (used by symbolic test drivers after Run loaded the module).
func (vm *VM) CallFunction(name string, args []Value) (Value, *Exc) {
	fn, ok := vm.globals[name]
	if !ok {
		return nil, excf("NameError", "name '%s' is not defined", name)
	}
	return vm.call(fn, args)
}

const maxCallDepth = 64

type blockEntry struct {
	isFinally bool
	handler   int
	sp        int
}

type frame struct {
	code   *Code
	locals map[string]Value
	stack  []Value
	blocks []blockEntry
	ip     int
}

func (f *frame) push(v Value) { f.stack = append(f.stack, v) }

func (f *frame) pop() Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

func (f *frame) peek() Value { return f.stack[len(f.stack)-1] }

func (vm *VM) runCode(code *Code, locals map[string]Value) (Value, *Exc) {
	vm.depth++
	defer func() { vm.depth-- }()
	if vm.depth > maxCallDepth {
		return nil, excf("RuntimeError", "maximum recursion depth exceeded")
	}
	f := &frame{code: code, locals: locals}
	for {
		if f.ip >= len(code.Instrs) {
			return None, nil
		}
		in := code.Instrs[f.ip]
		vm.host.LogPC(code.HLPCAt(f.ip), uint32(in.Op))
		vm.m.Step(1)
		f.ip++
		ret, exc, done := vm.exec(f, in)
		if exc != nil {
			if !vm.unwind(f, exc) {
				return nil, exc
			}
			continue
		}
		if done {
			return ret, nil
		}
	}
}

// unwind pops frame blocks looking for a handler; it returns false when the
// exception escapes this frame.
func (vm *VM) unwind(f *frame, exc *Exc) bool {
	for len(f.blocks) > 0 {
		blk := f.blocks[len(f.blocks)-1]
		f.blocks = f.blocks[:len(f.blocks)-1]
		f.stack = f.stack[:blk.sp]
		f.push(&ExcInstanceVal{Type: exc.Type, Msg: MkStr(exc.Msg)})
		f.ip = blk.handler
		return true
	}
	return false
}

// exec executes one instruction. done reports an OpReturn.
func (vm *VM) exec(f *frame, in Instr) (ret Value, exc *Exc, done bool) {
	code := f.code
	switch in.Op {
	case OpNop:
	case OpLoadConst:
		f.push(code.Consts[in.Arg])
	case OpLoadName:
		name := code.Names[in.Arg]
		if !code.IsModule && !code.Globals[name] {
			if v, ok := f.locals[name]; ok {
				f.push(v)
				return
			}
		}
		if v, ok := vm.globals[name]; ok {
			f.push(v)
			return
		}
		if v, ok := vm.builtin(name); ok {
			f.push(v)
			return
		}
		return nil, excf("NameError", "name '%s' is not defined", name), false
	case OpStoreName:
		name := code.Names[in.Arg]
		v := f.pop()
		if code.IsModule || code.Globals[name] {
			vm.globals[name] = v
		} else {
			f.locals[name] = v
		}
	case OpDelName:
		name := code.Names[in.Arg]
		if code.IsModule || code.Globals[name] {
			delete(vm.globals, name)
		} else {
			delete(f.locals, name)
		}
	case OpPop:
		f.pop()
	case OpDup:
		f.push(f.peek())
	case OpBinary:
		r := f.pop()
		l := f.pop()
		v, e := vm.binary(int(in.Arg), l, r)
		if e != nil {
			return nil, e, false
		}
		f.push(v)
	case OpCompare:
		r := f.pop()
		l := f.pop()
		v, e := vm.compare(int(in.Arg), l, r)
		if e != nil {
			return nil, e, false
		}
		f.push(v)
	case OpUnaryNeg:
		v, e := vm.negate(f.pop())
		if e != nil {
			return nil, e, false
		}
		f.push(v)
	case OpUnaryNot:
		t, e := vm.truth(f.pop())
		if e != nil {
			return nil, e, false
		}
		f.push(BoolVal{lowlevel.NotV(t)})
	case OpJump:
		f.ip = int(in.Arg)
	case OpJumpIfFalse:
		t, e := vm.truth(f.pop())
		if e != nil {
			return nil, e, false
		}
		if !vm.m.Branch(llpcJumpCond, t) {
			f.ip = int(in.Arg)
		}
	case OpJumpIfTrue:
		t, e := vm.truth(f.pop())
		if e != nil {
			return nil, e, false
		}
		if vm.m.Branch(llpcJumpCond, t) {
			f.ip = int(in.Arg)
		}
	case OpJumpIfFalseKeep:
		t, e := vm.truth(f.peek())
		if e != nil {
			return nil, e, false
		}
		if !vm.m.Branch(llpcJumpCond, t) {
			f.ip = int(in.Arg)
		}
	case OpJumpIfTrueKeep:
		t, e := vm.truth(f.peek())
		if e != nil {
			return nil, e, false
		}
		if vm.m.Branch(llpcJumpCond, t) {
			f.ip = int(in.Arg)
		}
	case OpCall:
		n := int(in.Arg)
		args := make([]Value, n)
		for i := n - 1; i >= 0; i-- {
			args[i] = f.pop()
		}
		fn := f.pop()
		v, e := vm.call(fn, args)
		if e != nil {
			return nil, e, false
		}
		f.push(v)
	case OpReturn:
		return f.pop(), nil, true
	case OpBuildList:
		n := int(in.Arg)
		items := make([]Value, n)
		for i := n - 1; i >= 0; i-- {
			items[i] = f.pop()
		}
		f.push(&ListVal{Items: items})
	case OpBuildDict:
		n := int(in.Arg)
		d := NewDict()
		pairs := make([]Value, 2*n)
		for i := 2*n - 1; i >= 0; i-- {
			pairs[i] = f.pop()
		}
		for i := 0; i < n; i++ {
			if e := vm.dictSet(d, pairs[2*i], pairs[2*i+1]); e != nil {
				return nil, e, false
			}
		}
		f.push(d)
	case OpIndex:
		idx := f.pop()
		obj := f.pop()
		v, e := vm.index(obj, idx)
		if e != nil {
			return nil, e, false
		}
		f.push(v)
	case OpStoreIndex:
		idx := f.pop()
		obj := f.pop()
		val := f.pop()
		if e := vm.storeIndex(obj, idx, val); e != nil {
			return nil, e, false
		}
	case OpDelIndex:
		idx := f.pop()
		obj := f.pop()
		if e := vm.delIndex(obj, idx); e != nil {
			return nil, e, false
		}
	case OpSlice:
		var lo, hi Value
		if in.Arg&2 != 0 {
			hi = f.pop()
		}
		if in.Arg&1 != 0 {
			lo = f.pop()
		}
		obj := f.pop()
		v, e := vm.slice(obj, lo, hi)
		if e != nil {
			return nil, e, false
		}
		f.push(v)
	case OpAttr:
		obj := f.pop()
		v, e := vm.getattr(obj, code.Names[in.Arg])
		if e != nil {
			return nil, e, false
		}
		f.push(v)
	case OpStoreAttr:
		obj := f.pop()
		val := f.pop()
		inst, ok := obj.(*InstanceVal)
		if !ok {
			return nil, excf("AttributeError", "cannot set attributes on %s", obj.TypeName()), false
		}
		inst.Attrs[code.Names[in.Arg]] = val
	case OpGetIter:
		it, e := vm.getIter(f.pop())
		if e != nil {
			return nil, e, false
		}
		f.push(it)
	case OpForIter:
		it := f.peek().(iterator)
		v, ok, e := it.next(vm)
		if e != nil {
			return nil, e, false
		}
		if !ok {
			f.ip = int(in.Arg)
			return
		}
		f.push(v)
	case OpUnpack2:
		v := f.pop()
		lst, ok := v.(*ListVal)
		if !ok || len(lst.Items) != 2 {
			return nil, excf("ValueError", "need exactly 2 values to unpack"), false
		}
		f.push(lst.Items[0])
		f.push(lst.Items[1])
	case OpSetupExcept:
		f.blocks = append(f.blocks, blockEntry{handler: int(in.Arg), sp: len(f.stack)})
	case OpSetupFinally:
		f.blocks = append(f.blocks, blockEntry{isFinally: true, handler: int(in.Arg), sp: len(f.stack)})
	case OpPopBlock:
		f.blocks = f.blocks[:len(f.blocks)-1]
	case OpEndFinally:
		// The exception object is on the stack (pushed by unwind).
		ev := f.pop().(*ExcInstanceVal)
		return nil, &Exc{Type: ev.Type, Msg: ev.Msg.Concrete()}, false
	case OpRaise:
		switch in.Arg {
		case 0:
			return nil, excf("RuntimeError", "no active exception to re-raise"), false
		default: // 1: raise value; 2: re-raise unmatched handler exception
			v := f.pop()
			return nil, vm.toException(v), false
		}
	case OpExcMatch:
		ev := f.peek().(*ExcInstanceVal)
		want := code.Names[in.Arg]
		f.push(MkBool(excMatches(ev.Type, want)))
		vm.m.Step(1)
	case OpBindExc:
		ev := f.pop()
		if in.Arg >= 0 {
			name := code.Names[in.Arg]
			if code.IsModule || code.Globals[name] {
				vm.globals[name] = ev
			} else {
				f.locals[name] = ev
			}
		}
	case OpMakeFunc:
		cv := code.Consts[in.Arg].(*CodeVal)
		f.push(&FuncVal{Code: cv.Code, Defaults: cv.Code.Defaults})
	case OpMakeClass:
		spec := code.Consts[in.Arg].(*ClassSpecVal).Spec
		cls := &ClassVal{Name: spec.Name, Methods: map[string]*FuncVal{}, Consts: map[string]Value{}}
		if spec.Base != "" && spec.Base != "object" {
			if bv, ok := vm.globals[spec.Base]; ok {
				if bc, ok := bv.(*ClassVal); ok {
					cls.Base = bc
				}
			}
		}
		for _, mc := range spec.Methods {
			cls.Methods[mc.Name] = &FuncVal{Code: mc, Defaults: mc.Defaults, Class: cls}
		}
		for k, v := range spec.Consts {
			cls.Consts[k] = v
		}
		f.push(cls)
	case OpPrint:
		n := int(in.Arg)
		parts := make([]Value, n)
		for i := n - 1; i >= 0; i-- {
			parts[i] = f.pop()
		}
		line := ""
		for i, p := range parts {
			if i > 0 {
				line += " "
			}
			s, e := vm.str(p)
			if e != nil {
				return nil, e, false
			}
			line += s.Concrete()
		}
		vm.printed = append(vm.printed, line)
	default:
		return nil, excf("RuntimeError", "bad opcode %v", in.Op), false
	}
	return
}

// toException converts a raised value to an exception.
func (vm *VM) toException(v Value) *Exc {
	switch x := v.(type) {
	case *ExcInstanceVal:
		return &Exc{Type: x.Type, Msg: x.Msg.Concrete()}
	case *BuiltinVal:
		if builtinExceptionTypes[x.Name] {
			return &Exc{Type: x.Name}
		}
	case StrVal:
		return &Exc{Type: "RuntimeError", Msg: x.Concrete()}
	}
	return excf("TypeError", "exceptions must derive from Exception, not %s", v.TypeName())
}

// call invokes any callable value.
func (vm *VM) call(fn Value, args []Value) (Value, *Exc) {
	vm.m.Step(1)
	switch fv := fn.(type) {
	case *FuncVal:
		return vm.callFunc(fv, args)
	case *BuiltinVal:
		return fv.Fn(vm, args)
	case *ClassVal:
		inst := &InstanceVal{Class: fv, Attrs: map[string]Value{}}
		if init, ok := fv.lookup("__init__"); ok {
			bound := &FuncVal{Code: init.Code, Defaults: init.Defaults, Self: inst, Class: init.Class}
			if _, e := vm.callFunc(bound, args); e != nil {
				return nil, e
			}
		} else if len(args) > 0 {
			return nil, excf("TypeError", "%s() takes no arguments", fv.Name)
		}
		return inst, nil
	}
	return nil, excf("TypeError", "'%s' object is not callable", fn.TypeName())
}

func (vm *VM) callFunc(fv *FuncVal, args []Value) (Value, *Exc) {
	params := fv.Code.Params
	locals := make(map[string]Value, len(params))
	if fv.Self != nil {
		args = append([]Value{fv.Self}, args...)
	}
	required := len(params) - len(fv.Defaults)
	if len(args) < required || len(args) > len(params) {
		return nil, excf("TypeError", "%s() takes %d arguments (%d given)", fv.Code.Name, len(params), len(args))
	}
	for i, p := range params {
		if i < len(args) {
			locals[p] = args[i]
		} else {
			locals[p] = fv.Defaults[i-required]
		}
	}
	return vm.runCode(fv.Code, locals)
}

// truth computes the (possibly symbolic) truth value of v.
func (vm *VM) truth(v Value) (lowlevel.SVal, *Exc) {
	switch x := v.(type) {
	case NoneVal:
		return lowlevel.ConcreteBool(false), nil
	case BoolVal:
		return x.B, nil
	case IntVal:
		if x.Big != nil {
			acc := c64(0)
			for _, d := range x.Big.D {
				acc = lowlevel.OrV(acc, d)
			}
			return lowlevel.NeV(acc, c64(0)), nil
		}
		return lowlevel.NeV(x.V, c64(0)), nil
	case StrVal:
		return lowlevel.ConcreteBool(x.Len() > 0), nil
	case *ListVal:
		return lowlevel.ConcreteBool(len(x.Items) > 0), nil
	case *DictVal:
		return lowlevel.ConcreteBool(x.size > 0), nil
	default:
		return lowlevel.ConcreteBool(true), nil
	}
}

// branchTruth forks on the truth of a value at the generic truthiness site.
func (vm *VM) branchTruth(v Value) (bool, *Exc) {
	t, e := vm.truth(v)
	if e != nil {
		return false, e
	}
	return vm.m.Branch(llpcBoolTruth, t), nil
}
