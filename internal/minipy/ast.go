package minipy

// The AST mirrors the subset of Python MiniPy supports. Nodes carry source
// lines for coverage mapping and error reports.

// Node is the common interface of AST nodes.
type Node interface{ nodeLine() int }

type base struct{ Line int }

func (b base) nodeLine() int { return b.Line }

// Expressions ----------------------------------------------------------

// NumLit is an integer literal.
type NumLit struct {
	base
	Value int64
}

// StrLit is a string literal.
type StrLit struct {
	base
	Value string
}

// NameExpr references a variable.
type NameExpr struct {
	base
	Name string
}

// ConstExpr is None/True/False.
type ConstExpr struct {
	base
	Kind string // "None", "True", "False"
}

// ListLit is a list display.
type ListLit struct {
	base
	Elems []Node
}

// DictLit is a dict display.
type DictLit struct {
	base
	Keys, Values []Node
}

// BinOp is a binary arithmetic/comparison operation.
type BinOp struct {
	base
	Op   string // + - * / // % == != < <= > >= in notin
	L, R Node
}

// BoolOp is short-circuit and/or.
type BoolOp struct {
	base
	Op   string // and, or
	L, R Node
}

// UnaryOp is -x or not x.
type UnaryOp struct {
	base
	Op string // "-", "not"
	X  Node
}

// CallExpr invokes a callable.
type CallExpr struct {
	base
	Fn   Node
	Args []Node
}

// AttrExpr accesses obj.name.
type AttrExpr struct {
	base
	X    Node
	Name string
}

// IndexExpr accesses obj[idx].
type IndexExpr struct {
	base
	X, Idx Node
}

// SliceExpr accesses obj[lo:hi]; Lo/Hi may be nil.
type SliceExpr struct {
	base
	X      Node
	Lo, Hi Node
}

// Statements ------------------------------------------------------------

// Module is the root: a list of statements.
type Module struct {
	base
	Body []Node
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	base
	X Node
}

// AssignStmt is target = value, where target is a name, index, slice or
// attribute.
type AssignStmt struct {
	base
	Target Node
	Value  Node
}

// AugAssignStmt is target op= value.
type AugAssignStmt struct {
	base
	Op     string // + - * / % //
	Target Node
	Value  Node
}

// IfStmt with optional elif chain flattened into Else.
type IfStmt struct {
	base
	Cond Node
	Then []Node
	Else []Node // may be nil
}

// WhileStmt loops while Cond holds.
type WhileStmt struct {
	base
	Cond Node
	Body []Node
}

// ForStmt iterates Var (or Var,Var2) over Iter.
type ForStmt struct {
	base
	Var  string
	Var2 string // second unpack target, "" when absent
	Iter Node
	Body []Node
}

// DefStmt defines a function or method.
type DefStmt struct {
	base
	Name     string
	Params   []string
	Defaults []Node // aligned to the tail of Params
	Body     []Node
}

// ClassStmt defines a class (methods only).
type ClassStmt struct {
	base
	Name    string
	Base    string // "" when absent
	Methods []*DefStmt
	Assigns []*AssignStmt // class-level constant assignments
}

// ReturnStmt returns Value (nil for bare return).
type ReturnStmt struct {
	base
	Value Node
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ base }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ base }

// PassStmt does nothing.
type PassStmt struct{ base }

// RaiseStmt raises an exception: raise Name(args) or bare re-raise.
type RaiseStmt struct {
	base
	Exc Node // nil for bare raise
}

// TryStmt is try/except/finally.
type TryStmt struct {
	base
	Body     []Node
	Handlers []ExceptClause
	Finally  []Node
}

// ExceptClause handles exceptions of type Type (empty = all), binding As.
type ExceptClause struct {
	Line int
	Type string
	As   string
	Body []Node
}

// GlobalStmt declares names as module-globals inside a function.
type GlobalStmt struct {
	base
	Names []string
}

// DelStmt deletes a dict entry: del d[k].
type DelStmt struct {
	base
	Target Node
}

// AssertStmt raises AssertionError when Cond is false.
type AssertStmt struct {
	base
	Cond Node
	Msg  Node // optional
}
