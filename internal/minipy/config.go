package minipy

import "chef/internal/lowlevel"

// Config selects which of the §4.2 interpreter optimizations are compiled
// in, mirroring the paper's -with-symbex configure flag. The zero value is
// the vanilla interpreter.
type Config struct {
	// HashNeutralization replaces the string and integer hash functions
	// with a degenerate constant hash, turning hash-table lookups into list
	// traversals instead of solver-hostile hash inversions and per-bucket
	// forks.
	HashNeutralization bool
	// AvoidSymbolicPointers concretizes allocation sizes through
	// upper_bound instead of forking per feasible size, and disables the
	// interning of small integers and single-character strings whose cache
	// lookups otherwise turn values into symbolic pointers.
	AvoidSymbolicPointers bool
	// FastPathElimination removes short-circuited special cases (such as
	// early-exit string comparison) so whole buffers are processed on a
	// single execution path.
	FastPathElimination bool
}

// Vanilla is the unmodified interpreter build.
var Vanilla = Config{}

// Optimized is the fully optimized build (the paper's "+ Fast Path
// Elimination" configuration).
var Optimized = Config{
	HashNeutralization:    true,
	AvoidSymbolicPointers: true,
	FastPathElimination:   true,
}

// OptLevels returns the four cumulative builds of Fig. 11: no optimizations,
// + symbolic pointer avoidance, + hash neutralization, + fast path
// elimination.
func OptLevels() []Config {
	return []Config{
		{},
		{AvoidSymbolicPointers: true},
		{AvoidSymbolicPointers: true, HashNeutralization: true},
		{AvoidSymbolicPointers: true, HashNeutralization: true, FastPathElimination: true},
	}
}

// OptLevelNames returns display names aligned with OptLevels.
func OptLevelNames() []string {
	return []string{
		"No Optimizations",
		"+ Symbolic Pointer Avoidance",
		"+ Hash Neutralization",
		"+ Fast Path Elimination",
	}
}

// Low-level program counters of the MiniPy interpreter: unique identifiers
// for every branch or concretization site in the interpreter implementation,
// playing the role of x86 instruction addresses under S2E. Sites are grouped
// by the interpreter component they belong to.
const (
	llpcBase lowlevel.LLPC = 0x1000 + iota

	// VM dispatch.
	llpcJumpCond  // conditional jump on a truth value
	llpcBoolTruth // truthiness of a value
	llpcForIter   // loop-continuation branch
	llpcExcMatch  // exception type match (concrete)
	llpcCompareDispatch

	// Integer runtime.
	llpcIntOverflow // smallint overflow check promoting to bignum
	llpcIntSign     // sign branch in division/modulo adjustment
	llpcIntDivZero  // division-by-zero check
	llpcIntIntern   // small-integer interning cache lookup
	llpcIntEq
	llpcIntLt
	llpcIntNonZero

	// Bignum runtime.
	llpcBigCarry     // carry propagation branch
	llpcBigNormalize // top-digit-zero normalization branch
	llpcBigCmpDigit  // per-digit comparison branch
	llpcBigToStrLoop // quotient-nonzero branch in decimal conversion

	// String runtime.
	llpcStrEqFast     // fast-path early-exit byte comparison
	llpcStrEqFinal    // single comparison of accumulated equality flag
	llpcStrLtByte     // lexicographic comparison byte branch
	llpcStrFindPos    // per-position match branch in find
	llpcStrCharIntern // single-character string interning table lookup
	llpcStrHashBucket // hash-table bucket selection on string hash
	llpcStrIsSpace
	llpcStrIsDigit
	llpcStrIsAlpha
	llpcStrStrip
	llpcStrSplit
	llpcStrReplace
	llpcStrCount
	llpcStrAllocSize // symbolic allocation size (string repeat, int-to-str)

	// Dict runtime.
	llpcDictBucket // bucket selection fork
	llpcDictKeyCmp // key comparison while scanning a bucket
	llpcDictLookup

	// List runtime.
	llpcListIndexCheck
	llpcListEq

	// Builtins and misc.
	llpcBuiltinOrd
	llpcBuiltinChr
	llpcBuiltinInt // int(str) digit-validity branches
	llpcRangeCond
	llpcAssume
)
