// Package minipy implements MiniPy, the Python-like language whose
// interpreter serves as CHEF's first case study (§5.1 of the paper, standing
// in for CPython 2.7.3).
//
// The pipeline mirrors CPython's: source files are compiled to a
// block-structured bytecode, and a stack-based virtual machine interprets the
// bytecode. The runtime is deliberately built "the CPython way" — strings are
// byte arrays manipulated by native byte-wise loops, integers promote to
// digit-vector bignums, dictionaries are hash tables, small values are
// interned, and common operations have fast paths — because those interpreter
// internals are precisely what causes low-level path explosion under
// symbolic execution and what the §4.2 optimizations address.
package minipy

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokInt
	TokStr
	TokKeyword
	TokOp
)

var tokKindNames = [...]string{"EOF", "NEWLINE", "INDENT", "DEDENT", "NAME", "INT", "STR", "KEYWORD", "OP"}

func (k TokKind) String() string {
	if int(k) < len(tokKindNames) {
		return tokKindNames[k]
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

// Token is one lexical token with its source line for diagnostics and
// coverage mapping.
type Token struct {
	Kind TokKind
	Text string
	Int  int64 // value for TokInt
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokStr:
		return fmt.Sprintf("%q", t.Text)
	default:
		if t.Text != "" {
			return t.Text
		}
		return t.Kind.String()
	}
}

var keywords = map[string]bool{
	"def": true, "class": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "not": true, "and": true,
	"or": true, "return": true, "break": true, "continue": true,
	"pass": true, "raise": true, "try": true, "except": true,
	"finally": true, "None": true, "True": true, "False": true,
	"global": true, "del": true, "as": true, "lambda": true, "assert": true,
}

// SyntaxError reports a compilation problem with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func syntaxErrf(line int, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
