package minipy

import (
	"fmt"
	"strings"

	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// Value is a MiniPy runtime value.
type Value interface {
	// TypeName is the Python-visible type name.
	TypeName() string
}

// Exc is a raised MiniPy exception travelling up the interpreter.
type Exc struct {
	Type string
	Msg  string
}

// Error implements error for Go-side plumbing.
func (e *Exc) Error() string { return e.Type + ": " + e.Msg }

func excf(typ, format string, args ...interface{}) *Exc {
	return &Exc{Type: typ, Msg: fmt.Sprintf(format, args...)}
}

// NoneVal is the None singleton's type.
type NoneVal struct{}

// TypeName implements Value.
func (NoneVal) TypeName() string { return "NoneType" }

// None is the singleton None.
var None = NoneVal{}

// BoolVal is a boolean; its truth may be symbolic (width 1).
type BoolVal struct{ B lowlevel.SVal }

// TypeName implements Value.
func (BoolVal) TypeName() string { return "bool" }

// MkBool wraps a concrete Go bool.
func MkBool(b bool) BoolVal { return BoolVal{lowlevel.ConcreteBool(b)} }

// IntVal is an integer: a 64-bit concolic small value, or a bignum when Big
// is non-nil (mirroring CPython 2.x int/long promotion).
type IntVal struct {
	V   lowlevel.SVal // width 64, valid when Big == nil
	Big *BigInt
}

// TypeName implements Value.
func (i IntVal) TypeName() string {
	if i.Big != nil {
		return "long"
	}
	return "int"
}

// MkInt wraps a concrete Go int64 as a small int.
func MkInt(v int64) IntVal {
	return IntVal{V: lowlevel.ConcreteVal(uint64(v), symexpr.W64)}
}

// MkIntS wraps a concolic value, sign-extending it to width 64.
func MkIntS(v lowlevel.SVal) IntVal {
	return IntVal{V: lowlevel.SExtV(v, symexpr.W64)}
}

// StrVal is a byte string: a vector of width-8 concolic bytes, exactly the
// representation whose native byte-wise loops drive the paper's low-level
// path explosion.
type StrVal struct{ B []lowlevel.SVal }

// TypeName implements Value.
func (StrVal) TypeName() string { return "str" }

// MkStr builds a concrete string value.
func MkStr(s string) StrVal {
	b := make([]lowlevel.SVal, len(s))
	for i := 0; i < len(s); i++ {
		b[i] = lowlevel.ConcreteVal(uint64(s[i]), symexpr.W8)
	}
	return StrVal{B: b}
}

// Len returns the (always concrete) length.
func (s StrVal) Len() int { return len(s.B) }

// Concrete renders the concrete bytes of the string.
func (s StrVal) Concrete() string {
	var sb strings.Builder
	for _, b := range s.B {
		sb.WriteByte(byte(b.C))
	}
	return sb.String()
}

// HasSymbolicBytes reports whether any byte is symbolic.
func (s StrVal) HasSymbolicBytes() bool {
	for _, b := range s.B {
		if b.IsSymbolic() {
			return true
		}
	}
	return false
}

// ListVal is a mutable list.
type ListVal struct{ Items []Value }

// TypeName implements Value.
func (*ListVal) TypeName() string { return "list" }

// FuncVal is a user-defined function, optionally bound to a receiver.
type FuncVal struct {
	Code     *Code
	Defaults []Value
	Self     Value // non-nil for bound methods
	Class    *ClassVal
}

// TypeName implements Value.
func (*FuncVal) TypeName() string { return "function" }

// BuiltinVal is a native function.
type BuiltinVal struct {
	Name string
	Fn   func(vm *VM, args []Value) (Value, *Exc)
}

// TypeName implements Value.
func (*BuiltinVal) TypeName() string { return "builtin" }

// ClassVal is a user-defined class.
type ClassVal struct {
	Name    string
	Base    *ClassVal
	Methods map[string]*FuncVal
	Consts  map[string]Value
}

// TypeName implements Value.
func (*ClassVal) TypeName() string { return "type" }

func (c *ClassVal) lookup(name string) (*FuncVal, bool) {
	for k := c; k != nil; k = k.Base {
		if m, ok := k.Methods[name]; ok {
			return m, true
		}
		if v, ok := k.Consts[name]; ok {
			if f, ok := v.(*FuncVal); ok {
				return f, true
			}
		}
	}
	return nil, false
}

func (c *ClassVal) lookupConst(name string) (Value, bool) {
	for k := c; k != nil; k = k.Base {
		if v, ok := k.Consts[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (c *ClassVal) isSubclassOf(name string) bool {
	for k := c; k != nil; k = k.Base {
		if k.Name == name {
			return true
		}
	}
	return false
}

// InstanceVal is an instance of a user class. Attribute names are always
// concrete (they come from source text), so a Go map models CPython's
// interned-key attribute dict faithfully without spurious forking.
type InstanceVal struct {
	Class *ClassVal
	Attrs map[string]Value
}

// TypeName implements Value.
func (i *InstanceVal) TypeName() string { return i.Class.Name }

// ExcInstanceVal is a raised-able exception object created by calling one of
// the built-in exception types, e.g. ValueError("bad literal").
type ExcInstanceVal struct {
	Type string
	Msg  StrVal
}

// TypeName implements Value.
func (e *ExcInstanceVal) TypeName() string { return e.Type }

// builtinExceptionTypes lists the built-in exception hierarchy (flat, plus
// an Exception root that matches everything).
var builtinExceptionTypes = map[string]bool{
	"Exception": true, "ValueError": true, "TypeError": true,
	"KeyError": true, "IndexError": true, "ZeroDivisionError": true,
	"AttributeError": true, "NameError": true, "RuntimeError": true,
	"StopIteration": true, "OverflowError": true, "AssertionError": true,
	"NotImplementedError": true, "ArgumentError": true, "ParseError": true,
	"BadZipfile": true, "XLRDError": true, "error": true,
	"InvalidEmailError": true, "ConfigError": true, "CSVError": true,
}

// excMatches reports whether a raised exception of type raised is caught by
// a handler naming want. "Exception" catches everything built in.
func excMatches(raised, want string) bool {
	if want == "Exception" {
		return true
	}
	return raised == want
}

// Repr renders a value for diagnostics (concrete view).
func Repr(v Value) string {
	switch x := v.(type) {
	case NoneVal:
		return "None"
	case BoolVal:
		if x.B.C != 0 {
			return "True"
		}
		return "False"
	case IntVal:
		if x.Big != nil {
			return x.Big.reprConcrete()
		}
		return fmt.Sprintf("%d", x.V.Int())
	case StrVal:
		return fmt.Sprintf("%q", x.Concrete())
	case *ListVal:
		parts := make([]string, len(x.Items))
		for i, it := range x.Items {
			parts[i] = Repr(it)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *DictVal:
		return x.reprConcrete()
	case *FuncVal:
		return "<function " + x.Code.Name + ">"
	case *BuiltinVal:
		return "<builtin " + x.Name + ">"
	case *ClassVal:
		return "<class " + x.Name + ">"
	case *InstanceVal:
		return "<" + x.Class.Name + " instance>"
	case *ExcInstanceVal:
		return x.Type + "(" + fmt.Sprintf("%q", x.Msg.Concrete()) + ")"
	default:
		return fmt.Sprintf("<%T>", v)
	}
}
