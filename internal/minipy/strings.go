package minipy

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// Native string routines. These are the interpreter internals whose byte-wise
// loops make a single high-level instruction (like email.find("@")) explode
// into many low-level paths — the paper's Fig. 2/3 phenomenon. Each routine
// has a vanilla variant with CPython-style fast paths (early exits that fork
// per byte) and an optimized variant per §4.2's fast-path elimination that
// processes whole buffers on a single path.

func c8v(b byte) lowlevel.SVal { return lowlevel.ConcreteVal(uint64(b), symexpr.W8) }

func strConcat(a, b StrVal) StrVal {
	out := make([]lowlevel.SVal, 0, len(a.B)+len(b.B))
	out = append(out, a.B...)
	out = append(out, b.B...)
	return StrVal{B: out}
}

// strEq returns the equality of two strings as a width-1 value.
//
// Vanilla: CPython short-circuits on the first differing byte, so each byte
// is a branch and inequality exits early — n low-level paths. Optimized: the
// whole buffers are compared on one path, accumulating a symbolic flag; the
// single branch happens at the caller.
func (vm *VM) strEq(a, b StrVal) lowlevel.SVal {
	if len(a.B) != len(b.B) {
		return lowlevel.ConcreteBool(false) // length check is structural
	}
	if vm.cfg.FastPathElimination {
		acc := lowlevel.ConcreteBool(true)
		for i := range a.B {
			vm.m.Step(1)
			acc = lowlevel.BoolAndV(acc, lowlevel.EqV(a.B[i], b.B[i]))
		}
		return acc
	}
	for i := range a.B {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrEqFast, lowlevel.NeV(a.B[i], b.B[i])) {
			return lowlevel.ConcreteBool(false)
		}
	}
	return lowlevel.ConcreteBool(true)
}

// strCompare implements all six comparison operators.
func (vm *VM) strCompare(kind int, a, b StrVal) lowlevel.SVal {
	switch kind {
	case cmpEq:
		return vm.strEq(a, b)
	case cmpNe:
		return lowlevel.NotV(vm.strEq(a, b))
	}
	// Lexicographic comparison always walks bytes with branches; there is no
	// branch-free variant in CPython either.
	n := len(a.B)
	if len(b.B) < n {
		n = len(b.B)
	}
	for i := 0; i < n; i++ {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrLtByte, lowlevel.UltV(a.B[i], b.B[i])) {
			return lowlevel.ConcreteBool(kind == cmpLt || kind == cmpLe)
		}
		if vm.m.Branch(llpcStrLtByte, lowlevel.UltV(b.B[i], a.B[i])) {
			return lowlevel.ConcreteBool(kind == cmpGt || kind == cmpGe)
		}
	}
	switch kind {
	case cmpLt:
		return lowlevel.ConcreteBool(len(a.B) < len(b.B))
	case cmpLe:
		return lowlevel.ConcreteBool(len(a.B) <= len(b.B))
	case cmpGt:
		return lowlevel.ConcreteBool(len(a.B) > len(b.B))
	default:
		return lowlevel.ConcreteBool(len(a.B) >= len(b.B))
	}
}

// strMatchAt reports whether needle occurs in hay at position pos, as a
// width-1 value (optimized) or via early-exit branches (vanilla).
func (vm *VM) strMatchAt(hay, needle StrVal, pos int) lowlevel.SVal {
	if vm.cfg.FastPathElimination {
		acc := lowlevel.ConcreteBool(true)
		for j := range needle.B {
			vm.m.Step(1)
			acc = lowlevel.BoolAndV(acc, lowlevel.EqV(hay.B[pos+j], needle.B[j]))
		}
		return acc
	}
	for j := range needle.B {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrEqFast, lowlevel.NeV(hay.B[pos+j], needle.B[j])) {
			return lowlevel.ConcreteBool(false)
		}
	}
	return lowlevel.ConcreteBool(true)
}

// strFind returns the first occurrence of needle in hay at or after start,
// or -1 — string.find, the paper's canonical low-level path-explosion
// source: one branch per candidate position.
func (vm *VM) strFind(hay, needle StrVal, start int) int {
	if start < 0 {
		start = 0
	}
	for pos := start; pos+len(needle.B) <= len(hay.B); pos++ {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrFindPos, vm.strMatchAt(hay, needle, pos)) {
			return pos
		}
	}
	return -1
}

// strIndexChar extracts s[i] as a one-character string. In the vanilla
// interpreter single-character strings are interned: the result object is a
// table lookup at a symbolic index — a symbolic pointer resolved by forking
// per feasible byte value. The optimization allocates a fresh string.
func (vm *VM) strIndexChar(s StrVal, i int) StrVal {
	b := s.B[i]
	if !vm.cfg.AvoidSymbolicPointers && b.IsSymbolic() {
		c := vm.m.ConcretizeFork(llpcStrCharIntern, b)
		return StrVal{B: []lowlevel.SVal{c8v(byte(c))}}
	}
	return StrVal{B: []lowlevel.SVal{b}}
}

// strRepeat implements s * n. A symbolic count is an allocation with a
// symbolic size (Fig. 6): the vanilla interpreter forks per feasible size,
// the optimized one asks the solver for an upper bound and pins the size.
func (vm *VM) strRepeat(s StrVal, n IntVal) (Value, *Exc) {
	count, e := vm.allocSize(n, 4096/max(1, len(s.B)))
	if e != nil {
		return nil, e
	}
	out := make([]lowlevel.SVal, 0, count*len(s.B))
	for i := 0; i < count; i++ {
		vm.m.Step(1)
		out = append(out, s.B...)
	}
	return StrVal{B: out}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// allocSize turns a possibly-symbolic element count into a concrete
// allocation size, forking (vanilla) or using upper_bound + concretize
// (optimized), and enforcing a structural cap.
func (vm *VM) allocSize(n IntVal, cap int) (int, *Exc) {
	if n.Big != nil {
		return 0, excf("OverflowError", "repeat count out of range")
	}
	var c int64
	if !n.V.IsSymbolic() {
		c = n.V.Int()
	} else if vm.cfg.AvoidSymbolicPointers {
		ub := vm.m.UpperBound(n.V)
		if int64(ub) > int64(cap) {
			ub = uint64(cap)
		}
		_ = ub // the allocation could be sized by ub; the content length is pinned
		c = int64(vm.m.ConcretizeSilent(n.V))
	} else {
		c = int64(vm.m.ConcretizeFork(llpcStrAllocSize, n.V))
	}
	if c < 0 {
		c = 0
	}
	if c > int64(cap) {
		return 0, excf("OverflowError", "repeat count out of range")
	}
	return int(c), nil
}

func (vm *VM) listRepeat(l *ListVal, n IntVal) (Value, *Exc) {
	count, e := vm.allocSize(n, 4096/max(1, len(l.Items)))
	if e != nil {
		return nil, e
	}
	out := make([]Value, 0, count*len(l.Items))
	for i := 0; i < count; i++ {
		vm.m.Step(1)
		out = append(out, l.Items...)
	}
	return &ListVal{Items: out}, nil
}

// charClass tests used by strip/split/isdigit/…; vanilla branches per byte,
// the optimized build keeps the predicate symbolic via Ite-style arithmetic.
func isSpaceExpr(b lowlevel.SVal) lowlevel.SVal {
	sp := lowlevel.EqV(b, c8v(' '))
	for _, c := range []byte{'\t', '\n', '\r'} {
		sp = lowlevel.BoolOrV(sp, lowlevel.EqV(b, c8v(c)))
	}
	return sp
}

func isDigitExpr(b lowlevel.SVal) lowlevel.SVal {
	return lowlevel.BoolAndV(lowlevel.UleV(c8v('0'), b), lowlevel.UleV(b, c8v('9')))
}

func isAlphaExpr(b lowlevel.SVal) lowlevel.SVal {
	lower := lowlevel.BoolAndV(lowlevel.UleV(c8v('a'), b), lowlevel.UleV(b, c8v('z')))
	upper := lowlevel.BoolAndV(lowlevel.UleV(c8v('A'), b), lowlevel.UleV(b, c8v('Z')))
	return lowlevel.BoolOrV(lower, upper)
}

// strStrip removes leading/trailing whitespace (mode &1: left, &2: right).
func (vm *VM) strStrip(s StrVal, mode int) StrVal {
	lo, hi := 0, len(s.B)
	if mode&1 != 0 {
		for lo < hi {
			vm.m.Step(1)
			if !vm.m.Branch(llpcStrStrip, isSpaceExpr(s.B[lo])) {
				break
			}
			lo++
		}
	}
	if mode&2 != 0 {
		for hi > lo {
			vm.m.Step(1)
			if !vm.m.Branch(llpcStrStrip, isSpaceExpr(s.B[hi-1])) {
				break
			}
			hi--
		}
	}
	return StrVal{B: append([]lowlevel.SVal(nil), s.B[lo:hi]...)}
}

// strSplit splits on a separator; empty separator splits on whitespace runs.
func (vm *VM) strSplit(s, sep StrVal) *ListVal {
	out := &ListVal{}
	if sep.Len() == 0 {
		i := 0
		for i < len(s.B) {
			vm.m.Step(1)
			if vm.m.Branch(llpcStrSplit, isSpaceExpr(s.B[i])) {
				i++
				continue
			}
			j := i
			for j < len(s.B) {
				vm.m.Step(1)
				if vm.m.Branch(llpcStrSplit, isSpaceExpr(s.B[j])) {
					break
				}
				j++
			}
			out.Items = append(out.Items, StrVal{B: append([]lowlevel.SVal(nil), s.B[i:j]...)})
			i = j
		}
		return out
	}
	start := 0
	for {
		pos := vm.strFind(s, sep, start)
		if pos < 0 {
			out.Items = append(out.Items, StrVal{B: append([]lowlevel.SVal(nil), s.B[start:]...)})
			return out
		}
		out.Items = append(out.Items, StrVal{B: append([]lowlevel.SVal(nil), s.B[start:pos]...)})
		start = pos + sep.Len()
	}
}

// strReplace substitutes every occurrence of old with new.
func (vm *VM) strReplace(s, old, new StrVal) StrVal {
	if old.Len() == 0 {
		return s
	}
	var out []lowlevel.SVal
	start := 0
	for {
		pos := vm.strFind(s, old, start)
		vm.m.Step(1)
		if pos < 0 {
			out = append(out, s.B[start:]...)
			return StrVal{B: out}
		}
		out = append(out, s.B[start:pos]...)
		out = append(out, new.B...)
		start = pos + old.Len()
	}
}

// strRFind returns the last occurrence of needle in hay, or -1, scanning
// positions from the end with the same per-position branch structure as
// strFind.
func (vm *VM) strRFind(hay, needle StrVal) int {
	for pos := len(hay.B) - len(needle.B); pos >= 0; pos-- {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrFindPos, vm.strMatchAt(hay, needle, pos)) {
			return pos
		}
	}
	return -1
}

// strPad pads s with fill to width n (left = pad on the left, for
// rjust/zfill).
func (vm *VM) strPad(s StrVal, n int, fill byte, left bool) StrVal {
	if n <= s.Len() {
		return s
	}
	if n > 4096 {
		n = 4096
	}
	pad := make([]lowlevel.SVal, n-s.Len())
	for i := range pad {
		pad[i] = c8v(fill)
	}
	if left {
		return strConcat(StrVal{B: pad}, s)
	}
	return strConcat(s, StrVal{B: pad})
}

// strCount counts non-overlapping occurrences.
func (vm *VM) strCount(s, sub StrVal) int {
	if sub.Len() == 0 {
		return s.Len() + 1
	}
	n, start := 0, 0
	for {
		pos := vm.strFind(s, sub, start)
		if pos < 0 {
			return n
		}
		n++
		start = pos + sub.Len()
	}
}

// strLower/strUpper convert case. Vanilla consults the character-class table
// per byte (a branch); the optimized build computes the result symbolically
// on a single path.
func (vm *VM) strCaseMap(s StrVal, toLower bool) StrVal {
	out := make([]lowlevel.SVal, len(s.B))
	var lo, hi byte
	var delta uint64
	if toLower {
		lo, hi, delta = 'A', 'Z', 32
	} else {
		lo, hi, delta = 'a', 'z', 0x20 // subtract via add of two's complement at W8
	}
	for i, b := range s.B {
		vm.m.Step(1)
		inRange := lowlevel.BoolAndV(lowlevel.UleV(c8v(lo), b), lowlevel.UleV(b, c8v(hi)))
		if vm.cfg.FastPathElimination {
			// res = b + (inRange ? ±32 : 0), computed branch-free.
			d := lowlevel.MulV(lowlevel.ZExtV(inRange, symexpr.W8), lowlevel.ConcreteVal(delta, symexpr.W8))
			if toLower {
				out[i] = lowlevel.AddV(b, d)
			} else {
				out[i] = lowlevel.SubV(b, d)
			}
			continue
		}
		if vm.m.Branch(llpcStrIsAlpha, inRange) {
			if toLower {
				out[i] = lowlevel.AddV(b, c8v(32))
			} else {
				out[i] = lowlevel.SubV(b, c8v(32))
			}
		} else {
			out[i] = b
		}
	}
	return StrVal{B: out}
}

// strClassAll reports whether every byte satisfies the class predicate
// (isdigit/isalpha/isspace); empty strings are false, as in Python.
func (vm *VM) strClassAll(s StrVal, pred func(lowlevel.SVal) lowlevel.SVal, llpc lowlevel.LLPC) lowlevel.SVal {
	if s.Len() == 0 {
		return lowlevel.ConcreteBool(false)
	}
	if vm.cfg.FastPathElimination {
		acc := lowlevel.ConcreteBool(true)
		for _, b := range s.B {
			vm.m.Step(1)
			acc = lowlevel.BoolAndV(acc, pred(b))
		}
		return acc
	}
	for _, b := range s.B {
		vm.m.Step(1)
		if !vm.m.Branch(llpc, pred(b)) {
			return lowlevel.ConcreteBool(false)
		}
	}
	return lowlevel.ConcreteBool(true)
}

// strJoin joins list items with s as separator.
func (vm *VM) strJoin(s StrVal, items *ListVal) (Value, *Exc) {
	var out []lowlevel.SVal
	for i, it := range items.Items {
		sv, ok := it.(StrVal)
		if !ok {
			return nil, excf("TypeError", "sequence item %d: expected string, %s found", i, it.TypeName())
		}
		if i > 0 {
			out = append(out, s.B...)
		}
		out = append(out, sv.B...)
		vm.m.Step(1)
	}
	return StrVal{B: out}, nil
}

// strFormat implements the single-verb "%s"/"%d" formatting used by the
// packages.
func (vm *VM) strFormat(format StrVal, arg Value) (Value, *Exc) {
	var out []lowlevel.SVal
	i := 0
	used := false
	for i < len(format.B) {
		b := format.B[i]
		if !b.IsSymbolic() && byte(b.C) == '%' && i+1 < len(format.B) && !format.B[i+1].IsSymbolic() {
			verb := byte(format.B[i+1].C)
			switch verb {
			case 's', 'd':
				if used {
					return nil, excf("TypeError", "not enough arguments for format string")
				}
				sv, e := vm.str(arg)
				if e != nil {
					return nil, e
				}
				out = append(out, sv.B...)
				used = true
				i += 2
				continue
			case '%':
				out = append(out, c8v('%'))
				i += 2
				continue
			}
		}
		out = append(out, b)
		i++
	}
	return StrVal{B: out}, nil
}

// smallToStr converts a small int to decimal, with the digit-count loop
// branching per iteration on symbolic values.
func (vm *VM) smallToStr(v lowlevel.SVal) StrVal {
	neg := vm.m.Branch(llpcIntSign, lowlevel.SltV(v, c64(0)))
	mag := v
	if neg {
		mag = lowlevel.NegV(v)
	}
	var digits []lowlevel.SVal
	for i := 0; i < 20; i++ {
		vm.m.Step(1)
		digits = append(digits, lowlevel.TruncV(lowlevel.AddV(lowlevel.URemV(mag, c64(10)), c64('0')), symexpr.W8))
		mag = lowlevel.UDivV(mag, c64(10))
		if !vm.m.Branch(llpcBigToStrLoop, lowlevel.NeV(mag, c64(0))) {
			break
		}
	}
	var out []lowlevel.SVal
	if neg {
		out = append(out, c8v('-'))
	}
	for i := len(digits) - 1; i >= 0; i-- {
		out = append(out, digits[i])
	}
	return StrVal{B: out}
}

// str renders any value as a string, like CPython's str().
func (vm *VM) str(v Value) (StrVal, *Exc) {
	switch x := v.(type) {
	case StrVal:
		return x, nil
	case NoneVal:
		return MkStr("None"), nil
	case BoolVal:
		if vm.m.Branch(llpcBoolTruth, x.B) {
			return MkStr("True"), nil
		}
		return MkStr("False"), nil
	case IntVal:
		if x.Big != nil {
			return vm.bigToStr(x.Big), nil
		}
		return vm.smallToStr(x.V), nil
	case *ListVal:
		out := MkStr("[")
		for i, it := range x.Items {
			if i > 0 {
				out = strConcat(out, MkStr(", "))
			}
			// As in Python, container elements render with repr: strings
			// are quoted.
			if sv, ok := it.(StrVal); ok {
				out = strConcat(out, strConcat(MkStr("'"), strConcat(sv, MkStr("'"))))
				continue
			}
			s, e := vm.str(it)
			if e != nil {
				return StrVal{}, e
			}
			out = strConcat(out, s)
		}
		return strConcat(out, MkStr("]")), nil
	case *ExcInstanceVal:
		return x.Msg, nil
	case *InstanceVal:
		if m, ok := x.Class.lookup("__str__"); ok {
			bound := &FuncVal{Code: m.Code, Defaults: m.Defaults, Self: x, Class: m.Class}
			r, e := vm.callFunc(bound, nil)
			if e != nil {
				return StrVal{}, e
			}
			if rs, ok := r.(StrVal); ok {
				return rs, nil
			}
		}
		return MkStr("<" + x.Class.Name + " instance>"), nil
	default:
		return MkStr(Repr(v)), nil
	}
}
