package minipy

import "strconv"

// lexer turns MiniPy source into a token stream, handling Python-style
// significant indentation (INDENT/DEDENT tokens) and line continuation
// inside bracketed expressions.
type lexer struct {
	src     string
	pos     int
	line    int
	indents []int
	pending []Token
	depth   int // bracket nesting; newlines are insignificant inside
	atLine  bool
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, indents: []int{0}, atLine: true}
}

// Lex tokenizes the whole source.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) next() (Token, error) {
	if len(l.pending) > 0 {
		t := l.pending[0]
		l.pending = l.pending[1:]
		return t, nil
	}
	if l.atLine && l.depth == 0 {
		if t, emitted, err := l.handleIndent(); err != nil {
			return Token{}, err
		} else if emitted {
			return t, nil
		}
	}
	l.skipSpaces()
	c := l.peekByte()
	switch {
	case c == 0:
		// Flush remaining dedents before EOF.
		if len(l.indents) > 1 {
			l.indents = l.indents[:len(l.indents)-1]
			return Token{Kind: TokDedent, Line: l.line}, nil
		}
		return Token{Kind: TokEOF, Line: l.line}, nil
	case c == '#':
		for l.pos < len(l.src) && l.src[l.pos] != '\n' {
			l.pos++
		}
		return l.next()
	case c == '\n':
		l.pos++
		l.line++
		if l.depth > 0 {
			return l.next()
		}
		l.atLine = true
		return Token{Kind: TokNewline, Line: l.line - 1}, nil
	case c == '\\' && l.at(1) == '\n':
		l.pos += 2
		l.line++
		return l.next()
	case isDigit(c):
		return l.lexNumber()
	case isNameStart(c):
		return l.lexName()
	case c == '\'' || c == '"':
		return l.lexString()
	default:
		return l.lexOp()
	}
}

func (l *lexer) skipSpaces() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			l.pos++
		} else {
			break
		}
	}
}

// handleIndent computes the indentation of a fresh logical line and emits
// INDENT/DEDENT tokens as needed. Blank and comment-only lines are skipped.
func (l *lexer) handleIndent() (Token, bool, error) {
	for {
		start := l.pos
		col := 0
		for l.pos < len(l.src) {
			switch l.src[l.pos] {
			case ' ':
				col++
				l.pos++
				continue
			case '\t':
				col += 8 - col%8
				l.pos++
				continue
			}
			break
		}
		c := l.peekByte()
		if c == '\n' {
			l.pos++
			l.line++
			continue // blank line
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == 0 {
			l.pos = start // let next() emit dedents/EOF
			l.atLine = false
			return Token{}, false, nil
		}
		l.atLine = false
		top := l.indents[len(l.indents)-1]
		switch {
		case col > top:
			l.indents = append(l.indents, col)
			return Token{Kind: TokIndent, Line: l.line}, true, nil
		case col < top:
			var toks []Token
			for len(l.indents) > 1 && l.indents[len(l.indents)-1] > col {
				l.indents = l.indents[:len(l.indents)-1]
				toks = append(toks, Token{Kind: TokDedent, Line: l.line})
			}
			if l.indents[len(l.indents)-1] != col {
				return Token{}, false, syntaxErrf(l.line, "inconsistent indentation")
			}
			l.pending = append(l.pending, toks[1:]...)
			return toks[0], true, nil
		default:
			return Token{}, false, nil
		}
	}
}

func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool  { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isNameStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isNameChar(c byte) bool  { return isNameStart(c) || isDigit(c) }

func (l *lexer) lexNumber() (Token, error) {
	start := l.pos
	if l.peekByte() == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
		l.pos += 2
		for isHexDigit(l.peekByte()) {
			l.pos++
		}
		v, err := strconv.ParseInt(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return Token{}, syntaxErrf(l.line, "bad hex literal %q", l.src[start:l.pos])
		}
		return Token{Kind: TokInt, Int: v, Line: l.line}, nil
	}
	for isDigit(l.peekByte()) {
		l.pos++
	}
	v, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
	if err != nil {
		return Token{}, syntaxErrf(l.line, "bad int literal %q", l.src[start:l.pos])
	}
	return Token{Kind: TokInt, Int: v, Line: l.line}, nil
}

func (l *lexer) lexName() (Token, error) {
	start := l.pos
	for isNameChar(l.peekByte()) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[text] {
		return Token{Kind: TokKeyword, Text: text, Line: l.line}, nil
	}
	return Token{Kind: TokName, Text: text, Line: l.line}, nil
}

func (l *lexer) lexString() (Token, error) {
	quote := l.src[l.pos]
	l.pos++
	var buf []byte
	for {
		if l.pos >= len(l.src) {
			return Token{}, syntaxErrf(l.line, "unterminated string")
		}
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return Token{Kind: TokStr, Text: string(buf), Line: l.line}, nil
		case '\n':
			return Token{}, syntaxErrf(l.line, "newline in string")
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return Token{}, syntaxErrf(l.line, "unterminated escape")
			}
			e := l.src[l.pos]
			l.pos++
			switch e {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case 'r':
				buf = append(buf, '\r')
			case '0':
				buf = append(buf, 0)
			case '\\', '\'', '"':
				buf = append(buf, e)
			case 'x':
				if l.pos+1 >= len(l.src) || !isHexDigit(l.src[l.pos]) || !isHexDigit(l.src[l.pos+1]) {
					return Token{}, syntaxErrf(l.line, "bad \\x escape")
				}
				v, _ := strconv.ParseUint(l.src[l.pos:l.pos+2], 16, 8)
				buf = append(buf, byte(v))
				l.pos += 2
			default:
				return Token{}, syntaxErrf(l.line, "unknown escape \\%c", e)
			}
		default:
			buf = append(buf, c)
			l.pos++
		}
	}
}

var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "//": true,
	"+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"**": true,
}

func (l *lexer) lexOp() (Token, error) {
	c := l.peekByte()
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.pos += 2
			return Token{Kind: TokOp, Text: two, Line: l.line}, nil
		}
	}
	switch c {
	case '(', '[', '{':
		l.depth++
	case ')', ']', '}':
		if l.depth > 0 {
			l.depth--
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', '[', ']', '{', '}', ',', ':', '.', ';':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Line: l.line}, nil
	}
	return Token{}, syntaxErrf(l.line, "unexpected character %q", string(c))
}
