package minipy

import "chef/internal/lowlevel"

// LLPCName returns the human-readable site name of a MiniPy low-level
// program counter ("" for PCs outside this interpreter). It backs the
// obs label resolver so fork hot-spot vectors render as py/str_eq_fast
// instead of raw hex in metric dumps and Prometheus scrapes.
func LLPCName(pc lowlevel.LLPC) string {
	switch pc {
	case llpcJumpCond:
		return "py/jump_cond"
	case llpcBoolTruth:
		return "py/bool_truth"
	case llpcForIter:
		return "py/for_iter"
	case llpcExcMatch:
		return "py/exc_match"
	case llpcCompareDispatch:
		return "py/compare_dispatch"
	case llpcIntOverflow:
		return "py/int_overflow"
	case llpcIntSign:
		return "py/int_sign"
	case llpcIntDivZero:
		return "py/int_div_zero"
	case llpcIntIntern:
		return "py/int_intern"
	case llpcIntEq:
		return "py/int_eq"
	case llpcIntLt:
		return "py/int_lt"
	case llpcIntNonZero:
		return "py/int_nonzero"
	case llpcBigCarry:
		return "py/big_carry"
	case llpcBigNormalize:
		return "py/big_normalize"
	case llpcBigCmpDigit:
		return "py/big_cmp_digit"
	case llpcBigToStrLoop:
		return "py/big_to_str_loop"
	case llpcStrEqFast:
		return "py/str_eq_fast"
	case llpcStrEqFinal:
		return "py/str_eq_final"
	case llpcStrLtByte:
		return "py/str_lt_byte"
	case llpcStrFindPos:
		return "py/str_find_pos"
	case llpcStrCharIntern:
		return "py/str_char_intern"
	case llpcStrHashBucket:
		return "py/str_hash_bucket"
	case llpcStrIsSpace:
		return "py/str_isspace"
	case llpcStrIsDigit:
		return "py/str_isdigit"
	case llpcStrIsAlpha:
		return "py/str_isalpha"
	case llpcStrStrip:
		return "py/str_strip"
	case llpcStrSplit:
		return "py/str_split"
	case llpcStrReplace:
		return "py/str_replace"
	case llpcStrCount:
		return "py/str_count"
	case llpcStrAllocSize:
		return "py/str_alloc_size"
	case llpcDictBucket:
		return "py/dict_bucket"
	case llpcDictKeyCmp:
		return "py/dict_key_cmp"
	case llpcDictLookup:
		return "py/dict_lookup"
	case llpcListIndexCheck:
		return "py/list_index_check"
	case llpcListEq:
		return "py/list_eq"
	case llpcBuiltinOrd:
		return "py/builtin_ord"
	case llpcBuiltinChr:
		return "py/builtin_chr"
	case llpcBuiltinInt:
		return "py/builtin_int"
	case llpcRangeCond:
		return "py/range_cond"
	case llpcAssume:
		return "py/assume"
	}
	return ""
}
