package minipy

import (
	"chef/internal/lowlevel"
)

// iterator is the internal protocol driven by FOR_ITER.
type iterator interface {
	Value
	next(vm *VM) (Value, bool, *Exc)
}

type listIter struct {
	items []Value
	idx   int
}

func (*listIter) TypeName() string { return "listiterator" }

func (it *listIter) next(vm *VM) (Value, bool, *Exc) {
	vm.m.Step(1)
	if it.idx >= len(it.items) {
		return nil, false, nil
	}
	v := it.items[it.idx]
	it.idx++
	return v, true, nil
}

type strIter struct {
	s   StrVal
	idx int
}

func (*strIter) TypeName() string { return "striterator" }

func (it *strIter) next(vm *VM) (Value, bool, *Exc) {
	vm.m.Step(1)
	if it.idx >= it.s.Len() {
		return nil, false, nil
	}
	v := vm.strIndexChar(it.s, it.idx)
	it.idx++
	return v, true, nil
}

// rangeIter iterates 0..stop (or start..stop with step). A symbolic stop
// value branches on every iteration — the input-dependent loop of §3.2.
type rangeIter struct {
	cur  lowlevel.SVal
	stop lowlevel.SVal
	step int64
}

func (*rangeIter) TypeName() string { return "rangeiterator" }

func (it *rangeIter) next(vm *VM) (Value, bool, *Exc) {
	vm.m.Step(1)
	var cond lowlevel.SVal
	if it.step > 0 {
		cond = lowlevel.SltV(it.cur, it.stop)
	} else {
		cond = lowlevel.SltV(it.stop, it.cur)
	}
	if !vm.m.Branch(llpcRangeCond, cond) {
		return nil, false, nil
	}
	v := it.cur
	it.cur = lowlevel.AddV(it.cur, c64(uint64(it.step)))
	return IntVal{V: v}, true, nil
}

// getIter builds an iterator for a value.
func (vm *VM) getIter(v Value) (Value, *Exc) {
	vm.m.Step(1)
	switch x := v.(type) {
	case *ListVal:
		// Iterate over a snapshot, like CPython list iterators do by index;
		// a snapshot keeps replay deterministic under mutation.
		return &listIter{items: append([]Value(nil), x.Items...)}, nil
	case StrVal:
		return &strIter{s: x}, nil
	case *DictVal:
		return &listIter{items: x.dictKeys()}, nil
	case iterator:
		return x, nil
	}
	return nil, excf("TypeError", "'%s' object is not iterable", v.TypeName())
}

// index implements obj[idx].
func (vm *VM) index(obj, idx Value) (Value, *Exc) {
	vm.m.Step(1)
	switch o := obj.(type) {
	case StrVal:
		i, e := vm.seqIndex(idx, o.Len(), "string index out of range")
		if e != nil {
			return nil, e
		}
		return vm.strIndexChar(o, i), nil
	case *ListVal:
		i, e := vm.seqIndex(idx, len(o.Items), "list index out of range")
		if e != nil {
			return nil, e
		}
		return o.Items[i], nil
	case *DictVal:
		v, found, e := vm.dictLookup(o, idx)
		if e != nil {
			return nil, e
		}
		if !found {
			ks, _ := vm.str(idx)
			return nil, excf("KeyError", "%s", ks.Concrete())
		}
		return v, nil
	}
	return nil, excf("TypeError", "'%s' object is not subscriptable", obj.TypeName())
}

// seqIndex resolves a possibly-negative, possibly-symbolic index against a
// concrete length, branching on the bounds checks like the interpreter's
// index-resolution code.
func (vm *VM) seqIndex(idx Value, n int, msg string) (int, *Exc) {
	iv, ok := asInt(idx)
	if !ok {
		return 0, excf("TypeError", "indices must be integers, not %s", idx.TypeName())
	}
	if iv.Big != nil {
		return 0, excf("IndexError", "%s", msg)
	}
	v := iv.V
	if vm.m.Branch(llpcListIndexCheck, lowlevel.SltV(v, c64(0))) {
		v = lowlevel.AddV(v, c64(uint64(n)))
	}
	inBounds := lowlevel.BoolAndV(
		lowlevel.SleV(c64(0), v),
		lowlevel.SltV(v, c64(uint64(n))),
	)
	if !vm.m.Branch(llpcListIndexCheck, inBounds) {
		return 0, excf("IndexError", "%s", msg)
	}
	// The resolved index selects a memory location: a symbolic value here is
	// a symbolic pointer, concretized by forking per feasible slot.
	if v.IsSymbolic() {
		return int(vm.m.ConcretizeFork(llpcListIndexCheck+1000, v)), nil
	}
	return int(v.C), nil
}

// storeIndex implements obj[idx] = val.
func (vm *VM) storeIndex(obj, idx, val Value) *Exc {
	vm.m.Step(1)
	switch o := obj.(type) {
	case *ListVal:
		i, e := vm.seqIndex(idx, len(o.Items), "list assignment index out of range")
		if e != nil {
			return e
		}
		o.Items[i] = val
		return nil
	case *DictVal:
		return vm.dictSet(o, idx, val)
	}
	return excf("TypeError", "'%s' object does not support item assignment", obj.TypeName())
}

// delIndex implements del obj[idx].
func (vm *VM) delIndex(obj, idx Value) *Exc {
	vm.m.Step(1)
	switch o := obj.(type) {
	case *DictVal:
		found, e := vm.dictDelete(o, idx)
		if e != nil {
			return e
		}
		if !found {
			ks, _ := vm.str(idx)
			return excf("KeyError", "%s", ks.Concrete())
		}
		return nil
	case *ListVal:
		i, e := vm.seqIndex(idx, len(o.Items), "list index out of range")
		if e != nil {
			return e
		}
		o.Items = append(o.Items[:i], o.Items[i+1:]...)
		return nil
	}
	return excf("TypeError", "cannot delete items of '%s'", obj.TypeName())
}

// slice implements obj[lo:hi] with Python's clamping semantics.
func (vm *VM) slice(obj, lo, hi Value) (Value, *Exc) {
	vm.m.Step(1)
	length := 0
	switch o := obj.(type) {
	case StrVal:
		length = o.Len()
	case *ListVal:
		length = len(o.Items)
	default:
		return nil, excf("TypeError", "'%s' object is not sliceable", obj.TypeName())
	}
	l, e := vm.sliceBound(lo, 0, length)
	if e != nil {
		return nil, e
	}
	h, e := vm.sliceBound(hi, length, length)
	if e != nil {
		return nil, e
	}
	if l > length {
		l = length
	}
	if h > length {
		h = length
	}
	if h < l {
		h = l
	}
	switch o := obj.(type) {
	case StrVal:
		return StrVal{B: append([]lowlevel.SVal(nil), o.B[l:h]...)}, nil
	case *ListVal:
		return &ListVal{Items: append([]Value(nil), o.Items[l:h]...)}, nil
	}
	panic("unreachable")
}

// sliceBound resolves one slice endpoint with clamping, branching on
// symbolic bounds and concretizing the resulting offset.
func (vm *VM) sliceBound(v Value, def, n int) (int, *Exc) {
	if v == nil {
		return def, nil
	}
	if _, ok := v.(NoneVal); ok {
		return def, nil
	}
	iv, ok := asInt(v)
	if !ok {
		return 0, excf("TypeError", "slice indices must be integers")
	}
	if iv.Big != nil {
		return n, nil
	}
	x := iv.V
	if vm.m.Branch(llpcListIndexCheck, lowlevel.SltV(x, c64(0))) {
		x = lowlevel.AddV(x, c64(uint64(n)))
		if vm.m.Branch(llpcListIndexCheck, lowlevel.SltV(x, c64(0))) {
			return 0, nil
		}
	}
	if vm.m.Branch(llpcListIndexCheck, lowlevel.SltV(c64(uint64(n)), x)) {
		return n, nil
	}
	if x.IsSymbolic() {
		return int(vm.m.ConcretizeFork(llpcListIndexCheck+2000, x)), nil
	}
	return int(x.C), nil
}

// listEq compares lists element-wise.
func (vm *VM) listEq(a, b *ListVal) (lowlevel.SVal, *Exc) {
	if len(a.Items) != len(b.Items) {
		return lowlevel.ConcreteBool(false), nil
	}
	for i := range a.Items {
		vm.m.Step(1)
		eq, e := vm.valuesEqualBranch(a.Items[i], b.Items[i])
		if e != nil {
			return lowlevel.SVal{}, e
		}
		if !eq {
			return lowlevel.ConcreteBool(false), nil
		}
	}
	return lowlevel.ConcreteBool(true), nil
}
