package minipy

import (
	"fmt"
	"strings"
)

// Disasm renders a compiled program's bytecode in the style of CPython's dis
// module: one block per code object, with per-instruction offsets, source
// lines, opcode mnemonics and resolved operands. It exists for debugging
// interpreter and compiler changes and for inspecting the HLPCs CHEF sees.
func Disasm(p *Program) string {
	var sb strings.Builder
	for _, code := range p.Blocks {
		fmt.Fprintf(&sb, "block %d <%s>", code.BlockID, code.Name)
		if len(code.Params) > 0 {
			fmt.Fprintf(&sb, " params=%s", strings.Join(code.Params, ","))
		}
		sb.WriteString(":\n")
		lastLine := -1
		for i, in := range code.Instrs {
			lineCol := "    "
			if in.Line != lastLine {
				lineCol = fmt.Sprintf("%4d", in.Line)
				lastLine = in.Line
			}
			fmt.Fprintf(&sb, "%s %5d  %-20s %s\n", lineCol, i, in.Op, operandString(code, in))
		}
	}
	return sb.String()
}

func operandString(code *Code, in Instr) string {
	switch in.Op {
	case OpLoadConst, OpMakeFunc, OpMakeClass:
		if int(in.Arg) < len(code.Consts) {
			c := code.Consts[in.Arg]
			switch x := c.(type) {
			case *CodeVal:
				return fmt.Sprintf("%d (<code %s>)", in.Arg, x.Code.Name)
			case *ClassSpecVal:
				return fmt.Sprintf("%d (<class %s>)", in.Arg, x.Spec.Name)
			default:
				return fmt.Sprintf("%d (%s)", in.Arg, Repr(c))
			}
		}
	case OpLoadName, OpStoreName, OpDelName, OpAttr, OpStoreAttr, OpExcMatch:
		if int(in.Arg) < len(code.Names) {
			return fmt.Sprintf("%d (%s)", in.Arg, code.Names[in.Arg])
		}
	case OpBindExc:
		if in.Arg < 0 {
			return "(discard)"
		}
		if int(in.Arg) < len(code.Names) {
			return fmt.Sprintf("%d (%s)", in.Arg, code.Names[in.Arg])
		}
	case OpJump, OpJumpIfFalse, OpJumpIfTrue, OpJumpIfFalseKeep, OpJumpIfTrueKeep,
		OpForIter, OpSetupExcept, OpSetupFinally:
		return fmt.Sprintf("-> %d", in.Arg)
	case OpBinary:
		return binOpName(int(in.Arg))
	case OpCompare:
		return cmpOpName(int(in.Arg))
	case OpCall, OpBuildList, OpBuildDict, OpPrint:
		return fmt.Sprintf("n=%d", in.Arg)
	case OpSlice:
		return fmt.Sprintf("lo=%v hi=%v", in.Arg&1 != 0, in.Arg&2 != 0)
	case OpRaise:
		switch in.Arg {
		case 0:
			return "(bare)"
		case 2:
			return "(rethrow)"
		}
	}
	return ""
}

func cmpOpName(kind int) string {
	switch kind {
	case cmpEq:
		return "=="
	case cmpNe:
		return "!="
	case cmpLt:
		return "<"
	case cmpLe:
		return "<="
	case cmpGt:
		return ">"
	case cmpGe:
		return ">="
	case cmpIn:
		return "in"
	case cmpNotIn:
		return "not in"
	}
	return "?"
}
