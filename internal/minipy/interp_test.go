package minipy

import (
	"strings"
	"testing"

	"chef/internal/lowlevel"
)

// runSrc compiles and runs a source snippet concretely, returning printed
// output and outcome.
func runSrc(t *testing.T, src string) ([]string, Outcome) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	m := lowlevel.NewConcreteMachine(nil, 1<<22)
	var vm *VM
	var out Outcome
	status := m.RunConcrete(func(m *lowlevel.Machine) {
		vm, out = RunModule(prog, m, nil, Optimized)
	})
	if status != lowlevel.RunCompleted {
		t.Fatalf("run status %v", status)
	}
	_ = vm
	return out.Printed, out
}

// expectPrints asserts the program prints the given lines.
func expectPrints(t *testing.T, src string, want ...string) {
	t.Helper()
	got, out := runSrc(t, src)
	if out.Exception != "" {
		t.Fatalf("unexpected exception %s: %s\nprinted: %v", out.Exception, out.Message, got)
	}
	if len(got) != len(want) {
		t.Fatalf("printed %d lines %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// expectException asserts the program raises the given uncaught exception.
func expectException(t *testing.T, src, excType string) {
	t.Helper()
	_, out := runSrc(t, src)
	if out.Exception != excType {
		t.Fatalf("exception = %q (%s), want %q", out.Exception, out.Message, excType)
	}
}

func TestArithmeticAndPrint(t *testing.T) {
	expectPrints(t, `
x = 3
y = 4
print(x + y * 2)
print(x - 10)
print(17 // 5, 17 % 5)
print(-17 // 5, -17 % 5)
print(2 * 3 * 4)
`, "11", "-7", "3 2", "-4 3", "24")
}

func TestBignumPromotion(t *testing.T) {
	expectPrints(t, `
x = 2000000000
y = x + x
print(y)
z = y + y
print(z)
print(z // 1000)
print(z - z)
`, "4000000000", "8000000000", "8000000", "0")
}

func TestBignumAverageExample(t *testing.T) {
	// The paper's Fig. 2 "average" example.
	expectPrints(t, `
def average(x, y):
    return (x + y) / 2
print(average(2000000000, 2000000000))
print(average(3, 4))
`, "2000000000", "3")
}

func TestStringsBasics(t *testing.T) {
	expectPrints(t, `
s = "hello world"
print(s.find("o"))
print(s.find("o", 5))
print(s.find("zz"))
print(s.upper())
print("ABC".lower())
print(s[0], s[-1])
print(s[0:5], s[6:], s[:5])
print(len(s))
print("a" + "b" + "c")
print("ab" * 3)
print("x,y,z".split(","))
print("  pad  ".strip() + "!")
print("hello".startswith("he"), "hello".endswith("lo"))
print("hello".replace("l", "L"))
print("123".isdigit(), "12a".isdigit(), "".isdigit())
print("-".join(["a", "b", "c"]))
print("hello".count("l"))
`, "4", "7", "-1", "HELLO WORLD", "abc", "h d", "hello world hello", "11",
		"abc", "ababab", "['x', 'y', 'z']", "pad!", "True True", "heLLo",
		"True False False", "a-b-c", "2")
}

func TestStringComparisons(t *testing.T) {
	expectPrints(t, `
print("abc" == "abc", "abc" == "abd", "abc" != "abd")
print("abc" < "abd", "b" > "a", "ab" < "b")
print("@" in "user@host", "#" in "user@host")
`, "True False True", "True True True", "True False")
}

func TestListOperations(t *testing.T) {
	expectPrints(t, `
l = [1, 2, 3]
l.append(4)
print(l, len(l))
print(l.pop(), l.pop(0), l)
l.extend([7, 8])
l.insert(0, 9)
print(l)
print(l.index(7))
print(2 in l, 99 in l)
print([1, 2] + [3])
print([0] * 3)
print(l[1:2])
`, "[1, 2, 3, 4] 4", "4 1 [2, 3]", "[9, 2, 3, 7, 8]", "3", "True False",
		"[1, 2, 3]", "[0, 0, 0]", "[2]")
}

func TestDictOperations(t *testing.T) {
	expectPrints(t, `
d = {"a": 1, "b": 2}
print(d["a"], d.get("b"), d.get("zz", 99))
d["c"] = 3
print(len(d), "c" in d, "zz" in d)
print(d.keys())
del d["a"]
print(len(d), "a" in d)
d2 = {}
d2[5] = "five"
print(d2[5])
print(d.setdefault("x", 7), d["x"])
for k, v in d2.items():
    print(k, v)
`, "1 2 99", "3 True False", "['a', 'b', 'c']", "2 False", "five", "7 7", "5 five")
}

func TestControlFlow(t *testing.T) {
	expectPrints(t, `
total = 0
for i in range(5):
    if i % 2 == 0:
        total += i
    else:
        total += 1
print(total)
i = 0
while True:
    i += 1
    if i == 3:
        break
print(i)
n = 0
for i in range(10):
    if i > 2:
        continue
    n += 1
print(n)
for c in "abc":
    print(c)
`, "8", "3", "3", "a", "b", "c")
}

func TestBoolLogic(t *testing.T) {
	expectPrints(t, `
print(True and False, True or False, not True)
print(1 and 2)
print(0 or "x")
print(None == None, None != 1)
x = None
if not x:
    print("none is falsy")
if [] or {}:
    print("no")
else:
    print("empty containers falsy")
`, "False True False", "2", "x", "True True", "none is falsy", "empty containers falsy")
}

func TestFunctionsAndDefaults(t *testing.T) {
	expectPrints(t, `
def add(a, b=10):
    return a + b
print(add(1), add(1, 2))
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(10))
def outer(x):
    return inner(x) + 1
def inner(x):
    return x * 2
print(outer(5))
`, "11 3", "55", "11")
}

func TestGlobals(t *testing.T) {
	expectPrints(t, `
counter = 0
def bump():
    global counter
    counter += 1
bump()
bump()
print(counter)
`, "2")
}

func TestClasses(t *testing.T) {
	expectPrints(t, `
class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y
    def norm1(self):
        return self.x + self.y
    def shift(self, dx):
        self.x += dx
p = Point(3, 4)
print(p.norm1())
p.shift(10)
print(p.x, p.y)
class Named:
    kind = "named"
    def __init__(self):
        self.tag = Named.kind
n = Named()
print(n.tag, n.kind)
class Derived(Point):
    def norm2(self):
        return self.x * self.x + self.y * self.y
d = Derived(3, 4)
print(d.norm1(), d.norm2())
print(isinstance(d, Derived), isinstance(d, Point), isinstance(p, Derived))
`, "7", "13 4", "named named", "7 25", "True True False")
}

func TestExceptions(t *testing.T) {
	expectPrints(t, `
try:
    raise ValueError("boom")
except ValueError as e:
    print("caught", e)
try:
    x = 1 // 0
except ZeroDivisionError:
    print("div")
except Exception:
    print("other")
try:
    raise KeyError("k")
except ValueError:
    print("no")
except Exception as e:
    print("generic", e)
def thrower():
    raise IndexError("deep")
try:
    thrower()
except IndexError as e:
    print("propagated", e)
done = False
try:
    try:
        raise TypeError("t")
    finally:
        print("finally runs")
except TypeError:
    print("outer caught")
`, "caught boom", "div", "generic k", "propagated deep", "finally runs", "outer caught")
}

func TestUncaughtExceptions(t *testing.T) {
	expectException(t, `x = [1][5]`, "IndexError")
	expectException(t, `x = {}["missing"]`, "KeyError")
	expectException(t, `x = 1 // 0`, "ZeroDivisionError")
	expectException(t, `x = undefined_name`, "NameError")
	expectException(t, `x = "a" + 1`, "TypeError")
	expectException(t, `x = int("12x")`, "ValueError")
	expectException(t, `raise RuntimeError("custom")`, "RuntimeError")
	expectException(t, `x = "abc".bogus()`, "AttributeError")
}

func TestBuiltins(t *testing.T) {
	expectPrints(t, `
print(ord("A"), chr(66))
print(int("42"), int("-7"), int(" 13 "))
print(str(42), str(-3), str(0))
print(abs(-5), abs(5))
print(min(3, 1, 2), max([4, 9, 2]))
print(len("abcd"), len([1, 2]), len({"a": 1}))
print(bool(0), bool(3), bool(""))
print(list("ab"))
print(type(1), type("x"), type([]))
`, "65 B", "42 -7 13", "42 -3 0", "5 5", "1 9", "4 2 1",
		"False True False", "['a', 'b']", "int str list")
}

func TestStrFormat(t *testing.T) {
	expectPrints(t, `
print("value: %s" % "x")
print("n=%d!" % 42)
print("100%%" % "unused-free")
`, "value: x", "n=42!", "100%")
}

func TestForUnpack(t *testing.T) {
	expectPrints(t, `
pairs = [[1, "a"], [2, "b"]]
for n, s in pairs:
    print(n, s)
`, "1 a", "2 b")
}

func TestTryFinallyNoExcept(t *testing.T) {
	expectPrints(t, `
def f():
    try:
        return "early"
    finally:
        print("cleanup")
x = 0
try:
    x = 1
finally:
    x += 1
print(x)
`, "2")
}

func TestRecursionLimit(t *testing.T) {
	expectException(t, `
def loop(n):
    return loop(n + 1)
loop(0)
`, "RuntimeError")
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"if x\n    pass",
		"def f(:\n    pass",
		"x = ",
		"while",
		"x = 'unterminated",
		"try:\n    pass",
		"break",
		"  unexpected_indent = 1",
		"def f(a=1, b):\n    pass",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
}

func TestCoverableLinesAndLineOf(t *testing.T) {
	prog, err := Compile("x = 1\ny = 2\n\n# comment\nz = x + y\n")
	if err != nil {
		t.Fatal(err)
	}
	lines := prog.CoverableLines()
	for _, want := range []int{1, 2, 5} {
		if !lines[want] {
			t.Errorf("line %d should be coverable: %v", want, lines)
		}
	}
	if lines[4] {
		t.Error("comment line must not be coverable")
	}
	if got := prog.LineOf(prog.Main.HLPCAt(0)); got != 1 {
		t.Errorf("LineOf(first instr) = %d, want 1", got)
	}
}

func TestCoverageHost(t *testing.T) {
	prog, err := Compile("x = 1\nif x:\n    y = 2\nelse:\n    y = 3\n")
	if err != nil {
		t.Fatal(err)
	}
	m := lowlevel.NewConcreteMachine(nil, 1<<20)
	h := NewCoverageHost(prog)
	m.RunConcrete(func(m *lowlevel.Machine) { RunModule(prog, m, h, Vanilla) })
	if !h.Lines[3] {
		t.Errorf("then-branch line must be covered: %v", h.Lines)
	}
	if h.Lines[5] {
		t.Errorf("else-branch line must not be covered: %v", h.Lines)
	}
}

func TestHangDetectedAsStepLimit(t *testing.T) {
	prog, err := Compile("while True:\n    pass\n")
	if err != nil {
		t.Fatal(err)
	}
	m := lowlevel.NewConcreteMachine(nil, 2000)
	status := m.RunConcrete(func(m *lowlevel.Machine) { RunModule(prog, m, nil, Vanilla) })
	if status != lowlevel.RunHang {
		t.Fatalf("status = %v, want hang", status)
	}
}

func TestAllOptLevelsAgreeConcretely(t *testing.T) {
	// Property: the §4.2 optimizations preserve interpretation semantics —
	// all four builds must produce identical concrete results.
	src := `
d = {"alpha": 1, "beta": 2}
d["gamma"] = d["alpha"] + d["beta"]
s = "Hello, World"
out = []
out.append(str(d["gamma"]))
out.append(s.lower())
out.append(str(s.find("World")))
out.append(",".join(["a", "b"]))
out.append(str(12345 * 6789))
out.append(str(2000000000 + 2000000000))
print("|".join(out))
`
	var results []string
	for _, cfg := range OptLevels() {
		prog := MustCompile(src)
		m := lowlevel.NewConcreteMachine(nil, 1<<22)
		var out Outcome
		m.RunConcrete(func(m *lowlevel.Machine) { _, out = RunModule(prog, m, nil, cfg) })
		if out.Exception != "" {
			t.Fatalf("cfg %+v: exception %s: %s", cfg, out.Exception, out.Message)
		}
		results = append(results, strings.Join(out.Printed, "\n"))
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("opt level %d output differs:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
}

func TestLexerDetails(t *testing.T) {
	toks, err := Lex("x = 0x1f # comment\ns = 'a\\nb\\x41'\n")
	if err != nil {
		t.Fatal(err)
	}
	var ints []int64
	var strs []string
	for _, tk := range toks {
		switch tk.Kind {
		case TokInt:
			ints = append(ints, tk.Int)
		case TokStr:
			strs = append(strs, tk.Text)
		}
	}
	if len(ints) != 1 || ints[0] != 0x1f {
		t.Errorf("ints = %v", ints)
	}
	if len(strs) != 1 || strs[0] != "a\nbA" {
		t.Errorf("strs = %q", strs)
	}
}

func TestBracketsSpanLines(t *testing.T) {
	expectPrints(t, `
l = [1,
     2,
     3]
print(len(l))
d = {"a": 1,
     "b": 2}
print(len(d))
`, "3", "2")
}

func TestAssertStatement(t *testing.T) {
	expectPrints(t, `
assert True
assert 1 + 1 == 2, "math works"
print("passed")
`, "passed")
	expectException(t, `assert False`, "AssertionError")
	expectException(t, `assert 1 == 2, "custom message"`, "AssertionError")
}

func TestNewStringMethods(t *testing.T) {
	expectPrints(t, `
print("hello world".rfind("o"))
print("hello".rfind("zz"))
print("a\nb\nc".splitlines())
print("7".zfill(3))
print("abc".zfill(2))
print("hi".rjust(4), "|")
print("hi".ljust(4), "|")
print("hi".rjust(4, "*"))
print("a=b=c".partition("="))
print("x".partition("-"))
print("hELLO wORLD".capitalize())
`, "7", "-1", "['a', 'b', 'c']", "007", "abc", "  hi |", "hi   |", "**hi",
		"['a', '=', 'b=c']", "['x', '', '']", "Hello world")
}

func TestNewBuiltins(t *testing.T) {
	expectPrints(t, `
print(sorted([3, 1, 2]))
print(sorted(["b", "a", "c"]))
print(sorted({"z": 1, "a": 2}))
print(sum([1, 2, 3, 4]))
print(sum([]))
for pair in enumerate(["x", "y"]):
    print(pair[0], pair[1])
`, "[1, 2, 3]", "['a', 'b', 'c']", "['a', 'z']", "10", "0", "0 x", "1 y")
}

func TestDisasm(t *testing.T) {
	prog := MustCompile(`
def f(a, b=2):
    if a > b:
        return a - b
    return 0
x = f(5)
`)
	out := Disasm(prog)
	for _, want := range []string{
		"block 0 <<module>>", "<code f>", "params=a,b",
		"LOAD_NAME", "COMPARE", "JUMP_IF_FALSE", "BINARY", "RETURN", "CALL",
		"-> ", "(f)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestReprAndMiscBuiltins(t *testing.T) {
	expectPrints(t, `
print(repr("x"), repr([1, "a"]), repr(None), repr(True))
d = dict()
d["k"] = {"n": 1}
print(repr(d))
print(isinstance(1, int), isinstance("s", str), isinstance([], list))
print(isinstance({}, dict), isinstance(True, bool), isinstance(1, str))
e = ValueError("boom")
print(isinstance(e, ValueError), isinstance(e, Exception), isinstance(e, KeyError))
`, `"x" [1, "a"] None True`, `{"k": {"n": 1}}`, "True True True",
		"True True False", "True True False")
}

func TestOptLevelNamesAligned(t *testing.T) {
	if len(OptLevels()) != len(OptLevelNames()) {
		t.Fatal("OptLevels and OptLevelNames misaligned")
	}
	if OptLevelNames()[0] != "No Optimizations" {
		t.Fatal("unexpected first level name")
	}
	if OptLevels()[3] != Optimized {
		t.Fatal("last level must equal Optimized")
	}
}

func TestOutcomeResultForm(t *testing.T) {
	if (Outcome{}).Result() != "ok" {
		t.Error("empty outcome must be ok")
	}
	if (Outcome{Exception: "KeyError"}).Result() != "exception:KeyError" {
		t.Error("exception outcome form wrong")
	}
}

func TestClassStrDunder(t *testing.T) {
	expectPrints(t, `
class Wrapped:
    def __init__(self, v):
        self.v = v
    def __str__(self):
        return "<" + str(self.v) + ">"
w = Wrapped(7)
print(str(w))
print("val: %s" % w)
`, "<7>", "val: <7>")
}

func TestExceptionMessageAttr(t *testing.T) {
	expectPrints(t, `
try:
    raise ValueError("the message")
except ValueError as e:
    print(e.message)
    print(str(e))
`, "the message", "the message")
}

func TestBreakInsideTryPopsHandlerBlock(t *testing.T) {
	// Regression: break inside try used to leave the handler block on the
	// frame's block stack; a later exception in the same frame was then
	// wrongly routed into the stale handler.
	expectException(t, `
while True:
    try:
        break
    except Exception:
        print("WRONG: stale handler caught")
raise ValueError("must escape")
`, "ValueError")
	expectPrints(t, `
n = 0
for i in range(4):
    try:
        if i == 2:
            continue
        n += 1
    except Exception:
        print("WRONG")
try:
    raise KeyError("k")
except KeyError:
    print("caught", n)
`, "caught 3")
}

func TestChainedComparisonRejected(t *testing.T) {
	if _, err := Compile("x = 1 < 2 < 3"); err == nil {
		t.Fatal("chained comparison must be a compile error (Python semantics differ)")
	}
	// Parenthesized forms remain legal.
	expectPrints(t, "print((1 < 2) == True)", "True")
}

func TestExceptionEdgeCases(t *testing.T) {
	// Exception raised inside an except handler propagates outward.
	expectPrints(t, `
try:
    try:
        raise ValueError("inner")
    except ValueError:
        raise KeyError("from handler")
except KeyError as e:
    print("outer caught", e)
`, "outer caught from handler")
	// Exception inside a finally body replaces the pending exception.
	expectPrints(t, `
try:
    try:
        raise ValueError("original")
    finally:
        raise KeyError("from finally")
except KeyError:
    print("finally exception wins")
except ValueError:
    print("WRONG")
`, "finally exception wins")
	// Finally runs when the body returns through it... (not supported:
	// return skips finally — documented); instead check normal completion.
	expectPrints(t, `
log = []
try:
    log.append("body")
finally:
    log.append("fin")
print(log)
`, "['body', 'fin']")
	// Handler binding shadows then restores nothing (Python 2 keeps it).
	expectPrints(t, `
e = "before"
try:
    raise ValueError("v")
except ValueError as e:
    pass
print(e)
`, "v")
	// Nested loops with try and break interplay.
	expectPrints(t, `
total = 0
for i in range(3):
    for j in range(3):
        try:
            if j == 1:
                break
            total += 1
        except Exception:
            print("WRONG")
print(total)
`, "3")
}

func TestDeepRecursionThroughTry(t *testing.T) {
	// Exceptions crossing many frames unwind correctly.
	expectPrints(t, `
def dig(n):
    if n == 0:
        raise IndexError("bottom")
    return dig(n - 1)
try:
    dig(20)
except IndexError as e:
    print("surfaced", e)
`, "surfaced bottom")
}
