package minipy

import (
	"strings"

	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// DictVal is MiniPy's dictionary: an open-hashing table with a fixed bucket
// count, faithful to the interpreter structure that makes symbolic keys
// expensive: inserting a symbolic key (a) asks the solver to reason about
// the hash function and (b) forks per feasible bucket — unless the §4.2
// hash-neutralization optimization degenerates the hash.
type DictVal struct {
	buckets [nBuckets][]*dictEntry
	order   []*dictEntry // insertion order, for deterministic iteration
	size    int
}

const nBuckets = 8

type dictEntry struct {
	key     Value
	val     Value
	deleted bool
}

// NewDict returns an empty dictionary.
func NewDict() *DictVal { return &DictVal{} }

// Len returns the number of live entries.
func (d *DictVal) Len() int { return d.size }

// TypeName implements Value.
func (*DictVal) TypeName() string { return "dict" }

func (d *DictVal) reprConcrete() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, e := range d.order {
		if e.deleted {
			continue
		}
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(Repr(e.key))
		sb.WriteString(": ")
		sb.WriteString(Repr(e.val))
	}
	sb.WriteByte('}')
	return sb.String()
}

// hashValue computes the hash of a key as a width-64 value. With hash
// neutralization every key hashes to the same constant, honoring the hash
// contract while removing solver-hostile constraints.
func (vm *VM) hashValue(key Value) (lowlevel.SVal, *Exc) {
	if vm.cfg.HashNeutralization {
		return c64(0), nil
	}
	switch k := key.(type) {
	case IntVal:
		if k.Big != nil {
			h := c64(0)
			for _, dg := range k.Big.D {
				vm.m.Step(1)
				h = lowlevel.AddV(lowlevel.MulV(h, c64(1000003)), dg)
			}
			return h, nil
		}
		return k.V, nil
	case StrVal:
		// CPython 2.x string hash: h = h*1000003 ^ c, seeded with the first
		// byte, finalized with the length.
		h := c64(uint64(k.Len()))
		for _, b := range k.B {
			vm.m.Step(1)
			h = lowlevel.XorV(lowlevel.MulV(h, c64(1000003)), lowlevel.ZExtV(b, symexpr.W64))
		}
		return h, nil
	case BoolVal:
		return lowlevel.ZExtV(k.B, symexpr.W64), nil
	case NoneVal:
		return c64(0x23d4), nil
	}
	return lowlevel.SVal{}, excf("TypeError", "unhashable type: '%s'", key.TypeName())
}

// bucketIndex selects the bucket for a hash. A symbolic hash makes the
// bucket a symbolic table index — the engine forks one state per feasible
// bucket, strategy (a) of the paper's symbolic-pointer discussion.
func (vm *VM) bucketIndex(h lowlevel.SVal) int {
	b := lowlevel.AndV(h, c64(nBuckets-1))
	if b.IsSymbolic() {
		return int(vm.m.ConcretizeFork(llpcDictBucket, b)) & (nBuckets - 1)
	}
	return int(b.C) & (nBuckets - 1)
}

// dictSet inserts or replaces a key.
func (vm *VM) dictSet(d *DictVal, key, val Value) *Exc {
	h, exc := vm.hashValue(key)
	if exc != nil {
		return exc
	}
	idx := vm.bucketIndex(h)
	for _, e := range d.buckets[idx] {
		if e.deleted {
			continue
		}
		vm.m.Step(1)
		eq, exc := vm.valuesEqualBranch(e.key, key)
		if exc != nil {
			return exc
		}
		if eq {
			e.val = val
			return nil
		}
	}
	e := &dictEntry{key: key, val: val}
	d.buckets[idx] = append(d.buckets[idx], e)
	d.order = append(d.order, e)
	d.size++
	return nil
}

// dictLookup finds a key, scanning the bucket with per-key comparison
// branches.
func (vm *VM) dictLookup(d *DictVal, key Value) (Value, bool, *Exc) {
	h, exc := vm.hashValue(key)
	if exc != nil {
		return nil, false, exc
	}
	idx := vm.bucketIndex(h)
	for _, e := range d.buckets[idx] {
		if e.deleted {
			continue
		}
		vm.m.Step(1)
		eq, exc := vm.valuesEqualBranch(e.key, key)
		if exc != nil {
			return nil, false, exc
		}
		if eq {
			return e.val, true, nil
		}
	}
	return nil, false, nil
}

// dictDelete removes a key, reporting whether it existed.
func (vm *VM) dictDelete(d *DictVal, key Value) (bool, *Exc) {
	h, exc := vm.hashValue(key)
	if exc != nil {
		return false, exc
	}
	idx := vm.bucketIndex(h)
	for _, e := range d.buckets[idx] {
		if e.deleted {
			continue
		}
		vm.m.Step(1)
		eq, exc := vm.valuesEqualBranch(e.key, key)
		if exc != nil {
			return false, exc
		}
		if eq {
			e.deleted = true
			d.size--
			return true, nil
		}
	}
	return false, nil
}

// dictKeys returns the live keys in insertion order.
func (d *DictVal) dictKeys() []Value {
	out := make([]Value, 0, d.size)
	for _, e := range d.order {
		if !e.deleted {
			out = append(out, e.key)
		}
	}
	return out
}

// dictValues returns the live values in insertion order.
func (d *DictVal) dictValues() []Value {
	out := make([]Value, 0, d.size)
	for _, e := range d.order {
		if !e.deleted {
			out = append(out, e.val)
		}
	}
	return out
}

// dictItems returns [k, v] pairs in insertion order.
func (d *DictVal) dictItems() []Value {
	out := make([]Value, 0, d.size)
	for _, e := range d.order {
		if !e.deleted {
			out = append(out, &ListVal{Items: []Value{e.key, e.val}})
		}
	}
	return out
}
