package minipy

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// Outcome is the observable result of running a MiniPy program: normal
// completion or an uncaught exception. The experiments layer uses the
// Result string form ("ok" / "exception:<Type>") on generated test cases.
type Outcome struct {
	Exception string // empty on success
	Message   string
	Printed   []string
}

// Result renders the outcome in the canonical test-case form.
func (o Outcome) Result() string {
	if o.Exception == "" {
		return "ok"
	}
	return "exception:" + o.Exception
}

// RunModule executes a compiled program's module body on the given machine
// with the given host and configuration, returning its outcome and the VM
// (whose globals hold module state for further driver calls).
func RunModule(prog *Program, m *lowlevel.Machine, host Host, cfg Config) (*VM, Outcome) {
	vm := NewVM(prog, m, host, cfg)
	_, exc := vm.Run()
	out := Outcome{Printed: vm.Printed()}
	if exc != nil {
		out.Exception = exc.Type
		out.Message = exc.Msg
	}
	return vm, out
}

// CoverageHost records executed source lines during replay, implementing
// the coverage measurement of §6.1 (the role of Python's coverage package).
type CoverageHost struct {
	Prog  *Program
	Lines map[int]bool
}

// NewCoverageHost builds a host recording coverage for prog.
func NewCoverageHost(prog *Program) *CoverageHost {
	return &CoverageHost{Prog: prog, Lines: map[int]bool{}}
}

// LogPC implements Host.
func (h *CoverageHost) LogPC(hlpc uint64, opcode uint32) {
	if line := h.Prog.LineOf(hlpc); line > 0 {
		h.Lines[line] = true
	}
}

// SymbolicString builds a MiniPy string whose bytes are the named symbolic
// input buffer, defaulting to def (zero-padded to n).
func SymbolicString(m *lowlevel.Machine, name string, n int, def string) StrVal {
	b := make([]lowlevel.SVal, n)
	for i := 0; i < n; i++ {
		var d byte
		if i < len(def) {
			d = def[i]
		}
		b[i] = m.InputByte(name, i, d)
	}
	return StrVal{B: b}
}

// SymbolicInt builds a MiniPy int from a named 32-bit symbolic input.
func SymbolicInt(m *lowlevel.Machine, name string, def int32) IntVal {
	return MkIntS(m.InputInt32(name, def))
}

// ConcreteStringFromInput reconstructs the concrete bytes of a named input
// buffer from a test-case assignment (for replay).
func ConcreteStringFromInput(in symexpr.Assignment, name string, n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = byte(in[symexpr.Var{Buf: name, Idx: i, W: symexpr.W8}])
	}
	return string(b)
}
