package minipy

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"chef/internal/lowlevel"
)

// evalExprSrc runs `print(<expr>)` and returns the printed line.
func evalExprSrc(t *testing.T, expr string) string {
	t.Helper()
	out, res := runSrc(t, "print("+expr+")")
	if res.Exception != "" {
		t.Fatalf("%s: exception %s: %s", expr, res.Exception, res.Message)
	}
	if len(out) != 1 {
		t.Fatalf("%s: printed %v", expr, out)
	}
	return out[0]
}

// pyFloorDiv/pyMod implement Python's semantics in Go for differential
// comparison.
func pyFloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func pyMod(a, b int64) int64 {
	r := a % b
	if r != 0 && ((r < 0) != (b < 0)) {
		r += b
	}
	return r
}

// TestDivModDifferential compares MiniPy's // and % against Python's
// semantics for random operands, including negatives.
func TestDivModDifferential(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		got := evalExprSrc(t, fmt.Sprintf("%d // %d", a, b))
		want := fmt.Sprintf("%d", pyFloorDiv(int64(a), int64(b)))
		if got != want {
			t.Logf("floordiv(%d, %d) = %s, want %s", a, b, got, want)
			return false
		}
		got = evalExprSrc(t, fmt.Sprintf("%d %% %d", a, b))
		want = fmt.Sprintf("%d", pyMod(int64(a), int64(b)))
		if got != want {
			t.Logf("mod(%d, %d) = %s, want %s", a, b, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBignumDifferential compares bignum arithmetic against math/big.
func TestBignumDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		a := r.Int63n(1 << 40)
		b := r.Int63n(1 << 40)
		if r.Intn(2) == 0 {
			a = -a
		}
		if r.Intn(2) == 0 {
			b = -b
		}
		// Force promotion via multiplication of large values.
		src := fmt.Sprintf("x = %d\ny = %d\nprint(x + y)\nprint(x - y)\nprint(x * y)", a, b)
		out, res := runSrc(t, src)
		if res.Exception != "" {
			t.Fatalf("%s: %s", src, res.Exception)
		}
		ba, bb := big.NewInt(a), big.NewInt(b)
		wants := []string{
			new(big.Int).Add(ba, bb).String(),
			new(big.Int).Sub(ba, bb).String(),
			new(big.Int).Mul(ba, bb).String(),
		}
		for i, want := range wants {
			if out[i] != want {
				t.Fatalf("trial %d op %d: got %s, want %s (a=%d b=%d)", trial, i, out[i], want, a, b)
			}
		}
	}
}

// TestBignumDivisionDifferential checks // and % with big dividends and
// small concrete divisors against math/big's Euclidean-adjusted semantics.
func TestBignumDivisionDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a := (r.Int63n(1<<40) + (1 << 35))
		if r.Intn(2) == 0 {
			a = -a
		}
		b := r.Int63n(999) + 1
		src := fmt.Sprintf("x = %d * 1000\nprint(x // %d)\nprint(x %% %d)", a, b, b)
		out, res := runSrc(t, src)
		if res.Exception != "" {
			t.Fatalf("%s: %s", src, res.Exception)
		}
		wantQ := fmt.Sprintf("%d", pyFloorDiv(a*1000, b))
		wantR := fmt.Sprintf("%d", pyMod(a*1000, b))
		if out[0] != wantQ || out[1] != wantR {
			t.Fatalf("trial %d: (%d*1000) divmod %d = %s,%s; want %s,%s",
				trial, a, b, out[0], out[1], wantQ, wantR)
		}
	}
}

// randomASCII builds a printable ASCII string.
func randomASCII(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + r.Intn(94))
	}
	return string(b)
}

func quoteForMiniPy(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"', '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString("\\n")
		case '\t':
			sb.WriteString("\\t")
		case '\r':
			sb.WriteString("\\r")
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// TestStringOpsDifferential compares find/replace/upper/lower/strip/count
// against the Go strings package on random inputs.
func TestStringOpsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 50; trial++ {
		hay := randomASCII(r, 3+r.Intn(10))
		needle := randomASCII(r, 1+r.Intn(2))
		if r.Intn(3) == 0 { // sometimes guarantee a hit
			pos := r.Intn(len(hay))
			hay = hay[:pos] + needle + hay[pos:]
		}
		qh, qn := quoteForMiniPy(hay), quoteForMiniPy(needle)

		if got, want := evalExprSrc(t, qh+".find("+qn+")"), fmt.Sprint(strings.Index(hay, needle)); got != want {
			t.Fatalf("find(%q, %q) = %s, want %s", hay, needle, got, want)
		}
		if got, want := evalExprSrc(t, qh+".count("+qn+")"), fmt.Sprint(strings.Count(hay, needle)); got != want {
			t.Fatalf("count(%q, %q) = %s, want %s", hay, needle, got, want)
		}
		if got, want := evalExprSrc(t, qh+".upper()"), strings.ToUpper(hay); got != want {
			t.Fatalf("upper(%q) = %q, want %q", hay, got, want)
		}
		if got, want := evalExprSrc(t, qh+".lower()"), strings.ToLower(hay); got != want {
			t.Fatalf("lower(%q) = %q, want %q", hay, got, want)
		}
		if got, want := evalExprSrc(t, qh+".replace("+qn+", \"_\")"),
			strings.ReplaceAll(hay, needle, "_"); got != want {
			t.Fatalf("replace(%q, %q) = %q, want %q", hay, needle, got, want)
		}
		if got, want := evalExprSrc(t, qh+".startswith("+qn+")"),
			pyBool(strings.HasPrefix(hay, needle)); got != want {
			t.Fatalf("startswith(%q, %q) = %s, want %s", hay, needle, got, want)
		}
		if got, want := evalExprSrc(t, "("+qh+" < "+qn+")"), pyBool(hay < needle); got != want {
			t.Fatalf("lt(%q, %q) = %s, want %s", hay, needle, got, want)
		}
	}
}

func pyBool(b bool) string {
	if b {
		return "True"
	}
	return "False"
}

// TestStripDifferential compares strip variants against strings.Trim*.
func TestStripDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const cutset = " \t\n\r"
	for trial := 0; trial < 40; trial++ {
		pad := func() string {
			n := r.Intn(3)
			b := make([]byte, n)
			for i := range b {
				b[i] = cutset[r.Intn(len(cutset))]
			}
			return string(b)
		}
		core := randomASCII(r, 1+r.Intn(5))
		core = strings.Trim(core, cutset)
		if core == "" {
			core = "x"
		}
		s := pad() + core + pad()
		q := quoteForMiniPy(s)
		if got, want := evalExprSrc(t, q+".strip()"), strings.Trim(s, cutset); got != want {
			t.Fatalf("strip(%q) = %q, want %q", s, got, want)
		}
		if got, want := evalExprSrc(t, q+".lstrip()"), strings.TrimLeft(s, cutset); got != want {
			t.Fatalf("lstrip(%q) = %q, want %q", s, got, want)
		}
		if got, want := evalExprSrc(t, q+".rstrip()"), strings.TrimRight(s, cutset); got != want {
			t.Fatalf("rstrip(%q) = %q, want %q", s, got, want)
		}
	}
}

// TestSplitJoinRoundtrip checks sep.join(s.split(sep)) == s.
func TestSplitJoinRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		s := randomASCII(r, r.Intn(12))
		sep := string([]byte{byte('!' + r.Intn(14))})
		q, qs := quoteForMiniPy(s), quoteForMiniPy(sep)
		got := evalExprSrc(t, qs+".join("+q+".split("+qs+"))")
		if got != s {
			t.Fatalf("roundtrip(%q, sep=%q) = %q", s, sep, got)
		}
	}
}

// TestDictModelBased drives a MiniPy dict and a Go map with the same random
// operation sequence and compares observable behavior, across all
// optimization levels (hash neutralization etc. must not change semantics).
func TestDictModelBased(t *testing.T) {
	for _, cfg := range OptLevels() {
		r := rand.New(rand.NewSource(31))
		prog := MustCompile(`
d = {}
def dset(k, v):
    d[k] = v
def dget(k, default):
    return d.get(k, default)
def ddel(k):
    if k in d:
        del d[k]
        return True
    return False
def dlen():
    return len(d)
`)
		m := lowlevel.NewConcreteMachine(nil, 1<<24)
		var vm *VM
		var out Outcome
		m.RunConcrete(func(mm *lowlevel.Machine) { vm, out = RunModule(prog, mm, nil, cfg) })
		if out.Exception != "" {
			t.Fatalf("setup: %s", out.Exception)
		}
		model := map[string]int64{}
		keys := []string{"a", "b", "cc", "dd", "e1", "e2", "f", ""}
		runOp := func(f func() (Value, *Exc)) Value {
			var v Value
			var exc *Exc
			st := m.RunConcrete(func(*lowlevel.Machine) { v, exc = f() })
			if st != lowlevel.RunCompleted || exc != nil {
				t.Fatalf("dict op failed: %v %v", st, exc)
			}
			return v
		}
		for op := 0; op < 300; op++ {
			k := keys[r.Intn(len(keys))]
			switch r.Intn(4) {
			case 0: // set
				val := r.Int63n(1000)
				runOp(func() (Value, *Exc) {
					return vm.CallFunction("dset", []Value{MkStr(k), MkInt(val)})
				})
				model[k] = val
			case 1: // get
				v := runOp(func() (Value, *Exc) {
					return vm.CallFunction("dget", []Value{MkStr(k), MkInt(-1)})
				})
				want, ok := model[k]
				if !ok {
					want = -1
				}
				if got := v.(IntVal).V.Int(); got != want {
					t.Fatalf("cfg %+v get(%q) = %d, want %d", cfg, k, got, want)
				}
			case 2: // delete
				v := runOp(func() (Value, *Exc) {
					return vm.CallFunction("ddel", []Value{MkStr(k)})
				})
				_, had := model[k]
				if got := v.(BoolVal).B.C != 0; got != had {
					t.Fatalf("cfg %+v del(%q) = %v, want %v", cfg, k, got, had)
				}
				delete(model, k)
			case 3: // len
				v := runOp(func() (Value, *Exc) {
					return vm.CallFunction("dlen", nil)
				})
				if got := v.(IntVal).V.Int(); got != int64(len(model)) {
					t.Fatalf("cfg %+v len = %d, want %d", cfg, got, len(model))
				}
			}
		}
	}
}

// TestIntStrRoundtrip checks int(str(n)) == n for random values incl. big.
func TestIntStrRoundtrip(t *testing.T) {
	f := func(n int32) bool {
		got := evalExprSrc(t, fmt.Sprintf("int(str(%d)) == %d", n, n))
		return got == "True"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Big values via promotion.
	for _, expr := range []string{
		"int(str(2000000000 * 3)) == 2000000000 * 3",
		"int(str(0 - 2000000000 * 7)) == 0 - 2000000000 * 7",
	} {
		if got := evalExprSrc(t, expr); got != "True" {
			t.Errorf("%s = %s", expr, got)
		}
	}
}

// TestSliceDifferential compares slicing against Go substring semantics with
// Python's clamping rules.
func TestSliceDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pySlice := func(s string, lo, hi int) string {
		n := len(s)
		if lo < 0 {
			lo += n
			if lo < 0 {
				lo = 0
			}
		}
		if hi < 0 {
			hi += n
			if hi < 0 {
				hi = 0
			}
		}
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		if hi < lo {
			hi = lo
		}
		return s[lo:hi]
	}
	for trial := 0; trial < 60; trial++ {
		s := randomASCII(r, 1+r.Intn(8))
		lo := r.Intn(2*len(s)+3) - len(s) - 1
		hi := r.Intn(2*len(s)+3) - len(s) - 1
		q := quoteForMiniPy(s)
		got := evalExprSrc(t, fmt.Sprintf("%s[%d:%d]", q, lo, hi))
		want := pySlice(s, lo, hi)
		if got != want {
			t.Fatalf("%q[%d:%d] = %q, want %q", s, lo, hi, got, want)
		}
	}
}
