package minipy

import (
	"fmt"

	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// BigInt is MiniPy's arbitrary-precision integer, mirroring CPython's long:
// a sign and a little-endian vector of base-2^15 digits. Digit values are
// concolic, so interpreter loops over digit vectors fork low-level paths —
// the phenomenon behind the paper's "average" example (Fig. 2), where a
// single high-level path spawns many low-level ones.
type BigInt struct {
	Neg bool
	D   []lowlevel.SVal // width-64 values, each in [0, bigBase)
}

const (
	bigShift = 15
	bigBase  = 1 << bigShift
	bigMask  = bigBase - 1
)

func (b *BigInt) reprConcrete() string {
	var v int64
	for i := len(b.D) - 1; i >= 0; i-- {
		v = v*bigBase + int64(b.D[i].C)
	}
	if b.Neg {
		v = -v
	}
	return fmt.Sprintf("%dL", v)
}

// concreteMag returns the concrete magnitude (for tests and repr; valid for
// values fitting int64).
func (b *BigInt) concreteMag() uint64 {
	var v uint64
	for i := len(b.D) - 1; i >= 0; i-- {
		v = v*bigBase + b.D[i].C
	}
	return v
}

const (
	smallMax = int64(1<<31 - 1)
	smallMin = int64(-(1 << 31))
)

// smallFits branches on whether a width-64 value fits the smallint range,
// the CPython int/long promotion check.
func (vm *VM) smallFits(v lowlevel.SVal) bool {
	over := lowlevel.BoolOrV(
		lowlevel.SltV(lowlevel.ConcreteVal(uint64(smallMax), symexpr.W64), v),
		lowlevel.SltV(v, lowlevel.ConcreteVal(0xFFFFFFFF80000000, symexpr.W64)), // smallMin as two's complement
	)
	return !vm.m.Branch(llpcIntOverflow, over)
}

// bigFromSmall promotes a width-64 small value to a bignum. The sign is
// resolved by branching, as the interpreter's promotion code does.
func (vm *VM) bigFromSmall(v lowlevel.SVal) *BigInt {
	neg := vm.m.Branch(llpcIntSign, lowlevel.SltV(v, lowlevel.ConcreteVal(0, symexpr.W64)))
	mag := v
	if neg {
		mag = lowlevel.NegV(v)
	}
	out := &BigInt{Neg: neg}
	for i := 0; i < 64; i += bigShift {
		d := lowlevel.AndV(lowlevel.LShrV(mag, lowlevel.ConcreteVal(uint64(i), symexpr.W64)),
			lowlevel.ConcreteVal(bigMask, symexpr.W64))
		out.D = append(out.D, d)
	}
	return vm.bigNormalize(out)
}

// bigNormalize strips leading zero digits, branching per digit exactly as an
// interpreter's normalization loop does on symbolic lengths.
func (vm *VM) bigNormalize(b *BigInt) *BigInt {
	n := len(b.D)
	for n > 1 {
		top := b.D[n-1]
		if vm.m.Branch(llpcBigNormalize, lowlevel.NeV(top, lowlevel.ConcreteVal(0, symexpr.W64))) {
			break
		}
		n--
	}
	b.D = b.D[:n]
	return b
}

// bigCmpMag compares magnitudes, returning -1, 0 or 1, branching per digit.
func (vm *VM) bigCmpMag(a, b *BigInt) int {
	if len(a.D) != len(b.D) {
		if len(a.D) < len(b.D) {
			return -1
		}
		return 1
	}
	for i := len(a.D) - 1; i >= 0; i-- {
		vm.m.Step(1)
		if vm.m.Branch(llpcBigCmpDigit, lowlevel.UltV(a.D[i], b.D[i])) {
			return -1
		}
		if vm.m.Branch(llpcBigCmpDigit, lowlevel.UltV(b.D[i], a.D[i])) {
			return 1
		}
	}
	return 0
}

// bigCmp compares signed bignums.
func (vm *VM) bigCmp(a, b *BigInt) int {
	if a.Neg != b.Neg {
		if vm.bigIsZero(a) && vm.bigIsZero(b) {
			return 0
		}
		if a.Neg {
			return -1
		}
		return 1
	}
	c := vm.bigCmpMag(a, b)
	if a.Neg {
		return -c
	}
	return c
}

func (vm *VM) bigIsZero(b *BigInt) bool {
	for _, d := range b.D {
		if vm.m.Branch(llpcBigNormalize, lowlevel.NeV(d, lowlevel.ConcreteVal(0, symexpr.W64))) {
			return false
		}
	}
	return true
}

func c64(v uint64) lowlevel.SVal { return lowlevel.ConcreteVal(v, symexpr.W64) }

// bigAddMag adds magnitudes with a carry chain.
func (vm *VM) bigAddMag(a, b *BigInt) []lowlevel.SVal {
	n := len(a.D)
	if len(b.D) > n {
		n = len(b.D)
	}
	out := make([]lowlevel.SVal, 0, n+1)
	carry := c64(0)
	for i := 0; i < n; i++ {
		vm.m.Step(1)
		s := carry
		if i < len(a.D) {
			s = lowlevel.AddV(s, a.D[i])
		}
		if i < len(b.D) {
			s = lowlevel.AddV(s, b.D[i])
		}
		out = append(out, lowlevel.AndV(s, c64(bigMask)))
		carry = lowlevel.LShrV(s, c64(bigShift))
	}
	out = append(out, carry)
	return out
}

// bigSubMag computes |a| - |b| assuming |a| >= |b|, with a borrow chain.
func (vm *VM) bigSubMag(a, b *BigInt) []lowlevel.SVal {
	out := make([]lowlevel.SVal, 0, len(a.D))
	borrow := c64(0)
	for i := 0; i < len(a.D); i++ {
		vm.m.Step(1)
		s := lowlevel.SubV(a.D[i], borrow)
		if i < len(b.D) {
			s = lowlevel.SubV(s, b.D[i])
		}
		out = append(out, lowlevel.AndV(s, c64(bigMask)))
		// Borrow is bit 63 of the (wrapped) subtraction result shifted
		// down: if the subtraction went negative, s is huge unsigned.
		borrow = lowlevel.AndV(lowlevel.LShrV(s, c64(63)), c64(1))
	}
	return out
}

// bigAdd adds signed bignums.
func (vm *VM) bigAdd(a, b *BigInt) *BigInt {
	if a.Neg == b.Neg {
		return vm.bigNormalize(&BigInt{Neg: a.Neg, D: vm.bigAddMag(a, b)})
	}
	switch vm.bigCmpMag(a, b) {
	case 0:
		return &BigInt{D: []lowlevel.SVal{c64(0)}}
	case 1:
		return vm.bigNormalize(&BigInt{Neg: a.Neg, D: vm.bigSubMag(a, b)})
	default:
		return vm.bigNormalize(&BigInt{Neg: b.Neg, D: vm.bigSubMag(b, a)})
	}
}

// bigNeg returns -a.
func (vm *VM) bigNeg(a *BigInt) *BigInt {
	return &BigInt{Neg: !a.Neg && !vm.bigIsZero(a), D: a.D}
}

// bigSub subtracts signed bignums.
func (vm *VM) bigSub(a, b *BigInt) *BigInt {
	return vm.bigAdd(a, vm.bigNeg(b))
}

// bigMul multiplies signed bignums with the schoolbook algorithm.
func (vm *VM) bigMul(a, b *BigInt) *BigInt {
	n, m := len(a.D), len(b.D)
	acc := make([]lowlevel.SVal, n+m)
	for i := range acc {
		acc[i] = c64(0)
	}
	for i := 0; i < n; i++ {
		carry := c64(0)
		for j := 0; j < m; j++ {
			vm.m.Step(1)
			t := lowlevel.AddV(lowlevel.AddV(acc[i+j], lowlevel.MulV(a.D[i], b.D[j])), carry)
			acc[i+j] = lowlevel.AndV(t, c64(bigMask))
			carry = lowlevel.LShrV(t, c64(bigShift))
		}
		acc[i+m] = lowlevel.AddV(acc[i+m], carry)
	}
	return vm.bigNormalize(&BigInt{Neg: a.Neg != b.Neg, D: acc})
}

// bigDivModSmall divides a magnitude by a concrete small divisor, returning
// quotient digits and the remainder. The divisor is concrete (MiniPy's long
// division by symbolic divisors concretizes first, like CPython's slow path
// would explode; packages only divide by constants).
func (vm *VM) bigDivModSmall(a *BigInt, div uint64) ([]lowlevel.SVal, lowlevel.SVal) {
	q := make([]lowlevel.SVal, len(a.D))
	rem := c64(0)
	for i := len(a.D) - 1; i >= 0; i-- {
		vm.m.Step(1)
		cur := lowlevel.AddV(lowlevel.MulV(rem, c64(bigBase)), a.D[i])
		q[i] = lowlevel.UDivV(cur, c64(div))
		rem = lowlevel.URemV(cur, c64(div))
	}
	return q, rem
}

// bigToSmall demotes a bignum that fits the small range back to a width-64
// value; ok is false when it does not fit (checked by branching on the top
// digits).
func (vm *VM) bigToSmall(b *BigInt) (lowlevel.SVal, bool) {
	// Fits when at most 3 digits (45 bits < 63) — a concrete structural
	// check followed by value reconstruction.
	if len(b.D) > 3 {
		return lowlevel.SVal{}, false
	}
	v := c64(0)
	for i := len(b.D) - 1; i >= 0; i-- {
		v = lowlevel.AddV(lowlevel.MulV(v, c64(bigBase)), b.D[i])
	}
	if b.Neg {
		v = lowlevel.NegV(v)
	}
	return v, true
}

// bigToStr converts to decimal, looping divmod-by-10 while the quotient is
// nonzero — each iteration branches, so symbolic magnitudes fork one path
// per possible digit count.
func (vm *VM) bigToStr(b *BigInt) StrVal {
	var digits []lowlevel.SVal
	cur := &BigInt{D: append([]lowlevel.SVal(nil), b.D...)}
	for i := 0; ; i++ {
		q, r := vm.bigDivModSmall(cur, 10)
		digits = append(digits, lowlevel.TruncV(lowlevel.AddV(r, c64('0')), symexpr.W8))
		cur = vm.bigNormalize(&BigInt{D: q})
		if !vm.m.Branch(llpcBigToStrLoop, lowlevel.NeV(cur.D[len(cur.D)-1], c64(0))) && len(cur.D) == 1 {
			break
		}
		if i > 64 { // structural bound: 64 decimal digits cover 4 bigBase digits
			break
		}
	}
	var out []lowlevel.SVal
	if b.Neg {
		out = append(out, lowlevel.ConcreteVal('-', symexpr.W8))
	}
	for i := len(digits) - 1; i >= 0; i-- {
		out = append(out, digits[i])
	}
	return StrVal{B: out}
}
