package minipy

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// binary dispatches an arithmetic operator over the operand types, exactly
// like the interpreter's BINARY_* handlers.
func (vm *VM) binary(kind int, l, r Value) (Value, *Exc) {
	vm.m.Step(1)
	// int op int (bools coerce to ints, as in Python)
	li, lok := asInt(l)
	ri, rok := asInt(r)
	if lok && rok {
		return vm.intBinary(kind, li, ri)
	}
	switch kind {
	case binAdd:
		if ls, ok := l.(StrVal); ok {
			if rs, ok := r.(StrVal); ok {
				return strConcat(ls, rs), nil
			}
			return nil, excf("TypeError", "cannot concatenate 'str' and '%s'", r.TypeName())
		}
		if ll, ok := l.(*ListVal); ok {
			if rl, ok := r.(*ListVal); ok {
				items := append(append([]Value{}, ll.Items...), rl.Items...)
				return &ListVal{Items: items}, nil
			}
		}
	case binMul:
		if ls, ok := l.(StrVal); ok && rok {
			return vm.strRepeat(ls, ri)
		}
		if rs, ok := r.(StrVal); ok && lok {
			return vm.strRepeat(rs, li)
		}
		if ll, ok := l.(*ListVal); ok && rok {
			return vm.listRepeat(ll, ri)
		}
	case binMod:
		if ls, ok := l.(StrVal); ok {
			// "fmt" % value — a single %s / %d substitution.
			return vm.strFormat(ls, r)
		}
	}
	return nil, excf("TypeError", "unsupported operand types for %s: '%s' and '%s'",
		binOpName(kind), l.TypeName(), r.TypeName())
}

func binOpName(kind int) string {
	switch kind {
	case binAdd:
		return "+"
	case binSub:
		return "-"
	case binMul:
		return "*"
	case binDiv:
		return "/"
	case binFloorDiv:
		return "//"
	case binMod:
		return "%"
	}
	return "?"
}

// asInt coerces ints and bools to IntVal.
func asInt(v Value) (IntVal, bool) {
	switch x := v.(type) {
	case IntVal:
		return x, true
	case BoolVal:
		return IntVal{V: lowlevel.ZExtV(x.B, symexpr.W64)}, true
	}
	return IntVal{}, false
}

// intBinary implements integer arithmetic with CPython's small/long split:
// small results that overflow the 32-bit range promote to digit-vector
// bignums, and results pass through the small-integer interning cache unless
// the symbolic-pointer optimization disables it.
func (vm *VM) intBinary(kind int, a, b IntVal) (Value, *Exc) {
	if a.Big != nil || b.Big != nil {
		return vm.bigBinary(kind, vm.toBig(a), vm.toBig(b))
	}
	switch kind {
	case binAdd, binSub, binMul:
		var r lowlevel.SVal
		switch kind {
		case binAdd:
			r = lowlevel.AddV(a.V, b.V)
		case binSub:
			r = lowlevel.SubV(a.V, b.V)
		default:
			r = lowlevel.MulV(a.V, b.V)
		}
		if vm.smallFits(r) {
			return vm.internInt(IntVal{V: r}), nil
		}
		return vm.bigBinary(kind, vm.toBig(a), vm.toBig(b))
	case binDiv, binFloorDiv:
		q, _, e := vm.intDivMod(a.V, b.V)
		if e != nil {
			return nil, e
		}
		return vm.internInt(IntVal{V: q}), nil
	case binMod:
		_, r, e := vm.intDivMod(a.V, b.V)
		if e != nil {
			return nil, e
		}
		return vm.internInt(IntVal{V: r}), nil
	}
	return nil, excf("TypeError", "bad int operator")
}

// toBig promotes an IntVal to bignum form.
func (vm *VM) toBig(v IntVal) *BigInt {
	if v.Big != nil {
		return v.Big
	}
	return vm.bigFromSmall(v.V)
}

// fromBig demotes when possible, as CPython normalizes small longs.
func (vm *VM) fromBig(b *BigInt) Value {
	if v, ok := vm.bigToSmall(b); ok && vm.smallFits(v) {
		return vm.internInt(IntVal{V: v})
	}
	return IntVal{Big: b}
}

func (vm *VM) bigBinary(kind int, a, b *BigInt) (Value, *Exc) {
	switch kind {
	case binAdd:
		return vm.fromBig(vm.bigAdd(a, b)), nil
	case binSub:
		return vm.fromBig(vm.bigSub(a, b)), nil
	case binMul:
		return vm.fromBig(vm.bigMul(a, b)), nil
	case binDiv, binFloorDiv, binMod:
		// Long division requires a concrete small divisor; concretize it the
		// way CHEF's guest would for an intractable operation.
		sv, ok := vm.bigToSmall(b)
		if !ok {
			return nil, excf("OverflowError", "division by huge long not supported")
		}
		div := vm.m.ConcretizeSilent(sv)
		if int64(div) == 0 {
			return nil, excf("ZeroDivisionError", "integer division or modulo by zero")
		}
		if int64(div) < 0 {
			return nil, excf("OverflowError", "negative long divisor not supported")
		}
		q, rem := vm.bigDivModSmall(a, div)
		qb := vm.bigNormalize(&BigInt{Neg: a.Neg, D: q})
		if kind == binMod {
			if a.Neg {
				// Python: remainder takes the divisor's sign.
				if vm.m.Branch(llpcIntSign, lowlevel.NeV(rem, c64(0))) {
					rem = lowlevel.SubV(c64(div), rem)
				}
			}
			return vm.internInt(IntVal{V: rem}), nil
		}
		if a.Neg && vm.m.Branch(llpcIntSign, lowlevel.NeV(rem, c64(0))) {
			qb = vm.bigAdd(qb, &BigInt{Neg: true, D: []lowlevel.SVal{c64(1)}})
		}
		return vm.fromBig(qb), nil
	}
	return nil, excf("TypeError", "bad long operator")
}

// intDivMod implements Python floor division and modulo on small ints, with
// the divisor-zero check and the sign-adjustment branches the interpreter
// performs.
func (vm *VM) intDivMod(a, b lowlevel.SVal) (q, r lowlevel.SVal, exc *Exc) {
	if vm.m.Branch(llpcIntDivZero, lowlevel.EqV(b, c64(0))) {
		return q, r, excf("ZeroDivisionError", "integer division or modulo by zero")
	}
	zero := c64(0)
	na := vm.m.Branch(llpcIntSign, lowlevel.SltV(a, zero))
	nb := vm.m.Branch(llpcIntSign, lowlevel.SltV(b, zero))
	am, bm := a, b
	if na {
		am = lowlevel.NegV(a)
	}
	if nb {
		bm = lowlevel.NegV(b)
	}
	qm := lowlevel.UDivV(am, bm)
	rm := lowlevel.URemV(am, bm)
	if na == nb {
		q = qm
		if na {
			r = lowlevel.NegV(rm)
			// Python: r sign follows divisor; for both negative, r <= 0. ✓
		} else {
			r = rm
		}
		return q, r, nil
	}
	// Signs differ: floor rounds away from zero when a remainder exists.
	if vm.m.Branch(llpcIntSign, lowlevel.NeV(rm, zero)) {
		q = lowlevel.NegV(lowlevel.AddV(qm, c64(1)))
		r = lowlevel.SubV(bm, rm)
		if nb {
			r = lowlevel.NegV(r)
		}
	} else {
		q = lowlevel.NegV(qm)
		r = zero
	}
	return q, r, nil
}

// internInt models CPython's small-integer cache: when interning is active
// (the vanilla interpreter) a symbolic value in the cached range becomes a
// lookup at a symbolic table index — a symbolic pointer, which the engine
// must resolve by forking per feasible value. The symbolic-pointer
// optimization (§4.2) removes the cache.
func (vm *VM) internInt(v IntVal) Value {
	if vm.cfg.AvoidSymbolicPointers || !v.V.IsSymbolic() {
		return v
	}
	inRange := lowlevel.BoolAndV(
		lowlevel.SleV(c64(^uint64(4)), v.V), // -5 <= v (two's complement)
		lowlevel.SltV(v.V, c64(257)),
	)
	if vm.m.Branch(llpcIntIntern, inRange) {
		c := vm.m.ConcretizeFork(llpcIntIntern+1000, v.V)
		return MkInt(int64(c))
	}
	return v
}

// negate implements unary minus.
func (vm *VM) negate(v Value) (Value, *Exc) {
	i, ok := asInt(v)
	if !ok {
		return nil, excf("TypeError", "bad operand type for unary -: '%s'", v.TypeName())
	}
	if i.Big != nil {
		return IntVal{Big: vm.bigNeg(i.Big)}, nil
	}
	r := lowlevel.NegV(i.V)
	if vm.smallFits(r) {
		return vm.internInt(IntVal{V: r}), nil
	}
	return IntVal{Big: vm.bigFromSmall(r)}, nil
}

// compare dispatches comparison operators.
func (vm *VM) compare(kind int, l, r Value) (Value, *Exc) {
	vm.m.Step(1)
	switch kind {
	case cmpIn, cmpNotIn:
		b, e := vm.contains(r, l)
		if e != nil {
			return nil, e
		}
		if kind == cmpNotIn {
			b = lowlevel.NotV(b)
		}
		return BoolVal{b}, nil
	}
	li, lok := asInt(l)
	ri, rok := asInt(r)
	if lok && rok {
		return BoolVal{vm.intCompare(kind, li, ri)}, nil
	}
	ls, lsok := l.(StrVal)
	rs, rsok := r.(StrVal)
	if lsok && rsok {
		return BoolVal{vm.strCompare(kind, ls, rs)}, nil
	}
	ll, llok := l.(*ListVal)
	rl, rlok := r.(*ListVal)
	if llok && rlok && (kind == cmpEq || kind == cmpNe) {
		b, e := vm.listEq(ll, rl)
		if e != nil {
			return nil, e
		}
		if kind == cmpNe {
			b = lowlevel.NotV(b)
		}
		return BoolVal{b}, nil
	}
	// Cross-type and identity-style comparisons.
	switch kind {
	case cmpEq:
		return MkBool(vm.shallowEqual(l, r)), nil
	case cmpNe:
		return MkBool(!vm.shallowEqual(l, r)), nil
	}
	return nil, excf("TypeError", "unorderable types: %s and %s", l.TypeName(), r.TypeName())
}

// shallowEqual covers cross-type == (always false in MiniPy, as in Python
// for distinct types) and reference equality for containers.
func (vm *VM) shallowEqual(l, r Value) bool {
	if _, ok := l.(NoneVal); ok {
		_, ok2 := r.(NoneVal)
		return ok2
	}
	if _, ok := r.(NoneVal); ok {
		return false
	}
	if ld, ok := l.(*DictVal); ok {
		rd, ok2 := r.(*DictVal)
		return ok2 && ld == rd
	}
	if ll, ok := l.(*ListVal); ok {
		rl, ok2 := r.(*ListVal)
		return ok2 && ll == rl
	}
	if li, ok := l.(*InstanceVal); ok {
		ri, ok2 := r.(*InstanceVal)
		return ok2 && li == ri
	}
	return false
}

func (vm *VM) intCompare(kind int, a, b IntVal) lowlevel.SVal {
	if a.Big != nil || b.Big != nil {
		c := vm.bigCmp(vm.toBig(a), vm.toBig(b))
		switch kind {
		case cmpEq:
			return lowlevel.ConcreteBool(c == 0)
		case cmpNe:
			return lowlevel.ConcreteBool(c != 0)
		case cmpLt:
			return lowlevel.ConcreteBool(c < 0)
		case cmpLe:
			return lowlevel.ConcreteBool(c <= 0)
		case cmpGt:
			return lowlevel.ConcreteBool(c > 0)
		default:
			return lowlevel.ConcreteBool(c >= 0)
		}
	}
	switch kind {
	case cmpEq:
		return lowlevel.EqV(a.V, b.V)
	case cmpNe:
		return lowlevel.NeV(a.V, b.V)
	case cmpLt:
		return lowlevel.SltV(a.V, b.V)
	case cmpLe:
		return lowlevel.SleV(a.V, b.V)
	case cmpGt:
		return lowlevel.SltV(b.V, a.V)
	default:
		return lowlevel.SleV(b.V, a.V)
	}
}

// contains implements `x in container`.
func (vm *VM) contains(container, x Value) (lowlevel.SVal, *Exc) {
	switch c := container.(type) {
	case StrVal:
		xs, ok := x.(StrVal)
		if !ok {
			return lowlevel.SVal{}, excf("TypeError", "'in <string>' requires string operand")
		}
		pos := vm.strFind(c, xs, 0)
		return lowlevel.ConcreteBool(pos >= 0), nil
	case *ListVal:
		for _, it := range c.Items {
			eq, e := vm.valuesEqualBranch(it, x)
			if e != nil {
				return lowlevel.SVal{}, e
			}
			if eq {
				return lowlevel.ConcreteBool(true), nil
			}
		}
		return lowlevel.ConcreteBool(false), nil
	case *DictVal:
		_, found, e := vm.dictLookup(c, x)
		if e != nil {
			return lowlevel.SVal{}, e
		}
		return lowlevel.ConcreteBool(found), nil
	}
	return lowlevel.SVal{}, excf("TypeError", "argument of type '%s' is not iterable", container.TypeName())
}

// valuesEqualBranch decides equality of two values, branching on symbolic
// comparisons (used by list membership and dict key scans).
func (vm *VM) valuesEqualBranch(a, b Value) (bool, *Exc) {
	vm.m.Step(1)
	ai, aok := asInt(a)
	bi, bok := asInt(b)
	if aok && bok {
		return vm.m.Branch(llpcIntEq, vm.intCompare(cmpEq, ai, bi)), nil
	}
	as, asok := a.(StrVal)
	bs, bsok := b.(StrVal)
	if asok && bsok {
		return vm.m.Branch(llpcStrEqFinal, vm.strEq(as, bs)), nil
	}
	if _, ok := a.(NoneVal); ok {
		_, ok2 := b.(NoneVal)
		return ok2, nil
	}
	return vm.shallowEqual(a, b), nil
}
