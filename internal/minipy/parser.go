package minipy

// Recursive-descent parser for MiniPy.

type parser struct {
	toks []Token
	pos  int
}

// Parse builds the module AST for a MiniPy source file.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var body []Node
	for !p.atEOF() {
		if p.skipNewlines() {
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	return &Module{base: base{Line: 1}, Body: body}, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) advance() Token {
	t := p.cur()
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) skipNewlines() bool {
	skipped := false
	for p.cur().Kind == TokNewline {
		p.advance()
		skipped = true
	}
	return skipped
}

func (p *parser) isOp(text string) bool {
	t := p.cur()
	return t.Kind == TokOp && t.Text == text
}

func (p *parser) isKw(text string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == text
}

func (p *parser) acceptOp(text string) bool {
	if p.isOp(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptKw(text string) bool {
	if p.isKw(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(text string) error {
	if !p.acceptOp(text) {
		return syntaxErrf(p.cur().Line, "expected %q, got %s", text, p.cur())
	}
	return nil
}

func (p *parser) expectKind(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, syntaxErrf(p.cur().Line, "expected %s, got %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) expectNewline() error {
	if p.cur().Kind == TokNewline {
		p.advance()
		return nil
	}
	if p.atEOF() || p.cur().Kind == TokDedent {
		return nil
	}
	return syntaxErrf(p.cur().Line, "expected end of line, got %s", p.cur())
}

// block parses NEWLINE INDENT stmt+ DEDENT.
func (p *parser) block() ([]Node, error) {
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	// Inline single statement: "if x: return"
	if p.cur().Kind != TokNewline {
		st, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		return []Node{st}, nil
	}
	p.advance() // newline
	if _, err := p.expectKind(TokIndent); err != nil {
		return nil, err
	}
	var body []Node
	for {
		if p.skipNewlines() {
			continue
		}
		if p.cur().Kind == TokDedent {
			p.advance()
			return body, nil
		}
		if p.atEOF() {
			return body, nil
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
}

func (p *parser) statement() (Node, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "if":
			return p.ifStatement()
		case "while":
			return p.whileStatement()
		case "for":
			return p.forStatement()
		case "def":
			return p.defStatement()
		case "class":
			return p.classStatement()
		case "try":
			return p.tryStatement()
		}
	}
	st, err := p.simpleStatement()
	if err != nil {
		return nil, err
	}
	// Allow "a = 1; b = 2" — rare, but cheap to support.
	for p.acceptOp(";") {
		if p.cur().Kind == TokNewline || p.atEOF() {
			break
		}
		return nil, syntaxErrf(p.cur().Line, "multiple statements per line not supported")
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) simpleStatement() (Node, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "return":
			p.advance()
			if p.cur().Kind == TokNewline || p.atEOF() || p.cur().Kind == TokDedent {
				return &ReturnStmt{base: base{t.Line}}, nil
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &ReturnStmt{base: base{t.Line}, Value: v}, nil
		case "break":
			p.advance()
			return &BreakStmt{base{t.Line}}, nil
		case "continue":
			p.advance()
			return &ContinueStmt{base{t.Line}}, nil
		case "pass":
			p.advance()
			return &PassStmt{base{t.Line}}, nil
		case "raise":
			p.advance()
			if p.cur().Kind == TokNewline || p.atEOF() || p.cur().Kind == TokDedent {
				return &RaiseStmt{base: base{t.Line}}, nil
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &RaiseStmt{base: base{t.Line}, Exc: v}, nil
		case "global":
			p.advance()
			var names []string
			for {
				n, err := p.expectKind(TokName)
				if err != nil {
					return nil, err
				}
				names = append(names, n.Text)
				if !p.acceptOp(",") {
					break
				}
			}
			return &GlobalStmt{base: base{t.Line}, Names: names}, nil
		case "del":
			p.advance()
			target, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &DelStmt{base: base{t.Line}, Target: target}, nil
		case "assert":
			p.advance()
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			var msg Node
			if p.acceptOp(",") {
				msg, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			return &AssertStmt{base: base{t.Line}, Cond: cond, Msg: msg}, nil
		}
	}
	// Expression, assignment or augmented assignment.
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"+=", "-=", "*=", "/=", "%="} {
		if p.isOp(op) {
			p.advance()
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := checkAssignable(lhs); err != nil {
				return nil, err
			}
			return &AugAssignStmt{base: base{t.Line}, Op: op[:1], Target: lhs, Value: rhs}, nil
		}
	}
	if p.acceptOp("=") {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		return &AssignStmt{base: base{t.Line}, Target: lhs, Value: rhs}, nil
	}
	return &ExprStmt{base: base{t.Line}, X: lhs}, nil
}

func checkAssignable(n Node) error {
	switch n.(type) {
	case *NameExpr, *IndexExpr, *AttrExpr, *SliceExpr:
		return nil
	}
	return syntaxErrf(n.nodeLine(), "cannot assign to this expression")
}

func (p *parser) ifStatement() (Node, error) {
	line := p.cur().Line
	p.advance() // if / elif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{base: base{line}, Cond: cond, Then: then}
	p.skipNewlines()
	if p.isKw("elif") {
		sub, err := p.ifStatement()
		if err != nil {
			return nil, err
		}
		st.Else = []Node{sub}
	} else if p.acceptKw("else") {
		els, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) whileStatement() (Node, error) {
	line := p.cur().Line
	p.advance()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{base: base{line}, Cond: cond, Body: body}, nil
}

func (p *parser) forStatement() (Node, error) {
	line := p.cur().Line
	p.advance()
	v1, err := p.expectKind(TokName)
	if err != nil {
		return nil, err
	}
	var v2 string
	if p.acceptOp(",") {
		t, err := p.expectKind(TokName)
		if err != nil {
			return nil, err
		}
		v2 = t.Text
	}
	if !p.acceptKw("in") {
		return nil, syntaxErrf(p.cur().Line, "expected 'in' in for statement")
	}
	iter, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{base: base{line}, Var: v1.Text, Var2: v2, Iter: iter, Body: body}, nil
}

func (p *parser) defStatement() (*DefStmt, error) {
	line := p.cur().Line
	p.advance()
	name, err := p.expectKind(TokName)
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	var defaults []Node
	for !p.isOp(")") {
		pn, err := p.expectKind(TokName)
		if err != nil {
			return nil, err
		}
		params = append(params, pn.Text)
		if p.acceptOp("=") {
			d, err := p.expr()
			if err != nil {
				return nil, err
			}
			defaults = append(defaults, d)
		} else if len(defaults) > 0 {
			return nil, syntaxErrf(pn.Line, "non-default parameter after default")
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &DefStmt{base: base{line}, Name: name.Text, Params: params, Defaults: defaults, Body: body}, nil
}

func (p *parser) classStatement() (Node, error) {
	line := p.cur().Line
	p.advance()
	name, err := p.expectKind(TokName)
	if err != nil {
		return nil, err
	}
	var baseName string
	if p.acceptOp("(") {
		if !p.isOp(")") {
			b, err := p.expectKind(TokName)
			if err != nil {
				return nil, err
			}
			baseName = b.Text
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	cls := &ClassStmt{base: base{line}, Name: name.Text, Base: baseName}
	for _, st := range body {
		switch s := st.(type) {
		case *DefStmt:
			cls.Methods = append(cls.Methods, s)
		case *AssignStmt:
			cls.Assigns = append(cls.Assigns, s)
		case *PassStmt:
		default:
			return nil, syntaxErrf(st.nodeLine(), "unsupported statement in class body")
		}
	}
	return cls, nil
}

func (p *parser) tryStatement() (Node, error) {
	line := p.cur().Line
	p.advance()
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &TryStmt{base: base{line}, Body: body}
	p.skipNewlines()
	for p.isKw("except") {
		eLine := p.cur().Line
		p.advance()
		var typ, as string
		if p.cur().Kind == TokName {
			typ = p.advance().Text
			if p.acceptKw("as") {
				a, err := p.expectKind(TokName)
				if err != nil {
					return nil, err
				}
				as = a.Text
			}
		}
		hbody, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Handlers = append(st.Handlers, ExceptClause{Line: eLine, Type: typ, As: as, Body: hbody})
		p.skipNewlines()
	}
	if p.acceptKw("finally") {
		fbody, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Finally = fbody
	}
	if len(st.Handlers) == 0 && st.Finally == nil {
		return nil, syntaxErrf(line, "try without except or finally")
	}
	return st, nil
}

// Expression grammar, lowest to highest precedence:
// or > and > not > comparison > addition > multiplication > unary > postfix.

func (p *parser) expr() (Node, error) { return p.orExpr() }

func (p *parser) orExpr() (Node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		line := p.advance().Line
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BoolOp{base: base{line}, Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Node, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		line := p.advance().Line
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BoolOp{base: base{line}, Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Node, error) {
	if p.isKw("not") {
		line := p.advance().Line
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{base: base{line}, Op: "not", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	seen := false
	for {
		var op string
		switch {
		case p.isOp("=="), p.isOp("!="), p.isOp("<"), p.isOp("<="), p.isOp(">"), p.isOp(">="):
			op = p.advance().Text
		case p.isKw("in"):
			p.advance()
			op = "in"
		case p.isKw("not"):
			// "not in"
			p.advance()
			if !p.acceptKw("in") {
				return nil, syntaxErrf(p.cur().Line, "expected 'in' after 'not'")
			}
			op = "notin"
		default:
			return l, nil
		}
		if seen {
			// Python's chained comparisons (a < b < c) have conjunction
			// semantics MiniPy does not implement; reject rather than parse
			// them with different meaning.
			return nil, syntaxErrf(p.cur().Line, "chained comparisons are not supported; use 'and'")
		}
		seen = true
		line := p.cur().Line
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{line}, Op: op, L: l, R: r}
	}
}

func (p *parser) addExpr() (Node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		t := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{t.Line}, Op: t.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Node, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("//") || p.isOp("%") {
		t := p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{base: base{t.Line}, Op: t.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Node, error) {
	if p.isOp("-") {
		line := p.advance().Line
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{base: base{line}, Op: "-", X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Node, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("("):
			line := p.advance().Line
			var args []Node
			for !p.isOp(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			x = &CallExpr{base: base{line}, Fn: x, Args: args}
		case p.isOp("["):
			line := p.advance().Line
			if p.isOp(":") { // x[:hi]
				p.advance()
				var hi Node
				if !p.isOp("]") {
					hi, err = p.expr()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expectOp("]"); err != nil {
					return nil, err
				}
				x = &SliceExpr{base: base{line}, X: x, Hi: hi}
				continue
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if p.acceptOp(":") { // x[lo:hi] or x[lo:]
				var hi Node
				if !p.isOp("]") {
					hi, err = p.expr()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expectOp("]"); err != nil {
					return nil, err
				}
				x = &SliceExpr{base: base{line}, X: x, Lo: idx, Hi: hi}
				continue
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{base: base{line}, X: x, Idx: idx}
		case p.isOp("."):
			line := p.advance().Line
			name, err := p.expectKind(TokName)
			if err != nil {
				return nil, err
			}
			x = &AttrExpr{base: base{line}, X: x, Name: name.Text}
		default:
			return x, nil
		}
	}
}

func (p *parser) atom() (Node, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.advance()
		return &NumLit{base: base{t.Line}, Value: t.Int}, nil
	case TokStr:
		p.advance()
		// Adjacent string literal concatenation.
		text := t.Text
		for p.cur().Kind == TokStr {
			text += p.advance().Text
		}
		return &StrLit{base: base{t.Line}, Value: text}, nil
	case TokName:
		p.advance()
		return &NameExpr{base: base{t.Line}, Name: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "None", "True", "False":
			p.advance()
			return &ConstExpr{base: base{t.Line}, Kind: t.Text}, nil
		case "not":
			return p.notExpr()
		}
	case TokOp:
		switch t.Text {
		case "(":
			p.advance()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.advance()
			var elems []Node
			for !p.isOp("]") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			return &ListLit{base: base{t.Line}, Elems: elems}, nil
		case "{":
			p.advance()
			var keys, vals []Node
			for !p.isOp("}") {
				k, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(":"); err != nil {
					return nil, err
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				keys = append(keys, k)
				vals = append(vals, v)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			return &DictLit{base: base{t.Line}, Keys: keys, Values: vals}, nil
		}
	}
	return nil, syntaxErrf(t.Line, "unexpected token %s", t)
}
