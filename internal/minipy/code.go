package minipy

import "fmt"

// OpCode enumerates MiniPy bytecode operations. Opcode values are reported
// to CHEF through log_pc and drive the branching-opcode inference of §3.4.
type OpCode uint32

// Bytecode operations.
const (
	OpNop       OpCode = iota
	OpLoadConst        // push Consts[arg]
	OpLoadName         // push name (local → global → builtin)
	OpStoreName        // pop into name (local, or global when declared)
	OpDelName
	OpPop
	OpDup
	OpBinary  // arg = binKind
	OpCompare // arg = cmpKind
	OpUnaryNeg
	OpUnaryNot
	OpJump            // ip = arg
	OpJumpIfFalse     // pop, branch
	OpJumpIfTrue      // pop, branch
	OpJumpIfFalseKeep // peek; jump keeping value (for and)
	OpJumpIfTrueKeep  // peek; jump keeping value (for or)
	OpCall            // arg = #args; stack: fn, args...
	OpReturn          // pop return value
	OpBuildList       // arg = n
	OpBuildDict       // arg = n pairs
	OpIndex           // pop idx, obj; push obj[idx]
	OpStoreIndex      // pop idx, obj, val
	OpDelIndex        // pop idx, obj
	OpSlice           // arg bit0 = has lo, bit1 = has hi
	OpAttr            // push obj.name (arg = name idx)
	OpStoreAttr       // pop obj, val
	OpGetIter
	OpForIter      // push next or jump arg when exhausted
	OpUnpack2      // pop 2-list, push both elements
	OpSetupExcept  // push except block, handler at arg
	OpSetupFinally // push finally block, handler at arg
	OpPopBlock
	OpEndFinally // re-raise pending exception if any
	OpRaise      // arg: 0 bare re-raise, 1 pop exception value
	OpExcMatch   // peek exception, push bool: matches Names[arg]
	OpBindExc    // pop exception, bind to Names[arg] (arg<0: discard)
	OpMakeFunc   // push function from Consts[arg] (*CodeVal)
	OpMakeClass  // push class from Consts[arg] (*ClassSpecVal)
	OpPrint      // arg = n values
)

var opNames = map[OpCode]string{
	OpNop: "NOP", OpLoadConst: "LOAD_CONST", OpLoadName: "LOAD_NAME",
	OpStoreName: "STORE_NAME", OpDelName: "DEL_NAME", OpPop: "POP", OpDup: "DUP",
	OpBinary: "BINARY", OpCompare: "COMPARE", OpUnaryNeg: "UNARY_NEG",
	OpUnaryNot: "UNARY_NOT", OpJump: "JUMP", OpJumpIfFalse: "JUMP_IF_FALSE",
	OpJumpIfTrue: "JUMP_IF_TRUE", OpJumpIfFalseKeep: "JUMP_IF_FALSE_KEEP",
	OpJumpIfTrueKeep: "JUMP_IF_TRUE_KEEP", OpCall: "CALL", OpReturn: "RETURN",
	OpBuildList: "BUILD_LIST", OpBuildDict: "BUILD_DICT", OpIndex: "INDEX",
	OpStoreIndex: "STORE_INDEX", OpDelIndex: "DEL_INDEX", OpSlice: "SLICE",
	OpAttr: "ATTR", OpStoreAttr: "STORE_ATTR", OpGetIter: "GET_ITER",
	OpForIter: "FOR_ITER", OpUnpack2: "UNPACK2", OpSetupExcept: "SETUP_EXCEPT",
	OpSetupFinally: "SETUP_FINALLY", OpPopBlock: "POP_BLOCK",
	OpEndFinally: "END_FINALLY", OpRaise: "RAISE", OpExcMatch: "EXC_MATCH",
	OpBindExc: "BIND_EXC", OpMakeFunc: "MAKE_FUNC", OpMakeClass: "MAKE_CLASS",
	OpPrint: "PRINT",
}

func (o OpCode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint32(o))
}

// Binary operation kinds (OpBinary arg).
const (
	binAdd = iota
	binSub
	binMul
	binDiv // Python 2 semantics: floor division for ints
	binFloorDiv
	binMod
)

// Comparison kinds (OpCompare arg).
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
	cmpIn
	cmpNotIn
)

// Instr is one bytecode instruction.
type Instr struct {
	Op   OpCode
	Arg  int32
	Line int
}

// Code is a compiled block: a module body, function body or method body —
// MiniPy's equivalent of a CPython code object. BlockID is globally unique
// within a Program; the HLPC reported to CHEF is BlockID<<16 | instruction
// offset, matching the paper's Python HLPC construction ("the concatenation
// of the unique block address of the top frame and the current instruction
// offset").
type Code struct {
	Name     string
	BlockID  uint32
	Params   []string
	Defaults []Value // aligned to the tail of Params; immutable literal values
	Globals  map[string]bool
	Instrs   []Instr
	Consts   []Value
	Names    []string
	IsModule bool
}

// HLPCAt returns the high-level program counter of instruction offset i.
func (c *Code) HLPCAt(i int) uint64 { return uint64(c.BlockID)<<16 | uint64(uint16(i)) }

// CodeVal wraps a Code as a constant-pool Value.
type CodeVal struct{ Code *Code }

// TypeName implements Value.
func (*CodeVal) TypeName() string { return "code" }

// ClassSpec describes a class literal for OpMakeClass.
type ClassSpec struct {
	Name    string
	Base    string
	Methods []*Code
	Consts  map[string]Value
}

// ClassSpecVal wraps a ClassSpec as a constant-pool Value.
type ClassSpecVal struct{ Spec *ClassSpec }

// TypeName implements Value.
func (*ClassSpecVal) TypeName() string { return "classspec" }

// Program is a fully compiled MiniPy module.
type Program struct {
	Main   *Code
	Blocks []*Code // all blocks, indexed by BlockID
	Source string
}

// BlockByID returns the code block with the given id, or nil.
func (p *Program) BlockByID(id uint32) *Code {
	if int(id) < len(p.Blocks) {
		return p.Blocks[id]
	}
	return nil
}

// LineOf maps an HLPC back to its source line (0 when unknown), used for
// coverage measurement during replay.
func (p *Program) LineOf(hlpc uint64) int {
	blk := p.BlockByID(uint32(hlpc >> 16))
	if blk == nil {
		return 0
	}
	off := int(hlpc & 0xffff)
	if off >= len(blk.Instrs) {
		return 0
	}
	return blk.Instrs[off].Line
}

// CoverableLines returns the set of source lines that carry at least one
// instruction — the denominator for line-coverage reports (the paper's
// "coverable LOC").
func (p *Program) CoverableLines() map[int]bool {
	lines := map[int]bool{}
	for _, blk := range p.Blocks {
		for _, in := range blk.Instrs {
			if in.Line > 0 {
				lines[in.Line] = true
			}
		}
	}
	return lines
}
