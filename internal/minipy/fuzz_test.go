package minipy_test

import (
	"testing"

	"chef/internal/minipy"
	"chef/internal/packages"
)

// FuzzCompile drives the MiniPy lexer, parser and compiler with arbitrary
// source text. Malformed programs must surface as error returns — any panic
// is a front-end bug. The corpus is seeded with the real evaluation-package
// sources plus small probes for each syntactic corner.
//
// Run with: go test ./internal/minipy/ -fuzz FuzzCompile -fuzztime 5s
func FuzzCompile(f *testing.F) {
	for _, p := range packages.PythonPackages() {
		f.Add(p.Source)
	}
	seeds := []string{
		"",
		"def f(x):\n    return x + 1\n",
		"class C(Exception):\n    pass\n",
		"x = {'a': 1}\nfor k in x:\n    print(k)\n",
		"while True:\n    break\n",
		"def f(*args, **kw):\n    pass\n",
		"try:\n    raise ValueError('x')\nexcept ValueError as e:\n    pass\n",
		"x = [i for i in range(3)]\n",
		"if not x == 5:\n    pass\nelif y:\n    pass\nelse:\n    pass\n",
		"x = 'a' 'b'\ny = \"\\x41\\n\"\n",
		"lambda a, b=1: a - b\n",
		"x = 1 if y else 2\n",
		"def f():\n  if a:\n      b\n \tc\n",
		"x=1;y=2\n",
		"x = (((((1)))))\n",
		"# comment\n\n\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minipy.Compile(src)
		if err == nil && prog == nil {
			t.Fatal("Compile returned nil program without error")
		}
	})
}
