package minipy

// Compiler from the MiniPy AST to bytecode. Every statement and expression
// lowers to stack operations on a per-block instruction list; jump targets
// are patched after emission.

type compiler struct {
	prog *Program
}

type blockCompiler struct {
	c        *compiler
	code     *Code
	breaks   [][]int // patch lists per enclosing loop
	contTgts []int   // continue targets per enclosing loop
	// excDepth tracks how many exception/finally blocks are statically open;
	// loopDepths records the depth at each enclosing loop's entry so break
	// and continue can pop the blocks they jump out of (CPython's
	// POP_BLOCK-on-break semantics).
	excDepth   int
	loopDepths []int
}

// Compile parses and compiles a MiniPy source file into a Program.
func Compile(src string) (*Program, error) {
	mod, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{prog: &Program{Source: src}}
	main, err := c.compileBlock("<module>", nil, nil, mod.Body, true)
	if err != nil {
		return nil, err
	}
	c.prog.Main = main
	return c.prog, nil
}

// MustCompile compiles or panics; intended for package sources embedded in
// the binary, whose compilability is covered by tests.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (c *compiler) newCode(name string, params []string, defaults []Value, isModule bool) *Code {
	code := &Code{
		Name:     name,
		BlockID:  uint32(len(c.prog.Blocks)),
		Params:   params,
		Defaults: defaults,
		Globals:  map[string]bool{},
		IsModule: isModule,
	}
	c.prog.Blocks = append(c.prog.Blocks, code)
	return code
}

func (c *compiler) compileBlock(name string, params []string, defaults []Value, body []Node, isModule bool) (*Code, error) {
	code := c.newCode(name, params, defaults, isModule)
	bc := &blockCompiler{c: c, code: code}
	if err := bc.stmts(body); err != nil {
		return nil, err
	}
	// Implicit "return None".
	last := 0
	if len(body) > 0 {
		last = body[len(body)-1].nodeLine()
	}
	bc.emit(OpLoadConst, bc.constIdx(None), last)
	bc.emit(OpReturn, 0, last)
	return code, nil
}

func (b *blockCompiler) emit(op OpCode, arg int32, line int) int {
	b.code.Instrs = append(b.code.Instrs, Instr{Op: op, Arg: arg, Line: line})
	return len(b.code.Instrs) - 1
}

func (b *blockCompiler) here() int { return len(b.code.Instrs) }

func (b *blockCompiler) patch(at int, target int) { b.code.Instrs[at].Arg = int32(target) }

func (b *blockCompiler) constIdx(v Value) int32 {
	// Interning of equal literal constants is a compile-time affair on
	// concrete values only; a linear scan suffices at these sizes.
	for i, c := range b.code.Consts {
		if constEqual(c, v) {
			return int32(i)
		}
	}
	b.code.Consts = append(b.code.Consts, v)
	return int32(len(b.code.Consts) - 1)
}

func constEqual(a, c Value) bool {
	switch x := a.(type) {
	case NoneVal:
		_, ok := c.(NoneVal)
		return ok
	case BoolVal:
		y, ok := c.(BoolVal)
		return ok && x.B.C == y.B.C && !x.B.IsSymbolic() && !y.B.IsSymbolic()
	case IntVal:
		y, ok := c.(IntVal)
		return ok && x.Big == nil && y.Big == nil && !x.V.IsSymbolic() && !y.V.IsSymbolic() && x.V.C == y.V.C
	case StrVal:
		y, ok := c.(StrVal)
		return ok && !x.HasSymbolicBytes() && !y.HasSymbolicBytes() && x.Concrete() == y.Concrete()
	}
	return false
}

func (b *blockCompiler) nameIdx(name string) int32 {
	for i, n := range b.code.Names {
		if n == name {
			return int32(i)
		}
	}
	b.code.Names = append(b.code.Names, name)
	return int32(len(b.code.Names) - 1)
}

func (b *blockCompiler) stmts(body []Node) error {
	for _, st := range body {
		if err := b.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (b *blockCompiler) stmt(n Node) error {
	switch st := n.(type) {
	case *ExprStmt:
		if err := b.expr(st.X); err != nil {
			return err
		}
		b.emit(OpPop, 0, st.Line)
	case *AssignStmt:
		return b.assign(st.Target, st.Value, st.Line)
	case *AugAssignStmt:
		return b.augAssign(st)
	case *IfStmt:
		return b.ifStmt(st)
	case *WhileStmt:
		return b.whileStmt(st)
	case *ForStmt:
		return b.forStmt(st)
	case *DefStmt:
		code, err := b.compileDef(st)
		if err != nil {
			return err
		}
		b.emit(OpMakeFunc, b.constIdx(&CodeVal{code}), st.Line)
		b.emit(OpStoreName, b.nameIdx(st.Name), st.Line)
	case *ClassStmt:
		return b.classStmt(st)
	case *ReturnStmt:
		if st.Value != nil {
			if err := b.expr(st.Value); err != nil {
				return err
			}
		} else {
			b.emit(OpLoadConst, b.constIdx(None), st.Line)
		}
		b.emit(OpReturn, 0, st.Line)
	case *BreakStmt:
		if len(b.breaks) == 0 {
			return syntaxErrf(st.Line, "break outside loop")
		}
		b.popBlocksToLoop(st.Line)
		at := b.emit(OpJump, 0, st.Line)
		b.breaks[len(b.breaks)-1] = append(b.breaks[len(b.breaks)-1], at)
	case *ContinueStmt:
		if len(b.contTgts) == 0 {
			return syntaxErrf(st.Line, "continue outside loop")
		}
		b.popBlocksToLoop(st.Line)
		b.emit(OpJump, int32(b.contTgts[len(b.contTgts)-1]), st.Line)
	case *PassStmt:
		b.emit(OpNop, 0, st.Line)
	case *RaiseStmt:
		if st.Exc == nil {
			b.emit(OpRaise, 0, st.Line)
		} else {
			if err := b.expr(st.Exc); err != nil {
				return err
			}
			b.emit(OpRaise, 1, st.Line)
		}
	case *TryStmt:
		return b.tryStmt(st)
	case *GlobalStmt:
		for _, name := range st.Names {
			b.code.Globals[name] = true
		}
		b.emit(OpNop, 0, st.Line)
	case *AssertStmt:
		if err := b.expr(st.Cond); err != nil {
			return err
		}
		jok := b.emit(OpJumpIfTrue, 0, st.Line)
		b.emit(OpLoadName, b.nameIdx("AssertionError"), st.Line)
		nargs := int32(0)
		if st.Msg != nil {
			if err := b.expr(st.Msg); err != nil {
				return err
			}
			nargs = 1
		}
		b.emit(OpCall, nargs, st.Line)
		b.emit(OpRaise, 1, st.Line)
		b.patch(jok, b.here())
	case *DelStmt:
		switch t := st.Target.(type) {
		case *IndexExpr:
			if err := b.expr(t.X); err != nil {
				return err
			}
			if err := b.expr(t.Idx); err != nil {
				return err
			}
			b.emit(OpDelIndex, 0, st.Line)
		case *NameExpr:
			b.emit(OpDelName, b.nameIdx(t.Name), st.Line)
		default:
			return syntaxErrf(st.Line, "cannot delete this expression")
		}
	default:
		return syntaxErrf(n.nodeLine(), "unsupported statement %T", n)
	}
	return nil
}

func (b *blockCompiler) assign(target, value Node, line int) error {
	switch t := target.(type) {
	case *NameExpr:
		if err := b.expr(value); err != nil {
			return err
		}
		b.emit(OpStoreName, b.nameIdx(t.Name), line)
	case *IndexExpr:
		if err := b.expr(value); err != nil {
			return err
		}
		if err := b.expr(t.X); err != nil {
			return err
		}
		if err := b.expr(t.Idx); err != nil {
			return err
		}
		b.emit(OpStoreIndex, 0, line)
	case *AttrExpr:
		if err := b.expr(value); err != nil {
			return err
		}
		if err := b.expr(t.X); err != nil {
			return err
		}
		b.emit(OpStoreAttr, b.nameIdx(t.Name), line)
	default:
		return syntaxErrf(line, "unsupported assignment target %T", target)
	}
	return nil
}

func (b *blockCompiler) augAssign(st *AugAssignStmt) error {
	kind, ok := binKindOf(st.Op)
	if !ok {
		return syntaxErrf(st.Line, "unsupported augmented operator %q", st.Op)
	}
	// Load current value, apply, store back. Index targets re-evaluate the
	// object and index expressions, which is acceptable for MiniPy's pure
	// expression subset.
	if err := b.expr(st.Target); err != nil {
		return err
	}
	if err := b.expr(st.Value); err != nil {
		return err
	}
	b.emit(OpBinary, int32(kind), st.Line)
	switch t := st.Target.(type) {
	case *NameExpr:
		b.emit(OpStoreName, b.nameIdx(t.Name), st.Line)
	case *IndexExpr:
		if err := b.expr(t.X); err != nil {
			return err
		}
		if err := b.expr(t.Idx); err != nil {
			return err
		}
		b.emit(OpStoreIndex, 0, st.Line)
	case *AttrExpr:
		if err := b.expr(t.X); err != nil {
			return err
		}
		b.emit(OpStoreAttr, b.nameIdx(t.Name), st.Line)
	default:
		return syntaxErrf(st.Line, "unsupported augmented target %T", st.Target)
	}
	return nil
}

func binKindOf(op string) (int, bool) {
	switch op {
	case "+":
		return binAdd, true
	case "-":
		return binSub, true
	case "*":
		return binMul, true
	case "/":
		return binDiv, true
	case "//":
		return binFloorDiv, true
	case "%":
		return binMod, true
	}
	return 0, false
}

func cmpKindOf(op string) (int, bool) {
	switch op {
	case "==":
		return cmpEq, true
	case "!=":
		return cmpNe, true
	case "<":
		return cmpLt, true
	case "<=":
		return cmpLe, true
	case ">":
		return cmpGt, true
	case ">=":
		return cmpGe, true
	case "in":
		return cmpIn, true
	case "notin":
		return cmpNotIn, true
	}
	return 0, false
}

// popBlocksToLoop emits POP_BLOCK for every exception/finally block opened
// inside the innermost loop, so break/continue leave the frame's block stack
// consistent. (Running finally bodies on break is not supported; see
// docs/LANGUAGES.md.)
func (b *blockCompiler) popBlocksToLoop(line int) {
	entry := b.loopDepths[len(b.loopDepths)-1]
	for d := b.excDepth; d > entry; d-- {
		b.emit(OpPopBlock, 0, line)
	}
}

func (b *blockCompiler) ifStmt(st *IfStmt) error {
	if err := b.expr(st.Cond); err != nil {
		return err
	}
	jfalse := b.emit(OpJumpIfFalse, 0, st.Line)
	if err := b.stmts(st.Then); err != nil {
		return err
	}
	if len(st.Else) == 0 {
		b.patch(jfalse, b.here())
		return nil
	}
	jend := b.emit(OpJump, 0, st.Line)
	b.patch(jfalse, b.here())
	if err := b.stmts(st.Else); err != nil {
		return err
	}
	b.patch(jend, b.here())
	return nil
}

func (b *blockCompiler) whileStmt(st *WhileStmt) error {
	top := b.here()
	if err := b.expr(st.Cond); err != nil {
		return err
	}
	jexit := b.emit(OpJumpIfFalse, 0, st.Line)
	b.breaks = append(b.breaks, nil)
	b.contTgts = append(b.contTgts, top)
	b.loopDepths = append(b.loopDepths, b.excDepth)
	if err := b.stmts(st.Body); err != nil {
		return err
	}
	b.emit(OpJump, int32(top), st.Line)
	b.patch(jexit, b.here())
	for _, at := range b.breaks[len(b.breaks)-1] {
		b.patch(at, b.here())
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.contTgts = b.contTgts[:len(b.contTgts)-1]
	b.loopDepths = b.loopDepths[:len(b.loopDepths)-1]
	return nil
}

func (b *blockCompiler) forStmt(st *ForStmt) error {
	if err := b.expr(st.Iter); err != nil {
		return err
	}
	b.emit(OpGetIter, 0, st.Line)
	top := b.here()
	jexit := b.emit(OpForIter, 0, st.Line)
	if st.Var2 != "" {
		b.emit(OpUnpack2, 0, st.Line)
		b.emit(OpStoreName, b.nameIdx(st.Var2), st.Line)
		b.emit(OpStoreName, b.nameIdx(st.Var), st.Line)
	} else {
		b.emit(OpStoreName, b.nameIdx(st.Var), st.Line)
	}
	b.breaks = append(b.breaks, nil)
	b.contTgts = append(b.contTgts, top)
	b.loopDepths = append(b.loopDepths, b.excDepth)
	if err := b.stmts(st.Body); err != nil {
		return err
	}
	b.emit(OpJump, int32(top), st.Line)
	b.patch(jexit, b.here())
	// The iterator is still on the stack at loop exit.
	b.emit(OpPop, 0, st.Line)
	exitPoint := b.here()
	for _, at := range b.breaks[len(b.breaks)-1] {
		// break jumps must also pop the iterator: route them to the POP.
		b.patch(at, exitPoint-1)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.contTgts = b.contTgts[:len(b.contTgts)-1]
	b.loopDepths = b.loopDepths[:len(b.loopDepths)-1]
	return nil
}

func (b *blockCompiler) compileDef(st *DefStmt) (*Code, error) {
	defaults := make([]Value, 0, len(st.Defaults))
	for _, d := range st.Defaults {
		v, err := literalValue(d)
		if err != nil {
			return nil, err
		}
		defaults = append(defaults, v)
	}
	return b.c.compileBlock(st.Name, st.Params, defaults, st.Body, false)
}

// literalValue evaluates a compile-time constant expression (parameter
// defaults and class-level constants are restricted to immutable literals).
func literalValue(n Node) (Value, error) {
	switch x := n.(type) {
	case *NumLit:
		return MkInt(x.Value), nil
	case *StrLit:
		return MkStr(x.Value), nil
	case *ConstExpr:
		switch x.Kind {
		case "None":
			return None, nil
		case "True":
			return MkBool(true), nil
		case "False":
			return MkBool(false), nil
		}
	case *UnaryOp:
		if x.Op == "-" {
			if num, ok := x.X.(*NumLit); ok {
				return MkInt(-num.Value), nil
			}
		}
	}
	return nil, syntaxErrf(n.nodeLine(), "default/class-level values must be immutable literals")
}

func (b *blockCompiler) classStmt(st *ClassStmt) error {
	spec := &ClassSpec{Name: st.Name, Base: st.Base, Consts: map[string]Value{}}
	for _, m := range st.Methods {
		code, err := b.compileDef(m)
		if err != nil {
			return err
		}
		spec.Methods = append(spec.Methods, code)
	}
	for _, a := range st.Assigns {
		name, ok := a.Target.(*NameExpr)
		if !ok {
			return syntaxErrf(a.Line, "class-level assignment must target a name")
		}
		v, err := literalValue(a.Value)
		if err != nil {
			return err
		}
		spec.Consts[name.Name] = v
	}
	b.emit(OpMakeClass, b.constIdx(&ClassSpecVal{spec}), st.Line)
	b.emit(OpStoreName, b.nameIdx(st.Name), st.Line)
	return nil
}

func (b *blockCompiler) tryStmt(st *TryStmt) error {
	if st.Finally != nil && len(st.Handlers) > 0 {
		// Desugar try/except/finally into nested try statements.
		inner := &TryStmt{base: st.base, Body: st.Body, Handlers: st.Handlers}
		outer := &TryStmt{base: st.base, Body: []Node{inner}, Finally: st.Finally}
		return b.tryStmt(outer)
	}
	if st.Finally != nil {
		setup := b.emit(OpSetupFinally, 0, st.Line)
		b.excDepth++
		if err := b.stmts(st.Body); err != nil {
			return err
		}
		b.emit(OpPopBlock, 0, st.Line)
		b.excDepth--
		// Normal path: inline copy of the finally body.
		if err := b.stmts(st.Finally); err != nil {
			return err
		}
		jend := b.emit(OpJump, 0, st.Line)
		b.patch(setup, b.here())
		// Exception path: run the finally body, then re-raise.
		if err := b.stmts(st.Finally); err != nil {
			return err
		}
		b.emit(OpEndFinally, 0, st.Line)
		b.patch(jend, b.here())
		return nil
	}
	setup := b.emit(OpSetupExcept, 0, st.Line)
	b.excDepth++
	if err := b.stmts(st.Body); err != nil {
		return err
	}
	b.emit(OpPopBlock, 0, st.Line)
	b.excDepth--
	jend := b.emit(OpJump, 0, st.Line)
	b.patch(setup, b.here())
	// Handler chain; the raised exception object is on the stack.
	var endJumps []int
	for _, h := range st.Handlers {
		var jnext int = -1
		if h.Type != "" {
			b.emit(OpExcMatch, b.nameIdx(h.Type), h.Line)
			jnext = b.emit(OpJumpIfFalse, 0, h.Line)
		}
		if h.As != "" {
			b.emit(OpBindExc, b.nameIdx(h.As), h.Line)
		} else {
			b.emit(OpBindExc, -1, h.Line)
		}
		if err := b.stmts(h.Body); err != nil {
			return err
		}
		endJumps = append(endJumps, b.emit(OpJump, 0, h.Line))
		if jnext >= 0 {
			b.patch(jnext, b.here())
		}
	}
	// No handler matched: re-raise the exception on the stack.
	b.emit(OpRaise, 2, st.Line)
	for _, at := range endJumps {
		b.patch(at, b.here())
	}
	b.patch(jend, b.here())
	return nil
}

func (b *blockCompiler) expr(n Node) error {
	switch x := n.(type) {
	case *NumLit:
		b.emit(OpLoadConst, b.constIdx(MkInt(x.Value)), x.Line)
	case *StrLit:
		b.emit(OpLoadConst, b.constIdx(MkStr(x.Value)), x.Line)
	case *ConstExpr:
		v, err := literalValue(x)
		if err != nil {
			return err
		}
		b.emit(OpLoadConst, b.constIdx(v), x.Line)
	case *NameExpr:
		b.emit(OpLoadName, b.nameIdx(x.Name), x.Line)
	case *ListLit:
		for _, e := range x.Elems {
			if err := b.expr(e); err != nil {
				return err
			}
		}
		b.emit(OpBuildList, int32(len(x.Elems)), x.Line)
	case *DictLit:
		for i := range x.Keys {
			if err := b.expr(x.Keys[i]); err != nil {
				return err
			}
			if err := b.expr(x.Values[i]); err != nil {
				return err
			}
		}
		b.emit(OpBuildDict, int32(len(x.Keys)), x.Line)
	case *BinOp:
		if err := b.expr(x.L); err != nil {
			return err
		}
		if err := b.expr(x.R); err != nil {
			return err
		}
		if k, ok := binKindOf(x.Op); ok {
			b.emit(OpBinary, int32(k), x.Line)
		} else if k, ok := cmpKindOf(x.Op); ok {
			b.emit(OpCompare, int32(k), x.Line)
		} else {
			return syntaxErrf(x.Line, "unsupported operator %q", x.Op)
		}
	case *BoolOp:
		if err := b.expr(x.L); err != nil {
			return err
		}
		var j int
		if x.Op == "and" {
			j = b.emit(OpJumpIfFalseKeep, 0, x.Line)
		} else {
			j = b.emit(OpJumpIfTrueKeep, 0, x.Line)
		}
		b.emit(OpPop, 0, x.Line)
		if err := b.expr(x.R); err != nil {
			return err
		}
		b.patch(j, b.here())
	case *UnaryOp:
		if err := b.expr(x.X); err != nil {
			return err
		}
		if x.Op == "-" {
			b.emit(OpUnaryNeg, 0, x.Line)
		} else {
			b.emit(OpUnaryNot, 0, x.Line)
		}
	case *CallExpr:
		if err := b.expr(x.Fn); err != nil {
			return err
		}
		for _, a := range x.Args {
			if err := b.expr(a); err != nil {
				return err
			}
		}
		b.emit(OpCall, int32(len(x.Args)), x.Line)
	case *AttrExpr:
		if err := b.expr(x.X); err != nil {
			return err
		}
		b.emit(OpAttr, b.nameIdx(x.Name), x.Line)
	case *IndexExpr:
		if err := b.expr(x.X); err != nil {
			return err
		}
		if err := b.expr(x.Idx); err != nil {
			return err
		}
		b.emit(OpIndex, 0, x.Line)
	case *SliceExpr:
		if err := b.expr(x.X); err != nil {
			return err
		}
		arg := int32(0)
		if x.Lo != nil {
			if err := b.expr(x.Lo); err != nil {
				return err
			}
			arg |= 1
		}
		if x.Hi != nil {
			if err := b.expr(x.Hi); err != nil {
				return err
			}
			arg |= 2
		}
		b.emit(OpSlice, arg, x.Line)
	default:
		return syntaxErrf(n.nodeLine(), "unsupported expression %T", n)
	}
	return nil
}
