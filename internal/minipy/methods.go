package minipy

import "chef/internal/lowlevel"

// getattr resolves obj.name: instance attributes, class methods, and the
// built-in method tables of str/list/dict.
func (vm *VM) getattr(obj Value, name string) (Value, *Exc) {
	vm.m.Step(1)
	switch o := obj.(type) {
	case *InstanceVal:
		if v, ok := o.Attrs[name]; ok {
			return v, nil
		}
		if m, ok := o.Class.lookup(name); ok {
			return &FuncVal{Code: m.Code, Defaults: m.Defaults, Self: o, Class: m.Class}, nil
		}
		if v, ok := o.Class.lookupConst(name); ok {
			return v, nil
		}
		return nil, excf("AttributeError", "'%s' object has no attribute '%s'", o.Class.Name, name)
	case *ClassVal:
		if m, ok := o.lookup(name); ok {
			return m, nil
		}
		if v, ok := o.lookupConst(name); ok {
			return v, nil
		}
		return nil, excf("AttributeError", "type '%s' has no attribute '%s'", o.Name, name)
	case *ExcInstanceVal:
		if name == "message" || name == "args" {
			return o.Msg, nil
		}
		return nil, excf("AttributeError", "'%s' object has no attribute '%s'", o.Type, name)
	case StrVal:
		return vm.strMethod(o, name)
	case *ListVal:
		return vm.listMethod(o, name)
	case *DictVal:
		return vm.dictMethod(o, name)
	}
	return nil, excf("AttributeError", "'%s' object has no attribute '%s'", obj.TypeName(), name)
}

func nativeMethod(name string, fn func(vm *VM, args []Value) (Value, *Exc)) Value {
	return &BuiltinVal{Name: name, Fn: fn}
}

func needArgs(name string, args []Value, lo, hi int) *Exc {
	if len(args) < lo || len(args) > hi {
		return excf("TypeError", "%s() takes %d to %d arguments (%d given)", name, lo, hi, len(args))
	}
	return nil
}

func argStr(name string, args []Value, i int) (StrVal, *Exc) {
	s, ok := args[i].(StrVal)
	if !ok {
		return StrVal{}, excf("TypeError", "%s() argument %d must be str, not %s", name, i+1, args[i].TypeName())
	}
	return s, nil
}

func argInt(name string, args []Value, i int) (IntVal, *Exc) {
	v, ok := asInt(args[i])
	if !ok {
		return IntVal{}, excf("TypeError", "%s() argument %d must be int, not %s", name, i+1, args[i].TypeName())
	}
	return v, nil
}

// concreteIdx concretizes a small-int argument used as a structural position
// (e.g. find's start offset).
func (vm *VM) concreteIdx(v IntVal) int {
	if v.Big != nil {
		return 1 << 30
	}
	if v.V.IsSymbolic() {
		return int(int64(vm.m.ConcretizeFork(llpcListIndexCheck+3000, v.V)))
	}
	return int(v.V.Int())
}

func (vm *VM) strMethod(s StrVal, name string) (Value, *Exc) {
	switch name {
	case "find", "index":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 2); e != nil {
				return nil, e
			}
			sub, e := argStr(name, args, 0)
			if e != nil {
				return nil, e
			}
			start := 0
			if len(args) == 2 {
				iv, e := argInt(name, args, 1)
				if e != nil {
					return nil, e
				}
				start = vm.concreteIdx(iv)
			}
			pos := vm.strFind(s, sub, start)
			if pos < 0 && name == "index" {
				return nil, excf("ValueError", "substring not found")
			}
			return MkInt(int64(pos)), nil
		}), nil
	case "startswith", "endswith":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			sub, e := argStr(name, args, 0)
			if e != nil {
				return nil, e
			}
			if sub.Len() > s.Len() {
				return MkBool(false), nil
			}
			pos := 0
			if name == "endswith" {
				pos = s.Len() - sub.Len()
			}
			return BoolVal{vm.strMatchAt(s, sub, pos)}, nil
		}), nil
	case "strip", "lstrip", "rstrip":
		mode := 3
		if name == "lstrip" {
			mode = 1
		} else if name == "rstrip" {
			mode = 2
		}
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 0, 0); e != nil {
				return nil, e
			}
			return vm.strStrip(s, mode), nil
		}), nil
	case "split":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 0, 1); e != nil {
				return nil, e
			}
			sep := StrVal{}
			if len(args) == 1 {
				sv, e := argStr(name, args, 0)
				if e != nil {
					return nil, e
				}
				sep = sv
			}
			return vm.strSplit(s, sep), nil
		}), nil
	case "join":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			lst, ok := args[0].(*ListVal)
			if !ok {
				return nil, excf("TypeError", "join() argument must be a list")
			}
			return vm.strJoin(s, lst)
		}), nil
	case "replace":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 2, 2); e != nil {
				return nil, e
			}
			oldS, e := argStr(name, args, 0)
			if e != nil {
				return nil, e
			}
			newS, e := argStr(name, args, 1)
			if e != nil {
				return nil, e
			}
			return vm.strReplace(s, oldS, newS), nil
		}), nil
	case "count":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			sub, e := argStr(name, args, 0)
			if e != nil {
				return nil, e
			}
			return MkInt(int64(vm.strCount(s, sub))), nil
		}), nil
	case "lower", "upper":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 0, 0); e != nil {
				return nil, e
			}
			return vm.strCaseMap(s, name == "lower"), nil
		}), nil
	case "isdigit":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			return BoolVal{vm.strClassAll(s, isDigitExpr, llpcStrIsDigit)}, nil
		}), nil
	case "isalpha":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			return BoolVal{vm.strClassAll(s, isAlphaExpr, llpcStrIsAlpha)}, nil
		}), nil
	case "isspace":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			return BoolVal{vm.strClassAll(s, isSpaceExpr, llpcStrIsSpace)}, nil
		}), nil
	case "rfind":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			sub, e := argStr(name, args, 0)
			if e != nil {
				return nil, e
			}
			return MkInt(int64(vm.strRFind(s, sub))), nil
		}), nil
	case "splitlines":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 0, 0); e != nil {
				return nil, e
			}
			return vm.strSplit(s, MkStr("\n")), nil
		}), nil
	case "zfill":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			iv, e := argInt(name, args, 0)
			if e != nil {
				return nil, e
			}
			return vm.strPad(s, vm.concreteIdx(iv), '0', true), nil
		}), nil
	case "rjust", "ljust":
		left := name == "rjust" // rjust pads on the left
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 2); e != nil {
				return nil, e
			}
			iv, e := argInt(name, args, 0)
			if e != nil {
				return nil, e
			}
			fill := byte(' ')
			if len(args) == 2 {
				fs, e := argStr(name, args, 1)
				if e != nil {
					return nil, e
				}
				if fs.Len() != 1 {
					return nil, excf("TypeError", "fill character must be exactly one character")
				}
				fill = byte(fs.B[0].C)
			}
			return vm.strPad(s, vm.concreteIdx(iv), fill, left), nil
		}), nil
	case "partition":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			sep, e := argStr(name, args, 0)
			if e != nil {
				return nil, e
			}
			if sep.Len() == 0 {
				return nil, excf("ValueError", "empty separator")
			}
			pos := vm.strFind(s, sep, 0)
			if pos < 0 {
				return &ListVal{Items: []Value{s, MkStr(""), MkStr("")}}, nil
			}
			return &ListVal{Items: []Value{
				StrVal{B: append([]lowlevel.SVal(nil), s.B[:pos]...)},
				sep,
				StrVal{B: append([]lowlevel.SVal(nil), s.B[pos+sep.Len():]...)},
			}}, nil
		}), nil
	case "capitalize":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 0, 0); e != nil {
				return nil, e
			}
			low := vm.strCaseMap(s, true)
			if low.Len() == 0 {
				return low, nil
			}
			head := vm.strCaseMap(StrVal{B: low.B[:1]}, false)
			return strConcat(head, StrVal{B: low.B[1:]}), nil
		}), nil
	}
	return nil, excf("AttributeError", "'str' object has no attribute '%s'", name)
}

func (vm *VM) listMethod(l *ListVal, name string) (Value, *Exc) {
	switch name {
	case "append":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			l.Items = append(l.Items, args[0])
			return None, nil
		}), nil
	case "extend":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			other, ok := args[0].(*ListVal)
			if !ok {
				return nil, excf("TypeError", "extend() argument must be a list")
			}
			l.Items = append(l.Items, other.Items...)
			return None, nil
		}), nil
	case "pop":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 0, 1); e != nil {
				return nil, e
			}
			if len(l.Items) == 0 {
				return nil, excf("IndexError", "pop from empty list")
			}
			i := len(l.Items) - 1
			if len(args) == 1 {
				iv, e := argInt(name, args, 0)
				if e != nil {
					return nil, e
				}
				i, e = vm.seqIndex(iv, len(l.Items), "pop index out of range")
				if e != nil {
					return nil, e
				}
			}
			v := l.Items[i]
			l.Items = append(l.Items[:i], l.Items[i+1:]...)
			return v, nil
		}), nil
	case "insert":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 2, 2); e != nil {
				return nil, e
			}
			iv, e := argInt(name, args, 0)
			if e != nil {
				return nil, e
			}
			i := vm.concreteIdx(iv)
			if i < 0 {
				i = 0
			}
			if i > len(l.Items) {
				i = len(l.Items)
			}
			l.Items = append(l.Items[:i], append([]Value{args[1]}, l.Items[i:]...)...)
			return None, nil
		}), nil
	case "index":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			for i, it := range l.Items {
				eq, e := vm.valuesEqualBranch(it, args[0])
				if e != nil {
					return nil, e
				}
				if eq {
					return MkInt(int64(i)), nil
				}
			}
			return nil, excf("ValueError", "value is not in list")
		}), nil
	case "reverse":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			for i, j := 0, len(l.Items)-1; i < j; i, j = i+1, j-1 {
				l.Items[i], l.Items[j] = l.Items[j], l.Items[i]
			}
			return None, nil
		}), nil
	}
	return nil, excf("AttributeError", "'list' object has no attribute '%s'", name)
}

func (vm *VM) dictMethod(d *DictVal, name string) (Value, *Exc) {
	switch name {
	case "get":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 2); e != nil {
				return nil, e
			}
			v, found, e := vm.dictLookup(d, args[0])
			if e != nil {
				return nil, e
			}
			if found {
				return v, nil
			}
			if len(args) == 2 {
				return args[1], nil
			}
			return None, nil
		}), nil
	case "setdefault":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 2); e != nil {
				return nil, e
			}
			v, found, e := vm.dictLookup(d, args[0])
			if e != nil {
				return nil, e
			}
			if found {
				return v, nil
			}
			var def Value = None
			if len(args) == 2 {
				def = args[1]
			}
			if e := vm.dictSet(d, args[0], def); e != nil {
				return nil, e
			}
			return def, nil
		}), nil
	case "keys":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			return &ListVal{Items: d.dictKeys()}, nil
		}), nil
	case "values":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			return &ListVal{Items: d.dictValues()}, nil
		}), nil
	case "items":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			return &ListVal{Items: d.dictItems()}, nil
		}), nil
	case "has_key":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			_, found, e := vm.dictLookup(d, args[0])
			if e != nil {
				return nil, e
			}
			return MkBool(found), nil
		}), nil
	case "update":
		return nativeMethod(name, func(vm *VM, args []Value) (Value, *Exc) {
			if e := needArgs(name, args, 1, 1); e != nil {
				return nil, e
			}
			other, ok := args[0].(*DictVal)
			if !ok {
				return nil, excf("TypeError", "update() argument must be a dict")
			}
			for _, e := range other.order {
				if e.deleted {
					continue
				}
				if exc := vm.dictSet(d, e.key, e.val); exc != nil {
					return nil, exc
				}
			}
			return None, nil
		}), nil
	}
	return nil, excf("AttributeError", "'dict' object has no attribute '%s'", name)
}
