package minipy

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// builtin resolves a built-in name: functions, exception constructors, and
// the print statement's function form.
func (vm *VM) builtin(name string) (Value, bool) {
	if builtinExceptionTypes[name] {
		typ := name
		return &BuiltinVal{Name: typ, Fn: func(vm *VM, args []Value) (Value, *Exc) {
			msg := StrVal{}
			if len(args) > 0 {
				s, e := vm.str(args[0])
				if e != nil {
					return nil, e
				}
				msg = s
			}
			return &ExcInstanceVal{Type: typ, Msg: msg}, nil
		}}, true
	}
	fn, ok := builtinTable[name]
	if !ok {
		return nil, false
	}
	return &BuiltinVal{Name: name, Fn: fn}, true
}

var builtinTable map[string]func(vm *VM, args []Value) (Value, *Exc)

func init() {
	builtinTable = map[string]func(vm *VM, args []Value) (Value, *Exc){
		"len":        builtinLen,
		"ord":        builtinOrd,
		"chr":        builtinChr,
		"str":        builtinStr,
		"int":        builtinInt,
		"bool":       builtinBool,
		"range":      builtinRange,
		"xrange":     builtinRange,
		"print":      builtinPrint,
		"abs":        builtinAbs,
		"min":        builtinMinMax(true),
		"max":        builtinMinMax(false),
		"isinstance": builtinIsInstance,
		"type":       builtinType,
		"repr":       builtinRepr,
		"list":       builtinList,
		"dict":       builtinDict,
		"sorted":     builtinSorted,
		"sum":        builtinSum,
		"enumerate":  builtinEnumerate,
	}
}

func builtinLen(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("len", args, 1, 1); e != nil {
		return nil, e
	}
	switch x := args[0].(type) {
	case StrVal:
		return MkInt(int64(x.Len())), nil
	case *ListVal:
		return MkInt(int64(len(x.Items))), nil
	case *DictVal:
		return MkInt(int64(x.Len())), nil
	}
	return nil, excf("TypeError", "object of type '%s' has no len()", args[0].TypeName())
}

func builtinOrd(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("ord", args, 1, 1); e != nil {
		return nil, e
	}
	s, ok := args[0].(StrVal)
	if !ok || s.Len() != 1 {
		return nil, excf("TypeError", "ord() expected a character")
	}
	return vm.internInt(IntVal{V: lowlevel.ZExtV(s.B[0], symexpr.W64)}), nil
}

func builtinChr(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("chr", args, 1, 1); e != nil {
		return nil, e
	}
	iv, e := argInt("chr", args, 0)
	if e != nil {
		return nil, e
	}
	if iv.Big != nil {
		return nil, excf("ValueError", "chr() arg not in range(256)")
	}
	inRange := lowlevel.BoolAndV(
		lowlevel.SleV(c64(0), iv.V),
		lowlevel.SltV(iv.V, c64(256)),
	)
	if !vm.m.Branch(llpcBuiltinChr, inRange) {
		return nil, excf("ValueError", "chr() arg not in range(256)")
	}
	b := lowlevel.TruncV(iv.V, symexpr.W8)
	if !vm.cfg.AvoidSymbolicPointers && b.IsSymbolic() {
		c := vm.m.ConcretizeFork(llpcStrCharIntern, b)
		return MkStr(string([]byte{byte(c)})), nil
	}
	return StrVal{B: []lowlevel.SVal{b}}, nil
}

func builtinStr(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("str", args, 0, 1); e != nil {
		return nil, e
	}
	if len(args) == 0 {
		return MkStr(""), nil
	}
	return vm.str(args[0])
}

// builtinInt implements int(x) and int(str): digit-by-digit parsing with
// validity branches, as the CPython strtol path does.
func builtinInt(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("int", args, 1, 1); e != nil {
		return nil, e
	}
	switch x := args[0].(type) {
	case IntVal:
		return x, nil
	case BoolVal:
		return IntVal{V: lowlevel.ZExtV(x.B, symexpr.W64)}, nil
	case StrVal:
		s := vm.strStrip(x, 3)
		if s.Len() == 0 {
			return nil, excf("ValueError", "invalid literal for int(): '%s'", x.Concrete())
		}
		neg := false
		i := 0
		// The sign check must branch on symbolic bytes, exactly like the
		// interpreter's strtol does; treating symbolic signs as non-signs
		// would diverge from vanilla semantics.
		if vm.m.Branch(llpcBuiltinInt, lowlevel.EqV(s.B[0], c8v('-'))) {
			neg = true
			i = 1
		} else if vm.m.Branch(llpcBuiltinInt, lowlevel.EqV(s.B[0], c8v('+'))) {
			i = 1
		}
		if i == 1 && s.Len() == 1 {
			return nil, excf("ValueError", "invalid literal for int(): '%s'", x.Concrete())
		}
		acc := c64(0)
		for ; i < s.Len(); i++ {
			vm.m.Step(1)
			b := s.B[i]
			if !vm.m.Branch(llpcBuiltinInt, isDigitExpr(b)) {
				return nil, excf("ValueError", "invalid literal for int(): '%s'", x.Concrete())
			}
			d := lowlevel.SubV(lowlevel.ZExtV(b, symexpr.W64), c64('0'))
			acc = lowlevel.AddV(lowlevel.MulV(acc, c64(10)), d)
		}
		if neg {
			acc = lowlevel.NegV(acc)
		}
		if vm.smallFits(acc) {
			return vm.internInt(IntVal{V: acc}), nil
		}
		return IntVal{Big: vm.bigFromSmall(acc)}, nil
	}
	return nil, excf("TypeError", "int() argument must be a string or a number, not '%s'", args[0].TypeName())
}

func builtinBool(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("bool", args, 1, 1); e != nil {
		return nil, e
	}
	t, e := vm.truth(args[0])
	if e != nil {
		return nil, e
	}
	return BoolVal{t}, nil
}

func builtinRange(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("range", args, 1, 3); e != nil {
		return nil, e
	}
	vals := make([]lowlevel.SVal, len(args))
	for i := range args {
		iv, e := argInt("range", args, i)
		if e != nil {
			return nil, e
		}
		if iv.Big != nil {
			return nil, excf("OverflowError", "range() result has too many items")
		}
		vals[i] = iv.V
	}
	switch len(args) {
	case 1:
		return &rangeIter{cur: c64(0), stop: vals[0], step: 1}, nil
	case 2:
		return &rangeIter{cur: vals[0], stop: vals[1], step: 1}, nil
	default:
		step := vals[2]
		if step.IsSymbolic() {
			return nil, excf("ValueError", "range() step must be concrete in MiniPy")
		}
		if step.Int() == 0 {
			return nil, excf("ValueError", "range() arg 3 must not be zero")
		}
		return &rangeIter{cur: vals[0], stop: vals[1], step: step.Int()}, nil
	}
}

func builtinPrint(vm *VM, args []Value) (Value, *Exc) {
	line := ""
	for i, a := range args {
		if i > 0 {
			line += " "
		}
		s, e := vm.str(a)
		if e != nil {
			return nil, e
		}
		line += s.Concrete()
	}
	vm.printed = append(vm.printed, line)
	return None, nil
}

func builtinAbs(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("abs", args, 1, 1); e != nil {
		return nil, e
	}
	iv, e := argInt("abs", args, 0)
	if e != nil {
		return nil, e
	}
	if iv.Big != nil {
		return IntVal{Big: &BigInt{Neg: false, D: iv.Big.D}}, nil
	}
	if vm.m.Branch(llpcIntSign, lowlevel.SltV(iv.V, c64(0))) {
		return vm.negate(iv)
	}
	return iv, nil
}

func builtinMinMax(isMin bool) func(vm *VM, args []Value) (Value, *Exc) {
	name := "max"
	if isMin {
		name = "min"
	}
	return func(vm *VM, args []Value) (Value, *Exc) {
		items := args
		if len(args) == 1 {
			lst, ok := args[0].(*ListVal)
			if !ok {
				return nil, excf("TypeError", "%s() arg must be a list or multiple values", name)
			}
			items = lst.Items
		}
		if len(items) == 0 {
			return nil, excf("ValueError", "%s() arg is an empty sequence", name)
		}
		best := items[0]
		for _, it := range items[1:] {
			kind := cmpLt
			if !isMin {
				kind = cmpGt
			}
			cv, e := vm.compare(kind, it, best)
			if e != nil {
				return nil, e
			}
			take, e := vm.branchTruth(cv)
			if e != nil {
				return nil, e
			}
			if take {
				best = it
			}
		}
		return best, nil
	}
}

func builtinIsInstance(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("isinstance", args, 2, 2); e != nil {
		return nil, e
	}
	switch want := args[1].(type) {
	case *BuiltinVal:
		// Built-in type names used as type objects: str, int, list, dict.
		switch want.Name {
		case "str":
			_, ok := args[0].(StrVal)
			return MkBool(ok), nil
		case "int":
			_, ok := asInt(args[0])
			return MkBool(ok), nil
		case "list":
			_, ok := args[0].(*ListVal)
			return MkBool(ok), nil
		case "dict":
			_, ok := args[0].(*DictVal)
			return MkBool(ok), nil
		case "bool":
			_, ok := args[0].(BoolVal)
			return MkBool(ok), nil
		}
		if builtinExceptionTypes[want.Name] {
			ev, ok := args[0].(*ExcInstanceVal)
			return MkBool(ok && excMatches(ev.Type, want.Name)), nil
		}
		return MkBool(false), nil
	case *ClassVal:
		inst, ok := args[0].(*InstanceVal)
		return MkBool(ok && inst.Class.isSubclassOf(want.Name)), nil
	}
	return nil, excf("TypeError", "isinstance() arg 2 must be a type")
}

func builtinType(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("type", args, 1, 1); e != nil {
		return nil, e
	}
	return MkStr(args[0].TypeName()), nil
}

func builtinRepr(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("repr", args, 1, 1); e != nil {
		return nil, e
	}
	return MkStr(Repr(args[0])), nil
}

func builtinList(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("list", args, 0, 1); e != nil {
		return nil, e
	}
	if len(args) == 0 {
		return &ListVal{}, nil
	}
	switch x := args[0].(type) {
	case *ListVal:
		return &ListVal{Items: append([]Value(nil), x.Items...)}, nil
	case StrVal:
		out := &ListVal{}
		for i := 0; i < x.Len(); i++ {
			out.Items = append(out.Items, vm.strIndexChar(x, i))
		}
		return out, nil
	case *DictVal:
		return &ListVal{Items: x.dictKeys()}, nil
	}
	return nil, excf("TypeError", "list() argument must be iterable")
}

func builtinDict(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("dict", args, 0, 0); e != nil {
		return nil, e
	}
	return NewDict(), nil
}

// builtinSorted returns a new sorted list, using the interpreter's own
// comparison routines (so symbolic elements branch like any comparison).
func builtinSorted(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("sorted", args, 1, 1); e != nil {
		return nil, e
	}
	var items []Value
	switch x := args[0].(type) {
	case *ListVal:
		items = append(items, x.Items...)
	case *DictVal:
		items = append(items, x.dictKeys()...)
	case StrVal:
		for i := 0; i < x.Len(); i++ {
			items = append(items, vm.strIndexChar(x, i))
		}
	default:
		return nil, excf("TypeError", "'%s' object is not iterable", args[0].TypeName())
	}
	// Insertion sort via the interpreter's compare — stable and branch-exact.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0; j-- {
			vm.m.Step(1)
			cv, e := vm.compare(cmpLt, items[j], items[j-1])
			if e != nil {
				return nil, e
			}
			less, e := vm.branchTruth(cv)
			if e != nil {
				return nil, e
			}
			if !less {
				break
			}
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	return &ListVal{Items: items}, nil
}

// builtinSum adds the elements of a list of ints.
func builtinSum(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("sum", args, 1, 1); e != nil {
		return nil, e
	}
	lst, ok := args[0].(*ListVal)
	if !ok {
		return nil, excf("TypeError", "sum() argument must be a list")
	}
	var acc Value = MkInt(0)
	for _, it := range lst.Items {
		v, e := vm.binary(binAdd, acc, it)
		if e != nil {
			return nil, e
		}
		acc = v
	}
	return acc, nil
}

// builtinEnumerate returns [[0, x0], [1, x1], ...].
func builtinEnumerate(vm *VM, args []Value) (Value, *Exc) {
	if e := needArgs("enumerate", args, 1, 1); e != nil {
		return nil, e
	}
	lst, ok := args[0].(*ListVal)
	if !ok {
		return nil, excf("TypeError", "enumerate() argument must be a list")
	}
	out := &ListVal{}
	for i, it := range lst.Items {
		out.Items = append(out.Items, &ListVal{Items: []Value{MkInt(int64(i)), it}})
	}
	return out, nil
}
