package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"chef/internal/chef"
	"chef/internal/obs"
	"chef/internal/symtest"
)

// jobStatus is the wire form of GET /v1/jobs/{id}.
type jobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant,omitempty"`
	State  JobState `json:"state"`
	Error  string   `json:"error,omitempty"`
	// Summary is the session's chef.Summary snapshot, present once the job
	// is terminal (absent for failed jobs that never built a session).
	Summary *chef.Summary `json:"summary,omitempty"`
	Tests   int           `json:"tests,omitempty"`
	// Metrics is the job's own registry snapshot (per-job counters such as
	// solver.cache.hits.persist), present once the job is terminal. The
	// server's /metrics endpoint reports the merged totals.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// status snapshots a job under the server lock.
func (s *Server) status(j *Job) jobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := jobStatus{ID: j.ID, Tenant: j.Tenant, State: j.State, Error: j.Error}
	if j.State.Terminal() {
		if j.Result != nil {
			sum := j.Result.Summary
			st.Summary = &sum
			st.Tests = len(j.Result.Tests)
		}
		m := j.Metrics
		st.Metrics = &m
	}
	return st
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/tests", s.handleTests)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a job. The tenant is the X-API-Key header ("" is the
// anonymous tenant). Responses: 202 accepted, 400 invalid spec, 429 queue
// full, 503 draining (both with Retry-After).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.mInvalid.Inc()
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := s.Submit(r.Header.Get("X-API-Key"), spec)
	if err != nil {
		var se *SubmitError
		if ok := asSubmitError(err, &se); ok {
			switch {
			case se.Invalid:
				writeError(w, http.StatusBadRequest, "%v", se.Err)
			case se.Busy:
				w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfterSeconds))
				writeError(w, http.StatusTooManyRequests, "%v", se.Err)
			default:
				// Draining: the process is going away, but a peer (or this
				// one, restarted) will take submissions again — give clients
				// the same backoff hint the 429 path sets.
				w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfterSeconds))
				writeError(w, http.StatusServiceUnavailable, "%v", se.Err)
			}
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(j))
}

// asSubmitError is errors.As for *SubmitError without the reflection round
// trip (Submit returns it directly).
func asSubmitError(err error, out **SubmitError) bool {
	se, ok := err.(*SubmitError)
	if ok {
		*out = se
	}
	return ok
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleEvents streams the job's JSONL trace, following it until the job is
// terminal (chunked; each batch is flushed as it is emitted).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	offset := 0
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		data, next, done := j.trace.readFrom(offset)
		offset = next
		if len(data) > 0 {
			if _, err := w.Write(data); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// handleTests returns the generated test cases as NDJSON — the same bytes,
// in the same order, as the chef CLI's -out file. 409 until terminal.
func (s *Server) handleTests(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	terminal := j.State.Terminal()
	res := j.Result
	s.mu.Unlock()
	if !terminal {
		writeError(w, http.StatusConflict, "job %s is %s; tests are available once it is terminal", j.ID, j.State)
		return
	}
	var tests []symtest.SerializedTest
	if res != nil {
		tests = res.Tests
	}
	data, err := symtest.MarshalTests(tests)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	s.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, s.status(j))
}

// handleHealthz reports liveness plus the admission-relevant load: queue
// depth, running count and the per-tenant running map, so a load balancer
// can steer tenants away from a saturated instance. The status codes are
// unchanged (200 healthy, 503 draining); only the body grew a JSON shape.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleMetrics renders the server-total registry, first mirroring the
// persistent store's live traffic counters into it. The format is
// content-negotiated on the Accept header: application/json returns the
// structured snapshot, text/plain (what Prometheus sends) returns the
// exposition format with per-tenant and per-outcome labels, and anything
// else (a bare curl) keeps the original human-readable text dump.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mirrorPersist()
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		writeJSON(w, http.StatusOK, s.opts.Metrics.Snapshot())
	case strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics"):
		w.Header().Set("Content-Type", obs.PromContentType)
		s.opts.Metrics.WriteProm(w)
		s.writePromExtras(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.opts.Metrics.WriteText(w)
	}
}

// writePromExtras appends the labeled serve-level families the flat registry
// cannot express: the job ledger keyed by outcome and the live per-tenant
// running gauge.
func (s *Server) writePromExtras(w io.Writer) {
	outcomes := []struct {
		name string
		c    *obs.Counter
	}{
		{"cancelled", s.mCancelled},
		{"degraded", s.mDegraded},
		{"failed", s.mFailed},
		{"invalid", s.mInvalid},
		{"rejected", s.mRejected},
		{"submitted", s.mSubmitted},
		{"succeeded", s.mSucceeded},
	}
	fmt.Fprintf(w, "# TYPE chef_serve_jobs_by_outcome_total counter\n")
	for _, o := range outcomes {
		fmt.Fprintf(w, "chef_serve_jobs_by_outcome_total{outcome=\"%s\"} %d\n", o.name, o.c.Value())
	}
	h := s.Health()
	tenants := make([]string, 0, len(h.Tenants))
	for t := range h.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(w, "# TYPE chef_serve_tenant_running gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "chef_serve_tenant_running{tenant=\"%s\"} %d\n", obs.PromEscapeLabel(t), h.Tenants[t])
	}
}

// mirrorPersist copies the persistent store's cumulative counters into the
// registry as deltas since the last mirror (registry counters only add).
func (s *Server) mirrorPersist() {
	p := s.opts.Persist
	if p == nil {
		return
	}
	reg := s.opts.Metrics
	s.mu.Lock()
	defer s.mu.Unlock()
	reg.Gauge(obs.MSolverPersistLoaded).Set(int64(p.Loaded()))
	mirror := func(name string, cur int64, last *int64) {
		if d := cur - *last; d > 0 {
			reg.Counter(name).Add(d)
			*last = cur
		}
	}
	mirror(obs.MSolverPersistAppended, p.Appended(), &s.lastPersist.appended)
	mirror(obs.MSolverPersistRetries, p.Retries(), &s.lastPersist.retries)
	mirror(obs.MSolverPersistWriteErrors, p.WriteErrors(), &s.lastPersist.writeErrs)
	mirror(obs.MSolverPersistLost, p.Lost(), &s.lastPersist.lost)
}
