package serve

import (
	"bytes"
	"encoding/json"
	"sync"

	"chef/internal/obs"
)

// traceBuffer is the per-job JSONL event sink behind GET /v1/jobs/{id}/events.
// Unlike obs.NewJSONL it is unbuffered, so events become readable as they are
// emitted, and it supports offset reads for incremental streaming. Events are
// not wall-clock stamped: a job's trace depends only on its spec and seed.
type traceBuffer struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	done bool
}

func newTraceBuffer() *traceBuffer { return &traceBuffer{} }

// Emit implements obs.Tracer.
func (t *traceBuffer) Emit(ev *obs.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	t.mu.Lock()
	t.buf.Write(data)
	t.buf.WriteByte('\n')
	t.mu.Unlock()
}

// finish marks the trace complete (no further events will arrive).
func (t *traceBuffer) finish() {
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
}

// readFrom copies the bytes at and after offset, reporting the new offset
// and whether the trace is complete.
func (t *traceBuffer) readFrom(offset int) (data []byte, next int, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf.Bytes()
	if offset > len(b) {
		offset = len(b)
	}
	data = append([]byte(nil), b[offset:]...)
	return data, len(b), t.done
}
