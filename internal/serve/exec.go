package serve

import (
	"context"
	"fmt"

	"chef/internal/chef"
	"chef/internal/faults"
	"chef/internal/obs"
	"chef/internal/solver"
	"chef/internal/symtest"
)

// ExecOptions carries the process-level resources a job runs against. All
// fields are optional; the zero value runs the job fully isolated.
type ExecOptions struct {
	// Cache, when non-nil, is an in-memory counterexample cache shared with
	// other jobs. Sharing trades per-job reproducibility for throughput (an
	// in-memory hit replays no propagation cost), so the server only sets it
	// under its opt-in SharedCache flag; see solver.QueryCache.
	Cache *solver.QueryCache
	// Persist, when non-nil, is the job's slice of the persistent store —
	// typically a PersistentStore.View() snapshot, whose answerable set is
	// fixed for the job's lifetime (hits replay their recorded cost, so warm
	// jobs stay byte-identical to cold ones).
	Persist solver.PersistLayer
	// Metrics, when non-nil, receives the job's counters and histograms
	// (the server gives each job a child registry and merges it into the
	// server totals when the job finishes).
	Metrics *obs.Registry
	// Tracer, when non-nil, receives the job's exploration events.
	Tracer obs.Tracer
	// Spans, when non-nil, profiles the job's layers (see obs.SpanProfiler).
	// Single-goroutine: the server builds one per job.
	Spans *obs.SpanProfiler
	// Faults is the fault-injection plan; the session derives its injector
	// from (plan seed, Name), and worker.stall rules match SessionIndex.
	Faults *faults.Plan
	// Name labels the session's trace events and scopes its fault injector.
	Name string
	// SessionIndex is the job's global ordinal (worker.stall session= rules
	// match on it).
	SessionIndex int
}

// JobResult is the outcome of one executed job.
type JobResult struct {
	// Tests are the generated test cases in symtest.SortTests order — the
	// same serialized form, in the same order, as the chef CLI emits.
	Tests []symtest.SerializedTest `json:"tests"`
	// Summary is the session's headline numbers (chef.Summary).
	Summary chef.Summary `json:"summary"`
	// Cancelled reports the job stopped early because its context was done;
	// Tests holds whatever was generated before the cancellation point.
	Cancelled bool `json:"cancelled,omitempty"`
	// Stalled reports the session was stalled by an injected worker.stall
	// fault and never explored (a degraded but terminal outcome).
	Stalled bool `json:"stalled,omitempty"`
	// CacheStats is the job's in-memory query-cache traffic.
	CacheStats solver.CacheStats `json:"-"`
	// SolverStats is the job's solver traffic, including persistent-store
	// hits (CacheHitsPersist > 0 on a warm job).
	SolverStats solver.Stats `json:"-"`
}

// Execute runs one job to completion (or cancellation) and returns its
// result. It is the single job entry point shared by the server's workers
// and the chef CLI: both paths build the same session from the same spec, so
// a served run is byte-identical to a CLI run with the same spec and seed by
// construction.
func Execute(ctx context.Context, spec JobSpec, eo ExecOptions) (JobResult, error) {
	if err := spec.Validate(); err != nil {
		return JobResult{}, fmt.Errorf("invalid job spec: %w", err)
	}
	tgt, err := spec.build()
	if err != nil {
		return JobResult{}, err
	}
	strat, _ := ParseStrategy(spec.Strategy)
	mode, _ := solver.ParseCacheMode(spec.CacheMode)
	smode, _ := solver.ParseSolverMode(spec.SolverMode)
	opts := chef.Options{
		Strategy:      strat,
		Seed:          spec.Seed,
		StepLimit:     spec.StepLimit,
		SolverOptions: solver.Options{Cache: eo.Cache, Mode: mode, SolverMode: smode},
		Metrics:       eo.Metrics,
		Tracer:        eo.Tracer,
		Spans:         eo.Spans,
		Name:          eo.Name,
		Faults:        eo.Faults,
		SessionIndex:  eo.SessionIndex,
	}
	if eo.Persist != nil {
		// Conditional on purpose: Persist is an interface, and assigning a
		// nil concrete pointer directly would make it non-nil (typed nil).
		opts.SolverOptions.Persist = eo.Persist
	}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("%s/%s/%d", tgt.name, spec.Strategy, spec.Seed)
	}

	var (
		tests []chef.TestCase
		res   JobResult
	)
	if spec.Shards >= 1 {
		// Sharded path: same spec, same seed, sharded semantics. The shared
		// in-memory cache is ignored on this path — a ShardedSession gives
		// every range cell a private cache so cell clocks stay deterministic
		// (see the chef.ShardedSession package comment); cross-job warmth
		// still flows through the persist view.
		ss := chef.NewShardedSession(tgt.prog, opts, spec.Shards)
		tests = ss.RunContext(ctx, spec.Budget)
		res = JobResult{
			Summary:     ss.Summary(),
			Cancelled:   ss.Cancelled(),
			Stalled:     ss.Stalled(),
			CacheStats:  ss.CacheStats(),
			SolverStats: ss.SolverStats(),
		}
	} else {
		session := chef.NewSession(tgt.prog, opts)
		tests = session.RunContext(ctx, spec.Budget)
		res = JobResult{
			Summary:     session.Summary(),
			Cancelled:   session.Cancelled(),
			Stalled:     session.Stalled(),
			CacheStats:  session.Engine().Solver().Cache().Stats(),
			SolverStats: session.Engine().Solver().Stats(),
		}
	}
	res.Tests = make([]symtest.SerializedTest, 0, len(tests))
	for _, tc := range tests {
		res.Tests = append(res.Tests, symtest.SerializedTest{
			Package: tgt.name,
			Result:  tc.Result,
			Status:  tc.Status.String(),
			Input:   symtest.EncodeInput(tc.Input),
		})
	}
	symtest.SortTests(res.Tests)
	return res, nil
}

// RenderInput renders one serialized test case's input buffer using the
// spec's input declarations (diagnostic output parity with the chef CLI).
func (s *JobSpec) RenderInput(tc symtest.SerializedTest) string {
	tgt, err := s.build()
	if err != nil {
		return "?"
	}
	in, err := symtest.DecodeInput(tc.Input)
	if err != nil {
		return "?"
	}
	return symtest.InputString(in, tgt.inputs)
}
