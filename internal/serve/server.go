package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"chef/internal/faults"
	"chef/internal/obs"
	"chef/internal/packages"
	"chef/internal/solver"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the worker pool; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueCap bounds the number of jobs waiting for a worker slot; a full
	// queue rejects submissions with 429 + Retry-After. 0 means 64.
	QueueCap int
	// TenantLimit caps how many jobs of one tenant (X-API-Key) may run
	// concurrently; excess jobs wait in the queue behind other tenants'
	// work. 0 disables per-tenant limits.
	TenantLimit int
	// RetryAfterSeconds is the Retry-After hint on 429 responses; 0 means 1.
	RetryAfterSeconds int
	// Persist, when non-nil, is the shared warm store: every job gets a
	// View() snapshot at start (deterministic per job) and appends flow back
	// for later jobs — cross-job warmth without cross-job nondeterminism.
	Persist *solver.PersistentStore
	// SharedCache shares one in-memory counterexample cache across all jobs.
	// Off by default: an in-memory hit replays no propagation cost, so a
	// shared cache makes a job's stats depend on what ran before it. Opt-in
	// throughput knob; cross-job warmth flows through Persist regardless.
	SharedCache bool
	// CacheCapacity sizes the shared cache when SharedCache is set.
	CacheCapacity int
	// Faults is the server-wide fault-injection plan, threaded into every
	// job. A job's injector is scoped "tenant/jobID", and worker.stall
	// session= rules match the job's global ordinal.
	Faults *faults.Plan
	// Metrics is the server-total registry (serve.* counters, merged per-job
	// engine metrics). Required for /metrics; NewServer creates one if nil.
	Metrics *obs.Registry
	// Tracer, when non-nil, additionally receives every job's events (the
	// per-job /events buffer is always populated independently).
	Tracer obs.Tracer
}

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states. The terminal states are succeeded, degraded,
// cancelled and failed; every submitted job reaches exactly one of them.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSucceeded JobState = "succeeded"
	// StateDegraded is terminal-but-degraded: the job's session was stalled
	// by an injected worker.stall fault and produced no tests.
	StateDegraded  JobState = "degraded"
	StateCancelled JobState = "cancelled"
	StateFailed    JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateSucceeded, StateDegraded, StateCancelled, StateFailed:
		return true
	}
	return false
}

// Job is one tracked submission. Fields are guarded by the server mutex;
// Result and Error are written once, before the state turns terminal.
type Job struct {
	ID      string
	Tenant  string
	Spec    JobSpec
	State   JobState
	Error   string
	Result  *JobResult
	Metrics obs.Snapshot // per-job registry snapshot, set when terminal

	ordinal int // global submission ordinal; SessionIndex for worker.stall
	slots   int // worker slots charged while running (sharded jobs weigh more)
	cancel  context.CancelFunc
	ctx     context.Context
	trace   *traceBuffer
	done    chan struct{} // closed when the job reaches a terminal state
}

// Server owns the job table, the bounded queue and the worker pool.
type Server struct {
	opts  Options
	cache *solver.QueryCache // non-nil iff SharedCache

	mu              sync.Mutex
	cond            *sync.Cond
	jobs            map[string]*Job
	queue           []*Job // FIFO, scanned for the first runnable job
	runningByTenant map[string]int
	slotsInUse      int // worker slots charged to running jobs (see jobSlots)
	nextID          int
	draining        bool
	closed          bool
	wg              sync.WaitGroup

	// lastPersist tracks the store counters already mirrored into the
	// registry (see mirrorPersist).
	lastPersist struct{ appended, retries, writeErrs, lost int64 }

	// serve.* metric handles (always non-nil; see Options.Metrics).
	mSubmitted, mRejected, mInvalid            *obs.Counter
	mSucceeded, mDegraded, mCancelled, mFailed *obs.Counter
	gQueued, gRunning, gSlots                  *obs.Gauge
}

// NewServer builds the server and starts its worker pool.
func NewServer(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.RetryAfterSeconds <= 0 {
		opts.RetryAfterSeconds = 1
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	opts.Metrics.SetVecLabeler(obs.MForksByLLPC, packages.LLPCLabel)
	s := &Server{
		opts:            opts,
		jobs:            map[string]*Job{},
		runningByTenant: map[string]int{},
	}
	if opts.SharedCache {
		s.cache = solver.NewQueryCache(opts.CacheCapacity)
	}
	s.cond = sync.NewCond(&s.mu)
	reg := opts.Metrics
	s.mSubmitted = reg.Counter(obs.MServeJobsSubmitted)
	s.mRejected = reg.Counter(obs.MServeJobsRejected)
	s.mInvalid = reg.Counter(obs.MServeJobsInvalid)
	s.mSucceeded = reg.Counter(obs.MServeJobsSucceeded)
	s.mDegraded = reg.Counter(obs.MServeJobsDegraded)
	s.mCancelled = reg.Counter(obs.MServeJobsCancelled)
	s.mFailed = reg.Counter(obs.MServeJobsFailed)
	s.gQueued = reg.Gauge(obs.MServeJobsQueued)
	s.gRunning = reg.Gauge(obs.MServeJobsRunning)
	s.gSlots = reg.Gauge(obs.MServeSlotsInUse)
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Registry returns the server-total metrics registry.
func (s *Server) Registry() *obs.Registry { return s.opts.Metrics }

// SubmitError distinguishes rejection classes for the HTTP layer.
type SubmitError struct {
	// Busy: the queue is full (HTTP 429 + Retry-After).
	Busy bool
	// Draining: the server no longer accepts work (HTTP 503).
	Draining bool
	// Invalid: the spec failed validation (HTTP 400).
	Invalid bool
	Err     error
}

func (e *SubmitError) Error() string { return e.Err.Error() }

// Submit validates and enqueues a job for the given tenant ("" is the
// anonymous tenant). The spec is validated here so rejection is synchronous;
// compile errors of inline source surface later, as a failed job.
func (s *Server) Submit(tenant string, spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		s.mInvalid.Inc()
		return nil, &SubmitError{Invalid: true, Err: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		s.mRejected.Inc()
		return nil, &SubmitError{Draining: true, Err: fmt.Errorf("server is draining")}
	}
	if len(s.queue) >= s.opts.QueueCap {
		s.mRejected.Inc()
		return nil, &SubmitError{Busy: true, Err: fmt.Errorf("job queue full (%d queued)", len(s.queue))}
	}
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:      fmt.Sprintf("job-%d", s.nextID),
		Tenant:  tenant,
		Spec:    spec,
		State:   StateQueued,
		ordinal: s.nextID - 1,
		ctx:     ctx,
		cancel:  cancel,
		trace:   newTraceBuffer(),
		done:    make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.mSubmitted.Inc()
	s.gQueued.Set(int64(len(s.queue)))
	s.cond.Signal()
	return j, nil
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: a queued job turns terminal immediately, a running
// job's context is cancelled and the session stops at its next check (at
// most one engine run away). Returns false for unknown ids; cancelling an
// already-terminal job is a no-op reporting true.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	switch j.State {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.gQueued.Set(int64(len(s.queue)))
		j.State = StateCancelled
		s.mCancelled.Inc()
		j.cancel()
		close(j.done)
		s.cond.Broadcast()
	case StateRunning:
		j.cancel() // runJob finishes the bookkeeping
	}
	s.mu.Unlock()
	return true
}

// Draining reports whether the server has stopped accepting submissions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops accepting new submissions and waits for the queued and
// running jobs to finish. If ctx expires first, the remaining jobs are
// cancelled (they finish as cancelled, not lost) and Drain keeps waiting
// for the — now prompt — pool shutdown. The worker pool exits; the server
// cannot be reused afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for _, j := range s.jobs {
			if !j.State.Terminal() {
				j.cancel()
			}
		}
		// Queued jobs nobody will pick up turn terminal here.
		for _, j := range s.queue {
			j.State = StateCancelled
			s.mCancelled.Inc()
			close(j.done)
		}
		s.queue = nil
		s.gQueued.Set(0)
		s.cond.Broadcast()
		s.mu.Unlock()
		<-drained
	}
	return err
}

// Close is Drain with no deadline plus persistent-store shutdown; it returns
// the store's close error, if any (lost appends).
func (s *Server) Close() error {
	_ = s.Drain(context.Background())
	if s.opts.Persist != nil {
		return s.opts.Persist.Close()
	}
	return nil
}

// Accounting returns the job ledger used by the no-job-lost invariant:
// submitted == succeeded + degraded + cancelled + failed + queued + running
// at every quiescent point.
func (s *Server) Accounting() (submitted, terminal, queued, running int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	submitted = s.mSubmitted.Value()
	terminal = s.mSucceeded.Value() + s.mDegraded.Value() + s.mCancelled.Value() + s.mFailed.Value()
	queued = s.gQueued.Value()
	running = s.gRunning.Value()
	return
}

// Health is the /healthz payload: liveness plus the load numbers an
// admission controller needs. Tenants maps tenant name to its running job
// count (the anonymous "" tenant reports as "anonymous"); entries exist only
// while at least one job of that tenant runs.
type Health struct {
	Status  string `json:"status"` // "ok" | "draining"
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Workers int    `json:"workers"`
	// SlotsInUse is the worker-slot weight of the running jobs (a sharded
	// job charges one slot per shard worker, capped at Workers).
	SlotsInUse int            `json:"slots_in_use"`
	Tenants    map[string]int `json:"tenants_running,omitempty"`
}

// Health snapshots the server's load under the lock.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Status:     "ok",
		Queued:     len(s.queue),
		Running:    int(s.gRunning.Value()),
		Workers:    s.opts.Workers,
		SlotsInUse: s.slotsInUse,
	}
	if s.draining {
		h.Status = "draining"
	}
	if len(s.runningByTenant) > 0 {
		h.Tenants = make(map[string]int, len(s.runningByTenant))
		for t, n := range s.runningByTenant {
			if t == "" {
				t = "anonymous"
			}
			h.Tenants[t] = n
		}
	}
	return h
}

// worker is one pool goroutine: claim the next runnable job, run it, repeat
// until the server closes and the queue is empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// jobSlots is the worker-slot weight of a spec: a plain job charges one
// slot, a sharded job charges one per shard worker it may spin up, capped
// at the pool size so every valid job stays admissible.
func (s *Server) jobSlots(spec JobSpec) int {
	w := spec.Shards
	if w < 1 {
		w = 1
	}
	if w > s.opts.Workers {
		w = s.opts.Workers
	}
	return w
}

// nextJob blocks until a job is runnable (FIFO order, skipping jobs whose
// tenant is at its concurrency limit or whose slot weight does not fit the
// remaining pool capacity) or the pool is shutting down.
//
// Slot accounting keeps total admitted weight within the pool size, so a
// sharded job's epoch workers never oversubscribe the pool. The FIFO scan
// skips a heavy job that does not fit yet, which lets lighter jobs behind
// it keep the pool busy — at the cost that a steady light-job stream can
// starve a heavy one (see docs/SERVING.md).
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for i, j := range s.queue {
			if s.opts.TenantLimit > 0 && s.runningByTenant[j.Tenant] >= s.opts.TenantLimit {
				continue
			}
			w := s.jobSlots(j.Spec)
			if s.slotsInUse+w > s.opts.Workers {
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			j.State = StateRunning
			j.slots = w
			s.runningByTenant[j.Tenant]++
			s.slotsInUse += w
			s.gQueued.Set(int64(len(s.queue)))
			s.gRunning.Add(1)
			s.gSlots.Set(int64(s.slotsInUse))
			return j
		}
		if s.closed && len(s.queue) == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// runJob executes one claimed job and records its terminal state. Each job
// runs against a child metrics registry (merged into the server totals when
// it finishes) and a persistent-store view snapshotted at start.
func (s *Server) runJob(j *Job) {
	child := obs.NewRegistry()
	child.SetVecLabeler(obs.MForksByLLPC, packages.LLPCLabel)
	tracer := obs.Fanout(j.trace, s.opts.Tracer)
	eo := ExecOptions{
		Cache:        s.cache,
		Metrics:      child,
		Tracer:       tracer,
		Spans:        obs.NewSpanProfiler(child, tracer),
		Faults:       s.opts.Faults,
		Name:         j.Tenant + "/" + j.ID,
		SessionIndex: j.ordinal,
	}
	if s.opts.Persist != nil {
		eo.Persist = s.opts.Persist.View()
	}

	var res JobResult
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		// The serve.job span brackets the whole Execute call, so its wall
		// time includes spec build/compile overhead the session never sees;
		// its virtual duration is the session's, making its self virt zero.
		sp := eo.Spans.Start(obs.SpanServeJob)
		res, err = Execute(j.ctx, j.Spec, eo)
		sp.End(res.Summary.VirtTime)
	}()

	s.mu.Lock()
	j.Metrics = child.Snapshot()
	switch {
	case err != nil:
		j.Error = err.Error()
		j.State = StateFailed
		s.mFailed.Inc()
	case res.Cancelled:
		j.Result = &res
		j.State = StateCancelled
		s.mCancelled.Inc()
	case res.Stalled:
		j.Result = &res
		j.State = StateDegraded
		s.mDegraded.Inc()
	default:
		j.Result = &res
		j.State = StateSucceeded
		s.mSucceeded.Inc()
	}
	s.runningByTenant[j.Tenant]--
	if s.runningByTenant[j.Tenant] == 0 {
		delete(s.runningByTenant, j.Tenant)
	}
	s.slotsInUse -= j.slots
	s.gSlots.Set(int64(s.slotsInUse))
	s.gRunning.Add(-1)
	s.opts.Metrics.Merge(child)
	j.cancel()
	close(j.done)
	j.trace.finish()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Done exposes the job's completion channel (closed at terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }
