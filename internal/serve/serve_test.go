package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chef/internal/chef"
	"chef/internal/obs"
	"chef/internal/solver"
	"chef/internal/symtest"
)

// quickSpec is a fast MiniPy job used throughout the suite.
func quickSpec(seed int64) JobSpec {
	return JobSpec{Package: "simplejson", Strategy: "cupa-path", Budget: 200_000, StepLimit: 30_000, Seed: seed}
}

// luaSpec is a fast MiniLua job.
func luaSpec(seed int64) JobSpec {
	return JobSpec{Package: "JSON", Strategy: "cupa-path", Budget: 200_000, StepLimit: 30_000, Seed: seed}
}

// longSpec is a job big enough to still be running while the test pokes at
// the server (it is always cancelled, never awaited).
func longSpec(seed int64) JobSpec {
	return JobSpec{Package: "simplejson", Strategy: "cupa-path", Budget: 1 << 40, StepLimit: 30_000, Seed: seed}
}

type testServer struct {
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, opts Options) *testServer {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		ts.Close()
	})
	return &testServer{srv: srv, ts: ts}
}

func (s *testServer) do(t *testing.T, method, path, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, s.ts.URL+path, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if tenant != "" {
		req.Header.Set("X-API-Key", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// submit POSTs a spec and returns the accepted job id.
func (s *testServer) submit(t *testing.T, tenant string, spec JobSpec) string {
	t.Helper()
	resp, data := s.do(t, "POST", "/v1/jobs", tenant, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var st jobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return st.ID
}

// poll GETs the job until it reaches a terminal state.
func (s *testServer) poll(t *testing.T, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := s.do(t, "GET", "/v1/jobs/"+id, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, resp.StatusCode, data)
		}
		var st jobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not terminate", id)
	return jobStatus{}
}

// waitState polls until the job reports the given state.
func (s *testServer) waitState(t *testing.T, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.srv.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		s.srv.mu.Lock()
		st := j.State
		s.srv.mu.Unlock()
		if st == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
}

// The tentpole acceptance check, HTTP half: a job submitted over HTTP with a
// fixed seed produces stats and test cases byte-identical to the same spec
// run directly through Execute — which is the chef CLI's code path.
func TestServedJobMatchesDirectRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec JobSpec
	}{
		{"minipy", quickSpec(42)},
		{"minilua", luaSpec(42)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			direct, err := Execute(context.Background(), tc.spec, ExecOptions{})
			if err != nil {
				t.Fatalf("direct run: %v", err)
			}
			if len(direct.Tests) == 0 {
				t.Fatal("direct run produced no tests; the comparison would be vacuous")
			}
			wantTests, err := symtest.MarshalTests(direct.Tests)
			if err != nil {
				t.Fatal(err)
			}

			s := newTestServer(t, Options{Workers: 2})
			id := s.submit(t, "", tc.spec)
			st := s.poll(t, id)
			if st.State != StateSucceeded {
				t.Fatalf("job state = %s (error %q), want succeeded", st.State, st.Error)
			}
			if st.Summary == nil || *st.Summary != direct.Summary {
				t.Fatalf("served summary diverged:\nserved: %+v\ndirect: %+v", st.Summary, direct.Summary)
			}
			resp, gotTests := s.do(t, "GET", "/v1/jobs/"+id+"/tests", "", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("tests: status %d", resp.StatusCode)
			}
			if !bytes.Equal(gotTests, wantTests) {
				t.Fatalf("served tests diverged from direct run:\nserved:\n%s\ndirect:\n%s", gotTests, wantTests)
			}
		})
	}
}

// The tentpole acceptance check, warmth half: a second identical job on the
// same server observes persistent-store warm hits — and, because each job
// runs against a view snapshot whose hits replay their recorded cost, its
// stats and tests are still byte-identical to the cold job's.
func TestSecondJobObservesPersistWarmHits(t *testing.T) {
	store, err := solver.OpenPersistentStore(filepath.Join(t.TempDir(), "cxc.bin"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Workers: 1, Persist: store})
	t.Cleanup(func() { _ = store.Close() })

	spec := quickSpec(7)
	id1 := s.submit(t, "", spec)
	st1 := s.poll(t, id1)
	if st1.State != StateSucceeded {
		t.Fatalf("cold job state = %s (error %q)", st1.State, st1.Error)
	}
	_, tests1 := s.do(t, "GET", "/v1/jobs/"+id1+"/tests", "", nil)

	id2 := s.submit(t, "", spec)
	st2 := s.poll(t, id2)
	if st2.State != StateSucceeded {
		t.Fatalf("warm job state = %s (error %q)", st2.State, st2.Error)
	}
	_, tests2 := s.do(t, "GET", "/v1/jobs/"+id2+"/tests", "", nil)

	if st1.Metrics.Counters[obs.MSolverCacheHitsPersist] != 0 {
		t.Fatalf("cold job reported %d persist hits, want 0", st1.Metrics.Counters[obs.MSolverCacheHitsPersist])
	}
	warmHits := st2.Metrics.Counters[obs.MSolverCacheHitsPersist]
	if warmHits == 0 {
		t.Fatal("warm job observed no persistent-cache hits")
	}
	if *st1.Summary != *st2.Summary {
		t.Fatalf("warm job summary diverged from cold:\ncold: %+v\nwarm: %+v", st1.Summary, st2.Summary)
	}
	if !bytes.Equal(tests1, tests2) {
		t.Fatal("warm job tests diverged from cold job")
	}
	// The merged server totals carry the per-job hits.
	if got := s.srv.Registry().Counter(obs.MSolverCacheHitsPersist).Value(); got != warmHits {
		t.Fatalf("server-total persist hits = %d, want %d", got, warmHits)
	}
}

// N concurrent jobs against one store + shared cache under -race: every job
// succeeds, later jobs can observe warm hits, and the store file stays
// loadable afterwards.
func TestConcurrentJobsSharedWarmState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cxc.bin")
	store, err := solver.OpenPersistentStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// A warm-up job on a first server populates the store. It runs on its
	// own server so the second server's shared in-memory cache starts cold —
	// otherwise every would-be persist hit is answered by the shared cache
	// first (it sits in front of the persist layer) and the store's warmth
	// would be unobservable.
	warmSrv := newTestServer(t, Options{Workers: 1, Persist: store})
	warm := warmSrv.submit(t, "", quickSpec(3))
	if st := warmSrv.poll(t, warm); st.State != StateSucceeded {
		t.Fatalf("warm-up job: %s", st.State)
	}
	ctxW, cancelW := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelW()
	if err := warmSrv.srv.Drain(ctxW); err != nil {
		t.Fatalf("drain warm-up server: %v", err)
	}

	s := newTestServer(t, Options{Workers: 4, SharedCache: true, Persist: store})
	const n = 8
	ids := make([]string, n)
	for i := range ids {
		ids[i] = s.submit(t, fmt.Sprintf("tenant-%d", i%3), quickSpec(3))
	}
	var persistHits int64
	for _, id := range ids {
		st := s.poll(t, id)
		if st.State != StateSucceeded {
			t.Fatalf("job %s: state %s (error %q)", id, st.State, st.Error)
		}
		persistHits += st.Metrics.Counters[obs.MSolverCacheHitsPersist]
	}
	if persistHits == 0 {
		t.Fatal("no concurrent job observed persistent-cache hits")
	}
	// Quiesce the pool, flush, and reload the store file.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := solver.OpenPersistentStore(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	defer r.Close()
	if r.Corruption() != nil {
		t.Fatalf("store corrupt after concurrent jobs: %v", r.Corruption())
	}
	if r.Loaded() == 0 {
		t.Fatal("store empty after concurrent jobs")
	}
}

// A full queue answers 429 with a Retry-After hint; the rejection is counted
// but never enters the submitted ledger.
func TestBackpressure429(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueCap: 1, RetryAfterSeconds: 7})
	running := s.submit(t, "", longSpec(1))
	s.waitState(t, running, StateRunning)
	queued := s.submit(t, "", longSpec(2))

	resp, data := s.do(t, "POST", "/v1/jobs", "", longSpec(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
	if got := s.srv.Registry().Counter(obs.MServeJobsRejected).Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if got := s.srv.Registry().Counter(obs.MServeJobsSubmitted).Value(); got != 2 {
		t.Fatalf("submitted counter = %d, want 2", got)
	}
	for _, id := range []string{running, queued} {
		s.do(t, "DELETE", "/v1/jobs/"+id, "", nil)
	}
}

// A tenant at its concurrency limit queues behind itself while other
// tenants' jobs overtake.
func TestTenantConcurrencyLimit(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, TenantLimit: 1})
	a1 := s.submit(t, "alice", longSpec(1))
	s.waitState(t, a1, StateRunning)
	a2 := s.submit(t, "alice", longSpec(2)) // over alice's limit: must wait
	b1 := s.submit(t, "bob", longSpec(3))   // free worker goes to bob
	s.waitState(t, b1, StateRunning)

	if j, _ := s.srv.Job(a2); true {
		s.srv.mu.Lock()
		st := j.State
		s.srv.mu.Unlock()
		if st != StateQueued {
			t.Fatalf("alice's second job is %s, want queued while over the tenant limit", st)
		}
	}
	// Cancelling alice's running job frees her slot; the queued job starts.
	s.do(t, "DELETE", "/v1/jobs/"+a1, "", nil)
	s.waitState(t, a2, StateRunning)
	for _, id := range []string{a2, b1} {
		s.do(t, "DELETE", "/v1/jobs/"+id, "", nil)
	}
}

// DELETE on a running job stops it promptly and releases the worker slot
// (regression for the cancellation plumbing: a slot leak would wedge the
// follow-up job forever on a 1-worker pool).
func TestCancelReleasesWorkerSlot(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	long := s.submit(t, "", longSpec(1))
	s.waitState(t, long, StateRunning)
	resp, _ := s.do(t, "DELETE", "/v1/jobs/"+long, "", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	st := s.poll(t, long)
	if st.State != StateCancelled {
		t.Fatalf("cancelled job state = %s", st.State)
	}

	next := s.submit(t, "", quickSpec(2))
	if st := s.poll(t, next); st.State != StateSucceeded {
		t.Fatalf("follow-up job on the freed slot: %s (error %q)", st.State, st.Error)
	}
}

// Cancelling a queued job turns it terminal without ever running.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	running := s.submit(t, "", longSpec(1))
	s.waitState(t, running, StateRunning)
	queued := s.submit(t, "", quickSpec(2))
	s.do(t, "DELETE", "/v1/jobs/"+queued, "", nil)
	if st := s.poll(t, queued); st.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s", st.State)
	}
	s.do(t, "DELETE", "/v1/jobs/"+running, "", nil)
}

// Drain finishes in-flight jobs, rejects new submissions with 503, and
// flips /healthz to 503.
func TestDrainFinishesInFlight(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	id := s.submit(t, "", quickSpec(1))

	drained := make(chan error, 1)
	go func() { drained <- s.srv.Drain(context.Background()) }()
	// Submissions are rejected as soon as draining flips on.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := s.do(t, "POST", "/v1/jobs", "", quickSpec(9))
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The drain rejection must carry the same backoff hint the 429
			// path sets; a client with no Retry-After has no idea when (or
			// whether) to come back.
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("503-while-draining response has no Retry-After header")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted after Drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := s.poll(t, id); st.State != StateSucceeded {
		t.Fatalf("in-flight job after drain: %s (error %q)", st.State, st.Error)
	}
	resp, _ := s.do(t, "GET", "/healthz", "", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d, want 503", resp.StatusCode)
	}
}

// A drain whose deadline expires cancels the remaining jobs instead of
// losing them: every submitted job still reaches a terminal state.
func TestDrainTimeoutCancelsJobs(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	running := s.submit(t, "", longSpec(1))
	s.waitState(t, running, StateRunning)
	queued := s.submit(t, "", longSpec(2))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.srv.Drain(ctx); err == nil {
		t.Fatal("drain with expired deadline reported nil error")
	}
	for _, id := range []string{running, queued} {
		if st := s.poll(t, id); st.State != StateCancelled {
			t.Fatalf("job %s after drain timeout: %s", id, st.State)
		}
	}
	assertAccounting(t, s.srv)
}

// assertAccounting checks the job ledger invariant: submitted ==
// terminal + queued + running.
func assertAccounting(t *testing.T, srv *Server) {
	t.Helper()
	submitted, terminal, queued, running := srv.Accounting()
	if submitted != terminal+queued+running {
		t.Fatalf("job ledger leak: submitted %d != terminal %d + queued %d + running %d",
			submitted, terminal, queued, running)
	}
}

// Invalid specs and bodies answer 400 and count as invalid, not submitted.
func TestInvalidSubmissions(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	for name, body := range map[string]any{
		"unknown package": JobSpec{Package: "no-such-package"},
		"bad strategy":    JobSpec{Package: "simplejson", Strategy: "psychic"},
		"no target":       JobSpec{},
		"both targets":    JobSpec{Package: "simplejson", Language: "python", Source: "x"},
		"bad input kind": JobSpec{Language: "python", Source: "def f(x):\n    return x\n", Entry: "f",
			Inputs: []InputSpec{{Name: "x", Kind: "float"}}},
	} {
		resp, data := s.do(t, "POST", "/v1/jobs", "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", name, resp.StatusCode, data)
		}
	}
	req, _ := http.NewRequest("POST", s.ts.URL+"/v1/jobs", strings.NewReader("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if got := s.srv.Registry().Counter(obs.MServeJobsSubmitted).Value(); got != 0 {
		t.Fatalf("invalid submissions entered the ledger: submitted = %d", got)
	}
	resp, _ = s.do(t, "GET", "/v1/jobs/job-999", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// An inline-source job runs end to end.
func TestInlineSourceJob(t *testing.T) {
	spec := JobSpec{
		Language: "python",
		Source:   "def check(s):\n    if s[0] == \"a\":\n        raise ValueError()\n    return 1\n",
		Entry:    "check",
		Inputs:   []InputSpec{{Name: "s", Kind: "string", Len: 2, Default: "zz"}},
		Budget:   100_000,
	}
	s := newTestServer(t, Options{Workers: 1})
	id := s.submit(t, "", spec)
	st := s.poll(t, id)
	if st.State != StateSucceeded {
		t.Fatalf("inline job: %s (error %q)", st.State, st.Error)
	}
	if st.Tests < 2 {
		t.Fatalf("inline job found %d tests, want both branches", st.Tests)
	}
}

// The events endpoint streams the job's JSONL trace through to the
// session-end event.
func TestEventsStream(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	id := s.submit(t, "", quickSpec(5))
	resp, data := s.do(t, "GET", "/v1/jobs/"+id+"/events", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	events, err := obs.ParseJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{obs.KindSessionStart, obs.KindSessionEnd, obs.KindTestCase} {
		if !kinds[want] {
			t.Fatalf("trace stream missing %q events (got %v)", want, kinds)
		}
	}
	// Tests arrive only after the job is terminal — which it is, since the
	// stream ended.
	resp, _ = s.do(t, "GET", "/v1/jobs/"+id+"/tests", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tests after stream end: status %d", resp.StatusCode)
	}
}

// Tests of a non-terminal job answer 409.
func TestTestsConflictWhileRunning(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	id := s.submit(t, "", longSpec(1))
	s.waitState(t, id, StateRunning)
	resp, _ := s.do(t, "GET", "/v1/jobs/"+id+"/tests", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("tests while running: status %d, want 409", resp.StatusCode)
	}
	s.do(t, "DELETE", "/v1/jobs/"+id, "", nil)
}

// Summary sanity: the served summary is a real chef.Summary (non-zero work).
func TestServedSummaryCarriesStats(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	id := s.submit(t, "", quickSpec(11))
	st := s.poll(t, id)
	if st.Summary == nil {
		t.Fatal("terminal job carries no summary")
	}
	var zero chef.Summary
	if *st.Summary == zero {
		t.Fatal("summary is all zeroes")
	}
	if st.Summary.Runs == 0 || st.Summary.LLPaths == 0 {
		t.Fatalf("summary lacks engine work: %+v", st.Summary)
	}
}
