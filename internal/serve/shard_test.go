package serve

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"chef/internal/chef"
	"chef/internal/obs"
	"chef/internal/symtest"
)

// shardSpec is quickSpec/luaSpec with sharded exploration enabled.
func shardSpec(base JobSpec, shards int) JobSpec {
	base.Shards = shards
	return base
}

// TestShardedJobDeterministicAcrossShardCounts is the package-level leg of
// the sharding determinism property, covering both interpreters (the
// internal/chef suite cannot import internal/packages): for each guest
// language, the serialized test NDJSON and the summary of a sharded job
// are byte-identical for every shard count and every seed.
func TestShardedJobDeterministicAcrossShardCounts(t *testing.T) {
	for _, base := range []struct {
		name string
		spec func(int64) JobSpec
	}{
		{"minipy", quickSpec},
		{"minilua", luaSpec},
	} {
		t.Run(base.name, func(t *testing.T) {
			for _, seed := range []int64{42, 7, 1000} {
				serial, err := Execute(context.Background(), shardSpec(base.spec(seed), 1), ExecOptions{})
				if err != nil {
					t.Fatalf("seed %d serial: %v", seed, err)
				}
				if len(serial.Tests) == 0 {
					t.Fatalf("seed %d: serial sharded run produced no tests", seed)
				}
				want, err := symtest.MarshalTests(serial.Tests)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{2, 4, 8} {
					got, err := Execute(context.Background(), shardSpec(base.spec(seed), shards), ExecOptions{})
					if err != nil {
						t.Fatalf("seed %d shards %d: %v", seed, shards, err)
					}
					gotTests, err := symtest.MarshalTests(got.Tests)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotTests, want) {
						t.Fatalf("seed %d: %d-shard tests diverged from serial:\n%s\nvs\n%s",
							seed, shards, gotTests, want)
					}
					if got.Summary != serial.Summary {
						t.Fatalf("seed %d: %d-shard summary diverged:\nserial %+v\nsharded %+v",
							seed, shards, serial.Summary, got.Summary)
					}
				}
			}
		})
	}
}

// TestServedShardedJobMatchesDirect: a sharded job submitted over HTTP is
// byte-identical to the same spec run directly through Execute — the
// sharded analogue of TestServedJobMatchesDirectRun.
func TestServedShardedJobMatchesDirect(t *testing.T) {
	spec := shardSpec(quickSpec(42), 4)
	direct, err := Execute(context.Background(), spec, ExecOptions{})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	wantTests, err := symtest.MarshalTests(direct.Tests)
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Options{Workers: 4})
	id := s.submit(t, "", spec)
	st := s.poll(t, id)
	if st.State != StateSucceeded {
		t.Fatalf("job state = %s (error %q), want succeeded", st.State, st.Error)
	}
	if st.Summary == nil || *st.Summary != direct.Summary {
		t.Fatalf("served sharded summary diverged:\nserved: %+v\ndirect: %+v", st.Summary, direct.Summary)
	}
	resp, gotTests := s.do(t, "GET", "/v1/jobs/"+id+"/tests", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tests: status %d", resp.StatusCode)
	}
	if !bytes.Equal(gotTests, wantTests) {
		t.Fatalf("served sharded tests diverged from direct run:\nserved:\n%s\ndirect:\n%s", gotTests, wantTests)
	}
	// The job's shard metric families made it into the server totals.
	if got := s.srv.Registry().Counter(obs.MShardEpochs).Value(); got == 0 {
		t.Fatal("server totals carry no shard.epochs; the sharded path did not run")
	}
}

// TestShardedJobSlotAccounting: a sharded job charges one worker slot per
// shard (capped at the pool), blocking other work while it runs; slots
// drain back to zero at terminal state.
func TestShardedJobSlotAccounting(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	heavy := shardSpec(longSpec(1), 2)
	id := s.submit(t, "", heavy)
	s.waitState(t, id, StateRunning)

	if h := s.srv.Health(); h.SlotsInUse != 2 {
		t.Fatalf("slots in use = %d while a 2-shard job runs on a 2-worker pool, want 2", h.SlotsInUse)
	}
	// A second job cannot be admitted while the heavy job holds the pool.
	light := s.submit(t, "", quickSpec(2))
	time.Sleep(20 * time.Millisecond)
	if j, _ := s.srv.Job(light); true {
		s.srv.mu.Lock()
		st := j.State
		s.srv.mu.Unlock()
		if st != StateQueued {
			t.Fatalf("light job is %s while the pool is slot-saturated, want queued", st)
		}
	}
	s.do(t, "DELETE", "/v1/jobs/"+id, "", nil)
	if st := s.poll(t, light); st.State != StateSucceeded {
		t.Fatalf("light job after the heavy job released its slots: %s (error %q)", st.State, st.Error)
	}
	if got := s.srv.Registry().Gauge(obs.MServeSlotsInUse).Value(); got != 0 {
		t.Fatalf("slots in use = %d after all jobs terminal, want 0 (slot leak)", got)
	}
	assertAccounting(t, s.srv)
}

// TestShardedJobSlotWeightClampsToPool: a job requesting more shards than
// the pool has workers still runs (its weight is capped), it just cannot
// oversubscribe admission.
func TestShardedJobSlotWeightClampsToPool(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	id := s.submit(t, "", shardSpec(quickSpec(5), chef.ShardSubtrees))
	st := s.poll(t, id)
	if st.State != StateSucceeded {
		t.Fatalf("max-shard job on a 1-worker pool: %s (error %q)", st.State, st.Error)
	}
	if got := s.srv.Registry().Gauge(obs.MServeSlotsInUse).Value(); got != 0 {
		t.Fatalf("slots in use = %d after completion, want 0", got)
	}
}

// TestShardsValidation: out-of-range shard counts are rejected as invalid.
func TestShardsValidation(t *testing.T) {
	for _, shards := range []int{-1, chef.ShardSubtrees + 1} {
		spec := shardSpec(quickSpec(1), shards)
		if err := spec.Validate(); err == nil {
			t.Fatalf("shards=%d validated", shards)
		}
	}
	spec := shardSpec(quickSpec(1), chef.ShardSubtrees)
	if err := spec.Validate(); err != nil {
		t.Fatalf("shards=%d rejected: %v", chef.ShardSubtrees, err)
	}
}
