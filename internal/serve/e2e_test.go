package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"chef/internal/chef"
)

// buildBinary compiles one of the repo's commands into dir.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startServe launches chef-serve on an ephemeral port and returns its base
// URL, the running command and a function yielding the rest of its stdout
// (safe to call only after the process exits).
func startServe(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd, func() string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	// A manual pipe instead of StdoutPipe: cmd.Wait closes a StdoutPipe on
	// exit, racing the drain goroutine out of the final output lines.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = pw
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start chef-serve: %v", err)
	}
	pw.Close() // child holds the write side now; EOF arrives when it exits
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
		pr.Close()
	})
	// First line: "chef-serve: listening on 127.0.0.1:PORT".
	r := bufio.NewReader(pr)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read listen line: %v", err)
	}
	fields := strings.Fields(strings.TrimSpace(line))
	addr := fields[len(fields)-1]
	// Keep draining stdout so the process never blocks on the pipe; the
	// channel sequences the buffer read after the copy goroutine is done.
	var rest bytes.Buffer
	copied := make(chan struct{})
	go func() { _, _ = io.Copy(&rest, r); close(copied) }()
	stdout2 := func() string { <-copied; return rest.String() }
	return "http://" + addr, cmd, stdout2
}

// The end-to-end acceptance check over real processes: a job submitted to a
// spawned chef-serve with a fixed seed yields stats and test-case bytes
// identical to the chef CLI run with the same flags; the events endpoint
// streams trace JSONL; SIGTERM drains and exits 0.
func TestE2EServedMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: builds and spawns real binaries")
	}
	dir := t.TempDir()
	chefBin := buildBinary(t, dir, "chef/cmd/chef", "chef")
	serveBin := buildBinary(t, dir, "chef/cmd/chef-serve", "chef-serve")

	// CLI reference run.
	outFile := filepath.Join(dir, "cli.ndjson")
	cli := exec.Command(chefBin, "-package", "simplejson", "-strategy", "cupa-path",
		"-budget", "200000", "-steplimit", "30000", "-seed", "42", "-out", outFile)
	cliOut, err := cli.CombinedOutput()
	if err != nil {
		t.Fatalf("chef CLI: %v\n%s", err, cliOut)
	}
	cliTests, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var cliTestsN, cliLLPaths, cliRuns, cliUnsat, cliClock int64
	if _, err := fmt.Sscanf(string(cliOut), "package simplejson: %d high-level tests from %d low-level paths (%d runs, %d solver-unsat states, clock %d)",
		&cliTestsN, &cliLLPaths, &cliRuns, &cliUnsat, &cliClock); err != nil {
		t.Fatalf("parse CLI summary: %v\n%s", err, cliOut)
	}

	base, cmd, rest := startServe(t, serveBin, "-workers", "2")

	spec := JobSpec{Package: "simplejson", Strategy: "cupa-path", Budget: 200_000, StepLimit: 30_000, Seed: 42}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not terminate", st.ID)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.State != StateSucceeded {
		t.Fatalf("served job: %s (error %q)", st.State, st.Error)
	}

	// Stats byte-identity with the CLI's summary line.
	sum := st.Summary
	if sum == nil {
		t.Fatal("no summary on terminal job")
	}
	got := chef.Summary{HLTests: int(cliTestsN), LLPaths: cliLLPaths, Runs: cliRuns, UnsatStates: cliUnsat, VirtTime: cliClock}
	if sum.HLTests != got.HLTests || sum.LLPaths != got.LLPaths || sum.Runs != got.Runs ||
		sum.UnsatStates != got.UnsatStates || sum.VirtTime != got.VirtTime {
		t.Fatalf("served stats diverged from CLI:\nserved: %+v\nCLI:    %+v", *sum, got)
	}

	// Test-case byte-identity with the CLI's -out file.
	r, err := http.Get(base + "/v1/jobs/" + st.ID + "/tests")
	if err != nil {
		t.Fatal(err)
	}
	servedTests, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !bytes.Equal(servedTests, cliTests) {
		t.Fatalf("served test bytes diverged from CLI -out:\nserved:\n%s\nCLI:\n%s", servedTests, cliTests)
	}

	// The events endpoint streams the job's trace.
	r, err = http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !bytes.Contains(events, []byte(`"kind":"session-end"`)) {
		t.Fatalf("events stream lacks a session-end event:\n%s", events)
	}

	// SIGTERM: drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("chef-serve exit: %v", err)
	}
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("chef-serve exit code = %d, want 0", code)
	}
	if out := rest(); !strings.Contains(out, "chef-serve: stopped") {
		t.Fatalf("shutdown banner missing from stdout:\n%s", out)
	}
}

// SIGTERM mid-job: the in-flight job finishes (drain), new submissions are
// rejected, and the process still exits 0.
func TestE2ESigtermDrainsMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: builds and spawns real binaries")
	}
	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "chef/cmd/chef-serve", "chef-serve")
	base, cmd, _ := startServe(t, serveBin, "-workers", "1", "-drain-timeout", "60s")

	spec := JobSpec{Package: "simplejson", Strategy: "cupa-path", Budget: 400_000, StepLimit: 30_000, Seed: 5}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// While draining, new submissions bounce (until the listener closes,
	// after which connection errors are equally acceptable).
	time.Sleep(50 * time.Millisecond)
	if r, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body)); err == nil {
		if r.StatusCode == http.StatusAccepted {
			t.Fatal("submission accepted during drain")
		}
		r.Body.Close()
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("chef-serve exit after SIGTERM mid-job: %v", err)
	}
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
}
