package serve

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chef/internal/faults"
	"chef/internal/obs"
	"chef/internal/solver"
)

func mustPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("faults plan %q: %v", spec, err)
	}
	return plan
}

// An injected worker.stall makes the job degraded-but-terminal: the state is
// final, the queue keeps moving, and the stall shows up in the server
// counters instead of wedging a worker.
func TestStalledJobReportsDegraded(t *testing.T) {
	// session=0 matches the first submitted job's global ordinal.
	plan := mustPlan(t, "seed=7;worker.stall:session=0")
	s := newTestServer(t, Options{Workers: 1, Faults: plan})

	stalled := s.submit(t, "", quickSpec(1))
	st := s.poll(t, stalled)
	if st.State != StateDegraded {
		t.Fatalf("stalled job state = %s, want degraded", st.State)
	}
	if st.Tests != 0 {
		t.Fatalf("stalled job produced %d tests, want 0", st.Tests)
	}
	// The stall is terminal, not wedging: the next job runs to completion
	// on the same worker.
	next := s.submit(t, "", quickSpec(2))
	if st := s.poll(t, next); st.State != StateSucceeded {
		t.Fatalf("job after the stalled one: %s (error %q)", st.State, st.Error)
	}
	reg := s.srv.Registry()
	if got := reg.Counter(obs.MServeJobsDegraded).Value(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}
	if got := reg.Counter(obs.MSessionsStalled).Value(); got != 1 {
		t.Fatalf("merged chef.sessions.stalled = %d, want 1", got)
	}
	assertAccounting(t, s.srv)
}

// A chaos plan active across a batch of jobs: the queue drains, every
// submitted job reaches exactly one terminal state (the job-level mirror of
// the engine's Unknown == Requeued + Abandoned invariant), and stalled jobs
// are the degraded ones.
func TestChaosBatchNoJobSilentlyLost(t *testing.T) {
	plan := mustPlan(t, "seed=3;worker.stall:session=1;solver.unknown:p=0.2")
	s := newTestServer(t, Options{Workers: 2, Faults: plan})

	const n = 5
	ids := make([]string, n)
	for i := range ids {
		ids[i] = s.submit(t, "", quickSpec(int64(i+1)))
	}
	degraded := 0
	for _, id := range ids {
		st := s.poll(t, id)
		switch st.State {
		case StateSucceeded:
		case StateDegraded:
			degraded++
		default:
			t.Fatalf("job %s under chaos: %s (error %q)", id, st.State, st.Error)
		}
	}
	if degraded != 1 {
		t.Fatalf("degraded jobs = %d, want exactly 1 (session=1 rule)", degraded)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.srv.Drain(ctx); err != nil {
		t.Fatalf("drain under chaos: %v", err)
	}
	submitted, terminal, queued, running := s.srv.Accounting()
	if queued != 0 || running != 0 {
		t.Fatalf("queue not drained: queued %d, running %d", queued, running)
	}
	if submitted != terminal || submitted != n {
		t.Fatalf("job ledger: submitted %d, terminal %d, want both %d", submitted, terminal, n)
	}
}

// persist.write faults: the store's give-up path (entries lost after the
// retry budget) surfaces in /metrics via the live mirror.
func TestPersistGiveUpSurfacesInMetrics(t *testing.T) {
	store, err := solver.OpenPersistentStore(filepath.Join(t.TempDir(), "cxc.bin"))
	if err != nil {
		t.Fatal(err)
	}
	// Every write fails: the flush retries, then gives up and drops the
	// pending entries — the loss path this test wants visible.
	plan := mustPlan(t, "seed=1;persist.write:err")
	reg := obs.NewRegistry()
	inj := plan.Injector("persist")
	inj.Instrument(reg)
	store.SetFaults(inj)

	s := newTestServer(t, Options{Workers: 1, Persist: store, Metrics: reg})
	id := s.submit(t, "", quickSpec(1))
	if st := s.poll(t, id); st.State != StateSucceeded {
		t.Fatalf("job state = %s", st.State)
	}
	// The job itself is unaffected (appends are asynchronous); the damage
	// is visible on the store and, after a /metrics scrape, in the registry.
	deadline := time.Now().Add(20 * time.Second)
	for store.Lost() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if store.Lost() == 0 {
		t.Fatal("store never gave up despite permanent write faults")
	}
	resp, body := s.do(t, "GET", "/metrics", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, obs.MSolverPersistLost) {
		t.Fatalf("/metrics missing %s:\n%s", obs.MSolverPersistLost, text)
	}
	if reg.Counter(obs.MSolverPersistLost).Value() == 0 {
		t.Fatal("mirrored solver.persist.lost = 0 after give-up")
	}
	if reg.Counter(obs.MSolverPersistWriteErrors).Value() == 0 {
		t.Fatal("mirrored solver.persist.write_errors = 0 after write faults")
	}
	if reg.Counter(obs.MFaultsPersistWrite).Value() == 0 {
		t.Fatal("faults.injected.persist_write = 0 with an always-on plan")
	}
}
