// Package serve turns the single-process CHEF engine into a long-running
// service: exploration jobs (guest language + program source + budget/seed/
// strategy options) arrive over HTTP/JSON, run on a bounded worker pool
// backed by one shared warm persistent store and the process-wide program
// interner, and report their results through the job API.
//
// The package is split along the job lifecycle: JobSpec (this file) is the
// wire format and its validation, Execute (exec.go) runs one job — it is the
// single entry point shared by the server's workers and the chef CLI, which
// is what makes a served run byte-identical to a CLI run by construction —
// Server (server.go) owns the queue, the worker pool and the job table, and
// Handler (http.go) is the HTTP surface. See docs/SERVING.md.
package serve

import (
	"fmt"

	"chef/internal/chef"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/solver"
	"chef/internal/symtest"
)

// Defaults applied by JobSpec.normalize, matching the chef CLI's flag
// defaults so an empty spec field and an unset flag mean the same run.
const (
	DefaultBudget    = 3_000_000
	DefaultStepLimit = 60_000
	DefaultSeed      = 1
	DefaultStrategy  = "cupa-path"
)

// InputSpec declares one symbolic input of an inline-source job, mirroring
// symtest.Input in wire-friendly form.
type InputSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "string" | "int"
	// String inputs: fixed buffer length and default bytes.
	Len     int    `json:"len,omitempty"`
	Default string `json:"default,omitempty"`
	// Int inputs: default value and optional [Min, Max] precondition
	// (applied via the assume() guest API call when Ranged is set).
	DefInt int32 `json:"defint,omitempty"`
	Ranged bool  `json:"ranged,omitempty"`
	Min    int32 `json:"min,omitempty"`
	Max    int32 `json:"max,omitempty"`
}

func (in InputSpec) toInput() (symtest.Input, error) {
	if in.Name == "" {
		return symtest.Input{}, fmt.Errorf("input with empty name")
	}
	switch in.Kind {
	case "string":
		if in.Len <= 0 {
			return symtest.Input{}, fmt.Errorf("input %q: string inputs need len > 0", in.Name)
		}
		return symtest.Str(in.Name, in.Len, in.Default), nil
	case "int":
		if in.Ranged {
			return symtest.IntRange(in.Name, in.DefInt, in.Min, in.Max), nil
		}
		return symtest.Int(in.Name, in.DefInt), nil
	}
	return symtest.Input{}, fmt.Errorf("input %q: unknown kind %q (want string or int)", in.Name, in.Kind)
}

// JobSpec is one exploration job as submitted to POST /v1/jobs. The target
// program is either a named evaluation package (Package) or inline source
// (Language + Source + Entry + Inputs); the remaining fields are the same
// knobs the chef CLI exposes as flags, with the same defaults.
type JobSpec struct {
	// Package names one of the built-in evaluation packages (chef -list).
	// Mutually exclusive with inline source.
	Package string `json:"package,omitempty"`

	// Inline source: guest language ("python" | "lua"), program text, entry
	// function and symbolic input declarations.
	Language string      `json:"language,omitempty"`
	Source   string      `json:"source,omitempty"`
	Entry    string      `json:"entry,omitempty"`
	Inputs   []InputSpec `json:"inputs,omitempty"`

	// Exploration knobs, defaulted by normalize to the CLI's flag defaults.
	Strategy   string `json:"strategy,omitempty"`  // random | cupa-path | cupa-coverage | dfs | bfs
	Budget     int64  `json:"budget,omitempty"`    // virtual-time exploration budget
	StepLimit  int64  `json:"steplimit,omitempty"` // per-run hang threshold
	Seed       int64  `json:"seed,omitempty"`
	Vanilla    bool   `json:"vanilla,omitempty"`    // unoptimized interpreter build
	CacheMode  string `json:"cachemode,omitempty"`  // exact | subsume
	SolverMode string `json:"solvermode,omitempty"` // oneshot | incremental | bdd

	// Shards selects sharded exploration (chef.ShardedSession): the job's
	// path space is split into signature-subtree ranges driven by up to
	// Shards epoch workers. 0 runs the plain single-session path; any value
	// in [1, chef.ShardSubtrees] runs the sharded semantics — results are
	// byte-identical for every positive value, so Shards > 1 is purely a
	// wall-clock knob. The scheduler charges a sharded job Shards worker
	// slots (capped at the pool size); see docs/SERVING.md.
	Shards int `json:"shards,omitempty"`
}

// normalize fills defaulted fields in place.
func (s *JobSpec) normalize() {
	if s.Strategy == "" {
		s.Strategy = DefaultStrategy
	}
	if s.Budget <= 0 {
		s.Budget = DefaultBudget
	}
	if s.StepLimit <= 0 {
		s.StepLimit = DefaultStepLimit
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.CacheMode == "" {
		s.CacheMode = "exact"
	}
	if s.SolverMode == "" {
		s.SolverMode = "oneshot"
	}
}

// Validate checks the spec without compiling anything. It normalizes first,
// so a validated spec is also a defaulted one.
func (s *JobSpec) Validate() error {
	s.normalize()
	if s.Package != "" {
		if s.Source != "" || s.Language != "" {
			return fmt.Errorf("package and inline source are mutually exclusive")
		}
		if _, ok := packages.ByName(s.Package); !ok {
			return fmt.Errorf("unknown package %q", s.Package)
		}
	} else {
		if s.Source == "" {
			return fmt.Errorf("need either package or source")
		}
		if s.Language != "python" && s.Language != "lua" {
			return fmt.Errorf("unknown language %q (want python or lua)", s.Language)
		}
		if s.Entry == "" {
			return fmt.Errorf("inline source needs an entry function")
		}
		if len(s.Inputs) == 0 {
			return fmt.Errorf("inline source needs at least one symbolic input")
		}
		for _, in := range s.Inputs {
			if _, err := in.toInput(); err != nil {
				return err
			}
		}
	}
	if _, ok := ParseStrategy(s.Strategy); !ok {
		return fmt.Errorf("unknown strategy %q", s.Strategy)
	}
	if _, ok := solver.ParseCacheMode(s.CacheMode); !ok {
		return fmt.Errorf("unknown cachemode %q (want exact or subsume)", s.CacheMode)
	}
	if _, ok := solver.ParseSolverMode(s.SolverMode); !ok {
		return fmt.Errorf("unknown solvermode %q (want oneshot, incremental or bdd)", s.SolverMode)
	}
	if s.Shards < 0 || s.Shards > chef.ShardSubtrees {
		return fmt.Errorf("shards %d out of range [0, %d]", s.Shards, chef.ShardSubtrees)
	}
	return nil
}

// target is the compiled form of a spec: the session program plus the input
// declarations used to render test cases.
type target struct {
	name   string
	prog   chef.TestProgram
	inputs []symtest.Input
}

// build compiles the spec's target program, returning errors instead of
// panicking (the symtest Program() helpers panic on compile errors, which is
// fine for the CLI's vetted built-ins but not for service input).
func (s *JobSpec) build() (target, error) {
	pyCfg, luaCfg := minipy.Optimized, minilua.Optimized
	if s.Vanilla {
		pyCfg, luaCfg = minipy.Vanilla, minilua.Vanilla
	}
	if s.Package != "" {
		p, ok := packages.ByName(s.Package)
		if !ok {
			return target{}, fmt.Errorf("unknown package %q", s.Package)
		}
		if p.Lang == packages.Python {
			pt := p.PyTest(pyCfg)
			if err := pt.Compile(); err != nil {
				return target{}, fmt.Errorf("compile %s: %w", s.Package, err)
			}
			return target{name: p.Name, prog: pt.Program(), inputs: p.Inputs}, nil
		}
		lt := p.LuaTest(luaCfg)
		if err := lt.Compile(); err != nil {
			return target{}, fmt.Errorf("compile %s: %w", s.Package, err)
		}
		return target{name: p.Name, prog: lt.Program(), inputs: p.Inputs}, nil
	}
	inputs := make([]symtest.Input, len(s.Inputs))
	for i, in := range s.Inputs {
		decl, err := in.toInput()
		if err != nil {
			return target{}, err
		}
		inputs[i] = decl
	}
	name := "inline-" + s.Language
	if s.Language == "python" {
		pt := &symtest.PyTest{Source: s.Source, Entry: s.Entry, Inputs: inputs, Config: pyCfg}
		if err := pt.Compile(); err != nil {
			return target{}, fmt.Errorf("compile source: %w", err)
		}
		return target{name: name, prog: pt.Program(), inputs: inputs}, nil
	}
	lt := &symtest.LuaTest{Source: s.Source, Entry: s.Entry, Inputs: inputs, Config: luaCfg}
	if err := lt.Compile(); err != nil {
		return target{}, fmt.Errorf("compile source: %w", err)
	}
	return target{name: name, prog: lt.Program(), inputs: inputs}, nil
}

// ParseStrategy maps the wire/flag strategy names onto chef.StrategyKind.
// It is the single parser shared by the chef CLI and the job API.
func ParseStrategy(s string) (chef.StrategyKind, bool) {
	switch s {
	case "random":
		return chef.StrategyRandom, true
	case "cupa-path":
		return chef.StrategyCUPAPath, true
	case "cupa-coverage":
		return chef.StrategyCUPACoverage, true
	case "dfs":
		return chef.StrategyDFS, true
	case "bfs":
		return chef.StrategyBFS, true
	}
	return 0, false
}
