package benchfmt

import (
	"strings"
	"testing"

	"chef/internal/obs"
)

func validFile() *File {
	return &File{
		Schema:    SchemaVersion,
		Bench:     "test-matrix",
		Seed:      42,
		Budget:    600_000,
		StepLimit: 30_000,
		Reps:      2,
		GoVersion: "go1.0-test",
		Configs: []Config{
			{
				Name: "pkg/cold/w1", Package: "pkg", Language: "python",
				Cache: "cold", Workers: 1, Sessions: 2,
				Tests: 10, VirtTime: 1000, WallNs: 5,
			},
			{
				Name: "pkg/warm/w4", Package: "pkg", Language: "python",
				Cache: "warm", Workers: 4, Sessions: 2,
				Tests: 10, VirtTime: 1000, WallNs: 5,
			},
		},
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := validFile()
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Configs) != len(f.Configs) || got.Seed != f.Seed {
		t.Fatalf("round trip mangled the file: %+v", got)
	}
}

func TestValidateCatchesDeterminismDrift(t *testing.T) {
	f := validFile()
	f.Configs[1].VirtTime = 999
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("err = %v, want determinism violation", err)
	}
}

// TestShardedCellsGroupSeparately: sharded cells follow different semantics
// than plain cells of the same package, so they form their own determinism
// group — differing from the plain cells is fine, differing from each other
// is a violation.
func TestShardedCellsGroupSeparately(t *testing.T) {
	f := validFile()
	f.Configs = append(f.Configs,
		Config{
			Name: "pkg/warm/s1", Package: "pkg", Language: "python",
			Cache: "warm", Workers: 1, Shards: 1, Sessions: 2,
			Tests: 12, VirtTime: 1100, VirtMakespan: 1100, WallNs: 5,
		},
		Config{
			Name: "pkg/warm/s4", Package: "pkg", Language: "python",
			Cache: "warm", Workers: 1, Shards: 4, Sessions: 2,
			Tests: 12, VirtTime: 1100, VirtMakespan: 400, WallNs: 5,
		},
	)
	if err := f.Validate(); err != nil {
		t.Fatalf("sharded cells with their own group failed validation: %v", err)
	}
	f.Configs[3].Tests = 13
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("err = %v, want determinism violation between sharded cells", err)
	}
}

// TestValidateShardedMakespanBounds: a sharded cell must carry a makespan in
// (0, VirtTime] — it is the scaling signal the trajectory records.
func TestValidateShardedMakespanBounds(t *testing.T) {
	for _, bad := range []int64{0, -1, 1101} {
		f := validFile()
		f.Configs = append(f.Configs, Config{
			Name: "pkg/warm/s4", Package: "pkg", Language: "python",
			Cache: "warm", Workers: 1, Shards: 4, Sessions: 2,
			Tests: 12, VirtTime: 1100, VirtMakespan: bad, WallNs: 5,
		})
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "virt_makespan") {
			t.Fatalf("makespan %d: err = %v, want virt_makespan bound error", bad, err)
		}
	}
}

// TestBDDCellsGroupByWarmth: bdd cells form their own determinism groups,
// split by cache warmth exactly like incremental ones (a persist hit changes
// the backend's query stream, and with it the per-query diagram costs).
func TestBDDCellsGroupByWarmth(t *testing.T) {
	f := validFile()
	f.Configs = append(f.Configs,
		Config{
			Name: "pkg/bdd/cold/w1", Package: "pkg", Language: "python",
			Cache: "cold", Workers: 1, Sessions: 2, SolverMode: "bdd",
			Tests: 20, VirtTime: 900, WallNs: 5,
		},
		Config{
			Name: "pkg/bdd/warm/w1", Package: "pkg", Language: "python",
			Cache: "warm", Workers: 1, Sessions: 2, SolverMode: "bdd",
			Tests: 20, VirtTime: 905, WallNs: 5,
		},
		Config{
			Name: "pkg/bdd/warm/w4", Package: "pkg", Language: "python",
			Cache: "warm", Workers: 4, Sessions: 2, SolverMode: "bdd",
			Tests: 20, VirtTime: 905, WallNs: 5,
		},
	)
	if err := f.Validate(); err != nil {
		t.Fatalf("bdd cells split by warmth failed validation: %v", err)
	}
	f.Configs[len(f.Configs)-1].VirtTime = 906
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("err = %v, want determinism violation between same-warmth bdd cells", err)
	}
}

// TestParseRejectsNaNDurations documents why Validate only guards against
// negative durations: every duration field is an int64, and encoding/json
// refuses non-numeric literals outright, so a NaN cannot reach Validate.
func TestParseRejectsNaNDurations(t *testing.T) {
	f := validFile()
	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"wall_ns": 5`, `"wall_ns": NaN`, 1)
	if bad == string(data) {
		t.Fatal("test did not find a wall_ns field to corrupt")
	}
	if _, err := Parse([]byte(bad)); err == nil {
		t.Fatal("NaN duration passed Parse")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		{"schema", func(f *File) { f.Schema = "other/v9" }, "schema"},
		{"bench", func(f *File) { f.Bench = "" }, "bench"},
		{"configs", func(f *File) { f.Configs = nil }, "no configs"},
		{"goversion", func(f *File) { f.GoVersion = "" }, "go_version"},
		{"cache", func(f *File) { f.Configs[0].Cache = "tepid" }, "cache"},
		{"workers", func(f *File) { f.Configs[0].Workers = 0 }, "workers"},
		{"virt", func(f *File) { f.Configs[0].VirtTime = 0 }, "virt_time"},
		{"shards", func(f *File) { f.Configs[0].Shards = -1 }, "shards"},
		{"span self", func(f *File) {
			f.Configs[0].Spans = []obs.SpanAggregate{{Layer: "x", Count: 1, VirtSelf: 2, VirtTotal: 1}}
		}, "self"},
		{"session span", func(f *File) {
			f.Configs[0].Spans = []obs.SpanAggregate{{Layer: obs.SpanChefSession, Count: 1, VirtTotal: 7}}
		}, "virt_time"},
		{"solver mode", func(f *File) { f.Configs[0].SolverMode = "quantum" }, "solver_mode"},
		{"negative wall", func(f *File) { f.Configs[0].WallNs = -1 }, "wall_ns"},
		{"negative tests", func(f *File) { f.Configs[0].Tests = -5 }, "tests"},
		{"negative span wall", func(f *File) {
			f.Configs[0].Spans = []obs.SpanAggregate{{Layer: "x", Count: 1, VirtTotal: 1, WallTotal: -3}}
		}, "negative duration"},
		{"negative span virt", func(f *File) {
			f.Configs[0].Spans = []obs.SpanAggregate{{Layer: "x", Count: 1, VirtTotal: -1, VirtSelf: -1}}
		}, "negative duration"},
		{"duplicate cell", func(f *File) { f.Configs[1] = f.Configs[0] }, "duplicate"},
	}
	for _, tc := range cases {
		f := validFile()
		tc.mut(f)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
