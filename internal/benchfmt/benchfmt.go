// Package benchfmt defines the schema of the continuous benchmark
// trajectory: the BENCH_<pr>.json files cmd/chef-bench writes at the repo
// root, one per change that wants a performance footprint on record. Each
// file is self-describing (schema version, seed, budgets, Go toolchain) so a
// later reader can tell whether two points on the trajectory are comparable
// before comparing them.
//
// The deterministic virtual-time core is what makes the trajectory
// meaningful: Tests and VirtTime are bit-exact functions of (package, seed,
// budgets), so any drift between two BENCH files with the same parameters is
// a behavior change, not noise. Wall-clock fields are observational and may
// drift with the host.
package benchfmt

import (
	"encoding/json"
	"fmt"

	"chef/internal/obs"
)

// SchemaVersion identifies the file layout. Bump only on incompatible
// changes; readers must refuse versions they do not know.
const SchemaVersion = "chef-bench/v1"

// File is one point on the benchmark trajectory.
type File struct {
	Schema string `json:"schema"`
	// Bench names the matrix that produced the file (e.g. "fixed-matrix" or
	// "micro"); files with different Bench values are not comparable.
	Bench     string `json:"bench"`
	Seed      int64  `json:"seed"`
	Budget    int64  `json:"budget"`
	StepLimit int64  `json:"step_limit"`
	// Reps is the number of sessions (distinct seeds) per configuration.
	Reps      int      `json:"reps"`
	GoVersion string   `json:"go_version"`
	Configs   []Config `json:"configs"`
}

// Config is one cell of the benchmark matrix.
type Config struct {
	Name     string `json:"name"`
	Package  string `json:"package"`
	Language string `json:"language"`
	// Cache is "cold" (no persistent store) or "warm" (persistent store
	// pre-populated by an identical unmeasured pass).
	Cache   string `json:"cache"`
	Workers int    `json:"workers"`
	// Shards, when > 0, marks a sharded-exploration cell (chef.ShardedSession
	// with up to Shards epoch workers). Sharded cells are deterministic across
	// shard counts but follow different semantics than plain cells, so the
	// determinism check groups them separately per package.
	Shards int `json:"shards,omitempty"`
	// SolverMode is the decision procedure behind the solver's cache layers
	// ("oneshot", "incremental" or "bdd"); empty means oneshot, keeping
	// files from before the field existed valid. Incremental cells return
	// different (equally valid) models than oneshot ones, and bdd cells
	// spend different (equally deterministic) virtual costs, so exploration
	// legitimately diverges: the determinism check groups each mode
	// separately.
	SolverMode string `json:"solver_mode,omitempty"`
	// Strategy names the state-selection strategy when a cell deviates from
	// the matrix default (e.g. "dfs" for the deep-path cells that exercise
	// incremental solving's prefix reuse); empty means the matrix default.
	Strategy string `json:"strategy,omitempty"`
	// Sessions ran; Tests and VirtTime are totals across them and are
	// deterministic. WallNs is the measured wall time of the whole cell,
	// observational only.
	Sessions int   `json:"sessions"`
	Tests    int64 `json:"tests"`
	VirtTime int64 `json:"virt_time"`
	WallNs   int64 `json:"wall_ns"`
	// VirtMakespan, for sharded cells, is the virtual-time critical path of
	// the epoch schedule (per epoch, the max worker load; summed). It is
	// deterministic per shard count but a function of it — VirtTime at 1
	// shard, shrinking toward VirtTime/shards as workers balance — so it
	// carries the shard-scaling signal: VirtTime/VirtMakespan is the cell's
	// virtual throughput.
	VirtMakespan int64 `json:"virt_makespan,omitempty"`
	// Spans is the per-layer time attribution of the cell (span profiler
	// aggregates; see internal/obs). Virtual fields are deterministic, wall
	// fields observational.
	Spans []obs.SpanAggregate `json:"spans,omitempty"`
}

// Marshal renders the file as indented JSON with a trailing newline, the
// committed on-disk form.
func Marshal(f *File) ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Parse decodes and validates a BENCH file.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks the file's internal consistency, including the determinism
// contract: every variant of a package (cold vs warm cache, serial vs
// parallel workers, 1-shard vs N-shard) must report identical Tests and
// VirtTime, because the persistent store's read side is fixed before a run
// and worker scheduling never reaches the virtual clock. Cells of one
// package split into determinism groups by sharding, solver mode and
// strategy — the sharded semantics, the incremental backend's models and a
// different state-selection order each legitimately change the explored
// paths — and incremental cells additionally by cache warmth, because a
// persist hit changes the context's query stream and with it later models
// (see the key construction below). Within a group every cell must agree.
// A violation means the
// determinism guarantee broke, which is exactly what the bench smoke test
// exists to catch.
func (f *File) Validate() error {
	if f.Schema != SchemaVersion {
		return fmt.Errorf("schema %q, want %q", f.Schema, SchemaVersion)
	}
	if f.Bench == "" {
		return fmt.Errorf("missing bench name")
	}
	if len(f.Configs) == 0 {
		return fmt.Errorf("no configs")
	}
	if f.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	type point struct{ tests, virt int64 }
	first := map[string]point{}
	firstName := map[string]string{}
	names := map[string]bool{}
	for i, c := range f.Configs {
		if c.Name == "" || c.Package == "" {
			return fmt.Errorf("config %d: missing name or package", i)
		}
		// Duplicate cells are a generator bug (a rerun appended instead of
		// replacing): the trajectory would silently double-count the cell.
		if names[c.Name] {
			return fmt.Errorf("config %s: duplicate config cell", c.Name)
		}
		names[c.Name] = true
		if c.Cache != "cold" && c.Cache != "warm" {
			return fmt.Errorf("config %s: cache %q, want cold or warm", c.Name, c.Cache)
		}
		if c.Workers < 1 || c.Sessions < 1 {
			return fmt.Errorf("config %s: workers=%d sessions=%d, want >= 1", c.Name, c.Workers, c.Sessions)
		}
		if c.Tests < 0 {
			return fmt.Errorf("config %s: tests=%d, want >= 0", c.Name, c.Tests)
		}
		if c.VirtTime <= 0 {
			return fmt.Errorf("config %s: virt_time=%d, want > 0", c.Name, c.VirtTime)
		}
		// Durations are int64 nanosecond/propagation counts, so NaN cannot
		// survive decoding (encoding/json rejects non-numeric literals), but
		// a corrupted or hand-edited file can still smuggle negatives in.
		if c.WallNs < 0 {
			return fmt.Errorf("config %s: wall_ns=%d, want >= 0", c.Name, c.WallNs)
		}
		var session *obs.SpanAggregate
		for j := range c.Spans {
			sp := &c.Spans[j]
			if sp.Count <= 0 {
				return fmt.Errorf("config %s: span %s: count=%d", c.Name, sp.Layer, sp.Count)
			}
			if sp.VirtTotal < 0 || sp.VirtSelf < 0 || sp.WallTotal < 0 || sp.WallSelf < 0 {
				return fmt.Errorf("config %s: span %s: negative duration (virt %d/%d, wall %d/%d)",
					c.Name, sp.Layer, sp.VirtSelf, sp.VirtTotal, sp.WallSelf, sp.WallTotal)
			}
			if sp.VirtSelf > sp.VirtTotal {
				return fmt.Errorf("config %s: span %s: self %d > total %d", c.Name, sp.Layer, sp.VirtSelf, sp.VirtTotal)
			}
			if sp.Layer == obs.SpanChefSession {
				session = sp
			}
		}
		if session != nil && session.VirtTotal != c.VirtTime {
			return fmt.Errorf("config %s: chef.session span total %d != virt_time %d",
				c.Name, session.VirtTotal, c.VirtTime)
		}
		if c.Shards < 0 {
			return fmt.Errorf("config %s: shards=%d, want >= 0", c.Name, c.Shards)
		}
		if c.Shards > 0 {
			if c.VirtMakespan <= 0 || c.VirtMakespan > c.VirtTime {
				return fmt.Errorf("config %s: virt_makespan=%d, want in (0, virt_time=%d]",
					c.Name, c.VirtMakespan, c.VirtTime)
			}
		}
		switch c.SolverMode {
		case "", "oneshot", "incremental", "bdd":
		default:
			return fmt.Errorf("config %s: solver_mode %q, want oneshot, incremental or bdd", c.Name, c.SolverMode)
		}
		key := c.Package
		if c.Shards > 0 {
			key += "|sharded"
		}
		// Cells that change the decision procedure or the exploration
		// strategy legitimately produce different deterministic results, so
		// they form their own determinism groups. Empty values keep the key
		// (and therefore old files) unchanged.
		if c.SolverMode != "" {
			key += "|" + c.SolverMode
		}
		if c.SolverMode == "incremental" || c.SolverMode == "bdd" {
			// A stateful backend's per-query costs (and, for incremental,
			// models) are a function of the context's whole query stream,
			// and warmth changes the stream: a persist hit bypasses the
			// backend, so the context sees fewer queries and later solves
			// start from different internal state (assumption trail, or the
			// diagram's memo tables). Only full warmth — every query
			// replayed — reproduces the cold stream, and Unknown verdicts
			// are never persisted, so partial warmth is inherent. Cold and
			// warm cells of these modes are therefore separate determinism
			// groups; within each, shard counts must still agree exactly.
			key += "|" + c.Cache
		}
		if c.Strategy != "" {
			key += "|" + c.Strategy
		}
		got := point{c.Tests, c.VirtTime}
		if want, ok := first[key]; ok {
			if got != want {
				return fmt.Errorf("determinism violation: %s (tests=%d virt=%d) disagrees with %s (tests=%d virt=%d) on package %s",
					c.Name, got.tests, got.virt, firstName[key], want.tests, want.virt, c.Package)
			}
		} else {
			first[key] = got
			firstName[key] = c.Name
		}
	}
	return nil
}
