// Package lowlevel implements the low-level symbolic execution engine that
// plays S2E's role in the CHEF architecture. The "machine code" being
// executed symbolically is the instrumented interpreter: every
// input-dependent branch site in the interpreter carries a unique low-level
// program counter (LLPC), and a low-level path is the sequence of (LLPC,
// decision) pairs taken during one run.
//
// The engine is concolic in the DART style described in §2.1 of the paper:
// each run executes the interpreter concretely under a concrete input
// assignment while collecting the symbolic path condition; forked alternate
// states are (path-condition, metadata) pairs queued for a state-selection
// strategy; selecting one asks the constraint solver for a satisfying input
// and re-executes the interpreter from scratch.
package lowlevel

import (
	"fmt"

	"chef/internal/symexpr"
)

// SVal is a concolic scalar: a concrete value paired with an optional
// symbolic expression. A nil expression means the value is purely concrete.
// The invariant maintained throughout the engine is that evaluating E under
// the machine's input assignment yields C.
type SVal struct {
	C uint64
	E *symexpr.Expr
	W symexpr.Width
}

// ConcreteVal builds a purely concrete SVal.
func ConcreteVal(v uint64, w symexpr.Width) SVal {
	return SVal{C: v & w.Mask(), W: w}
}

// ConcreteBool builds a width-1 concrete SVal.
func ConcreteBool(b bool) SVal {
	if b {
		return ConcreteVal(1, symexpr.W1)
	}
	return ConcreteVal(0, symexpr.W1)
}

// IsSymbolic reports whether the value carries a symbolic expression that
// actually mentions input variables.
func (v SVal) IsSymbolic() bool { return v.E != nil && v.E.HasSymbols() }

// Expr returns the symbolic expression of the value, materializing a
// constant expression for purely concrete values.
func (v SVal) Expr() *symexpr.Expr {
	if v.E != nil {
		return v.E
	}
	return symexpr.Const(v.C, v.W)
}

// Bool returns the concrete truth of a width-1 value.
func (v SVal) Bool() bool { return v.C != 0 }

// Int returns the concrete value sign-extended to a Go int64.
func (v SVal) Int() int64 { return symexpr.SignExtendConst(v.C, v.W) }

func (v SVal) String() string {
	if v.IsSymbolic() {
		return fmt.Sprintf("%d«%s»", v.C, v.E)
	}
	return fmt.Sprintf("%d", v.C)
}

func binOp(op func(a, b *symexpr.Expr) *symexpr.Expr,
	fold func(a, b uint64, w symexpr.Width) uint64,
	resW func(w symexpr.Width) symexpr.Width,
	x, y SVal) SVal {
	if x.W != y.W {
		panic(fmt.Sprintf("lowlevel: width mismatch %d vs %d", x.W, y.W))
	}
	w := resW(x.W)
	out := SVal{C: fold(x.C, y.C, x.W) & w.Mask(), W: w}
	if x.IsSymbolic() || y.IsSymbolic() {
		out.E = op(x.Expr(), y.Expr())
	}
	return out
}

func sameW(w symexpr.Width) symexpr.Width { return w }
func boolW(symexpr.Width) symexpr.Width   { return symexpr.W1 }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AddV returns x + y.
func AddV(x, y SVal) SVal {
	return binOp(symexpr.Add, func(a, b uint64, w symexpr.Width) uint64 { return a + b }, sameW, x, y)
}

// SubV returns x - y.
func SubV(x, y SVal) SVal {
	return binOp(symexpr.Sub, func(a, b uint64, w symexpr.Width) uint64 { return a - b }, sameW, x, y)
}

// MulV returns x * y.
func MulV(x, y SVal) SVal {
	return binOp(symexpr.Mul, func(a, b uint64, w symexpr.Width) uint64 { return a * b }, sameW, x, y)
}

// UDivV returns the unsigned quotient (all-ones for division by zero).
func UDivV(x, y SVal) SVal {
	return binOp(symexpr.UDiv, func(a, b uint64, w symexpr.Width) uint64 {
		if b&w.Mask() == 0 {
			return w.Mask()
		}
		return (a & w.Mask()) / (b & w.Mask())
	}, sameW, x, y)
}

// URemV returns the unsigned remainder (x for division by zero).
func URemV(x, y SVal) SVal {
	return binOp(symexpr.URem, func(a, b uint64, w symexpr.Width) uint64 {
		if b&w.Mask() == 0 {
			return a & w.Mask()
		}
		return (a & w.Mask()) % (b & w.Mask())
	}, sameW, x, y)
}

// AndV returns the bitwise conjunction.
func AndV(x, y SVal) SVal {
	return binOp(symexpr.And, func(a, b uint64, w symexpr.Width) uint64 { return a & b }, sameW, x, y)
}

// OrV returns the bitwise disjunction.
func OrV(x, y SVal) SVal {
	return binOp(symexpr.Or, func(a, b uint64, w symexpr.Width) uint64 { return a | b }, sameW, x, y)
}

// XorV returns the bitwise exclusive or.
func XorV(x, y SVal) SVal {
	return binOp(symexpr.Xor, func(a, b uint64, w symexpr.Width) uint64 { return a ^ b }, sameW, x, y)
}

// ShlV returns x << y.
func ShlV(x, y SVal) SVal {
	return binOp(symexpr.Shl, func(a, b uint64, w symexpr.Width) uint64 {
		if b&w.Mask() >= uint64(w) {
			return 0
		}
		return a << (b & w.Mask())
	}, sameW, x, y)
}

// LShrV returns x >> y (logical).
func LShrV(x, y SVal) SVal {
	return binOp(symexpr.LShr, func(a, b uint64, w symexpr.Width) uint64 {
		if b&w.Mask() >= uint64(w) {
			return 0
		}
		return (a & w.Mask()) >> (b & w.Mask())
	}, sameW, x, y)
}

// EqV returns the width-1 comparison x == y.
func EqV(x, y SVal) SVal {
	return binOp(symexpr.Eq, func(a, b uint64, w symexpr.Width) uint64 { return b2u(a&w.Mask() == b&w.Mask()) }, boolW, x, y)
}

// NeV returns the width-1 comparison x != y.
func NeV(x, y SVal) SVal { return NotV(EqV(x, y)) }

// UltV returns the width-1 unsigned comparison x < y.
func UltV(x, y SVal) SVal {
	return binOp(symexpr.Ult, func(a, b uint64, w symexpr.Width) uint64 { return b2u(a&w.Mask() < b&w.Mask()) }, boolW, x, y)
}

// UleV returns the width-1 unsigned comparison x <= y.
func UleV(x, y SVal) SVal {
	return binOp(symexpr.Ule, func(a, b uint64, w symexpr.Width) uint64 { return b2u(a&w.Mask() <= b&w.Mask()) }, boolW, x, y)
}

// SltV returns the width-1 signed comparison x < y.
func SltV(x, y SVal) SVal {
	return binOp(symexpr.Slt, func(a, b uint64, w symexpr.Width) uint64 {
		return b2u(symexpr.SignExtendConst(a, w) < symexpr.SignExtendConst(b, w))
	}, boolW, x, y)
}

// SleV returns the width-1 signed comparison x <= y.
func SleV(x, y SVal) SVal {
	return binOp(symexpr.Sle, func(a, b uint64, w symexpr.Width) uint64 {
		return b2u(symexpr.SignExtendConst(a, w) <= symexpr.SignExtendConst(b, w))
	}, boolW, x, y)
}

// NotV returns the bitwise complement (logical negation at width 1).
func NotV(x SVal) SVal {
	out := SVal{C: ^x.C & x.W.Mask(), W: x.W}
	if x.IsSymbolic() {
		out.E = symexpr.Not(x.Expr())
	}
	return out
}

// NegV returns the two's-complement negation.
func NegV(x SVal) SVal {
	out := SVal{C: -x.C & x.W.Mask(), W: x.W}
	if x.IsSymbolic() {
		out.E = symexpr.Neg(x.Expr())
	}
	return out
}

// ZExtV zero-extends to width w.
func ZExtV(x SVal, w symexpr.Width) SVal {
	out := SVal{C: x.C & x.W.Mask(), W: w}
	if x.IsSymbolic() {
		out.E = symexpr.ZExt(x.Expr(), w)
	}
	return out
}

// SExtV sign-extends to width w.
func SExtV(x SVal, w symexpr.Width) SVal {
	out := SVal{C: uint64(symexpr.SignExtendConst(x.C, x.W)) & w.Mask(), W: w}
	if x.IsSymbolic() {
		out.E = symexpr.SExt(x.Expr(), w)
	}
	return out
}

// TruncV truncates to width w.
func TruncV(x SVal, w symexpr.Width) SVal {
	out := SVal{C: x.C & w.Mask(), W: w}
	if x.IsSymbolic() {
		out.E = symexpr.Trunc(x.Expr(), w)
	}
	return out
}

// BoolAndV returns the width-1 conjunction.
func BoolAndV(x, y SVal) SVal { return AndV(x, y) }

// BoolOrV returns the width-1 disjunction.
func BoolOrV(x, y SVal) SVal { return OrV(x, y) }
