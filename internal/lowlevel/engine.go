package lowlevel

import (
	"math"
	"math/rand"

	"chef/internal/obs"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// State is a pending alternate: a path that forked off an executed run and
// has not been explored yet. The high-level classification fields are filled
// from the machine at fork time and consumed by the CUPA strategies.
type State struct {
	pc   *pcNode
	base symexpr.Assignment // concrete inputs of the forking run
	Sig  uint64

	// Classification data.
	LLPC       LLPC
	DynHLPC    uint64
	StaticHLPC uint64
	Opcode     uint32
	Depth      int
	ForkWeight float64

	// Divergence expectation: the decision index and orientation this state
	// is supposed to flip when executed.
	flipIdx      int
	flipLLPC     LLPC
	flipTaken    bool
	flipOriented bool

	// retries counts how many times this state's feasibility query came
	// back Unknown and the state was re-queued (see Options.UnknownRetries).
	retries int
}

// Retries returns how many times the state has been re-queued after an
// Unknown feasibility verdict.
func (s *State) Retries() int { return s.retries }

// PathCondition materializes the state's path condition.
func (s *State) PathCondition() []*symexpr.Expr { return s.pc.slice() }

// Strategy selects the next pending state to explore. Implementations are
// not safe for concurrent use.
type Strategy interface {
	// Add enqueues a freshly forked state.
	Add(s *State)
	// Select removes and returns the next state, or nil when empty.
	Select() *State
	// Len returns the number of queued states.
	Len() int
}

// RunStatus classifies how a run terminated.
type RunStatus uint8

// Run outcomes.
const (
	RunCompleted    RunStatus = iota // interpreter finished normally
	RunHang                          // per-run step limit exceeded
	RunAssumeFailed                  // concrete input violated an assumption
	RunEnded                         // guest called end_symbolic
)

func (s RunStatus) String() string {
	switch s {
	case RunCompleted:
		return "completed"
	case RunHang:
		return "hang"
	case RunAssumeFailed:
		return "assume-failed"
	case RunEnded:
		return "ended"
	default:
		return "unknown"
	}
}

// RunInfo summarizes one concrete run of the interpreter.
type RunInfo struct {
	Status   RunStatus
	Steps    int64
	Input    symexpr.Assignment
	Diverged bool
	Depth    int // symbolic decisions taken
}

// Options configure the engine.
type Options struct {
	// StepLimit caps virtual steps per run; exceeding it is a hang
	// (the paper's 60-second per-path timeout). Default 1 << 20.
	StepLimit int64
	// Seed drives all randomized choices.
	Seed int64
	// SolverOptions configure the constraint solver.
	SolverOptions solver.Options
	// ForkWeightDecay is the p of §3.4 (default 0.75).
	ForkWeightDecay float64
	// UnknownRetries bounds how many times a state whose feasibility query
	// came back Unknown (solver budget exhausted) is re-queued before being
	// abandoned. 0 means the default (3); negative disables re-queueing, so
	// the first Unknown abandons the state immediately.
	UnknownRetries int
	// Metrics, when non-nil, receives engine counters/gauges (fork counts
	// per LLPC, states alive, run outcomes). Observation-only: it never
	// affects exploration.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives structured exploration events (forks,
	// run ends). Disabled tracing costs one nil-check per site.
	Tracer obs.Tracer
	// Spans, when non-nil, profiles the engine's layers (engine.run spans,
	// with the solver's spans nested inside). Single-goroutine, like the
	// engine itself. Observation-only.
	Spans *obs.SpanProfiler
	// Router, when non-nil, restricts this engine to its own signature
	// range: alternates and trail marks outside it are handed off instead
	// of being queued or recorded locally (path-space sharding).
	Router Router
}

// Router partitions the decision-signature space across sibling engines
// (path-space sharding, see internal/chef's ShardedSession). When an
// engine has a router, alternates and trail signatures outside its own
// range are handed off instead of entering the local visited set or
// strategy queue; the owning engine receives them via InjectState /
// InjectVisited at an epoch barrier. Implementations are called only from
// the engine's own goroutine and need no synchronization of their own.
type Router interface {
	// Owns reports whether sig belongs to this engine's range.
	Owns(sig uint64) bool
	// HandOff buffers a state whose signature another engine owns.
	HandOff(st *State)
	// NoteVisited buffers a trail signature another engine owns.
	NoteVisited(sig uint64)
}

// defaultUnknownRetries is the per-state retry budget for Unknown verdicts.
const defaultUnknownRetries = 3

func (o *Options) fill() {
	if o.StepLimit == 0 {
		o.StepLimit = 1 << 20
	}
	if o.ForkWeightDecay == 0 {
		o.ForkWeightDecay = 0.75
	}
	switch {
	case o.UnknownRetries == 0:
		o.UnknownRetries = defaultUnknownRetries
	case o.UnknownRetries < 0:
		o.UnknownRetries = 0
	}
}

// Stats counts engine-level events. Engine.Stats returns it by value — a
// point-in-time snapshot that does not track later engine progress; callers
// that want fresh numbers re-snapshot, and aggregators combine snapshots with
// Add rather than summing fields by hand.
type Stats struct {
	Runs          int64
	LLPaths       int64 // completed low-level paths (test cases at LL granularity)
	Hangs         int64
	AssumeFails   int64
	Forks         int64
	DupStates     int64 // alternates skipped because their path was seen
	UnsatStates   int64
	UnknownStates int64
	// Degradation accounting: every Unknown verdict either re-queues the
	// state for retry or abandons it, so
	// UnknownStates == RequeuedStates + AbandonedStates always holds.
	RequeuedStates  int64
	AbandonedStates int64
	Divergences     int64
	// HandedOff counts alternates routed to a sibling engine's range
	// instead of being queued locally (0 without a Router).
	HandedOff int64
}

// Add folds another snapshot into s, field by field. It is the merge helper
// for aggregating per-session snapshots (portfolio members, harness cells).
func (s *Stats) Add(o Stats) {
	s.Runs += o.Runs
	s.LLPaths += o.LLPaths
	s.Hangs += o.Hangs
	s.AssumeFails += o.AssumeFails
	s.Forks += o.Forks
	s.DupStates += o.DupStates
	s.UnsatStates += o.UnsatStates
	s.UnknownStates += o.UnknownStates
	s.RequeuedStates += o.RequeuedStates
	s.AbandonedStates += o.AbandonedStates
	s.Divergences += o.Divergences
	s.HandedOff += o.HandedOff
}

// Program is the entry point the CHEF layer hands to the engine: one full
// concrete+symbolic run of the interpreter over the given machine.
type Program func(m *Machine)

type concretizeKey struct {
	sig  uint64
	llpc LLPC
}

// Engine drives concolic exploration of a Program.
//
// Concurrency contract: an Engine is single-owner. All methods — including
// the read accessors Stats, Clock, Pending, Solver and Rand, which touch
// the same unsynchronized fields the exploration loop mutates — must be
// called from the goroutine currently driving the engine. Ownership may
// move between goroutines only across a happens-before edge (channel,
// WaitGroup, mutex), which is how the sharded coordinator migrates cells
// between epoch workers. Code that needs engine numbers while another
// goroutine may be driving it must read a barrier-published Snapshot
// (see chef.ShardedSession.Progress) instead of calling accessors.
type Engine struct {
	opts     Options
	solver   *solver.Solver
	strategy Strategy
	prog     Program
	rng      *rand.Rand
	router   Router

	visited    map[uint64]bool // explored or queued decision signatures
	seenValues map[concretizeKey]map[uint64]bool

	clock int64 // virtual time: steps + solver propagation cost
	stats Stats

	// Observability (all nil when disabled; observation-only).
	tracer     obs.Tracer
	spans      *obs.SpanProfiler
	metrics    *obs.Registry
	mForks     *obs.Counter
	mDup       *obs.Counter
	mRuns      *obs.Counter
	mHangs     *obs.Counter
	mLLPaths   *obs.Counter
	mUnsat     *obs.Counter
	mUnknown   *obs.Counter
	mRequeued  *obs.Counter
	mAbandoned *obs.Counter
	mDiverge   *obs.Counter
	mCompleted *obs.Counter
	mPending   *obs.Gauge
	mForkLLPC  *obs.CounterVec

	// Per-run fork-weight grouping.
	group     []*State
	groupLLPC LLPC

	// OnFork, when set, is invoked for every registered alternate state
	// before it is handed to the strategy. The CHEF layer uses it to attach
	// high-level classification data.
	OnFork func(*State)
}

// NewEngine builds an engine exploring prog with the given strategy.
func NewEngine(prog Program, strategy Strategy, opts Options) *Engine {
	opts.fill()
	// The solver inherits the engine's observability sinks unless the caller
	// wired its own.
	so := opts.SolverOptions
	if so.Metrics == nil {
		so.Metrics = opts.Metrics
	}
	if so.Tracer == nil {
		so.Tracer = opts.Tracer
	}
	if so.Spans == nil {
		so.Spans = opts.Spans
	}
	e := &Engine{
		opts:       opts,
		solver:     solver.New(so),
		strategy:   strategy,
		prog:       prog,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		router:     opts.Router,
		visited:    map[uint64]bool{},
		seenValues: map[concretizeKey]map[uint64]bool{},
		tracer:     opts.Tracer,
		spans:      opts.Spans,
		metrics:    opts.Metrics,
	}
	if reg := opts.Metrics; reg != nil {
		e.mForks = reg.Counter(obs.MForks)
		e.mDup = reg.Counter(obs.MDupStates)
		e.mRuns = reg.Counter(obs.MRuns)
		e.mHangs = reg.Counter(obs.MHangs)
		e.mLLPaths = reg.Counter(obs.MLLPaths)
		e.mUnsat = reg.Counter(obs.MUnsatStates)
		e.mUnknown = reg.Counter(obs.MUnknownStates)
		e.mRequeued = reg.Counter(obs.MStatesRequeued)
		e.mAbandoned = reg.Counter(obs.MStatesAbandoned)
		e.mDiverge = reg.Counter(obs.MDivergences)
		e.mCompleted = reg.Counter(obs.MStatesCompleted)
		e.mPending = reg.Gauge(obs.MStatesPending)
		e.mForkLLPC = reg.CounterVec(obs.MForksByLLPC)
	}
	if so.Tracer != nil {
		// Stamp solver events with the engine's virtual clock.
		e.solver.Attach(solver.Instruments{Now: func() int64 { return e.clock }})
	}
	return e
}

// Solver exposes the engine's constraint solver (for stats and the CHEF
// layer's upper_bound needs).
func (e *Engine) Solver() *solver.Solver { return e.solver }

// Rand exposes the engine's deterministic randomness source so strategies
// can share it.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Clock returns the virtual time consumed so far.
func (e *Engine) Clock() int64 { return e.clock }

// Stats returns a value snapshot of the engine counters, taken at call time.
// The copy does not track later engine progress (staleness-by-copy is the
// intended semantics); re-snapshot for fresh numbers and combine snapshots
// with Stats.Add.
func (e *Engine) Stats() Stats { return e.stats }

// Pending returns the number of queued states.
func (e *Engine) Pending() int { return e.strategy.Len() }

func (e *Engine) markVisited(sig uint64) {
	if e.router != nil && !e.router.Owns(sig) {
		e.router.NoteVisited(sig)
		return
	}
	e.visited[sig] = true
}

// InjectVisited records a trail signature observed by a sibling engine.
// Sharding only: called by the coordinator at an epoch barrier, before
// InjectState deliveries, so a noted path suppresses a later state with
// the same signature deterministically.
func (e *Engine) InjectVisited(sig uint64) { e.visited[sig] = true }

// InjectState delivers a state handed off by a sibling engine whose fork
// landed in this engine's range. It applies the same visited-signature
// dedup a local fork gets and reports whether the state was queued.
// Sharding only: called by the coordinator at an epoch barrier.
func (e *Engine) InjectState(st *State) bool {
	if e.visited[st.Sig] {
		e.stats.DupStates++
		if e.metrics != nil {
			e.mDup.Inc()
		}
		return false
	}
	e.visited[st.Sig] = true
	e.strategy.Add(st)
	if e.metrics != nil {
		e.mPending.Set(int64(e.strategy.Len()))
	}
	return true
}

// Snapshot is the engine's merge-time read surface in one value copy.
type Snapshot struct {
	Stats   Stats
	Clock   int64
	Pending int
}

// Snapshot captures Stats, Clock and Pending together. Like every other
// engine method it must be called with engine ownership (see the Engine
// concurrency contract); the returned value is then safe to publish to
// other goroutines.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{Stats: e.stats, Clock: e.clock, Pending: e.strategy.Len()}
}

func (e *Engine) chargeSolver(propsBefore int64) {
	e.clock += e.solver.Stats().Propagations - propsBefore
}

func (e *Engine) registerAlternate(m *Machine, llpc LLPC, alt *symexpr.Expr, altSig uint64, flipTaken, oriented bool) {
	e.stats.Forks++
	if e.metrics != nil {
		e.mForks.Inc()
		e.mForkLLPC.At(uint64(llpc)).Inc()
	}
	if e.tracer != nil {
		decision := "exclude"
		if oriented {
			if flipTaken {
				decision = "flip-taken"
			} else {
				decision = "flip-untaken"
			}
		}
		e.tracer.Emit(&obs.Event{
			T:        e.clock + m.steps,
			Kind:     obs.KindLLFork,
			LLPC:     uint64(llpc),
			HLPC:     m.StaticHLPC,
			DynHLPC:  m.DynHLPC,
			Opcode:   m.Opcode,
			Decision: decision,
			Depth:    m.nDecisions,
		})
	}
	routed := e.router != nil && !e.router.Owns(altSig)
	if !routed {
		if e.visited[altSig] {
			e.stats.DupStates++
			if e.metrics != nil {
				e.mDup.Inc()
			}
			return
		}
		e.visited[altSig] = true
	}
	st := &State{
		pc:           &pcNode{parent: m.pc, c: alt, depth: depthOf(m.pc) + 1},
		base:         m.assign.Clone(),
		Sig:          altSig,
		LLPC:         llpc,
		DynHLPC:      m.DynHLPC,
		StaticHLPC:   m.StaticHLPC,
		Opcode:       m.Opcode,
		Depth:        m.nDecisions,
		ForkWeight:   1,
		flipIdx:      m.nDecisions,
		flipLLPC:     llpc,
		flipTaken:    flipTaken,
		flipOriented: oriented,
	}
	// Fork-weight grouping: consecutive forks at the same LLPC within a run
	// form a group whose members get weights p^(n-1) ... p^0.
	if llpc == e.groupLLPC && len(e.group) > 0 {
		e.group = append(e.group, st)
	} else {
		e.finalizeGroup()
		e.groupLLPC = llpc
		e.group = []*State{st}
	}
	if e.OnFork != nil {
		e.OnFork(st)
	}
	if routed {
		// The owner performs the visited-signature dedup at injection; the
		// state still joined this run's fork-weight group above, so its
		// weight is final before the barrier delivers it.
		e.stats.HandedOff++
		e.router.HandOff(st)
		return
	}
	e.strategy.Add(st)
	if e.metrics != nil {
		e.mPending.Set(int64(e.strategy.Len()))
	}
}

// finalizeGroup assigns fork weights p^(n-1-i) to the current group.
func (e *Engine) finalizeGroup() {
	n := len(e.group)
	p := e.opts.ForkWeightDecay
	for i, st := range e.group {
		st.ForkWeight = math.Pow(p, float64(n-1-i))
	}
	e.group = nil
	e.groupLLPC = 0
}

// runWith executes the program under the given input and returns the run
// summary. flip describes the decision the run is expected to invert (nil
// for the initial run).
func (e *Engine) runWith(input symexpr.Assignment, flip *State) *RunInfo {
	m := &Machine{
		eng:       e,
		stepLimit: e.opts.StepLimit,
		assign:    input,
		expectIdx: -1,
	}
	if flip != nil {
		m.expectIdx = flip.flipIdx
		m.expectLLPC = flip.flipLLPC
		m.expectTaken = flip.flipTaken
		m.expectOriented = flip.flipOriented
	}
	info := &RunInfo{Status: RunCompleted}
	e.stats.Runs++
	func() {
		defer func() {
			r := recover()
			switch r {
			case nil:
			case errStepLimit:
				info.Status = RunHang
				e.stats.Hangs++
			case errAssumeFail:
				info.Status = RunAssumeFailed
				e.stats.AssumeFails++
			case errEndSymbolic:
				info.Status = RunEnded
			default:
				panic(r)
			}
		}()
		e.prog(m)
	}()
	e.finalizeGroup()
	info.Steps = m.steps
	info.Input = m.assign
	info.Depth = m.nDecisions
	e.clock += m.steps
	if flip != nil {
		// Divergence: the run never reached its flip decision index, or
		// branched at a different site there.
		if m.diverged || m.nDecisions <= flip.flipIdx {
			info.Diverged = true
			e.stats.Divergences++
			if e.metrics != nil {
				e.mDiverge.Inc()
			}
		}
	}
	if info.Status != RunAssumeFailed {
		e.stats.LLPaths++
	}
	if e.metrics != nil {
		e.mRuns.Inc()
		e.mCompleted.Inc()
		if info.Status == RunHang {
			e.mHangs.Inc()
		}
		if info.Status != RunAssumeFailed {
			e.mLLPaths.Inc()
		}
		e.mPending.Set(int64(e.strategy.Len()))
	}
	if e.tracer != nil {
		e.tracer.Emit(&obs.Event{
			T:        e.clock,
			Kind:     obs.KindRunEnd,
			Status:   info.Status.String(),
			Steps:    info.Steps,
			Depth:    info.Depth,
			Diverged: info.Diverged,
		})
	}
	return info
}

// RunInitial performs the first run under default inputs.
func (e *Engine) RunInitial() *RunInfo {
	sp := e.spans.Start(obs.SpanEngineRun)
	c0 := e.clock
	info := e.runWith(symexpr.Assignment{}, nil)
	sp.End(e.clock - c0)
	return info
}

// SelectAndRun picks the next pending state, synthesizes an input for it and
// executes it. It returns (nil, false) when no pending states remain,
// (nil, true) when a state was discarded as infeasible, and (info, true)
// for an executed run.
func (e *Engine) SelectAndRun() (*RunInfo, bool) {
	st := e.strategy.Select()
	if st == nil {
		return nil, false
	}
	return e.runState(st), true
}

// runState is wrapped in an engine.run span: its virtual duration is the
// clock delta across the feasibility check plus the concrete run, so the
// span's self time is exactly the interpreter-step cost (the nested
// solver.check spans account for the propagation cost).
func (e *Engine) runState(st *State) *RunInfo {
	sp := e.spans.Start(obs.SpanEngineRun)
	c0 := e.clock
	info := e.runStateInner(st)
	sp.End(e.clock - c0)
	return info
}

func (e *Engine) runStateInner(st *State) *RunInfo {
	before := e.solver.Stats().Propagations
	// The path condition is passed in path order (root first) with the
	// state's trail signature: the incremental backend keys its
	// prefix-sharing trail reuse off exactly this shape.
	res, model := e.solver.CheckQuery(solver.Query{PC: st.pc.slice(), Base: st.base, PathSig: st.Sig})
	e.chargeSolver(before)
	switch res {
	case solver.Unsat:
		e.stats.UnsatStates++
		if e.metrics != nil {
			e.mUnsat.Inc()
			e.mPending.Set(int64(e.strategy.Len()))
		}
		return nil
	case solver.Unknown:
		// A budget miss is transient: re-queue the state for a bounded
		// number of retries instead of silently dropping the path. Unknown
		// results are never cached, so a retry reaches the SAT core again
		// and succeeds once the budget recovers.
		e.stats.UnknownStates++
		if e.metrics != nil {
			e.mUnknown.Inc()
		}
		if st.retries < e.opts.UnknownRetries {
			st.retries++
			e.stats.RequeuedStates++
			e.strategy.Add(st)
			if e.metrics != nil {
				e.mRequeued.Inc()
				e.mPending.Set(int64(e.strategy.Len()))
			}
			if e.tracer != nil {
				e.tracer.Emit(&obs.Event{
					T:       e.clock,
					Kind:    obs.KindStateRequeue,
					LLPC:    uint64(st.LLPC),
					Depth:   st.Depth,
					Retries: st.retries,
				})
			}
			return nil
		}
		// Final abandonment: release the visited signature so a later fork
		// at the same site can re-register the path. Coverage is then
		// under-reported until that happens — never silently lost forever.
		delete(e.visited, st.Sig)
		e.stats.AbandonedStates++
		if e.metrics != nil {
			e.mAbandoned.Inc()
			e.mPending.Set(int64(e.strategy.Len()))
		}
		if e.tracer != nil {
			e.tracer.Emit(&obs.Event{
				T:       e.clock,
				Kind:    obs.KindStateAbandon,
				LLPC:    uint64(st.LLPC),
				Depth:   st.Depth,
				Retries: st.retries,
			})
		}
		return nil
	}
	// Merge the model over the forking run's concrete inputs so unconstrained
	// variables keep their previous values.
	input := st.base.Clone()
	for k, v := range model {
		input[k] = v
	}
	return e.runWith(input, st)
}

// RandomStrategy is the baseline of §6.3: uniform random selection among all
// pending states.
type RandomStrategy struct {
	rng    *rand.Rand
	states []*State
}

// NewRandomStrategy builds the baseline strategy.
func NewRandomStrategy(rng *rand.Rand) *RandomStrategy {
	return &RandomStrategy{rng: rng}
}

// Add implements Strategy.
func (r *RandomStrategy) Add(s *State) { r.states = append(r.states, s) }

// Select implements Strategy.
func (r *RandomStrategy) Select() *State {
	n := len(r.states)
	if n == 0 {
		return nil
	}
	i := r.rng.Intn(n)
	s := r.states[i]
	r.states[i] = r.states[n-1]
	r.states = r.states[:n-1]
	return s
}

// Len implements Strategy.
func (r *RandomStrategy) Len() int { return len(r.states) }

// DFSStrategy explores deepest-first (a stack).
type DFSStrategy struct{ states []*State }

// NewDFSStrategy builds a depth-first strategy.
func NewDFSStrategy() *DFSStrategy { return &DFSStrategy{} }

// Add implements Strategy.
func (d *DFSStrategy) Add(s *State) { d.states = append(d.states, s) }

// Select implements Strategy.
func (d *DFSStrategy) Select() *State {
	n := len(d.states)
	if n == 0 {
		return nil
	}
	s := d.states[n-1]
	d.states = d.states[:n-1]
	return s
}

// Len implements Strategy.
func (d *DFSStrategy) Len() int { return len(d.states) }

// BFSStrategy explores shallowest-first (a queue).
type BFSStrategy struct{ states []*State }

// NewBFSStrategy builds a breadth-first strategy.
func NewBFSStrategy() *BFSStrategy { return &BFSStrategy{} }

// Add implements Strategy.
func (b *BFSStrategy) Add(s *State) { b.states = append(b.states, s) }

// Select implements Strategy.
func (b *BFSStrategy) Select() *State {
	if len(b.states) == 0 {
		return nil
	}
	s := b.states[0]
	b.states = b.states[1:]
	return s
}

// Len implements Strategy.
func (b *BFSStrategy) Len() int { return len(b.states) }
