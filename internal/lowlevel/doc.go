// Package lowlevel implements the concolic low-level engine that stands in
// for S2E in this reproduction: the Machine (per-run concolic state), the
// Engine (exploration loop, state queue, virtual clock) and the Strategy
// interface the CUPA heuristics plug into.
//
// # Concurrency model
//
// An Engine and everything it owns — its Machine instances, Strategy,
// seeded *rand.Rand and *solver.Solver — are confined to a single goroutine.
// None of these types are safe for concurrent use, and they do not need to
// be: parallelism in this system happens one session per worker at the
// harness layer (internal/experiments, chef.RunPortfolio), where each
// session builds its own Engine from its own seed. The package keeps no
// mutable package-level state (the only package vars are immutable sentinel
// errors), so any number of engines may run on different goroutines without
// synchronization.
//
// The one deliberately shared component is the solver's counterexample
// cache: passing a *solver.QueryCache through Options.SolverOptions.Cache
// lets concurrent engines reuse each other's query results. The cache is
// internally sharded and mutex-guarded; see solver.QueryCache for the
// determinism trade-off.
//
// Determinism: given a fixed seed, step limit and program, an engine's
// exploration — fork order, state selection, virtual clock, generated
// inputs — is a pure function of its inputs. This is what makes the
// experiment grid embarrassingly parallel with byte-identical output.
package lowlevel
