package lowlevel

import (
	"errors"
	"fmt"
	"sort"

	"chef/internal/solver"
	"chef/internal/symexpr"
)

// LLPC is a low-level program counter: the unique identifier of a branch (or
// concretization) site inside the interpreter implementation. It corresponds
// to an x86 instruction address under S2E.
type LLPC uint64

// Sentinel panics used for non-local exits of a run. They never escape the
// engine.
var (
	errStepLimit   = errors.New("lowlevel: per-run step limit exceeded")
	errAssumeFail  = errors.New("lowlevel: assumption violated on concrete path")
	errEndSymbolic = errors.New("lowlevel: state terminated via end_symbolic")
)

// pcNode is a persistent path-condition list node so forked states share
// prefixes structurally.
type pcNode struct {
	parent *pcNode
	c      *symexpr.Expr
	depth  int
}

func (n *pcNode) slice() []*symexpr.Expr {
	if n == nil {
		return nil
	}
	out := make([]*symexpr.Expr, n.depth)
	for p := n; p != nil; p = p.parent {
		out[p.depth-1] = p.c
	}
	return out
}

// Machine is the per-run guest context handed to the instrumented
// interpreter. It evaluates branches concretely, extends the path condition,
// and registers alternate states with the engine. It also carries the
// high-level position fields that the CHEF layer maintains through log_pc,
// so that forked states can be classified by CUPA.
type Machine struct {
	eng        *Engine // nil in concrete (replay) mode
	concrete   bool    // replay mode: inputs are plain values, nothing forks
	stepLimit  int64
	assign     symexpr.Assignment // concrete values for input variables
	pc         *pcNode
	sig        uint64 // rolling low-level path signature
	steps      int64
	nDecisions int
	nBranches  int64 // branch sites visited (concrete + symbolic)

	// Expected divergence check: when a run was synthesized to flip the
	// decision at index expectIdx, the engine verifies the flip happened.
	expectIdx      int // -1 when unused
	expectLLPC     LLPC
	expectTaken    bool
	expectOriented bool // whether expectTaken is meaningful
	diverged       bool

	// High-level position, maintained by the CHEF layer via log_pc.
	DynHLPC    uint64 // occurrence of the HLPC in the unfolded HL execution tree
	StaticHLPC uint64 // the HLPC value itself
	Opcode     uint32 // opcode reported with the last log_pc
}

func sigStep(sig uint64, llpc LLPC, taken uint64) uint64 {
	h := sig ^ (uint64(llpc) * 0x9e3779b97f4a7c15)
	h ^= taken + 0x517cc1b727220a95
	h *= 0xff51afd7ed558ccd
	h ^= h >> 31
	return h
}

// Steps returns the number of virtual steps this run has executed.
func (m *Machine) Steps() int64 { return m.steps }

// Branches returns the number of low-level branch sites this run visited
// (concrete and symbolic alike). Replay tooling reports it as the LL branch
// count of a path.
func (m *Machine) Branches() int64 { return m.nBranches }

// Diverged reports whether the run failed to flip the decision it was
// synthesized to flip.
func (m *Machine) Diverged() bool { return m.diverged }

// Assignment exposes the run's concrete input values (for replay capture).
func (m *Machine) Assignment() symexpr.Assignment { return m.assign }

// PathCondition materializes the current path condition.
func (m *Machine) PathCondition() []*symexpr.Expr { return m.pc.slice() }

// PathDepth returns the number of symbolic decisions taken so far.
func (m *Machine) PathDepth() int { return m.nDecisions }

// Step advances the virtual clock by n units. Every interpreter bytecode
// dispatch and every iteration of a native loop should cost at least one
// step; exceeding the per-run limit aborts the run as a hang, implementing
// the paper's 60-second per-path timeout.
func (m *Machine) Step(n int64) {
	m.steps += n
	if m.steps > m.stepLimit {
		panic(errStepLimit)
	}
}

// NewConcreteMachine builds a machine for replaying a test case on the
// vanilla (uninstrumented-in-spirit) interpreter: inputs are purely concrete
// and branch sites never fork. The step limit still applies, so replay can
// confirm hangs.
func NewConcreteMachine(input symexpr.Assignment, stepLimit int64) *Machine {
	if stepLimit <= 0 {
		stepLimit = 1 << 20
	}
	if input == nil {
		input = symexpr.Assignment{}
	}
	return &Machine{concrete: true, stepLimit: stepLimit, assign: input, expectIdx: -1}
}

// RunConcrete executes f on the machine, converting the sentinel panics into
// a run status exactly as the engine does for symbolic runs.
func (m *Machine) RunConcrete(f func(*Machine)) (status RunStatus) {
	status = RunCompleted
	defer func() {
		switch r := recover(); r {
		case nil:
		case errStepLimit:
			status = RunHang
		case errAssumeFail:
			status = RunAssumeFailed
		case errEndSymbolic:
			status = RunEnded
		default:
			panic(r)
		}
	}()
	f(m)
	return
}

// InputByte returns the concolic value of one byte of a named symbolic
// buffer, defaulting to def on paths where the solver did not constrain it.
func (m *Machine) InputByte(buf string, idx int, def byte) SVal {
	v := symexpr.Var{Buf: buf, Idx: idx, W: symexpr.W8}
	c, ok := m.assign[v]
	if !ok {
		c = uint64(def)
		m.assign[v] = c
	}
	if m.concrete {
		return ConcreteVal(c, symexpr.W8)
	}
	return SVal{C: c & 0xff, E: symexpr.NewVar(v), W: symexpr.W8}
}

// InputInt32 returns the concolic value of a named 32-bit symbolic input.
func (m *Machine) InputInt32(name string, def int32) SVal {
	v := symexpr.Var{Buf: name, W: symexpr.W32}
	c, ok := m.assign[v]
	if !ok {
		c = uint64(uint32(def))
		m.assign[v] = c
	}
	if m.concrete {
		return ConcreteVal(c, symexpr.W32)
	}
	return SVal{C: c & 0xffffffff, E: symexpr.NewVar(v), W: symexpr.W32}
}

// Branch records a conditional branch at site llpc and returns the concrete
// decision. Symbolic conditions extend the path condition and register the
// alternate decision as a pending state with the engine; concrete conditions
// are free.
func (m *Machine) Branch(llpc LLPC, cond SVal) bool {
	if cond.W != symexpr.W1 {
		panic(fmt.Sprintf("lowlevel: Branch condition width %d, want 1", cond.W))
	}
	m.Step(1)
	m.nBranches++
	taken := cond.C != 0
	if !cond.IsSymbolic() {
		return taken
	}
	e := cond.Expr()
	var here, alt *symexpr.Expr
	if taken {
		here, alt = e, symexpr.Not(e)
	} else {
		here, alt = symexpr.Not(e), e
	}
	altSig := sigStep(m.sig, llpc, b2u(!taken))
	m.eng.registerAlternate(m, llpc, alt, altSig, !taken, true)
	m.pc = &pcNode{parent: m.pc, c: here, depth: depthOf(m.pc) + 1}
	if m.expectIdx >= 0 && m.nDecisions == m.expectIdx {
		if llpc != m.expectLLPC || (m.expectOriented && taken != m.expectTaken) {
			m.diverged = true
		}
		m.expectIdx = -1
	}
	m.nDecisions++
	m.sig = sigStep(m.sig, llpc, b2u(taken))
	m.eng.markVisited(m.sig)
	return taken
}

func depthOf(n *pcNode) int {
	if n == nil {
		return 0
	}
	return n.depth
}

// ConcretizeFork pins a symbolic value to its concrete interpretation and
// forks one pending state that excludes every value observed at this dynamic
// site, enumerating the feasible domain across runs. This models strategy
// (a) of the paper's symbolic-pointer discussion: fork the state for each
// possible concrete value.
func (m *Machine) ConcretizeFork(llpc LLPC, v SVal) uint64 {
	m.Step(1)
	if !v.IsSymbolic() {
		return v.C
	}
	key := concretizeKey{m.sig, llpc}
	seen := m.eng.seenValues[key]
	if seen == nil {
		seen = map[uint64]bool{}
		m.eng.seenValues[key] = seen
	}
	seen[v.C] = true
	// Alternate: all previously seen values excluded. The exclusions are
	// conjoined in sorted value order — Go map iteration order would build
	// structurally different (though logically equivalent) constraints from
	// run to run, breaking the determinism the parallel harness depends on.
	vals := make([]uint64, 0, len(seen))
	for sv := range seen {
		vals = append(vals, sv)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	alt := symexpr.True
	for _, sv := range vals {
		alt = symexpr.BoolAnd(alt, symexpr.Ne(v.Expr(), symexpr.Const(sv, v.W)))
	}
	altSig := sigStep(m.sig, llpc, ^v.C)
	m.eng.registerAlternate(m, llpc, alt, altSig, false, false)
	here := symexpr.Eq(v.Expr(), symexpr.Const(v.C, v.W))
	m.pc = &pcNode{parent: m.pc, c: here, depth: depthOf(m.pc) + 1}
	m.nDecisions++
	m.sig = sigStep(m.sig, llpc, v.C)
	m.eng.markVisited(m.sig)
	return v.C
}

// ConcretizeSilent pins a symbolic value to its concrete interpretation
// without forking alternates — the `concretize` API call of Table 1, which
// trades completeness for tractability.
func (m *Machine) ConcretizeSilent(v SVal) uint64 {
	m.Step(1)
	if !v.IsSymbolic() {
		return v.C
	}
	here := symexpr.Eq(v.Expr(), symexpr.Const(v.C, v.W))
	m.pc = &pcNode{parent: m.pc, c: here, depth: depthOf(m.pc) + 1}
	return v.C
}

// Assume constrains the path with cond. When the current concrete input
// violates the assumption, the run ends without producing a test case, but a
// pending state satisfying the assumption is registered so exploration
// continues behind the assumption.
func (m *Machine) Assume(llpc LLPC, cond SVal) {
	m.Step(1)
	if !cond.IsSymbolic() {
		if cond.C == 0 {
			panic(errAssumeFail)
		}
		return
	}
	e := cond.Expr()
	if cond.C == 0 {
		altSig := sigStep(m.sig, llpc, 1)
		m.eng.registerAlternate(m, llpc, e, altSig, true, false)
		panic(errAssumeFail)
	}
	m.pc = &pcNode{parent: m.pc, c: e, depth: depthOf(m.pc) + 1}
	m.sig = sigStep(m.sig, llpc, 1)
	m.eng.markVisited(m.sig)
}

// UpperBound returns a concrete upper bound for v on the current path,
// implementing the upper_bound API call used by symbolic-execution-aware
// allocators (Fig. 6 of the paper). The value itself stays symbolic.
func (m *Machine) UpperBound(v SVal) uint64 {
	if !v.IsSymbolic() || m.eng == nil {
		return v.C
	}
	before := m.eng.solver.Stats().Propagations
	max, ok := m.eng.solver.Maximize(v.Expr(), solver.Query{PC: m.pc.slice(), Base: m.assign})
	m.eng.chargeSolver(before)
	if !ok {
		return v.C
	}
	return max
}

// EndSymbolic terminates the current state, as the end_symbolic API call.
func (m *Machine) EndSymbolic() { panic(errEndSymbolic) }
