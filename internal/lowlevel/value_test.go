package lowlevel

import (
	"math/rand"
	"testing"

	"chef/internal/symexpr"
)

// TestConcolicInvariant checks the engine's central invariant: for every
// concolic operation, evaluating the symbolic expression under the input
// assignment yields exactly the concrete value the operation computed. A
// violation here is precisely the class of bug that made int()'s original
// sign handling unsound.
func TestConcolicInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	env := symexpr.Assignment{}
	mkSym := func(w symexpr.Width, idx int) SVal {
		v := symexpr.Var{Buf: "z", Idx: idx, W: w}
		c := r.Uint64() & w.Mask()
		env[v] = c
		return SVal{C: c, E: symexpr.NewVar(v), W: w}
	}
	check := func(name string, v SVal) {
		t.Helper()
		if !v.IsSymbolic() {
			return
		}
		if got := symexpr.Eval(v.E, env); got != v.C {
			t.Fatalf("%s: concrete %d but Eval(E) = %d", name, v.C, got)
		}
	}
	binOps := map[string]func(a, b SVal) SVal{
		"add": AddV, "sub": SubV, "mul": MulV, "udiv": UDivV, "urem": URemV,
		"and": AndV, "or": OrV, "xor": XorV, "shl": ShlV, "lshr": LShrV,
		"eq": EqV, "ne": NeV, "ult": UltV, "ule": UleV, "slt": SltV, "sle": SleV,
	}
	widths := []symexpr.Width{symexpr.W8, symexpr.W32, symexpr.W64}
	for trial := 0; trial < 300; trial++ {
		w := widths[r.Intn(len(widths))]
		a := mkSym(w, 2*trial)
		b := mkSym(w, 2*trial+1)
		if r.Intn(3) == 0 {
			b = ConcreteVal(r.Uint64()&w.Mask(), w)
		}
		for name, op := range binOps {
			check(name, op(a, b))
		}
		check("not", NotV(a))
		check("neg", NegV(a))
		check("zext", ZExtV(a, symexpr.W64))
		check("sext", SExtV(a, symexpr.W64))
		check("trunc", TruncV(a, symexpr.W8))
		b1 := EqV(a, b)
		b2 := NeV(a, b)
		check("booland", BoolAndV(b1, b2))
		check("boolor", BoolOrV(b1, b2))
	}
}

func TestSValAccessors(t *testing.T) {
	v := ConcreteVal(0xFFFF_FFFF_FFFF_FFFB, symexpr.W64) // -5
	if v.Int() != -5 {
		t.Errorf("Int() = %d, want -5", v.Int())
	}
	if ConcreteBool(true).C != 1 || ConcreteBool(false).C != 0 {
		t.Error("ConcreteBool values wrong")
	}
	if !ConcreteBool(true).Bool() || ConcreteBool(false).Bool() {
		t.Error("Bool() wrong")
	}
	if v.String() == "" {
		t.Error("String() empty")
	}
	sym := SVal{C: 3, E: symexpr.NewVar(symexpr.Var{Buf: "s", W: symexpr.W8}), W: symexpr.W8}
	if sym.String() == "" || !sym.IsSymbolic() {
		t.Error("symbolic String()/IsSymbolic wrong")
	}
	// Expr() materializes constants for concrete values.
	if !v.Expr().IsConst() || v.Expr().ConstVal() != v.C {
		t.Error("Expr() of concrete value wrong")
	}
}

func TestMachineIntrospection(t *testing.T) {
	prog := func(m *Machine) {
		x := m.InputInt32("n", 7)
		if x.C != 7 {
			t.Errorf("default int = %d, want 7", x.C)
		}
		m.Branch(1, SltV(x, ConcreteVal(100, symexpr.W32)))
		if m.PathDepth() != 1 {
			t.Errorf("path depth = %d", m.PathDepth())
		}
		if m.Steps() == 0 {
			t.Error("steps not counted")
		}
		if m.Diverged() {
			t.Error("spurious divergence")
		}
	}
	e := NewEngine(prog, NewDFSStrategy(), Options{Seed: 77})
	e.RunInitial()
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	st := NewDFSStrategy()
	_ = st
	if e.Rand() == nil {
		t.Error("Rand() nil")
	}
}

func TestStatePathConditionExposed(t *testing.T) {
	var captured *State
	prog := func(m *Machine) {
		x := m.InputByte("b", 0, 0)
		m.Branch(1, UltV(x, ConcreteVal(9, symexpr.W8)))
	}
	e := NewEngine(prog, NewDFSStrategy(), Options{Seed: 78})
	e.OnFork = func(s *State) { captured = s }
	e.RunInitial()
	if captured == nil {
		t.Fatal("no fork captured")
	}
	pc := captured.PathCondition()
	if len(pc) != 1 {
		t.Fatalf("pc = %v", pc)
	}
	// The alternate's condition must contradict the taken side (x < 9 with
	// default 0 was taken, so the alternate is NOT(x < 9)).
	if symexpr.EvalBool(pc[0], symexpr.Assignment{{Buf: "b", W: symexpr.W8}: 0}) {
		t.Error("alternate pc should exclude the original input")
	}
}

func TestRunStatusStrings(t *testing.T) {
	for st, want := range map[RunStatus]string{
		RunCompleted: "completed", RunHang: "hang",
		RunAssumeFailed: "assume-failed", RunEnded: "ended",
	} {
		if st.String() != want {
			t.Errorf("%v.String() = %q", st, st.String())
		}
	}
}
