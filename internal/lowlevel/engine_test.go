package lowlevel

import (
	"math/rand"
	"testing"

	"chef/internal/symexpr"
)

// exploreAll drives the engine until no pending states remain or maxRuns is
// hit, returning the number of executed runs.
func exploreAll(e *Engine, maxRuns int) int {
	runs := 0
	e.RunInitial()
	runs++
	for runs < maxRuns {
		info, more := e.SelectAndRun()
		if !more {
			break
		}
		if info != nil {
			runs++
		}
	}
	return runs
}

func TestBranchEnumeratesBothSides(t *testing.T) {
	var outcomes = map[bool]int{}
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		big := m.Branch(1, UltV(ConcreteVal(10, symexpr.W8), x))
		outcomes[big]++
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(1))), Options{Seed: 1})
	runs := exploreAll(e, 100)
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
	if outcomes[true] != 1 || outcomes[false] != 1 {
		t.Fatalf("outcomes = %v, want one of each", outcomes)
	}
}

func TestNestedBranchesEnumerateAllPaths(t *testing.T) {
	// Three sequential symbolic branches => 8 paths.
	paths := map[[3]bool]int{}
	prog := func(m *Machine) {
		var key [3]bool
		for i := 0; i < 3; i++ {
			b := m.InputByte("in", i, 0)
			key[i] = m.Branch(LLPC(10+i), UltV(ConcreteVal(100, symexpr.W8), b))
		}
		paths[key]++
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(2))), Options{Seed: 2})
	runs := exploreAll(e, 100)
	if runs != 8 {
		t.Fatalf("runs = %d, want 8", runs)
	}
	if len(paths) != 8 {
		t.Fatalf("distinct paths = %d, want 8", len(paths))
	}
	for k, n := range paths {
		if n != 1 {
			t.Fatalf("path %v executed %d times, want 1 (dedup failure)", k, n)
		}
	}
}

func TestInfeasiblePathsDiscarded(t *testing.T) {
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		if m.Branch(1, UltV(x, ConcreteVal(10, symexpr.W8))) {
			// x < 10; the nested x > 200 is infeasible.
			m.Branch(2, UltV(ConcreteVal(200, symexpr.W8), x))
		}
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(3))), Options{Seed: 3})
	exploreAll(e, 100)
	if e.Stats().UnsatStates == 0 {
		t.Fatalf("expected at least one unsat state, stats %+v", e.Stats())
	}
}

func TestConcreteBranchesDoNotFork(t *testing.T) {
	prog := func(m *Machine) {
		v := ConcreteVal(5, symexpr.W8)
		m.Branch(1, UltV(v, ConcreteVal(10, symexpr.W8)))
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(4))), Options{Seed: 4})
	runs := exploreAll(e, 100)
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
	if e.Stats().Forks != 0 {
		t.Fatalf("forks = %d, want 0", e.Stats().Forks)
	}
}

func TestHangDetection(t *testing.T) {
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		if m.Branch(1, EqV(x, ConcreteVal(7, symexpr.W8))) {
			for { // interpreter-level infinite loop
				m.Step(1)
			}
		}
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(5))), Options{Seed: 5, StepLimit: 1000})
	exploreAll(e, 100)
	st := e.Stats()
	if st.Hangs != 1 {
		t.Fatalf("hangs = %d, want 1 (stats %+v)", st.Hangs, st)
	}
	// The hanging run must have charged its full step cap to the clock.
	if e.Clock() < 1000 {
		t.Fatalf("clock = %d, want >= step limit", e.Clock())
	}
}

func TestAssumeRestrictsExploration(t *testing.T) {
	seen := map[uint64]bool{}
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		m.Assume(1, UltV(x, ConcreteVal(3, symexpr.W8)))
		m.Branch(2, EqV(x, ConcreteVal(1, symexpr.W8)))
		seen[m.Assignment()[symexpr.Var{Buf: "in", W: symexpr.W8}]] = true
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(6))), Options{Seed: 6})
	exploreAll(e, 100)
	for v := range seen {
		if v >= 3 {
			t.Fatalf("assumption violated: explored with in=%d", v)
		}
	}
	if !seen[1] {
		t.Fatal("expected to cover the x==1 path")
	}
}

func TestAssumeFailedOnInitialDefaults(t *testing.T) {
	// Defaults (zero) violate the assumption; the engine must recover by
	// solving the assumption and exploring behind it.
	reached := 0
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		m.Assume(1, UltV(ConcreteVal(100, symexpr.W8), x)) // x > 100
		reached++
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(7))), Options{Seed: 7})
	exploreAll(e, 100)
	if reached == 0 {
		t.Fatal("never reached code behind the assumption")
	}
	if e.Stats().AssumeFails != 1 {
		t.Fatalf("assume fails = %d, want 1", e.Stats().AssumeFails)
	}
}

func TestConcretizeForkEnumeratesDomain(t *testing.T) {
	// A value with 4 feasible concrete values (2 bits) must yield 4 runs.
	seen := map[uint64]bool{}
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		two := AndV(x, ConcreteVal(3, symexpr.W8))
		v := m.ConcretizeFork(1, two)
		seen[v] = true
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(8))), Options{Seed: 8})
	exploreAll(e, 100)
	if len(seen) != 4 {
		t.Fatalf("concretize-fork enumerated %d values (%v), want 4", len(seen), seen)
	}
}

func TestConcretizeSilentDoesNotFork(t *testing.T) {
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		m.ConcretizeSilent(x)
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(9))), Options{Seed: 9})
	runs := exploreAll(e, 100)
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
}

func TestUpperBound(t *testing.T) {
	var got uint64
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		if m.Branch(1, UltV(x, ConcreteVal(50, symexpr.W8))) {
			got = m.UpperBound(x)
			m.EndSymbolic()
		}
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(10))), Options{Seed: 10})
	exploreAll(e, 100)
	if got != 49 {
		t.Fatalf("upper bound = %d, want 49", got)
	}
}

func TestEndSymbolicTerminatesState(t *testing.T) {
	after := 0
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		if m.Branch(1, EqV(x, ConcreteVal(1, symexpr.W8))) {
			m.EndSymbolic()
		}
		after++
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(11))), Options{Seed: 11})
	runs := exploreAll(e, 100)
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
	if after != 1 {
		t.Fatalf("code after EndSymbolic ran %d times, want 1", after)
	}
}

func TestPathConditionConsistency(t *testing.T) {
	// Property: on every executed path, the collected path condition must be
	// satisfied by the concrete inputs of the run.
	prog := func(m *Machine) {
		a := m.InputByte("a", 0, 0)
		b := m.InputByte("b", 0, 0)
		m.Branch(1, UltV(a, b))
		m.Branch(2, EqV(AndV(a, ConcreteVal(1, symexpr.W8)), ConcreteVal(1, symexpr.W8)))
		for _, c := range m.PathCondition() {
			if !symexpr.EvalBool(c, m.Assignment()) {
				t.Fatalf("path condition %v not satisfied by %v", c, m.Assignment())
			}
		}
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(12))), Options{Seed: 12})
	exploreAll(e, 100)
}

func TestForkWeights(t *testing.T) {
	// Five consecutive forks at one LLPC: weights must be p^4..p^0.
	var states []*State
	prog := func(m *Machine) {
		x := m.InputByte("in", 0, 0)
		// Simulated input-dependent loop: same branch site five times.
		for i := 0; i < 5; i++ {
			if m.Branch(42, EqV(x, ConcreteVal(uint64(100+i), symexpr.W8))) {
				return
			}
		}
	}
	e := NewEngine(prog, NewDFSStrategy(), Options{Seed: 13})
	e.OnFork = func(s *State) { states = append(states, s) }
	e.RunInitial()
	if len(states) != 5 {
		t.Fatalf("forked %d states, want 5", len(states))
	}
	p := 0.75
	want := []float64{p * p * p * p, p * p * p, p * p, p, 1}
	for i, s := range states {
		if diff := s.ForkWeight - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("state %d weight = %g, want %g", i, s.ForkWeight, want[i])
		}
	}
}

func TestStrategiesBasics(t *testing.T) {
	mk := func() []*State {
		return []*State{{Depth: 1}, {Depth: 2}, {Depth: 3}}
	}
	d := NewDFSStrategy()
	for _, s := range mk() {
		d.Add(s)
	}
	if got := d.Select().Depth; got != 3 {
		t.Errorf("DFS first = %d, want 3", got)
	}
	b := NewBFSStrategy()
	for _, s := range mk() {
		b.Add(s)
	}
	if got := b.Select().Depth; got != 1 {
		t.Errorf("BFS first = %d, want 1", got)
	}
	r := NewRandomStrategy(rand.New(rand.NewSource(1)))
	for _, s := range mk() {
		r.Add(s)
	}
	if r.Len() != 3 {
		t.Errorf("random len = %d, want 3", r.Len())
	}
	seen := 0
	for r.Len() > 0 {
		if r.Select() != nil {
			seen++
		}
	}
	if seen != 3 {
		t.Errorf("random drained %d, want 3", seen)
	}
	if r.Select() != nil || d.Select() == nil || b.Select() == nil {
		// d and b still hold two states each.
		t.Error("strategy emptiness behavior wrong")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		prog := func(m *Machine) {
			x := m.InputByte("in", 0, 0)
			y := m.InputByte("in", 1, 0)
			if m.Branch(1, UltV(x, y)) {
				m.Branch(2, EqV(x, ConcreteVal(9, symexpr.W8)))
			} else {
				m.Branch(3, EqV(y, ConcreteVal(3, symexpr.W8)))
			}
		}
		e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(99))), Options{Seed: 99})
		exploreAll(e, 100)
		return e.Clock(), e.Stats().Runs
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}

func TestSValOps(t *testing.T) {
	x := ConcreteVal(200, symexpr.W8)
	y := ConcreteVal(100, symexpr.W8)
	if got := AddV(x, y).C; got != 44 {
		t.Errorf("AddV wrap = %d, want 44", got)
	}
	if got := SubV(y, x).C; got != 156 {
		t.Errorf("SubV wrap = %d, want 156", got)
	}
	if !UltV(y, x).Bool() {
		t.Error("UltV(100,200) should be true")
	}
	if SltV(ConcreteVal(0x80, symexpr.W8), ConcreteVal(0, symexpr.W8)).C != 1 {
		t.Error("SltV(-128, 0) should be true")
	}
	if got := UDivV(x, ConcreteVal(0, symexpr.W8)).C; got != 255 {
		t.Errorf("UDivV by zero = %d, want 255", got)
	}
	if got := ZExtV(ConcreteVal(0xff, symexpr.W8), symexpr.W32).C; got != 0xff {
		t.Errorf("ZExtV = %x", got)
	}
	if got := SExtV(ConcreteVal(0xff, symexpr.W8), symexpr.W32).C; got != 0xffffffff {
		t.Errorf("SExtV = %x", got)
	}
	if got := TruncV(ConcreteVal(0x1234, symexpr.W32), symexpr.W8).C; got != 0x34 {
		t.Errorf("TruncV = %x", got)
	}
	sym := SVal{C: 5, E: symexpr.NewVar(symexpr.Var{Buf: "s", W: symexpr.W8}), W: symexpr.W8}
	if !AddV(sym, y).IsSymbolic() {
		t.Error("symbolic + concrete must stay symbolic")
	}
	if AddV(x, y).IsSymbolic() {
		t.Error("concrete + concrete must stay concrete")
	}
}

// TestRandomBranchProgramsEnumerateAllPaths is the engine's core
// completeness property: programs made of n independent symbolic branches
// must yield exactly 2^n explored low-level paths, each exactly once,
// regardless of strategy.
func TestRandomBranchProgramsEnumerateAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(4)
		thresholds := make([]uint64, n)
		for i := range thresholds {
			thresholds[i] = uint64(1 + rng.Intn(254))
		}
		paths := map[uint64]int{}
		prog := func(m *Machine) {
			var key uint64
			for i := 0; i < n; i++ {
				b := m.InputByte("in", i, 0)
				if m.Branch(LLPC(100+i), UltV(b, ConcreteVal(thresholds[i], symexpr.W8))) {
					key |= 1 << uint(i)
				}
			}
			paths[key]++
		}
		var strat Strategy
		switch trial % 3 {
		case 0:
			strat = NewRandomStrategy(rand.New(rand.NewSource(int64(trial))))
		case 1:
			strat = NewDFSStrategy()
		default:
			strat = NewBFSStrategy()
		}
		e := NewEngine(prog, strat, Options{Seed: int64(trial)})
		exploreAll(e, 200)
		want := 1 << uint(n)
		if len(paths) != want {
			t.Fatalf("trial %d (n=%d, strat %d): %d distinct paths, want %d",
				trial, n, trial%3, len(paths), want)
		}
		for k, c := range paths {
			if c != 1 {
				t.Fatalf("trial %d: path %b executed %d times", trial, k, c)
			}
		}
	}
}

// TestDependentBranchesPruneInfeasible: with dependent conditions, the engine
// must never execute an infeasible combination.
func TestDependentBranchesPruneInfeasible(t *testing.T) {
	seen := map[[2]bool]bool{}
	prog := func(m *Machine) {
		x := m.InputByte("x", 0, 0)
		lt10 := m.Branch(1, UltV(x, ConcreteVal(10, symexpr.W8)))
		lt5 := m.Branch(2, UltV(x, ConcreteVal(5, symexpr.W8)))
		seen[[2]bool{lt10, lt5}] = true
	}
	e := NewEngine(prog, NewRandomStrategy(rand.New(rand.NewSource(9))), Options{Seed: 9})
	exploreAll(e, 100)
	if seen[[2]bool{false, true}] {
		t.Fatal("explored infeasible combination x>=10 && x<5")
	}
	for _, want := range [][2]bool{{true, true}, {true, false}, {false, false}} {
		if !seen[want] {
			t.Errorf("missing feasible combination %v", want)
		}
	}
	if e.Stats().UnsatStates == 0 {
		t.Error("expected the infeasible alternate to be pruned via the solver")
	}
}

// TestVirtualClockMonotonicAndCharged: the clock must be monotone and charge
// both execution steps and solver work.
func TestVirtualClockMonotonicAndCharged(t *testing.T) {
	prog := func(m *Machine) {
		x := m.InputByte("x", 0, 0)
		m.Branch(1, EqV(x, ConcreteVal(42, symexpr.W8)))
		m.Step(100)
	}
	e := NewEngine(prog, NewBFSStrategy(), Options{Seed: 1})
	prev := e.Clock()
	e.RunInitial()
	if e.Clock() <= prev {
		t.Fatal("clock did not advance on initial run")
	}
	prev = e.Clock()
	e.SelectAndRun()
	if e.Clock() <= prev {
		t.Fatal("clock did not advance on alternate run")
	}
	if e.Solver().Stats().Propagations == 0 {
		t.Fatal("solver work expected")
	}
}
