package lowlevel

import (
	"math/rand"
	"testing"

	"chef/internal/symexpr"
)

// recordingRouter owns only signatures below the split point and records
// everything routed away.
type recordingRouter struct {
	split     uint64
	handedOff []*State
	visited   []uint64
}

func (r *recordingRouter) Owns(sig uint64) bool   { return sig < r.split }
func (r *recordingRouter) HandOff(st *State)      { r.handedOff = append(r.handedOff, st) }
func (r *recordingRouter) NoteVisited(sig uint64) { r.visited = append(r.visited, sig) }

// nestedProg forks at three nested branch sites, producing a spread of
// decision signatures on both sides of any split point.
func nestedProg(m *Machine) {
	x := m.InputByte("x", 0, 0)
	y := m.InputByte("y", 1, 0)
	if m.Branch(1, UltV(ConcreteVal(10, symexpr.W8), x)) {
		m.Branch(2, UltV(ConcreteVal(20, symexpr.W8), y))
	} else {
		m.Branch(3, EqV(y, ConcreteVal(7, symexpr.W8)))
	}
}

// TestRouterSplitsWork: with a router owning half the signature space,
// every registered alternate either lands in the local queue (owned) or
// in the router (foreign), never both; trail marks route the same way;
// and Stats.HandedOff counts exactly the routed states.
func TestRouterSplitsWork(t *testing.T) {
	router := &recordingRouter{split: 1 << 63}
	e := NewEngine(nestedProg, NewDFSStrategy(), Options{Seed: 1, Router: router})
	e.RunInitial()
	for {
		info, more := e.SelectAndRun()
		if !more {
			break
		}
		_ = info
	}
	st := e.Stats()
	if st.HandedOff != int64(len(router.handedOff)) {
		t.Fatalf("HandedOff=%d but router received %d", st.HandedOff, len(router.handedOff))
	}
	if st.Forks == st.HandedOff {
		t.Fatal("every fork was routed away; split point not exercised on both sides")
	}
	if len(router.handedOff) == 0 {
		t.Fatal("no fork crossed the split; the routing path is untested")
	}
	for _, s := range router.handedOff {
		if router.Owns(s.Sig) {
			t.Fatalf("handed-off state %x is locally owned", s.Sig)
		}
	}
	for _, sig := range router.visited {
		if router.Owns(sig) {
			t.Fatalf("routed trail note %x is locally owned", sig)
		}
	}
}

// TestInjectStateDedups: injecting the same signature twice queues once
// and counts a duplicate, mirroring the local-fork dedup.
func TestInjectStateDedups(t *testing.T) {
	e := NewEngine(nestedProg, NewDFSStrategy(), Options{Seed: 2})
	st := &State{Sig: 0xdead, pc: &pcNode{}, base: symexpr.Assignment{}}
	if !e.InjectState(st) {
		t.Fatal("first injection must queue")
	}
	if e.InjectState(st) {
		t.Fatal("second injection must dedup")
	}
	if got := e.Stats().DupStates; got != 1 {
		t.Fatalf("DupStates = %d, want 1", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// A pre-noted trail signature suppresses a later state injection.
	e.InjectVisited(0xbeef)
	if e.InjectState(&State{Sig: 0xbeef, pc: &pcNode{}, base: symexpr.Assignment{}}) {
		t.Fatal("injection after a visited note must dedup")
	}
}

// TestSnapshotMatchesAccessors: Snapshot is the one-value view of the
// accessor surface, taken atomically with respect to engine progress.
func TestSnapshotMatchesAccessors(t *testing.T) {
	e := NewEngine(nestedProg, NewRandomStrategy(rand.New(rand.NewSource(3))), Options{Seed: 3})
	e.RunInitial()
	snap := e.Snapshot()
	if snap.Stats != e.Stats() || snap.Clock != e.Clock() || snap.Pending != e.Pending() {
		t.Fatalf("snapshot %+v disagrees with accessors (stats=%+v clock=%d pending=%d)",
			snap, e.Stats(), e.Clock(), e.Pending())
	}
}

// TestRouterlessEngineUnchanged: without a router every fork stays local
// and HandedOff stays zero — the sharding hooks are inert by default.
func TestRouterlessEngineUnchanged(t *testing.T) {
	e := NewEngine(nestedProg, NewDFSStrategy(), Options{Seed: 4})
	e.RunInitial()
	for {
		if _, more := e.SelectAndRun(); !more {
			break
		}
	}
	if st := e.Stats(); st.HandedOff != 0 {
		t.Fatalf("HandedOff = %d without a router", st.HandedOff)
	}
}
