package lowlevel

import (
	"testing"

	"chef/internal/faults"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// threeBranchProg returns a program with three independent symbolic branches
// (8 paths) that records every executed path.
func threeBranchProg(paths map[[3]bool]int) Program {
	return func(m *Machine) {
		var key [3]bool
		for i := 0; i < 3; i++ {
			b := m.InputByte("in", i, 0)
			key[i] = m.Branch(LLPC(10+i), UltV(ConcreteVal(100, symexpr.W8), b))
		}
		paths[key]++
	}
}

func mustPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Regression for the silent-path-loss bug: a transient Unknown verdict used
// to drop the state while its signature stayed in visited, losing the path
// forever. With re-queueing, the retry solves (the injected fault fires once
// and Unknowns are never cached) and coverage stays complete.
func TestUnknownStateRequeuedAndRecovered(t *testing.T) {
	paths := map[[3]bool]int{}
	plan := mustPlan(t, "seed=1;solver.unknown:n=1")
	e := NewEngine(threeBranchProg(paths), NewBFSStrategy(), Options{
		Seed:          1,
		SolverOptions: solver.Options{Faults: plan.Injector("eng")},
	})
	exploreAll(e, 100)
	if len(paths) != 8 {
		t.Fatalf("distinct paths = %d, want 8 (Unknown state lost)", len(paths))
	}
	st := e.Stats()
	if st.UnknownStates != 1 || st.RequeuedStates != 1 || st.AbandonedStates != 0 {
		t.Fatalf("stats = %+v, want 1 Unknown re-queued, none abandoned", st)
	}
}

// When the retry budget is exhausted the state is abandoned, but its visited
// signature must be released so a later fork at the same site re-registers
// the path. With three independent branches, the run that flips decision 1
// re-forks the abandoned flip of decision 0, so full coverage is recovered
// even with re-queueing disabled.
func TestAbandonedStateReleasesVisitedSig(t *testing.T) {
	paths := map[[3]bool]int{}
	plan := mustPlan(t, "seed=1;solver.unknown:n=1")
	e := NewEngine(threeBranchProg(paths), NewBFSStrategy(), Options{
		Seed:           1,
		UnknownRetries: -1, // abandon on the first Unknown
		SolverOptions:  solver.Options{Faults: plan.Injector("eng")},
	})
	exploreAll(e, 100)
	st := e.Stats()
	if st.AbandonedStates != 1 || st.RequeuedStates != 0 || st.UnknownStates != 1 {
		t.Fatalf("stats = %+v, want exactly 1 abandoned state", st)
	}
	if len(paths) != 8 {
		t.Fatalf("distinct paths = %d, want 8 (abandoned sig not re-registered)", len(paths))
	}
}

// The paper's scenario: the solver budget is exhausted mid-session (every
// query returns a real Unknown), then recovers. Re-queued states must retry
// and reach full coverage once the budget is back — the regression the issue
// names verbatim.
func TestBudgetStarvedRunRecoversAfterBudgetRestore(t *testing.T) {
	paths := map[[3]bool]int{}
	e := NewEngine(threeBranchProg(paths), NewBFSStrategy(), Options{
		Seed:          1,
		SolverOptions: solver.Options{PropBudget: 1},
	})
	e.RunInitial()
	if _, more := e.SelectAndRun(); !more {
		t.Fatal("no pending states after the initial run")
	}
	st := e.Stats()
	if st.UnknownStates != 1 || st.RequeuedStates != 1 {
		t.Fatalf("stats = %+v, want the starved query Unknown and re-queued", st)
	}
	e.Solver().Attach(solver.Instruments{PropBudget: -1}) // budget recovers
	exploreAll(e, 100)
	if len(paths) != 8 {
		t.Fatalf("distinct paths = %d, want 8 after budget recovery", len(paths))
	}
	st = e.Stats()
	if st.AbandonedStates != 0 {
		t.Fatalf("stats = %+v, want no abandoned states", st)
	}
}

// Under sustained starvation the queue must drain (retries are bounded), the
// engine must not panic, and the accounting invariant
// UnknownStates == RequeuedStates + AbandonedStates must hold.
func TestSustainedStarvationTerminates(t *testing.T) {
	paths := map[[3]bool]int{}
	plan := mustPlan(t, "seed=3;solver.unknown:p=1")
	e := NewEngine(threeBranchProg(paths), NewBFSStrategy(), Options{
		Seed:          3,
		SolverOptions: solver.Options{Faults: plan.Injector("eng")},
	})
	exploreAll(e, 10_000)
	if e.Pending() != 0 {
		t.Fatalf("queue did not drain: %d pending", e.Pending())
	}
	st := e.Stats()
	if st.UnknownStates != st.RequeuedStates+st.AbandonedStates {
		t.Fatalf("accounting broken: %+v", st)
	}
	if st.AbandonedStates == 0 {
		t.Fatal("p=1 starvation abandoned nothing")
	}
	if len(paths) != 1 {
		t.Fatalf("distinct paths = %d, want 1 (only the initial run executes)", len(paths))
	}
}
