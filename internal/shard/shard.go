// Package shard partitions the 64-bit decision-signature space into
// prefix-range subtrees and provides the deterministic ownership and
// work-assignment machinery behind path-space sharding (docs/DESIGN.md,
// "Path-space sharding").
//
// A Range fixes the top Bits bits of a signature: every signature whose
// leading bits equal Prefix falls inside it. A set of ranges produced by
// Split (or by further SplitAt calls on a Table) is always a complete,
// non-overlapping partition of the whole uint64 space, so any signature
// maps to exactly one range — the property FuzzShardRangeSplit defends.
//
// Assignment of ranges to workers is a pure function of (seed, epoch,
// per-range loads, worker count): no wall clock, no goroutine identity.
// That keeps the schedule reproducible, and because the exploration
// semantics live entirely in the per-range state (see internal/chef's
// ShardedSession), the assignment affects only wall-clock time.
package shard

import (
	"fmt"
	"sort"
)

// MaxBits bounds the prefix depth; 2^MaxBits ranges is already far past
// any useful fan-out and keeps Lo/Hi arithmetic trivially safe.
const MaxBits = 16

// Unowned marks a range with no owning worker.
const Unowned = -1

// Range is the subtree of decision signatures whose top Bits bits equal
// Prefix. Bits == 0 is the whole space (Prefix must then be 0).
type Range struct {
	Prefix uint64
	Bits   uint8
}

// Contains reports whether sig falls inside r.
func (r Range) Contains(sig uint64) bool {
	if r.Bits == 0 {
		return true
	}
	return sig>>(64-uint(r.Bits)) == r.Prefix
}

// Lo returns the smallest signature in r.
func (r Range) Lo() uint64 {
	if r.Bits == 0 {
		return 0
	}
	return r.Prefix << (64 - uint(r.Bits))
}

// Hi returns the largest signature in r.
func (r Range) Hi() uint64 {
	if r.Bits == 0 {
		return ^uint64(0)
	}
	return r.Lo() | (^uint64(0) >> uint(r.Bits))
}

// Split halves r into its two child subtrees, low half first.
func (r Range) Split() (Range, Range) {
	b := r.Bits + 1
	return Range{Prefix: r.Prefix << 1, Bits: b},
		Range{Prefix: r.Prefix<<1 | 1, Bits: b}
}

func (r Range) String() string {
	return fmt.Sprintf("%0*b/%d", int(r.Bits), r.Prefix, r.Bits)
}

// Split returns the uniform complete partition of the signature space
// into 2^bits ranges, in ascending signature order.
func Split(bits uint8) []Range {
	if bits > MaxBits {
		panic(fmt.Sprintf("shard: %d bits > MaxBits %d", bits, MaxBits))
	}
	rs := make([]Range, 1<<bits)
	for i := range rs {
		rs[i] = Range{Prefix: uint64(i), Bits: bits}
	}
	return rs
}

// Owner returns the index of sig's range in the uniform 2^bits partition.
func Owner(sig uint64, bits uint8) int {
	if bits == 0 {
		return 0
	}
	return int(sig >> (64 - uint(bits)))
}

// Table tracks a live partition of the signature space plus the worker
// currently owning each range. It is not synchronized: the sharded
// coordinator mutates it only at epoch barriers.
type Table struct {
	ranges []Range
	owner  []int
}

// NewTable builds a table over the uniform 2^bits partition, all ranges
// unowned.
func NewTable(bits uint8) *Table {
	rs := Split(bits)
	own := make([]int, len(rs))
	for i := range own {
		own[i] = Unowned
	}
	return &Table{ranges: rs, owner: own}
}

// Len returns the number of live ranges.
func (t *Table) Len() int { return len(t.ranges) }

// Range returns live range i.
func (t *Table) Range(i int) Range { return t.ranges[i] }

// Owner returns the worker owning range i, or Unowned.
func (t *Table) Owner(i int) int { return t.owner[i] }

// IndexOf returns the index of the unique live range containing sig.
func (t *Table) IndexOf(sig uint64) int {
	// Ranges are kept sorted by Lo; the containing range is the last one
	// whose Lo <= sig.
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].Lo() > sig })
	return i - 1
}

// Claim assigns unowned range i to worker. Claiming an owned range is a
// protocol violation and errors.
func (t *Table) Claim(i, worker int) error {
	if i < 0 || i >= len(t.ranges) {
		return fmt.Errorf("shard: claim of range %d, have %d", i, len(t.ranges))
	}
	if worker < 0 {
		return fmt.Errorf("shard: claim by invalid worker %d", worker)
	}
	if t.owner[i] != Unowned {
		return fmt.Errorf("shard: double claim of range %s (owned by %d, claimed by %d)",
			t.ranges[i], t.owner[i], worker)
	}
	t.owner[i] = worker
	return nil
}

// Steal reassigns range i to worker, returning the previous owner.
// Stealing an unowned range errors (use Claim).
func (t *Table) Steal(i, worker int) (int, error) {
	if i < 0 || i >= len(t.ranges) {
		return Unowned, fmt.Errorf("shard: steal of range %d, have %d", i, len(t.ranges))
	}
	if worker < 0 {
		return Unowned, fmt.Errorf("shard: steal by invalid worker %d", worker)
	}
	prev := t.owner[i]
	if prev == Unowned {
		return Unowned, fmt.Errorf("shard: steal of unowned range %s", t.ranges[i])
	}
	t.owner[i] = worker
	return prev, nil
}

// Release marks range i unowned.
func (t *Table) Release(i int) {
	t.owner[i] = Unowned
}

// SplitAt replaces live range i with its two children, both inheriting
// i's owner. The partition stays complete by construction.
func (t *Table) SplitAt(i int) error {
	if i < 0 || i >= len(t.ranges) {
		return fmt.Errorf("shard: split of range %d, have %d", i, len(t.ranges))
	}
	if t.ranges[i].Bits >= MaxBits {
		return fmt.Errorf("shard: range %s already at MaxBits", t.ranges[i])
	}
	lo, hi := t.ranges[i].Split()
	own := t.owner[i]
	t.ranges = append(t.ranges, Range{})
	copy(t.ranges[i+2:], t.ranges[i+1:])
	t.ranges[i], t.ranges[i+1] = lo, hi
	t.owner = append(t.owner, 0)
	copy(t.owner[i+2:], t.owner[i+1:])
	t.owner[i], t.owner[i+1] = own, own
	return nil
}

// Complete verifies the partition invariant: ranges are sorted, adjacent
// and together cover the whole signature space with no overlap.
func (t *Table) Complete() error {
	if len(t.ranges) == 0 {
		return fmt.Errorf("shard: empty partition")
	}
	if lo := t.ranges[0].Lo(); lo != 0 {
		return fmt.Errorf("shard: partition starts at %#x, want 0", lo)
	}
	for i := 1; i < len(t.ranges); i++ {
		prev, cur := t.ranges[i-1], t.ranges[i]
		if prev.Hi()+1 != cur.Lo() {
			return fmt.Errorf("shard: gap/overlap between %s and %s", prev, cur)
		}
	}
	if hi := t.ranges[len(t.ranges)-1].Hi(); hi != ^uint64(0) {
		return fmt.Errorf("shard: partition ends at %#x, want max", hi)
	}
	return nil
}

// mix64 is splitmix64's finalizer: a cheap, stable 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Assign deterministically distributes range indices over workers for
// one epoch. loads[i] is range i's pending-work estimate; ranges with
// load <= 0 are dead and stay unassigned. The policy is longest-
// processing-time-first: ranges in decreasing load order (ties by index)
// each go to the least-loaded worker so far, with ties among workers
// broken by a rotation derived from (seed, epoch) — the whole schedule
// is a pure function of its arguments. Each worker's list comes back in
// ascending range order (the canonical in-worker execution order).
func Assign(seed int64, epoch int, loads []int64, workers int) [][]int {
	if workers < 1 {
		workers = 1
	}
	out := make([][]int, workers)
	order := make([]int, 0, len(loads))
	for i, l := range loads {
		if l > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if loads[ia] != loads[ib] {
			return loads[ia] > loads[ib]
		}
		return ia < ib
	})
	rot := int(mix64(uint64(seed)^mix64(uint64(epoch))) % uint64(workers))
	total := make([]int64, workers)
	for _, i := range order {
		best := -1
		for p := 0; p < workers; p++ {
			w := (p + rot) % workers
			if best == -1 || total[w] < total[best] {
				best = w
			}
		}
		total[best] += loads[i]
		out[best] = append(out[best], i)
	}
	for _, l := range out {
		sort.Ints(l)
	}
	return out
}

// Moves counts, per worker, how many ranges in next were owned by a
// different worker in prev — the epoch's deterministic "steal" count.
// Ranges absent from prev (newly live) are not moves.
func Moves(prev, next [][]int) []int64 {
	prevOwner := map[int]int{}
	for w, l := range prev {
		for _, i := range l {
			prevOwner[i] = w
		}
	}
	moves := make([]int64, len(next))
	for w, l := range next {
		for _, i := range l {
			if pw, ok := prevOwner[i]; ok && pw != w {
				moves[w]++
			}
		}
	}
	return moves
}
