package shard

import (
	"encoding/binary"
	"testing"
)

// FuzzShardRangeSplit drives a Table through an arbitrary sequence of
// split/claim/steal/release operations and checks the partition
// invariants after every step: the range union stays complete (sorted,
// adjacent, covering the whole space), any fuzzed signature maps to
// exactly one live range, and ownership never double-claims.
func FuzzShardRangeSplit(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x40, 0x83, 0xc1})
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80})
	f.Add([]byte{0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41})
	f.Fuzz(func(t *testing.T, data []byte) {
		tb := NewTable(2)
		const workers = 4
		probes := []uint64{0, 1, 1 << 63, ^uint64(0)}
		for i := 0; i+1 < len(data) && i < 256; i += 2 {
			op, arg := data[i]>>6, int(data[i]&0x3f)
			idx := arg % tb.Len()
			switch op {
			case 0: // split
				if tb.Range(idx).Bits < MaxBits {
					if err := tb.SplitAt(idx); err != nil {
						t.Fatalf("split %d: %v", idx, err)
					}
				}
			case 1: // claim
				w := int(data[i+1]) % workers
				if tb.Owner(idx) == Unowned {
					if err := tb.Claim(idx, w); err != nil {
						t.Fatalf("claim %d by %d: %v", idx, w, err)
					}
				} else if err := tb.Claim(idx, w); err == nil {
					t.Fatalf("double claim of %d accepted", idx)
				}
			case 2: // steal
				w := int(data[i+1]) % workers
				if tb.Owner(idx) != Unowned {
					if _, err := tb.Steal(idx, w); err != nil {
						t.Fatalf("steal %d by %d: %v", idx, w, err)
					}
					if tb.Owner(idx) != w {
						t.Fatalf("steal %d: owner %d, want %d", idx, tb.Owner(idx), w)
					}
				}
			case 3: // release, and derive an extra probe signature
				tb.Release(idx)
				var b [8]byte
				copy(b[:], data[i:])
				probes = append(probes, binary.LittleEndian.Uint64(b[:]))
			}
			if err := tb.Complete(); err != nil {
				t.Fatalf("after op %d: %v", i/2, err)
			}
		}
		// Every probe signature lands in exactly one live range, and
		// IndexOf agrees with a linear Contains scan (no orphan, no
		// double coverage).
		for _, sig := range probes {
			hits := 0
			for i := 0; i < tb.Len(); i++ {
				if tb.Range(i).Contains(sig) {
					hits++
					if got := tb.IndexOf(sig); got != i {
						t.Fatalf("IndexOf(%#x) = %d, Contains says %d", sig, got, i)
					}
				}
			}
			if hits != 1 {
				t.Fatalf("sig %#x covered by %d ranges", sig, hits)
			}
		}
	})
}
