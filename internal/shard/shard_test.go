package shard

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestRangeContainsLoHi(t *testing.T) {
	whole := Range{}
	if !whole.Contains(0) || !whole.Contains(math.MaxUint64) {
		t.Fatalf("whole-space range must contain everything")
	}
	r := Range{Prefix: 0b1011, Bits: 4}
	if r.Lo() != 0xb000_0000_0000_0000 {
		t.Fatalf("Lo = %#x", r.Lo())
	}
	if r.Hi() != 0xbfff_ffff_ffff_ffff {
		t.Fatalf("Hi = %#x", r.Hi())
	}
	if !r.Contains(r.Lo()) || !r.Contains(r.Hi()) {
		t.Fatalf("range must contain its endpoints")
	}
	if r.Contains(r.Lo()-1) || r.Contains(r.Hi()+1) {
		t.Fatalf("range must exclude its neighbors")
	}
}

func TestSplitIsCompletePartition(t *testing.T) {
	for _, bits := range []uint8{0, 1, 4, 8} {
		rs := Split(bits)
		if len(rs) != 1<<bits {
			t.Fatalf("bits=%d: %d ranges", bits, len(rs))
		}
		for _, sig := range probeSigs() {
			n := 0
			for i, r := range rs {
				if r.Contains(sig) {
					n++
					if i != Owner(sig, bits) {
						t.Fatalf("bits=%d sig=%#x: Owner says %d, Contains says %d",
							bits, sig, Owner(sig, bits), i)
					}
				}
			}
			if n != 1 {
				t.Fatalf("bits=%d: sig %#x in %d ranges", bits, sig, n)
			}
		}
	}
}

func TestRangeSplitChildren(t *testing.T) {
	r := Range{Prefix: 0b10, Bits: 2}
	lo, hi := r.Split()
	if lo.Lo() != r.Lo() || hi.Hi() != r.Hi() || lo.Hi()+1 != hi.Lo() {
		t.Fatalf("split of %s -> %s, %s does not tile the parent", r, lo, hi)
	}
}

func TestTableClaimStealInvariants(t *testing.T) {
	tb := NewTable(2)
	if err := tb.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Claim(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.Claim(1, 1); err == nil {
		t.Fatal("double claim must error")
	}
	if _, err := tb.Steal(0, 1); err == nil {
		t.Fatal("steal of unowned range must error")
	}
	prev, err := tb.Steal(1, 1)
	if err != nil || prev != 0 {
		t.Fatalf("steal: prev=%d err=%v", prev, err)
	}
	tb.Release(1)
	if tb.Owner(1) != Unowned {
		t.Fatal("release must unown")
	}
	if err := tb.SplitAt(2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Complete(); err != nil {
		t.Fatalf("after split: %v", err)
	}
	if tb.Len() != 5 {
		t.Fatalf("len = %d", tb.Len())
	}
	for _, sig := range probeSigs() {
		i := tb.IndexOf(sig)
		if !tb.Range(i).Contains(sig) {
			t.Fatalf("IndexOf(%#x) = %d (%s), does not contain", sig, i, tb.Range(i))
		}
	}
}

func TestAssignDeterministicAndComplete(t *testing.T) {
	loads := []int64{5, 0, 3, 3, 9, 0, 1, 2}
	a := Assign(42, 3, loads, 3)
	b := Assign(42, 3, loads, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Assign not deterministic: %v vs %v", a, b)
	}
	seen := map[int]int{}
	for w, l := range a {
		for _, i := range l {
			if loads[i] <= 0 {
				t.Fatalf("dead range %d assigned to %d", i, w)
			}
			seen[i]++
		}
	}
	for i, l := range loads {
		if l > 0 && seen[i] != 1 {
			t.Fatalf("live range %d assigned %d times", i, seen[i])
		}
		if l <= 0 && seen[i] != 0 {
			t.Fatalf("dead range %d assigned", i)
		}
	}
	// Different (seed, epoch) may rotate ties, but stays deterministic.
	c := Assign(7, 9, loads, 3)
	d := Assign(7, 9, loads, 3)
	if !reflect.DeepEqual(c, d) {
		t.Fatalf("Assign not deterministic across epochs")
	}
	// One worker gets everything live.
	e := Assign(42, 0, loads, 1)
	if len(e) != 1 || len(e[0]) != 6 {
		t.Fatalf("single-worker assign: %v", e)
	}
}

func TestAssignBalances(t *testing.T) {
	loads := make([]int64, 16)
	for i := range loads {
		loads[i] = 10
	}
	a := Assign(1, 1, loads, 4)
	for w, l := range a {
		if len(l) != 4 {
			t.Fatalf("worker %d got %d uniform ranges, want 4 (%v)", w, len(l), a)
		}
	}
}

func TestMoves(t *testing.T) {
	prev := [][]int{{0, 1}, {2, 3}}
	next := [][]int{{0, 2}, {1, 3, 4}}
	m := Moves(prev, next)
	if m[0] != 1 || m[1] != 1 {
		t.Fatalf("moves = %v", m)
	}
}

func probeSigs() []uint64 {
	rng := rand.New(rand.NewSource(99))
	sigs := []uint64{0, 1, math.MaxUint64, math.MaxUint64 - 1, 1 << 63, (1 << 63) - 1}
	for i := 0; i < 64; i++ {
		sigs = append(sigs, rng.Uint64())
	}
	return sigs
}
