package experiments

import (
	"testing"

	"chef/internal/obs"
	"chef/internal/packages"
)

// TestSpannedRunMatchesUnspanned proves the profiler's determinism contract
// on both interpreters: a fully spanned run (registry + aggregates) produces
// the same tests, paths, coverage and virtual time as an uninstrumented one.
func TestSpannedRunMatchesUnspanned(t *testing.T) {
	for _, name := range []string{"simplejson", "JSON"} {
		t.Run(name, func(t *testing.T) {
			p, _ := packages.ByName(name)
			cfg := FourConfigurations(true)[3]
			b := quickParallelBudgets(1)
			plain := RunPackage(p, cfg, b, b.Seed)

			sb := quickParallelBudgets(1)
			sb.Spans = true
			sb.Metrics = obs.NewRegistry()
			spanned := RunPackage(p, cfg, sb, sb.Seed)

			if plain.HLTests != spanned.HLTests || plain.LLPaths != spanned.LLPaths ||
				plain.Coverage != spanned.Coverage || plain.VirtTime != spanned.VirtTime {
				t.Fatalf("spanned run diverged:\n plain   tests=%d ll=%d cov=%v virt=%d\n spanned tests=%d ll=%d cov=%v virt=%d",
					plain.HLTests, plain.LLPaths, plain.Coverage, plain.VirtTime,
					spanned.HLTests, spanned.LLPaths, spanned.Coverage, spanned.VirtTime)
			}
			if plain.Solver != spanned.Solver {
				t.Fatalf("solver stats diverged:\n plain   %+v\n spanned %+v", plain.Solver, spanned.Solver)
			}

			aggs := map[string]obs.SpanAggregate{}
			for _, a := range sb.Metrics.SpanAggregates() {
				aggs[a.Layer] = a
			}
			if got := aggs[obs.SpanChefSession].VirtTotal; got != spanned.VirtTime {
				t.Errorf("session span total %d != session virt time %d", got, spanned.VirtTime)
			}
			if got := aggs[obs.SpanEngineRun].VirtTotal; got != spanned.VirtTime {
				t.Errorf("engine.run span total %d != session virt time %d", got, spanned.VirtTime)
			}
		})
	}
}

// TestSpannedParallelDeterminism runs the same spanned grid point serially
// and on 8 workers: the per-layer virtual aggregates (count, total, self)
// must be identical, because each cell profiles into a private child
// registry and counter merging is commutative. Wall fields are observational
// and excluded.
func TestSpannedParallelDeterminism(t *testing.T) {
	p, _ := packages.ByName("simplejson")
	cfg := FourConfigurations(true)[3]
	run := func(workers int) (Aggregated, Aggregated, []obs.SpanAggregate) {
		b := quickParallelBudgets(workers)
		b.Spans = true
		b.Metrics = obs.NewRegistry()
		tests, cov, _ := RunRepeated(p, cfg, b)
		return tests, cov, b.Metrics.SpanAggregates()
	}
	st, sc, serial := run(1)
	pt, pc, parallel := run(8)
	if st != pt || sc != pc {
		t.Fatalf("aggregates diverged: serial %+v/%+v, parallel %+v/%+v", st, sc, pt, pc)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("span layer sets diverged: %d vs %d layers", len(serial), len(parallel))
	}
	for i := range serial {
		s, q := serial[i], parallel[i]
		if s.Layer != q.Layer || s.Count != q.Count || s.VirtTotal != q.VirtTotal || s.VirtSelf != q.VirtSelf {
			t.Errorf("layer %s: serial count=%d total=%d self=%d, parallel (%s) count=%d total=%d self=%d",
				s.Layer, s.Count, s.VirtTotal, s.VirtSelf, q.Layer, q.Count, q.VirtTotal, q.VirtSelf)
		}
	}
}
