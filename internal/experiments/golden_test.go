package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/experiments/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenBudgets pins every knob that affects rendered output. Golden tests
// run the harness at full parallelism on purpose: together with the
// determinism suite they prove that the checked-in bytes are reproducible on
// any machine and any GOMAXPROCS.
func goldenBudgets() Budgets {
	b := QuickBudgets()
	b.Time = 300_000
	b.Reps = 2
	b.Parallel = 0 // GOMAXPROCS; output must not depend on this
	return b
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden file %s.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intended, regenerate with: go test ./internal/experiments/ -run Golden -update",
			name, path, got, want)
	}
}

// TestGoldenTable2 pins the interpreter-completeness table, which is fully
// static (no exploration), so it never depends on budgets.
func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2", RenderTable2(Table2()))
}

// TestGoldenTable3 pins the package-metadata + testing-results table under
// the quick grid.
func TestGoldenTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	checkGolden(t, "table3", RenderTable3(Table3(goldenBudgets())))
}

// TestGoldenFig8 pins the four-configuration comparison figure under the
// quick grid.
func TestGoldenFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	checkGolden(t, "fig8", RenderFig8(Fig8(goldenBudgets())))
}
