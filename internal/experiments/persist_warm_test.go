package experiments

import (
	"path/filepath"
	"testing"

	"chef/internal/packages"
	"chef/internal/solver"
)

// Warm-vs-cold suite: an experiment rerun against the persistent
// counterexample cache written by a previous run must render byte-identical
// output. The persistent layer replays the recorded verdict, model and
// virtual solve cost, so the exploration — and therefore every number in the
// tables and figures — cannot depend on whether the store was warm.

// runFig8WithStore renders Figure 8 with a persistent store at path, and
// returns the rendered bytes plus the aggregated solver stats of the pass.
func runFig8WithStore(t *testing.T, path string) (string, solver.Stats) {
	t.Helper()
	store, err := solver.OpenPersistentStore(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if cerr := store.Corruption(); cerr != nil {
		t.Fatalf("store corrupt: %v", cerr)
	}
	ResetHarnessStats()
	b := goldenBudgets()
	b.Persist = store
	out := RenderFig8(Fig8(b))
	hs := HarnessSnapshot()
	ResetHarnessStats()
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return out, hs.Solver
}

// TestGoldenFig8WarmPersist runs Figure 8 cold (writing a fresh cache file),
// then warm from that file, and requires (a) the warm pass actually hit the
// persistent layer, (b) warm output is byte-identical to cold output, and
// (c) both match the checked-in golden bytes.
func TestGoldenFig8WarmPersist(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	path := filepath.Join(t.TempDir(), "cxc.bin")
	cold, coldStats := runFig8WithStore(t, path)
	warm, warmStats := runFig8WithStore(t, path)
	if coldStats.CacheHitsPersist != 0 {
		t.Fatalf("cold pass hit the empty persistent store: %+v", coldStats)
	}
	if warmStats.CacheHitsPersist == 0 {
		t.Fatalf("warm pass recorded no persistent hits: %+v", warmStats)
	}
	if cold != warm {
		t.Fatalf("warm rerun diverged from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	checkGolden(t, "fig8", warm)
}

// TestTable3SubsumeParallelDeterminism extends the schedule-independence
// guarantee to the subsuming cache mode: the extra lookup layer reorders
// nothing, so serial and 8-worker runs must render identical tables.
func TestTable3SubsumeParallelDeterminism(t *testing.T) {
	bud := func(workers int) Budgets {
		b := quickParallelBudgets(workers)
		b.CacheMode = solver.CacheSubsume
		return b
	}
	serial := RenderTable3(Table3(bud(1)))
	parallel := RenderTable3(Table3(bud(8)))
	if serial != parallel {
		t.Fatalf("Table 3 with subsume cache depends on scheduling:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestWarmParallelMatchesColdSerial crosses the two axes: a cold serial run
// writes the store, then a warm 8-worker run in subsume mode must reproduce
// the exact aggregates. This is the strongest reproducibility claim the
// harness makes — scheduling, cache mode and store temperature all vary, the
// numbers do not.
func TestWarmParallelMatchesColdSerial(t *testing.T) {
	p, _ := packages.ByName("simplejson")
	cfg := FourConfigurations(true)[3]
	path := filepath.Join(t.TempDir(), "cxc.bin")

	run := func(workers int) (Aggregated, Aggregated, RunResult, solver.Stats) {
		store, err := solver.OpenPersistentStore(path)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		ResetHarnessStats()
		b := quickParallelBudgets(workers)
		b.CacheMode = solver.CacheSubsume
		b.Persist = store
		ts, cs, last := RunRepeated(p, cfg, b)
		hs := HarnessSnapshot()
		ResetHarnessStats()
		if err := store.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return ts, cs, last, hs.Solver
	}

	st, sc, slast, _ := run(1)
	pt, pc, plast, warmStats := run(8)
	if warmStats.CacheHitsPersist == 0 {
		t.Fatalf("warm parallel pass recorded no persistent hits: %+v", warmStats)
	}
	if st != pt || sc != pc {
		t.Fatalf("aggregates diverged:\n cold serial   tests=%+v cov=%+v\n warm parallel tests=%+v cov=%+v", st, sc, pt, pc)
	}
	if slast.HLTests != plast.HLTests || slast.LLPaths != plast.LLPaths ||
		slast.Coverage != plast.Coverage || slast.VirtTime != plast.VirtTime {
		t.Fatalf("last repetition diverged:\n cold serial   %+v\n warm parallel %+v", slast, plast)
	}
}
