package experiments

import (
	"fmt"
	"strings"

	"chef/internal/chef"
	"chef/internal/dedicated"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/symexpr"
	"chef/internal/symtest"
)

// CrossCheckResult reports the §6.6 reference-implementation workflow: the
// test cases of a dedicated engine are tracked along the high-level paths
// CHEF generates for the same target, to determine duplicates and missed
// feasible paths.
type CrossCheckResult struct {
	ChefHLPaths    int // distinct HL paths CHEF found
	DedicatedTests int // test cases the dedicated engine produced
	CoveredHLPaths int // CHEF HL paths hit by replaying the dedicated tests
	DuplicateTests int // dedicated tests that replayed onto an already-hit path
	MissedHLPaths  int // CHEF HL paths no dedicated test reaches
}

// CrossCheck runs both engines on the flat MAC-learning controller and
// replays the dedicated engine's inputs through the vanilla interpreter,
// mapping each onto CHEF's high-level paths.
func CrossCheck(nFrames, macLen int, bugCompat bool, b Budgets) (CrossCheckResult, error) {
	var out CrossCheckResult

	// CHEF side: ground-truth high-level paths.
	pt := packages.MacLearningFlatTest(nFrames, macLen, minipy.Optimized)
	session := chef.NewSession(pt.Program(), chef.Options{
		Strategy: chef.StrategyCUPAPath, Seed: b.Seed, StepLimit: b.StepLimit,
	})
	chefTests := session.Run(b.Time)
	out.ChefHLPaths = len(chefTests)

	// Dedicated side.
	src := packages.MacLearningFlatSource(nFrames)
	prog, err := minipy.Compile(src)
	if err != nil {
		return out, err
	}
	ded := dedicated.New(prog, dedicated.Options{BugCompat: bugCompat})
	var args []dedicated.Value
	for i := 0; i < nFrames; i++ {
		args = append(args,
			dedSymStr(fmt.Sprintf("s%d", i), macLen),
			dedSymStr(fmt.Sprintf("d%d", i), macLen))
	}
	if err := ded.Explore("drive_frames", args); err != nil {
		return out, err
	}
	out.DedicatedTests = len(ded.Tests())

	// Track dedicated tests along CHEF's HL paths: replay each input on the
	// instrumented interpreter and record the resulting HL signature.
	chefSigs := map[uint64]bool{}
	for _, tc := range chefTests {
		chefSigs[tc.HLSig] = true
	}
	hit := map[uint64]bool{}
	for _, tc := range ded.Tests() {
		sig := hlSigOf(pt, tc.Input)
		if hit[sig] {
			out.DuplicateTests++
			continue
		}
		hit[sig] = true
	}
	for sig := range chefSigs {
		if !hit[sig] {
			out.MissedHLPaths++
		}
	}
	out.CoveredHLPaths = out.ChefHLPaths - out.MissedHLPaths
	return out, nil
}

// hlSigOf replays an input through a fresh single-run session to compute the
// high-level path signature the instrumented interpreter assigns to it.
func hlSigOf(pt *symtest.PyTest, input symexpr.Assignment) uint64 {
	s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyDFS, Seed: 1})
	return s.ReplaySig(input)
}

func dedSymStr(name string, n int) dedicated.Value {
	b := make([]*symexpr.Expr, n)
	for i := range b {
		b[i] = symexpr.NewVar(symexpr.Var{Buf: name, Idx: i, W: symexpr.W8})
	}
	return dedicated.StrV{B: b}
}

// RenderCrossCheck formats a cross-check result.
func RenderCrossCheck(label string, r CrossCheckResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", label)
	fmt.Fprintf(&sb, "  CHEF high-level paths:        %d\n", r.ChefHLPaths)
	fmt.Fprintf(&sb, "  dedicated test cases:         %d\n", r.DedicatedTests)
	fmt.Fprintf(&sb, "  HL paths covered by them:     %d\n", r.CoveredHLPaths)
	fmt.Fprintf(&sb, "  redundant dedicated tests:    %d\n", r.DuplicateTests)
	fmt.Fprintf(&sb, "  feasible HL paths missed:     %d\n", r.MissedHLPaths)
	return sb.String()
}
