package experiments

import (
	"strings"
	"testing"

	"chef/internal/packages"
)

func TestFourConfigurations(t *testing.T) {
	for _, pathOpt := range []bool{true, false} {
		cfgs := FourConfigurations(pathOpt)
		if len(cfgs) != 4 {
			t.Fatalf("want 4 configurations, got %d", len(cfgs))
		}
		if cfgs[0].PyCfg.HashNeutralization || cfgs[3].PyCfg != (FourConfigurations(true)[3].PyCfg) {
			t.Error("config grid wrong")
		}
	}
}

func TestAggregateConfigurationWins(t *testing.T) {
	// The paper's core claim (§6.3): CUPA + optimizations beats the
	// baseline on test-case generation for the string-heavy parsers.
	b := QuickBudgets()
	p, _ := packages.ByName("simplejson")
	cfgs := FourConfigurations(true)
	base := RunPackage(p, cfgs[0], b, 1)
	aggr := RunPackage(p, cfgs[3], b, 1)
	if aggr.HLTests <= base.HLTests {
		t.Fatalf("aggregate (%d tests) must beat baseline (%d tests)", aggr.HLTests, base.HLTests)
	}
	if aggr.Coverage <= base.Coverage {
		t.Fatalf("aggregate coverage %.2f must beat baseline %.2f", aggr.Coverage, base.Coverage)
	}
}

func TestHLPathEfficiencyImprovesWithOptimizations(t *testing.T) {
	// Fig. 10's claim: the HL/LL ratio is higher with optimizations.
	b := QuickBudgets()
	p, _ := packages.ByName("simplejson")
	cfgs := FourConfigurations(true)
	base := RunPackage(p, cfgs[0], b, 1)
	aggr := RunPackage(p, cfgs[3], b, 1)
	rb := float64(base.HLTests) / float64(base.LLPaths)
	ra := float64(aggr.HLTests) / float64(aggr.LLPaths)
	if ra <= rb {
		t.Fatalf("aggregate efficiency %.3f must beat baseline %.3f", ra, rb)
	}
}

func TestTable3FindsJSONHangAndXlrdExceptions(t *testing.T) {
	b := QuickBudgets()
	b.Time = 1_200_000
	cfg := FourConfigurations(true)[3]
	j, _ := packages.ByName("JSON")
	jres := RunPackage(j, cfg, b, 1)
	if jres.Hangs == 0 {
		t.Error("the sb-JSON comment hang was not found")
	}
	x, _ := packages.ByName("xlrd")
	xres := RunPackage(x, cfg, b, 1)
	undoc := 0
	for exc := range xres.Exceptions {
		if !x.IsDocumented(exc) {
			undoc++
		}
	}
	if len(xres.Exceptions) < 2 || undoc < 1 {
		t.Errorf("xlrd exceptions found: %v (undocumented %d); want several incl. undocumented",
			xres.Exceptions, undoc)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	if !strings.Contains(RenderTable2(Table2()), "HLPC instrumentation") {
		t.Error("table2 render")
	}
	if !strings.Contains(RenderTable4(Table4()), "Native methods") {
		t.Error("table4 render")
	}
}

func TestFig12OverheadAboveOne(t *testing.T) {
	// CHEF pays for interpreter fidelity: per-path cost must exceed the
	// dedicated engine's (Fig. 12's premise), and the optimizations must
	// reduce the overhead of the vanilla build.
	b := QuickBudgets()
	pts := Fig12(2, b)
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	byLevel := map[string]float64{}
	for _, p := range pts {
		if p.Frames == 2 {
			byLevel[p.Level] = p.Overhead
		}
	}
	if byLevel["+ Fast Path Elimination"] <= 0 {
		t.Fatal("missing full-opt point")
	}
	if byLevel["No Optimizations"] < byLevel["+ Fast Path Elimination"] {
		t.Errorf("vanilla overhead %.1f should exceed optimized %.1f",
			byLevel["No Optimizations"], byLevel["+ Fast Path Elimination"])
	}
	for lvl, ov := range byLevel {
		if ov < 1 {
			t.Errorf("%s: overhead %.2f < 1; CHEF should not be cheaper per path", lvl, ov)
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 6})
	if m != 4 {
		t.Errorf("mean = %f", m)
	}
	if s < 1.6 || s > 1.7 {
		t.Errorf("std = %f", s)
	}
	if m, s = meanStd(nil); m != 0 || s != 0 {
		t.Error("empty series")
	}
}

func TestFig10SeriesMonotoneBudget(t *testing.T) {
	b := QuickBudgets()
	b.Time = 400_000
	series := Fig10(b)
	if len(series) != 8 { // 4 configs x 2 languages
		t.Fatalf("got %d series, want 8", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 10 {
			t.Fatalf("series %s/%s has %d points", s.Lang, s.Config, len(s.Points))
		}
	}
	out := RenderFig10(series)
	if !strings.Contains(out, "Baseline") {
		t.Error("render missing configs")
	}
}

func TestCrossCheckWorkflow(t *testing.T) {
	b := QuickBudgets()
	// A correct dedicated engine covers every CHEF HL path (its per-entry
	// dict forks are strictly finer than HL paths).
	good, err := CrossCheck(2, 2, false, b)
	if err != nil {
		t.Fatal(err)
	}
	if good.MissedHLPaths != 0 {
		t.Errorf("correct dedicated engine missed %d HL paths: %+v", good.MissedHLPaths, good)
	}
	if good.DuplicateTests == 0 {
		t.Errorf("expected redundancy from per-entry forks: %+v", good)
	}
	out := RenderCrossCheck("fixed engine", good)
	if !strings.Contains(out, "CHEF high-level paths") {
		t.Error("render incomplete")
	}
}

func TestBudgetPresets(t *testing.T) {
	d := DefaultBudgets()
	q := QuickBudgets()
	if d.Time <= q.Time || d.Reps < q.Reps || d.StepLimit <= 0 || q.StepLimit <= 0 {
		t.Fatalf("budget presets inconsistent: default %+v quick %+v", d, q)
	}
}
