package experiments

import (
	"reflect"
	"testing"

	"chef/internal/packages"
	"chef/internal/solver"
)

// TestRunPackageBDDShardedDeterminism extends the harness-level sharding
// property to -solvermode=bdd on both interpreters: a bdd-mode RunResult —
// tests, low-level paths, coverage, series, virtual time, solver traffic —
// is identical whether the range cells are driven by 1 or 4 epoch workers.
// The real-package constraint streams mix liftable boolean skeletons with
// arithmetic fallbacks, so this exercises both diagram decisions and the
// CDCL fallback under sharded scheduling.
func TestRunPackageBDDShardedDeterminism(t *testing.T) {
	cfg := FourConfigurations(true)[3]
	for _, name := range []string{"simplejson", "JSON"} {
		p, ok := packages.ByName(name)
		if !ok {
			t.Fatalf("package %q missing", name)
		}
		run := func(shards int) RunResult {
			b := QuickBudgets()
			b.Time = 300_000
			b.Shards = shards
			b.SolverMode = solver.ModeBDD
			return RunPackage(p, cfg, b, 42)
		}
		serial := run(1)
		if serial.HLTests == 0 {
			t.Fatalf("%s: bdd sharded run found no tests; comparison is vacuous", name)
		}
		multi := run(4)
		if !reflect.DeepEqual(serial, multi) {
			t.Fatalf("%s: bdd sharded run diverged between 1 and 4 workers:\nserial %+v\nmulti  %+v",
				name, serial, multi)
		}
	}
}
