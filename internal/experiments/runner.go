// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the Go reproduction: Table 2 (interpreter-preparation
// effort), Table 3 (testing results), Table 4 (feature support), Figure 8
// (test-case generation), Figure 9 (line coverage), Figure 10 (path-ratio
// over time), Figure 11 (optimization breakdown) and Figure 12 (overhead
// versus a dedicated engine).
//
// All experiments run under deterministic virtual-time budgets; repetitions
// vary the session seed, mirroring the paper's 15-trial averaging.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"chef/internal/chef"
	"chef/internal/faults"
	"chef/internal/lowlevel"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/obs"
	"chef/internal/packages"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// Budgets collects the virtual-time knobs of a run, standing in for the
// paper's 30-minute wall-clock budget and 60-second hang timeout.
type Budgets struct {
	// Time is the virtual-time exploration budget per session.
	Time int64
	// StepLimit is the per-run hang threshold.
	StepLimit int64
	// Reps is the number of repetitions with distinct seeds.
	Reps int
	// Seed is the base seed.
	Seed int64
	// Parallel bounds the number of worker goroutines the harness fans
	// session runs out over; 0 means runtime.GOMAXPROCS(0), 1 forces serial
	// execution. Results are deterministic and byte-identical for every
	// value (sessions are isolated; gathering preserves grid order).
	Parallel int
	// Shards, when >= 1, runs every session cell as a sharded exploration
	// (chef.ShardedSession) with up to Shards epoch workers. Results are
	// byte-identical for every value >= 1 — the worker count is scheduling,
	// not semantics — but the sharded semantics differ from the plain
	// single-session path, so 0 (the default) keeps existing goldens
	// stable.
	Shards int
	// Cache, when non-nil, is a counterexample cache shared by every session
	// of the run (cross-session hit reuse). nil keeps the default private
	// per-session caches, which additionally guarantees bit-exact
	// reproducibility across schedules; see solver.QueryCache.
	Cache *solver.QueryCache
	// CacheMode selects the cache lookup layers each session's solver uses
	// (exact only, or exact + subsumption). With private caches either mode is
	// fully deterministic; see solver.QueryCache for the shared-cache caveat.
	CacheMode solver.CacheMode
	// SolverMode selects the decision procedure behind the cache layers
	// (oneshot or incremental); see solver.Options.SolverMode.
	SolverMode solver.SolverMode
	// Persist, when non-nil, is a disk-backed store of solved queries shared
	// by every session. Its read side is fixed before the run starts, so warm
	// runs remain byte-identical to cold ones; see solver.PersistentStore.
	Persist *solver.PersistentStore
	// Metrics, when non-nil, aggregates observability metrics across every
	// session of the run: each session writes into a private child registry
	// that is merged into this one when the session finishes (counters and
	// histograms are commutative sums, so aggregation is schedule-
	// independent). Observation-only: tables and figures are unaffected.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives structured exploration events from every
	// session, labeled "<package>/<config>/<seed>". The tracer must be safe
	// for concurrent use (obs.NewJSONL is).
	Tracer obs.Tracer
	// Faults, when non-nil, is the fault-injection plan threaded into every
	// session of the run (see internal/faults). Each session derives its
	// injector from the plan seed and its own label, and worker.stall rules
	// match the session's grid-cell index, so fault schedules are identical
	// for every Parallel value.
	Faults *faults.Plan
	// Spans enables the hierarchical span profiler. Profilers are
	// single-goroutine, so the harness builds one per session cell, writing
	// into the cell's private child registry (merged into Metrics at cell
	// end) and tagging span events with the session label. Observation-only:
	// results stay byte-identical for every Parallel value.
	Spans bool
}

// solverOptions builds the per-session solver options. The Persist field is
// assigned conditionally: solver.Options.Persist is an interface, and storing
// a nil *solver.PersistentStore in it directly would produce a non-nil
// interface value (the typed-nil trap).
func solverOptions(b Budgets) solver.Options {
	so := solver.Options{Cache: b.Cache, Mode: b.CacheMode, SolverMode: b.SolverMode}
	if b.Persist != nil {
		so.Persist = b.Persist
	}
	return so
}

// Workers returns the effective worker count of the harness pool.
func (b Budgets) Workers() int {
	if b.Parallel > 0 {
		return b.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultBudgets returns budgets sized for the benchmark harness: large
// enough to show every effect, small enough for a laptop.
func DefaultBudgets() Budgets {
	return Budgets{Time: 3_000_000, StepLimit: 60_000, Reps: 3, Seed: 1}
}

// QuickBudgets returns reduced budgets for unit tests.
func QuickBudgets() Budgets {
	return Budgets{Time: 600_000, StepLimit: 30_000, Reps: 1, Seed: 1}
}

// Configuration is one of the four §6.3 configurations.
type Configuration struct {
	Name     string
	Strategy chef.StrategyKind
	PyCfg    minipy.Config
	LuaCfg   minilua.Config
}

// FourConfigurations returns the §6.3 grid: baseline, CUPA only,
// optimizations only, and CUPA + optimizations. pathOpt selects the
// path-optimized CUPA (Fig. 8) versus the coverage-optimized one (Fig. 9).
func FourConfigurations(pathOpt bool) []Configuration {
	strat := chef.StrategyCUPACoverage
	if pathOpt {
		strat = chef.StrategyCUPAPath
	}
	return []Configuration{
		{Name: "Baseline", Strategy: chef.StrategyRandom},
		{Name: "CUPA Only", Strategy: strat},
		{Name: "Optimizations Only", Strategy: chef.StrategyRandom, PyCfg: minipy.Optimized, LuaCfg: minilua.Optimized},
		{Name: "CUPA + Optimizations", Strategy: strat, PyCfg: minipy.Optimized, LuaCfg: minilua.Optimized},
	}
}

// RunResult summarizes one session on one package.
type RunResult struct {
	Package    string
	Config     string
	HLTests    int
	LLPaths    int64
	Coverage   float64 // covered / coverable lines, in [0,1]
	Exceptions map[string]bool
	Hangs      int
	Series     []chef.SamplePoint
	VirtTime   int64
	Solver     solver.Stats
}

// RunPackage explores one package under one configuration and replays the
// generated tests to confirm outcomes and measure line coverage.
func RunPackage(p *packages.Package, cfg Configuration, b Budgets, seed int64) RunResult {
	return runPackageCell(p, cfg, b, seed, 0)
}

// runPackageCell is RunPackage with the session's grid-cell index, which
// worker.stall fault rules match on (the index is a grid position, so fault
// schedules are schedule-independent).
func runPackageCell(p *packages.Package, cfg Configuration, b Budgets, seed int64, idx int) RunResult {
	opts := chef.Options{
		Strategy:      cfg.Strategy,
		Seed:          seed,
		StepLimit:     b.StepLimit,
		SolverOptions: solverOptions(b),
		Tracer:        b.Tracer,
		Name:          fmt.Sprintf("%s/%s/%d", p.Name, cfg.Name, seed),
		Faults:        b.Faults,
		SessionIndex:  idx,
	}
	var child *obs.Registry
	if b.Metrics != nil {
		child = obs.NewRegistry()
		opts.Metrics = child
	}
	if b.Spans {
		opts.Spans = obs.NewSpanProfiler(child, obs.WithSession(b.Tracer, opts.Name))
	}
	res := RunResult{Package: p.Name, Config: cfg.Name, Exceptions: map[string]bool{}}
	covered := map[int]bool{}
	coverable := 1
	var prog chef.TestProgram
	var replay func(input symexpr.Assignment)

	switch p.Lang {
	case packages.Python:
		pt := p.PyTest(cfg.PyCfg)
		prog = pt.Program()
		coverable = len(pt.Prog().CoverableLines())
		replay = func(input symexpr.Assignment) {
			rep := pt.Replay(input, b.StepLimit)
			for l := range rep.Lines {
				covered[l] = true
			}
			classify(&res, rep.Result, rep.Status)
		}
	default:
		lt := p.LuaTest(cfg.LuaCfg)
		prog = lt.Program()
		coverable = len(lt.Prog().CoverableLines())
		replay = func(input symexpr.Assignment) {
			rep := lt.Replay(input, b.StepLimit)
			for l := range rep.Lines {
				covered[l] = true
			}
			classify(&res, rep.Result, rep.Status)
		}
	}
	var tests []chef.TestCase
	if b.Shards >= 1 {
		ss := chef.NewShardedSession(prog, opts, b.Shards)
		tests = ss.Run(b.Time)
		res.LLPaths = ss.Stats().LLPaths
		res.Series = ss.Series()
		res.VirtTime = ss.Clock()
		res.Solver = ss.SolverStats()
	} else {
		session := chef.NewSession(prog, opts)
		tests = session.Run(b.Time)
		res.LLPaths = session.Engine().Stats().LLPaths
		res.Series = session.Series()
		res.VirtTime = session.Engine().Clock()
		res.Solver = session.Engine().Solver().Stats()
	}
	for _, tc := range tests {
		replay(tc.Input)
	}
	res.HLTests = len(tests)
	res.Coverage = float64(len(covered)) / float64(coverable)
	recordSession(res.Solver)
	if child != nil {
		b.Metrics.Merge(child)
	}
	return res
}

func classify(res *RunResult, result string, status lowlevel.RunStatus) {
	if status == lowlevel.RunHang {
		res.Hangs++
		return
	}
	const pyPrefix = "exception:"
	if len(result) > len(pyPrefix) && result[:len(pyPrefix)] == pyPrefix {
		res.Exceptions[result[len(pyPrefix):]] = true
	}
}

// Mean and Stddev of float series.
func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)))
}

// Aggregated holds a mean ± stddev across repetitions.
type Aggregated struct {
	Mean float64
	Std  float64
}

// repCells expands one (package, configuration) grid point into its b.Reps
// session cells, with the same seed schedule the serial harness used.
func repCells(p *packages.Package, cfg Configuration, b Budgets) []cell {
	cells := make([]cell, 0, b.Reps)
	for r := 0; r < b.Reps; r++ {
		cells = append(cells, cell{p: p, cfg: cfg, seed: b.Seed + int64(r)*7919})
	}
	return cells
}

// aggregate folds per-repetition results into the (mean, std) pairs the
// tables and figures report. last is the highest-seed repetition, matching
// the serial harness.
func aggregate(results []RunResult) (tests, coverage Aggregated, last RunResult) {
	var ts, cs []float64
	for _, res := range results {
		ts = append(ts, float64(res.HLTests))
		cs = append(cs, res.Coverage)
		last = res
	}
	tm, tstd := meanStd(ts)
	cm, cstd := meanStd(cs)
	return Aggregated{tm, tstd}, Aggregated{cm, cstd}, last
}

// RunRepeated runs RunPackage b.Reps times with varying seeds, fanning the
// repetitions out over the worker pool, and aggregates test counts and
// coverage. Results are gathered in repetition order, so the output is
// byte-identical to a serial run for any Parallel value.
func RunRepeated(p *packages.Package, cfg Configuration, b Budgets) (tests, coverage Aggregated, last RunResult) {
	return aggregate(runCells(b, repCells(p, cfg, b)))
}

// sortedKeys returns sorted map keys for deterministic rendering.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
