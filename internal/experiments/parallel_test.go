package experiments

import (
	"testing"

	"chef/internal/chef"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/solver"
)

// quickParallelBudgets trims the grid enough for a unit test while keeping
// several repetitions so aggregation order matters.
func quickParallelBudgets(workers int) Budgets {
	b := QuickBudgets()
	b.Time = 300_000
	b.Reps = 2
	b.Parallel = workers
	return b
}

// TestRunRepeatedParallelDeterminism proves the tentpole property at the
// RunRepeated level: identical budgets and seeds give identical aggregates
// whether the repetitions run on one worker or eight.
func TestRunRepeatedParallelDeterminism(t *testing.T) {
	p, _ := packages.ByName("simplejson")
	cfg := FourConfigurations(true)[3]

	serial := quickParallelBudgets(1)
	parallel := quickParallelBudgets(8)

	st, sc, slast := RunRepeated(p, cfg, serial)
	pt, pc, plast := RunRepeated(p, cfg, parallel)

	if st != pt || sc != pc {
		t.Fatalf("aggregates diverged:\n serial   tests=%+v cov=%+v\n parallel tests=%+v cov=%+v", st, sc, pt, pc)
	}
	if slast.HLTests != plast.HLTests || slast.LLPaths != plast.LLPaths ||
		slast.Coverage != plast.Coverage || slast.VirtTime != plast.VirtTime {
		t.Fatalf("last repetition diverged:\n serial   %+v\n parallel %+v", slast, plast)
	}
}

// TestTable3ParallelDeterminism runs a full table runner twice — serial
// (-parallel 1) and parallel (-parallel 8) — and asserts the rendered table
// strings are byte-for-byte identical.
func TestTable3ParallelDeterminism(t *testing.T) {
	serial := RenderTable3(Table3(quickParallelBudgets(1)))
	parallel := RenderTable3(Table3(quickParallelBudgets(8)))
	if serial != parallel {
		t.Fatalf("Table 3 output depends on scheduling:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestFig8ParallelDeterminism runs a full figure runner twice — serial and
// at 8 workers — and asserts the rendered figure strings are byte-for-byte
// identical. Together with the Table 3 test this covers the acceptance
// criterion: one table and one figure proven schedule-independent.
func TestFig8ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	serial := RenderFig8(Fig8(quickParallelBudgets(1)))
	parallel := RenderFig8(Fig8(quickParallelBudgets(8)))
	if serial != parallel {
		t.Fatalf("Figure 8 output depends on scheduling:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestRunPortfolioParallelDeterminism checks that the portfolio driver's
// deterministic merge gives identical results for serial and parallel
// member execution.
func TestRunPortfolioParallelDeterminism(t *testing.T) {
	p, _ := packages.ByName("simplejson")
	var members []chef.PortfolioMember
	names := minipy.OptLevelNames()
	for li, lvl := range minipy.OptLevels() {
		members = append(members, chef.PortfolioMember{Name: names[li], Prog: p.PyTest(lvl).Program()})
	}
	run := func(workers int) chef.PortfolioResult {
		return chef.RunPortfolio(members, chef.Options{
			Strategy:  chef.StrategyCUPAPath,
			Seed:      7,
			StepLimit: 30_000,
			Parallel:  workers,
		}, 800_000)
	}
	serial := run(1)
	parallel := run(8)
	if len(serial.Tests) != len(parallel.Tests) {
		t.Fatalf("merged path counts diverged: serial %d, parallel %d", len(serial.Tests), len(parallel.Tests))
	}
	for i := range serial.Tests {
		if serial.Tests[i].HLSig != parallel.Tests[i].HLSig {
			t.Fatalf("merged test %d diverged: serial sig %x, parallel sig %x", i, serial.Tests[i].HLSig, parallel.Tests[i].HLSig)
		}
	}
	for i := range serial.PerBuild {
		if serial.PerBuild[i] != parallel.PerBuild[i] || serial.NewPerBuild[i] != parallel.NewPerBuild[i] {
			t.Fatalf("per-build counts diverged at member %d: serial (%d,%d), parallel (%d,%d)",
				i, serial.PerBuild[i], serial.NewPerBuild[i], parallel.PerBuild[i], parallel.NewPerBuild[i])
		}
	}
}

// TestHarnessStatsAccumulate checks that the harness counters see every
// session and that solver-level cache accounting is consistent
// (hits + misses == cacheable queries).
func TestHarnessStatsAccumulate(t *testing.T) {
	ResetHarnessStats()
	p, _ := packages.ByName("cliargs")
	b := quickParallelBudgets(4)
	RunRepeated(p, FourConfigurations(true)[0], b)
	hs := HarnessSnapshot()
	if hs.Sessions != int64(b.Reps) {
		t.Fatalf("harness saw %d sessions, want %d", hs.Sessions, b.Reps)
	}
	if hs.SolverQueries <= 0 {
		t.Fatal("harness recorded no solver queries")
	}
	if hs.CacheHits+hs.CacheMisses <= 0 || hs.CacheHits+hs.CacheMisses > hs.SolverQueries {
		t.Fatalf("cache accounting inconsistent: hits=%d misses=%d queries=%d",
			hs.CacheHits, hs.CacheMisses, hs.SolverQueries)
	}
	ResetHarnessStats()
}

// TestSharedCacheAcrossSessions runs the same grid point with a shared
// counterexample cache and checks that cross-session reuse actually happens:
// later repetitions hit entries stored by earlier ones.
func TestSharedCacheAcrossSessions(t *testing.T) {
	p, _ := packages.ByName("simplejson")
	cfg := FourConfigurations(true)[3]
	b := quickParallelBudgets(4)
	b.Cache = solver.NewQueryCache(0)
	// Same seed for every repetition: identical sessions, so the second one
	// replays the first one's queries.
	cells := []cell{{p: p, cfg: cfg, seed: b.Seed}, {p: p, cfg: cfg, seed: b.Seed}}
	runCells(b, cells)
	cs := b.Cache.Stats()
	if cs.Hits == 0 {
		t.Fatalf("no cross-session cache hits: %+v", cs)
	}
	if cs.Hits+cs.Misses != cs.Queries {
		t.Fatalf("cache counters do not add up: %+v", cs)
	}
}

// TestParfor exercises the pool helper's edge cases.
func TestParfor(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 37
		got := make([]int, n)
		parfor(workers, n, func(i int) { got[i] = i + 1 })
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: index %d not executed (got %d)", workers, i, v)
			}
		}
	}
	parfor(4, 0, func(int) { t.Fatal("must not run") })
}

// TestBudgetsWorkers pins the worker-count policy.
func TestBudgetsWorkers(t *testing.T) {
	if (Budgets{Parallel: 3}).Workers() != 3 {
		t.Fatal("explicit Parallel not honored")
	}
	if (Budgets{}).Workers() < 1 {
		t.Fatal("default workers must be >= 1")
	}
}
