package experiments

import (
	"reflect"
	"testing"

	"chef/internal/packages"
)

// TestRunPackageShardedDeterminism proves the harness-level sharding
// property on both interpreters: a sharded run's RunResult — tests,
// low-level paths, coverage, series, virtual time, solver traffic — is
// identical whether the range cells are driven by 1 or 4 epoch workers.
func TestRunPackageShardedDeterminism(t *testing.T) {
	cfg := FourConfigurations(true)[3]
	for _, name := range []string{"simplejson", "JSON"} {
		p, ok := packages.ByName(name)
		if !ok {
			t.Fatalf("package %q missing", name)
		}
		run := func(shards int) RunResult {
			b := QuickBudgets()
			b.Time = 300_000
			b.Shards = shards
			return RunPackage(p, cfg, b, 42)
		}
		serial := run(1)
		if serial.HLTests == 0 {
			t.Fatalf("%s: sharded run found no tests; comparison is vacuous", name)
		}
		multi := run(4)
		if !reflect.DeepEqual(serial, multi) {
			t.Fatalf("%s: sharded run diverged between 1 and 4 workers:\nserial %+v\nmulti  %+v",
				name, serial, multi)
		}
	}
}
