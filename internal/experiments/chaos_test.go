package experiments

import (
	"testing"

	"chef/internal/faults"
)

func mustChaosPlan(t testing.TB, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

// An installed-but-inert plan (the n-th-occurrence trigger is unreachably
// far) must leave the rendered figure byte-identical to the checked-in
// golden: the injector plumbing itself — scope derivation, occurrence
// counting, the per-query Fire check — must not perturb exploration.
func TestGoldenFig8InertFaultPlanIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	b := goldenBudgets()
	b.Faults = mustChaosPlan(t, "seed=42;solver.unknown:n=1000000000")
	checkGolden(t, "fig8", RenderFig8(Fig8(b)))
}

// An active plan keeps the parallel-determinism contract: fault schedules
// are a pure function of (seed, scope, occurrence), and scopes are derived
// from the schedule-independent grid-cell index, so the rendered figure is
// identical at any worker count.
func TestFig8DeterministicUnderActiveFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	render := func(parallel int) string {
		b := goldenBudgets()
		b.Parallel = parallel
		b.Faults = mustChaosPlan(t, "seed=3;solver.unknown:p=0.1")
		return RenderFig8(Fig8(b))
	}
	serial, wide := render(1), render(8)
	if serial != wide {
		t.Fatalf("fig8 under faults diverged across worker counts.\n--- serial ---\n%s\n--- parallel=8 ---\n%s",
			serial, wide)
	}
	// The plan must actually have fired, or the comparison proves nothing.
	clean := goldenBudgets()
	clean.Parallel = 1
	if got := RenderFig8(Fig8(clean)); got == serial {
		t.Fatal("faulted figure identical to the clean one: the p=0.1 plan never fired")
	}
}
