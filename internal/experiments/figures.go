package experiments

import (
	"fmt"
	"sort"
	"strings"

	"chef/internal/chef"
	"chef/internal/dedicated"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// Fig8Row is one package's test-generation results across the four
// configurations, as ratios over the baseline (the paper plots P/P_baseline
// on a log scale).
type Fig8Row struct {
	Package string
	Lang    string
	Tests   [4]Aggregated // raw test counts, config order of FourConfigurations
	Ratio   [4]float64    // relative to baseline
}

// Fig8 reproduces Figure 8: the number of high-level test cases generated
// under each configuration, relative to the random-selection baseline. The
// full package x configuration x repetition grid fans out over the worker
// pool; aggregation walks the gathered results in grid order, so the rows
// are identical to a serial run.
func Fig8(b Budgets) []Fig8Row {
	configs := FourConfigurations(true)
	pkgs := packages.All()
	var cells []cell
	for _, p := range pkgs {
		for _, cfg := range configs {
			cells = append(cells, repCells(p, cfg, b)...)
		}
	}
	results := runCells(b, cells)
	var rows []Fig8Row
	idx := 0
	for _, p := range pkgs {
		row := Fig8Row{Package: p.Name, Lang: p.Lang.String()}
		for ci := range configs {
			t, _, _ := aggregate(results[idx : idx+b.Reps])
			idx += b.Reps
			row.Tests[ci] = t
		}
		base := row.Tests[0].Mean
		if base < 1 {
			base = 1
		}
		for ci := range configs {
			row.Ratio[ci] = row.Tests[ci].Mean / base
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFig8 renders Figure 8 as a text table.
func RenderFig8(rows []Fig8Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: High-level test cases generated, relative to baseline (path-optimized CUPA)\n")
	configs := FourConfigurations(true)
	fmt.Fprintf(&sb, "%-14s %-7s", "Package", "Lang")
	for _, c := range configs {
		fmt.Fprintf(&sb, " %22s", c.Name)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-7s", r.Package, r.Lang)
		for ci := range configs {
			fmt.Fprintf(&sb, "   %7.1f (%5.2fx base)", r.Tests[ci].Mean, r.Ratio[ci])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig9Row is one package's line coverage across the four configurations.
type Fig9Row struct {
	Package  string
	Lang     string
	Coverage [4]Aggregated // fraction in [0,1]
}

// Fig9 reproduces Figure 9: line coverage achieved by each configuration
// with the coverage-optimized CUPA. Like Fig8, the whole grid runs on the
// worker pool with order-preserving aggregation.
func Fig9(b Budgets) []Fig9Row {
	configs := FourConfigurations(false)
	pkgs := packages.All()
	var cells []cell
	for _, p := range pkgs {
		for _, cfg := range configs {
			cells = append(cells, repCells(p, cfg, b)...)
		}
	}
	results := runCells(b, cells)
	var rows []Fig9Row
	idx := 0
	for _, p := range pkgs {
		row := Fig9Row{Package: p.Name, Lang: p.Lang.String()}
		for ci := range configs {
			_, c, _ := aggregate(results[idx : idx+b.Reps])
			idx += b.Reps
			row.Coverage[ci] = c
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFig9 renders Figure 9.
func RenderFig9(rows []Fig9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: Line coverage [%] (coverage-optimized CUPA)\n")
	configs := FourConfigurations(false)
	fmt.Fprintf(&sb, "%-14s %-7s", "Package", "Lang")
	for _, c := range configs {
		fmt.Fprintf(&sb, " %22s", c.Name)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-7s", r.Package, r.Lang)
		for ci := range configs {
			fmt.Fprintf(&sb, "       %5.1f%% (+/-%4.1f)", 100*r.Coverage[ci].Mean, 100*r.Coverage[ci].Std)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig10Series is the averaged high-level/low-level path ratio over virtual
// time for one configuration.
type Fig10Series struct {
	Config string
	Lang   string
	// Points are (fraction of budget, ratio) pairs at fixed fractions.
	Points []float64 // ratio at each decile of the budget
}

// Fig10 reproduces Figure 10: the fraction of low-level paths that
// contribute new high-level paths, over time, averaged across the packages
// of each language.
func Fig10(b Budgets) []Fig10Series {
	configs := FourConfigurations(true)
	// Flatten the (language, configuration, package) grid into cells, run
	// them on the pool, and walk the results in the same nesting order.
	var cells []cell
	for _, langPkgs := range [][]*packages.Package{packages.PythonPackages(), packages.LuaPackages()} {
		for _, cfg := range configs {
			for _, p := range langPkgs {
				cells = append(cells, cell{p: p, cfg: cfg, seed: b.Seed})
			}
		}
	}
	results := runCells(b, cells)
	var out []Fig10Series
	idx := 0
	for _, langPkgs := range [][]*packages.Package{packages.PythonPackages(), packages.LuaPackages()} {
		if len(langPkgs) == 0 {
			continue
		}
		lang := langPkgs[0].Lang.String()
		for _, cfg := range configs {
			deciles := make([]float64, 10)
			counts := make([]int, 10)
			for range langPkgs {
				res := results[idx]
				idx++
				for d := 1; d <= 10; d++ {
					t := b.Time * int64(d) / 10
					// Latest sample at or before t.
					var hl, ll int64
					for _, s := range res.Series {
						if s.VirtTime > t {
							break
						}
						hl, ll = s.HLPaths, s.LLPaths
					}
					if ll > 0 {
						deciles[d-1] += float64(hl) / float64(ll)
						counts[d-1]++
					}
				}
			}
			for i := range deciles {
				if counts[i] > 0 {
					deciles[i] /= float64(counts[i])
				}
			}
			out = append(out, Fig10Series{Config: cfg.Name, Lang: lang, Points: deciles})
		}
	}
	return out
}

// RenderFig10 renders Figure 10.
func RenderFig10(series []Fig10Series) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: Fraction of low-level paths contributing new high-level paths [%], over virtual time\n")
	fmt.Fprintf(&sb, "%-7s %-22s", "Lang", "Config")
	for d := 1; d <= 10; d++ {
		fmt.Fprintf(&sb, " %5d%%", d*10)
	}
	sb.WriteString("  (of budget)\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "%-7s %-22s", s.Lang, s.Config)
		for _, v := range s.Points {
			fmt.Fprintf(&sb, " %5.1f%%", 100*v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig11Row is one Python package's high-level path count per cumulative
// optimization level, normalized to the fully optimized build (=100%).
type Fig11Row struct {
	Package string
	Tests   [4]Aggregated
	Percent [4]float64
}

// Fig11 reproduces Figure 11: the contribution of the interpreter
// optimizations, one cumulative level at a time, with path-optimized CUPA.
func Fig11(b Budgets) []Fig11Row {
	levels := minipy.OptLevels()
	pkgs := packages.PythonPackages()
	var cells []cell
	for _, p := range pkgs {
		for li, lvl := range levels {
			cfg := Configuration{Name: minipy.OptLevelNames()[li], Strategy: chef.StrategyCUPAPath, PyCfg: lvl}
			cells = append(cells, repCells(p, cfg, b)...)
		}
	}
	results := runCells(b, cells)
	var rows []Fig11Row
	idx := 0
	for _, p := range pkgs {
		row := Fig11Row{Package: p.Name}
		for li := range levels {
			t, _, _ := aggregate(results[idx : idx+b.Reps])
			idx += b.Reps
			row.Tests[li] = t
		}
		full := row.Tests[3].Mean
		if full < 1 {
			full = 1
		}
		for li := range levels {
			row.Percent[li] = 100 * row.Tests[li].Mean / full
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFig11 renders Figure 11.
func RenderFig11(rows []Fig11Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: High-level paths per interpreter optimization level (FullOpt = 100%)\n")
	fmt.Fprintf(&sb, "%-14s", "Package")
	for _, n := range minipy.OptLevelNames() {
		fmt.Fprintf(&sb, " %30s", n)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s", r.Package)
		for li := range r.Percent {
			fmt.Fprintf(&sb, "        %6.1f%% (n=%6.1f)", r.Percent[li], r.Tests[li].Mean)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig12Point is the measured overhead of CHEF relative to the dedicated
// engine for one frame count and one optimization build.
type Fig12Point struct {
	Frames   int
	Level    string
	Overhead float64 // (CHEF time per HL path) / (dedicated time per path)
}

// Fig12 reproduces Figure 12: per-path execution time of the CHEF-based
// engine relative to the NICE-like dedicated engine on the MAC-learning
// controller, for 1..maxFrames symbolic frames and each optimization build.
func Fig12(maxFrames int, b Budgets) []Fig12Point {
	const macLen = 2
	levels := minipy.OptLevels()
	names := minipy.OptLevelNames()
	// Each frame count is an independent (dedicated engine + CHEF builds)
	// measurement; fan the frame counts out over the pool and concatenate in
	// frame order.
	perFrame := make([][]Fig12Point, maxFrames)
	parfor(b.Workers(), maxFrames, func(fi int) {
		n := fi + 1
		// Dedicated engine: explore the flat controller exhaustively.
		src := packages.MacLearningFlatSource(n)
		prog := minipy.MustCompile(src)
		ded := dedicated.New(prog, dedicated.Options{})
		var args []dedicated.Value
		for i := 0; i < n; i++ {
			args = append(args, symStrArg(fmt.Sprintf("s%d", i), macLen), symStrArg(fmt.Sprintf("d%d", i), macLen))
		}
		if err := ded.Explore("drive_frames", args); err != nil {
			panic(err)
		}
		dedPaths := len(ded.Tests())
		if dedPaths == 0 {
			dedPaths = 1
		}
		dedPerPath := float64(ded.VirtualTime()) / float64(dedPaths)

		for li, lvl := range levels {
			pt := packages.MacLearningFlatTest(n, macLen, lvl)
			s := chef.NewSession(pt.Program(), chef.Options{
				Strategy:      chef.StrategyCUPAPath,
				Seed:          b.Seed,
				StepLimit:     b.StepLimit,
				SolverOptions: solver.Options{Cache: b.Cache},
			})
			tests := s.Run(b.Time)
			paths := len(tests)
			if paths == 0 {
				paths = 1
			}
			chefPerPath := float64(s.Engine().Clock()) / float64(paths)
			perFrame[fi] = append(perFrame[fi], Fig12Point{Frames: n, Level: names[li], Overhead: chefPerPath / dedPerPath})
		}
	})
	var out []Fig12Point
	for _, pts := range perFrame {
		out = append(out, pts...)
	}
	return out
}

func symStrArg(name string, n int) dedicated.Value {
	b := make([]*symexpr.Expr, n)
	for i := range b {
		b[i] = symexpr.NewVar(symexpr.Var{Buf: name, Idx: i, W: symexpr.W8})
	}
	return dedicated.StrV{B: b}
}

// RenderFig12 renders Figure 12.
func RenderFig12(points []Fig12Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 12: CHEF per-path overhead vs dedicated (NICE-like) engine, MAC-learning controller\n")
	byLevel := map[string][]Fig12Point{}
	var levels []string
	for _, p := range points {
		if _, ok := byLevel[p.Level]; !ok {
			levels = append(levels, p.Level)
		}
		byLevel[p.Level] = append(byLevel[p.Level], p)
	}
	var frames []int
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.Frames] {
			seen[p.Frames] = true
			frames = append(frames, p.Frames)
		}
	}
	sort.Ints(frames)
	fmt.Fprintf(&sb, "%-30s", "Build \\ Frames")
	for _, f := range frames {
		fmt.Fprintf(&sb, " %8d", f)
	}
	sb.WriteString("\n")
	for _, lvl := range levels {
		fmt.Fprintf(&sb, "%-30s", lvl)
		pts := byLevel[lvl]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Frames < pts[j].Frames })
		for _, p := range pts {
			fmt.Fprintf(&sb, " %7.1fx", p.Overhead)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
