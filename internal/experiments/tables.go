package experiments

import (
	"fmt"
	"strings"

	"chef/internal/packages"
)

// Table2Row summarizes the effort of preparing one interpreter for CHEF,
// in the spirit of the paper's Table 2. Because this reproduction *is* the
// interpreters' source tree, the effort columns report measurable quantities
// of the instrumented interpreters; the paper's person-day figures are
// carried for reference.
type Table2Row struct {
	Component   string
	MiniPy      string
	MiniLua     string
	PaperPython string
	PaperLua    string
}

// Table2 returns the interpreter-preparation effort summary.
func Table2() []Table2Row {
	return []Table2Row{
		{"Interpreter core", "lexer+parser+compiler+VM+runtime (Go)", "lexer+compiler+VM+runtime (Go)", "427,435 C LoC", "14,553 C LoC"},
		{"HLPC instrumentation", "1 log_pc call site in the dispatch loop", "1 log_pc call site in the dispatch loop", "47 LoC (0.01%)", "44 LoC (0.30%)"},
		{"Symbolic optimizations", "3 build flags: hash neutralization, symbolic-pointer avoidance, fast-path elimination", "same 3 build flags", "274 LoC (0.06%)", "233 LoC (1.58%)"},
		{"Branch sites (LLPCs)", fmt.Sprintf("%d instrumented sites", 38), fmt.Sprintf("%d instrumented sites", 17), "n/a (x86 PCs)", "n/a (x86 PCs)"},
		{"Test library", "symtest.PyTest (symbolic + replay runners)", "symtest.LuaTest", "103 Python LoC", "87 Lua LoC"},
		{"Developer time", "—", "—", "5 person-days", "3 person-days"},
	}
}

// RenderTable2 renders Table 2.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Effort required to support Python and Lua in CHEF\n")
	fmt.Fprintf(&sb, "%-24s | %-44s | %-40s | %-16s | %-14s\n", "Component", "MiniPy (this repo)", "MiniLua (this repo)", "Paper: Python", "Paper: Lua")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-24s | %-44s | %-40s | %-16s | %-14s\n", r.Component, r.MiniPy, r.MiniLua, r.PaperPython, r.PaperLua)
	}
	return sb.String()
}

// Table3Row is one package's testing results, as in the paper's Table 3.
type Table3Row struct {
	Package      string
	Lang         string
	LOC          int
	Type         string
	Desc         string
	CoverableLOC int
	ExcTotal     int
	ExcUndoc     int
	ExcNames     []string
	Hangs        bool
}

// Table3 runs the full engine (CUPA + optimizations) on every package and
// reports the discovered exceptions and hangs. The per-package sessions fan
// out over the worker pool; rows are assembled in registry order.
func Table3(b Budgets) []Table3Row {
	cfg := FourConfigurations(true)[3] // CUPA + optimizations
	pkgs := packages.All()
	cells := make([]cell, len(pkgs))
	for i, p := range pkgs {
		cells[i] = cell{p: p, cfg: cfg, seed: b.Seed}
	}
	results := runCells(b, cells)
	var rows []Table3Row
	for i, p := range pkgs {
		res := results[i]
		row := Table3Row{
			Package:      p.Name,
			Lang:         p.Lang.String(),
			LOC:          p.LOC(),
			Type:         p.Type,
			Desc:         p.Desc,
			CoverableLOC: p.CoverableLOC(),
			Hangs:        res.Hangs > 0,
		}
		for _, exc := range sortedKeys(res.Exceptions) {
			row.ExcTotal++
			if !p.IsDocumented(exc) {
				row.ExcUndoc++
			}
			row.ExcNames = append(row.ExcNames, exc)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable3 renders Table 3.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Testing results for the Python and Lua packages\n")
	fmt.Fprintf(&sb, "%-14s %-7s %6s %-8s %-13s %11s %7s %-32s\n",
		"Package", "Lang", "LOC", "Type", "Coverable", "Exceptions", "Hangs", "Exception types (total/undoc)")
	for _, r := range rows {
		hang := "—"
		if r.Hangs {
			hang = "HANG"
		}
		fmt.Fprintf(&sb, "%-14s %-7s %6d %-8s %13d %8d/%-2d %7s %-32s\n",
			r.Package, r.Lang, r.LOC, r.Type, r.CoverableLOC, r.ExcTotal, r.ExcUndoc, hang,
			strings.Join(r.ExcNames, ","))
	}
	return sb.String()
}

// Table4Row is one row of the language-feature support matrix.
type Table4Row struct {
	Feature  string
	CHEF     string
	CutiePy  string
	NICE     string
	Commuter string
}

// Table4 returns the feature-support comparison of Table 4. The CHEF column
// reflects this reproduction (verified by the test suite); the other columns
// carry the paper's reported assessment of the dedicated engines.
func Table4() []Table4Row {
	const (
		full = "complete"
		part = "partial"
		none = "unsupported"
	)
	return []Table4Row{
		{"Engine type", "vanilla", "vanilla", "vanilla", "model"},
		{"Integers", full, full, full, full},
		{"Strings", full, part, part, full},
		{"Floating point", "concrete-only", part, part, none},
		{"Lists and maps", full + " (internal)", part, part, full},
		{"User-defined classes", full + " (internal)", part, part, full},
		{"Data manipulation", full, part, part, part},
		{"Basic control flow", full, full, full, part},
		{"Advanced control flow", full, part, none, none},
		{"Native methods", full, part, none, none},
	}
}

// RenderTable4 renders Table 4.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Language feature support: CHEF vs dedicated engines\n")
	fmt.Fprintf(&sb, "%-24s | %-22s | %-12s | %-12s | %-12s\n", "Feature", "CHEF (this repo)", "CutiePy", "NICE", "Commuter")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-24s | %-22s | %-12s | %-12s | %-12s\n", r.Feature, r.CHEF, r.CutiePy, r.NICE, r.Commuter)
	}
	return sb.String()
}
