// Worker-pool execution layer for the experiment harness.
//
// The paper's evaluation ran its 11-package x 4-configuration grid on a
// 48-core machine; this file supplies the corresponding fan-out for the Go
// reproduction. Every CHEF session is deterministic given its seed and
// virtual clock and shares no mutable state with its siblings (each session
// owns its RNG, machine, strategy and solver), so the grid is embarrassingly
// parallel: cells execute on up to Budgets.Workers() goroutines and results
// land in slices indexed by cell position, making every table and figure
// byte-for-byte identical to the serial output regardless of scheduling.
package experiments

import (
	"sync"
	"sync/atomic"

	"chef/internal/packages"
	"chef/internal/solver"
)

// cell is one unit of grid work: one session of one package under one
// configuration and seed.
type cell struct {
	p    *packages.Package
	cfg  Configuration
	seed int64
}

// parfor runs fn(0..n-1) on at most workers goroutines and returns when all
// calls finished. workers <= 1 degrades to a plain loop on the caller's
// goroutine (the -parallel 1 serial baseline).
func parfor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runCells executes every cell on the worker pool and gathers results in
// cell order.
func runCells(b Budgets, cells []cell) []RunResult {
	out := make([]RunResult, len(cells))
	parfor(b.Workers(), len(cells), func(i int) {
		out[i] = RunPackage(cells[i].p, cells[i].cfg, b, cells[i].seed)
	})
	return out
}

// HarnessStats aggregates solver-side work across every session the harness
// has run since the last reset: how many sessions executed, how many
// satisfiability queries they issued, and how the counterexample caches
// fared. When sessions share a cache (Budgets.Cache), CacheStats of that
// cache adds eviction and entry counts.
type HarnessStats struct {
	Sessions      int64
	SolverQueries int64
	CacheHits     int64
	CacheMisses   int64
}

var harness struct {
	sessions atomic.Int64
	queries  atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
}

// recordSession folds one finished session's solver counters into the
// harness totals. Called from worker goroutines; all fields are atomics.
func recordSession(st solver.Stats) {
	harness.sessions.Add(1)
	harness.queries.Add(st.Queries)
	harness.hits.Add(st.CacheHits)
	harness.misses.Add(st.CacheMisses)
}

// HarnessSnapshot returns the accumulated harness counters.
func HarnessSnapshot() HarnessStats {
	return HarnessStats{
		Sessions:      harness.sessions.Load(),
		SolverQueries: harness.queries.Load(),
		CacheHits:     harness.hits.Load(),
		CacheMisses:   harness.misses.Load(),
	}
}

// ResetHarnessStats zeroes the harness counters (tests and the CLI call it
// between experiments).
func ResetHarnessStats() {
	harness.sessions.Store(0)
	harness.queries.Store(0)
	harness.hits.Store(0)
	harness.misses.Store(0)
}
