// Worker-pool execution layer for the experiment harness.
//
// The paper's evaluation ran its 11-package x 4-configuration grid on a
// 48-core machine; this file supplies the corresponding fan-out for the Go
// reproduction. Every CHEF session is deterministic given its seed and
// virtual clock and shares no mutable state with its siblings (each session
// owns its RNG, machine, strategy and solver), so the grid is embarrassingly
// parallel: cells execute on up to Budgets.Workers() goroutines and results
// land in slices indexed by cell position, making every table and figure
// byte-for-byte identical to the serial output regardless of scheduling.
package experiments

import (
	"sync"
	"sync/atomic"

	"chef/internal/packages"
	"chef/internal/solver"
)

// cell is one unit of grid work: one session of one package under one
// configuration and seed.
type cell struct {
	p    *packages.Package
	cfg  Configuration
	seed int64
}

// parfor runs fn(0..n-1) on at most workers goroutines and returns when all
// calls finished. workers <= 1 degrades to a plain loop on the caller's
// goroutine (the -parallel 1 serial baseline).
func parfor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runCells executes every cell on the worker pool and gathers results in
// cell order.
func runCells(b Budgets, cells []cell) []RunResult {
	out := make([]RunResult, len(cells))
	parfor(b.Workers(), len(cells), func(i int) {
		out[i] = runPackageCell(cells[i].p, cells[i].cfg, b, cells[i].seed, i)
	})
	return out
}

// HarnessStats aggregates solver-side work across every session the harness
// has run since the last reset: how many sessions executed, plus the full
// solver counter set summed over all sessions. The headline fields mirror
// the totals callers printed historically; Solver carries everything else
// (propagations, conflicts, per-result query counts). When sessions share a
// cache (Budgets.Cache), CacheStats of that cache adds eviction and entry
// counts.
type HarnessStats struct {
	Sessions      int64
	SolverQueries int64
	CacheHits     int64
	CacheMisses   int64
	Solver        solver.Stats
}

var harness struct {
	mu       sync.Mutex
	sessions int64
	solver   solver.Stats
}

// recordSession folds one finished session's solver snapshot into the
// harness totals via solver.Stats.Add (the canonical merge helper — not
// ad-hoc field sums). Called from worker goroutines under a short mutex.
func recordSession(st solver.Stats) {
	harness.mu.Lock()
	harness.sessions++
	harness.solver.Add(st)
	harness.mu.Unlock()
}

// HarnessSnapshot returns the accumulated harness counters.
func HarnessSnapshot() HarnessStats {
	harness.mu.Lock()
	defer harness.mu.Unlock()
	return HarnessStats{
		Sessions:      harness.sessions,
		SolverQueries: harness.solver.Queries,
		CacheHits:     harness.solver.CacheHits,
		CacheMisses:   harness.solver.CacheMisses,
		Solver:        harness.solver,
	}
}

// ResetHarnessStats zeroes the harness counters (tests and the CLI call it
// between experiments).
func ResetHarnessStats() {
	harness.mu.Lock()
	harness.sessions = 0
	harness.solver = solver.Stats{}
	harness.mu.Unlock()
}
