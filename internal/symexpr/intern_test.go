package symexpr

import (
	"math/rand"
	"sync"
	"testing"
)

// randExprFrom builds a random expression driven by r, over a small shared
// variable pool, hitting every constructor family.
func randExprFrom(r *rand.Rand, depth int) *Expr {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return NewVar(Var{Buf: "x", Idx: r.Intn(3), W: W8})
		case 1:
			return NewVar(Var{Buf: "y", W: W8})
		case 2:
			return Const(uint64(r.Intn(256)), W8)
		default:
			return Const(uint64(r.Intn(2)), W8)
		}
	}
	x := randExprFrom(r, depth-1)
	switch r.Intn(14) {
	case 0:
		return Not(x)
	case 1:
		return Neg(x)
	case 2:
		return Trunc(ZExt(x, W32), W8)
	case 3:
		return Trunc(SExt(x, W16), W8)
	case 4:
		return Ite(Ult(x, randExprFrom(r, depth-1)), x, randExprFrom(r, depth-1))
	default:
		y := randExprFrom(r, depth-1)
		ops := []func(a, b *Expr) *Expr{Add, Sub, Mul, And, Or, Xor, UDiv, URem, Shl, LShr}
		return ops[r.Intn(len(ops))](x, y)
	}
}

// TestInterningCanonical is the hash-consing contract: building the same
// random expression twice from the same seed yields the same pointer, and
// pointer equality coincides with structural equality (checked through the
// process-independent Compare order, which must agree).
func TestInterningCanonical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := randExprFrom(rand.New(rand.NewSource(seed)), 5)
		b := randExprFrom(rand.New(rand.NewSource(seed)), 5)
		if a != b {
			t.Fatalf("seed %d: identical construction produced distinct pointers:\n%v\n%v", seed, a, b)
		}
		if !Equal(a, b) || Compare(a, b) != 0 {
			t.Fatalf("seed %d: Equal/Compare disagree with pointer identity", seed)
		}
		if a.ID() != b.ID() || a.Hash() != b.Hash() {
			t.Fatalf("seed %d: ID/Hash not stable across reconstruction", seed)
		}
	}
	// Distinct structures must get distinct pointers and nonzero Compare.
	x := NewVar(Var{Buf: "x", W: W8})
	y := NewVar(Var{Buf: "y", W: W8})
	if x == y || Compare(x, y) == 0 {
		t.Fatal("distinct variables interned to one node")
	}
	if Compare(x, y) != -Compare(y, x) {
		t.Fatal("Compare is not antisymmetric")
	}
}

// TestInterningConcurrent hammers the interner from many goroutines building
// overlapping expression sets; under -race this validates the sharded
// locking, and afterwards every goroutine must have received the same
// pointer for the same structure.
func TestInterningConcurrent(t *testing.T) {
	const (
		workers = 8
		perSeed = 40
	)
	results := make([][]*Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]*Expr, perSeed)
			for seed := 0; seed < perSeed; seed++ {
				out[seed] = randExprFrom(rand.New(rand.NewSource(int64(seed))), 5)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for seed := 0; seed < perSeed; seed++ {
			if results[w][seed] != results[0][seed] {
				t.Fatalf("worker %d seed %d: interner returned a different canonical pointer", w, seed)
			}
		}
	}
}

// TestSimplifyPreservesSemantics: whatever rewrites the constructors apply,
// the built expression must evaluate exactly like the unsimplified operator
// semantics (foldBin / Eval) under random environments. This pins every
// algebraic simplification in simplifyBinary to the interpreter semantics.
func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	type binOp struct {
		op    Op
		build func(a, b *Expr) *Expr
	}
	ops := []binOp{
		{OpAdd, Add}, {OpSub, Sub}, {OpMul, Mul}, {OpUDiv, UDiv}, {OpURem, URem},
		{OpAnd, And}, {OpOr, Or}, {OpXor, Xor}, {OpShl, Shl}, {OpLShr, LShr},
		{OpEq, Eq}, {OpUlt, Ult}, {OpUle, Ule}, {OpSlt, Slt}, {OpSle, Sle},
	}
	for trial := 0; trial < 3000; trial++ {
		x := randExprFrom(r, 2)
		y := randExprFrom(r, 2)
		o := ops[r.Intn(len(ops))]
		built := o.build(x, y)
		env := Assignment{}
		for _, v := range Vars(x) {
			env[v] = r.Uint64() & v.W.Mask()
		}
		for _, v := range Vars(y) {
			if _, ok := env[v]; !ok {
				env[v] = r.Uint64() & v.W.Mask()
			}
		}
		want := foldBin(o.op, Eval(x, env), Eval(y, env), x.Width())
		if got := Eval(built, env); got != want {
			t.Fatalf("trial %d: op %v over\n  x=%v\n  y=%v\n  env=%v\nsimplified to %v evaluating to %d, want %d",
				trial, o.op, x, y, env, built, got, want)
		}
	}
}

// TestCompareTotalOrder checks Compare is a consistent total order over a
// random population: antisymmetric, transitive on sampled triples, and zero
// exactly on pointer-equal nodes.
func TestCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	pop := make([]*Expr, 60)
	for i := range pop {
		pop[i] = randExprFrom(r, 3)
	}
	for i := range pop {
		for j := range pop {
			cij := Compare(pop[i], pop[j])
			if (cij == 0) != (pop[i] == pop[j]) {
				t.Fatalf("Compare==0 must coincide with interned identity (%d,%d)", i, j)
			}
			if sign(cij) != -sign(Compare(pop[j], pop[i])) {
				t.Fatalf("Compare not antisymmetric on (%d,%d)", i, j)
			}
		}
	}
	for trial := 0; trial < 3000; trial++ {
		a, b, c := pop[r.Intn(len(pop))], pop[r.Intn(len(pop))], pop[r.Intn(len(pop))]
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("Compare not transitive on sampled triple:\n%v\n%v\n%v", a, b, c)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// TestEncodeDecodeRoundTrip: the binary codec must reproduce the identical
// interned node for random expressions, and consume exactly the bytes it
// wrote.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 500; trial++ {
		e := randExprFrom(r, 5)
		buf := AppendExpr(nil, e)
		got, n, err := DecodeExpr(buf)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if n != len(buf) {
			t.Fatalf("trial %d: decoded %d of %d bytes", trial, n, len(buf))
		}
		if got != e {
			t.Fatalf("trial %d: round trip lost identity:\n in: %v\nout: %v", trial, e, got)
		}
	}
	// Concatenated encodings decode in sequence.
	a := NewVar(Var{Buf: "x", W: W8})
	b := Ult(a, Const(7, W8))
	buf := AppendExpr(AppendExpr(nil, a), b)
	g1, n1, err := DecodeExpr(buf)
	if err != nil || g1 != a {
		t.Fatalf("first decode: %v %v", g1, err)
	}
	g2, _, err := DecodeExpr(buf[n1:])
	if err != nil || g2 != b {
		t.Fatalf("second decode: %v %v", g2, err)
	}
}

// TestDecodeRejectsCorruption: truncations and byte flips of a valid
// encoding must decode to an error or to a *valid* expression (a flip can
// produce a different well-formed term), never panic or produce a malformed
// node.
func TestDecodeRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	e := randExprFrom(r, 5)
	buf := AppendExpr(nil, e)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeExpr(buf[:cut]); err == nil {
			// A prefix can be a complete encoding of a subterm only if the
			// whole buffer is consumed; DecodeExpr reports consumed bytes, so
			// success on a strict prefix is legitimate only when the decoder
			// stopped early at a valid boundary — which cannot happen for a
			// preorder encoding cut mid-stream except at position boundaries
			// of the root's first complete subtree. Verify it returned a
			// structurally valid node at least.
			got, n, _ := DecodeExpr(buf[:cut])
			if got == nil || n > cut {
				t.Fatalf("cut %d: invalid success", cut)
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), buf...)
		mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		got, _, err := DecodeExpr(mut) // must not panic
		if err == nil && got == nil {
			t.Fatalf("trial %d: nil expression without error", trial)
		}
	}
	// Deep nesting must be rejected, not overflow the stack.
	deep := make([]byte, 0, maxDecodeDepth+10)
	for i := 0; i < maxDecodeDepth+5; i++ {
		deep = append(deep, encNode, byte(OpNot), byte(W8), 1)
	}
	if _, _, err := DecodeExpr(deep); err == nil {
		t.Fatal("over-deep encoding decoded without error")
	}
}

// TestInternedCountMonotone sanity-checks the observability counter.
func TestInternedCountMonotone(t *testing.T) {
	before := InternedCount()
	NewVar(Var{Buf: "intern-count-probe", W: W64})
	after := InternedCount()
	if after < before+1 {
		t.Fatalf("InternedCount did not grow: %d -> %d", before, after)
	}
	NewVar(Var{Buf: "intern-count-probe", W: W64}) // already interned
	if InternedCount() != after {
		t.Fatal("re-interning an existing node changed the count")
	}
}
