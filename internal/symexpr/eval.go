package symexpr

// Assignment maps input variables to concrete values. Values are stored
// masked to the variable width.
type Assignment map[Var]uint64

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Eval evaluates the expression under the assignment. Unassigned variables
// evaluate to zero, which matches the engine's convention that fresh
// symbolic inputs default to zero bytes.
func Eval(e *Expr, a Assignment) uint64 {
	switch {
	case e.IsConst():
		return e.val
	case e.IsVar():
		return a[*e.varr] & e.w.Mask()
	}
	switch e.op {
	case OpNot:
		return ^Eval(e.kids[0], a) & e.w.Mask()
	case OpNeg:
		return -Eval(e.kids[0], a) & e.w.Mask()
	case OpZExt:
		return Eval(e.kids[0], a)
	case OpSExt:
		return uint64(signExtend(Eval(e.kids[0], a), e.kids[0].w)) & e.w.Mask()
	case OpTrunc:
		return Eval(e.kids[0], a) & e.w.Mask()
	case OpIte:
		if Eval(e.kids[0], a) != 0 {
			return Eval(e.kids[1], a)
		}
		return Eval(e.kids[2], a)
	default:
		x := Eval(e.kids[0], a)
		y := Eval(e.kids[1], a)
		return foldBin(e.op, x, y, e.kids[0].w)
	}
}

// EvalBool evaluates a width-1 expression as a boolean.
func EvalBool(e *Expr, a Assignment) bool { return Eval(e, a) != 0 }

// CollectVars appends every distinct variable occurring in e to dst, using
// seen to deduplicate across calls. It returns the extended slice.
func CollectVars(e *Expr, seen map[Var]bool, dst []Var) []Var {
	if !e.syms {
		return dst
	}
	if e.IsVar() {
		if !seen[*e.varr] {
			seen[*e.varr] = true
			dst = append(dst, *e.varr)
		}
		return dst
	}
	for _, k := range e.kids {
		dst = CollectVars(k, seen, dst)
	}
	return dst
}

// Vars returns the distinct variables of e.
func Vars(e *Expr) []Var { return CollectVars(e, map[Var]bool{}, nil) }
