package symexpr

import (
	bin "encoding/binary"
	"errors"
	"fmt"
)

// Binary expression codec.
//
// The persistent counterexample cache (internal/solver) stores canonicalized
// queries on disk and must reload them in a later process, where interning
// IDs differ. Expressions are therefore serialized structurally, and decoding
// rebuilds nodes through the interner *without* re-running constructor
// simplifications: stored expressions already came out of the constructors,
// and re-simplifying on load could silently change them whenever a rewrite
// rule evolves, breaking the pointer-exact match the cache depends on. A
// decoded expression that no longer matches anything the current engine
// builds is merely a dead cache entry, never an error.
//
// Decoding validates every structural invariant the constructors enforce
// (widths, arities, operand-width agreement), so a corrupted or adversarial
// byte stream yields an error, never a malformed Expr or a panic.

// Encoding tags.
const (
	encConst byte = 0
	encVar   byte = 1
	encNode  byte = 2
)

// maxDecodeDepth bounds expression nesting during decoding so hostile inputs
// cannot overflow the stack.
const maxDecodeDepth = 4096

// maxVarName bounds decoded variable-name lengths.
const maxVarName = 1 << 12

// AppendExpr appends the binary encoding of e to dst and returns the
// extended slice. The encoding is a preorder walk; shared subtrees are
// re-encoded (queries stored by the cache are small after slicing and
// canonicalization, so tree-expansion blowup is not a concern at this
// layer).
func AppendExpr(dst []byte, e *Expr) []byte {
	switch {
	case e.IsConst():
		dst = append(dst, encConst, byte(e.w))
		dst = bin.AppendUvarint(dst, e.val)
	case e.IsVar():
		dst = append(dst, encVar, byte(e.w))
		dst = bin.AppendUvarint(dst, uint64(len(e.varr.Buf)))
		dst = append(dst, e.varr.Buf...)
		dst = bin.AppendUvarint(dst, uint64(e.varr.Idx))
	default:
		dst = append(dst, encNode, byte(e.op), byte(e.w), byte(len(e.kids)))
		for _, k := range e.kids {
			dst = AppendExpr(dst, k)
		}
	}
	return dst
}

// DecodeExpr decodes one expression from the front of data, returning the
// interned expression and the number of bytes consumed. The returned
// expression is canonical: pointer-identical to any structurally equal
// expression built by the constructors in this process.
func DecodeExpr(data []byte) (*Expr, int, error) {
	d := decoder{data: data}
	e, err := d.expr(0)
	if err != nil {
		return nil, 0, err
	}
	return e, d.pos, nil
}

type decoder struct {
	data []byte
	pos  int
}

var errTruncated = errors.New("symexpr: truncated expression encoding")

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, errTruncated
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := bin.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.pos += n
	return v, nil
}

func validWidth(b byte) (Width, bool) {
	switch Width(b) {
	case W1, W8, W16, W32, W64:
		return Width(b), true
	}
	return 0, false
}

func (d *decoder) expr(depth int) (*Expr, error) {
	if depth > maxDecodeDepth {
		return nil, errors.New("symexpr: expression nesting too deep")
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case encConst:
		wb, err := d.byte()
		if err != nil {
			return nil, err
		}
		w, ok := validWidth(wb)
		if !ok {
			return nil, fmt.Errorf("symexpr: bad width %d", wb)
		}
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if v&^w.Mask() != 0 {
			return nil, fmt.Errorf("symexpr: constant %d exceeds width %d", v, w)
		}
		return newConst(v, w), nil

	case encVar:
		wb, err := d.byte()
		if err != nil {
			return nil, err
		}
		w, ok := validWidth(wb)
		if !ok {
			return nil, fmt.Errorf("symexpr: bad width %d", wb)
		}
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxVarName || d.pos+int(n) > len(d.data) {
			return nil, errTruncated
		}
		buf := string(d.data[d.pos : d.pos+int(n)])
		d.pos += int(n)
		idx, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if idx > 1<<31 {
			return nil, fmt.Errorf("symexpr: variable index %d out of range", idx)
		}
		return NewVar(Var{Buf: buf, Idx: int(idx), W: w}), nil

	case encNode:
		opb, err := d.byte()
		if err != nil {
			return nil, err
		}
		wb, err := d.byte()
		if err != nil {
			return nil, err
		}
		w, ok := validWidth(wb)
		if !ok {
			return nil, fmt.Errorf("symexpr: bad width %d", wb)
		}
		nk, err := d.byte()
		if err != nil {
			return nil, err
		}
		op := Op(opb)
		kids := make([]*Expr, 0, nk)
		for i := 0; i < int(nk); i++ {
			k, err := d.expr(depth + 1)
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
		}
		if err := checkNode(op, w, kids); err != nil {
			return nil, err
		}
		return newNode(op, w, kids...), nil
	}
	return nil, fmt.Errorf("symexpr: bad encoding tag %d", tag)
}

// checkNode enforces the structural invariants the public constructors
// guarantee, so decoded nodes are indistinguishable from built ones.
func checkNode(op Op, w Width, kids []*Expr) error {
	arity := func(n int) error {
		if len(kids) != n {
			return fmt.Errorf("symexpr: op %s wants %d operands, got %d", op, n, len(kids))
		}
		return nil
	}
	switch op {
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor, OpShl, OpLShr:
		if err := arity(2); err != nil {
			return err
		}
		if kids[0].w != kids[1].w || kids[0].w != w {
			return fmt.Errorf("symexpr: op %s width mismatch", op)
		}
	case OpEq, OpUlt, OpUle, OpSlt, OpSle:
		if err := arity(2); err != nil {
			return err
		}
		if kids[0].w != kids[1].w || w != W1 {
			return fmt.Errorf("symexpr: op %s width mismatch", op)
		}
	case OpNot, OpNeg:
		if err := arity(1); err != nil {
			return err
		}
		if kids[0].w != w {
			return fmt.Errorf("symexpr: op %s width mismatch", op)
		}
	case OpZExt, OpSExt:
		if err := arity(1); err != nil {
			return err
		}
		if kids[0].w >= w {
			return fmt.Errorf("symexpr: %s to non-wider width", op)
		}
	case OpTrunc:
		if err := arity(1); err != nil {
			return err
		}
		if kids[0].w <= w {
			return fmt.Errorf("symexpr: trunc to non-narrower width")
		}
	case OpIte:
		if err := arity(3); err != nil {
			return err
		}
		if kids[0].w != W1 || kids[1].w != kids[2].w || kids[1].w != w {
			return fmt.Errorf("symexpr: ite width mismatch")
		}
	default:
		return fmt.Errorf("symexpr: bad op %d", uint8(op))
	}
	return nil
}
