package symexpr

import "fmt"

// checkSameWidth panics when the operand widths of a binary operator differ.
// Width mismatches are programming errors in the engine, not user errors.
func checkSameWidth(op Op, x, y *Expr) {
	if x.w != y.w {
		panic(fmt.Sprintf("symexpr: %s operand widths differ: %d vs %d", op, x.w, y.w))
	}
}

func foldBin(op Op, x, y uint64, w Width) uint64 {
	m := w.Mask()
	x &= m
	y &= m
	switch op {
	case OpAdd:
		return (x + y) & m
	case OpSub:
		return (x - y) & m
	case OpMul:
		return (x * y) & m
	case OpUDiv:
		if y == 0 {
			return m // division by zero yields all-ones, as in SMT-LIB
		}
		return (x / y) & m
	case OpURem:
		if y == 0 {
			return x
		}
		return (x % y) & m
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		if y >= uint64(w) {
			return 0
		}
		return (x << y) & m
	case OpLShr:
		if y >= uint64(w) {
			return 0
		}
		return x >> y
	case OpEq:
		return b2u(x == y)
	case OpUlt:
		return b2u(x < y)
	case OpUle:
		return b2u(x <= y)
	case OpSlt:
		return b2u(signExtend(x, w) < signExtend(y, w))
	case OpSle:
		return b2u(signExtend(x, w) <= signExtend(y, w))
	}
	panic("symexpr: foldBin: bad op " + op.String())
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func signExtend(v uint64, w Width) int64 {
	if w >= 64 {
		return int64(v)
	}
	sign := uint64(1) << (w - 1)
	v &= w.Mask()
	if v&sign != 0 {
		v |= ^w.Mask()
	}
	return int64(v)
}

// SignExtendConst exposes sign extension of a raw constant for callers that
// need to interpret bit-vector values as signed integers.
func SignExtendConst(v uint64, w Width) int64 { return signExtend(v, w) }

func binary(op Op, x, y *Expr) *Expr {
	checkSameWidth(op, x, y)
	w := x.w
	rw := w
	switch op {
	case OpEq, OpUlt, OpUle, OpSlt, OpSle:
		rw = W1
	}
	if x.IsConst() && y.IsConst() {
		return Const(foldBin(op, x.val, y.val, w), rw)
	}
	// Canonicalize constants to the right for commutative operators so the
	// simplifier only has to look in one place.
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq:
		if x.IsConst() {
			x, y = y, x
		}
	}
	if s := simplifyBinary(op, x, y, w, rw); s != nil {
		return s
	}
	return newNode(op, rw, x, y)
}

// simplifyBinary applies cheap algebraic identities. It returns nil when no
// simplification applies. Constants have been canonicalized to y for
// commutative operators.
func simplifyBinary(op Op, x, y *Expr, w, rw Width) *Expr {
	yc := y.IsConst()
	switch op {
	case OpAdd:
		if yc && y.val == 0 {
			return x
		}
		// (x + c1) + c2 => x + (c1+c2): flattening constant chains keeps the
		// terms produced by interpreter loops (counters, hash mixing) small.
		if yc && x.op == OpAdd && x.kids[1].IsConst() {
			return Add(x.kids[0], Const(x.kids[1].val+y.val, w))
		}
		if yc && x.op == OpSub && x.kids[1].IsConst() {
			return Sub(x.kids[0], Const(x.kids[1].val-y.val, w))
		}
	case OpSub:
		if yc && y.val == 0 {
			return x
		}
		if Equal(x, y) {
			return Const(0, w)
		}
		// (x + c1) - c2 => x + (c1-c2); (x - c1) - c2 => x - (c1+c2).
		if yc && x.op == OpAdd && x.kids[1].IsConst() {
			return Add(x.kids[0], Const(x.kids[1].val-y.val, w))
		}
		if yc && x.op == OpSub && x.kids[1].IsConst() {
			return Sub(x.kids[0], Const(x.kids[1].val+y.val, w))
		}
	case OpMul:
		if yc {
			switch y.val {
			case 0:
				return Const(0, w)
			case 1:
				return x
			}
		}
	case OpAnd:
		if yc {
			if y.val == 0 {
				return Const(0, w)
			}
			if y.val == w.Mask() {
				return x
			}
		}
		if Equal(x, y) {
			return x
		}
	case OpOr:
		if yc {
			if y.val == 0 {
				return x
			}
			if y.val == w.Mask() {
				return Const(w.Mask(), w)
			}
		}
		if Equal(x, y) {
			return x
		}
	case OpXor:
		if yc && y.val == 0 {
			return x
		}
		if Equal(x, y) {
			return Const(0, w)
		}
	case OpShl, OpLShr:
		if yc && y.val == 0 {
			return x
		}
		if x.IsConst() && x.val == 0 {
			return Const(0, w)
		}
	case OpEq:
		if Equal(x, y) {
			return True
		}
		// eq(not(a), 0) at width 1 => a ; eq(a, 1) at width 1 => a
		if w == W1 && yc {
			if y.val == 1 {
				return x
			}
			// y.val == 0: eq(a,0) == not(a)
			return Not(x)
		}
		// eq(x + c1, c2) => eq(x, c2-c1): solves the accumulator shapes from
		// int() parsing and string hashing without touching the SAT solver.
		if yc && x.op == OpAdd && x.kids[1].IsConst() {
			return Eq(x.kids[0], Const(y.val-x.kids[1].val, x.w))
		}
		if yc && x.op == OpSub && x.kids[1].IsConst() {
			return Eq(x.kids[0], Const(y.val+x.kids[1].val, x.w))
		}
		// eq(zext(a), c): either folds to false (c exceeds a's range) or
		// narrows to eq(a, c).
		if yc && x.op == OpZExt {
			inner := x.kids[0]
			if y.val&^inner.w.Mask() != 0 {
				return False
			}
			return Eq(inner, Const(y.val, inner.w))
		}
	case OpUlt:
		if Equal(x, y) {
			return False
		}
		if yc && y.val == 0 {
			return False // nothing is unsigned-less than 0
		}
		if x.IsConst() && x.val == w.Mask() {
			return False
		}
	case OpUle:
		if Equal(x, y) {
			return True
		}
		if x.IsConst() && x.val == 0 {
			return True
		}
		if yc && y.val == w.Mask() {
			return True
		}
	case OpSlt:
		if Equal(x, y) {
			return False
		}
	case OpSle:
		if Equal(x, y) {
			return True
		}
	}
	return nil
}

// Add returns x + y.
func Add(x, y *Expr) *Expr { return binary(OpAdd, x, y) }

// Sub returns x - y.
func Sub(x, y *Expr) *Expr { return binary(OpSub, x, y) }

// Mul returns x * y.
func Mul(x, y *Expr) *Expr { return binary(OpMul, x, y) }

// UDiv returns the unsigned quotient x / y (all-ones when y is zero).
func UDiv(x, y *Expr) *Expr { return binary(OpUDiv, x, y) }

// URem returns the unsigned remainder x % y (x when y is zero).
func URem(x, y *Expr) *Expr { return binary(OpURem, x, y) }

// And returns the bitwise conjunction.
func And(x, y *Expr) *Expr { return binary(OpAnd, x, y) }

// Or returns the bitwise disjunction.
func Or(x, y *Expr) *Expr { return binary(OpOr, x, y) }

// Xor returns the bitwise exclusive or.
func Xor(x, y *Expr) *Expr { return binary(OpXor, x, y) }

// Shl returns x shifted left by y bits.
func Shl(x, y *Expr) *Expr { return binary(OpShl, x, y) }

// LShr returns x logically shifted right by y bits.
func LShr(x, y *Expr) *Expr { return binary(OpLShr, x, y) }

// Eq returns the width-1 comparison x == y.
func Eq(x, y *Expr) *Expr { return binary(OpEq, x, y) }

// Ne returns the width-1 comparison x != y.
func Ne(x, y *Expr) *Expr { return Not(Eq(x, y)) }

// Ult returns the width-1 unsigned comparison x < y.
func Ult(x, y *Expr) *Expr { return binary(OpUlt, x, y) }

// Ule returns the width-1 unsigned comparison x <= y.
func Ule(x, y *Expr) *Expr { return binary(OpUle, x, y) }

// Slt returns the width-1 signed comparison x < y.
func Slt(x, y *Expr) *Expr { return binary(OpSlt, x, y) }

// Sle returns the width-1 signed comparison x <= y.
func Sle(x, y *Expr) *Expr { return binary(OpSle, x, y) }

// Not returns the bitwise complement; at width 1 it is logical negation.
func Not(x *Expr) *Expr {
	if x.IsConst() {
		return Const(^x.val, x.w)
	}
	if x.op == OpNot {
		return x.kids[0]
	}
	return newNode(OpNot, x.w, x)
}

// Neg returns the two's-complement negation of x.
func Neg(x *Expr) *Expr {
	if x.IsConst() {
		return Const(-x.val, x.w)
	}
	if x.op == OpNeg {
		return x.kids[0]
	}
	return newNode(OpNeg, x.w, x)
}

// ZExt zero-extends x to width w. Extending to the same width is the
// identity; extending to a smaller width panics.
func ZExt(x *Expr, w Width) *Expr {
	if w == x.w {
		return x
	}
	if w < x.w {
		panic("symexpr: ZExt to narrower width")
	}
	if x.IsConst() {
		return Const(x.val, w)
	}
	return newNode(OpZExt, w, x)
}

// SExt sign-extends x to width w.
func SExt(x *Expr, w Width) *Expr {
	if w == x.w {
		return x
	}
	if w < x.w {
		panic("symexpr: SExt to narrower width")
	}
	if x.IsConst() {
		return Const(uint64(signExtend(x.val, x.w)), w)
	}
	return newNode(OpSExt, w, x)
}

// Trunc truncates x to width w.
func Trunc(x *Expr, w Width) *Expr {
	if w == x.w {
		return x
	}
	if w > x.w {
		panic("symexpr: Trunc to wider width")
	}
	if x.IsConst() {
		return Const(x.val, w)
	}
	if x.op == OpZExt || x.op == OpSExt {
		if x.kids[0].w == w {
			return x.kids[0]
		}
		if x.kids[0].w > w {
			return Trunc(x.kids[0], w)
		}
	}
	return newNode(OpTrunc, w, x)
}

// Ite returns "if c then t else f"; c must have width 1 and t, f must share
// a width.
func Ite(c, t, f *Expr) *Expr {
	if c.w != W1 {
		panic("symexpr: Ite condition must be width 1")
	}
	checkSameWidth(OpIte, t, f)
	if c.IsConst() {
		if c.val != 0 {
			return t
		}
		return f
	}
	if Equal(t, f) {
		return t
	}
	return newNode(OpIte, t.w, c, t, f)
}

// BoolAnd returns the width-1 conjunction.
func BoolAnd(x, y *Expr) *Expr {
	if x.w != W1 || y.w != W1 {
		panic("symexpr: BoolAnd needs width-1 operands")
	}
	return And(x, y)
}

// BoolOr returns the width-1 disjunction.
func BoolOr(x, y *Expr) *Expr {
	if x.w != W1 || y.w != W1 {
		panic("symexpr: BoolOr needs width-1 operands")
	}
	return Or(x, y)
}
