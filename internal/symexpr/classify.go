package symexpr

// Boolean-skeleton classification for the solver's BDD fast path. A width-1
// expression decomposes into propositional *connectives* (not/and/or/xor,
// iff, if-then-else — all over width-1 operands) applied to *atoms*: the
// maximal width-1 subexpressions that are not themselves connectives (boolean
// input variables, comparisons over wider bit-vectors, ...). Treating each
// distinct atom as an opaque propositional variable is a sound abstraction:
// a propositionally unsatisfiable skeleton is unsatisfiable under any theory
// interpretation of its atoms.

// IsBoolConnective reports whether e is a propositional connective: a
// width-1 node whose truth is a pure function of width-1 operands. Width-1
// And/Or/Xor/Not are the usual connectives; Eq over width-1 operands is iff;
// Ite with width-1 branches is a propositional conditional (its condition is
// width 1 by construction).
func IsBoolConnective(e *Expr) bool {
	if e.Width() != W1 {
		return false
	}
	switch e.Op() {
	case OpAnd, OpOr, OpXor, OpNot:
		return true
	case OpEq:
		return e.Child(0).Width() == W1
	case OpIte:
		return e.Child(1).Width() == W1
	}
	return false
}

// WalkBoolAtoms calls f for every atom of e's boolean skeleton, in
// deterministic left-to-right syntactic order, possibly with repeats (hash
// consing makes deduplication by pointer trivial for callers that need it).
// Width-1 constants are part of the skeleton, not atoms, and are skipped.
// e must have width 1.
func WalkBoolAtoms(e *Expr, f func(atom *Expr)) {
	if e.IsConst() {
		return
	}
	if !IsBoolConnective(e) {
		f(e)
		return
	}
	for i := 0; i < e.NumChildren(); i++ {
		WalkBoolAtoms(e.Child(i), f)
	}
}
