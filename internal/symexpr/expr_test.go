package symexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		name string
		got  *Expr
		want uint64
	}{
		{"add", Add(Const(3, W8), Const(250, W8)), 253},
		{"add-wrap", Add(Const(200, W8), Const(100, W8)), 44},
		{"sub-wrap", Sub(Const(1, W8), Const(2, W8)), 255},
		{"mul", Mul(Const(16, W8), Const(16, W8)), 0},
		{"udiv", UDiv(Const(17, W8), Const(5, W8)), 3},
		{"udiv-zero", UDiv(Const(17, W8), Const(0, W8)), 255},
		{"urem", URem(Const(17, W8), Const(5, W8)), 2},
		{"urem-zero", URem(Const(17, W8), Const(0, W8)), 17},
		{"and", And(Const(0xf0, W8), Const(0x3c, W8)), 0x30},
		{"or", Or(Const(0xf0, W8), Const(0x0c, W8)), 0xfc},
		{"xor", Xor(Const(0xff, W8), Const(0x0f, W8)), 0xf0},
		{"shl", Shl(Const(1, W8), Const(3, W8)), 8},
		{"shl-over", Shl(Const(1, W8), Const(9, W8)), 0},
		{"lshr", LShr(Const(0x80, W8), Const(7, W8)), 1},
		{"eq-t", Eq(Const(5, W8), Const(5, W8)), 1},
		{"eq-f", Eq(Const(5, W8), Const(6, W8)), 0},
		{"ult", Ult(Const(5, W8), Const(6, W8)), 1},
		{"slt", Slt(Const(0xff, W8), Const(0, W8)), 1}, // -1 < 0 signed
		{"sle", Sle(Const(0x80, W8), Const(0x7f, W8)), 1},
		{"not", Not(Const(0xf0, W8)), 0x0f},
		{"neg", Neg(Const(1, W8)), 0xff},
		{"zext", ZExt(Const(0xff, W8), W32), 0xff},
		{"sext", SExt(Const(0xff, W8), W32), 0xffffffff},
		{"trunc", Trunc(Const(0x1234, W32), W8), 0x34},
		{"ite-t", Ite(True, Const(1, W8), Const(2, W8)), 1},
		{"ite-f", Ite(False, Const(1, W8), Const(2, W8)), 2},
	}
	for _, c := range cases {
		if !c.got.IsConst() {
			t.Errorf("%s: not folded to constant: %v", c.name, c.got)
			continue
		}
		if c.got.ConstVal() != c.want {
			t.Errorf("%s: got %d, want %d", c.name, c.got.ConstVal(), c.want)
		}
	}
}

func TestSimplifications(t *testing.T) {
	x := NewVar(Var{Buf: "x", W: W8})
	if got := Add(x, Const(0, W8)); got != x {
		t.Errorf("x+0 != x: %v", got)
	}
	if got := Mul(x, Const(1, W8)); got != x {
		t.Errorf("x*1 != x: %v", got)
	}
	if got := Mul(x, Const(0, W8)); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("x*0 != 0: %v", got)
	}
	if got := Sub(x, x); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("x-x != 0: %v", got)
	}
	if got := Xor(x, x); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("x^x != 0: %v", got)
	}
	if got := Eq(x, x); got != True {
		t.Errorf("x==x != true: %v", got)
	}
	if got := Ult(x, Const(0, W8)); got != False {
		t.Errorf("x<0 unsigned != false: %v", got)
	}
	if got := Not(Not(x)); got != x {
		t.Errorf("not(not(x)) != x: %v", got)
	}
	if got := And(x, Const(0xff, W8)); got != x {
		t.Errorf("x&0xff != x: %v", got)
	}
	b := NewVar(Var{Buf: "b", W: W1})
	if got := Eq(b, Const(1, W1)); got != b {
		t.Errorf("b==1 != b: %v", got)
	}
	if got := Eq(b, Const(0, W1)); got.Op() != OpNot {
		t.Errorf("b==0 should be not(b): %v", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	Add(Const(1, W8), Const(1, W32))
}

func TestEqualAndHash(t *testing.T) {
	x := NewVar(Var{Buf: "x", W: W8})
	y := NewVar(Var{Buf: "y", W: W8})
	a := Add(x, y)
	b := Add(NewVar(Var{Buf: "x", W: W8}), NewVar(Var{Buf: "y", W: W8}))
	if !Equal(a, b) {
		t.Error("structurally equal expressions compare unequal")
	}
	if a.Hash() != b.Hash() {
		t.Error("structurally equal expressions hash differently")
	}
	c := Add(y, x)
	if Equal(a, c) {
		t.Error("add(x,y) should differ from add(y,x) structurally")
	}
}

func TestEvalMatchesFold(t *testing.T) {
	// Property: evaluating an expression built from variables under an
	// assignment equals building the same expression from constants.
	f := func(av, bv uint8, pick uint8) bool {
		x := NewVar(Var{Buf: "x", W: W8})
		y := NewVar(Var{Buf: "y", W: W8})
		env := Assignment{Var{Buf: "x", W: W8}: uint64(av), Var{Buf: "y", W: W8}: uint64(bv)}
		ops := []func(a, b *Expr) *Expr{Add, Sub, Mul, UDiv, URem, And, Or, Xor, Shl, LShr, Eq, Ult, Ule, Slt, Sle}
		op := ops[int(pick)%len(ops)]
		sym := op(x, y)
		conc := op(Const(uint64(av), W8), Const(uint64(bv), W8))
		return Eval(sym, env) == conc.ConstVal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVarsCollection(t *testing.T) {
	x := NewVar(Var{Buf: "x", W: W8})
	y := NewVar(Var{Buf: "y", Idx: 3, W: W8})
	e := Add(Mul(x, y), x)
	vs := Vars(e)
	if len(vs) != 2 {
		t.Fatalf("got %d vars, want 2: %v", len(vs), vs)
	}
	if !Const(4, W8).IsConst() || len(Vars(Const(4, W8))) != 0 {
		t.Error("constants must have no vars")
	}
}

func TestSignExtendConst(t *testing.T) {
	if got := SignExtendConst(0xff, W8); got != -1 {
		t.Errorf("sext(0xff,8) = %d, want -1", got)
	}
	if got := SignExtendConst(0x7f, W8); got != 127 {
		t.Errorf("sext(0x7f,8) = %d, want 127", got)
	}
	if got := SignExtendConst(0xffffffff, W32); got != -1 {
		t.Errorf("sext(0xffffffff,32) = %d, want -1", got)
	}
}

// randomExpr builds a random expression over the given vars with bounded depth.
func randomExpr(r *rand.Rand, vars []*Expr, depth int) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return vars[r.Intn(len(vars))]
		}
		return Const(uint64(r.Uint32()), W32)
	}
	x := randomExpr(r, vars, depth-1)
	switch r.Intn(10) {
	case 0:
		return Not(x)
	case 1:
		return Neg(x)
	default:
		y := randomExpr(r, vars, depth-1)
		ops := []func(a, b *Expr) *Expr{Add, Sub, Mul, And, Or, Xor}
		return ops[r.Intn(len(ops))](x, y)
	}
}

func TestRandomExprEvalStable(t *testing.T) {
	// Property: Eval is deterministic and respects width masking.
	r := rand.New(rand.NewSource(7))
	vars := []*Expr{
		NewVar(Var{Buf: "a", W: W32}),
		NewVar(Var{Buf: "b", W: W32}),
	}
	for i := 0; i < 500; i++ {
		e := randomExpr(r, vars, 5)
		env := Assignment{
			Var{Buf: "a", W: W32}: uint64(r.Uint32()),
			Var{Buf: "b", W: W32}: uint64(r.Uint32()),
		}
		v1 := Eval(e, env)
		v2 := Eval(e, env)
		if v1 != v2 {
			t.Fatalf("eval not deterministic: %d vs %d for %v", v1, v2, e)
		}
		if v1&^e.Width().Mask() != 0 {
			t.Fatalf("eval exceeds width mask: %x for width %d", v1, e.Width())
		}
	}
}

func TestStringRendering(t *testing.T) {
	x := NewVar(Var{Buf: "in", Idx: 2, W: W8})
	y := NewVar(Var{Buf: "y", W: W8})
	e := Eq(Add(x, y), Const(5, W8))
	got := e.String()
	want := "(eq (add in[2]:8 y[0]:8) 5:8)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAlgebraicRewrites(t *testing.T) {
	x := NewVar(Var{Buf: "x", W: W8})
	// Constant-chain flattening.
	e := Add(Add(x, Const(3, W8)), Const(4, W8))
	if e.Op() != OpAdd || !e.Child(1).IsConst() || e.Child(1).ConstVal() != 7 {
		t.Errorf("(x+3)+4 should fold to x+7: %v", e)
	}
	e = Sub(Add(x, Const(3, W8)), Const(5, W8))
	// x+3-5 = x + (3-5) = x + 254 (mod 256)
	if e.Op() != OpAdd || e.Child(1).ConstVal() != 254 {
		t.Errorf("(x+3)-5 should fold to x+254: %v", e)
	}
	// Equation normalization.
	e = Eq(Add(x, Const(1, W8)), Const(5, W8))
	if e.Op() != OpEq || !Equal(e.Child(0), x) || e.Child(1).ConstVal() != 4 {
		t.Errorf("eq(x+1,5) should fold to eq(x,4): %v", e)
	}
	// ZExt narrowing and range contradiction.
	wide := ZExt(x, W32)
	e = Eq(wide, Const(300, W32))
	if e != False {
		t.Errorf("eq(zext8(x), 300) should be false: %v", e)
	}
	e = Eq(wide, Const(77, W32))
	if e.Op() != OpEq || e.Child(0).Width() != W8 || e.Child(1).ConstVal() != 77 {
		t.Errorf("eq(zext8(x), 77) should narrow: %v", e)
	}
	// Rewrites must preserve semantics (spot check against Eval).
	env := Assignment{Var{Buf: "x", W: W8}: 200}
	lhs := Eval(Add(Add(x, Const(3, W8)), Const(4, W8)), env)
	if lhs != (200+7)&0xff {
		t.Errorf("rewritten add evaluates to %d", lhs)
	}
}
