package symexpr

import (
	"sync"
	"sync/atomic"
)

// Hash-consing interner.
//
// Every Expr constructed by this package is routed through a per-process
// interner, so structurally equal expressions are pointer-identical:
//
//   - Equal degrades to a pointer comparison (O(1), no DAG walks);
//   - every node carries a process-unique ID usable as a map key by caches
//     and indexes (the solver's counterexample cache keys its subsumption
//     index by it);
//   - maximal sharing: an interpreter loop that rebuilds the same term on
//     every iteration allocates it once.
//
// The interner is sharded by structural hash, so concurrent sessions of the
// parallel experiment harness mostly touch distinct shards. Buckets confirm
// candidates with a shallow comparison only: children are already interned,
// so an interior node is equal to a candidate iff the op/width/leaf data
// match and the child pointers are identical.
//
// The table is append-only for the life of the process (like the symtest
// compile interner): expressions are immutable and timelessly valid, so
// eviction would only trade memory for recomputation. Workloads here are
// bounded exploration runs; a long-running service embedding the engine
// would hold the table for its lifetime, which is the usual hash-consing
// trade.
//
// Determinism note: IDs are assigned in intern order, which under the
// parallel harness depends on scheduling. IDs therefore never influence
// anything semantically visible — canonical orderings that affect solver
// results use Compare (process-independent structural order), never ID
// order. IDs are only used for process-local map keys where the *identity*
// matters but the *order* does not.

const internShardCount = 64

type internShard struct {
	mu sync.Mutex
	m  map[uint64][]*Expr
}

var (
	internShards [internShardCount]internShard
	internNextID atomic.Uint64
	internSize   atomic.Int64
)

// shallowEqual reports structural equality of two nodes whose children are
// already interned: leaf data must match and child pointers must be
// identical.
func shallowEqual(a, b *Expr) bool {
	if a.op != b.op || a.w != b.w {
		return false
	}
	if a.op == OpInvalid {
		if (a.varr != nil) != (b.varr != nil) {
			return false
		}
		if a.varr != nil {
			return *a.varr == *b.varr
		}
		return a.val == b.val
	}
	if len(a.kids) != len(b.kids) {
		return false
	}
	for i := range a.kids {
		if a.kids[i] != b.kids[i] {
			return false
		}
	}
	return true
}

// intern returns the canonical pointer for e, registering e if it is new.
// e's children must already be interned.
func intern(e *Expr) *Expr {
	sh := &internShards[(e.hash^e.hash>>32)%internShardCount]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = map[uint64][]*Expr{}
	}
	for _, c := range sh.m[e.hash] {
		if shallowEqual(c, e) {
			sh.mu.Unlock()
			return c
		}
	}
	e.id = internNextID.Add(1)
	sh.m[e.hash] = append(sh.m[e.hash], e)
	sh.mu.Unlock()
	internSize.Add(1)
	return e
}

// InternedCount returns the number of distinct expressions interned so far
// in this process (observability only).
func InternedCount() int64 { return internSize.Load() }

// ID returns the process-unique interning ID of the expression. IDs identify
// structurally distinct expressions within one process: x.ID() == y.ID() iff
// x == y (pointer equality) iff x and y are structurally equal. IDs are
// assigned in intern order and are not stable across processes — persistent
// caches key by structural content (see Compare and the encode/decode
// layer), never by ID.
func (e *Expr) ID() uint64 { return e.id }

// Compare defines a process-independent total order on expressions:
// Compare(a, b) is negative/zero/positive as a sorts before/equals/sorts
// after b, and depends only on expression *structure* (never on interning
// IDs or pointer values), so any two processes agree on it. The solver
// canonicalizes queries with it before solving, making the solver's answer
// — including the model — a pure function of the constraint set.
//
// The order is: structural hash first (cheap, precomputed), full structural
// comparison as the tie-break for the astronomically rare hash collisions.
func Compare(a, b *Expr) int {
	if a == b {
		return 0
	}
	if a.hash != b.hash {
		if a.hash < b.hash {
			return -1
		}
		return 1
	}
	return structuralCompare(a, b)
}

func structuralCompare(a, b *Expr) int {
	if a == b {
		return 0
	}
	if a.op != b.op {
		return int(a.op) - int(b.op)
	}
	if a.w != b.w {
		return int(a.w) - int(b.w)
	}
	if a.op == OpInvalid {
		av, bv := a.varr != nil, b.varr != nil
		if av != bv {
			if av {
				return 1
			}
			return -1
		}
		if av {
			if a.varr.Buf != b.varr.Buf {
				if a.varr.Buf < b.varr.Buf {
					return -1
				}
				return 1
			}
			if a.varr.Idx != b.varr.Idx {
				return a.varr.Idx - b.varr.Idx
			}
			return int(a.varr.W) - int(b.varr.W)
		}
		switch {
		case a.val < b.val:
			return -1
		case a.val > b.val:
			return 1
		}
		return 0
	}
	if len(a.kids) != len(b.kids) {
		return len(a.kids) - len(b.kids)
	}
	for i := range a.kids {
		if c := Compare(a.kids[i], b.kids[i]); c != 0 {
			return c
		}
	}
	return 0
}
