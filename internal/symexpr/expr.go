// Package symexpr provides the symbolic expression language shared by the
// low-level engine and the constraint solver.
//
// Expressions are fixed-width bit-vectors (widths 1, 8, 16, 32 and 64).
// Width-1 expressions double as booleans. The package plays the role STP's
// expression layer plays for S2E in the CHEF paper: every symbolic value an
// interpreter manipulates is a term in this language, and every path
// condition is a conjunction of width-1 terms.
//
// Constructors perform aggressive constant folding and light algebraic
// simplification so that purely concrete interpreter computations never
// produce symbolic terms.
package symexpr

import (
	"fmt"
	"strings"
)

// Width is the bit width of an expression. Width 1 is the boolean width.
type Width uint8

// Supported widths.
const (
	W1  Width = 1
	W8  Width = 8
	W16 Width = 16
	W32 Width = 32
	W64 Width = 64
)

// Mask returns the bit mask covering w bits.
func (w Width) Mask() uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Op identifies the operator of a compound expression.
type Op uint8

// Operators. Comparison operators produce width-1 results; all other
// operators preserve the width of their operands except the explicit
// width-conversion operators.
const (
	OpInvalid Op = iota

	// Binary arithmetic/bitwise, width-preserving.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl  // left shift; shift amount is Y
	OpLShr // logical right shift

	// Comparisons, width-1 result.
	OpEq
	OpUlt
	OpUle
	OpSlt
	OpSle

	// Unary, width-preserving.
	OpNot // bitwise complement; logical negation at width 1
	OpNeg // two's complement negation

	// Width conversion.
	OpZExt  // zero-extend X to the node's width
	OpSExt  // sign-extend X to the node's width
	OpTrunc // truncate X to the node's width

	// Ternary.
	OpIte // if X (width 1) then Y else Z
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpURem: "urem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr",
	OpEq: "eq", OpUlt: "ult", OpUle: "ule", OpSlt: "slt", OpSle: "sle",
	OpNot: "not", OpNeg: "neg",
	OpZExt: "zext", OpSExt: "sext", OpTrunc: "trunc",
	OpIte: "ite",
}

// String returns the mnemonic for the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Var identifies a symbolic input variable: one element of a named input
// buffer. Scalar inputs use Idx 0. The width of the variable is part of its
// identity.
type Var struct {
	Buf string
	Idx int
	W   Width
}

// String renders the variable as name[idx]:width.
func (v Var) String() string { return fmt.Sprintf("%s[%d]:%d", v.Buf, v.Idx, v.W) }

// Expr is a node in the expression DAG. Expr values are immutable after
// construction and hash-consed: every constructor routes through the
// per-process interner (see intern.go), so structurally equal expressions
// are pointer-identical, Equal is O(1), and the precomputed per-node hash
// and interning ID serve as cheap cache keys.
type Expr struct {
	op   Op
	w    Width
	val  uint64 // constant value (op == OpInvalid, kids == nil, varr == nil)
	varr *Var   // variable (non-nil iff this is a leaf variable)
	kids []*Expr
	hash uint64
	id   uint64 // process-unique interning ID (see Expr.ID)
	size int32  // number of nodes in the DAG view (upper bound; shared nodes recounted)
	syms bool   // contains at least one variable
}

// Width returns the bit width of the expression.
func (e *Expr) Width() Width { return e.w }

// Op returns the operator, OpInvalid for leaves.
func (e *Expr) Op() Op { return e.op }

// IsConst reports whether the expression is a constant leaf.
func (e *Expr) IsConst() bool { return e.op == OpInvalid && e.varr == nil }

// ConstVal returns the value of a constant leaf. It panics on non-constants.
func (e *Expr) ConstVal() uint64 {
	if !e.IsConst() {
		panic("symexpr: ConstVal on non-constant")
	}
	return e.val
}

// IsVar reports whether the expression is a variable leaf.
func (e *Expr) IsVar() bool { return e.varr != nil }

// VarRef returns the variable of a variable leaf. It panics otherwise.
func (e *Expr) VarRef() Var {
	if e.varr == nil {
		panic("symexpr: VarRef on non-variable")
	}
	return *e.varr
}

// Child returns the i-th operand.
func (e *Expr) Child(i int) *Expr { return e.kids[i] }

// NumChildren returns the operand count.
func (e *Expr) NumChildren() int { return len(e.kids) }

// HasSymbols reports whether any variable occurs in the expression.
func (e *Expr) HasSymbols() bool { return e.syms }

// Hash returns the structural hash of the expression.
func (e *Expr) Hash() uint64 { return e.hash }

// Size returns an upper bound on the number of nodes in the expression.
func (e *Expr) Size() int { return int(e.size) }

const (
	hashSeed  = 0x9e3779b97f4a7c15
	hashMix   = 0xff51afd7ed558ccd
	hashFinal = 0xc4ceb9fe1a85ec53
)

func mix(h, v uint64) uint64 {
	h ^= v
	h *= hashMix
	h ^= h >> 29
	h *= hashFinal
	h ^= h >> 32
	return h
}

func newConst(v uint64, w Width) *Expr {
	v &= w.Mask()
	return intern(&Expr{w: w, val: v, hash: mix(hashSeed^uint64(w), v), size: 1})
}

// Const builds a constant of width w; the value is masked to the width.
func Const(v uint64, w Width) *Expr { return newConst(v, w) }

// Bool builds a width-1 constant.
func Bool(b bool) *Expr {
	if b {
		return Const(1, W1)
	}
	return Const(0, W1)
}

// True and False are the width-1 constants.
var (
	True  = Bool(true)
	False = Bool(false)
)

// NewVar builds a variable leaf.
func NewVar(v Var) *Expr {
	h := mix(hashSeed^0xabcd, uint64(len(v.Buf)))
	for i := 0; i < len(v.Buf); i++ {
		h = mix(h, uint64(v.Buf[i]))
	}
	h = mix(h, uint64(v.Idx))
	h = mix(h, uint64(v.W))
	vv := v
	return intern(&Expr{w: v.W, varr: &vv, hash: h, size: 1, syms: true})
}

func newNode(op Op, w Width, kids ...*Expr) *Expr {
	h := mix(hashSeed^uint64(op)<<8, uint64(w))
	sz := int32(1)
	syms := false
	for _, k := range kids {
		h = mix(h, k.hash)
		sz += k.size
		syms = syms || k.syms
	}
	if sz > 1<<28 {
		sz = 1 << 28
	}
	return intern(&Expr{op: op, w: w, kids: kids, hash: h, size: sz, syms: syms})
}

// Equal reports structural equality. Hash-consing makes structural equality
// coincide with pointer identity, so this is a single comparison — no hash
// checks, no DAG walks.
func Equal(a, b *Expr) bool { return a == b }

// String renders the expression as an s-expression.
func (e *Expr) String() string {
	var sb strings.Builder
	e.write(&sb, 0)
	return sb.String()
}

func (e *Expr) write(sb *strings.Builder, depth int) {
	if depth > 40 {
		sb.WriteString("...")
		return
	}
	switch {
	case e.IsConst():
		fmt.Fprintf(sb, "%d:%d", e.val, e.w)
	case e.IsVar():
		sb.WriteString(e.varr.String())
	default:
		sb.WriteByte('(')
		sb.WriteString(e.op.String())
		if e.op == OpZExt || e.op == OpSExt || e.op == OpTrunc {
			fmt.Fprintf(sb, ":%d", e.w)
		}
		for _, k := range e.kids {
			sb.WriteByte(' ')
			k.write(sb, depth+1)
		}
		sb.WriteByte(')')
	}
}
