package faults

import (
	"strings"
	"testing"

	"chef/internal/obs"
)

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q) error: %v", spec, err)
		}
		if spec == "" || strings.TrimSpace(spec) == "" {
			if p != nil {
				t.Fatalf("Parse(%q) = %+v, want nil", spec, p)
			}
		}
		if p.Injector("x") != nil && len(p.Rules) == 0 {
			t.Fatalf("rule-less plan produced a non-nil injector")
		}
	}
}

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("seed=7; solver.unknown:p=0.05; persist.write:err@n=3; persist.write:short@every=2; worker.stall:session=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 4 {
		t.Fatalf("plan = %+v", p)
	}
	want := []Rule{
		{Site: SolverUnknown, P: 0.05, Session: -1},
		{Site: PersistWrite, N: 3, Session: -1},
		{Site: PersistWrite, Short: true, Every: 2, Session: -1},
		{Site: WorkerStall, Session: 2},
	}
	for i, r := range p.Rules {
		if r != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"bogus.site:p=0.5",
		"solver.unknown:p=1.5",
		"solver.unknown:p=0",
		"solver.unknown:n=0",
		"solver.unknown:short@n=1", // modes are persist.write-only
		"solver.unknown:session=1", // session= is worker.stall-only
		"persist.write:wat=3",
		"seed=xyz",
		"solver.unknown:p",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire(SolverUnknown) || in.FireStall(0) || in.FireWrite() != WriteOK {
		t.Fatal("nil injector fired")
	}
	if in.Injected() != 0 || in.InjectedAt(SolverUnknown) != 0 || in.Scope() != "" {
		t.Fatal("nil injector reported activity")
	}
	in.Instrument(obs.NewRegistry()) // must not panic
}

func TestOccurrenceTriggers(t *testing.T) {
	p, err := Parse("persist.write:err@n=2;persist.write:short@every=5")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("s")
	var got []WriteMode
	for i := 0; i < 10; i++ {
		got = append(got, in.FireWrite())
	}
	for i, m := range got {
		occ := i + 1
		want := WriteOK
		switch {
		case occ == 2:
			want = WriteErr
		case occ%5 == 0:
			want = WriteShort
		}
		if m != want {
			t.Fatalf("occurrence %d: mode %d, want %d (all: %v)", occ, m, want, got)
		}
	}
	if in.Injected() != 3 || in.InjectedAt(PersistWrite) != 3 {
		t.Fatalf("injected = %d / %d, want 3", in.Injected(), in.InjectedAt(PersistWrite))
	}
}

func TestSessionMatching(t *testing.T) {
	p, err := Parse("worker.stall:session=2")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("s")
	for i := 0; i < 5; i++ {
		want := i == 2
		if got := in.FireStall(i); got != want {
			t.Fatalf("FireStall(%d) = %v, want %v", i, got, want)
		}
	}
}

// Fault decisions must be a pure function of (seed, scope, occurrence
// index): two injectors with the same scope replay the same schedule, and
// distinct scopes draw from independent streams.
func TestProbabilisticDeterminismPerScope(t *testing.T) {
	p, err := Parse("seed=99;solver.unknown:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	fire := func(scope string) []bool {
		in := p.Injector(scope)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire(SolverUnknown)
		}
		return out
	}
	a1, a2, b := fire("alpha"), fire("alpha"), fire("beta")
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same scope diverged at occurrence %d", i)
		}
		if a1[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct scopes produced identical schedules (streams not independent)")
	}
	fired := 0
	for _, f := range a1 {
		if f {
			fired++
		}
	}
	if fired < 20 || fired > 120 {
		t.Fatalf("p=0.3 fired %d/200 times, far from expectation", fired)
	}
}

// A deterministic rule match must not shift the probabilistic stream: the
// stream position depends only on the occurrence index.
func TestDeterministicRuleDoesNotPerturbStream(t *testing.T) {
	pOnly, err := Parse("seed=5;solver.unknown:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	both, err := Parse("seed=5;solver.unknown:n=3;solver.unknown:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	a, b := pOnly.Injector("s"), both.Injector("s")
	for i := 1; i <= 100; i++ {
		fa, fb := a.Fire(SolverUnknown), b.Fire(SolverUnknown)
		if i == 3 {
			if !fb {
				t.Fatal("n=3 rule did not fire")
			}
			continue
		}
		if fa != fb {
			t.Fatalf("occurrence %d: p-stream perturbed by the n= rule (%v vs %v)", i, fa, fb)
		}
	}
}

func TestInstrumentCountsBySite(t *testing.T) {
	p, err := Parse("persist.write:err@n=1;worker.stall:session=0")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("s")
	reg := obs.NewRegistry()
	in.Instrument(reg)
	in.FireWrite()
	in.FireStall(0)
	in.FireStall(1)
	if got := reg.Counter(obs.MFaultsInjected).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", obs.MFaultsInjected, got)
	}
	if got := reg.Counter(obs.MFaultsPersistWrite).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", obs.MFaultsPersistWrite, got)
	}
	if got := reg.Counter(obs.MFaultsWorkerStall).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", obs.MFaultsWorkerStall, got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	spec := "seed=7;solver.unknown:p=0.05"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != spec {
		t.Fatalf("String() = %q, want %q", p.String(), spec)
	}
	var nilPlan *Plan
	if nilPlan.String() != "" {
		t.Fatal("nil plan String() non-empty")
	}
}
