// Package faults is a deterministic, seeded fault-injection layer for the
// engine stack. A Plan — parsed from the -faults flag of cmd/chef and
// cmd/chef-experiments — is a seed plus a list of rules naming an injection
// site and a trigger:
//
//	seed=7;solver.unknown:p=0.05;persist.write:err@n=3;worker.stall:session=2
//
// Sites:
//
//	solver.unknown — force the verdict of an actually-solved query to
//	                 Unknown, as if the propagation budget had been
//	                 exhausted (cache hits are unaffected; a budget miss
//	                 can only happen on a real solve).
//	persist.write  — fail a physical write of the persistent store's
//	                 flusher. Mode err fails cleanly with zero bytes
//	                 written; mode short writes half the buffer and then
//	                 fails, exercising the partial-write retention path.
//	worker.stall   — a session never starts exploring: Run returns
//	                 immediately with zero tests, modeling a dead worker
//	                 in a portfolio or harness grid.
//
// Triggers: p=<prob> fires probabilistically per occurrence, n=<k> fires at
// exactly the k-th occurrence, every=<k> at every k-th, session=<i>
// (worker.stall only) matches the session's index among its siblings. A rule
// with no trigger fires at every occurrence.
//
// Determinism contract: an Injector's decisions are a pure function of
// (plan seed, scope label, occurrence index). Each scope derives its own PRNG
// stream from the plan seed hashed with the scope label, so a session's fault
// schedule does not depend on what other sessions do or on goroutine
// scheduling — the property the parallel-determinism chaos tests assert.
// Probabilistic rules draw from the site's stream on every occurrence,
// whether or not another rule already matched, so the stream position depends
// only on the occurrence index.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"chef/internal/obs"
)

// Site names an injection point in the stack.
type Site string

// The supported injection sites.
const (
	SolverUnknown Site = "solver.unknown"
	PersistWrite  Site = "persist.write"
	WorkerStall   Site = "worker.stall"
)

var knownSites = map[Site]bool{
	SolverUnknown: true,
	PersistWrite:  true,
	WorkerStall:   true,
}

// WriteMode is the outcome FireWrite prescribes for one physical write.
type WriteMode uint8

// Write outcomes. WriteErr fails with zero bytes written; WriteShort writes
// half the buffer before failing.
const (
	WriteOK WriteMode = iota
	WriteErr
	WriteShort
)

// Rule is one parsed fault rule. Zero trigger fields mean "unset"; Session
// is -1 when unset so index 0 stays matchable.
type Rule struct {
	Site    Site
	Short   bool    // persist.write: short write instead of a clean error
	P       float64 // fire with this probability per occurrence
	N       int64   // fire at exactly the N-th occurrence (1-based)
	Every   int64   // fire at every multiple of Every
	Session int64   // worker.stall: match this session index; -1 = any
}

// always reports whether the rule fires on every occurrence (no trigger, or
// only a session filter).
func (r Rule) always() bool { return r.P == 0 && r.N == 0 && r.Every == 0 }

// Plan is a parsed fault plan: a seed and the rule list. A nil *Plan (or one
// with no rules) injects nothing and derives nil Injectors, so the disabled
// path costs a single nil-check at each site.
type Plan struct {
	Seed  int64
	Rules []Rule

	spec string
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

// Parse builds a Plan from a -faults spec. An empty spec returns (nil, nil):
// injection disabled.
func Parse(spec string) (*Plan, error) {
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" {
		return nil, nil
	}
	p := &Plan{spec: trimmed}
	for _, field := range strings.Split(trimmed, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if v, ok := strings.CutPrefix(field, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", v)
			}
			p.Seed = seed
			continue
		}
		rule, err := parseRule(field)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, rule)
	}
	return p, nil
}

// parseRule parses one "site:param,param" field.
func parseRule(field string) (Rule, error) {
	site, params, _ := strings.Cut(field, ":")
	r := Rule{Site: Site(strings.TrimSpace(site)), Session: -1}
	if !knownSites[r.Site] {
		return r, fmt.Errorf("faults: unknown site %q (want solver.unknown, persist.write or worker.stall)", site)
	}
	for _, param := range strings.Split(params, ",") {
		param = strings.TrimSpace(param)
		if param == "" {
			continue
		}
		// Optional write-mode prefix: "err@n=3", "short@p=0.5", or bare
		// "err" / "short" (fires on every write).
		if mode, rest, ok := cutMode(param); ok {
			if r.Site != PersistWrite {
				return r, fmt.Errorf("faults: mode %q is only valid on %s", mode, PersistWrite)
			}
			r.Short = mode == "short"
			if rest == "" {
				continue
			}
			param = rest
		}
		key, val, ok := strings.Cut(param, "=")
		if !ok {
			return r, fmt.Errorf("faults: bad parameter %q in rule %q", param, field)
		}
		switch key {
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return r, fmt.Errorf("faults: p=%q out of (0,1]", val)
			}
			r.P = f
		case "n":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return r, fmt.Errorf("faults: n=%q must be a positive integer", val)
			}
			r.N = n
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return r, fmt.Errorf("faults: every=%q must be a positive integer", val)
			}
			r.Every = n
		case "session":
			if r.Site != WorkerStall {
				return r, fmt.Errorf("faults: session= is only valid on %s", WorkerStall)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return r, fmt.Errorf("faults: session=%q must be a non-negative integer", val)
			}
			r.Session = n
		default:
			return r, fmt.Errorf("faults: unknown parameter %q in rule %q", key, field)
		}
	}
	return r, nil
}

// cutMode splits an optional err/short prefix off a rule parameter.
func cutMode(param string) (mode, rest string, ok bool) {
	head, tail, cut := strings.Cut(param, "@")
	if head == "err" || head == "short" {
		if !cut {
			return head, "", true
		}
		return head, tail, true
	}
	return "", param, false
}

// Injector derives the deterministic per-scope injector for this plan. The
// scope label (a session name, "persist", ...) seeds the scope's private PRNG
// streams, so distinct scopes make independent — but individually
// reproducible — decisions. Returns nil (inject nothing) for a nil or
// rule-less plan.
func (p *Plan) Injector(scope string) *Injector {
	if p == nil || len(p.Rules) == 0 {
		return nil
	}
	return &Injector{
		plan:  p,
		scope: scope,
		rngs:  map[Site]*rand.Rand{},
		occ:   map[Site]int64{},
		hits:  map[Site]int64{},
	}
}

// Injector makes the fire/no-fire decision at each injection site. It is
// safe for concurrent use (the persistent store's background flusher shares
// it with Append callers). All methods are nil-receiver safe; a nil Injector
// never fires.
type Injector struct {
	plan  *Plan
	scope string

	mu   sync.Mutex
	rngs map[Site]*rand.Rand
	occ  map[Site]int64
	hits map[Site]int64

	total atomic.Int64

	reg *obs.Registry
}

// Instrument routes injection counts into reg (faults.injected plus a
// per-site counter). Nil-safe in both arguments.
func (in *Injector) Instrument(reg *obs.Registry) {
	if in == nil || reg == nil {
		return
	}
	in.mu.Lock()
	in.reg = reg
	in.mu.Unlock()
}

// Scope returns the label the injector's PRNG streams were derived from.
func (in *Injector) Scope() string {
	if in == nil {
		return ""
	}
	return in.scope
}

// Injected returns the total number of faults fired by this injector.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.total.Load()
}

// InjectedAt returns how many faults fired at one site.
func (in *Injector) InjectedAt(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fire records one occurrence at site and reports whether a fault fires
// there. Used for sites without modes or session matching (solver.unknown).
func (in *Injector) Fire(site Site) bool {
	if in == nil {
		return false
	}
	_, ok := in.fire(site, -1)
	return ok
}

// FireWrite records one physical-write occurrence and returns the prescribed
// outcome for it.
func (in *Injector) FireWrite() WriteMode {
	if in == nil {
		return WriteOK
	}
	r, ok := in.fire(PersistWrite, -1)
	switch {
	case !ok:
		return WriteOK
	case r.Short:
		return WriteShort
	default:
		return WriteErr
	}
}

// FireStall records one session-start occurrence and reports whether the
// session with the given sibling index should stall.
func (in *Injector) FireStall(session int) bool {
	if in == nil {
		return false
	}
	_, ok := in.fire(WorkerStall, int64(session))
	return ok
}

// fire implements the occurrence bookkeeping and rule matching. session is
// -1 for sites without session matching.
func (in *Injector) fire(site Site, session int64) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.occ[site]++
	occ := in.occ[site]
	var hit Rule
	fired := false
	for _, r := range in.plan.Rules {
		if r.Site != site {
			continue
		}
		match := r.always()
		if r.N > 0 && occ == r.N {
			match = true
		}
		if r.Every > 0 && occ%r.Every == 0 {
			match = true
		}
		if r.P > 0 {
			// Draw unconditionally: the stream position must be a pure
			// function of the occurrence index, not of other rules' matches.
			if in.rng(site).Float64() < r.P {
				match = true
			}
		}
		if r.Session >= 0 && session != r.Session {
			match = false
		}
		if match && !fired {
			hit, fired = r, true
		}
	}
	if fired {
		in.hits[site]++
		in.total.Add(1)
		if in.reg != nil {
			in.reg.Counter(obs.MFaultsInjected).Inc()
			in.reg.Counter(siteMetric(site)).Inc()
		}
	}
	return hit, fired
}

// rng returns (lazily creating) the site's PRNG stream, seeded from the plan
// seed and the scope and site labels. Caller holds in.mu.
func (in *Injector) rng(site Site) *rand.Rand {
	r := in.rngs[site]
	if r == nil {
		h := fnv.New64a()
		h.Write([]byte(in.scope))
		h.Write([]byte{0})
		h.Write([]byte(site))
		r = rand.New(rand.NewSource(in.plan.Seed ^ int64(h.Sum64())))
		in.rngs[site] = r
	}
	return r
}

// siteMetric maps a site to its canonical per-site counter name.
func siteMetric(site Site) string {
	switch site {
	case SolverUnknown:
		return obs.MFaultsSolverUnknown
	case PersistWrite:
		return obs.MFaultsPersistWrite
	default:
		return obs.MFaultsWorkerStall
	}
}
