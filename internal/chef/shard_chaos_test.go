package chef

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestShardedSolverUnknownInvariants: a fault plan forcing solver
// Unknowns against a sharded run must keep the degradation invariant
// Unknown == Requeued + Abandoned in every range cell individually and
// after the merge, and stay byte-identical across worker counts (cell
// injectors are scoped by cell name, so their decisions are a pure
// function of the plan, not of scheduling).
func TestShardedSolverUnknownInvariants(t *testing.T) {
	run := func(workers int) *ShardedSession {
		opts := Options{
			Strategy: StrategyCUPAPath,
			Seed:     42,
			Faults:   mustChaosPlan(t, "seed=7;solver.unknown:p=0.3"),
		}
		return runSharded(t, validateEmailProg(6), opts, workers, shardFixtureBudget)
	}
	serial := run(1)
	if serial.Stats().UnknownStates == 0 {
		t.Fatal("plan injected no Unknowns; the chaos test is vacuous")
	}
	for _, cell := range serial.CellStats() {
		if cell.UnknownStates != cell.RequeuedStates+cell.AbandonedStates {
			t.Fatalf("per-cell degradation invariant broken: %+v", cell)
		}
	}
	merged := serial.Stats()
	if merged.UnknownStates != merged.RequeuedStates+merged.AbandonedStates {
		t.Fatalf("merged degradation invariant broken: %+v", merged)
	}
	want := fingerprint(serial)
	for _, workers := range []int{2, 4} {
		if got := fingerprint(run(workers)); got != want {
			t.Fatalf("faulted sharded run diverged between 1 and %d workers:\n%s\nvs\n%s",
				workers, want, got)
		}
	}
}

// TestShardedWorkerStallRescue: stalling one shard worker must not lose
// any path — the barrier-time reassignment hands the stalled worker's
// ranges to the survivors, so the output is byte-identical to the
// unfaulted run (semantics are worker-independent by construction).
func TestShardedWorkerStallRescue(t *testing.T) {
	clean := runSharded(t, validateEmailProg(6),
		Options{Strategy: StrategyCUPAPath, Seed: 42}, 4, shardFixtureBudget)

	stalled := runSharded(t, validateEmailProg(6), Options{
		Strategy: StrategyCUPAPath,
		Seed:     42,
		Faults:   mustChaosPlan(t, "seed=1;worker.stall:session=1"),
	}, 4, shardFixtureBudget)

	if stalled.StalledWorkers() != 1 {
		t.Fatalf("stalled workers = %d, want 1", stalled.StalledWorkers())
	}
	if stalled.Stalled() {
		t.Fatal("a partial stall must not degrade the run")
	}
	if got, want := fmtTests(stalled.Tests()), fmtTests(clean.Tests()); got != want {
		t.Fatalf("stall lost paths:\nclean: %s\nstalled: %s", want, got)
	}
	if stalled.Clock() != clean.Clock() || stalled.Stats() != clean.Stats() {
		t.Fatalf("stall changed exploration accounting:\nclean %+v\nstalled %+v",
			clean.Stats(), stalled.Stats())
	}
	// The stall is visible in the summary's fault accounting.
	sum := stalled.Summary()
	if sum.Stalled != 1 || sum.FaultsInjected == 0 {
		t.Fatalf("summary %+v must report the stalled worker and the injected fault", sum)
	}
}

// TestShardedAllWorkersStalled: when every worker stalls the run degrades
// the way a plain stalled session does — terminates cleanly with zero
// tests and reports Stalled.
func TestShardedAllWorkersStalled(t *testing.T) {
	ss := runSharded(t, validateEmailProg(6), Options{
		Strategy: StrategyCUPAPath,
		Seed:     42,
		Faults:   mustChaosPlan(t, "seed=1;worker.stall"),
	}, 4, shardFixtureBudget)
	if !ss.Stalled() || ss.StalledWorkers() != 4 {
		t.Fatalf("stalled=%v workers=%d, want full stall", ss.Stalled(), ss.StalledWorkers())
	}
	if len(ss.Tests()) != 0 || ss.Clock() != 0 {
		t.Fatalf("fully stalled run must not explore: tests=%d clock=%d", len(ss.Tests()), ss.Clock())
	}
	if sum := ss.Summary(); sum.Stalled != 4 {
		t.Fatalf("summary %+v must count 4 stalled workers", sum)
	}
}

// TestShardedChaosPlansKeepInvariants mirrors the plain-session chaos
// property suite at the sharded level: random plans must never panic,
// must terminate, and must keep the merged accounting invariants.
func TestShardedChaosPlansKeepInvariants(t *testing.T) {
	plans := 60
	if testing.Short() {
		plans = 15
	}
	r := rand.New(rand.NewSource(20260807))
	for i := 0; i < plans; i++ {
		spec := randomPlanSpec(r)
		ss := runSharded(t, validateEmailProg(4+i%3), Options{
			Strategy: chaosStrategies[i%len(chaosStrategies)],
			Seed:     int64(i),
			Faults:   mustChaosPlan(t, spec),
		}, 1+i%4, 200_000)
		st := ss.Stats()
		if st.UnknownStates != st.RequeuedStates+st.AbandonedStates {
			t.Fatalf("plan %q: merged degradation invariant broken: %+v", spec, st)
		}
		for k, cell := range ss.CellStats() {
			if cell.UnknownStates != cell.RequeuedStates+cell.AbandonedStates {
				t.Fatalf("plan %q: cell %d degradation invariant broken: %+v", spec, k, cell)
			}
		}
		if ss.Stalled() && len(ss.Tests()) != 0 {
			t.Fatalf("plan %q: stalled run produced tests", spec)
		}
	}
}

func fmtTests(tests []TestCase) string {
	out := ""
	for _, tc := range tests {
		out += fmt.Sprintf("%#v\n", tc)
	}
	return out
}
