// Package chef implements the CHEF platform of the paper: it turns an
// instrumented interpreter (packaged as a Program over the guest API) into a
// symbolic execution engine for the interpreter's target language.
//
// The package provides:
//   - the guest API of Table 1 (log_pc, make_symbolic, assume, concretize,
//     upper_bound, is_symbolic, start/end_symbolic) via Ctx;
//   - the high-level execution tree and dynamically discovered high-level
//     CFG, including the branching-opcode inference of §3.4;
//   - the session loop that drives the low-level engine under a virtual-time
//     budget and distills unique high-level paths into test cases.
package chef

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"chef/internal/cupa"
	"chef/internal/faults"
	"chef/internal/lowlevel"
	"chef/internal/obs"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// HLPC is a high-level program counter: an opaque identifier of a statement
// or bytecode instruction of the target program, as reported by the
// interpreter through log_pc.
type HLPC = uint64

// StrategyKind selects the state-selection strategy of a session.
type StrategyKind uint8

// Available strategies. The four configurations of §6.3 are
// StrategyRandom (baseline) and the two CUPA instantiations.
const (
	StrategyRandom StrategyKind = iota
	StrategyCUPAPath
	StrategyCUPACoverage
	StrategyDFS
	StrategyBFS
)

func (k StrategyKind) String() string {
	switch k {
	case StrategyRandom:
		return "random"
	case StrategyCUPAPath:
		return "cupa-path"
	case StrategyCUPACoverage:
		return "cupa-coverage"
	case StrategyDFS:
		return "dfs"
	case StrategyBFS:
		return "bfs"
	default:
		return "unknown"
	}
}

// TestProgram is a symbolic test packaged for CHEF: one full run of the
// interpreter over the target program, reading symbolic inputs and reporting
// high-level locations through the Ctx guest API.
type TestProgram func(ctx *Ctx)

// Options configure a session.
type Options struct {
	Strategy StrategyKind
	// StrategyFactory, when non-nil, overrides Strategy with a custom
	// state-selection strategy (used by the ablation benches to build CUPA
	// variants). It receives the session's RNG and discovered CFG.
	StrategyFactory func(rng *rand.Rand, cfg *CFG) lowlevel.Strategy
	// Seed drives all randomized decisions of the session.
	Seed int64
	// StepLimit is the per-run hang threshold (the paper's 60 s timeout).
	StepLimit int64
	// SolverOptions are passed through to the constraint solver.
	SolverOptions solver.Options
	// ForkWeightDecay is the p of §3.4; 0 means the paper's 0.75.
	ForkWeightDecay float64
	// Parallel bounds the worker count of multi-session drivers such as
	// RunPortfolio; 0 means runtime.GOMAXPROCS(0), 1 forces serial
	// execution. A single Session is always confined to one goroutine.
	Parallel int
	// Metrics, when non-nil, receives the session's counters, gauges and
	// latency histograms (see internal/obs for the metric names). Sharing one
	// registry across sessions is safe (all cells are atomics); multi-session
	// drivers instead give each session a child registry and aggregate with
	// Registry.Merge.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives structured JSONL exploration events from
	// every layer (session lifecycle, forks, solver queries, CUPA picks,
	// test-case emissions). With a nil tracer the hot path pays a single
	// nil-check per site. Observation-only: a traced run's engine output is
	// byte-identical to an untraced one.
	Tracer obs.Tracer
	// Spans, when non-nil, receives hierarchical profiler spans from every
	// layer of this session (chef.session → engine.run → solver.check →
	// blast/cache/persist). A SpanProfiler serves one goroutine, so
	// multi-session drivers build one per session rather than sharing.
	// Observation-only, like Tracer.
	Spans *obs.SpanProfiler
	// Name labels this session's trace events (multi-session drivers set it
	// to the member/cell name).
	Name string
	// Faults, when non-nil, is the fault-injection plan for this run (see
	// internal/faults). The session derives a deterministic injector scoped
	// by Name and threads it into its solver; worker.stall rules match
	// SessionIndex. nil disables injection entirely.
	Faults *faults.Plan
	// SessionIndex identifies this session among its siblings (portfolio
	// member or harness cell index); worker.stall fault rules match on it.
	SessionIndex int
	// router, when non-nil, confines this session's engine to its own
	// signature range (path-space sharding). Only ShardedSession sets it;
	// it is unexported because a routed session is only meaningful as a
	// range cell under a coordinator that delivers the handoffs.
	router lowlevel.Router
}

// TestCase is one generated high-level test case: a concrete input
// assignment that drives the target program down a distinct high-level path.
type TestCase struct {
	Input    symexpr.Assignment
	HLSig    uint64 // signature of the high-level path
	HLLen    int    // number of high-level instructions executed
	Status   lowlevel.RunStatus
	Result   string // interpreter-reported outcome ("ok", "exception:...", ...)
	VirtTime int64  // virtual time at which the test was generated
}

// SamplePoint records exploration progress for the time-series analyses
// (Fig. 10).
type SamplePoint struct {
	VirtTime int64
	LLPaths  int64
	HLPaths  int64
}

// Session is one symbolic execution run of a target program.
type Session struct {
	opts Options
	prog TestProgram
	eng  *lowlevel.Engine
	rng  *rand.Rand

	// High-level execution tree: nodes are (parent, hlpc) pairs.
	hlNodes map[hlEdge]uint64
	nextHL  uint64

	cfg *CFG

	hlPaths map[uint64]bool
	tests   []TestCase
	series  []SamplePoint

	cur *Ctx // context of the run in progress

	// Fault injection (nil when disabled).
	faults  *faults.Injector
	stalled bool

	// cancelled records that RunContext stopped early because its context
	// was done; the tests generated so far remain valid.
	cancelled bool

	// Observability (nil when disabled).
	tracer   obs.Tracer
	spans    *obs.SpanProfiler
	metrics  *obs.Registry
	mLogPC   *obs.Counter
	mTests   *obs.Counter
	mHLPaths *obs.Counter
	mStalled *obs.Counter
}

type hlEdge struct {
	parent uint64
	hlpc   HLPC
}

// NewSession builds a session for the given symbolic test.
func NewSession(prog TestProgram, opts Options) *Session {
	// Derive the session's fault injector before the options are captured:
	// its decisions are a pure function of (plan seed, scope, occurrence
	// index), so sibling sessions fault independently of scheduling.
	var inj *faults.Injector
	if opts.Faults != nil {
		scope := opts.Name
		if scope == "" {
			scope = "session"
		}
		inj = opts.Faults.Injector(scope)
		inj.Instrument(opts.Metrics)
		opts.SolverOptions.Faults = inj
	}
	s := &Session{
		opts:    opts,
		prog:    prog,
		rng:     rand.New(rand.NewSource(opts.Seed ^ 0x5eed)),
		hlNodes: map[hlEdge]uint64{},
		cfg:     NewCFG(),
		hlPaths: map[uint64]bool{},
		faults:  inj,
		tracer:  obs.WithSession(opts.Tracer, opts.Name),
		spans:   opts.Spans,
		metrics: opts.Metrics,
	}
	if s.metrics != nil {
		s.mLogPC = s.metrics.Counter(obs.MChefLogPC)
		s.mTests = s.metrics.Counter(obs.MChefTests)
		s.mHLPaths = s.metrics.Counter(obs.MChefHLPaths)
		s.mStalled = s.metrics.Counter(obs.MSessionsStalled)
	}
	var strat lowlevel.Strategy
	if opts.StrategyFactory != nil {
		strat = opts.StrategyFactory(s.rng, s.cfg)
	} else {
		switch opts.Strategy {
		case StrategyCUPAPath:
			strat = cupa.NewPathOptimized(s.rng)
		case StrategyCUPACoverage:
			strat = cupa.NewCoverageOptimized(s.rng, s.cfg.Distance)
		case StrategyDFS:
			strat = lowlevel.NewDFSStrategy()
		case StrategyBFS:
			strat = lowlevel.NewBFSStrategy()
		default:
			strat = lowlevel.NewRandomStrategy(s.rng)
		}
	}
	s.eng = lowlevel.NewEngine(s.runOnce, strat, lowlevel.Options{
		StepLimit:       opts.StepLimit,
		Seed:            opts.Seed,
		SolverOptions:   opts.SolverOptions,
		ForkWeightDecay: opts.ForkWeightDecay,
		Metrics:         opts.Metrics,
		Tracer:          s.tracer,
		Spans:           opts.Spans,
		Router:          opts.router,
	})
	// CUPA-based strategies additionally report per-class selection counts.
	if cs, ok := strat.(*cupa.Strategy); ok && (s.metrics != nil || s.tracer != nil) {
		cs.Instrument(s.metrics, s.tracer, s.eng.Clock)
	}
	return s
}

// runOnce adapts the symbolic test to the low-level engine's Program type.
func (s *Session) runOnce(m *lowlevel.Machine) {
	ctx := &Ctx{M: m, s: s}
	s.cur = ctx
	s.prog(ctx)
}

// Run explores until the virtual-time budget is exhausted or the state queue
// drains, and returns the generated test cases. It is RunContext with a
// background context: the two are byte-identical for uncancelled runs.
func (s *Session) Run(budget int64) []TestCase {
	return s.RunContext(context.Background(), budget)
}

// RunContext is Run with cooperative cancellation: the context is checked
// between engine runs (each bounded by StepLimit virtual steps), so a
// cancelled exploration stops promptly — after at most one more run — and
// returns the test cases generated so far. Cancellation is observation-safe:
// it never alters the tests produced before the cancellation point, and a
// run with an uncancelled context is byte-identical to Run.
func (s *Session) RunContext(ctx context.Context, budget int64) []TestCase {
	if ctx == nil {
		ctx = context.Background()
	}
	// The whole exploration is one chef.session span; its virtual duration
	// is the engine clock, which only advances inside nested engine.run
	// spans, so the session's self time is zero by construction.
	sp := s.spans.Start(obs.SpanChefSession)
	defer func() { sp.End(s.eng.Clock()) }()
	if s.tracer != nil {
		s.tracer.Emit(&obs.Event{
			Kind:     obs.KindSessionStart,
			Seed:     s.opts.Seed,
			Strategy: s.opts.Strategy.String(),
		})
	}
	// A stalled worker never starts exploring: it terminates cleanly with
	// zero tests so a portfolio or harness degrades to the surviving
	// members instead of wedging or miscounting.
	if s.faults.FireStall(s.opts.SessionIndex) {
		s.stalled = true
		if s.mStalled != nil {
			s.mStalled.Inc()
		}
		if s.tracer != nil {
			s.tracer.Emit(&obs.Event{Kind: obs.KindFault, Site: string(faults.WorkerStall)})
			s.tracer.Emit(&obs.Event{Kind: obs.KindSessionEnd, Status: "stalled"})
		}
		return s.tests
	}
	if ctx.Err() != nil {
		s.cancelled = true
	} else {
		info := s.eng.RunInitial()
		s.finishRun(info)
		for s.eng.Clock() < budget {
			if ctx.Err() != nil {
				s.cancelled = true
				break
			}
			info, more := s.eng.SelectAndRun()
			if !more {
				break
			}
			if info != nil {
				s.finishRun(info)
			}
		}
	}
	if s.tracer != nil {
		st := s.eng.Stats()
		ev := &obs.Event{
			T:       s.eng.Clock(),
			Kind:    obs.KindSessionEnd,
			Tests:   len(s.tests),
			HLPaths: len(s.hlPaths),
			LLPaths: st.LLPaths,
		}
		if s.cancelled {
			ev.Status = "cancelled"
		}
		s.tracer.Emit(ev)
	}
	return s.tests
}

// Cancelled reports whether RunContext stopped early because its context was
// done.
func (s *Session) Cancelled() bool { return s.cancelled }

func (s *Session) finishRun(info *lowlevel.RunInfo) {
	ctx := s.cur
	s.cur = nil
	if info.Status == lowlevel.RunAssumeFailed {
		s.sample()
		return
	}
	if ctx != nil && !s.hlPaths[ctx.hlSig] {
		s.hlPaths[ctx.hlSig] = true
		s.tests = append(s.tests, TestCase{
			Input:    info.Input.Clone(),
			HLSig:    ctx.hlSig,
			HLLen:    ctx.hlLen,
			Status:   info.Status,
			Result:   ctx.result,
			VirtTime: s.eng.Clock(),
		})
		if s.mTests != nil {
			s.mTests.Inc()
			s.mHLPaths.Inc()
		}
		if s.tracer != nil {
			s.tracer.Emit(&obs.Event{
				T:      s.eng.Clock(),
				Kind:   obs.KindTestCase,
				HLLen:  ctx.hlLen,
				Sig:    fmt.Sprintf("%016x", ctx.hlSig),
				Status: info.Status.String(),
				Result: ctx.result,
				Tests:  len(s.tests),
			})
		}
	}
	s.sample()
}

func (s *Session) sample() {
	s.series = append(s.series, SamplePoint{
		VirtTime: s.eng.Clock(),
		LLPaths:  s.eng.Stats().LLPaths,
		HLPaths:  int64(len(s.hlPaths)),
	})
}

// Tests returns the generated test cases so far.
func (s *Session) Tests() []TestCase { return s.tests }

// Series returns the exploration progress samples.
func (s *Session) Series() []SamplePoint { return s.series }

// HLPathCount returns the number of distinct high-level paths discovered.
func (s *Session) HLPathCount() int { return len(s.hlPaths) }

// Engine exposes the underlying low-level engine (stats, clock).
func (s *Session) Engine() *lowlevel.Engine { return s.eng }

// CFG exposes the dynamically discovered high-level CFG.
func (s *Session) CFG() *CFG { return s.cfg }

// hlNode interns the child of parent along hlpc in the high-level execution
// tree and returns its id (the dynamic HLPC of §3.3).
func (s *Session) hlNode(parent uint64, pc HLPC) uint64 {
	e := hlEdge{parent, pc}
	if id, ok := s.hlNodes[e]; ok {
		return id
	}
	s.nextHL++
	s.hlNodes[e] = s.nextHL
	return s.nextHL
}

// Ctx is the guest API handed to the instrumented interpreter — the CHEF
// side of Table 1. It wraps the low-level machine with high-level tracing.
type Ctx struct {
	M *lowlevel.Machine
	s *Session

	prevHLPC HLPC
	started  bool
	hlSig    uint64
	hlLen    int
	result   string
}

// LogPC implements log_pc(pc, opcode): the interpreter calls it at the head
// of its dispatch loop to declare the current high-level location and the
// opcode about to execute.
func (c *Ctx) LogPC(pc HLPC, opcode uint32) {
	c.M.Step(1)
	dyn := c.s.hlNode(c.M.DynHLPC, pc)
	c.M.DynHLPC = dyn
	c.M.StaticHLPC = pc
	c.M.Opcode = opcode
	if c.started {
		// Trace HLPC transitions at first observation only: the deduplicated
		// stream is the discovered high-level CFG in discovery order, keeping
		// traces bounded by CFG size rather than execution length.
		if c.s.cfg.AddEdge(c.prevHLPC, pc) && c.s.tracer != nil {
			c.s.tracer.Emit(&obs.Event{
				T:      c.s.eng.Clock() + c.M.Steps(),
				Kind:   obs.KindHLEdge,
				From:   c.prevHLPC,
				HLPC:   pc,
				Opcode: opcode,
			})
		}
	}
	c.s.cfg.SetOpcode(pc, opcode)
	c.prevHLPC = pc
	c.started = true
	c.hlSig = c.hlSig*0x100000001b3 ^ pc
	c.hlLen++
	if c.s.mLogPC != nil {
		c.s.mLogPC.Inc()
	}
}

// GetString implements the make_symbolic path of the symbolic test library's
// getString: it returns n concolic bytes named buf, defaulting to def
// (padded with zeros) on the first run.
func (c *Ctx) GetString(buf string, n int, def string) []lowlevel.SVal {
	out := make([]lowlevel.SVal, n)
	for i := 0; i < n; i++ {
		var d byte
		if i < len(def) {
			d = def[i]
		}
		out[i] = c.M.InputByte(buf, i, d)
	}
	return out
}

// GetInt returns a concolic 32-bit integer input named name.
func (c *Ctx) GetInt(name string, def int32) lowlevel.SVal {
	return c.M.InputInt32(name, def)
}

// Assume implements the assume(expr) API call.
func (c *Ctx) Assume(llpc lowlevel.LLPC, cond lowlevel.SVal) { c.M.Assume(llpc, cond) }

// Concretize implements the concretize(buf) API call.
func (c *Ctx) Concretize(v lowlevel.SVal) uint64 { return c.M.ConcretizeSilent(v) }

// UpperBound implements the upper_bound(value) API call.
func (c *Ctx) UpperBound(v lowlevel.SVal) uint64 { return c.M.UpperBound(v) }

// IsSymbolic implements the is_symbolic(buf) API call.
func (c *Ctx) IsSymbolic(v lowlevel.SVal) bool { return v.IsSymbolic() }

// StartSymbolic implements start_symbolic. Under S2E the call switched the
// VM into multi-path mode; in this engine every session run is symbolic from
// the first instruction, so the call only anchors the high-level trace (the
// next log_pc starts a fresh CFG edge chain), letting tests scope tracing to
// the code under test.
func (c *Ctx) StartSymbolic() {
	c.started = false
}

// EndSymbolic implements end_symbolic: it terminates the current state.
func (c *Ctx) EndSymbolic() { c.M.EndSymbolic() }

// SetResult records the interpreter-visible outcome of the run (for example
// "ok" or "exception:KeyError"), stored on the generated test case.
func (c *Ctx) SetResult(r string) { c.result = r }

// Result returns the recorded outcome.
func (c *Ctx) Result() string { return c.result }

// CFG is the dynamically discovered high-level control-flow graph plus the
// derived data the coverage-optimized CUPA strategy needs: inferred
// branching opcodes and distances to potential branching points.
type CFG struct {
	succs    map[HLPC]map[HLPC]bool
	preds    map[HLPC]map[HLPC]bool
	opcodeOf map[HLPC]uint32

	dirty bool
	dist  map[HLPC]int
}

// NewCFG returns an empty CFG.
func NewCFG() *CFG {
	return &CFG{
		succs:    map[HLPC]map[HLPC]bool{},
		preds:    map[HLPC]map[HLPC]bool{},
		opcodeOf: map[HLPC]uint32{},
	}
}

// AddEdge records an observed transition between high-level locations and
// reports whether the edge was new (first observation).
func (g *CFG) AddEdge(from, to HLPC) bool {
	m := g.succs[from]
	if m == nil {
		m = map[HLPC]bool{}
		g.succs[from] = m
	}
	if !m[to] {
		m[to] = true
		p := g.preds[to]
		if p == nil {
			p = map[HLPC]bool{}
			g.preds[to] = p
		}
		p[from] = true
		g.dirty = true
		return true
	}
	return false
}

// SetOpcode records the opcode of a high-level location.
func (g *CFG) SetOpcode(pc HLPC, opcode uint32) {
	if old, ok := g.opcodeOf[pc]; !ok || old != opcode {
		g.opcodeOf[pc] = opcode
		g.dirty = true
	}
}

// Nodes returns the number of distinct high-level locations seen.
func (g *CFG) Nodes() int { return len(g.opcodeOf) }

// Edges returns the number of distinct transitions seen.
func (g *CFG) Edges() int {
	n := 0
	for _, m := range g.succs {
		n += len(m)
	}
	return n
}

// BranchingOpcodes infers the opcodes that may branch, per §3.4: opcodes of
// instructions observed with out-degree >= 2, minus the 10% least frequent
// of them (which correspond to exceptions and other rare control transfers).
func (g *CFG) BranchingOpcodes() map[uint32]bool {
	freq := map[uint32]int{}
	for pc, m := range g.succs {
		if len(m) >= 2 {
			freq[g.opcodeOf[pc]]++
		}
	}
	if len(freq) == 0 {
		return map[uint32]bool{}
	}
	type of struct {
		op uint32
		n  int
	}
	all := make([]of, 0, len(freq))
	for op, n := range freq {
		all = append(all, of{op, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n < all[j].n
		}
		return all[i].op < all[j].op
	})
	drop := len(all) / 10
	out := map[uint32]bool{}
	for _, e := range all[drop:] {
		out[e.op] = true
	}
	return out
}

// PotentialBranchPoints returns the locations that have a branching opcode
// but only one observed successor — the frontier where new high-level
// branches may be discovered.
func (g *CFG) PotentialBranchPoints() []HLPC {
	branching := g.BranchingOpcodes()
	var out []HLPC
	for pc, op := range g.opcodeOf {
		if branching[op] && len(g.succs[pc]) == 1 {
			out = append(out, pc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const unknownDistance = 1 << 20

// Distance returns the forward distance (in CFG edges) from pc to the
// nearest potential branching point, recomputing lazily when the CFG
// changed. Locations that cannot reach any potential branching point get a
// large distance so they are deprioritized, never starved.
func (g *CFG) Distance(pc HLPC) int {
	if g.dirty || g.dist == nil {
		g.recompute()
	}
	if d, ok := g.dist[pc]; ok {
		return d
	}
	return unknownDistance
}

func (g *CFG) recompute() {
	g.dirty = false
	g.dist = map[HLPC]int{}
	frontier := g.PotentialBranchPoints()
	queue := make([]HLPC, 0, len(frontier))
	for _, pc := range frontier {
		g.dist[pc] = 0
		queue = append(queue, pc)
	}
	// Reverse BFS: distance from a node to the nearest frontier node along
	// forward edges.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := g.dist[cur]
		for pred := range g.preds[cur] {
			if _, ok := g.dist[pred]; !ok {
				g.dist[pred] = d + 1
				queue = append(queue, pred)
			}
		}
	}
}

// String summarizes the CFG.
func (g *CFG) String() string {
	return fmt.Sprintf("cfg{nodes: %d, edges: %d, frontier: %d}", g.Nodes(), g.Edges(), len(g.PotentialBranchPoints()))
}

// Summary condenses a finished session for reporting. Session.Summary
// returns it by value — a point-in-time snapshot; call again for fresh
// numbers. Aggregators (the portfolio runner, the experiment harness)
// combine per-session summaries with Add instead of summing fields by hand.
type Summary struct {
	HLTests     int
	HLPaths     int
	LLPaths     int64
	Runs        int64
	Hangs       int64
	Forks       int64
	UnsatStates int64
	Divergences int64
	CFGNodes    int
	CFGEdges    int
	VirtTime    int64

	// Degradation accounting (see lowlevel.Stats and internal/faults).
	RequeuedStates  int64
	AbandonedStates int64
	FaultsInjected  int64
	Stalled         int // 1 when the session stalled (worker.stall)
}

// Add folds another session's summary into s, field by field. CFG sizes and
// virtual times add up (a portfolio's aggregate CFG work), path counts add
// without cross-session deduplication — use PortfolioResult.Tests for the
// deduplicated view.
func (s *Summary) Add(o Summary) {
	s.HLTests += o.HLTests
	s.HLPaths += o.HLPaths
	s.LLPaths += o.LLPaths
	s.Runs += o.Runs
	s.Hangs += o.Hangs
	s.Forks += o.Forks
	s.UnsatStates += o.UnsatStates
	s.Divergences += o.Divergences
	s.CFGNodes += o.CFGNodes
	s.CFGEdges += o.CFGEdges
	s.VirtTime += o.VirtTime
	s.RequeuedStates += o.RequeuedStates
	s.AbandonedStates += o.AbandonedStates
	s.FaultsInjected += o.FaultsInjected
	s.Stalled += o.Stalled
}

// Summary returns a value snapshot of the session's headline numbers, taken
// at call time (it does not track later exploration).
func (s *Session) Summary() Summary {
	st := s.eng.Stats()
	sum := Summary{
		HLTests:         len(s.tests),
		HLPaths:         len(s.hlPaths),
		LLPaths:         st.LLPaths,
		Runs:            st.Runs,
		Hangs:           st.Hangs,
		Forks:           st.Forks,
		UnsatStates:     st.UnsatStates,
		Divergences:     st.Divergences,
		CFGNodes:        s.cfg.Nodes(),
		CFGEdges:        s.cfg.Edges(),
		VirtTime:        s.eng.Clock(),
		RequeuedStates:  st.RequeuedStates,
		AbandonedStates: st.AbandonedStates,
		FaultsInjected:  s.faults.Injected(),
	}
	if s.stalled {
		sum.Stalled = 1
	}
	return sum
}

// Stalled reports whether the session was stalled by an injected
// worker.stall fault and never explored.
func (s *Session) Stalled() bool { return s.stalled }

// FaultsInjected returns the number of faults this session's injector fired
// (solver and stall sites; the persistent store's injector counts
// separately).
func (s *Session) FaultsInjected() int64 { return s.faults.Injected() }

// ReplaySig executes the session's program once under the given concrete
// input on a non-forking machine and returns the high-level path signature
// the run produces. It lets external tools map concrete inputs (for example,
// test cases from another engine) onto this session's high-level paths —
// the §6.6 reference-implementation workflow.
func (s *Session) ReplaySig(input symexpr.Assignment) uint64 {
	limit := s.opts.StepLimit
	if limit <= 0 {
		limit = 1 << 20
	}
	m := lowlevel.NewConcreteMachine(input.Clone(), limit)
	ctx := &Ctx{M: m, s: s}
	m.RunConcrete(func(*lowlevel.Machine) { s.prog(ctx) })
	return ctx.hlSig
}
