package chef

import (
	"strings"
	"testing"

	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// validateEmailProg is a synthetic interpreter run with the structure of the
// paper's Fig. 2/3 running example: a "find" instruction that forks one
// low-level path per character position within a single high-level location,
// followed by a high-level branch on the result.
func validateEmailProg(n int) TestProgram {
	const (
		opFind   = 1
		opBranch = 2
		opRet    = 3
		opRaise  = 4
	)
	return func(ctx *Ctx) {
		email := ctx.GetString("email", n, "")
		// HLPC 100: email.find("@") — native loop, one LL branch per index.
		ctx.LogPC(100, opFind)
		pos := lowlevel.ConcreteVal(uint64(0xffffffff), symexpr.W32) // -1
		for i := 0; i < n; i++ {
			ctx.M.Step(1)
			hit := lowlevel.EqV(email[i], lowlevel.ConcreteVal('@', symexpr.W8))
			if ctx.M.Branch(lowlevel.LLPC(1000+0), hit) {
				pos = lowlevel.ConcreteVal(uint64(i), symexpr.W32)
				break
			}
		}
		// HLPC 200: if pos < 3: raise
		ctx.LogPC(200, opBranch)
		if ctx.M.Branch(2000, lowlevel.SltV(pos, lowlevel.ConcreteVal(3, symexpr.W32))) {
			ctx.LogPC(300, opRaise)
			ctx.SetResult("exception:InvalidEmailError")
			return
		}
		ctx.LogPC(400, opRet)
		ctx.SetResult("ok")
	}
}

func TestDistillsHLPathsFromLLPaths(t *testing.T) {
	s := NewSession(validateEmailProg(6), Options{Strategy: StrategyCUPAPath, Seed: 1})
	tests := s.Run(1 << 22)
	st := s.Engine().Stats()
	if st.LLPaths <= int64(len(tests)) {
		t.Fatalf("expected more LL paths (%d) than HL tests (%d)", st.LLPaths, len(tests))
	}
	// HL paths: the program has these HL outcomes: '@' at each position
	// 0..5 (positions 0..2 raise, 3..5 ok) and not-found (raise). The find
	// loop breaks at the first '@', so the HL trace differs only through
	// the branch outcome — exactly 2 distinct HL paths.
	if got := s.HLPathCount(); got != 2 {
		t.Fatalf("HL paths = %d, want 2", got)
	}
	// Both outcomes must be represented.
	results := map[string]bool{}
	for _, tc := range tests {
		results[tc.Result] = true
	}
	if !results["ok"] || !results["exception:InvalidEmailError"] {
		t.Fatalf("outcomes %v, want both ok and exception", results)
	}
}

func TestTestInputsSatisfyTheirOutcome(t *testing.T) {
	// Soundness: replaying each generated test concretely must reproduce the
	// recorded outcome.
	s := NewSession(validateEmailProg(6), Options{Strategy: StrategyCUPAPath, Seed: 2})
	tests := s.Run(1 << 22)
	if len(tests) == 0 {
		t.Fatal("no tests generated")
	}
	for _, tc := range tests {
		m := lowlevel.NewConcreteMachine(tc.Input.Clone(), 1<<20)
		var got string
		status := m.RunConcrete(func(m *lowlevel.Machine) {
			ctx := &Ctx{M: m, s: NewSession(nil, Options{})}
			validateEmailProg(6)(ctx)
			got = ctx.Result()
		})
		if status != lowlevel.RunCompleted {
			t.Fatalf("replay status %v", status)
		}
		if got != tc.Result {
			t.Fatalf("replay outcome %q, want %q (input %v)", got, tc.Result, tc.Input)
		}
	}
}

func TestCFGDiscovery(t *testing.T) {
	s := NewSession(validateEmailProg(6), Options{Strategy: StrategyRandom, Seed: 3})
	s.Run(1 << 22)
	g := s.CFG()
	if g.Nodes() < 3 {
		t.Fatalf("cfg nodes = %d, want >= 3", g.Nodes())
	}
	// HLPC 200 must have been observed with two successors (300 and 400).
	if len(g.succs[200]) != 2 {
		t.Fatalf("succs(200) = %v, want 2 targets", g.succs[200])
	}
	ops := g.BranchingOpcodes()
	if !ops[2] { // opBranch
		t.Fatalf("branching opcodes %v must include opcode 2", ops)
	}
}

func TestCFGDistances(t *testing.T) {
	g := NewCFG()
	// Linear chain 1 -> 2 -> 3, where 3 has a branching opcode and one
	// successor (4): 3 is a potential branch point.
	g.SetOpcode(1, 7)
	g.SetOpcode(2, 7)
	g.SetOpcode(3, 9)
	g.SetOpcode(4, 7)
	g.SetOpcode(5, 9)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	// Give opcode 9 branching evidence elsewhere: 5 has two successors.
	g.AddEdge(5, 1)
	g.AddEdge(5, 4)
	if !g.BranchingOpcodes()[9] {
		t.Fatal("opcode 9 must be branching")
	}
	pts := g.PotentialBranchPoints()
	found := false
	for _, p := range pts {
		if p == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("potential branch points %v must include 3", pts)
	}
	if d := g.Distance(3); d != 0 {
		t.Fatalf("dist(3) = %d, want 0", d)
	}
	if d := g.Distance(2); d != 1 {
		t.Fatalf("dist(2) = %d, want 1", d)
	}
	if d := g.Distance(1); d != 2 {
		t.Fatalf("dist(1) = %d, want 2", d)
	}
	if d := g.Distance(999); d != unknownDistance {
		t.Fatalf("dist(unknown) = %d, want %d", d, unknownDistance)
	}
}

func TestSeriesMonotonic(t *testing.T) {
	s := NewSession(validateEmailProg(4), Options{Strategy: StrategyCUPAPath, Seed: 4})
	s.Run(1 << 22)
	series := s.Series()
	if len(series) == 0 {
		t.Fatal("no samples")
	}
	for i := 1; i < len(series); i++ {
		if series[i].VirtTime < series[i-1].VirtTime ||
			series[i].LLPaths < series[i-1].LLPaths ||
			series[i].HLPaths < series[i-1].HLPaths {
			t.Fatalf("series not monotone at %d: %+v -> %+v", i, series[i-1], series[i])
		}
	}
}

func TestAllStrategiesTerminate(t *testing.T) {
	for _, k := range []StrategyKind{StrategyRandom, StrategyCUPAPath, StrategyCUPACoverage, StrategyDFS, StrategyBFS} {
		s := NewSession(validateEmailProg(4), Options{Strategy: k, Seed: 5})
		tests := s.Run(1 << 22)
		if len(tests) == 0 {
			t.Errorf("strategy %v produced no tests", k)
		}
	}
}

func TestHangDetectedAndReported(t *testing.T) {
	prog := func(ctx *Ctx) {
		b := ctx.GetString("in", 1, "")
		ctx.LogPC(1, 1)
		if ctx.M.Branch(10, lowlevel.EqV(b[0], lowlevel.ConcreteVal('/', symexpr.W8))) {
			ctx.LogPC(2, 1)
			for {
				ctx.M.Step(1) // parser spins waiting for a token
			}
		}
		ctx.LogPC(3, 1)
		ctx.SetResult("ok")
	}
	s := NewSession(prog, Options{Strategy: StrategyCUPAPath, Seed: 6, StepLimit: 5000})
	tests := s.Run(1 << 22)
	hang := false
	for _, tc := range tests {
		if tc.Status == lowlevel.RunHang {
			hang = true
		}
	}
	if !hang {
		t.Fatalf("expected a hang test case, got %+v", tests)
	}
}

func TestDedupHLPaths(t *testing.T) {
	// A program whose second byte never influences the HL path must yield
	// exactly as many tests as HL paths, not as many as LL paths.
	prog := func(ctx *Ctx) {
		in := ctx.GetString("in", 2, "")
		ctx.LogPC(1, 1)
		// Native-level forks on both bytes within one HL instruction.
		ctx.M.Branch(10, lowlevel.UltV(in[0], lowlevel.ConcreteVal(100, symexpr.W8)))
		ctx.M.Branch(11, lowlevel.UltV(in[1], lowlevel.ConcreteVal(100, symexpr.W8)))
		ctx.LogPC(2, 1)
		ctx.SetResult("ok")
	}
	s := NewSession(prog, Options{Strategy: StrategyRandom, Seed: 7})
	tests := s.Run(1 << 22)
	if s.Engine().Stats().LLPaths != 4 {
		t.Fatalf("LL paths = %d, want 4", s.Engine().Stats().LLPaths)
	}
	if len(tests) != 1 {
		t.Fatalf("HL tests = %d, want 1 (same HL path)", len(tests))
	}
}

func TestGetIntAndAPIPassthroughs(t *testing.T) {
	var sawSymbolic bool
	var bound uint64
	prog := func(ctx *Ctx) {
		ctx.LogPC(1, 1)
		x := ctx.GetInt("x", 5)
		sawSymbolic = ctx.IsSymbolic(x)
		ctx.Assume(50, lowlevel.UltV(x, lowlevel.ConcreteVal(10, symexpr.W32)))
		bound = ctx.UpperBound(x)
		ctx.Concretize(x)
		ctx.SetResult("ok")
	}
	s := NewSession(prog, Options{Strategy: StrategyRandom, Seed: 8})
	s.Run(1 << 22)
	if !sawSymbolic {
		t.Error("GetInt must be symbolic")
	}
	if bound != 9 {
		t.Errorf("upper bound = %d, want 9", bound)
	}
}

func TestBranchingOpcodeDropsRareTail(t *testing.T) {
	g := NewCFG()
	// Eleven distinct opcodes observed branching; opcode 99 branches at one
	// location only, the others at many. With 11 branching opcodes, the 10%
	// least frequent (= 1 opcode) is dropped: the rare one.
	for op := uint32(1); op <= 10; op++ {
		for site := 0; site < 5; site++ {
			pc := uint64(op)*100 + uint64(site)
			g.SetOpcode(pc, op)
			g.AddEdge(pc, pc+1)
			g.AddEdge(pc, pc+2)
		}
	}
	g.SetOpcode(9900, 99)
	g.AddEdge(9900, 9901)
	g.AddEdge(9900, 9902)
	ops := g.BranchingOpcodes()
	if ops[99] {
		t.Errorf("rare opcode 99 should be dropped from %v", ops)
	}
	for op := uint32(1); op <= 10; op++ {
		if !ops[op] {
			t.Errorf("frequent opcode %d missing from %v", op, ops)
		}
	}
}

func TestSessionDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []uint64 {
		s := NewSession(validateEmailProg(5), Options{Strategy: StrategyCUPAPath, Seed: seed})
		tests := s.Run(1 << 21)
		var sigs []uint64
		for _, tc := range tests {
			sigs = append(sigs, tc.HLSig)
		}
		return sigs
	}
	a1, a2 := run(42), run(42)
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different test counts: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, different path order at %d", i)
		}
	}
}

func TestCFGDOTExport(t *testing.T) {
	s := NewSession(validateEmailProg(4), Options{Strategy: StrategyCUPAPath, Seed: 20})
	s.Run(1 << 21)
	dot := s.CFG().DOT("email")
	for _, want := range []string{"digraph \"email\"", "n100", "n200 -> ", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestSessionSummary(t *testing.T) {
	s := NewSession(validateEmailProg(4), Options{Strategy: StrategyCUPAPath, Seed: 30})
	tests := s.Run(1 << 21)
	sum := s.Summary()
	if sum.HLTests != len(tests) || sum.HLPaths == 0 || sum.LLPaths < int64(sum.HLPaths) {
		t.Fatalf("inconsistent summary: %+v", sum)
	}
	if sum.CFGNodes == 0 || sum.VirtTime == 0 || sum.Runs == 0 {
		t.Fatalf("summary missing data: %+v", sum)
	}
	// Soundness invariant of the concolic engine: no divergences on this
	// well-behaved program.
	if sum.Divergences != 0 {
		t.Errorf("unexpected divergences: %+v", sum)
	}
}

func TestStartSymbolicScopesTracing(t *testing.T) {
	prog := func(ctx *Ctx) {
		ctx.LogPC(1, 1) // setup noise
		ctx.StartSymbolic()
		ctx.LogPC(2, 1)
		ctx.LogPC(3, 1)
		ctx.SetResult("ok")
	}
	s := NewSession(prog, Options{Strategy: StrategyRandom, Seed: 41})
	s.Run(100_000)
	// The 1->2 edge must not exist: StartSymbolic broke the chain.
	if s.CFG().succs[1][2] {
		t.Error("StartSymbolic failed to anchor the trace")
	}
	if !s.CFG().succs[2][3] {
		t.Error("edges after StartSymbolic missing")
	}
}
