package chef

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the dynamically discovered high-level CFG in Graphviz format,
// marking the potential branching points (the frontier the
// coverage-optimized CUPA steers toward) with doubled borders. Useful for
// inspecting what the engine has learned about a target program.
func (g *CFG) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", name)
	frontier := map[HLPC]bool{}
	for _, pc := range g.PotentialBranchPoints() {
		frontier[pc] = true
	}
	pcs := make([]HLPC, 0, len(g.opcodeOf))
	for pc := range g.opcodeOf {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		attrs := fmt.Sprintf("label=\"%d:%d\\nop=%d\"", pc>>16, pc&0xffff, g.opcodeOf[pc])
		if frontier[pc] {
			attrs += ", peripheries=2, color=red"
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", pc, attrs)
	}
	for _, from := range pcs {
		tos := make([]HLPC, 0, len(g.succs[from]))
		for to := range g.succs[from] {
			tos = append(tos, to)
		}
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
		for _, to := range tos {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", from, to)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
