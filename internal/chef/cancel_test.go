package chef

import (
	"context"
	"reflect"
	"testing"

	"chef/internal/obs"
)

// A run with an uncancelled context must be byte-identical to Run: the
// context check is observation-only until it fires.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a := NewSession(validateEmailProg(6), Options{Strategy: StrategyCUPAPath, Seed: 7})
	ta := a.Run(1 << 22)
	b := NewSession(validateEmailProg(6), Options{Strategy: StrategyCUPAPath, Seed: 7})
	tb := b.RunContext(context.Background(), 1<<22)
	if !reflect.DeepEqual(ta, tb) {
		t.Fatalf("RunContext(Background) diverged from Run:\n%v\nvs\n%v", ta, tb)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("summaries diverged: %+v vs %+v", a.Summary(), b.Summary())
	}
	if b.Cancelled() {
		t.Fatal("uncancelled run reports Cancelled")
	}
}

// A context cancelled before the run starts must not explore at all, and the
// session must still terminate cleanly (the worker-slot release path in the
// server depends on RunContext returning).
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := &obs.Collect{}
	s := NewSession(validateEmailProg(6), Options{Strategy: StrategyCUPAPath, Seed: 1, Tracer: tr})
	tests := s.RunContext(ctx, 1<<22)
	if len(tests) != 0 {
		t.Fatalf("pre-cancelled run produced %d tests", len(tests))
	}
	if !s.Cancelled() {
		t.Fatal("Cancelled() = false after pre-cancelled run")
	}
	if got := s.Summary().Runs; got != 0 {
		t.Fatalf("pre-cancelled run executed %d engine runs, want 0", got)
	}
	var end *obs.Event
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindSessionEnd {
			e := ev
			end = &e
		}
	}
	if end == nil || end.Status != "cancelled" {
		t.Fatalf("session-end event = %+v, want Status cancelled", end)
	}
}

// Cancelling mid-exploration stops the session after at most one more
// engine run, keeping the tests generated before the cancellation point.
func TestRunContextCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	runs := 0
	inner := validateEmailProg(6)
	prog := func(c *Ctx) {
		runs++
		if runs == 2 {
			cancel()
		}
		inner(c)
	}
	s := NewSession(prog, Options{Strategy: StrategyCUPAPath, Seed: 1})
	s.RunContext(ctx, 1<<22)
	if !s.Cancelled() {
		t.Fatal("Cancelled() = false after mid-run cancel")
	}
	// The cancel fires during run 2; the loop checks the context before
	// every subsequent run, so exploration stops right there.
	if got := s.Summary().Runs; got != 2 {
		t.Fatalf("session executed %d engine runs after cancel at run 2, want 2", got)
	}
}

// RunPortfolioContext with an uncancelled context matches RunPortfolio, and
// a pre-cancelled one terminates with zero exploration.
func TestRunPortfolioContext(t *testing.T) {
	members := []PortfolioMember{
		{Name: "a", Prog: validateEmailProg(6)},
		{Name: "b", Prog: validateEmailProg(6)},
	}
	opts := Options{Strategy: StrategyCUPAPath, Seed: 3, Parallel: 1}
	serial := RunPortfolio(members, opts, 1<<22)
	ctxed := RunPortfolioContext(context.Background(), members, opts, 1<<22)
	if !reflect.DeepEqual(serial, ctxed) {
		t.Fatal("RunPortfolioContext(Background) diverged from RunPortfolio")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunPortfolioContext(ctx, members, opts, 1<<22)
	if res.Aggregate.Runs != 0 {
		t.Fatalf("cancelled portfolio executed %d runs, want 0", res.Aggregate.Runs)
	}
}
