package chef

import (
	"testing"

	"chef/internal/obs"
)

// TestTracedRunMatchesUntraced is the determinism contract of the
// observability layer: attaching a tracer and a metrics registry must not
// change a single engine decision, so the generated tests and the session
// summary are identical to an untraced run with the same seed.
func TestTracedRunMatchesUntraced(t *testing.T) {
	const budget = 400_000
	run := func(tr obs.Tracer, reg *obs.Registry) ([]TestCase, Summary) {
		s := NewSession(validateEmailProg(5), Options{
			Strategy: StrategyCUPAPath, Seed: 11, Tracer: tr, Metrics: reg, Name: "det",
		})
		return s.Run(budget), s.Summary()
	}
	plainTests, plainSum := run(nil, nil)
	var collect obs.Collect
	reg := obs.NewRegistry()
	tracedTests, tracedSum := run(&collect, reg)

	if plainSum != tracedSum {
		t.Errorf("summary diverged:\n plain  %+v\n traced %+v", plainSum, tracedSum)
	}
	if len(plainTests) != len(tracedTests) {
		t.Fatalf("test count diverged: %d vs %d", len(plainTests), len(tracedTests))
	}
	for i := range plainTests {
		if plainTests[i].Result != tracedTests[i].Result || plainTests[i].HLSig != tracedTests[i].HLSig {
			t.Errorf("test %d diverged: %q/%x vs %q/%x", i,
				plainTests[i].Result, plainTests[i].HLSig, tracedTests[i].Result, tracedTests[i].HLSig)
		}
		for v, val := range plainTests[i].Input {
			if tracedTests[i].Input[v] != val {
				t.Errorf("test %d input %v diverged: %d vs %d", i, v, val, tracedTests[i].Input[v])
			}
		}
	}

	// Events and metrics must agree with the engine's own counters.
	if got := collect.CountKind(obs.KindTestCase); got != len(tracedTests) {
		t.Errorf("testcase events = %d, want %d", got, len(tracedTests))
	}
	if got := collect.CountKind(obs.KindSessionStart); got != 1 {
		t.Errorf("session-start events = %d, want 1", got)
	}
	if got := collect.CountKind(obs.KindSessionEnd); got != 1 {
		t.Errorf("session-end events = %d, want 1", got)
	}
	if got, want := int64(collect.CountKind(obs.KindLLFork)), tracedSum.Forks; got != want {
		t.Errorf("ll-fork events = %d, engine forks = %d", got, want)
	}
	if got, want := int64(collect.CountKind(obs.KindRunEnd)), tracedSum.Runs; got != want {
		t.Errorf("run-end events = %d, engine runs = %d", got, want)
	}
	if got, want := reg.Counter(obs.MForks).Value(), tracedSum.Forks; got != want {
		t.Errorf("metric %s = %d, engine forks = %d", obs.MForks, got, want)
	}
	if got, want := reg.Counter(obs.MRuns).Value(), tracedSum.Runs; got != want {
		t.Errorf("metric %s = %d, engine runs = %d", obs.MRuns, got, want)
	}
	if got, want := reg.Counter(obs.MChefTests).Value(), int64(len(tracedTests)); got != want {
		t.Errorf("metric %s = %d, want %d", obs.MChefTests, got, want)
	}
	// Per-LLPC fork counters must sum back to the total.
	var vecTotal int64
	for _, n := range reg.CounterVec(obs.MForksByLLPC).Snapshot() {
		vecTotal += n
	}
	if vecTotal != tracedSum.Forks {
		t.Errorf("per-LLPC fork counters sum to %d, engine forks = %d", vecTotal, tracedSum.Forks)
	}
	// Every event carries the session label.
	for _, ev := range collect.Events() {
		if ev.Session != "det" {
			t.Fatalf("event %+v missing session label", ev)
		}
	}
}

// TestSolverQueryEventsMatchStats cross-checks solver instrumentation: query
// events equal the solver's query counter and cache-hit flags match the
// cache counters.
func TestSolverQueryEventsMatchStats(t *testing.T) {
	var collect obs.Collect
	reg := obs.NewRegistry()
	s := NewSession(validateEmailProg(4), Options{
		Strategy: StrategyCUPAPath, Seed: 3, Tracer: &collect, Metrics: reg,
	})
	s.Run(300_000)
	st := s.Engine().Solver().Stats()
	if got := int64(collect.CountKind(obs.KindSolverQuery)); got != st.Queries {
		t.Errorf("solver-query events = %d, solver queries = %d", got, st.Queries)
	}
	var hits int64
	for _, ev := range collect.Events() {
		if ev.Kind == obs.KindSolverQuery && ev.CacheHit {
			hits++
		}
	}
	if hits != st.CacheHits {
		t.Errorf("cache-hit events = %d, solver cache hits = %d", hits, st.CacheHits)
	}
	if got := reg.Counter(obs.MSolverQueries).Value(); got != st.Queries {
		t.Errorf("metric %s = %d, want %d", obs.MSolverQueries, got, st.Queries)
	}
	if got := reg.Histogram(obs.MSolverQueryVirt).Count(); got != st.Queries {
		t.Errorf("virt latency histogram count = %d, want %d", got, st.Queries)
	}
	if got := reg.Histogram(obs.MSolverQueryWall).Count(); got != st.Queries {
		t.Errorf("wall latency histogram count = %d, want %d", got, st.Queries)
	}
}

// TestPortfolioAggregateMatchesMembers checks the Summary.Add-based
// portfolio aggregation (the satellite replacing ad-hoc field sums) and the
// member-order metric merge.
func TestPortfolioAggregateMatchesMembers(t *testing.T) {
	members := []PortfolioMember{
		{Name: "m0", Prog: validateEmailProg(3)},
		{Name: "m1", Prog: validateEmailProg(5)},
	}
	reg := obs.NewRegistry()
	res := RunPortfolio(members, Options{Strategy: StrategyCUPAPath, Seed: 9, Metrics: reg, Parallel: 2}, 400_000)
	if res.Aggregate.Runs <= 0 || res.Aggregate.VirtTime <= 0 {
		t.Errorf("portfolio aggregate empty: %+v", res.Aggregate)
	}
	if got := reg.Counter(obs.MRuns).Value(); got != res.Aggregate.Runs {
		t.Errorf("merged metric runs = %d, aggregate = %d", got, res.Aggregate.Runs)
	}
	if got := reg.Counter(obs.MForks).Value(); got != res.Aggregate.Forks {
		t.Errorf("merged metric forks = %d, aggregate = %d", got, res.Aggregate.Forks)
	}
	if len(res.Tests) == 0 {
		t.Error("portfolio found no tests")
	}
}
