package chef

// Portfolio exploration implements the extension §6.5 of the paper suggests:
// "for large packages, a portfolio of interpreter builds with different
// optimizations enabled would help further increase the path coverage."
// Fig. 11 motivates it with xlrd, whose best-performing build is not the
// fully optimized one: different optimization levels steer the search into
// different behaviors of the target.
//
// RunPortfolio splits the virtual-time budget across one session per
// interpreter build and merges the distinct high-level paths. High-level
// path signatures are comparable across sessions because they derive from
// the target program's HLPCs, which are deterministic for a fixed source.

// PortfolioMember is one build participating in a portfolio.
type PortfolioMember struct {
	Name string
	Prog TestProgram
}

// PortfolioResult aggregates a portfolio run.
type PortfolioResult struct {
	// Tests are the merged test cases, one per distinct high-level path
	// across all builds (first build to find a path wins).
	Tests []TestCase
	// PerBuild reports each member's own distinct-path count.
	PerBuild []int
	// NewPerBuild reports how many paths each member contributed that no
	// earlier member had found.
	NewPerBuild []int
}

// RunPortfolio explores every member under an equal share of the budget and
// merges distinct high-level paths.
func RunPortfolio(members []PortfolioMember, opts Options, budget int64) PortfolioResult {
	res := PortfolioResult{}
	if len(members) == 0 {
		return res
	}
	share := budget / int64(len(members))
	seen := map[uint64]bool{}
	for i, m := range members {
		memberOpts := opts
		memberOpts.Seed = opts.Seed + int64(i)*104729
		s := NewSession(m.Prog, memberOpts)
		tests := s.Run(share)
		res.PerBuild = append(res.PerBuild, len(tests))
		fresh := 0
		for _, tc := range tests {
			if !seen[tc.HLSig] {
				seen[tc.HLSig] = true
				res.Tests = append(res.Tests, tc)
				fresh++
			}
		}
		res.NewPerBuild = append(res.NewPerBuild, fresh)
	}
	return res
}
