package chef

import (
	"context"
	"runtime"
	"sync"

	"chef/internal/obs"
)

// Portfolio exploration implements the extension §6.5 of the paper suggests:
// "for large packages, a portfolio of interpreter builds with different
// optimizations enabled would help further increase the path coverage."
// Fig. 11 motivates it with xlrd, whose best-performing build is not the
// fully optimized one: different optimization levels steer the search into
// different behaviors of the target.
//
// RunPortfolio splits the virtual-time budget across one session per
// interpreter build and merges the distinct high-level paths. High-level
// path signatures are comparable across sessions because they derive from
// the target program's HLPCs, which are deterministic for a fixed source.

// PortfolioMember is one build participating in a portfolio.
type PortfolioMember struct {
	Name string
	Prog TestProgram
}

// PortfolioResult aggregates a portfolio run.
type PortfolioResult struct {
	// Tests are the merged test cases, one per distinct high-level path
	// across all builds (first build to find a path wins).
	Tests []TestCase
	// PerBuild reports each member's own distinct-path count.
	PerBuild []int
	// NewPerBuild reports how many paths each member contributed that no
	// earlier member had found.
	NewPerBuild []int
	// Aggregate is the sum of the member sessions' summaries (Summary.Add):
	// total runs, forks, LL paths and virtual time spent across the
	// portfolio. Path counts here are per-member sums; Tests holds the
	// cross-member deduplicated view.
	Aggregate Summary
}

// RunPortfolio explores every member under an equal share of the budget and
// merges distinct high-level paths. Member sessions are independent (each
// owns its RNG, machine and solver), so they fan out over up to
// opts.Parallel workers (0 means runtime.GOMAXPROCS(0)); the merge walks the
// gathered results in member order, so the outcome is identical to a serial
// run regardless of scheduling.
func RunPortfolio(members []PortfolioMember, opts Options, budget int64) PortfolioResult {
	return RunPortfolioContext(context.Background(), members, opts, budget)
}

// RunPortfolioContext is RunPortfolio with cooperative cancellation: member
// sessions run under the context and stop promptly when it is done, and the
// merge proceeds over whatever each member produced before the cancellation
// point. With an uncancelled context it is byte-identical to RunPortfolio.
func RunPortfolioContext(ctx context.Context, members []PortfolioMember, opts Options, budget int64) PortfolioResult {
	if ctx == nil {
		ctx = context.Background()
	}
	res := PortfolioResult{}
	if len(members) == 0 {
		return res
	}
	share := budget / int64(len(members))
	perMember := make([][]TestCase, len(members))
	summaries := make([]Summary, len(members))
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(members) {
		workers = len(members)
	}
	// Observability: each member session writes into its own child registry;
	// children merge into the caller's registry in member order after the
	// pool drains, so aggregated metrics are schedule-independent.
	var childRegs []*obs.Registry
	if opts.Metrics != nil {
		childRegs = make([]*obs.Registry, len(members))
		for i := range childRegs {
			childRegs[i] = obs.NewRegistry()
		}
	}
	runMember := func(i int) {
		memberOpts := opts
		memberOpts.Seed = opts.Seed + int64(i)*104729
		memberOpts.SessionIndex = i // worker.stall fault rules match on it
		if memberOpts.Name == "" {
			memberOpts.Name = members[i].Name
		}
		if childRegs != nil {
			memberOpts.Metrics = childRegs[i]
		}
		if opts.Spans != nil {
			// A SpanProfiler is single-goroutine: the caller's instance marks
			// intent, each member gets its own over its child registry. Span
			// aggregates are plain counters, so they merge like everything else.
			memberOpts.Spans = obs.NewSpanProfiler(memberOpts.Metrics, obs.WithSession(opts.Tracer, memberOpts.Name))
		}
		s := NewSession(members[i].Prog, memberOpts)
		perMember[i] = s.RunContext(ctx, share)
		summaries[i] = s.Summary()
	}
	if workers <= 1 {
		for i := range members {
			runMember(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					runMember(i)
				}
			}()
		}
		for i := range members {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if childRegs != nil {
		for _, child := range childRegs {
			opts.Metrics.Merge(child)
		}
	}
	for _, sum := range summaries {
		res.Aggregate.Add(sum)
	}
	// Deterministic merge in member order: first build to find a path wins.
	seen := map[uint64]bool{}
	for _, tests := range perMember {
		res.PerBuild = append(res.PerBuild, len(tests))
		fresh := 0
		for _, tc := range tests {
			if !seen[tc.HLSig] {
				seen[tc.HLSig] = true
				res.Tests = append(res.Tests, tc)
				fresh++
			}
		}
		res.NewPerBuild = append(res.NewPerBuild, fresh)
	}
	return res
}
