package chef

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"chef/internal/faults"
	"chef/internal/lowlevel"
	"chef/internal/obs"
	"chef/internal/shard"
	"chef/internal/solver"
)

// Path-space sharding (ROADMAP item 2; docs/DESIGN.md "Path-space
// sharding"): one exploration split across subtree ranges of the decision-
// signature space, so a single big exploration scales with cores the way
// portfolios already do — while staying byte-identical to its own serial
// (1-worker) execution.
//
// The determinism design separates *semantics* from *scheduling*:
//
//   - Semantics live in ShardSubtrees fixed range cells, one per
//     signature prefix, each a full mini-Session (own strategy queue, own
//     visited set, own RNG, own virtual clock, own private in-memory
//     solver cache). Exploration proceeds in BSP epochs: every live cell
//     runs up to a virtual-time slice, forks landing outside a cell's
//     range buffer in per-(source,target) mailboxes, and mailboxes drain
//     at the epoch barrier in canonical order (all visited notes before
//     all states, sources in ascending cell order). Every quantity above
//     is a pure function of (seed, budget, program) — the worker count
//     never appears.
//   - Scheduling maps cells to N epoch workers via shard.Assign, a pure
//     function of (seed, epoch, loads, N). Workers only lend CPU time to
//     cells; they carry no state of their own, so N affects wall-clock
//     time and the shard.steals metric, nothing else.
//
// Warmth is shared where sharing is deterministic: the process-global
// symexpr interner and the persistent cache layer (whose hits replay
// their recorded virtual cost). The in-memory query cache is private per
// cell because its hits are free — sharing one across concurrently
// running cells would make a cell's clock depend on which sibling solved
// a query first (see the QueryCache determinism note).

const (
	// ShardSubtreeBits fixes the static partition of the decision-signature
	// space: 2^bits subtree ranges, chosen once and independent of the
	// worker count so results cannot depend on it.
	ShardSubtreeBits = 4
	// ShardSubtrees is the resulting number of range cells, and the upper
	// bound on useful shard workers.
	ShardSubtrees = 1 << ShardSubtreeBits
)

// shardOwnerOf returns the index of the range cell owning sig.
func shardOwnerOf(sig uint64) int { return shard.Owner(sig, ShardSubtreeBits) }

// shardCell is one range cell: a mini-Session confined to its signature
// subtree plus the outgoing mailboxes of the cell's engine. It implements
// lowlevel.Router for its own session's engine.
type shardCell struct {
	idx  int
	sess *Session

	// Per-(source,target) mailboxes, drained at epoch barriers.
	outStates  [][]*lowlevel.State
	outVisited [][]uint64
	// sentVisited dedups trail notes per target: a cell's runs re-walk
	// the same foreign trail prefixes every run, and one note is enough.
	sentVisited []map[uint64]bool
}

// Owns implements lowlevel.Router.
func (c *shardCell) Owns(sig uint64) bool { return shardOwnerOf(sig) == c.idx }

// HandOff implements lowlevel.Router.
func (c *shardCell) HandOff(st *lowlevel.State) {
	t := shardOwnerOf(st.Sig)
	c.outStates[t] = append(c.outStates[t], st)
}

// NoteVisited implements lowlevel.Router.
func (c *shardCell) NoteVisited(sig uint64) {
	t := shardOwnerOf(sig)
	if c.sentVisited[t][sig] {
		return
	}
	c.sentVisited[t][sig] = true
	c.outVisited[t] = append(c.outVisited[t], sig)
}

// ShardProgress is a barrier-time snapshot of a sharded run, published
// through an atomic pointer so any goroutine may read it while epoch
// workers are still driving the cell engines (the race-free read path of
// the Engine concurrency contract).
type ShardProgress struct {
	// Epoch is the number of completed epochs.
	Epoch int
	// Spent is the merged virtual time at the last barrier.
	Spent int64
	// LiveRanges is the number of cells with pending work at the last
	// barrier.
	LiveRanges int
	// Cells holds each range cell's engine snapshot in range order.
	Cells []lowlevel.Snapshot
}

// ShardedSession explores one symbolic test across ShardSubtrees range
// cells with up to `workers` epoch workers. Results are byte-identical
// for every worker count, including 1; see the package comment above for
// the argument. Methods are not safe for concurrent use except Progress.
type ShardedSession struct {
	opts    Options
	name    string
	workers int

	cells     []*shardCell
	childRegs []*obs.Registry
	table     *shard.Table

	// Coordinator observability (nil when disabled).
	tracer    obs.Tracer
	spans     *obs.SpanProfiler
	mEpochs   *obs.Counter
	mLive     *obs.Gauge
	mStates   *obs.Counter
	mNotes    *obs.Counter
	mDups     *obs.Counter
	mDepth    *obs.Histogram
	mSteals   *obs.CounterVec
	mStalled  *obs.Counter
	mMakespan *obs.Counter
	mMerged   *obs.Counter

	stallInj *faults.Injector

	ran            bool
	initialDone    bool
	spent          int64
	makespan       int64
	epochs         int
	stalledWorkers int
	cancelled      bool
	tests          []TestCase
	series         []SamplePoint

	progress atomic.Pointer[ShardProgress]
}

// NewShardedSession builds a sharded exploration of prog. workers bounds
// the epoch worker pool (0 means runtime.GOMAXPROCS(0)); it is clamped to
// [1, ShardSubtrees] and — by construction — never influences results.
func NewShardedSession(prog TestProgram, opts Options, workers int) *ShardedSession {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ShardSubtrees {
		workers = ShardSubtrees
	}
	name := opts.Name
	if name == "" {
		name = "session"
	}
	ss := &ShardedSession{
		opts:    opts,
		name:    name,
		workers: workers,
		table:   shard.NewTable(ShardSubtreeBits),
		tracer:  obs.WithSession(opts.Tracer, name),
	}
	// The coordinator's injector uses the same scope a plain session
	// would, so worker.stall rules address shard workers the way they
	// address portfolio members. Cell injectors get their own scopes.
	if opts.Faults != nil {
		ss.stallInj = opts.Faults.Injector(name)
		ss.stallInj.Instrument(opts.Metrics)
	}
	if reg := opts.Metrics; reg != nil {
		ss.mEpochs = reg.Counter(obs.MShardEpochs)
		ss.mLive = reg.Gauge(obs.MShardRangesLive)
		ss.mStates = reg.Counter(obs.MShardHandoffs)
		ss.mNotes = reg.Counter(obs.MShardVisitedNotes)
		ss.mDups = reg.Counter(obs.MShardHandoffDups)
		ss.mDepth = reg.Histogram(obs.MShardHandoffDepth)
		ss.mSteals = reg.CounterVec(obs.MShardSteals)
		ss.mStalled = reg.Counter(obs.MShardStalled)
		ss.mMakespan = reg.Counter(obs.MShardVirtMakespan)
		ss.mMerged = reg.Counter(obs.MChefTestsMerged)
		reg.SetVecLabeler(obs.MShardSteals, func(k uint64) string {
			return fmt.Sprintf("worker-%d", k)
		})
		ss.childRegs = make([]*obs.Registry, ShardSubtrees)
		for i := range ss.childRegs {
			ss.childRegs[i] = obs.NewRegistry()
		}
	}
	if opts.Spans != nil {
		ss.spans = obs.NewSpanProfiler(opts.Metrics, ss.tracer)
	}
	for k := 0; k < ShardSubtrees; k++ {
		cellOpts := opts
		cellOpts.Seed = opts.Seed + int64(k)*104729
		cellOpts.SessionIndex = k
		cellOpts.Name = fmt.Sprintf("%s.s%02d", name, k)
		// Private in-memory cache per cell: a shared one would let a
		// cell's virtual clock depend on sibling scheduling (in-memory
		// hits replay no cost). Persist stays shared — its hits do.
		cellOpts.SolverOptions.Cache = nil
		if ss.childRegs != nil {
			cellOpts.Metrics = ss.childRegs[k]
		}
		if opts.Spans != nil {
			// One profiler per cell: a SpanProfiler serves one goroutine
			// at a time, and a cell's epochs are sequenced by barriers.
			cellOpts.Spans = obs.NewSpanProfiler(cellOpts.Metrics, obs.WithSession(opts.Tracer, cellOpts.Name))
		}
		c := &shardCell{
			idx:         k,
			outStates:   make([][]*lowlevel.State, ShardSubtrees),
			outVisited:  make([][]uint64, ShardSubtrees),
			sentVisited: make([]map[uint64]bool, ShardSubtrees),
		}
		for t := range c.sentVisited {
			c.sentVisited[t] = map[uint64]bool{}
		}
		cellOpts.router = c
		c.sess = NewSession(prog, cellOpts)
		ss.cells = append(ss.cells, c)
	}
	return ss
}

// Workers returns the clamped epoch worker count.
func (ss *ShardedSession) Workers() int { return ss.workers }

// Run explores until the merged virtual-time budget is exhausted or all
// range queues drain, and returns the merged test cases.
func (ss *ShardedSession) Run(budget int64) []TestCase {
	return ss.RunContext(context.Background(), budget)
}

// RunContext is Run with cooperative cancellation, checked between engine
// runs like Session.RunContext. An uncancelled run is byte-identical to
// Run for every worker count.
func (ss *ShardedSession) RunContext(ctx context.Context, budget int64) []TestCase {
	if ctx == nil {
		ctx = context.Background()
	}
	if ss.ran {
		return ss.tests
	}
	ss.ran = true
	for _, c := range ss.cells {
		if c.sess.tracer != nil {
			c.sess.tracer.Emit(&obs.Event{
				Kind:     obs.KindSessionStart,
				Seed:     c.sess.opts.Seed,
				Strategy: c.sess.opts.Strategy.String(),
			})
		}
	}
	// Worker-level stall injection: a stalled worker never joins the
	// pool. Because semantics are worker-independent, any surviving
	// worker reproduces the full result; only a total stall degrades.
	var liveWorkers []int
	for w := 0; w < ss.workers; w++ {
		if ss.stallInj.FireStall(w) {
			ss.stalledWorkers++
			if ss.mStalled != nil {
				ss.mStalled.Inc()
			}
			if ss.tracer != nil {
				ss.tracer.Emit(&obs.Event{Kind: obs.KindFault, Site: string(faults.WorkerStall)})
			}
			continue
		}
		liveWorkers = append(liveWorkers, w)
	}
	if len(liveWorkers) == 0 {
		if ss.tracer != nil {
			ss.tracer.Emit(&obs.Event{Kind: obs.KindSessionEnd, Status: "stalled"})
		}
		ss.publishProgress(0)
		return ss.tests
	}

	var prevAssign [][]int
	for epoch := 0; ; epoch++ {
		if ctx.Err() != nil {
			ss.cancelled = true
			break
		}
		initial := !ss.initialDone
		loads := make([]int64, ShardSubtrees)
		live := 0
		if initial {
			loads[0] = 1
			live = 1
		} else {
			for k, c := range ss.cells {
				if p := c.sess.eng.Pending(); p > 0 {
					loads[k] = int64(p)
					live++
				}
			}
		}
		if ss.mLive != nil {
			ss.mLive.Set(int64(live))
		}
		if live == 0 || ss.spent >= budget {
			break
		}
		// Epoch slice: half the remaining budget spread over the live
		// cells, floored at one step so every nonempty cell progresses.
		slice := (budget - ss.spent) / int64(2*live)
		if slice < 1 {
			slice = 1
		}
		assign := shard.Assign(ss.opts.Seed, epoch, loads, len(liveWorkers))
		ss.applyOwnership(assign, liveWorkers, prevAssign != nil)
		prevAssign = assign
		sp := ss.spans.Start(obs.SpanShardEpoch)
		before := ss.spent
		clocksBefore := make([]int64, len(ss.cells))
		for k, c := range ss.cells {
			clocksBefore[k] = c.sess.eng.Clock()
		}
		ss.runEpoch(ctx, assign, slice, initial)
		// The epoch's contribution to the virtual makespan is its critical
		// path: the largest virtual-time load any one worker carried. A pure
		// function of the (deterministic) assignment, so it is reproducible
		// per worker count — and the quantity the shard-scaling benchmark
		// reports (virtual throughput = spent virtual time / makespan).
		var maxLoad int64
		for _, list := range assign {
			var load int64
			for _, k := range list {
				load += ss.cells[k].sess.eng.Clock() - clocksBefore[k]
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		ss.makespan += maxLoad
		ss.initialDone = true
		ss.deliver()
		ss.spent = 0
		for _, c := range ss.cells {
			ss.spent += c.sess.eng.Clock()
		}
		sp.End(ss.spent - before)
		ss.epochs++
		if ss.mEpochs != nil {
			ss.mEpochs.Inc()
		}
		ss.publishProgress(epoch + 1)
	}
	ss.merge()
	return ss.tests
}

// applyOwnership records this epoch's cell-to-worker mapping in the range
// table: unowned ranges are claimed, ranges whose worker changed are
// stolen (counted per stealing worker), dead ranges are released. The
// mapping is shard.Assign's output, so every claim and steal is a pure
// function of (seed, epoch, loads, workers).
func (ss *ShardedSession) applyOwnership(assign [][]int, liveWorkers []int, countSteals bool) {
	want := make([]int, ss.table.Len())
	for i := range want {
		want[i] = shard.Unowned
	}
	for wi, list := range assign {
		for _, k := range list {
			want[k] = liveWorkers[wi]
		}
	}
	for k := 0; k < ss.table.Len(); k++ {
		cur := ss.table.Owner(k)
		switch {
		case want[k] == shard.Unowned:
			if cur != shard.Unowned {
				ss.table.Release(k)
			}
		case cur == shard.Unowned:
			if err := ss.table.Claim(k, want[k]); err != nil {
				panic(err)
			}
		case cur != want[k]:
			if _, err := ss.table.Steal(k, want[k]); err != nil {
				panic(err)
			}
			// First-epoch assignments are claims, not steals.
			if countSteals && ss.mSteals != nil {
				ss.mSteals.At(uint64(want[k])).Inc()
			}
		}
	}
}

// runEpoch executes one epoch: each worker drives its assigned cells in
// ascending range order. Cell engines migrate between worker goroutines
// only across the epoch barrier (WaitGroup), satisfying the Engine
// ownership contract.
func (ss *ShardedSession) runEpoch(ctx context.Context, assign [][]int, slice int64, initial bool) {
	runList := func(list []int) {
		for _, k := range list {
			ss.runCellEpoch(ctx, ss.cells[k], slice, initial && k == 0)
		}
	}
	nonempty := 0
	var only []int
	for _, list := range assign {
		if len(list) > 0 {
			nonempty++
			only = list
		}
	}
	if nonempty <= 1 {
		if only != nil {
			runList(only)
		}
		return
	}
	var wg sync.WaitGroup
	for _, list := range assign {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(l []int) {
			defer wg.Done()
			runList(l)
		}(list)
	}
	wg.Wait()
}

// runCellEpoch advances one cell by up to slice virtual time. The work is
// wrapped in a chef.session span on the cell's own profiler: its virtual
// duration is the cell's clock delta, so across all epochs the cell's
// chef.session span total equals its final clock, exactly like a plain
// session.
func (ss *ShardedSession) runCellEpoch(ctx context.Context, c *shardCell, slice int64, initial bool) {
	s := c.sess
	sp := s.spans.Start(obs.SpanChefSession)
	start := s.eng.Clock()
	end := start + slice
	if initial {
		info := s.eng.RunInitial()
		s.finishRun(info)
	}
	for s.eng.Clock() < end {
		if ctx.Err() != nil {
			break
		}
		info, more := s.eng.SelectAndRun()
		if !more {
			break
		}
		if info != nil {
			s.finishRun(info)
		}
	}
	sp.End(s.eng.Clock() - start)
}

// deliver drains every mailbox at the epoch barrier, in canonical order:
// targets ascending; per target, all visited notes (sources ascending)
// before all states (sources ascending). Notes-before-states makes the
// note/state race on one signature resolve the same way every run: the
// already-walked path wins and the handed-off state dedups away.
func (ss *ShardedSession) deliver() {
	var states, notes, dups int64
	for t, tc := range ss.cells {
		eng := tc.sess.eng
		depth := int64(0)
		for _, src := range ss.cells {
			for _, sig := range src.outVisited[t] {
				eng.InjectVisited(sig)
				notes++
			}
			src.outVisited[t] = src.outVisited[t][:0]
		}
		for _, src := range ss.cells {
			for _, st := range src.outStates[t] {
				if eng.InjectState(st) {
					states++
				} else {
					dups++
				}
				depth++
			}
			src.outStates[t] = src.outStates[t][:0]
		}
		if depth > 0 && ss.mDepth != nil {
			ss.mDepth.Observe(depth)
		}
	}
	if ss.mStates != nil {
		ss.mStates.Add(states)
		ss.mNotes.Add(notes)
		ss.mDups.Add(dups)
	}
}

// merge gathers per-cell results in canonical range order: tests dedup by
// high-level signature (first range wins, mirroring RunPortfolio), series
// concatenate, child registries fold into the caller's registry.
func (ss *ShardedSession) merge() {
	seen := map[uint64]bool{}
	for _, c := range ss.cells {
		for _, tc := range c.sess.tests {
			if !seen[tc.HLSig] {
				seen[tc.HLSig] = true
				ss.tests = append(ss.tests, tc)
			}
		}
		ss.series = append(ss.series, c.sess.series...)
	}
	if ss.mMerged != nil {
		ss.mMerged.Add(int64(len(ss.tests)))
		ss.mMakespan.Add(ss.makespan)
	}
	for _, c := range ss.cells {
		if c.sess.tracer != nil {
			st := c.sess.eng.Stats()
			ev := &obs.Event{
				T:       c.sess.eng.Clock(),
				Kind:    obs.KindSessionEnd,
				Tests:   len(c.sess.tests),
				HLPaths: len(c.sess.hlPaths),
				LLPaths: st.LLPaths,
			}
			if ss.cancelled {
				ev.Status = "cancelled"
			}
			c.sess.tracer.Emit(ev)
		}
	}
	if ss.opts.Metrics != nil {
		for _, child := range ss.childRegs {
			ss.opts.Metrics.Merge(child)
		}
	}
	ss.publishProgress(ss.epochs)
}

func (ss *ShardedSession) publishProgress(epoch int) {
	p := &ShardProgress{Epoch: epoch, Spent: ss.spent, Cells: make([]lowlevel.Snapshot, len(ss.cells))}
	for i, c := range ss.cells {
		snap := c.sess.eng.Snapshot()
		p.Cells[i] = snap
		if snap.Pending > 0 {
			p.LiveRanges++
		}
	}
	ss.progress.Store(p)
}

// Progress returns the latest barrier snapshot (nil before the first
// barrier). Unlike every other accessor it is safe to call from any
// goroutine at any time: it reads only the atomically published copy,
// never the live engines.
func (ss *ShardedSession) Progress() *ShardProgress { return ss.progress.Load() }

// Tests returns the merged test cases (valid after Run).
func (ss *ShardedSession) Tests() []TestCase { return ss.tests }

// Series returns the per-cell progress samples concatenated in range
// order.
func (ss *ShardedSession) Series() []SamplePoint { return ss.series }

// Cancelled reports whether RunContext stopped early on a done context.
func (ss *ShardedSession) Cancelled() bool { return ss.cancelled }

// Stalled reports whether every shard worker was stalled by fault
// injection, so the run never explored. A partial stall does not degrade:
// the surviving workers reproduce the full result.
func (ss *ShardedSession) Stalled() bool {
	return ss.workers > 0 && ss.stalledWorkers == ss.workers
}

// StalledWorkers returns how many shard workers were lost to worker.stall
// injection.
func (ss *ShardedSession) StalledWorkers() int { return ss.stalledWorkers }

// Epochs returns the number of completed BSP epochs.
func (ss *ShardedSession) Epochs() int { return ss.epochs }

// VirtMakespan returns the virtual-time critical path of the epoch
// schedule: per epoch, the maximum virtual load any one worker carried,
// summed over epochs. With one worker it equals Clock(); with more it
// shrinks toward Clock()/workers as the range loads balance. Deterministic
// per worker count (the schedule is a pure function of seed, epoch, loads
// and worker count), but — unlike every other semantic observable — a
// function of the worker count: it measures the schedule, not the
// exploration. Clock()/VirtMakespan() is the run's virtual throughput.
func (ss *ShardedSession) VirtMakespan() int64 { return ss.makespan }

// Clock returns the merged virtual time across all range cells.
func (ss *ShardedSession) Clock() int64 {
	var total int64
	for _, c := range ss.cells {
		total += c.sess.eng.Clock()
	}
	return total
}

// Stats returns the merged engine counters across all range cells, folded
// in range order with Stats.Add.
func (ss *ShardedSession) Stats() lowlevel.Stats {
	var st lowlevel.Stats
	for _, c := range ss.cells {
		st.Add(c.sess.eng.Stats())
	}
	return st
}

// CellStats returns each range cell's engine counters in range order (the
// per-shard view of the degradation invariants).
func (ss *ShardedSession) CellStats() []lowlevel.Stats {
	out := make([]lowlevel.Stats, len(ss.cells))
	for i, c := range ss.cells {
		out[i] = c.sess.eng.Stats()
	}
	return out
}

// SolverStats returns the merged solver counters across all range cells.
func (ss *ShardedSession) SolverStats() solver.Stats {
	var st solver.Stats
	for _, c := range ss.cells {
		st.Add(c.sess.eng.Solver().Stats())
	}
	return st
}

// CacheStats returns the merged in-memory query-cache counters across the
// cells' private caches.
func (ss *ShardedSession) CacheStats() solver.CacheStats {
	var st solver.CacheStats
	for _, c := range ss.cells {
		st.Add(c.sess.eng.Solver().Cache().Stats())
	}
	return st
}

// Summary condenses the sharded run: per-cell summaries folded with
// Summary.Add, with the path counts replaced by the cross-range
// deduplicated view (a plain session dedups globally, so the merged
// numbers are the comparable ones) and stall accounting at worker
// granularity.
func (ss *ShardedSession) Summary() Summary {
	var sum Summary
	for _, c := range ss.cells {
		sum.Add(c.sess.Summary())
	}
	sum.HLTests = len(ss.tests)
	sum.HLPaths = len(ss.tests)
	sum.Stalled = ss.stalledWorkers
	if ss.stallInj != nil {
		sum.FaultsInjected += ss.stallInj.Injected()
	}
	return sum
}
