package chef

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"chef/internal/obs"
)

// shardFixtureBudget is enough for validateEmailProg to drain completely.
const shardFixtureBudget = 1 << 22

func runSharded(t testing.TB, prog TestProgram, opts Options, workers int, budget int64) *ShardedSession {
	t.Helper()
	ss := NewShardedSession(prog, opts, workers)
	ss.Run(budget)
	return ss
}

// fingerprint renders everything semantically observable about a sharded
// run into one comparable string.
func fingerprint(ss *ShardedSession) string {
	return fmt.Sprintf("tests=%#v\nstats=%+v\nclock=%d\nsolver=%+v\nseries=%+v\nsummary=%+v",
		ss.Tests(), ss.Stats(), ss.Clock(), ss.SolverStats(), ss.Series(), ss.Summary())
}

// TestShardedDeterministicAcrossWorkers is the core sharding property:
// the worker count is scheduling, not semantics, so every observable
// output must be identical for 1, 2, 4 and 8 workers across seeds.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{42, 7, 1000} {
		opts := Options{Strategy: StrategyCUPAPath, Seed: seed}
		serial := fingerprint(runSharded(t, validateEmailProg(6), opts, 1, shardFixtureBudget))
		for _, workers := range []int{2, 4, 8} {
			got := fingerprint(runSharded(t, validateEmailProg(6), opts, workers, shardFixtureBudget))
			if got != serial {
				t.Fatalf("seed %d: %d-worker run diverged from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
					seed, workers, serial, workers, got)
			}
		}
	}
}

// TestShardedFindsAllOutcomes checks the sharded exploration is still a
// complete exploration: the fixture has exactly two high-level paths and
// both outcomes must be found, with cross-range handoffs exercised.
func TestShardedFindsAllOutcomes(t *testing.T) {
	ss := runSharded(t, validateEmailProg(6), Options{Strategy: StrategyCUPAPath, Seed: 42}, 4, shardFixtureBudget)
	results := map[string]bool{}
	for _, tc := range ss.Tests() {
		results[tc.Result] = true
	}
	if !results["ok"] || !results["exception:InvalidEmailError"] {
		t.Fatalf("outcomes %v, want both ok and exception", results)
	}
	if len(ss.Tests()) != 2 {
		t.Fatalf("merged tests = %d, want 2 distinct HL paths", len(ss.Tests()))
	}
	st := ss.Stats()
	if st.HandedOff == 0 {
		t.Fatal("no cross-range handoffs: the range partition was not exercised")
	}
	if st.UnknownStates != st.RequeuedStates+st.AbandonedStates {
		t.Fatalf("degradation invariant broken: %+v", st)
	}
}

// normalizeShardSnapshot drops the explicitly schedule-dependent metric
// families from a registry snapshot: wall-clock values (span wall
// counters, solver wall histograms — observational by contract) and the
// two worker-count-dependent shard families, shard.steals and
// shard.virt_makespan (deterministic per worker count, but functions of
// it). Everything left must be byte-identical across worker counts.
func normalizeShardSnapshot(s obs.Snapshot) obs.Snapshot {
	for name := range s.Counters {
		if strings.Contains(name, "wall_ns") {
			delete(s.Counters, name)
		}
	}
	for name := range s.Histograms {
		if strings.Contains(name, "wall_ns") {
			delete(s.Histograms, name)
		}
	}
	delete(s.Counters, obs.MShardVirtMakespan)
	delete(s.Vecs, obs.MShardSteals)
	return s
}

// TestShardedMatchesMetricsAcrossWorkers: merged registries must agree
// across worker counts after the normalization above — the -metrics-json
// leg of the determinism property.
func TestShardedMatchesMetricsAcrossWorkers(t *testing.T) {
	run := func(workers int) obs.Snapshot {
		reg := obs.NewRegistry()
		opts := Options{Strategy: StrategyCUPAPath, Seed: 42, Metrics: reg}
		runSharded(t, validateEmailProg(6), opts, workers, shardFixtureBudget)
		return normalizeShardSnapshot(reg.Snapshot())
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("metrics diverged between 1 and %d workers:\nserial: %+v\ngot: %+v",
				workers, serial, got)
		}
	}
}

// TestShardedTraceDeterministicAfterCanonicalReorder: trace events are
// emitted concurrently by epoch workers, so their interleaving is
// schedule-dependent — but a stable reorder by session label (the
// canonical range order) must be byte-identical across worker counts.
func TestShardedTraceDeterministicAfterCanonicalReorder(t *testing.T) {
	run := func(workers int) []obs.Event {
		var collect obs.Collect
		opts := Options{Strategy: StrategyCUPAPath, Seed: 42, Tracer: &collect, Name: "det"}
		runSharded(t, validateEmailProg(6), opts, workers, shardFixtureBudget)
		evs := collect.Events()
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Session < evs[j].Session })
		for i := range evs {
			// Wall-clock stamps are observational by contract (the JSONL
			// tracer's DisableWallClock exists for the same reason).
			evs[i].WallNs, evs[i].WallCost, evs[i].SelfWall = 0, 0, 0
		}
		return evs
	}
	serial := run(1)
	for _, workers := range []int{4} {
		got := run(workers)
		if !reflect.DeepEqual(serial, got) {
			if len(serial) != len(got) {
				t.Fatalf("event counts differ: serial=%d workers=%d", len(serial), len(got))
			}
			for i := range serial {
				if !reflect.DeepEqual(serial[i], got[i]) {
					t.Fatalf("event %d differs:\nserial: %+v\nworkers=%d: %+v", i, serial[i], workers, got[i])
				}
			}
		}
	}
}

// TestShardedProgressIsRaceFreeDuringRun is the -race regression for the
// merge-time read path: a foreign goroutine may only observe a sharded
// run through Progress(), and doing so continuously while epoch workers
// drive the engines must be clean under the race detector.
func TestShardedProgressIsRaceFreeDuringRun(t *testing.T) {
	ss := NewShardedSession(validateEmailProg(8), Options{Strategy: StrategyCUPAPath, Seed: 42}, 4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int
		for {
			select {
			case <-done:
				return
			default:
			}
			if p := ss.Progress(); p != nil {
				if p.Epoch < last {
					t.Error("progress epoch went backwards")
					return
				}
				last = p.Epoch
				// The snapshot is a value copy: reading it deeply is safe.
				var total int64
				for _, c := range p.Cells {
					total += c.Clock
				}
				if p.Spent != total {
					t.Errorf("progress spent %d != cell clock sum %d", p.Spent, total)
					return
				}
			}
		}
	}()
	ss.Run(shardFixtureBudget)
	close(done)
	wg.Wait()
	p := ss.Progress()
	if p == nil || p.Spent != ss.Clock() {
		t.Fatalf("final progress %+v, want spent=%d", p, ss.Clock())
	}
}

// TestShardedMakespanShrinksWithWorkers is the scaling property behind the
// shard-scaling benchmark: more workers leave results untouched but shrink
// the virtual-time critical path of the epoch schedule. With one worker
// the makespan is the whole merged clock; with several it must drop below
// it while staying bounded by clock/workers from below.
func TestShardedMakespanShrinksWithWorkers(t *testing.T) {
	opts := Options{Strategy: StrategyCUPAPath, Seed: 42}
	serial := runSharded(t, validateEmailProg(6), opts, 1, shardFixtureBudget)
	if serial.VirtMakespan() != serial.Clock() {
		t.Fatalf("1-worker makespan %d != clock %d", serial.VirtMakespan(), serial.Clock())
	}
	multi := runSharded(t, validateEmailProg(6), opts, 4, shardFixtureBudget)
	if multi.Clock() != serial.Clock() {
		t.Fatalf("worker count changed the clock: %d vs %d", multi.Clock(), serial.Clock())
	}
	if multi.VirtMakespan() >= serial.VirtMakespan() {
		t.Fatalf("4-worker makespan %d did not shrink below serial %d",
			multi.VirtMakespan(), serial.VirtMakespan())
	}
	if lower := multi.Clock() / int64(multi.Workers()); multi.VirtMakespan() < lower {
		t.Fatalf("4-worker makespan %d below the clock/workers bound %d", multi.VirtMakespan(), lower)
	}
	// Deterministic per worker count: a rerun reproduces it exactly.
	again := runSharded(t, validateEmailProg(6), opts, 4, shardFixtureBudget)
	if again.VirtMakespan() != multi.VirtMakespan() {
		t.Fatalf("4-worker makespan not reproducible: %d vs %d", again.VirtMakespan(), multi.VirtMakespan())
	}
}

// TestShardedCancellation: a cancelled context stops the run promptly and
// marks it cancelled; tests produced before the cancellation stay valid.
func TestShardedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ss := NewShardedSession(validateEmailProg(6), Options{Strategy: StrategyCUPAPath, Seed: 42}, 4)
	tests := ss.RunContext(ctx, shardFixtureBudget)
	if !ss.Cancelled() {
		t.Fatal("run with a done context must report cancelled")
	}
	if len(tests) != 0 {
		t.Fatalf("pre-cancelled run produced %d tests", len(tests))
	}
}

// TestShardedWorkerClamp: worker counts are clamped to [1, ShardSubtrees]
// and never change results (spot check at the extremes).
func TestShardedWorkerClamp(t *testing.T) {
	ss := NewShardedSession(validateEmailProg(4), Options{Seed: 1}, 1000)
	if ss.Workers() != ShardSubtrees {
		t.Fatalf("workers = %d, want clamp to %d", ss.Workers(), ShardSubtrees)
	}
	opts := Options{Strategy: StrategyCUPAPath, Seed: 9}
	a := fingerprint(runSharded(t, validateEmailProg(4), opts, 1, shardFixtureBudget))
	b := fingerprint(runSharded(t, validateEmailProg(4), opts, 1000, shardFixtureBudget))
	if a != b {
		t.Fatal("clamped worker count changed results")
	}
}
