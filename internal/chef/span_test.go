package chef

import (
	"testing"

	"chef/internal/obs"
)

// TestSpannedSessionMatchesPlain is the span profiler's half of the
// determinism contract: attaching a profiler must not change a single engine
// decision, because spans only read the virtual clock — they never advance
// it. The per-layer aggregates must also reconcile exactly with the engine's
// own accounting.
func TestSpannedSessionMatchesPlain(t *testing.T) {
	const budget = 400_000
	run := func(spans *obs.SpanProfiler) ([]TestCase, Summary) {
		s := NewSession(validateEmailProg(5), Options{
			Strategy: StrategyCUPAPath, Seed: 11, Spans: spans, Name: "span-det",
		})
		return s.Run(budget), s.Summary()
	}
	plainTests, plainSum := run(nil)
	reg := obs.NewRegistry()
	var collect obs.Collect
	spannedTests, spannedSum := run(obs.NewSpanProfiler(reg, &collect))

	if plainSum != spannedSum {
		t.Errorf("summary diverged:\n plain   %+v\n spanned %+v", plainSum, spannedSum)
	}
	if len(plainTests) != len(spannedTests) {
		t.Fatalf("test count diverged: %d vs %d", len(plainTests), len(spannedTests))
	}
	for i := range plainTests {
		if plainTests[i].Result != spannedTests[i].Result || plainTests[i].HLSig != spannedTests[i].HLSig {
			t.Errorf("test %d diverged: %q/%x vs %q/%x", i,
				plainTests[i].Result, plainTests[i].HLSig, spannedTests[i].Result, spannedTests[i].HLSig)
		}
	}

	aggs := map[string]obs.SpanAggregate{}
	for _, a := range reg.SpanAggregates() {
		aggs[a.Layer] = a
	}
	session := aggs[obs.SpanChefSession]
	if session.Count != 1 {
		t.Fatalf("chef.session spans = %d, want 1", session.Count)
	}
	// The session span's virtual total is the engine clock, all of it spent
	// inside engine.run spans (the session loop itself is virtually free).
	if session.VirtTotal != spannedSum.VirtTime {
		t.Errorf("session span total %d != summary virt time %d", session.VirtTotal, spannedSum.VirtTime)
	}
	if session.VirtSelf != 0 {
		t.Errorf("session span self = %d, want 0", session.VirtSelf)
	}
	runs := aggs[obs.SpanEngineRun]
	if runs.VirtTotal != session.VirtTotal {
		t.Errorf("engine.run total %d != session total %d", runs.VirtTotal, session.VirtTotal)
	}
	// Self + direct-child totals partition each level.
	checks := aggs[obs.SpanSolverCheck]
	if runs.VirtSelf+checks.VirtTotal != runs.VirtTotal {
		t.Errorf("engine.run self %d + solver.check total %d != engine.run total %d",
			runs.VirtSelf, checks.VirtTotal, runs.VirtTotal)
	}
	blast := aggs[obs.SpanSolverBlast]
	cacheL := aggs[obs.SpanCacheLookup]
	if checks.VirtSelf+blast.VirtTotal+cacheL.VirtTotal != checks.VirtTotal {
		t.Errorf("solver.check self %d + children %d+%d != total %d",
			checks.VirtSelf, blast.VirtTotal, cacheL.VirtTotal, checks.VirtTotal)
	}
	// Span events and counters agree.
	if got := int64(collect.CountKind(obs.KindSpan)); got != session.Count+runs.Count+checks.Count+blast.Count+cacheL.Count {
		t.Errorf("span events = %d, counters sum = %d", got,
			session.Count+runs.Count+checks.Count+blast.Count+cacheL.Count)
	}
}
