package chef

import (
	"fmt"
	"reflect"
	"testing"

	"chef/internal/lowlevel"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// Chef-level properties of -solvermode=bdd. The email fixture's branch
// conditions are equalities between one input byte and one constant — exactly
// the liftable boolean skeletons the diagram decides without ever reaching
// the CDCL core — while flagCollisionProg below forces the opaque-atom
// fallback. Together they pin the two contracts the backend documents:
// bdd exploration is byte-identical across repeats and shard counts, and on
// streams the diagram cannot decide it degrades to the oneshot backend's
// exact verdicts and models.

func bddOpts(seed int64) Options {
	return Options{
		Strategy:      StrategyCUPAPath,
		Seed:          seed,
		SolverOptions: solver.Options{SolverMode: solver.ModeBDD},
	}
}

// sessionFingerprint renders everything semantically observable about a
// plain session run into one comparable string.
func sessionFingerprint(s *Session, tests []TestCase) string {
	return fmt.Sprintf("tests=%#v\nstats=%+v\npaths=%d\nsolver=%+v",
		tests, s.Engine().Stats(), s.HLPathCount(), s.Engine().Solver().Stats())
}

// TestBDDSessionDeterministicAndDecisive: two identical bdd-mode runs are
// byte-identical, find both fixture outcomes, and the diagram actually
// decides the queries — no CDCL fallback fires on the pure eq-const stream.
func TestBDDSessionDeterministicAndDecisive(t *testing.T) {
	run := func() (string, solver.Stats) {
		s := NewSession(validateEmailProg(6), bddOpts(42))
		tests := s.Run(1 << 22)
		results := map[string]bool{}
		for _, tc := range tests {
			results[tc.Result] = true
		}
		if !results["ok"] || !results["exception:InvalidEmailError"] {
			t.Fatalf("outcomes %v, want both ok and exception", results)
		}
		return sessionFingerprint(s, tests), s.Engine().Solver().Stats()
	}
	a, aStats := run()
	b, _ := run()
	if a != b {
		t.Fatalf("identical bdd runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if aStats.BDDNodes == 0 {
		t.Fatalf("bdd mode never built a diagram node: %+v", aStats)
	}
	if aStats.BDDFallbacks != 0 {
		t.Fatalf("pure eq-const stream fell back to CDCL %d times: %+v", aStats.BDDFallbacks, aStats)
	}
}

// TestBDDShardedByteIdenticalAcrossWorkers extends the core sharding
// property to bdd mode: worker count is scheduling, not semantics, so the
// full fingerprint — tests, stats, virtual clock, merged solver counters —
// must match serial for 2 and 4 workers.
func TestBDDShardedByteIdenticalAcrossWorkers(t *testing.T) {
	serial := fingerprint(runSharded(t, validateEmailProg(6), bddOpts(42), 1, shardFixtureBudget))
	for _, workers := range []int{2, 4} {
		got := fingerprint(runSharded(t, validateEmailProg(6), bddOpts(42), workers, shardFixtureBudget))
		if got != serial {
			t.Fatalf("%d-worker bdd run diverged from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

// flagCollisionProg branches on arithmetic over two input bytes (a sum
// compared against constants), producing opaque theory atoms the BDD cannot
// lift — every satisfiable query must take the CDCL fallback.
func flagCollisionProg(ctx *Ctx) {
	in := ctx.GetString("in", 2, "")
	sum := lowlevel.AddV(in[0], in[1])
	ctx.LogPC(100, 1)
	if ctx.M.Branch(1000, lowlevel.UltV(sum, lowlevel.ConcreteVal(10, symexpr.W8))) {
		ctx.LogPC(200, 1)
		if ctx.M.Branch(1001, lowlevel.EqV(lowlevel.MulV(in[0], in[1]), lowlevel.ConcreteVal(8, symexpr.W8))) {
			ctx.LogPC(300, 3)
			ctx.SetResult("product")
			return
		}
		ctx.LogPC(400, 3)
		ctx.SetResult("small")
		return
	}
	ctx.LogPC(500, 3)
	ctx.SetResult("large")
}

// TestBDDFallbackTransparentAtChefLevel: on an arithmetic guest whose atoms
// are all opaque, bdd mode must reproduce the oneshot backend's exploration
// exactly — same test inputs, signatures, results and path count — because
// the fallback blasts each query in the same canonical order the oneshot
// backend would. Only solver costs (the diagram steps spent before falling
// back) may differ, which surfaces solely through virtual timestamps, so
// VirtTime is normalized out of the comparison.
func TestBDDFallbackTransparentAtChefLevel(t *testing.T) {
	run := func(mode solver.SolverMode) ([]TestCase, int, solver.Stats) {
		opts := Options{
			Strategy:      StrategyCUPAPath,
			Seed:          7,
			SolverOptions: solver.Options{SolverMode: mode},
		}
		s := NewSession(flagCollisionProg, opts)
		tests := s.Run(1 << 22)
		for i := range tests {
			tests[i].VirtTime = 0
		}
		return tests, s.HLPathCount(), s.Engine().Solver().Stats()
	}
	oneTests, onePaths, _ := run(solver.ModeOneshot)
	bddTests, bddPaths, bddStats := run(solver.ModeBDD)
	if !reflect.DeepEqual(oneTests, bddTests) {
		t.Fatalf("bdd fallback produced different tests than oneshot:\n--- oneshot ---\n%#v\n--- bdd ---\n%#v",
			oneTests, bddTests)
	}
	if onePaths != bddPaths {
		t.Fatalf("path counts diverged: oneshot=%d bdd=%d", onePaths, bddPaths)
	}
	if bddStats.BDDFallbacks == 0 {
		t.Fatalf("arithmetic guest never exercised the CDCL fallback: %+v", bddStats)
	}
	results := map[string]bool{}
	for _, tc := range bddTests {
		results[tc.Result] = true
	}
	if len(results) < 2 {
		t.Fatalf("fixture outcomes %v, want at least 2 distinct", results)
	}
}
