package chef

import (
	"fmt"
	"math/rand"
	"testing"

	"chef/internal/faults"
)

func mustChaosPlan(t testing.TB, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

// randomPlanSpec draws a random-but-valid fault plan: a seed plus 1-3 rules
// over the solver.unknown and worker.stall sites with assorted triggers.
func randomPlanSpec(r *rand.Rand) string {
	spec := fmt.Sprintf("seed=%d", r.Int63n(1_000_000))
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		switch r.Intn(5) {
		case 0:
			spec += fmt.Sprintf(";solver.unknown:p=%.2f", 0.05+0.85*r.Float64())
		case 1:
			spec += fmt.Sprintf(";solver.unknown:n=%d", 1+r.Intn(20))
		case 2:
			spec += fmt.Sprintf(";solver.unknown:every=%d", 1+r.Intn(8))
		case 3:
			spec += fmt.Sprintf(";worker.stall:session=%d", r.Intn(4))
		default:
			spec += ";worker.stall" // stalls every session
		}
	}
	return spec
}

var chaosStrategies = []StrategyKind{
	StrategyRandom, StrategyCUPAPath, StrategyCUPACoverage, StrategyDFS, StrategyBFS,
}

// Chaos property suite: whatever fault plan is active, a session must never
// panic, must terminate within its budget, and must keep its accounting
// invariants — one test per distilled high-level path, Unknown verdicts
// fully split between re-queues and abandonments, monotone progress series,
// and a stalled session reporting zero tests.
func TestChaosFaultPlansKeepSessionInvariants(t *testing.T) {
	plans := 1000
	if testing.Short() {
		plans = 150
	}
	r := rand.New(rand.NewSource(20260806))
	stalled, faulted := 0, 0
	for i := 0; i < plans; i++ {
		spec := randomPlanSpec(r)
		s := NewSession(validateEmailProg(4+i%3), Options{
			Strategy:     chaosStrategies[i%len(chaosStrategies)],
			Seed:         int64(i + 1),
			SessionIndex: i % 4,
			Faults:       mustChaosPlan(t, spec),
			Name:         fmt.Sprintf("chaos-%d", i),
		})
		tests := s.Run(100_000)
		st := s.Engine().Stats()

		if st.UnknownStates != st.RequeuedStates+st.AbandonedStates {
			t.Fatalf("plan %q: accounting broken: %+v", spec, st)
		}
		if s.Stalled() {
			stalled++
			if len(tests) != 0 {
				t.Fatalf("plan %q: stalled session produced %d tests", spec, len(tests))
			}
			continue
		}
		if len(tests) != s.HLPathCount() {
			t.Fatalf("plan %q: %d tests for %d HL paths", spec, len(tests), s.HLPathCount())
		}
		series := s.Series()
		for j := 1; j < len(series); j++ {
			if series[j].VirtTime < series[j-1].VirtTime ||
				series[j].LLPaths < series[j-1].LLPaths ||
				series[j].HLPaths < series[j-1].HLPaths {
				t.Fatalf("plan %q: series not monotone at %d", spec, j)
			}
		}
		if s.FaultsInjected() > 0 {
			faulted++
		}
		sum := s.Summary()
		if sum.RequeuedStates != st.RequeuedStates || sum.AbandonedStates != st.AbandonedStates ||
			sum.FaultsInjected != s.FaultsInjected() {
			t.Fatalf("plan %q: summary out of sync with stats: %+v vs %+v", spec, sum, st)
		}
	}
	if stalled == 0 || faulted == 0 {
		t.Fatalf("chaos generator too tame: %d stalled, %d faulted sessions", stalled, faulted)
	}
	t.Logf("%d plans: %d stalled, %d injected solver faults", plans, stalled, faulted)
}

// The acceptance property from the issue: a fault plan forcing a sizable
// fraction of solver Unknowns must still reach 100%% of the clean run's
// high-level paths once every run is drained — re-queued states retry, and
// abandoned signatures re-register on later forks.
func TestFaultedRunRecoversAllPaths(t *testing.T) {
	hlSigs := func(plan *faults.Plan) (map[uint64]bool, *Session) {
		s := NewSession(validateEmailProg(6), Options{
			Strategy: StrategyCUPAPath,
			Seed:     7,
			Faults:   plan,
		})
		sigs := map[uint64]bool{}
		for _, tc := range s.Run(1 << 22) {
			sigs[tc.HLSig] = true
		}
		return sigs, s
	}
	clean, _ := hlSigs(nil)
	if len(clean) == 0 {
		t.Fatal("clean run found no paths")
	}
	faultedSigs, s := hlSigs(mustChaosPlan(t, "seed=9;solver.unknown:p=0.25"))

	st := s.Engine().Stats()
	if st.UnknownStates == 0 {
		t.Fatal("plan injected no Unknowns")
	}
	queries := st.UnknownStates + st.UnsatStates + st.Forks // every solved fork attempt
	if frac := float64(st.UnknownStates) / float64(queries); frac < 0.05 {
		t.Fatalf("injected Unknown fraction %.3f below the 5%% the acceptance demands", frac)
	}
	for sig := range clean {
		if !faultedSigs[sig] {
			t.Fatalf("faulted run lost high-level path %x (%d/%d recovered)",
				sig, len(faultedSigs), len(clean))
		}
	}
	if len(faultedSigs) != len(clean) {
		t.Fatalf("faulted run found %d paths, clean %d", len(faultedSigs), len(clean))
	}
}

// Per-scope fault streams keep the parallel-determinism contract: a
// portfolio under an active plan — including a stalled member — produces
// identical merged results at any worker count.
func TestPortfolioDeterministicUnderFaults(t *testing.T) {
	members := []PortfolioMember{
		{Name: "m0", Prog: validateEmailProg(4)},
		{Name: "m1", Prog: validateEmailProg(5)},
		{Name: "m2", Prog: validateEmailProg(6)},
		{Name: "m3", Prog: validateEmailProg(4)},
	}
	run := func(parallel int) PortfolioResult {
		return RunPortfolio(members, Options{
			Strategy: StrategyCUPAPath,
			Seed:     11,
			Parallel: parallel,
			Faults:   mustChaosPlan(t, "seed=5;solver.unknown:p=0.1;worker.stall:session=1"),
		}, 1<<22)
	}
	serial, wide := run(1), run(4)
	if len(serial.Tests) != len(wide.Tests) {
		t.Fatalf("test counts diverge: serial %d, parallel %d", len(serial.Tests), len(wide.Tests))
	}
	for i := range serial.Tests {
		if serial.Tests[i].HLSig != wide.Tests[i].HLSig {
			t.Fatalf("test %d diverges: serial sig %x, parallel sig %x",
				i, serial.Tests[i].HLSig, wide.Tests[i].HLSig)
		}
	}
	for i := range serial.PerBuild {
		if serial.PerBuild[i] != wide.PerBuild[i] || serial.NewPerBuild[i] != wide.NewPerBuild[i] {
			t.Fatalf("member %d counts diverge: serial %d/%d, parallel %d/%d", i,
				serial.PerBuild[i], serial.NewPerBuild[i], wide.PerBuild[i], wide.NewPerBuild[i])
		}
	}
	// The stalled member contributed nothing, and the stall was actually
	// injected in both runs.
	if serial.PerBuild[1] != 0 || wide.PerBuild[1] != 0 {
		t.Fatalf("session=1 stall did not fire: per-build %v / %v", serial.PerBuild, wide.PerBuild)
	}
	if serial.PerBuild[0] == 0 || serial.PerBuild[2] == 0 {
		t.Fatalf("non-stalled members found nothing: %v", serial.PerBuild)
	}
}
