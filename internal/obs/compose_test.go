package obs

import (
	"sync"
	"testing"
)

// orderTracer records the order in which fanout members observe events.
type orderTracer struct {
	tag string
	out *[]string
}

func (o orderTracer) Emit(ev *Event) { *o.out = append(*o.out, o.tag) }

func TestFanoutNilMembers(t *testing.T) {
	if Fanout() != nil {
		t.Error("Fanout() should be nil")
	}
	if Fanout(nil, nil) != nil {
		t.Error("Fanout of only nils should be nil")
	}
	var c Collect
	if Fanout(nil, &c) != Tracer(&c) {
		t.Error("Fanout with one live member should return it unwrapped")
	}
}

func TestFanoutForwardsToAllInOrder(t *testing.T) {
	var order []string
	f := Fanout(orderTracer{"a", &order}, nil, orderTracer{"b", &order})
	f.Emit(&Event{Kind: KindRunEnd})
	f.Emit(&Event{Kind: KindRunEnd})
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("fanout delivered %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
}

func TestWithSessionNestingOutermostWins(t *testing.T) {
	var c Collect
	tr := WithSession(WithSession(&c, "inner"), "outer")
	tr.Emit(&Event{Kind: KindRunEnd})
	tr.Emit(&Event{Kind: KindRunEnd, Session: "explicit"})
	evs := c.Events()
	if evs[0].Session != "outer" {
		t.Errorf("nested WithSession label = %q, want outer (outermost wrapper sets first)", evs[0].Session)
	}
	if evs[1].Session != "explicit" {
		t.Errorf("explicit session label overwritten: %q", evs[1].Session)
	}
}

func TestWithSessionAroundFanoutLabelsAllMembers(t *testing.T) {
	var a, b Collect
	tr := WithSession(Fanout(&a, &b), "s1")
	tr.Emit(&Event{Kind: KindSpan, Layer: SpanChefSession})
	for name, c := range map[string]*Collect{"a": &a, "b": &b} {
		evs := c.Events()
		if len(evs) != 1 || evs[0].Session != "s1" {
			t.Errorf("member %s: events %+v, want one event labeled s1", name, evs)
		}
	}
}

func TestCollectConcurrentEmit(t *testing.T) {
	var c Collect
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	go func() {
		// Concurrent readers must not race with emitters (run with -race).
		defer wg.Done()
		for i := 0; i < 100; i++ {
			c.Events()
			c.CountKind(KindRunEnd)
		}
	}()
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Emit(&Event{Kind: KindRunEnd, T: int64(i)})
			}
		}()
	}
	wg.Wait()
	if got := c.CountKind(KindRunEnd); got != workers*perWorker {
		t.Errorf("collected %d events, want %d", got, workers*perWorker)
	}
}
