package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a Registry.
//
// Naming: every metric is prefixed chef_ and has '.' and '-' mangled to '_'.
// Counters get a _total suffix, gauges are bare, histograms expand into the
// conventional _bucket/_sum/_count triplet with cumulative le bounds (our
// base-2 buckets are [lo,hi] inclusive, so le equals each bucket's hi).
// Counter vecs become labeled families ({key="..."}), rendered through the
// registry's label resolvers. The span.* aggregate counters are folded into
// five families labeled by layer instead of one unlabeled series per layer.

// PromContentType is the Content-Type of the exposition format produced by
// WriteProm.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName mangles a registry metric name into a Prometheus metric name:
// chef_ prefix, [.-] replaced by _.
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("chef_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '.' || c == '-' {
			c = '_'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// PromEscapeLabel escapes a label value per the exposition format.
func PromEscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// spanFamily maps one span.* aggregate counter onto a labeled Prometheus
// family, returning ok=false for non-span names.
func spanFamily(name string) (family, layer string, ok bool) {
	rest, found := strings.CutPrefix(name, spanMetricPrefix)
	if !found {
		return "", "", false
	}
	for _, f := range [...]struct{ suffix, family string }{
		{".virt.total", "chef_span_virt_total"},
		{".virt.self", "chef_span_virt_self_total"},
		{".wall_ns.total", "chef_span_wall_ns_total"},
		{".wall_ns.self", "chef_span_wall_ns_self_total"},
		{".count", "chef_span_count_total"},
	} {
		if l, found := strings.CutSuffix(rest, f.suffix); found {
			return f.family, l, true
		}
	}
	return "", "", false
}

// WriteProm renders the registry in the Prometheus text exposition format.
// Families are emitted in sorted name order so scrapes are deterministic for
// fixed values.
func (r *Registry) WriteProm(w io.Writer) {
	snap := r.Snapshot()

	type sample struct {
		labels string // rendered {...} block, "" for none
		value  string
	}
	families := map[string]struct {
		typ     string
		samples []sample
	}{}
	add := func(family, typ, labels, value string) {
		f := families[family]
		f.typ = typ
		f.samples = append(f.samples, sample{labels: labels, value: value})
		families[family] = f
	}

	for n, v := range snap.Counters {
		if fam, layer, ok := spanFamily(n); ok {
			add(fam, "counter", fmt.Sprintf(`{layer="%s"}`, PromEscapeLabel(layer)), fmt.Sprintf("%d", v))
			continue
		}
		name := PromName(n)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		add(name, "counter", "", fmt.Sprintf("%d", v))
	}
	for n, v := range snap.Gauges {
		add(PromName(n), "gauge", "", fmt.Sprintf("%d", v))
	}
	for n, h := range snap.Histograms {
		name := PromName(n)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.N
			add(name+"_bucket", "histogram", fmt.Sprintf(`{le="%d"}`, b.Hi), fmt.Sprintf("%d", cum))
		}
		add(name+"_bucket", "histogram", `{le="+Inf"}`, fmt.Sprintf("%d", h.Count))
		add(name+"_sum", "histogram", "", fmt.Sprintf("%d", h.Sum))
		add(name+"_count", "histogram", "", fmt.Sprintf("%d", h.Count))
	}
	for n, m := range snap.Vecs {
		name := PromName(n)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		for k, v := range m {
			add(name, "counter", fmt.Sprintf(`{key="%s"}`, PromEscapeLabel(k)), fmt.Sprintf("%d", v))
		}
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	typed := map[string]bool{}
	for _, n := range names {
		f := families[n]
		// The three histogram series share one family name for TYPE purposes.
		base := n
		if f.typ == "histogram" {
			base = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		}
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, f.typ)
		}
		if f.typ != "histogram" {
			// Histogram buckets stay in cumulative le order; everything else
			// sorts by label for deterministic scrapes.
			sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		}
		for _, s := range f.samples {
			fmt.Fprintf(w, "%s%s %s\n", n, s.labels, s.value)
		}
	}
}
