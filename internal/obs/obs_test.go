package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0}, // zero lands in the non-positive bucket
		{1, 1}, // [1,1]
		{2, 2}, // [2,3]
		{3, 2},
		{4, 3}, // [4,7]
		{(1 << (HistBuckets - 2)) - 1, HistBuckets - 2}, // last finite bucket's top
		{1 << (HistBuckets - 2), HistBuckets - 1},       // first overflow value
		{math.MaxInt64, HistBuckets - 1},                // overflow bucket
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	for i := 0; i < HistBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if BucketOf(int64(lo)) != i {
			t.Errorf("bucket %d: BucketOf(lo=%d) = %d", i, lo, BucketOf(int64(lo)))
		}
		if hi <= math.MaxInt64 && BucketOf(int64(hi)) != i {
			t.Errorf("bucket %d: BucketOf(hi=%d) = %d", i, hi, BucketOf(int64(hi)))
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-7)
	h.Observe(5)
	h.Observe(math.MaxInt64)
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if h.Max() != math.MaxInt64 {
		t.Errorf("Max = %d, want MaxInt64", h.Max())
	}
	if h.Bucket(0) != 2 {
		t.Errorf("bucket 0 = %d, want 2 (zero and negative)", h.Bucket(0))
	}
	if h.Bucket(BucketOf(5)) != 1 {
		t.Errorf("bucket for 5 = %d, want 1", h.Bucket(BucketOf(5)))
	}
	if h.Bucket(HistBuckets-1) != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.Bucket(HistBuckets-1))
	}
	if h.Bucket(-1) != 0 || h.Bucket(HistBuckets) != 0 {
		t.Error("out-of-range Bucket() should return 0")
	}

	// Sum covers only positive observations.
	var hs Histogram
	hs.Observe(-3)
	hs.Observe(0)
	hs.Observe(4)
	hs.Observe(6)
	if hs.Sum() != 10 {
		t.Errorf("Sum = %d, want 10 (positive observations only)", hs.Sum())
	}
}

func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			v := reg.CounterVec("vec")
			h := reg.Histogram("h")
			g := reg.Gauge("g")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.At(uint64(i % 4)).Inc()
				h.Observe(int64(i))
				g.Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	var vecTotal int64
	for _, n := range reg.CounterVec("vec").Snapshot() {
		vecTotal += n
	}
	if vecTotal != workers*perWorker {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
	if got := reg.Histogram("h").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryMerge(t *testing.T) {
	parent, child := NewRegistry(), NewRegistry()
	parent.Counter("c").Add(2)
	child.Counter("c").Add(3)
	child.Counter("only-child").Add(1)
	parent.Gauge("g").Set(10)
	child.Gauge("g").Set(4)
	child.Histogram("h").Observe(7)
	parent.Histogram("h").Observe(100)
	child.CounterVec("v").At(0x42).Add(5)
	parent.Merge(child)
	parent.Merge(nil) // no-op

	if got := parent.Counter("c").Value(); got != 5 {
		t.Errorf("merged counter = %d, want 5", got)
	}
	if got := parent.Counter("only-child").Value(); got != 1 {
		t.Errorf("child-only counter = %d, want 1", got)
	}
	if got := parent.Gauge("g").Value(); got != 14 {
		t.Errorf("merged gauge = %d, want 14 (sum over children)", got)
	}
	h := parent.Histogram("h")
	if h.Count() != 2 || h.Sum() != 107 || h.Max() != 100 {
		t.Errorf("merged histogram count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if got := parent.CounterVec("v").At(0x42).Value(); got != 5 {
		t.Errorf("merged vec = %d, want 5", got)
	}
}

func TestHitRate(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.HitRate(MSolverCacheHits, MSolverCacheMisses); ok {
		t.Error("empty registry should report no hit rate")
	}
	reg.Counter(MSolverCacheHits).Add(3)
	reg.Counter(MSolverCacheMisses).Add(1)
	rate, ok := reg.HitRate(MSolverCacheHits, MSolverCacheMisses)
	if !ok || rate != 0.75 {
		t.Errorf("hit rate = %v, %v; want 0.75, true", rate, ok)
	}
}

func TestWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MSolverQueries).Add(4)
	reg.Counter(MSolverCacheHits).Add(3)
	reg.Counter(MSolverCacheMisses).Add(1)
	reg.Gauge(MStatesPending).Set(2)
	reg.Histogram(MSolverQueryVirt).Observe(9)
	reg.CounterVec(MForksByLLPC).At(0x10).Add(7)
	var buf bytes.Buffer
	reg.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"solver.queries", "engine.states.pending", "solver.query.virt",
		"engine.forks.by_llpc", "0x10", "solver.cache.hit_rate", "75.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.DisableWallClock()
	events := []Event{
		{T: 1, Kind: KindLLFork, LLPC: 0x40, Decision: "flip-taken", Depth: 2},
		{T: 5, Kind: KindSolverQuery, Result: "sat", VirtCost: 12, CacheHit: true},
		{T: 9, Kind: KindTestCase, HLLen: 3, Sig: "00000000000000ab"},
	}
	for i := range events {
		ev := events[i]
		tr.Emit(&ev)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d round trip mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
	if strings.Contains(buf.String(), "wall_ns") {
		t.Error("DisableWallClock trace still contains wall_ns")
	}
}

func TestJSONLWallStamping(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.Emit(&Event{T: 1, Kind: KindRunEnd})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil || len(got) != 1 {
		t.Fatalf("parse: %v, %d events", err, len(got))
	}
	if got[0].WallNs <= 0 {
		t.Errorf("wall stamping enabled but WallNs = %d", got[0].WallNs)
	}
}

func TestWithSession(t *testing.T) {
	if WithSession(nil, "x") != nil {
		t.Error("WithSession(nil) should stay nil")
	}
	var c Collect
	if WithSession(&c, "") != Tracer(&c) {
		t.Error("WithSession with empty name should return tracer unchanged")
	}
	tr := WithSession(&c, "alpha")
	tr.Emit(&Event{Kind: KindRunEnd})
	tr.Emit(&Event{Kind: KindRunEnd, Session: "explicit"})
	evs := c.Events()
	if evs[0].Session != "alpha" {
		t.Errorf("session label = %q, want alpha", evs[0].Session)
	}
	if evs[1].Session != "explicit" {
		t.Errorf("explicit session overwritten: %q", evs[1].Session)
	}
	if c.CountKind(KindRunEnd) != 2 {
		t.Errorf("CountKind = %d, want 2", c.CountKind(KindRunEnd))
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(1)
	reg.Histogram("h").Observe(3)
	data, err := reg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"counters"`, `"a":1`, `"histograms"`, `"buckets"`} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot JSON missing %q: %s", want, s)
		}
	}
}
