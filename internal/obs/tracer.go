package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the instrumented stack. The schema is documented in
// docs/OBSERVABILITY.md; cmd/chef-trace consumes these.
const (
	KindSessionStart = "session-start" // a CHEF session begins (seed, strategy)
	KindSessionEnd   = "session-end"   // a session finished (tests, hl/ll paths)
	KindRunEnd       = "run-end"       // one concrete run of the interpreter ended
	KindLLFork       = "ll-fork"       // an alternate state registered at an LL branch site
	KindHLEdge       = "hlpc-edge"     // first observation of a high-level CFG transition
	KindSolverQuery  = "solver-query"  // one satisfiability query (result, latency, cache)
	KindCUPAPick     = "cupa-pick"     // CUPA selected a state (top-level class)
	KindTestCase     = "testcase"      // a new high-level path was distilled to a test case
	KindFault        = "fault"         // an injected fault fired (site)
	KindStateRequeue = "state-requeue" // an Unknown state was re-queued for retry
	KindStateAbandon = "state-abandon" // a state was dropped after its retry budget
	KindSpan         = "span"          // a profiler span closed (layer, self/total durations)
)

// Event is one structured exploration event. Fields are a flat union across
// kinds; unused fields are omitted from the JSON encoding. T is the session's
// virtual clock; WallNs is stamped by the JSONL tracer at emission and never
// enters engine state (determinism contract).
type Event struct {
	T       int64  `json:"t"`
	WallNs  int64  `json:"wall_ns,omitempty"`
	Kind    string `json:"kind"`
	Session string `json:"session,omitempty"`

	// Location.
	LLPC    uint64 `json:"llpc,omitempty"`
	From    uint64 `json:"from,omitempty"` // hlpc-edge: source HLPC
	HLPC    uint64 `json:"hlpc,omitempty"`
	DynHLPC uint64 `json:"dyn_hlpc,omitempty"`
	Opcode  uint32 `json:"opcode,omitempty"`

	// Fork decisions.
	Decision string `json:"decision,omitempty"` // "flip-taken" | "flip-untaken" | "exclude"

	// Solver queries.
	Result      string `json:"result,omitempty"` // sat | unsat | unknown; run status; test result
	VirtCost    int64  `json:"virt_cost,omitempty"`
	WallCost    int64  `json:"wall_cost_ns,omitempty"`
	CacheHit    bool   `json:"cache_hit,omitempty"`
	Constraints int    `json:"constraints,omitempty"`
	PathSig     uint64 `json:"path_sig,omitempty"` // trail signature of the querying path

	// Runs and test cases.
	Status   string `json:"status,omitempty"`
	Steps    int64  `json:"steps,omitempty"`
	Depth    int    `json:"depth,omitempty"`
	Diverged bool   `json:"diverged,omitempty"`
	HLLen    int    `json:"hl_len,omitempty"`
	Sig      string `json:"sig,omitempty"`

	// CUPA.
	Class uint64 `json:"class,omitempty"`

	// Profiler spans. VirtCost/WallCost above carry the span's total
	// durations; SelfVirt/SelfWall exclude the totals of direct child spans.
	Layer    string `json:"layer,omitempty"`
	Parent   string `json:"parent,omitempty"`
	SelfVirt int64  `json:"self_virt,omitempty"`
	SelfWall int64  `json:"self_wall_ns,omitempty"`

	// Fault injection and degradation.
	Site    string `json:"site,omitempty"`    // fault: injection site
	Retries int    `json:"retries,omitempty"` // state-requeue/abandon: attempts so far

	// Session lifecycle.
	Seed     int64  `json:"seed,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Tests    int    `json:"tests,omitempty"`
	HLPaths  int    `json:"hl_paths,omitempty"`
	LLPaths  int64  `json:"ll_paths,omitempty"`
}

// Tracer receives exploration events. Implementations must be safe for
// concurrent use (parallel harness sessions share one tracer). Emit may fill
// Event.WallNs; callers pass a freshly built event and must not retain it.
//
// The disabled case is a nil Tracer value held by the instrumented component:
// every site guards with a single nil-check, so the hot path cost of disabled
// tracing is one predictable branch.
type Tracer interface {
	Emit(ev *Event)
}

// JSONL writes events as newline-delimited JSON. Safe for concurrent use.
type JSONL struct {
	mu        sync.Mutex
	bw        *bufio.Writer
	enc       *json.Encoder
	closer    io.Closer
	start     time.Time
	stampWall bool
}

// NewJSONL builds a tracer writing to w. If w is an io.Closer, Close closes
// it after flushing. Events are stamped with wall-clock nanoseconds since the
// tracer's creation (DisableWallClock turns this off for byte-stable traces).
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	t := &JSONL{bw: bw, enc: json.NewEncoder(bw), start: time.Now(), stampWall: true}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// DisableWallClock stops stamping WallNs, making traces byte-deterministic
// for fixed seeds (used by tests and golden traces).
func (t *JSONL) DisableWallClock() { t.stampWall = false }

// Emit implements Tracer.
func (t *JSONL) Emit(ev *Event) {
	t.mu.Lock()
	if t.stampWall {
		ev.WallNs = time.Since(t.start).Nanoseconds()
	}
	_ = t.enc.Encode(ev)
	t.mu.Unlock()
}

// Close flushes buffered events and closes the underlying writer when it is
// closable.
func (t *JSONL) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil {
		return err
	}
	if t.closer != nil {
		return t.closer.Close()
	}
	return nil
}

// Collect buffers events in memory, for tests and in-process analyses.
type Collect struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (c *Collect) Emit(ev *Event) {
	c.mu.Lock()
	c.events = append(c.events, *ev)
	c.mu.Unlock()
}

// Events returns a copy of the collected events.
func (c *Collect) Events() []Event {
	c.mu.Lock()
	out := append([]Event(nil), c.events...)
	c.mu.Unlock()
	return out
}

// CountKind returns how many collected events have the given kind.
func (c *Collect) CountKind(kind string) int {
	c.mu.Lock()
	n := 0
	for i := range c.events {
		if c.events[i].Kind == kind {
			n++
		}
	}
	c.mu.Unlock()
	return n
}

// sessionTracer labels every event with a session name before forwarding.
type sessionTracer struct {
	inner Tracer
	name  string
}

// Emit implements Tracer.
func (t sessionTracer) Emit(ev *Event) {
	if ev.Session == "" {
		ev.Session = t.name
	}
	t.inner.Emit(ev)
}

// WithSession wraps a tracer so all events carry the given session label.
// Returns the tracer unchanged when it is nil or the name is empty.
func WithSession(t Tracer, name string) Tracer {
	if t == nil || name == "" {
		return t
	}
	return sessionTracer{inner: t, name: name}
}

// fanoutTracer forwards every event to each of its members.
type fanoutTracer struct{ members []Tracer }

// Emit implements Tracer.
func (t fanoutTracer) Emit(ev *Event) {
	for _, m := range t.members {
		m.Emit(ev)
	}
}

// Fanout combines tracers into one that forwards every event to each of
// them. Nil members are skipped; Fanout returns nil when none remain and the
// sole member itself when only one does, so callers can pass the result
// straight into an Options.Tracer field.
func Fanout(tracers ...Tracer) Tracer {
	members := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			members = append(members, t)
		}
	}
	switch len(members) {
	case 0:
		return nil
	case 1:
		return members[0]
	}
	return fanoutTracer{members: members}
}

// ParseJSONL decodes a JSONL trace, skipping blank lines. It is the reading
// half of the JSONL tracer, shared by cmd/chef-trace and tests.
func ParseJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}
