package obs

import (
	"sort"
	"strings"
	"time"
)

// Span layer names, one per instrumented stratum of the stack. The parent
// chain is fixed by the instrumentation sites (a serve job contains one chef
// session, a session contains engine runs, a run contains solver checks, a
// check contains its blast/cache/persist stages), so a profile tree built
// from span events always nests the same way.
const (
	SpanServeJob    = "serve.job"
	SpanChefSession = "chef.session"
	SpanEngineRun   = "engine.run"
	SpanSolverCheck = "solver.check"
	SpanSolverBlast = "solver.blast"
	// SpanSolverInc replaces solver.blast on the miss path when the solver
	// runs in incremental mode: one span per assumption-scoped context solve
	// (delta blast + solveUnderAssumptions), virtual duration = the solve's
	// propagation cost.
	SpanSolverInc = "solver.inc"
	// SpanSolverBDD replaces solver.blast on the miss path when the solver
	// runs in bdd mode: one span per diagram solve (skeleton conjoin plus,
	// for arithmetic-bearing queries, the CDCL fallback blast), virtual
	// duration = the solve's total cost in propagation units.
	SpanSolverBDD     = "solver.bdd"
	SpanCacheLookup   = "solver.cache_lookup"
	SpanPersistLookup = "solver.persist_lookup"
	SpanPersistFlush  = "persist.flush"
	// SpanShardEpoch is emitted by the sharded coordinator's own profiler,
	// one span per BSP epoch (virtual duration = the epoch's clock
	// advance summed over ranges); the per-range chef.session spans live
	// on the ranges' own profilers.
	SpanShardEpoch = "shard.epoch"
)

// spanMetricPrefix namespaces the per-layer aggregate counters a profiler
// writes into its registry; SpanAggregates parses them back out.
const spanMetricPrefix = "span."

// spanCells caches the five counter handles for one layer so ending a span
// costs five atomic adds, not five map lookups.
type spanCells struct {
	count     *Counter
	virtTotal *Counter
	virtSelf  *Counter
	wallTotal *Counter
	wallSelf  *Counter
}

// Span is one open interval on a profiler's stack. The virtual duration is
// supplied by the call site at End (the engine's clock is the source of
// truth); the wall duration is measured here and is observational only.
type Span struct {
	prof      *SpanProfiler
	parent    *Span
	layer     string
	start     time.Time
	childVirt int64
	childWall int64
}

// SpanProfiler attributes virtual and wall time to the layers of the stack.
// It keeps an explicit span stack, so one profiler serves exactly one
// goroutine (the engine is single-threaded per session; parallel drivers
// create one profiler per session). Both sinks are optional: aggregates go
// to reg, span events to tracer. A nil *SpanProfiler is the disabled state —
// Start and End on nil receivers are no-ops, so instrumented sites pay one
// nil-check, mirroring the tracer contract.
type SpanProfiler struct {
	reg    *Registry
	tracer Tracer
	cur    *Span // top of the span stack
	cells  map[string]*spanCells
	free   *Span // single-slot freelist; spans close LIFO, so this absorbs most allocations
}

// NewSpanProfiler returns a profiler writing per-layer aggregates into reg
// and span events into tracer. Either sink may be nil; if both are, the
// profiler itself is nil (fully disabled).
func NewSpanProfiler(reg *Registry, tracer Tracer) *SpanProfiler {
	if reg == nil && tracer == nil {
		return nil
	}
	return &SpanProfiler{reg: reg, tracer: tracer, cells: map[string]*spanCells{}}
}

// Start opens a span for layer nested under the currently open span (if
// any). Safe on a nil profiler, returning a nil span.
func (p *SpanProfiler) Start(layer string) *Span {
	if p == nil {
		return nil
	}
	sp := p.free
	if sp != nil {
		p.free = nil
		*sp = Span{}
	} else {
		sp = &Span{}
	}
	sp.prof = p
	sp.parent = p.cur
	sp.layer = layer
	sp.start = time.Now()
	p.cur = sp
	return sp
}

// End closes the span. virt is the span's total virtual duration, supplied
// by the caller (e.g. the engine-clock delta across the interval); the span's
// self time is virt minus the totals of its direct children. Safe on a nil
// span.
func (sp *Span) End(virt int64) {
	if sp == nil {
		return
	}
	p := sp.prof
	wall := int64(time.Since(sp.start))
	selfVirt := virt - sp.childVirt
	selfWall := wall - sp.childWall
	if selfWall < 0 {
		selfWall = 0
	}
	parentLayer := ""
	if sp.parent != nil {
		sp.parent.childVirt += virt
		sp.parent.childWall += wall
		parentLayer = sp.parent.layer
	}
	p.cur = sp.parent
	if p.reg != nil {
		c := p.cells[sp.layer]
		if c == nil {
			c = &spanCells{
				count:     p.reg.Counter(spanMetricPrefix + sp.layer + ".count"),
				virtTotal: p.reg.Counter(spanMetricPrefix + sp.layer + ".virt.total"),
				virtSelf:  p.reg.Counter(spanMetricPrefix + sp.layer + ".virt.self"),
				wallTotal: p.reg.Counter(spanMetricPrefix + sp.layer + ".wall_ns.total"),
				wallSelf:  p.reg.Counter(spanMetricPrefix + sp.layer + ".wall_ns.self"),
			}
			p.cells[sp.layer] = c
		}
		c.count.Inc()
		c.virtTotal.Add(virt)
		c.virtSelf.Add(selfVirt)
		c.wallTotal.Add(wall)
		c.wallSelf.Add(selfWall)
	}
	if p.tracer != nil {
		p.tracer.Emit(&Event{
			Kind:     KindSpan,
			Layer:    sp.layer,
			Parent:   parentLayer,
			VirtCost: virt,
			SelfVirt: selfVirt,
			WallCost: wall,
			SelfWall: selfWall,
		})
	}
	sp.prof = nil
	sp.parent = nil
	p.free = sp
}

// SpanAggregate is the per-layer roll-up a profiler accumulates in its
// registry: how many spans closed and their total/self virtual and wall
// durations. Self time excludes the totals of direct child spans, so sums of
// self times partition each level's total.
type SpanAggregate struct {
	Layer     string `json:"layer"`
	Count     int64  `json:"count"`
	VirtTotal int64  `json:"virt_total"`
	VirtSelf  int64  `json:"virt_self"`
	WallTotal int64  `json:"wall_ns_total"`
	WallSelf  int64  `json:"wall_ns_self"`
}

// SpanAggregates parses the span.* counters back into per-layer aggregates,
// sorted by layer name. Empty when no profiler wrote into this registry.
func (r *Registry) SpanAggregates() []SpanAggregate {
	r.mu.Lock()
	vals := make(map[string]int64)
	for n, c := range r.counters {
		if strings.HasPrefix(n, spanMetricPrefix) {
			vals[n] = c.Value()
		}
	}
	r.mu.Unlock()

	byLayer := map[string]*SpanAggregate{}
	for n, v := range vals {
		rest := strings.TrimPrefix(n, spanMetricPrefix)
		var layer, field string
		switch {
		case strings.HasSuffix(rest, ".count"):
			layer, field = strings.TrimSuffix(rest, ".count"), "count"
		case strings.HasSuffix(rest, ".virt.total"):
			layer, field = strings.TrimSuffix(rest, ".virt.total"), "virt.total"
		case strings.HasSuffix(rest, ".virt.self"):
			layer, field = strings.TrimSuffix(rest, ".virt.self"), "virt.self"
		case strings.HasSuffix(rest, ".wall_ns.total"):
			layer, field = strings.TrimSuffix(rest, ".wall_ns.total"), "wall_ns.total"
		case strings.HasSuffix(rest, ".wall_ns.self"):
			layer, field = strings.TrimSuffix(rest, ".wall_ns.self"), "wall_ns.self"
		default:
			continue
		}
		a := byLayer[layer]
		if a == nil {
			a = &SpanAggregate{Layer: layer}
			byLayer[layer] = a
		}
		switch field {
		case "count":
			a.Count = v
		case "virt.total":
			a.VirtTotal = v
		case "virt.self":
			a.VirtSelf = v
		case "wall_ns.total":
			a.WallTotal = v
		case "wall_ns.self":
			a.WallSelf = v
		}
	}
	out := make([]SpanAggregate, 0, len(byLayer))
	for _, a := range byLayer {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Layer < out[j].Layer })
	return out
}
