// Package obs is the engine's observability layer: a lightweight,
// allocation-conscious metrics registry plus a structured event tracer.
//
// The paper's core performance claims (§2, §6) are about *where* exploration
// time goes — fork hot spots inside interpreter internals, solver cost per
// high-level path, CUPA's de-biasing effect. The terse end-of-run Stats
// structs cannot show any of that on a live run, so this package provides:
//
//   - Registry: named counters, gauges and duration histograms (virtual-clock
//     and wall-clock), plus CounterVec for per-site counters keyed by LLPC or
//     CUPA class. All cells are atomics, safe to read and merge while the
//     engine runs.
//   - Tracer: structured JSONL exploration events (forks, solver queries,
//     HLPC transitions, CUPA picks, test-case emissions) with a nil default,
//     so the hot path pays exactly one nil-check when tracing is disabled.
//
// Determinism contract: observation never feeds back into the engine. Wall
// clock readings exist only in metric/trace output, never in engine state, so
// a traced run produces byte-identical engine output to an untraced one.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names, shared by the instrumented packages and documented
// in docs/OBSERVABILITY.md. Keeping them here gives one source of truth for
// dashboards and the CI smoke greps.
const (
	// Low-level engine.
	MRuns            = "engine.runs"
	MHangs           = "engine.hangs"
	MLLPaths         = "engine.llpaths"
	MForks           = "engine.forks"
	MDupStates       = "engine.dup_states"
	MUnsatStates     = "engine.unsat_states"
	MUnknownStates   = "engine.unknown_states"
	MDivergences     = "engine.divergences"
	MStatesPending   = "engine.states.pending"   // gauge: alive (queued) states
	MStatesCompleted = "engine.states.completed" // counter: finished runs
	MForksByLLPC     = "engine.forks.by_llpc"    // counter vec keyed by LLPC

	// Solver.
	MSolverQueries      = "solver.queries"
	MSolverSat          = "solver.sat"
	MSolverUnsat        = "solver.unsat"
	MSolverUnknown      = "solver.unknown"
	MSolverCacheHits    = "solver.cache.hits"
	MSolverCacheMisses  = "solver.cache.misses"
	MSolverCacheEntries = "solver.cache.entries"   // gauge, set at dump time
	MSolverCacheEvicted = "solver.cache.evictions" // gauge, set at dump time
	MSolverQueryVirt    = "solver.query.virt"      // histogram: propagations per query
	MSolverQueryWall    = "solver.query.wall_ns"   // histogram: wall-clock ns per query

	// Per-class decomposition of solver.cache.hits (see solver.HitClass).
	MSolverCacheHitsExact        = "solver.cache.hits.exact"
	MSolverCacheHitsSubsumeSat   = "solver.cache.hits.subsume_sat"
	MSolverCacheHitsSubsumeUnsat = "solver.cache.hits.subsume_unsat"
	MSolverCacheHitsPersist      = "solver.cache.hits.persist"

	// Incremental solving (-solvermode=incremental): the per-solver
	// assumption-scoped context (see solver.Context).
	MSolverIncContexts    = "solver.inc.contexts"     // counter: contexts built (first query + rebuilds)
	MSolverIncAssumptions = "solver.inc.assumptions"  // counter: assumption literals allocated (distinct constraints blasted)
	MSolverIncLearnedKept = "solver.inc.learned_kept" // counter: learned clauses carried into a query, summed over queries
	MSolverIncRebuilds    = "solver.inc.rebuilds"     // counter: contexts discarded at the clause/variable caps

	// BDD fast path (-solvermode=bdd): the per-solver reduced-ordered-BDD
	// diagram for boolean-dominated path conditions (see solver/bdd.go).
	MSolverBDDNodes     = "solver.bdd.nodes"      // counter: unique diagram nodes created
	MSolverBDDApplyHits = "solver.bdd.apply_hits" // counter: ite memo-cache hits
	MSolverBDDFallbacks = "solver.bdd.fallbacks"  // counter: queries handed to the CDCL bit-blasting fallback
	MSolverBDDRebuilds  = "solver.bdd.rebuilds"   // counter: diagrams discarded (node cap or step overrun)
	MSolverBDDReorders  = "solver.bdd.reorders"   // counter: diagram rebuilds forced by variable-order insertions

	// Persistent counterexample cache (the -cachefile store).
	MSolverPersistLoaded      = "solver.persist.loaded"       // gauge: entries loaded at startup
	MSolverPersistAppended    = "solver.persist.appended"     // counter: entries appended this run
	MSolverPersistRetries     = "solver.persist.retries"      // counter: flush retry attempts after a failed write
	MSolverPersistWriteErrors = "solver.persist.write_errors" // counter: failed physical write attempts
	MSolverPersistLost        = "solver.persist.lost"         // counter: entries dropped after the retry budget

	// Graceful degradation (states re-queued/abandoned on solver.Unknown,
	// sessions stalled by injected worker faults).
	MStatesRequeued  = "engine.states.requeued"  // counter: Unknown states re-queued for retry
	MStatesAbandoned = "engine.states.abandoned" // counter: states dropped after the retry budget
	MSessionsStalled = "chef.sessions.stalled"   // counter: sessions that never started (worker.stall)

	// Fault injection (internal/faults).
	MFaultsInjected      = "faults.injected"                // counter: total faults fired
	MFaultsSolverUnknown = "faults.injected.solver_unknown" // counter: forced Unknown verdicts
	MFaultsPersistWrite  = "faults.injected.persist_write"  // counter: failed/shortened writes
	MFaultsWorkerStall   = "faults.injected.worker_stall"   // counter: stalled sessions

	// CUPA.
	MCupaSelections   = "cupa.selections"
	MCupaPicksByClass = "cupa.picks.by_class" // counter vec keyed by top-level class

	// CHEF layer.
	MChefLogPC   = "chef.logpc" // high-level instructions observed
	MChefTests   = "chef.tests"
	MChefHLPaths = "chef.hlpaths"

	// Serving layer (internal/serve). Job accounting mirrors the engine's
	// Unknown == Requeued + Abandoned invariant one level up: at any quiescent
	// point, submitted == succeeded + degraded + cancelled + failed +
	// queued(gauge) + running(gauge) — no job is ever silently lost.
	MServeJobsSubmitted = "serve.jobs.submitted" // counter: accepted submissions
	MServeJobsRejected  = "serve.jobs.rejected"  // counter: 429/503 rejections (never counted as submitted)
	MServeJobsInvalid   = "serve.jobs.invalid"   // counter: 400 malformed specs (never counted as submitted)
	MServeJobsSucceeded = "serve.jobs.succeeded" // counter: jobs that ran to completion
	MServeJobsDegraded  = "serve.jobs.degraded"  // counter: terminal but degraded (stalled session)
	MServeJobsCancelled = "serve.jobs.cancelled" // counter: cancelled via DELETE or drain timeout
	MServeJobsFailed    = "serve.jobs.failed"    // counter: jobs that errored or panicked
	MServeJobsQueued    = "serve.jobs.queued"    // gauge: jobs waiting for a worker slot
	MServeJobsRunning   = "serve.jobs.running"   // gauge: jobs currently executing
	MServeSlotsInUse    = "serve.slots.in_use"   // gauge: worker slots held by running jobs (sharded jobs hold several)

	// Path-space sharding (internal/chef's ShardedSession; see
	// docs/DESIGN.md "Path-space sharding"). All families except
	// shard.steals and shard.virt_makespan are pure functions of (seed,
	// budget, shard semantics) and byte-identical across worker counts;
	// those two are deterministic per worker count but depend on it:
	// steals counts barrier-time range reassignments, and the virtual
	// makespan is the critical path of the epoch schedule — per epoch, the
	// maximum virtual-time load across workers — the deterministic
	// analogue of parallel wall time (VirtTime / makespan is the run's
	// virtual throughput).
	MShardEpochs       = "shard.epochs"           // counter: BSP epochs executed
	MShardRangesLive   = "shard.ranges.live"      // gauge: ranges with pending work at the last barrier
	MShardHandoffs     = "shard.handoffs.states"  // counter: states delivered across ranges
	MShardVisitedNotes = "shard.handoffs.visited" // counter: trail signatures delivered across ranges
	MShardHandoffDups  = "shard.handoffs.dup"     // counter: delivered states dropped as already-visited
	MShardHandoffDepth = "shard.handoff.depth"    // histogram: per-(epoch,target) delivered queue depth
	MShardSteals       = "shard.steals"           // counter vec by worker: ranges moved between workers at a barrier
	MShardStalled      = "shard.workers.stalled"  // counter: workers lost to worker.stall injection
	MShardVirtMakespan = "shard.virt_makespan"    // counter: summed per-epoch max worker virtual load (critical path)
	MChefTestsMerged   = "chef.tests.merged"      // counter: distinct tests after cross-range HLSig dedup
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of exponential (base-2) histogram buckets.
// Bucket 0 holds non-positive observations; bucket i (1 <= i < HistBuckets-1)
// holds values v with 2^(i-1) <= v < 2^i; the last bucket is the overflow
// bucket for everything at or above 2^(HistBuckets-2) (~2.7e11, comfortably
// above any per-query latency in ns).
const HistBuckets = 40

// Histogram is a fixed-bucket exponential histogram of int64 observations.
// All cells are atomics; Observe is lock-free.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// BucketOf returns the bucket index an observation lands in.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets-1 {
		return HistBuckets - 1
	}
	return b
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	switch {
	case i <= 0:
		return 0, 0
	case i >= HistBuckets-1:
		return 1 << (HistBuckets - 2), 1<<63 - 1
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[BucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of positive observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// merge folds o into h (bucket-wise, used by Registry.Merge).
func (h *Histogram) merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i].Add(o.buckets[i].Load())
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for {
		cur, ov := h.max.Load(), o.max.Load()
		if ov <= cur || h.max.CompareAndSwap(cur, ov) {
			return
		}
	}
}

// CounterVec is a family of counters keyed by a uint64 label — per-LLPC fork
// counters, per-class CUPA pick counters. Lookup takes a short mutex; the
// returned cells are atomics.
type CounterVec struct {
	mu sync.Mutex
	m  map[uint64]*Counter
}

// At returns (creating if needed) the counter for key.
func (v *CounterVec) At(key uint64) *Counter {
	v.mu.Lock()
	c := v.m[key]
	if c == nil {
		c = &Counter{}
		v.m[key] = c
	}
	v.mu.Unlock()
	return c
}

// Snapshot returns a copy of the per-key counts.
func (v *CounterVec) Snapshot() map[uint64]int64 {
	v.mu.Lock()
	out := make(map[uint64]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	v.mu.Unlock()
	return out
}

// Registry is a namespace of named metrics. Metric accessors get-or-create,
// so instrumentation sites never need registration boilerplate. A Registry is
// safe for concurrent use; per-session child registries can be folded into a
// parent with Merge.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vecs     map[string]*CounterVec
	labelers map[string]func(uint64) string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		vecs:     map[string]*CounterVec{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// CounterVec returns the named counter family, creating it on first use.
func (r *Registry) CounterVec(name string) *CounterVec {
	r.mu.Lock()
	v := r.vecs[name]
	if v == nil {
		v = &CounterVec{m: map[uint64]*Counter{}}
		r.vecs[name] = v
	}
	r.mu.Unlock()
	return v
}

// SetVecLabeler registers a label resolver for the named counter vec: every
// snapshot (text dump, -metrics-json, /metrics, Prometheus exposition)
// renders keys through f instead of raw hex. f returning "" falls back to the
// hex form for that key. Labelers follow metrics through Merge, so child
// registries inherit the parent's resolvers.
func (r *Registry) SetVecLabeler(name string, f func(uint64) string) {
	r.mu.Lock()
	if r.labelers == nil {
		r.labelers = map[string]func(uint64) string{}
	}
	r.labelers[name] = f
	r.mu.Unlock()
}

// vecLabel renders one vec key through the registered labeler, falling back
// to hex.
func vecLabel(f func(uint64) string, k uint64) string {
	if f != nil {
		if s := f(k); s != "" {
			return s
		}
	}
	return fmt.Sprintf("0x%x", k)
}

// Merge folds every metric of src into r: counters and histograms add,
// gauges add (a merged gauge is the sum over children — for MStatesPending
// that is the total alive states across sessions). src should be quiescent;
// r may be concurrently read. The parallel experiment harness uses Merge to
// aggregate per-session child registries.
func (r *Registry) Merge(src *Registry) {
	if src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for n, c := range src.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]int64, len(src.gauges))
	for n, g := range src.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for n, h := range src.hists {
		hists[n] = h
	}
	vecs := make(map[string]map[uint64]int64, len(src.vecs))
	for n, v := range src.vecs {
		vecs[n] = v.Snapshot()
	}
	labelers := make(map[string]func(uint64) string, len(src.labelers))
	for n, f := range src.labelers {
		labelers[n] = f
	}
	src.mu.Unlock()

	for n, v := range counters {
		r.Counter(n).Add(v)
	}
	for n, v := range gauges {
		r.Gauge(n).Add(v)
	}
	for n, h := range hists {
		r.Histogram(n).merge(h)
	}
	for n, m := range vecs {
		dst := r.CounterVec(n)
		for k, v := range m {
			dst.At(k).Add(v)
		}
	}
	r.mu.Lock()
	for n, f := range labelers {
		if _, ok := r.labelers[n]; !ok {
			if r.labelers == nil {
				r.labelers = map[string]func(uint64) string{}
			}
			r.labelers[n] = f
		}
	}
	r.mu.Unlock()
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	N  int64  `json:"n"`
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the mean positive observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, serializable as JSON with
// deterministic (sorted) key order.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Vecs       map[string]map[string]int64  `json:"vecs,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	vecs := make(map[string]*CounterVec, len(r.vecs))
	for n, v := range r.vecs {
		vecs[n] = v
	}
	labelers := make(map[string]func(uint64) string, len(r.labelers))
	for n, f := range r.labelers {
		labelers[n] = f
	}
	r.mu.Unlock()

	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Vecs:       map[string]map[string]int64{},
	}
	for n, c := range counters {
		out.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		out.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
		for i := 0; i < HistBuckets; i++ {
			if n := h.Bucket(i); n > 0 {
				lo, hi := BucketBounds(i)
				hs.Buckets = append(hs.Buckets, BucketCount{Lo: lo, Hi: hi, N: n})
			}
		}
		out.Histograms[n] = hs
	}
	for n, v := range vecs {
		m := map[string]int64{}
		label := labelers[n]
		for k, c := range v.Snapshot() {
			m[vecLabel(label, k)] = c
		}
		out.Vecs[n] = m
	}
	return out
}

// MarshalJSON renders the snapshot of the registry (maps serialize with
// sorted keys, so the output is deterministic for fixed values).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// HitRate returns hits/(hits+misses) for a pair of counters, and whether any
// events were recorded.
func (r *Registry) HitRate(hitsName, missesName string) (float64, bool) {
	h := r.Counter(hitsName).Value()
	m := r.Counter(missesName).Value()
	if h+m == 0 {
		return 0, false
	}
	return float64(h) / float64(h+m), true
}

// WriteText renders the registry as a sorted, human-readable dump: counters
// and gauges one per line, histograms with count/mean/max plus an ASCII
// bucket sparkline, counter vecs as their top entries. The derived
// solver-cache hit rate is appended when the cache counters are present.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-28s %d\n", n, snap.Counters[n])
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-28s %d (gauge)\n", n, snap.Gauges[n])
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		fmt.Fprintf(w, "%-28s count=%d mean=%.1f max=%d\n", n, h.Count, h.Mean(), h.Max)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "    [%12d, %12d]  %-7d %s\n", b.Lo, b.Hi, b.N, bar(b.N, h.Count))
		}
	}
	names = names[:0]
	for n := range snap.Vecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-28s %d keys\n", n, len(snap.Vecs[n]))
		for _, kv := range topEntries(snap.Vecs[n], 8) {
			fmt.Fprintf(w, "    %-16s %d\n", kv.k, kv.v)
		}
	}
	if rate, ok := r.HitRate(MSolverCacheHits, MSolverCacheMisses); ok {
		fmt.Fprintf(w, "%-28s %.1f%% (derived)\n", "solver.cache.hit_rate", 100*rate)
	}
}

type kv struct {
	k string
	v int64
}

// topEntries returns the n largest entries of m, ties broken by key, so text
// dumps are deterministic.
func topEntries(m map[string]int64, n int) []kv {
	all := make([]kv, 0, len(m))
	for k, v := range m {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// bar renders a proportional ASCII bar for histogram buckets.
func bar(n, total int64) string {
	if total <= 0 {
		return ""
	}
	w := int(40 * n / total)
	if w == 0 && n > 0 {
		w = 1
	}
	return strings.Repeat("#", w)
}

// Publish exposes the registry's live snapshot as an expvar variable (and
// therefore on the /debug/vars endpoint of any HTTP server using the default
// mux). Call at most once per name per process — expvar panics on duplicate
// names.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
