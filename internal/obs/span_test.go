package obs

import "testing"

func TestSpanProfilerNilSafe(t *testing.T) {
	if NewSpanProfiler(nil, nil) != nil {
		t.Error("profiler with no sinks should be nil (fully disabled)")
	}
	var p *SpanProfiler
	sp := p.Start(SpanEngineRun)
	if sp != nil {
		t.Error("Start on nil profiler should return a nil span")
	}
	sp.End(42) // must not panic
}

func TestSpanNestingAndSelfTime(t *testing.T) {
	reg := NewRegistry()
	var c Collect
	p := NewSpanProfiler(reg, &c)

	outer := p.Start(SpanChefSession)
	inner := p.Start(SpanEngineRun)
	leaf := p.Start(SpanSolverCheck)
	leaf.End(10)
	inner.End(40)
	inner2 := p.Start(SpanEngineRun)
	inner2.End(25)
	outer.End(100)

	aggs := map[string]SpanAggregate{}
	for _, a := range reg.SpanAggregates() {
		aggs[a.Layer] = a
	}
	cases := []struct {
		layer             string
		count, total, slf int64
	}{
		// session total 100, minus direct children 40+25.
		{SpanChefSession, 1, 100, 35},
		// two runs totalling 65; the first loses its child's 10 to self.
		{SpanEngineRun, 2, 65, 55},
		{SpanSolverCheck, 1, 10, 10},
	}
	for _, want := range cases {
		got, ok := aggs[want.layer]
		if !ok {
			t.Fatalf("no aggregate for %s", want.layer)
		}
		if got.Count != want.count || got.VirtTotal != want.total || got.VirtSelf != want.slf {
			t.Errorf("%s: count=%d total=%d self=%d, want %d/%d/%d",
				want.layer, got.Count, got.VirtTotal, got.VirtSelf, want.count, want.total, want.slf)
		}
		if got.WallSelf < 0 || got.WallSelf > got.WallTotal {
			t.Errorf("%s: wall self %d outside [0, total %d]", want.layer, got.WallSelf, got.WallTotal)
		}
	}

	// Self times partition each level: session self + child totals = session total.
	if aggs[SpanChefSession].VirtSelf+aggs[SpanEngineRun].VirtTotal != aggs[SpanChefSession].VirtTotal {
		t.Error("self + direct child totals should equal the parent total")
	}

	events := c.Events()
	if len(events) != 4 {
		t.Fatalf("%d span events, want 4", len(events))
	}
	// Spans close LIFO: leaf, inner, inner2, outer.
	wantOrder := []struct{ layer, parent string }{
		{SpanSolverCheck, SpanEngineRun},
		{SpanEngineRun, SpanChefSession},
		{SpanEngineRun, SpanChefSession},
		{SpanChefSession, ""},
	}
	for i, w := range wantOrder {
		ev := events[i]
		if ev.Kind != KindSpan || ev.Layer != w.layer || ev.Parent != w.parent {
			t.Errorf("event %d: kind=%s layer=%s parent=%s, want span/%s/%s",
				i, ev.Kind, ev.Layer, ev.Parent, w.layer, w.parent)
		}
	}
	if events[1].VirtCost != 40 || events[1].SelfVirt != 30 {
		t.Errorf("first engine.run event virt=%d self=%d, want 40/30", events[1].VirtCost, events[1].SelfVirt)
	}
	if events[3].VirtCost != 100 || events[3].SelfVirt != 35 {
		t.Errorf("session event virt=%d self=%d, want 100/35", events[3].VirtCost, events[3].SelfVirt)
	}
}

func TestSpanAggregatesSortedAndMergeable(t *testing.T) {
	reg := NewRegistry()
	p := NewSpanProfiler(reg, nil)
	p.Start(SpanSolverCheck).End(3)
	p.Start(SpanEngineRun).End(7)

	aggs := reg.SpanAggregates()
	for i := 1; i < len(aggs); i++ {
		if aggs[i-1].Layer >= aggs[i].Layer {
			t.Errorf("aggregates not sorted: %s before %s", aggs[i-1].Layer, aggs[i].Layer)
		}
	}

	// Span counters ride the ordinary counter namespace, so child registries
	// roll up through the existing Merge path.
	parent := NewRegistry()
	parent.Merge(reg)
	parent.Merge(reg)
	merged := map[string]SpanAggregate{}
	for _, a := range parent.SpanAggregates() {
		merged[a.Layer] = a
	}
	if got := merged[SpanEngineRun]; got.Count != 2 || got.VirtTotal != 14 {
		t.Errorf("merged engine.run count=%d total=%d, want 2/14", got.Count, got.VirtTotal)
	}
}

func TestSpanTracerOnlyProfiler(t *testing.T) {
	var c Collect
	p := NewSpanProfiler(nil, &c)
	if p == nil {
		t.Fatal("tracer-only profiler should be enabled")
	}
	p.Start(SpanServeJob).End(5)
	evs := c.Events()
	if len(evs) != 1 || evs[0].Layer != SpanServeJob || evs[0].VirtCost != 5 {
		t.Errorf("tracer-only span event = %+v", evs)
	}
}
