package packages

import (
	"chef/internal/lowlevel"
	"chef/internal/minilua"
	"chef/internal/minipy"
)

// LLPCLabel resolves a low-level program counter to its interpreter site
// name across both front ends (their LLPC ranges are disjoint: 0x1000+ for
// MiniPy, 0x2000+ for MiniLua). It is the label resolver the CLIs and the
// server register for the engine.forks.by_llpc counter vec
// (obs.Registry.SetVecLabeler), so hot-spot tables print py/jump_cond
// instead of 0x1001. Returns "" for unknown PCs, which falls back to hex.
func LLPCLabel(key uint64) string {
	pc := lowlevel.LLPC(key)
	if s := minipy.LLPCName(pc); s != "" {
		return s
	}
	return minilua.LLPCName(pc)
}
