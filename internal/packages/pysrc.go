// Package packages contains the evaluation targets of §6.1: functional
// analogues of the six Python and five Lua library packages the paper tests,
// written in MiniPy and MiniLua, plus the MAC-learning OpenFlow controller
// used for the NICE comparison (§6.6). Each target mirrors the original's
// shape — parsers, CLI front ends, markup converters, a binary spreadsheet
// reader, a mini compiler — and the sb-JSON package carries the paper's real
// bug: an unterminated comment hangs the parser.
package packages

// ArgparseSrc is the MiniPy analogue of the argparse command-line interface
// generator. Documented exception: ArgumentError.
const ArgparseSrc = `
class ArgumentParser:
    def __init__(self):
        self.optnames = []
        self.positionals = []

    def has_option(self, key):
        for o in self.optnames:
            if o == key:
                return True
        return False

    def add_argument(self, name):
        if len(name) == 0:
            raise ArgumentError("empty argument name")
        if name.startswith("--"):
            optname = name[2:]
            if len(optname) == 0:
                raise ArgumentError("bad long option name")
            self.optnames.append(optname)
        elif name.startswith("-"):
            optname = name[1:]
            if len(optname) == 0:
                raise ArgumentError("bad short option name")
            self.optnames.append(optname)
        else:
            for p in self.positionals:
                if p == name:
                    raise ArgumentError("conflicting positional name")
            self.positionals.append(name)

    def parse_args(self, argv):
        result = {}
        pos_index = 0
        i = 0
        while i < len(argv):
            arg = argv[i]
            if arg.startswith("--"):
                body = arg[2:]
                eq = body.find("=")
                if eq >= 0:
                    key = body[:eq]
                    value = body[eq + 1:]
                else:
                    key = body
                    value = None
                if not self.has_option(key):
                    raise ArgumentError("unrecognized option")
                if value == None:
                    if i + 1 < len(argv):
                        value = argv[i + 1]
                        i += 1
                    else:
                        raise ArgumentError("expected one argument")
                if key.startswith("n"):
                    result[key] = int(value)
                else:
                    result[key] = value
            elif arg.startswith("-") and len(arg) > 1:
                key = arg[1:2]
                if not self.has_option(key):
                    raise ArgumentError("unrecognized short option")
                if len(arg) > 2:
                    result[key] = arg[2:]
                elif i + 1 < len(argv):
                    result[key] = argv[i + 1]
                    i += 1
                else:
                    raise ArgumentError("expected one argument")
            else:
                if pos_index >= len(self.positionals):
                    raise ArgumentError("unrecognized positional argument")
                result[self.positionals[pos_index]] = arg
                pos_index += 1
            i += 1
        while pos_index < len(self.positionals):
            result[self.positionals[pos_index]] = ""
            pos_index += 1
        return result


def rstrip_nul(s):
    end = len(s)
    while end > 0 and s[end - 1] == "\x00":
        end -= 1
    return s[:end]

def drive(arg1_name, arg2_name, arg1, arg2):
    parser = ArgumentParser()
    parser.add_argument(rstrip_nul(arg1_name))
    parser.add_argument(rstrip_nul(arg2_name))
    args = parser.parse_args([rstrip_nul(arg1), rstrip_nul(arg2)])
    total = 0
    for k in args.keys():
        # options starting with "n" were converted with int(); summing their
        # lengths raises TypeError, escaping the API like the int-conversion
        # ValueError does
        total += len(args[k])
    return total
`

// ConfigParserSrc is the MiniPy analogue of ConfigParser (INI files).
// Documented exception: ConfigError.
const ConfigParserSrc = `
class ConfigParser:
    def __init__(self):
        self.sections = {}

    def read_string(self, text):
        current = None
        for raw in text.split("\n"):
            line = raw.strip()
            if len(line) == 0:
                continue
            if line.startswith("#") or line.startswith(";"):
                continue
            if line.startswith("["):
                end = line.find("]")
                if end < 0:
                    raise ConfigError("unterminated section header")
                name = line[1:end]
                if len(name) == 0:
                    raise ConfigError("empty section name")
                if name not in self.sections:
                    self.sections[name] = {}
                current = name
            else:
                eq = line.find("=")
                if eq < 0:
                    eq = line.find(":")
                if eq < 0:
                    raise ConfigError("line is not a key-value pair")
                if current == None:
                    raise ConfigError("option outside any section")
                key = line[:eq].strip()
                value = line[eq + 1:].strip()
                if len(key) == 0:
                    raise ConfigError("empty option name")
                self.sections[current][key] = value

    def get(self, section, option):
        if section not in self.sections:
            raise ConfigError("no such section")
        sec = self.sections[section]
        if option not in sec:
            raise ConfigError("no such option")
        return sec[option]

    def section_names(self):
        return self.sections.keys()


def rstrip_nul(s):
    end = len(s)
    while end > 0 and s[end - 1] == "\x00":
        end -= 1
    return s[:end]

def drive(text):
    p = ConfigParser()
    p.read_string(rstrip_nul(text))
    total = 0
    for name in p.section_names():
        total += len(p.sections[name].keys())
    return total
`

// HTMLParserSrc is the MiniPy analogue of HTMLParser.
// Documented exception: ParseError.
const HTMLParserSrc = `
class HTMLParser:
    def __init__(self):
        self.tags = []
        self.texts = []
        self.stack = []

    def feed(self, data):
        i = 0
        n = len(data)
        while i < n:
            lt = data.find("<", i)
            if lt < 0:
                if i < n:
                    self.texts.append(data[i:])
                return
            if lt > i:
                self.texts.append(data[i:lt])
            gt = data.find(">", lt)
            if gt < 0:
                raise ParseError("EOF in middle of tag")
            inner = data[lt + 1:gt]
            if len(inner) == 0:
                raise ParseError("malformed empty tag")
            if inner.startswith("/"):
                name = inner[1:].strip()
                if len(self.stack) == 0:
                    raise ParseError("unbalanced end tag")
                opened = self.stack.pop()
                if opened != name:
                    raise ParseError("mismatched end tag")
                self.tags.append("/" + name)
            elif inner.startswith("!"):
                self.tags.append("!")
            else:
                sp = inner.find(" ")
                if sp >= 0:
                    name = inner[:sp]
                else:
                    name = inner
                if len(name) == 0:
                    raise ParseError("tag with empty name")
                if not name.isalpha():
                    raise ParseError("invalid tag name")
                self.tags.append(name)
                self.stack.append(name)
            i = gt + 1

    def close(self):
        if len(self.stack) > 0:
            raise ParseError("unclosed tags at EOF")


def rstrip_nul(s):
    end = len(s)
    while end > 0 and s[end - 1] == "\x00":
        end -= 1
    return s[:end]

def drive(data):
    p = HTMLParser()
    p.feed(rstrip_nul(data))
    p.close()
    return len(p.tags)
`

// SimpleJSONSrc is the MiniPy analogue of simplejson's decoder.
// Documented exception: ValueError (JSONDecodeError's base).
const SimpleJSONSrc = `
class Decoder:
    def __init__(self, text):
        self.text = text
        self.pos = 0

    def error(self, why):
        raise ValueError(why)

    def peek(self):
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def skip_ws(self):
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def decode_value(self):
        self.skip_ws()
        c = self.peek()
        if c == "":
            self.error("expecting value")
        if c == "{":
            return self.decode_object()
        if c == "[":
            return self.decode_array()
        if c == "\x22":
            return self.decode_string()
        if c == "t":
            self.expect_word("true")
            return True
        if c == "f":
            self.expect_word("false")
            return False
        if c == "n":
            self.expect_word("null")
            return None
        if c == "-" or c.isdigit():
            return self.decode_number()
        self.error("unexpected character")

    def expect_word(self, word):
        if self.pos + len(word) > len(self.text):
            self.error("truncated literal")
        got = self.text[self.pos:self.pos + len(word)]
        if got != word:
            self.error("invalid literal")
        self.pos += len(word)

    def decode_string(self):
        self.pos += 1
        out = ""
        while True:
            if self.pos >= len(self.text):
                self.error("unterminated string")
            c = self.text[self.pos]
            if c == "\x22":
                self.pos += 1
                return out
            if c == "\x5c":
                self.pos += 1
                if self.pos >= len(self.text):
                    self.error("truncated escape")
                e = self.text[self.pos]
                if e == "n":
                    out += "\n"
                elif e == "t":
                    out += "\t"
                else:
                    out += e
            else:
                out += c
            self.pos += 1

    def decode_number(self):
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        ndigits = 0
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
            ndigits += 1
        if ndigits == 0:
            self.error("bad number")
        return int(self.text[start:self.pos])

    def decode_object(self):
        obj = {}
        self.pos += 1
        self.skip_ws()
        if self.peek() == "}":
            self.pos += 1
            return obj
        while True:
            self.skip_ws()
            if self.peek() != "\x22":
                self.error("expecting property name")
            key = self.decode_string()
            self.skip_ws()
            if self.peek() != ":":
                self.error("expecting colon")
            self.pos += 1
            obj[key] = self.decode_value()
            self.skip_ws()
            c = self.peek()
            if c == ",":
                self.pos += 1
            elif c == "}":
                self.pos += 1
                return obj
            else:
                self.error("expecting comma or brace")

    def decode_array(self):
        arr = []
        self.pos += 1
        self.skip_ws()
        if self.peek() == "]":
            self.pos += 1
            return arr
        while True:
            arr.append(self.decode_value())
            self.skip_ws()
            c = self.peek()
            if c == ",":
                self.pos += 1
            elif c == "]":
                self.pos += 1
                return arr
            else:
                self.error("expecting comma or bracket")

def loads(text):
    d = Decoder(text)
    value = d.decode_value()
    d.skip_ws()
    if d.pos < len(d.text):
        d.error("extra data")
    return value


def rstrip_nul(s):
    end = len(s)
    while end > 0 and s[end - 1] == "\x00":
        end -= 1
    return s[:end]

def drive(text):
    v = loads(rstrip_nul(text))
    return 1
`

// UnicodeCSVSrc is the MiniPy analogue of unicodecsv's reader.
// Documented exception: CSVError.
const UnicodeCSVSrc = `
def parse_line(line):
    fields = []
    cur = ""
    i = 0
    n = len(line)
    in_quotes = False
    while i < n:
        c = line[i]
        if in_quotes:
            if c == "\x22":
                if i + 1 < n and line[i + 1] == "\x22":
                    cur += "\x22"
                    i += 1
                else:
                    in_quotes = False
            else:
                cur += c
        else:
            if c == "\x22":
                if len(cur) > 0:
                    raise CSVError("quote in unquoted field")
                in_quotes = True
            elif c == ",":
                fields.append(cur)
                cur = ""
            else:
                cur += c
        i += 1
    if in_quotes:
        raise CSVError("unterminated quoted field")
    fields.append(cur)
    return fields


def rstrip_nul(s):
    end = len(s)
    while end > 0 and s[end - 1] == "\x00":
        end -= 1
    return s[:end]

def drive(line):
    fields = parse_line(rstrip_nul(line))
    return len(fields)
`

// XlrdSrc is the MiniPy analogue of xlrd, a reader for a binary spreadsheet
// container. Documented exception: XLRDError. Its inner components raise
// BadZipfile, IndexError, error and AssertionError — the four undocumented
// exception types the paper reports escaping the xlrd API (§6.2).
const XlrdSrc = `
REC_BOF = 9
REC_SST = 12
REC_ROW = 8
REC_EOF = 10

class Workbook:
    def __init__(self):
        self.nrows = 0
        self.strings = []
        self.cells = {}

def check_container(data):
    # The container layer insists on a zip-like magic and raises its own
    # exception type, which xlrd does not document.
    if len(data) < 2:
        raise BadZipfile("truncated container")
    if data[0] != "P":
        raise XLRDError("unsupported format")
    if data[1] != "K":
        raise BadZipfile("bad container magic")

def read_u8(data, pos):
    # Record readers index raw bytes; short records escape as IndexError.
    return ord(data[pos])

def read_record(data, pos):
    rectype = read_u8(data, pos)
    reclen = read_u8(data, pos + 1)
    body = data[pos + 2:pos + 2 + reclen]
    if len(body) != reclen:
        raise error("record payload truncated")
    return [rectype, body, pos + 2 + reclen]

def handle_sst(book, body):
    count = len(body)
    i = 0
    while i < count:
        slen = ord(body[i])
        if slen > count - i - 1:
            raise error("string overflows SST record")
        book.strings.append(body[i + 1:i + 1 + slen])
        i += 1 + slen

def handle_row(book, body):
    if len(body) < 2:
        raise IndexError("row record too short")
    rownum = ord(body[0])
    ncells = ord(body[1])
    if ncells > len(body) - 2:
        raise error("cell count overflows record")
    if rownum < book.nrows:
        raise AssertionError("rows out of order")
    book.nrows = rownum + 1
    j = 0
    while j < ncells:
        book.cells[rownum * 256 + j] = ord(body[2 + j])
        j += 1

def open_workbook(data):
    check_container(data)
    book = Workbook()
    pos = 2
    seen_bof = False
    while pos < len(data):
        rec = read_record(data, pos)
        rectype = rec[0]
        body = rec[1]
        pos = rec[2]
        if rectype == REC_BOF:
            seen_bof = True
        elif rectype == REC_SST:
            if not seen_bof:
                raise XLRDError("SST before BOF")
            handle_sst(book, body)
        elif rectype == REC_ROW:
            if not seen_bof:
                raise XLRDError("ROW before BOF")
            handle_row(book, body)
        elif rectype == REC_EOF:
            return book
        elif rectype == 0:
            # zero padding after the last record ends the stream
            return book
        else:
            raise XLRDError("unknown record type")
    raise XLRDError("missing EOF record")

def drive(data):
    book = open_workbook(data)
    return book.nrows + len(book.strings)
`

// MacLearningSrc is the MAC-learning OpenFlow controller of §6.6: the
// forwarding table is a dict keyed by MAC address, fed symbolic Ethernet
// frames. drive<N> entry points accept N (src, dst) frame pairs.
const MacLearningSrc = `
class Switch:
    def __init__(self):
        self.table = {}

    def process(self, src, dst, in_port):
        self.table[src] = in_port
        if dst in self.table:
            return self.table[dst]
        return -1

def drive(frames):
    sw = Switch()
    outs = []
    i = 0
    while i < len(frames):
        outs.append(sw.process(frames[i], frames[i + 1], i))
        i += 2
    return outs
`
