package packages

import (
	"testing"

	"chef/internal/lowlevel"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/symexpr"
	"chef/internal/symtest"
)

func TestAllPackagesCompile(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			switch p.Lang {
			case Python:
				if _, err := minipy.Compile(p.Source); err != nil {
					t.Fatalf("compile: %v", err)
				}
			case Lua:
				if _, err := minilua.Compile(p.Source); err != nil {
					t.Fatalf("compile: %v", err)
				}
			}
			if p.LOC() < 20 {
				t.Errorf("package suspiciously small: %d LOC", p.LOC())
			}
			if p.CoverableLOC() == 0 {
				t.Error("no coverable lines")
			}
		})
	}
}

// replayWith runs a package's entry concretely with the given string inputs.
func replayWith(t *testing.T, p *Package, vals ...string) string {
	t.Helper()
	in := symexpr.Assignment{}
	for i, decl := range p.Inputs {
		if i >= len(vals) {
			break
		}
		for j := 0; j < decl.Len; j++ {
			var b byte
			if j < len(vals[i]) {
				b = vals[i][j]
			}
			in[symexpr.Var{Buf: decl.Name, Idx: j, W: symexpr.W8}] = uint64(b)
		}
	}
	switch p.Lang {
	case Python:
		return p.PyTest(minipy.Optimized).Replay(in, 1<<21).Result
	default:
		return p.LuaTest(minilua.Optimized).Replay(in, 1<<21).Result
	}
}

func mustPkg(t *testing.T, name string) *Package {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("package %s not registered", name)
	}
	return p
}

func TestArgparseBehaviors(t *testing.T) {
	p := mustPkg(t, "argparse")
	if got := replayWith(t, p, "--x", "in\x00", "--x", "5\x00\x00"); got != "ok" {
		// "--x 5" consumes the option with its value; positional missing is
		// tolerated (filled empty).
		t.Errorf("option parse: %s", got)
	}
	if got := replayWith(t, p, "--x", "in\x00", "--z", "v\x00\x00"); got != "exception:ArgumentError" {
		t.Errorf("unknown option: %s", got)
	}
	if got := replayWith(t, p, "\x00\x00\x00", "in\x00", "a\x00\x00", "b\x00\x00"); got != "exception:ArgumentError" {
		t.Errorf("empty arg name: %s", got)
	}
}

func TestConfigParserBehaviors(t *testing.T) {
	p := mustPkg(t, "ConfigParser")
	if got := replayWith(t, p, "[a]\nk=v\n"); got != "ok" {
		t.Errorf("valid config: %s", got)
	}
	if got := replayWith(t, p, "[a\nk=v\n\x00\x00"); got != "exception:ConfigError" {
		t.Errorf("unterminated section: %s", got)
	}
	if got := replayWith(t, p, "k=v\n\x00\x00\x00"); got != "exception:ConfigError" {
		t.Errorf("option before section: %s", got)
	}
}

func TestHTMLParserBehaviors(t *testing.T) {
	p := mustPkg(t, "HTMLParser")
	if got := replayWith(t, p, "<a></a>\x00"); got != "ok" {
		t.Errorf("valid html: %s", got)
	}
	if got := replayWith(t, p, "<a>\x00\x00\x00\x00\x00"); got != "exception:ParseError" {
		t.Errorf("unclosed tag: %s", got)
	}
	if got := replayWith(t, p, "<a></b>\x00"); got != "exception:ParseError" {
		t.Errorf("mismatched tag: %s", got)
	}
}

func TestSimpleJSONBehaviors(t *testing.T) {
	p := mustPkg(t, "simplejson")
	for _, ok := range []string{"{}\x00\x00\x00\x00", "[1,2]\x00", "true\x00\x00", "-12\x00\x00\x00", "\x22ab\x22\x00\x00"} {
		if got := replayWith(t, p, ok); got != "ok" {
			t.Errorf("%q: %s", ok, got)
		}
	}
	for _, bad := range []string{"{\x00\x00\x00\x00\x00", "[1,\x00\x00\x00", "tru\x00\x00\x00", "\x00\x00\x00\x00\x00\x00"} {
		if got := replayWith(t, p, bad); got != "exception:ValueError" {
			t.Errorf("%q: %s, want ValueError", bad, got)
		}
	}
}

func TestUnicodeCSVBehaviors(t *testing.T) {
	p := mustPkg(t, "unicodecsv")
	if got := replayWith(t, p, "a,b,c\x00"); got != "ok" {
		t.Errorf("simple csv: %s", got)
	}
	if got := replayWith(t, p, "\x22a,b\x22\x00"); got != "ok" {
		t.Errorf("quoted csv: %s", got)
	}
	if got := replayWith(t, p, "\x22abcd\x00"); got != "exception:CSVError" {
		t.Errorf("unterminated quote: %s", got)
	}
}

func TestXlrdBehaviors(t *testing.T) {
	p := mustPkg(t, "xlrd")
	// Valid: PK container, BOF record (len 0), EOF record (len 0).
	if got := replayWith(t, p, "PK\x09\x00\x0a\x00\x00\x00"); got != "ok" {
		t.Errorf("minimal workbook: %s", got)
	}
	// Bad container magic: undocumented BadZipfile escapes.
	if got := replayWith(t, p, "PX\x09\x00\x0a\x00\x00\x00"); got != "exception:BadZipfile" {
		t.Errorf("bad magic: %s", got)
	}
	// Garbage after EOF is ignored (EOF returns early).
	if got := replayWith(t, p, "PK\x09\x00\x0a\x00\x00\x09"); got != "ok" {
		t.Errorf("trailing garbage after EOF: %s", got)
	}
	// A row record shorter than its header demands: IndexError escapes.
	if got := replayWith(t, p, "PK\x09\x00\x08\x01\x05\x00"); got != "exception:IndexError" {
		t.Errorf("short row record: %s", got)
	}
	// Record payload overflow: undocumented 'error' escapes.
	if got := replayWith(t, p, "PK\x09\x00\x0c\x09\x00\x00"); got != "exception:error" {
		t.Errorf("overflowing record: %s", got)
	}
}

func TestCliargsBehaviors(t *testing.T) {
	p := mustPkg(t, "cliargs")
	if got := replayWith(t, p, "--o\x00", "file", "\x00\x00\x00\x00"); got != "ok" {
		t.Errorf("positional: %s", got)
	}
	if got := replayWith(t, p, "-o\x00\x00", "a\x00\x00\x00", "b\x00\x00\x00"); got[:5] != "error" {
		t.Errorf("bad option decl: %s", got)
	}
}

func TestHamlBehaviors(t *testing.T) {
	p := mustPkg(t, "haml")
	if got := replayWith(t, p, "%p hi\x00"); got != "ok" {
		t.Errorf("inline tag: %s", got)
	}
	if got := replayWith(t, p, "%p\x00\x00\x00\x00"); got[:5] != "error" {
		t.Errorf("unclosed block tag: %s", got)
	}
}

func TestSbJSONCommentHang(t *testing.T) {
	// The paper's bug: a leading unterminated comment hangs the parser.
	p := mustPkg(t, "JSON")
	lt := p.LuaTest(minilua.Optimized)
	in := symexpr.Assignment{}
	for j, b := range []byte("/*x\x00\x00") {
		in[symexpr.Var{Buf: "s", Idx: j, W: symexpr.W8}] = uint64(b)
	}
	rep := lt.Replay(in, 200000)
	if rep.Status != lowlevel.RunHang {
		t.Fatalf("/*x should hang, got status %v result %q", rep.Status, rep.Result)
	}
	// A well-formed comment before a value terminates.
	in2 := symexpr.Assignment{}
	for j, b := range []byte("//\n1\x00") {
		in2[symexpr.Var{Buf: "s", Idx: j, W: symexpr.W8}] = uint64(b)
	}
	rep2 := lt.Replay(in2, 200000)
	if rep2.Status == lowlevel.RunHang {
		t.Fatal("terminated comment must not hang")
	}
	if rep2.Result != "ok" {
		t.Fatalf("//\\n1 should parse, got %q", rep2.Result)
	}
	// Plain values parse.
	in3 := symexpr.Assignment{}
	for j, b := range []byte("[1,2]") {
		in3[symexpr.Var{Buf: "s", Idx: j, W: symexpr.W8}] = uint64(b)
	}
	if rep3 := lt.Replay(in3, 200000); rep3.Result != "ok" {
		t.Fatalf("[1,2]: %q", rep3.Result)
	}
}

func TestMarkdownBehaviors(t *testing.T) {
	p := mustPkg(t, "markdown")
	if got := replayWith(t, p, "# h\x00\x00\x00"); got != "ok" {
		t.Errorf("heading: %s", got)
	}
	if got := replayWith(t, p, "- x\x00\x00\x00"); got != "ok" {
		t.Errorf("list: %s", got)
	}
	if got := replayWith(t, p, "a *b\x00\x00"); got[:5] != "error" {
		t.Errorf("unterminated emphasis: %s", got)
	}
}

func TestMoonscriptBehaviors(t *testing.T) {
	p := mustPkg(t, "moonscript")
	if got := replayWith(t, p, "x = 1\x00\x00\x00"); got != "ok" {
		t.Errorf("assignment: %s", got)
	}
	if got := replayWith(t, p, " x = 1\x00\x00"); got[:5] != "error" {
		t.Errorf("odd indent: %s", got)
	}
}

func TestMacLearningWorkload(t *testing.T) {
	pt := MacLearningTest(2, 2, minipy.Optimized)
	in := symexpr.Assignment{}
	set := func(name, val string) {
		for j := 0; j < 2; j++ {
			var b byte
			if j < len(val) {
				b = val[j]
			}
			in[symexpr.Var{Buf: name, Idx: j, W: symexpr.W8}] = uint64(b)
		}
	}
	set("s0", "aa")
	set("d0", "bb")
	set("s1", "bb")
	set("d1", "aa") // learned from frame 0's src
	rep := pt.Replay(in, 1<<21)
	if rep.Result != "ok" {
		t.Fatalf("mac learning replay: %s", rep.Result)
	}
}

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registered %d packages, want 11", len(all))
	}
	if len(PythonPackages()) != 6 || len(LuaPackages()) != 5 {
		t.Fatalf("language split wrong: %d py, %d lua", len(PythonPackages()), len(LuaPackages()))
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should miss unknown packages")
	}
	p := mustPkg(t, "xlrd")
	if !p.IsDocumented("XLRDError") || !p.IsDocumented("ValueError") {
		t.Error("documented classification wrong")
	}
	if p.IsDocumented("BadZipfile") || p.IsDocumented("AssertionError") {
		t.Error("undocumented classification wrong")
	}
}

var _ = symtest.Str

func TestXlrdAssertionErrorReachable(t *testing.T) {
	// The fifth exception type of Table 3 (AssertionError, rows out of
	// order) needs two full ROW records: PK + ROW(rownum=1) + ROW(rownum=0)
	// after a BOF. It fits exactly in the 12-byte symbolic buffer, so the
	// engine can reach it at larger budgets; this test pins feasibility.
	p := mustPkg(t, "xlrd")
	input := "PK\x09\x00\x08\x02\x01\x00\x08\x02\x00\x00"
	if got := replayWith(t, p, input); got != "exception:AssertionError" {
		t.Fatalf("rows-out-of-order input: %s, want AssertionError", got)
	}
}

func TestArgparseTypeErrorReachable(t *testing.T) {
	// "--n 5" parses the option value with int(); the drive summary then
	// calls len() on the int — a TypeError escaping the API (one of the
	// paper's four argparse exception types).
	p := mustPkg(t, "argparse")
	if got := replayWith(t, p, "--n", "in\x00", "--n", "5\x00\x00"); got != "exception:TypeError" {
		t.Fatalf("int option summary: %s, want TypeError", got)
	}
	// And the ValueError from a malformed int option value.
	if got := replayWith(t, p, "--n", "in\x00", "--n", "x\x00\x00"); got != "exception:ValueError" {
		t.Fatalf("bad int option: %s, want ValueError", got)
	}
}
