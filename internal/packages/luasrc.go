package packages

// CliargsSrc is the MiniLua analogue of lua_cliargs.
const CliargsSrc = `
function split_eq(s)
    local pos = s:find("=")
    if pos == nil then
        return nil
    end
    local t = {}
    t[1] = s:sub(1, pos - 1)
    t[2] = s:sub(pos + 1)
    return t
end

function make_cli()
    local cli = {}
    cli.optnames = {}
    cli.positionals = {}
    return cli
end

function add_opt(cli, name)
    if #name < 3 then
        error("option name too short")
    end
    if name:sub(1, 2) ~= "--" then
        error("option must start with --")
    end
    table.insert(cli.optnames, name:sub(3))
    return true
end

function add_arg(cli, name)
    if #name == 0 then
        error("positional name empty")
    end
    table.insert(cli.positionals, name)
    return true
end

function known_opt(cli, key)
    for i, o in ipairs(cli.optnames) do
        if o == key then
            return true
        end
    end
    return false
end

function parse(cli, argv)
    local result = {}
    local pos_i = 1
    for i, arg in ipairs(argv) do
        if arg:sub(1, 2) == "--" then
            local body = arg:sub(3)
            local kv = split_eq(body)
            if kv == nil then
                error("option requires =value")
            end
            if not known_opt(cli, kv[1]) then
                error("unknown option: " .. kv[1])
            end
            result[kv[1]] = kv[2]
        else
            if pos_i > #cli.positionals then
                error("too many arguments")
            end
            result[cli.positionals[pos_i]] = arg
            pos_i = pos_i + 1
        end
    end
    if pos_i <= #cli.positionals then
        error("missing argument: " .. cli.positionals[pos_i])
    end
    return result
end


function rstrip_nul(s)
    local e = #s
    while e > 0 and s:sub(e, e) == "\x00" do
        e = e - 1
    end
    return s:sub(1, e)
end

function drive(optname, a1, a2)
    local cli = make_cli()
    add_opt(cli, rstrip_nul(optname))
    add_arg(cli, "input")
    local argv = {}
    local s1 = rstrip_nul(a1)
    local s2 = rstrip_nul(a2)
    if #s1 > 0 then
        table.insert(argv, s1)
    end
    if #s2 > 0 then
        table.insert(argv, s2)
    end
    local parsed = parse(cli, argv)
    return parsed["input"]
end
`

// HamlSrc is the MiniLua analogue of lua-haml: a line-based markup to HTML
// converter.
const HamlSrc = `
function starts(s, prefix)
    return s:sub(1, #prefix) == prefix
end

function trim(s)
    local i = 1
    while i <= #s and s:sub(i, i) == " " do
        i = i + 1
    end
    local j = #s
    while j >= i and s:sub(j, j) == " " do
        j = j - 1
    end
    return s:sub(i, j)
end

function split_lines(s)
    local out = {}
    local start = 1
    while true do
        local pos = s:find("\n", start)
        if pos == nil then
            table.insert(out, s:sub(start))
            return out
        end
        table.insert(out, s:sub(start, pos - 1))
        start = pos + 1
    end
end

function tag_name(line)
    local i = 2
    while i <= #line do
        local c = line:sub(i, i)
        if c == " " or c == "." or c == "#" then
            break
        end
        i = i + 1
    end
    local r = {}
    r[1] = line:sub(2, i - 1)
    r[2] = i
    return r
end

function render(source)
    local html = {}
    local stack = {}
    local lines = split_lines(source)
    for n, raw in ipairs(lines) do
        local line = trim(raw)
        if #line == 0 then
            -- blank line
        elseif starts(line, "%") then
            local tn = tag_name(line)
            local name = tn[1]
            local rest_at = tn[2]
            if #name == 0 then
                error("haml: empty tag name at line " .. n)
            end
            local rest = trim(line:sub(rest_at))
            if starts(rest, ".") then
                error("haml: classes not supported")
            end
            if #rest > 0 then
                table.insert(html, "<" .. name .. ">" .. rest .. "</" .. name .. ">")
            else
                table.insert(html, "<" .. name .. ">")
                table.insert(stack, name)
            end
        elseif starts(line, "/") then
            if #stack == 0 then
                error("haml: close without open")
            end
            local top = table.remove(stack)
            table.insert(html, "</" .. top .. ">")
        elseif starts(line, "=") then
            error("haml: script lines not supported")
        else
            table.insert(html, line)
        end
    end
    if #stack > 0 then
        error("haml: unclosed tag " .. stack[#stack])
    end
    return table.concat(html, "")
end


function rstrip_nul(s)
    local e = #s
    while e > 0 and s:sub(e, e) == "\x00" do
        e = e - 1
    end
    return s:sub(1, e)
end

function drive(source)
    return render(rstrip_nul(source))
end
`

// SbJSONSrc is the MiniLua analogue of sb-JSON — including the real bug the
// paper found (§6.2): the comment scanner accepts /* and // comments (not
// part of the JSON standard), and when a comment is unterminated the scanner
// reaches the end of the string and keeps spinning, waiting for a token that
// never comes. A malformed comment is therefore a denial-of-service input.
const SbJSONSrc = `
function is_ws(c)
    return c == " " or c == "\t" or c == "\n" or c == "\r"
end

function is_digit(c)
    return c >= "0" and c <= "9"
end

-- scan_past_whitespace advances past spaces and comments. The comment
-- handling is the buggy part: an unterminated /* or // comment leaves pos
-- beyond the end, and the outer decode loop keeps calling back expecting
-- progress — an infinite loop, exactly as in sb-JSON 2007.
function skip_ws(s, pos)
    while true do
        while pos <= #s and is_ws(s:sub(pos, pos)) do
            pos = pos + 1
        end
        if pos < #s and s:sub(pos, pos) == "/" then
            local c2 = s:sub(pos + 1, pos + 1)
            if c2 == "/" then
                local nl = s:find("\n", pos)
                if nl == nil then
                    -- BUG (sb-JSON 2007): the scanner never advances past an
                    -- unterminated comment; it keeps re-scanning from the
                    -- same position, waiting for a line terminator that
                    -- never arrives.
                else
                    pos = nl + 1
                end
            elseif c2 == "*" then
                local fin = s:find("*/", pos + 2)
                if fin == nil then
                    -- BUG: same spin for an unterminated block comment
                else
                    pos = fin + 2
                end
            else
                return pos
            end
        else
            return pos
        end
    end
end

function decode_string(s, pos)
    pos = pos + 1
    local out = ""
    while true do
        if pos > #s then
            error("json: unterminated string")
        end
        local c = s:sub(pos, pos)
        if c == "\x22" then
            local r = {}
            r[1] = out
            r[2] = pos + 1
            return r
        end
        out = out .. c
        pos = pos + 1
    end
end

function decode_number(s, pos)
    local start = pos
    if s:sub(pos, pos) == "-" then
        pos = pos + 1
    end
    local nd = 0
    while pos <= #s and is_digit(s:sub(pos, pos)) do
        pos = pos + 1
        nd = nd + 1
    end
    if nd == 0 then
        error("json: bad number")
    end
    local r = {}
    r[1] = tonumber(s:sub(start, pos - 1))
    r[2] = pos
    return r
end

function decode_array(s, pos)
    local arr = {}
    pos = skip_ws(s, pos + 1)
    if pos <= #s and s:sub(pos, pos) == "]" then
        local r = {}
        r[1] = arr
        r[2] = pos + 1
        return r
    end
    while true do
        local rv = decode_value(s, pos)
        table.insert(arr, rv[1])
        pos = skip_ws(s, rv[2])
        if pos > #s then
            error("json: unterminated array")
        end
        local c = s:sub(pos, pos)
        if c == "]" then
            local r = {}
            r[1] = arr
            r[2] = pos + 1
            return r
        end
        if c ~= "," then
            error("json: expected comma in array")
        end
        pos = skip_ws(s, pos + 1)
    end
end

function decode_value(s, pos)
    pos = skip_ws(s, pos)
    if pos > #s then
        error("json: expecting value")
    end
    local c = s:sub(pos, pos)
    if c == "[" then
        return decode_array(s, pos)
    end
    if c == "\x22" then
        return decode_string(s, pos)
    end
    if c == "-" or is_digit(c) then
        return decode_number(s, pos)
    end
    if c == "t" then
        if s:sub(pos, pos + 3) == "true" then
            local r = {}
            r[1] = true
            r[2] = pos + 4
            return r
        end
        error("json: bad literal")
    end
    if c == "n" then
        if s:sub(pos, pos + 3) == "null" then
            local r = {}
            r[1] = nil
            r[2] = pos + 4
            return r
        end
        error("json: bad literal")
    end
    error("json: unexpected character " .. c)
end

function decode(s)
    if #s == 0 then
        error("json: empty input")
    end
    local r = decode_value(s, 1)
    return r[1]
end


function rstrip_nul(s)
    local e = #s
    while e > 0 and s:sub(e, e) == "\x00" do
        e = e - 1
    end
    return s:sub(1, e)
end

function drive(s)
    decode(rstrip_nul(s))
    return true
end
`

// MarkdownSrc is the MiniLua analogue of the markdown text-to-HTML
// converter.
const MarkdownSrc = `
function starts(s, prefix)
    return s:sub(1, #prefix) == prefix
end

function split_lines(s)
    local out = {}
    local start = 1
    while true do
        local pos = s:find("\n", start)
        if pos == nil then
            table.insert(out, s:sub(start))
            return out
        end
        table.insert(out, s:sub(start, pos - 1))
        start = pos + 1
    end
end

function heading_level(line)
    local n = 0
    while n < #line and line:sub(n + 1, n + 1) == "#" do
        n = n + 1
    end
    return n
end

function render_spans(text)
    -- *emphasis* spans; a lone * is a syntax error in this dialect.
    local out = ""
    local pos = 1
    while true do
        local star = text:find("*", pos)
        if star == nil then
            return out .. text:sub(pos)
        end
        local fin = text:find("*", star + 1)
        if fin == nil then
            error("markdown: unterminated emphasis")
        end
        out = out .. text:sub(pos, star - 1) .. "<em>" .. text:sub(star + 1, fin - 1) .. "</em>"
        pos = fin + 1
    end
end

function render(source)
    local html = {}
    local in_list = false
    for i, line in ipairs(split_lines(source)) do
        local h = heading_level(line)
        if in_list and not starts(line, "-") then
            table.insert(html, "</ul>")
            in_list = false
        end
        if #line == 0 then
            -- blank
        elseif h > 0 then
            if h > 6 then
                error("markdown: heading too deep")
            end
            local text = line:sub(h + 1)
            if starts(text, " ") then
                text = text:sub(2)
            end
            local tag = "h" .. h
            table.insert(html, "<" .. tag .. ">" .. render_spans(text) .. "</" .. tag .. ">")
        elseif starts(line, "- ") then
            if not in_list then
                table.insert(html, "<ul>")
                in_list = true
            end
            table.insert(html, "<li>" .. render_spans(line:sub(3)) .. "</li>")
        else
            table.insert(html, "<p>" .. render_spans(line) .. "</p>")
        end
    end
    if in_list then
        table.insert(html, "</ul>")
    end
    return table.concat(html, "")
end


function rstrip_nul(s)
    local e = #s
    while e > 0 and s:sub(e, e) == "\x00" do
        e = e - 1
    end
    return s:sub(1, e)
end

function drive(source)
    return render(rstrip_nul(source))
end
`

// MoonscriptSrc is the MiniLua analogue of moonscript: a small
// indentation-based language compiled to Lua source.
const MoonscriptSrc = `
function split_lines(s)
    local out = {}
    local start = 1
    while true do
        local pos = s:find("\n", start)
        if pos == nil then
            table.insert(out, s:sub(start))
            return out
        end
        table.insert(out, s:sub(start, pos - 1))
        start = pos + 1
    end
end

function indent_of(line)
    local n = 0
    while n < #line and line:sub(n + 1, n + 1) == " " do
        n = n + 1
    end
    return n
end

function trim(s)
    local i = indent_of(s)
    return s:sub(i + 1)
end

function is_ident(s)
    if #s == 0 then
        return false
    end
    for i = 1, #s do
        local c = s:sub(i, i)
        local ok = (c >= "a" and c <= "z") or (c >= "A" and c <= "Z") or c == "_" or (c >= "0" and c <= "9")
        if not ok then
            return false
        end
    end
    return true
end

-- compile_line translates one moonscript-ish statement to Lua.
function compile_line(stmt, out, depth)
    local arrow = stmt:find("->")
    local eq = stmt:find("=")
    if stmt == "" then
        return depth
    end
    if arrow ~= nil and eq ~= nil and eq < arrow then
        -- f = (args) -> body  becomes  function f(args) ... end
        local name = stmt:sub(1, eq - 1)
        while name:sub(#name, #name) == " " do
            name = name:sub(1, #name - 1)
        end
        if not is_ident(name) then
            error("moonscript: bad function name")
        end
        local open = stmt:find("(")
        local close = stmt:find(")")
        local args = ""
        if open ~= nil then
            if close == nil or close < open then
                error("moonscript: malformed parameter list")
            end
            args = stmt:sub(open + 1, close - 1)
        end
        table.insert(out, "function " .. name .. "(" .. args .. ")")
        return depth + 1
    end
    if stmt:sub(1, 3) == "if " then
        table.insert(out, "if " .. stmt:sub(4) .. " then")
        return depth + 1
    end
    if stmt:sub(1, 7) == "return " then
        table.insert(out, "return " .. stmt:sub(8))
        return depth
    end
    if eq ~= nil then
        local name = stmt:sub(1, eq - 1)
        while #name > 0 and name:sub(#name, #name) == " " do
            name = name:sub(1, #name - 1)
        end
        if not is_ident(name) then
            error("moonscript: bad assignment target")
        end
        table.insert(out, "local " .. name .. " " .. stmt:sub(eq))
        return depth
    end
    table.insert(out, stmt)
    return depth
end

function compile(source)
    local out = {}
    local depth = 0
    local prev_indent = 0
    for i, raw in ipairs(split_lines(source)) do
        local ind = indent_of(raw)
        local stmt = trim(raw)
        if #stmt > 0 then
            if ind % 2 ~= 0 then
                error("moonscript: odd indentation")
            end
            local level = ind / 2
            if level > depth then
                error("moonscript: unexpected indent")
            end
            while depth > level do
                table.insert(out, "end")
                depth = depth - 1
            end
            depth = compile_line(stmt, out, depth)
            prev_indent = ind
        end
    end
    while depth > 0 do
        table.insert(out, "end")
        depth = depth - 1
    end
    return table.concat(out, "\n")
end


function rstrip_nul(s)
    local e = #s
    while e > 0 and s:sub(e, e) == "\x00" do
        e = e - 1
    end
    return s:sub(1, e)
end

function drive(source)
    return compile(rstrip_nul(source))
end
`
