package packages

import "chef/internal/symtest"

// FlagMazeSrc is the boolean-dominated deep-path benchmark target behind the
// -solvermode=bdd speedup gate. It is deliberately not part of the Table 3
// evaluation set: its shape is synthetic — every branch condition is either a
// single-byte equality against one constant or a propositional combination
// of such flags, with no symbolic arithmetic anywhere — so every path
// condition the DFS exploration emits is a liftable boolean skeleton the BDD
// backend decides without ever reaching the CDCL core. Each input byte is
// compared against exactly one constant, which keeps every query's atoms
// variable-disjoint (the backend's liftability condition). The re-test
// cascade after the forking prefix adds no new paths, only branch queries
// whose infeasible arm dies in the diagram — the fail-fast workload the
// fast path exists for.
const FlagMazeSrc = `
def drive(s):
    n = 0
    if s[0] == "k":
        n = n + 1
    if s[1] == "e":
        n = n + 2
    if s[2] == "y":
        n = n + 4
    if s[3] == "s":
        n = n + 8
    if s[0:2] == "ke":
        n = n + 100
        if s[2:4] == "ys":
            n = n + 200
            if s[0:4] == "keys":
                n = n + 300
    if s[4] == "t":
        n = n + 16
    if s[5] == "o":
        n = n + 32
    if s[6] == "n":
        n = n + 64
    if s[7] == "e":
        n = n + 128
    if s[4:6] == "to":
        n = n + 400
        if s[6:8] == "ne":
            n = n + 500
            if s[4:8] == "tone":
                n = n + 600
                if s == "keystone":
                    n = n + 1000
    if s[1:3] == "ey":
        n = n + 2000
    if s[3:5] == "st":
        n = n + 3000
    if s[5:7] == "on":
        n = n + 4000
    if s[2:6] == "ysto":
        n = n + 5000
    return n
`

// Benchmarks returns the bench-only targets: packages chef-bench measures
// that are not part of the Table 3 evaluation set (so All(), the tables and
// the figures stay exactly the paper's eleven).
func Benchmarks() []*Package {
	return []*Package{
		{
			Name: "flagmaze", Lang: Python, Type: "Bench",
			Desc:   "Boolean flag maze (bdd fast-path workload)",
			Source: FlagMazeSrc, Entry: "drive",
			Inputs: []symtest.Input{symtest.Str("s", 8, "")},
		},
	}
}
