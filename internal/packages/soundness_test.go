package packages

import (
	"testing"

	"chef/internal/chef"
	"chef/internal/lowlevel"
	"chef/internal/minilua"
	"chef/internal/minipy"
)

// TestSoundnessPythonPackages asserts the paper's soundness property: every
// generated test case, replayed concretely on the vanilla interpreter,
// reproduces exactly the outcome recorded during symbolic exploration — no
// infeasible paths are ever reported.
func TestSoundnessPythonPackages(t *testing.T) {
	for _, name := range []string{"simplejson", "unicodecsv", "ConfigParser"} {
		p, _ := ByName(name)
		for _, cfg := range []minipy.Config{minipy.Optimized, minipy.Vanilla} {
			pt := p.PyTest(cfg)
			s := chef.NewSession(pt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 3, StepLimit: 60000})
			tests := s.Run(250_000)
			if len(tests) == 0 {
				t.Fatalf("%s: no tests generated", name)
			}
			for _, tc := range tests {
				if tc.Status == lowlevel.RunHang {
					continue // hang outcomes are confirmed by status, not result
				}
				rep := pt.Replay(tc.Input, 1<<21)
				if rep.Result != tc.Result {
					t.Errorf("%s cfg=%+v: recorded %q, replay %q (input %v)",
						name, cfg, tc.Result, rep.Result, tc.Input)
				}
			}
		}
	}
}

// TestSoundnessLuaPackages is the Lua counterpart.
func TestSoundnessLuaPackages(t *testing.T) {
	for _, name := range []string{"haml", "markdown", "cliargs"} {
		p, _ := ByName(name)
		lt := p.LuaTest(minilua.Optimized)
		s := chef.NewSession(lt.Program(), chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 4, StepLimit: 60000})
		tests := s.Run(250_000)
		if len(tests) == 0 {
			t.Fatalf("%s: no tests generated", name)
		}
		for _, tc := range tests {
			if tc.Status == lowlevel.RunHang {
				continue
			}
			rep := lt.Replay(tc.Input, 1<<21)
			if rep.Result != tc.Result {
				t.Errorf("%s: recorded %q, replay %q (input %v)", name, tc.Result, rep.Result, tc.Input)
			}
		}
	}
}
