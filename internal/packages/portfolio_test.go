package packages

import (
	"testing"

	"chef/internal/chef"
	"chef/internal/minipy"
)

// TestPortfolioMergesAcrossBuilds exercises the §6.5 extension: a portfolio
// over the four optimization levels merges high-level paths across builds,
// matching or beating each individual member at the same total budget share.
func TestPortfolioMergesAcrossBuilds(t *testing.T) {
	p, _ := ByName("xlrd")
	var members []chef.PortfolioMember
	names := minipy.OptLevelNames()
	for i, lvl := range minipy.OptLevels() {
		members = append(members, chef.PortfolioMember{
			Name: names[i],
			Prog: p.PyTest(lvl).Program(),
		})
	}
	opts := chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 5, StepLimit: 30000}
	res := chef.RunPortfolio(members, opts, 1_600_000)
	if len(res.PerBuild) != 4 || len(res.NewPerBuild) != 4 {
		t.Fatalf("per-build stats missing: %+v", res)
	}
	total := len(res.Tests)
	for i, n := range res.PerBuild {
		if total < n {
			t.Errorf("portfolio (%d paths) lost paths vs member %s (%d)", total, members[i].Name, n)
		}
	}
	// The merged set must be a real union: at least as large as the best
	// member, and the NewPerBuild counts must sum to the total.
	sum := 0
	for _, n := range res.NewPerBuild {
		sum += n
	}
	if sum != total {
		t.Errorf("NewPerBuild sums to %d, want %d", sum, total)
	}
}
