package packages

import (
	"fmt"
	"strings"

	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/symtest"
)

// Lang identifies the target language of a package.
type Lang uint8

// Target languages.
const (
	Python Lang = iota
	Lua
)

func (l Lang) String() string {
	if l == Python {
		return "Python"
	}
	return "Lua"
}

// Package describes one evaluation target of §6.1: its source, its symbolic
// test, and the metadata Table 3 reports.
type Package struct {
	Name   string
	Lang   Lang
	Type   string // System / Web / Office, as in Table 3
	Desc   string
	Source string
	Entry  string
	Inputs []symtest.Input
	// DocumentedExceptions lists the exception types the package's
	// documentation declares, plus the "common Python exceptions" the paper
	// treats as documented (KeyError, ValueError, TypeError).
	DocumentedExceptions []string
}

// DocumentedCommon are the common exceptions the paper always counts as
// documented.
var DocumentedCommon = []string{"KeyError", "ValueError", "TypeError"}

// IsDocumented reports whether an exception type is documented for this
// package.
func (p *Package) IsDocumented(exc string) bool {
	for _, d := range p.DocumentedExceptions {
		if d == exc {
			return true
		}
	}
	for _, d := range DocumentedCommon {
		if d == exc {
			return true
		}
	}
	return false
}

// LOC counts the non-blank, non-comment source lines of the package, as the
// cloc tool would.
func (p *Package) LOC() int {
	n := 0
	for _, line := range strings.Split(p.Source, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "--") {
			continue
		}
		n++
	}
	return n
}

// CoverableLOC counts lines carrying compiled instructions (the paper's
// "coverable LOC" column). Compilation goes through the interned
// process-wide cache, so concurrent table builders share one compile.
func (p *Package) CoverableLOC() int {
	switch p.Lang {
	case Python:
		prog, err := symtest.InternedPyProgram(p.Source)
		if err != nil {
			panic(err)
		}
		return len(prog.CoverableLines())
	default:
		prog, err := symtest.InternedLuaProgram(p.Source)
		if err != nil {
			panic(err)
		}
		return len(prog.CoverableLines())
	}
}

// PyTest builds the package's symbolic test at an optimization level.
func (p *Package) PyTest(cfg minipy.Config) *symtest.PyTest {
	if p.Lang != Python {
		panic("PyTest on non-Python package " + p.Name)
	}
	return &symtest.PyTest{Source: p.Source, Entry: p.Entry, Inputs: p.Inputs, Config: cfg}
}

// LuaTest builds the package's symbolic test at an optimization level.
func (p *Package) LuaTest(cfg minilua.Config) *symtest.LuaTest {
	if p.Lang != Lua {
		panic("LuaTest on non-Lua package " + p.Name)
	}
	return &symtest.LuaTest{Source: p.Source, Entry: p.Entry, Inputs: p.Inputs, Config: cfg}
}

// All returns the eleven evaluation packages in Table 3's order.
func All() []*Package {
	return []*Package{
		{
			Name: "argparse", Lang: Python, Type: "System",
			Desc:   "Command-line interface",
			Source: ArgparseSrc, Entry: "drive",
			Inputs: []symtest.Input{
				symtest.Str("arg1_name", 3, "--x"),
				symtest.Str("arg2_name", 3, "in"),
				symtest.Str("arg1", 3, ""),
				symtest.Str("arg2", 3, ""),
			},
			DocumentedExceptions: []string{"ArgumentError"},
		},
		{
			Name: "ConfigParser", Lang: Python, Type: "System",
			Desc:   "Configuration file parser",
			Source: ConfigParserSrc, Entry: "drive",
			Inputs:               []symtest.Input{symtest.Str("text", 8, "[a]\nk=v\n")},
			DocumentedExceptions: []string{"ConfigError"},
		},
		{
			Name: "HTMLParser", Lang: Python, Type: "Web",
			Desc:   "HTML parser",
			Source: HTMLParserSrc, Entry: "drive",
			Inputs:               []symtest.Input{symtest.Str("data", 8, "<a></a>")},
			DocumentedExceptions: []string{"ParseError"},
		},
		{
			Name: "simplejson", Lang: Python, Type: "Web",
			Desc:   "JSON format parser",
			Source: SimpleJSONSrc, Entry: "drive",
			Inputs:               []symtest.Input{symtest.Str("text", 6, "{}")},
			DocumentedExceptions: []string{"ValueError"},
		},
		{
			Name: "unicodecsv", Lang: Python, Type: "Office",
			Desc:   "CSV file parser",
			Source: UnicodeCSVSrc, Entry: "drive",
			Inputs:               []symtest.Input{symtest.Str("line", 6, "a,b")},
			DocumentedExceptions: []string{"CSVError"},
		},
		{
			Name: "xlrd", Lang: Python, Type: "Office",
			Desc:   "Spreadsheet reader",
			Source: XlrdSrc, Entry: "drive",
			Inputs:               []symtest.Input{symtest.Str("data", 12, "PK")},
			DocumentedExceptions: []string{"XLRDError"},
		},
		{
			Name: "cliargs", Lang: Lua, Type: "System",
			Desc:   "Command-line interface",
			Source: CliargsSrc, Entry: "drive",
			Inputs: []symtest.Input{
				symtest.Str("optname", 4, "--o"),
				symtest.Str("a1", 4, ""),
				symtest.Str("a2", 4, ""),
			},
		},
		{
			Name: "haml", Lang: Lua, Type: "Web",
			Desc:   "HTML description markup",
			Source: HamlSrc, Entry: "drive",
			Inputs: []symtest.Input{symtest.Str("source", 6, "%p hi")},
		},
		{
			Name: "JSON", Lang: Lua, Type: "Web",
			Desc:   "JSON format parser (with the comment-hang bug)",
			Source: SbJSONSrc, Entry: "drive",
			Inputs: []symtest.Input{symtest.Str("s", 5, "1")},
		},
		{
			Name: "markdown", Lang: Lua, Type: "Web",
			Desc:   "Text-to-HTML conversion",
			Source: MarkdownSrc, Entry: "drive",
			Inputs: []symtest.Input{symtest.Str("source", 6, "# h")},
		},
		{
			Name: "moonscript", Lang: Lua, Type: "System",
			Desc:   "Language that compiles to Lua",
			Source: MoonscriptSrc, Entry: "drive",
			Inputs: []symtest.Input{symtest.Str("source", 8, "x = 1")},
		},
	}
}

// ByName returns a registered package, searching the Table 3 set and the
// bench-only targets (see Benchmarks).
func ByName(name string) (*Package, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// PythonPackages returns the Python-language targets.
func PythonPackages() []*Package {
	var out []*Package
	for _, p := range All() {
		if p.Lang == Python {
			out = append(out, p)
		}
	}
	return out
}

// LuaPackages returns the Lua-language targets.
func LuaPackages() []*Package {
	var out []*Package
	for _, p := range All() {
		if p.Lang == Lua {
			out = append(out, p)
		}
	}
	return out
}

// MacLearningTest builds the §6.6 NICE-comparison workload: a MiniPy
// MAC-learning controller fed nFrames symbolic Ethernet frames (each frame
// contributes a src and dst MAC of macLen symbolic bytes).
func MacLearningTest(nFrames, macLen int, cfg minipy.Config) *symtest.PyTest {
	var sb strings.Builder
	sb.WriteString(MacLearningSrc)
	sb.WriteString("\ndef drive_frames(")
	var params []string
	for i := 0; i < nFrames; i++ {
		params = append(params, fmt.Sprintf("s%d", i), fmt.Sprintf("d%d", i))
	}
	sb.WriteString(strings.Join(params, ", "))
	sb.WriteString("):\n    frames = [")
	sb.WriteString(strings.Join(params, ", "))
	sb.WriteString("]\n    return drive(frames)\n")
	var inputs []symtest.Input
	for i := 0; i < nFrames; i++ {
		inputs = append(inputs,
			symtest.Str(fmt.Sprintf("s%d", i), macLen, ""),
			symtest.Str(fmt.Sprintf("d%d", i), macLen, ""))
	}
	return &symtest.PyTest{Source: sb.String(), Entry: "drive_frames", Inputs: inputs, Config: cfg}
}

// MacLearningFlatSource generates the class-free, loop-free MAC-learning
// controller used for the §6.6 engine comparison: the dedicated engine's
// supported subset excludes classes and loops, so both engines run this
// straight-line version for a fair per-path cost comparison.
func MacLearningFlatSource(nFrames int) string {
	var sb strings.Builder
	sb.WriteString("def drive_frames(")
	var params []string
	for i := 0; i < nFrames; i++ {
		params = append(params, fmt.Sprintf("s%d", i), fmt.Sprintf("d%d", i))
	}
	sb.WriteString(strings.Join(params, ", "))
	sb.WriteString("):\n    table = {}\n    out = 0\n")
	for i := 0; i < nFrames; i++ {
		sb.WriteString(fmt.Sprintf("    table[s%d] = 1\n", i))
		sb.WriteString(fmt.Sprintf("    if d%d in table:\n        out = out + 1\n", i))
	}
	sb.WriteString("    return out\n")
	return sb.String()
}

// MacLearningFlatTest wraps the flat controller as a symbolic test for the
// CHEF side of the comparison.
func MacLearningFlatTest(nFrames, macLen int, cfg minipy.Config) *symtest.PyTest {
	var inputs []symtest.Input
	for i := 0; i < nFrames; i++ {
		inputs = append(inputs,
			symtest.Str(fmt.Sprintf("s%d", i), macLen, ""),
			symtest.Str(fmt.Sprintf("d%d", i), macLen, ""))
	}
	return &symtest.PyTest{Source: MacLearningFlatSource(nFrames), Entry: "drive_frames", Inputs: inputs, Config: cfg}
}
