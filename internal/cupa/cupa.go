// Package cupa implements Class-Uniform Path Analysis (§3.2 of the paper),
// the state-selection heuristic that makes interpreter-level symbolic
// execution productive.
//
// CUPA organizes the queue of pending low-level states into a hierarchy of
// partitions. Each level of the hierarchy classifies states by a key; state
// selection descends the tree by picking a class at each level (uniformly by
// default, or biased by per-class weights) and finally picks a state inside
// the reached leaf. Classes that fork many states — string routines, native
// calls, hash functions — therefore no longer dominate selection.
package cupa

import (
	"fmt"
	"math/rand"

	"chef/internal/lowlevel"
	"chef/internal/obs"
)

// Level describes one classification level of the CUPA tree.
type Level struct {
	// Key maps a state to its class at this level.
	Key func(*lowlevel.State) uint64
	// Weight, when non-nil, returns the selection weight of a class.
	// It is consulted at selection time, so weights may evolve as the
	// high-level CFG is discovered. Non-positive weights are treated as a
	// tiny epsilon so no class starves completely.
	Weight func(classKey uint64) float64
}

// Strategy is a CUPA state-selection strategy; it implements
// lowlevel.Strategy.
type Strategy struct {
	levels []Level
	// stateWeight, when non-nil, weights states inside a leaf (used by the
	// coverage-optimized instantiation for fork weights).
	stateWeight func(*lowlevel.State) float64
	rng         *rand.Rand
	root        *node
	count       int

	// Observability (nil when disabled; selection decisions are unaffected).
	tracer    obs.Tracer
	mSelects  *obs.Counter
	mByClass  *obs.CounterVec
	virtClock func() int64
}

type node struct {
	children map[uint64]*node
	order    []uint64 // insertion order of child keys, for determinism
	states   []*lowlevel.State
}

func newNode() *node { return &node{children: map[uint64]*node{}} }

// New builds a CUPA strategy with the given levels. stateWeight may be nil
// for uniform leaf selection.
//
// New panics when rng is nil, levels is empty, or any level has a nil Key.
// Each of those would otherwise surface only deep into exploration — a nil
// dereference at the first multi-state Select or Add, or a silently
// degenerate flat queue — far from the constructor that caused it, so the
// misuse is rejected where it happens.
func New(rng *rand.Rand, levels []Level, stateWeight func(*lowlevel.State) float64) *Strategy {
	if rng == nil {
		panic("cupa: New requires a non-nil rng")
	}
	if len(levels) == 0 {
		panic("cupa: New requires at least one level")
	}
	for i, lvl := range levels {
		if lvl.Key == nil {
			panic(fmt.Sprintf("cupa: New level %d has a nil Key", i))
		}
	}
	return &Strategy{levels: levels, stateWeight: stateWeight, rng: rng, root: newNode()}
}

// Instrument attaches observability sinks: reg receives the selection counter
// and per-top-level-class pick counts, tr receives one cupa-pick event per
// selection. clock, when non-nil, timestamps events with the session's
// virtual time. Observation-only — selection behavior is unchanged.
func (c *Strategy) Instrument(reg *obs.Registry, tr obs.Tracer, clock func() int64) {
	if reg != nil {
		c.mSelects = reg.Counter(obs.MCupaSelections)
		c.mByClass = reg.CounterVec(obs.MCupaPicksByClass)
	}
	c.tracer = tr
	c.virtClock = clock
}

// Add implements lowlevel.Strategy.
func (c *Strategy) Add(s *lowlevel.State) {
	n := c.root
	for _, lvl := range c.levels {
		k := lvl.Key(s)
		child := n.children[k]
		if child == nil {
			child = newNode()
			n.children[k] = child
			n.order = append(n.order, k)
		}
		n = child
	}
	n.states = append(n.states, s)
	c.count++
}

// Len implements lowlevel.Strategy.
func (c *Strategy) Len() int { return c.count }

const epsilonWeight = 1e-9

// Select implements lowlevel.Strategy: a weighted random descent of the
// classification tree followed by a weighted pick inside the leaf.
func (c *Strategy) Select() *lowlevel.State {
	if c.count == 0 {
		return nil
	}
	n := c.root
	path := []*node{n}
	keys := make([]uint64, 0, len(c.levels))
	for _, lvl := range c.levels {
		k := c.pickClass(n, lvl)
		n = n.children[k]
		path = append(path, n)
		keys = append(keys, k)
	}
	s := c.pickState(n)
	c.count--
	if c.mSelects != nil {
		c.mSelects.Inc()
		if len(keys) > 0 {
			c.mByClass.At(keys[0]).Inc()
		}
	}
	if c.tracer != nil {
		var t int64
		if c.virtClock != nil {
			t = c.virtClock()
		}
		var class uint64
		if len(keys) > 0 {
			class = keys[0]
		}
		c.tracer.Emit(&obs.Event{
			T:       t,
			Kind:    obs.KindCUPAPick,
			Class:   class,
			LLPC:    uint64(s.LLPC),
			HLPC:    s.StaticHLPC,
			DynHLPC: s.DynHLPC,
			Depth:   s.Depth,
		})
	}
	// Prune empty nodes bottom-up.
	for i := len(path) - 1; i > 0; i-- {
		nd := path[i]
		if len(nd.states) == 0 && len(nd.children) == 0 {
			parent := path[i-1]
			delete(parent.children, keys[i-1])
			parent.order = removeKey(parent.order, keys[i-1])
		}
	}
	return s
}

func removeKey(order []uint64, k uint64) []uint64 {
	for i, v := range order {
		if v == k {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

func (c *Strategy) pickClass(n *node, lvl Level) uint64 {
	if len(n.order) == 1 {
		return n.order[0]
	}
	if lvl.Weight == nil {
		return n.order[c.rng.Intn(len(n.order))]
	}
	total := 0.0
	weights := make([]float64, len(n.order))
	for i, k := range n.order {
		w := lvl.Weight(k)
		if w <= 0 {
			w = epsilonWeight
		}
		weights[i] = w
		total += w
	}
	x := c.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return n.order[i]
		}
	}
	return n.order[len(n.order)-1]
}

func (c *Strategy) pickState(n *node) *lowlevel.State {
	states := n.states
	var idx int
	if c.stateWeight == nil || len(states) == 1 {
		idx = c.rng.Intn(len(states))
	} else {
		total := 0.0
		weights := make([]float64, len(states))
		for i, s := range states {
			w := c.stateWeight(s)
			if w <= 0 {
				w = epsilonWeight
			}
			weights[i] = w
			total += w
		}
		x := c.rng.Float64() * total
		idx = len(states) - 1
		for i, w := range weights {
			x -= w
			if x < 0 {
				idx = i
				break
			}
		}
	}
	s := states[idx]
	states[idx] = states[len(states)-1]
	n.states = states[:len(states)-1]
	return s
}

// NewPathOptimized builds the path-optimized CUPA instantiation of §3.3:
// level 1 classifies by dynamic HLPC (the state's location in the unfolded
// high-level execution tree), level 2 by low-level program counter. Both
// levels select uniformly among classes.
func NewPathOptimized(rng *rand.Rand) *Strategy {
	return New(rng, []Level{
		{Key: func(s *lowlevel.State) uint64 { return s.DynHLPC }},
		{Key: func(s *lowlevel.State) uint64 { return uint64(s.LLPC) }},
	}, nil)
}

// DistanceFunc reports the current distance (in high-level CFG edges) from a
// static HLPC to the nearest potential branching point, as maintained by the
// CHEF layer. Unknown locations should return a large distance.
type DistanceFunc func(staticHLPC uint64) int

// NewCoverageOptimized builds the coverage-optimized CUPA instantiation of
// §3.4: level 1 classifies by static HLPC weighted by 1/d where d is the
// distance to the nearest potential branching point; inside a class, states
// are weighted by their fork weight.
func NewCoverageOptimized(rng *rand.Rand, dist DistanceFunc) *Strategy {
	return New(rng, []Level{
		{
			Key: func(s *lowlevel.State) uint64 { return s.StaticHLPC },
			Weight: func(class uint64) float64 {
				d := dist(class)
				if d < 0 {
					d = 0
				}
				return 1.0 / (1.0 + float64(d))
			},
		},
	}, func(s *lowlevel.State) float64 { return s.ForkWeight })
}
