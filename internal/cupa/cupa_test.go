package cupa

import (
	"math/rand"
	"testing"

	"chef/internal/lowlevel"
)

func mkState(dyn, static uint64, llpc lowlevel.LLPC, fw float64) *lowlevel.State {
	return &lowlevel.State{DynHLPC: dyn, StaticHLPC: static, LLPC: llpc, ForkWeight: fw}
}

func TestAddSelectDrains(t *testing.T) {
	s := NewPathOptimized(rand.New(rand.NewSource(1)))
	for i := 0; i < 10; i++ {
		s.Add(mkState(uint64(i%3), uint64(i), lowlevel.LLPC(i%2), 1))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d, want 10", s.Len())
	}
	seen := 0
	for s.Len() > 0 {
		if s.Select() == nil {
			t.Fatal("Select returned nil with states queued")
		}
		seen++
	}
	if seen != 10 {
		t.Fatalf("drained %d, want 10", seen)
	}
	if s.Select() != nil {
		t.Fatal("Select must return nil when empty")
	}
}

func TestClassUniformityDebiasesHotClasses(t *testing.T) {
	// One class holds 90 states, another 10. Uniform-over-states selection
	// would pick the hot class 90% of the time; CUPA must pick each class
	// about half the time. This is the core claim of §3.2.
	rng := rand.New(rand.NewSource(7))
	hot, cold := 0, 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := NewPathOptimized(rng)
		for i := 0; i < 90; i++ {
			s.Add(mkState(1, 1, 100, 1)) // hot class: dyn HLPC 1
		}
		for i := 0; i < 10; i++ {
			s.Add(mkState(2, 2, 200, 1)) // cold class: dyn HLPC 2
		}
		if s.Select().DynHLPC == 1 {
			hot++
		} else {
			cold++
		}
	}
	if hot < trials/3 || cold < trials/3 {
		t.Fatalf("selection biased: hot=%d cold=%d (want roughly balanced)", hot, cold)
	}
}

func TestSecondLevelClassifiesByLLPC(t *testing.T) {
	// Within one dynamic HLPC, a hot LLPC (many forks at one machine
	// location) must not dominate a cold LLPC.
	rng := rand.New(rand.NewSource(8))
	hot, cold := 0, 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := NewPathOptimized(rng)
		for i := 0; i < 50; i++ {
			s.Add(mkState(1, 1, 100, 1))
		}
		s.Add(mkState(1, 1, 200, 1))
		if s.Select().LLPC == 100 {
			hot++
		} else {
			cold++
		}
	}
	if cold < trials/4 {
		t.Fatalf("LLPC level not debiasing: hot=%d cold=%d", hot, cold)
	}
}

func TestCoverageOptimizedPrefersCloseStates(t *testing.T) {
	// States at static HLPC 1 are distance 0 from a potential branch point;
	// states at HLPC 2 are distance 9. Weight 1/(1+d) must skew selection
	// towards HLPC 1.
	dist := func(pc uint64) int {
		if pc == 1 {
			return 0
		}
		return 9
	}
	rng := rand.New(rand.NewSource(9))
	near, far := 0, 0
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		s := NewCoverageOptimized(rng, dist)
		s.Add(mkState(1, 1, 10, 1))
		s.Add(mkState(2, 2, 20, 1))
		if s.Select().StaticHLPC == 1 {
			near++
		} else {
			far++
		}
	}
	// Expected ratio 1 : 0.1 => near ~ 91%.
	if near < trials*3/4 {
		t.Fatalf("distance weighting ineffective: near=%d far=%d", near, far)
	}
}

func TestForkWeightBiasesLeafSelection(t *testing.T) {
	// Inside one class, the most recently forked state (weight 1) must be
	// preferred over early forks (weight p^k).
	dist := func(uint64) int { return 0 }
	rng := rand.New(rand.NewSource(10))
	heavy, light := 0, 0
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		s := NewCoverageOptimized(rng, dist)
		a := mkState(1, 1, 10, 0.1)
		b := mkState(1, 1, 10, 1.0)
		s.Add(a)
		s.Add(b)
		if s.Select() == b {
			heavy++
		} else {
			light++
		}
	}
	if heavy < trials*3/5 {
		t.Fatalf("fork weight ignored: heavy=%d light=%d", heavy, light)
	}
}

func TestZeroWeightClassesNotStarved(t *testing.T) {
	dist := func(pc uint64) int { return 1 << 30 } // everything "unreachable"
	s := NewCoverageOptimized(rand.New(rand.NewSource(11)), dist)
	s.Add(mkState(1, 1, 10, 0))
	s.Add(mkState(2, 2, 20, 0))
	got := 0
	for s.Len() > 0 {
		if s.Select() != nil {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("drained %d, want 2", got)
	}
}

func TestTreePruning(t *testing.T) {
	s := NewPathOptimized(rand.New(rand.NewSource(12)))
	// Interleave adds and selects to stress node creation/pruning.
	for round := 0; round < 20; round++ {
		for i := 0; i < 5; i++ {
			s.Add(mkState(uint64(round%4), uint64(i), lowlevel.LLPC(i), 1))
		}
		for i := 0; i < 3; i++ {
			if s.Select() == nil {
				t.Fatal("unexpected empty select")
			}
		}
	}
	want := 20*5 - 20*3
	if s.Len() != want {
		t.Fatalf("len = %d, want %d", s.Len(), want)
	}
	for s.Len() > 0 {
		s.Select()
	}
	if s.Select() != nil {
		t.Fatal("tree should be empty")
	}
}

func TestSingleClassFastPath(t *testing.T) {
	s := NewPathOptimized(rand.New(rand.NewSource(13)))
	a := mkState(1, 1, 10, 1)
	s.Add(a)
	if got := s.Select(); got != a {
		t.Fatalf("got %v, want the single state", got)
	}
}

// TestNewRejectsMisuse pins New's documented construction-time panics: a nil
// rng, an empty level list, and a nil level Key would each otherwise only
// crash (or silently degrade) at the first Select, far from the call site.
func TestNewRejectsMisuse(t *testing.T) {
	levels := []Level{{Key: func(s *lowlevel.State) uint64 { return s.DynHLPC }}}
	cases := []struct {
		name string
		call func()
	}{
		{"nil rng", func() { New(nil, levels, nil) }},
		{"empty levels", func() { New(rand.New(rand.NewSource(1)), nil, nil) }},
		{"nil key", func() { New(rand.New(rand.NewSource(1)), []Level{{}}, nil) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
