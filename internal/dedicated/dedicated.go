// Package dedicated implements a hand-written, NICE-PySE-style symbolic
// execution engine for a subset of MiniPy (§6.6 of the paper). Unlike CHEF,
// it does not execute the interpreter: it interprets the target program's
// bytecode directly over wrapped symbolic values, forking one state per
// high-level branch. This makes it much faster per path — and, exactly as
// the paper argues, incomplete (it supports only part of the language) and
// prone to subtle semantic bugs.
//
// The BugCompat flag reproduces the real defect CHEF found in NICE: the
// handling of "if not <expr>" statements selected the wrong branch
// alternate, generating redundant test cases and missing feasible paths.
package dedicated

import (
	"fmt"

	"chef/internal/minipy"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// Options configure the engine.
type Options struct {
	// BugCompat enables the historical "if not <expr>" branch-selection bug.
	BugCompat bool
	// MaxStates caps exploration (0 = 4096).
	MaxStates int
	// SolverOptions configure the underlying solver.
	SolverOptions solver.Options
}

// Value is a symbolic runtime value of the dedicated engine.
type Value interface{ kind() string }

// IntV is a symbolic integer (64-bit, no overflow modeling — one of the
// deliberate infidelities of hand-written engines).
type IntV struct{ E *symexpr.Expr }

func (IntV) kind() string { return "int" }

// StrV is a symbolic string of fixed length.
type StrV struct{ B []*symexpr.Expr } // each width 8

func (StrV) kind() string { return "str" }

// BoolV is a symbolic boolean.
type BoolV struct{ E *symexpr.Expr }

func (BoolV) kind() string { return "bool" }

// NoneV is None.
type NoneV struct{}

func (NoneV) kind() string { return "none" }

// ListV is a list.
type ListV struct{ Items []Value }

func (*ListV) kind() string { return "list" }

// DictV is a dictionary modeled as an association list — the high-level
// representation a dedicated engine uses instead of the interpreter's hash
// table.
type DictV struct {
	Keys []Value
	Vals []Value
}

func (*DictV) kind() string { return "dict" }

// FuncV is a user function.
type FuncV struct{ Code *minipy.Code }

func (*FuncV) kind() string { return "function" }

// TestCase is one generated input assignment with its observed outcome.
type TestCase struct {
	Input  symexpr.Assignment
	Result string
	PathID uint64
}

// Stats reports exploration work in the same virtual currency as the
// low-level engine: interpretation steps plus solver propagations.
type Stats struct {
	States       int64
	Paths        int64
	Steps        int64
	SolverProps  int64
	InfeasibleBr int64
}

// Engine is the dedicated symbolic executor.
type Engine struct {
	prog   *minipy.Program
	opts   Options
	solver *solver.Solver
	stats  Stats
	tests  []TestCase
	seen   map[uint64]bool
}

// New builds an engine for a compiled MiniPy program.
func New(prog *minipy.Program, opts Options) *Engine {
	if opts.MaxStates == 0 {
		opts.MaxStates = 4096
	}
	return &Engine{prog: prog, opts: opts, solver: solver.New(opts.SolverOptions), seen: map[uint64]bool{}}
}

// Stats returns exploration counters.
func (e *Engine) Stats() Stats {
	e.stats.SolverProps = e.solver.Stats().Propagations
	return e.stats
}

// Tests returns the generated test cases.
func (e *Engine) Tests() []TestCase { return e.tests }

// VirtualTime returns steps + solver propagations, comparable with the
// low-level engine's clock.
func (e *Engine) VirtualTime() int64 {
	return e.stats.Steps + e.solver.Stats().Propagations
}

// state is one symbolic execution state: a full program configuration.
type state struct {
	frames []*frame
	pc     []*symexpr.Expr // path condition
	pathID uint64
	depth  int
}

type frame struct {
	code   *minipy.Code
	locals map[string]Value
	stack  []Value
	ip     int
}

func (s *state) top() *frame { return s.frames[len(s.frames)-1] }

func (s *state) clone() *state {
	ns := &state{pc: append([]*symexpr.Expr(nil), s.pc...), pathID: s.pathID, depth: s.depth}
	for _, f := range s.frames {
		nf := &frame{code: f.code, ip: f.ip, locals: map[string]Value{}, stack: make([]Value, len(f.stack))}
		for k, v := range f.locals {
			nf.locals[k] = cloneValue(v)
		}
		for i, v := range f.stack {
			nf.stack[i] = cloneValue(v)
		}
		ns.frames = append(ns.frames, nf)
	}
	return ns
}

func cloneValue(v Value) Value {
	switch x := v.(type) {
	case *ListV:
		items := make([]Value, len(x.Items))
		for i, it := range x.Items {
			items[i] = cloneValue(it)
		}
		return &ListV{Items: items}
	case *DictV:
		d := &DictV{Keys: make([]Value, len(x.Keys)), Vals: make([]Value, len(x.Vals))}
		for i := range x.Keys {
			d.Keys[i] = cloneValue(x.Keys[i])
			d.Vals[i] = cloneValue(x.Vals[i])
		}
		return d
	default:
		return v
	}
}

func pathStep(id uint64, taken bool) uint64 {
	h := id*0x100000001b3 ^ 0x9e37
	if taken {
		h ^= 1
	}
	return h
}

// Explore runs the target entry function with the given symbolic arguments
// until the state cap is reached.
func (e *Engine) Explore(entry string, args []Value) error {
	// Run the module body concretely-symbolically first to bind globals
	// (function definitions only — module-level control flow on symbolic
	// data is out of the engine's supported subset).
	globals := map[string]Value{}
	mainFrame := &frame{code: e.prog.Main, locals: globals}
	init := &state{frames: []*frame{mainFrame}}
	if _, err := e.runToCompletion(init, globals); err != nil {
		return err
	}
	fn, ok := globals[entry].(*FuncV)
	if !ok {
		return fmt.Errorf("dedicated: entry %q not found", entry)
	}
	f := &frame{code: fn.Code, locals: map[string]Value{}}
	if len(fn.Code.Params) != len(args) {
		return fmt.Errorf("dedicated: arity mismatch")
	}
	for i, p := range fn.Code.Params {
		f.locals[p] = args[i]
	}
	worklist := []*state{{frames: []*frame{f}}}
	for len(worklist) > 0 && int(e.stats.States) < e.opts.MaxStates {
		st := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		e.stats.States++
		forks, result := e.run(st, globals)
		worklist = append(worklist, forks...)
		if result != "" {
			e.finish(st, result)
		}
	}
	return nil
}

func (e *Engine) finish(st *state, result string) {
	e.stats.Paths++
	if e.seen[st.pathID] {
		return
	}
	e.seen[st.pathID] = true
	res, model := e.solver.CheckQuery(solver.Query{PC: st.pc, PathSig: st.pathID})
	if res != solver.Sat {
		return
	}
	e.tests = append(e.tests, TestCase{Input: model, Result: result, PathID: st.pathID})
}

// runToCompletion executes without forking (module initialization).
func (e *Engine) runToCompletion(st *state, globals map[string]Value) (string, error) {
	forks, result := e.run(st, globals)
	if len(forks) > 0 {
		return "", fmt.Errorf("dedicated: symbolic branching during module init is unsupported")
	}
	return result, nil
}

// feasible checks whether pc ∧ cond is satisfiable.
func (e *Engine) feasible(pc []*symexpr.Expr, cond *symexpr.Expr) bool {
	q := append(append([]*symexpr.Expr(nil), pc...), cond)
	res, _ := e.solver.CheckQuery(solver.Query{PC: q})
	return res == solver.Sat
}

// run advances a state until it terminates or forks at a symbolic branch.
// It returns the forked successor states and, for terminated states, the
// result string.
func (e *Engine) run(st *state, globals map[string]Value) ([]*state, string) {
	const stepCap = 200000
	steps := 0
	for {
		steps++
		e.stats.Steps++
		if steps > stepCap {
			return nil, "hang"
		}
		if len(st.frames) == 0 {
			return nil, "ok"
		}
		f := st.top()
		if f.ip >= len(f.code.Instrs) {
			// Implicit return.
			st.frames = st.frames[:len(st.frames)-1]
			if len(st.frames) == 0 {
				return nil, "ok"
			}
			st.top().stack = append(st.top().stack, NoneV{})
			continue
		}
		in := f.code.Instrs[f.ip]
		f.ip++
		forks, result, err := e.exec(st, f, in, globals)
		if err != nil {
			return nil, "exception:" + err.Type
		}
		if result != "" {
			return nil, result
		}
		if forks != nil {
			return forks, ""
		}
	}
}
